//! End-to-end integration test: the full DW-MRI pipeline of the paper —
//! synthetic acquisition → tensor fit → batched SS-HOPM eigensolve →
//! fiber extraction → accuracy scoring.

use dwmri::metrics::DatasetScore;
use rand::SeedableRng;
use tensor_eig::prelude::*;

fn small_phantom(noise: f64, seed: u64) -> Phantom {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let noise = if noise == 0.0 {
        dwmri::NoiseModel::None
    } else {
        dwmri::NoiseModel::Multiplicative { amplitude: noise }
    };
    Phantom::generate(
        PhantomConfig {
            width: 8,
            height: 8,
            noise,
            ..Default::default()
        },
        &mut rng,
    )
}

#[test]
fn noiseless_phantom_is_fully_recovered() {
    let phantom = small_phantom(0.0, 1);
    let cfg = ExtractConfig {
        num_starts: 64,
        ..Default::default()
    };
    let scores: Vec<dwmri::VoxelScore> = phantom
        .voxels
        .iter()
        .map(|v| dwmri::score_voxel(&v.truth, &extract_fibers(&v.tensor, &cfg), 5.0))
        .collect();
    let agg = DatasetScore::aggregate(&scores);
    assert_eq!(
        agg.correct, agg.voxels,
        "every noiseless voxel should resolve: {agg:?}"
    );
    assert!(agg.mean_error_deg < 1.0, "{agg:?}");
}

#[test]
fn noisy_phantom_degrades_gracefully() {
    let phantom = small_phantom(0.05, 2);
    let cfg = ExtractConfig {
        num_starts: 64,
        ..Default::default()
    };
    let scores: Vec<dwmri::VoxelScore> = phantom
        .voxels
        .iter()
        .map(|v| dwmri::score_voxel(&v.truth, &extract_fibers(&v.tensor, &cfg), 15.0))
        .collect();
    let agg = DatasetScore::aggregate(&scores);
    assert!(
        agg.accuracy() > 0.7,
        "5% noise should still resolve most voxels: {agg:?}"
    );
}

#[test]
fn crossing_voxels_need_more_than_order_2() {
    // The paper's Section IV motivation: a 2nd-order fit cannot resolve
    // crossings, an order-4 fit can. Fit both orders to the same crossing
    // voxel and compare what extraction finds.
    use dwmri::adc::{adc, Diffusivities};
    use dwmri::fit::fit_tensor;
    use dwmri::sampling::gradient_directions;
    use dwmri::FiberConfig;

    let truth = FiberConfig::crossing([1.0, 0.0, 0.0], [0.0, 1.0, 0.0]);
    let diff = Diffusivities::default();
    let dirs = gradient_directions(30);
    let vals: Vec<f64> = dirs.iter().map(|g| adc(&truth, &diff, g)).collect();

    let cfg = ExtractConfig::default();

    let t4 = fit_tensor(4, &dirs, &vals).unwrap();
    let fibers4 = extract_fibers(&t4, &cfg);
    assert_eq!(fibers4.len(), 2, "order 4 resolves the crossing");

    // The order-2 fit collapses the crossing into an oblate profile whose
    // maxima form a degenerate ring; eigenvector dedup can leave several
    // near-identical points on the ring, so count axes separated by > 5
    // degrees instead of raw estimates.
    let t2 = fit_tensor(2, &dirs, &vals).unwrap();
    let fibers2 = extract_fibers(&t2, &cfg);
    let mut distinct: Vec<[f64; 3]> = Vec::new();
    for f in &fibers2 {
        if distinct
            .iter()
            .all(|d| dwmri::angular_error_deg(d, &f.direction) > 5.0)
        {
            distinct.push(f.direction);
        }
    }
    assert!(
        distinct.len() < 2,
        "order 2 must NOT resolve the crossing, got {distinct:?}"
    );
}

#[test]
fn batch_cpu_and_gpu_sim_agree_on_phantom_tensors() {
    let phantom = small_phantom(0.01, 3);
    let tensors = phantom.tensor_batch_f32();
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let starts = sshopm::starts::random_uniform_starts::<f32, _>(3, 32, &mut rng);
    let solver = SsHopm::new(Shift::Fixed(0.0)).with_policy(IterationPolicy::Fixed(25));
    let telemetry = Telemetry::disabled();

    let cpu = CpuParallel::new(0, KernelStrategy::Unrolled)
        .solve_batch(&tensors, &starts, &solver, &telemetry)
        .unwrap();
    let gpu = GpuSimBackend::new(DeviceSpec::tesla_c2050(), KernelStrategy::Unrolled)
        .solve_batch(&tensors, &starts, &solver, &telemetry)
        .unwrap();
    for t in 0..tensors.len() {
        for v in 0..starts.len() {
            assert_eq!(gpu.results[t][v].lambda, cpu.results[t][v].lambda);
        }
    }
    assert!(gpu.gflops() > 0.0);
    assert!(gpu.profiles[0].snapshot.blocks_per_sm >= 3);
}

#[test]
fn tractography_runs_straight_through_the_crossing_band() {
    // Full pipeline: phantom -> fit -> eigensolve -> fiber field ->
    // streamline. The primary tract must be trackable across the grid,
    // passing through the two-fiber crossing band without veering onto the
    // crossing tract — the clinical payoff of resolving crossings.
    use dwmri::tract::{trace, FiberField, TractConfig};

    let phantom = small_phantom(0.0, 7);
    let cfg = ExtractConfig {
        num_starts: 64,
        ..Default::default()
    };
    let fibers: Vec<Vec<dwmri::FiberEstimate>> = phantom
        .voxels
        .iter()
        .map(|v| extract_fibers(&v.tensor, &cfg))
        .collect();
    let field = FiberField::new(8, 8, fibers);

    // Seed in the single-fiber region left of center, heading along the
    // primary (mostly +x) tract; it must traverse most of the grid width,
    // crossing the central band (y in [3, 5)).
    let streamline = trace(&field, (1.5, 4.0), &TractConfig::default()).expect("seed has fibers");
    assert!(
        streamline.length() > 5.0,
        "tract should span the grid: length {}, stops {:?}/{:?}",
        streamline.length(),
        streamline.stop_forward,
        streamline.stop_backward
    );
    // The primary tract bends gently; it must not leap more than ~2 voxels
    // vertically while crossing 8 horizontally.
    let ys: Vec<f64> = streamline.points.iter().map(|p| p.1).collect();
    let spread =
        ys.iter().cloned().fold(f64::MIN, f64::max) - ys.iter().cloned().fold(f64::MAX, f64::min);
    assert!(spread < 3.0, "vertical spread {spread}");
}

#[test]
fn fixed_and_convergent_policies_find_the_same_maxima() {
    // Running a generous fixed iteration budget should land on the same
    // dominant eigenvalue as the convergence-tested solve.
    let phantom = small_phantom(0.0, 5);
    let tensor = &phantom.voxels[0].tensor;
    let x0 = vec![0.5, 0.5, std::f64::consts::FRAC_1_SQRT_2];
    let conv = SsHopm::new(Shift::Convex)
        .with_tolerance(1e-14)
        .solve(tensor, &x0);
    let fixed = SsHopm::new(Shift::Convex)
        .with_policy(IterationPolicy::Fixed(500))
        .solve(tensor, &x0);
    assert!((conv.lambda - fixed.lambda).abs() < 1e-10);
}
