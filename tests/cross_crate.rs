//! Cross-crate consistency: every kernel implementation (general loops,
//! precomputed tables, generated unrolled code, GPU functional simulation)
//! must produce identical SS-HOPM trajectories, and the flop-accounting
//! formulas must agree with the simulator's counters.

use rand::SeedableRng;
use tensor_eig::prelude::*;

fn random_workload(t: usize, v: usize, seed: u64) -> (TensorBatch<f32>, Vec<Vec<f32>>) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let tensors = TensorBatch::<f32>::random(4, 3, t, &mut rng).unwrap();
    let starts = sshopm::starts::random_uniform_starts(3, v, &mut rng);
    (tensors, starts)
}

#[test]
fn all_kernel_implementations_agree_bitwise_on_f32() {
    let (tensors, starts) = random_workload(6, 8, 10);
    // A convergent (convex) shift: with alpha = 0 the unshifted iteration
    // need not converge, and reordering f32 sums can then land on
    // different fixed points entirely.
    let solver = SsHopm::new(Shift::Fixed(8.0)).with_policy(IterationPolicy::Fixed(30));
    let telemetry = Telemetry::disabled();

    // One sequential CPU backend per kernel strategy — the same solve
    // through every contraction implementation.
    let run = |strategy: KernelStrategy| {
        CpuSequential::new(strategy)
            .solve_batch(&tensors, &starts, &solver, &telemetry)
            .unwrap()
    };
    let r_general = run(KernelStrategy::General);
    let r_tables = run(KernelStrategy::Precomputed);
    let r_unrolled = run(KernelStrategy::Unrolled);
    let r_blocked = run(KernelStrategy::Blocked);
    assert_eq!(r_tables.kernel, "precomputed");
    assert_eq!(r_unrolled.kernel, "unrolled");
    assert_eq!(r_blocked.kernel, "blocked");

    for t in 0..tensors.len() {
        for v in 0..starts.len() {
            let a = &r_general.results[t][v];
            let b = &r_tables.results[t][v];
            let c = &r_unrolled.results[t][v];
            let d = &r_blocked.results[t][v];
            // General and precomputed execute the same arithmetic order:
            // exact equality. Unrolled/blocked reorder sums, so allow f32
            // slack.
            assert_eq!(a.lambda, b.lambda, "tables diverged at ({t},{v})");
            assert!(
                (a.lambda - c.lambda).abs() < 1e-4,
                "unrolled diverged at ({t},{v}): {} vs {}",
                a.lambda,
                c.lambda
            );
            assert!(
                (a.lambda - d.lambda).abs() < 1e-4,
                "blocked diverged at ({t},{v}): {} vs {}",
                a.lambda,
                d.lambda
            );
        }
    }
}

#[test]
fn gpu_simulator_flop_counters_match_analytic_formulas() {
    let (tensors, starts) = random_workload(4, 32, 11);
    let iters = 10usize;
    let solver = SsHopm::new(Shift::Fixed(0.0)).with_policy(IterationPolicy::Fixed(iters));
    let report = GpuSimBackend::new(DeviceSpec::tesla_c2050(), KernelStrategy::Unrolled)
        .solve_batch(&tensors, &starts, &solver, &Telemetry::disabled())
        .unwrap();
    // Per iteration per thread: the kernel executes the A x^{m-1} and
    // A x^m contractions plus shift/normalization. The counter totals must
    // scale exactly with tensors * starts * iterations.
    let threads = tensors.len() * starts.len();
    let per_thread = report.useful_flops / (threads as u64);
    let per_iter = per_thread / iters as u64;
    // Match against symtensor::flops within the small constant difference
    // of our normalization accounting (the formulas count sub-steps
    // slightly differently; they must agree to within ~20%).
    let formula = symtensor::flops::sshopm_iter_flops(4, 3);
    let lo = formula * 8 / 10;
    let hi = formula * 12 / 10;
    assert!(
        (lo..=hi).contains(&per_iter),
        "per-iteration flops {per_iter} vs formula {formula}"
    );
}

#[test]
fn dense_baseline_validates_all_generated_shapes() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(12);
    for &(m, n) in unrolled::GENERATED_SHAPES {
        let a = SymTensor::<f64>::random(m, n, &mut rng);
        let dense = DenseTensor::from_sym(&a);
        let x: Vec<f64> = (0..n).map(|i| 0.3 + 0.1 * i as f64).collect();
        let k = UnrolledKernels::for_shape(m, n).unwrap();
        let want = dense.axm_dense(&x).unwrap();
        let got = TensorKernels::axm(&k, a.view(), &x).unwrap();
        assert!(
            (got - want).abs() < 1e-9 * (1.0 + want.abs()),
            "shape ({m},{n})"
        );
    }
}

#[test]
fn eigenpair_classification_consistent_with_shift_direction() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(13);
    let mut checked = 0;
    for _ in 0..6 {
        let a = SymTensor::<f64>::random(4, 3, &mut rng);
        let x0 = vec![0.267, -0.534, 0.802];
        for (shift, want) in [
            (Shift::Convex, Stability::NegativeStable),
            (Shift::Concave, Stability::PositiveStable),
        ] {
            let pair = SsHopm::new(shift).with_tolerance(1e-14).solve(&a, &x0);
            // An eigenvalue tolerance of 1e-14 leaves eigenvector residuals
            // around 1e-7 (the residual converges at half the rate).
            if !pair.converged || pair.residual(&a) > 1e-5 {
                continue;
            }
            let s = sshopm::classify(&a, pair.lambda, &pair.x, 1e-5);
            if s != Stability::Degenerate {
                assert_eq!(s, want, "shift {shift:?}");
                checked += 1;
            }
        }
    }
    assert!(checked >= 6, "too few classified solves ({checked})");
}

#[test]
fn relative_to_peak_performance_is_similar_across_devices() {
    // Section V-E: "We obtained similar performance (relative to peak) for
    // tensors of order 4 and dimension 3 on two other NVIDIA GPUs."
    let (tensors, starts) = random_workload(256, 128, 99);
    let solver = SsHopm::new(Shift::Fixed(0.0)).with_policy(IterationPolicy::Fixed(20));
    let mut fractions = Vec::new();
    for device in [
        DeviceSpec::tesla_c1060(),
        DeviceSpec::tesla_c2050(),
        DeviceSpec::gtx_580(),
    ] {
        let report = GpuSimBackend::new(device.clone(), KernelStrategy::Unrolled)
            .solve_batch(&tensors, &starts, &solver, &Telemetry::disabled())
            .unwrap();
        fractions.push(report.gflops() / device.peak_sp_gflops());
    }
    let max = fractions.iter().cloned().fold(f64::MIN, f64::max);
    let min = fractions.iter().cloned().fold(f64::MAX, f64::min);
    assert!(
        max / min < 1.3,
        "peak fractions should be similar across devices: {fractions:?}"
    );
    assert!((0.1..0.6).contains(&min), "{fractions:?}");
}

#[test]
fn occupancy_model_reflects_resource_growth_across_shapes() {
    // Larger tensors -> larger footprints -> fewer resident blocks, as in
    // the paper's Section V-E.
    let device = DeviceSpec::tesla_c2050();
    let mut last_fraction = f64::INFINITY;
    for (m, n) in [(4usize, 3usize), (4, 5), (6, 3)] {
        let res = gpusim::KernelResources::sshopm(m, n, 128, 4, false);
        let occ = gpusim::Occupancy::compute(&device, &res);
        assert!(occ.fraction <= last_fraction + 1e-12, "({m},{n})");
        last_fraction = occ.fraction;
    }
}
