//! The public API a downstream user relies on: everything in the facade
//! prelude constructs and composes without reaching into crate internals.

use rand::SeedableRng;
use tensor_eig::prelude::*;

#[test]
fn facade_covers_the_paper_workflow() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);

    // 1. Build tensors (packed symmetric storage).
    let a = SymTensor::<f64>::random(4, 3, &mut rng);
    assert_eq!(a.num_unique(), 15);

    // 2. Kernels, three ways.
    let x = [0.6, 0.0, 0.8];
    let s1 = symtensor::kernels::axm(&a, &x).unwrap();
    let tables = PrecomputedTables::new(4, 3);
    let s2 = TensorKernels::axm(&tables, a.view(), &x).unwrap();
    let unrolled = UnrolledKernels::for_shape(4, 3).unwrap();
    let s3 = TensorKernels::axm(&unrolled, a.view(), &x).unwrap();
    assert!((s1 - s2).abs() < 1e-12 && (s1 - s3).abs() < 1e-12);

    // 3. Solve.
    let pair = SsHopm::new(Shift::Convex)
        .with_tolerance(1e-13)
        .solve(&a, &x);
    assert!(pair.converged);

    // 4. Classify.
    let stability = sshopm::classify(&a, pair.lambda, &pair.x, 1e-5);
    assert!(matches!(
        stability,
        Stability::NegativeStable | Stability::Degenerate
    ));

    // 5. Batch + GPU, both through the backend layer.
    let tensors = TensorBatch::<f32>::random(4, 3, 4, &mut rng).unwrap();
    let starts = sshopm::starts::random_uniform_starts::<f32, _>(3, 32, &mut rng);
    let solver = SsHopm::new(Shift::Fixed(0.0)).with_policy(IterationPolicy::Fixed(10));
    let cpu = BatchSolver::new(solver).solve(&tensors, &starts);
    assert_eq!(cpu.num_tensors(), 4);
    let spec: BackendSpec = "gpusim".parse().unwrap();
    let gpu = spec
        .build::<f32>(KernelStrategy::Unrolled)
        .unwrap()
        .solve_batch(&tensors, &starts, &solver, &Telemetry::disabled())
        .unwrap();
    assert_eq!(gpu.num_tensors(), 4);
    assert_eq!(gpu.kernel, "unrolled");
    assert!(gpu.gflops() > 0.0);
}

#[test]
fn error_types_are_exposed_and_printable() {
    let err = SymTensor::<f64>::from_values(4, 3, vec![0.0; 3]).unwrap_err();
    let msg = format!("{err}");
    assert!(msg.contains("15"));
    let lerr = linalg::Cholesky::new(&linalg::Matrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]))
        .unwrap_err();
    assert!(!format!("{lerr}").is_empty());
}

#[test]
fn tensors_serialize_for_storage() {
    // The SymTensor serde derives are part of the public contract (voxel
    // datasets get persisted); check the traits are wired via a manual
    // serializer round-trip through serde's data model.
    fn has_serde<T: serde::Serialize + serde::de::DeserializeOwned>() {}
    has_serde::<SymTensor<f32>>();
    has_serde::<SymTensor<f64>>();
}

#[test]
fn device_presets_cover_three_gpus() {
    // The paper reports similar relative performance on two other NVIDIA
    // GPUs; three presets exist and order sensibly by peak.
    let c2050 = DeviceSpec::tesla_c2050();
    let c1060 = DeviceSpec::tesla_c1060();
    let gtx580 = DeviceSpec::gtx_580();
    assert!(c1060.peak_sp_gflops() < c2050.peak_sp_gflops());
    assert!(c2050.peak_sp_gflops() < gtx580.peak_sp_gflops());
}

#[test]
fn flops_module_documents_table2() {
    use symtensor::flops;
    // Table II: storage n^m vs C(m+n-1, m); computation 2n^m vs O(n^m/(m-1)!).
    assert_eq!(flops::dense_storage(4, 3), 81);
    assert_eq!(flops::sym_storage(4, 3), 15);
    assert!(flops::axm_dense_flops(4, 10) > flops::axm_sym_flops(4, 10));
}
