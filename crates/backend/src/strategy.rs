//! Kernel-strategy selection: *how* the tensor contractions are computed,
//! independently of *where* the batch runs.

use crate::spec::BackendError;
use gpusim::GpuVariant;
use symtensor::{
    BatchedKernels, BlockedKernels, GeneralKernels, PrecomputedTables, Scalar, TensorKernels,
};
use unrolled::UnrolledKernels;

/// Which `A·xᵐ` / `A·xᵐ⁻¹` implementation a backend should use.
///
/// Strategies that are unavailable for a given shape fall back
/// automatically along the chain `Unrolled → Blocked → General` (on the
/// CPU) and `Unrolled → General` (on the simulated GPU, which has no
/// blocked or precomputed variant); [`resolve`](Self::resolve) and
/// [`gpu_variant`](Self::gpu_variant) report the strategy actually chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelStrategy {
    /// On-the-fly index/coefficient computation (works for every shape).
    General,
    /// Const-generic blocked kernels (orders 1–8, any dimension).
    Blocked,
    /// Section V-C precomputed index/coefficient tables.
    Precomputed,
    /// Straight-line generated kernels (build.rs `GENERATED_SHAPES` only).
    Unrolled,
    /// Lane-vectorized kernels over the packed `TensorBatch` arena
    /// ([`symtensor::BatchedKernels`]). Per-tensor calls share the lane
    /// tables; fixed-shift SS-HOPM batches additionally run the lockstep
    /// panel driver that updates [`symtensor::LANE_WIDTH`] tensors per
    /// table walk.
    Batched,
}

impl KernelStrategy {
    /// All strategies, for sweeps and tests.
    pub const ALL: [KernelStrategy; 5] = [
        KernelStrategy::General,
        KernelStrategy::Blocked,
        KernelStrategy::Precomputed,
        KernelStrategy::Unrolled,
        KernelStrategy::Batched,
    ];

    /// Short name for reports and CLI flags.
    pub fn name(&self) -> &'static str {
        match self {
            KernelStrategy::General => "general",
            KernelStrategy::Blocked => "blocked",
            KernelStrategy::Precomputed => "precomputed",
            KernelStrategy::Unrolled => "unrolled",
            KernelStrategy::Batched => "batched",
        }
    }

    /// Parse a CLI token (`general`, `blocked`, `precomputed`, `unrolled`,
    /// `batched`).
    pub fn parse(s: &str) -> Result<Self, BackendError> {
        match s {
            "general" => Ok(KernelStrategy::General),
            "blocked" => Ok(KernelStrategy::Blocked),
            "precomputed" => Ok(KernelStrategy::Precomputed),
            "unrolled" => Ok(KernelStrategy::Unrolled),
            "batched" => Ok(KernelStrategy::Batched),
            other => Err(BackendError(format!(
                "unknown kernel strategy {other:?}: expected one of general, blocked, \
                 precomputed, unrolled, batched"
            ))),
        }
    }

    /// Materialize the CPU kernels for shape `(m, n)`, falling back when
    /// the requested strategy has no implementation for that shape.
    /// Returns the kernels and the strategy actually in effect.
    pub fn resolve<S: Scalar>(
        self,
        m: usize,
        n: usize,
    ) -> (Box<dyn TensorKernels<S>>, KernelStrategy) {
        match self {
            KernelStrategy::General => (Box::new(GeneralKernels), KernelStrategy::General),
            KernelStrategy::Precomputed => (
                Box::new(PrecomputedTables::new(m, n)),
                KernelStrategy::Precomputed,
            ),
            KernelStrategy::Blocked => match BlockedKernels::for_shape(m, n) {
                Some(k) => (Box::new(k), KernelStrategy::Blocked),
                None => (Box::new(GeneralKernels), KernelStrategy::General),
            },
            KernelStrategy::Unrolled => match UnrolledKernels::for_shape(m, n) {
                Some(k) => (Box::new(k), KernelStrategy::Unrolled),
                None => KernelStrategy::Blocked.resolve(m, n),
            },
            KernelStrategy::Batched => {
                (Box::new(BatchedKernels::new(m, n)), KernelStrategy::Batched)
            }
        }
    }

    /// Map the strategy onto a simulated-GPU kernel variant for shape
    /// `(m, n)`. The GPU model only implements the general and unrolled
    /// variants, so `Blocked`/`Precomputed`/`Batched` run as `General`, and
    /// `Unrolled` falls back to `General` for ungenerated shapes. Returns
    /// the variant and the strategy actually in effect.
    pub fn gpu_variant(self, m: usize, n: usize) -> (GpuVariant, KernelStrategy) {
        match self {
            KernelStrategy::Unrolled if UnrolledKernels::for_shape(m, n).is_some() => {
                (GpuVariant::Unrolled, KernelStrategy::Unrolled)
            }
            _ => (GpuVariant::General, KernelStrategy::General),
        }
    }
}

impl std::fmt::Display for KernelStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for KernelStrategy {
    type Err = BackendError;

    fn from_str(s: &str) -> Result<Self, BackendError> {
        KernelStrategy::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_honors_available_strategies() {
        for strategy in KernelStrategy::ALL {
            let (_, effective) = strategy.resolve::<f64>(4, 3);
            assert_eq!(effective, strategy, "(4,3) supports every strategy");
        }
    }

    #[test]
    fn unrolled_falls_back_for_ungenerated_shape() {
        // (7, 7) has no generated kernel but is within the blocked range.
        let (k, effective) = KernelStrategy::Unrolled.resolve::<f64>(7, 7);
        assert_eq!(effective, KernelStrategy::Blocked);
        assert_eq!(k.name(), "blocked");
        // Order 9 is beyond the blocked range too: all the way to general.
        let (k, effective) = KernelStrategy::Unrolled.resolve::<f64>(9, 3);
        assert_eq!(effective, KernelStrategy::General);
        assert_eq!(k.name(), "general");
    }

    #[test]
    fn gpu_variant_mapping() {
        assert_eq!(
            KernelStrategy::Unrolled.gpu_variant(4, 3),
            (GpuVariant::Unrolled, KernelStrategy::Unrolled)
        );
        assert_eq!(
            KernelStrategy::Unrolled.gpu_variant(5, 9),
            (GpuVariant::General, KernelStrategy::General)
        );
        for s in [
            KernelStrategy::General,
            KernelStrategy::Blocked,
            KernelStrategy::Precomputed,
            KernelStrategy::Batched,
        ] {
            assert_eq!(s.gpu_variant(4, 3).0, GpuVariant::General);
        }
    }

    #[test]
    fn names_round_trip() {
        for s in KernelStrategy::ALL {
            assert_eq!(KernelStrategy::parse(s.name()).unwrap(), s);
            assert_eq!(s.to_string(), s.name());
        }
        assert!(KernelStrategy::parse("fused").is_err());
    }
}
