//! Kernel-strategy selection: *how* the tensor contractions are computed,
//! independently of *where* the batch runs.
//!
//! The strategy enum and the machinery that materializes kernels now live
//! in the `kernelgen` crate: backends ask the process-wide
//! [`KernelRegistry`] for a [`KernelPlan`] and get back a memoized,
//! shareable kernel object (with automatic shape fallback along
//! `Unrolled → Blocked → General` and `Tape → Blocked → General`) instead
//! of boxing a fresh kernel per call. This module re-exports those types
//! so `backend::KernelStrategy` keeps working, and adds the one mapping
//! that is backend-specific: strategy → simulated-GPU kernel variant.

pub use kernelgen::{KernelPlan, KernelRegistry, KernelStrategy};

use gpusim::GpuVariant;
use unrolled::UnrolledKernels;

/// Map a strategy onto a simulated-GPU kernel variant for shape `(m, n)`.
///
/// The GPU model implements the general, unrolled, and tape variants, so
/// `Blocked`/`Precomputed`/`Batched` run as `General`; `Unrolled` falls
/// back to `General` for ungenerated shapes and `Tape` falls back to
/// `General` for shapes the runtime generator does not support. Returns
/// the variant and the strategy actually in effect.
pub fn gpu_variant(strategy: KernelStrategy, m: usize, n: usize) -> (GpuVariant, KernelStrategy) {
    match strategy {
        KernelStrategy::Unrolled if UnrolledKernels::for_shape(m, n).is_some() => {
            (GpuVariant::Unrolled, KernelStrategy::Unrolled)
        }
        KernelStrategy::Tape if kernelgen::tape_supported(m, n) => {
            (GpuVariant::Tape, KernelStrategy::Tape)
        }
        _ => (GpuVariant::General, KernelStrategy::General),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_honors_available_strategies() {
        let registry = KernelRegistry::new();
        for strategy in KernelStrategy::ALL {
            let plan = registry.plan::<f64>(4, 3, strategy);
            assert_eq!(plan.effective, strategy, "(4,3) supports every strategy");
        }
    }

    #[test]
    fn unrolled_falls_back_for_ungenerated_shape() {
        let registry = KernelRegistry::new();
        // (7, 7) has no generated kernel but is within the blocked range.
        let plan = registry.plan::<f64>(7, 7, KernelStrategy::Unrolled);
        assert_eq!(plan.effective, KernelStrategy::Blocked);
        assert_eq!(plan.kernels.name(), "blocked");
        // Order 9 is beyond the blocked range too: all the way to general.
        let plan = registry.plan::<f64>(9, 3, KernelStrategy::Unrolled);
        assert_eq!(plan.effective, KernelStrategy::General);
        assert_eq!(plan.kernels.name(), "general");
    }

    #[test]
    fn gpu_variant_mapping() {
        assert_eq!(
            gpu_variant(KernelStrategy::Unrolled, 4, 3),
            (GpuVariant::Unrolled, KernelStrategy::Unrolled)
        );
        assert_eq!(
            gpu_variant(KernelStrategy::Unrolled, 5, 9),
            (GpuVariant::General, KernelStrategy::General)
        );
        // The tape generator covers (5, 9); the slot cap rules out (5, 40).
        assert_eq!(
            gpu_variant(KernelStrategy::Tape, 5, 9),
            (GpuVariant::Tape, KernelStrategy::Tape)
        );
        assert_eq!(
            gpu_variant(KernelStrategy::Tape, 5, 40),
            (GpuVariant::General, KernelStrategy::General)
        );
        for s in [
            KernelStrategy::General,
            KernelStrategy::Blocked,
            KernelStrategy::Precomputed,
            KernelStrategy::Batched,
        ] {
            assert_eq!(gpu_variant(s, 4, 3).0, GpuVariant::General);
        }
    }

    #[test]
    fn names_round_trip() {
        for s in KernelStrategy::ALL {
            assert_eq!(KernelStrategy::parse(s.name()).unwrap(), s);
            assert_eq!(s.to_string(), s.name());
        }
        assert!(KernelStrategy::parse("fused").is_err());
    }
}
