//! [`ClusterBackend`]: sharded batched execution across simulated hosts.
//!
//! The batch arena is cut into one contiguous slice per host
//! (proportional to the host's summed peak throughput — the
//! [`gpusim::Cluster::shard`] policy), each non-root shard pays one
//! modeled NIC round trip, and every host runs its shard on its own
//! devices through the same launch machinery as the single-host
//! backends. With one host and one stream per device the execution path
//! is literally [`gpusim::MultiGpu::launch`], so `cluster:1:N` results
//! are bitwise identical to `gpusim:N` (the cluster-parity suite asserts
//! this).
//!
//! Reports carry the cluster-specific signals: one
//! [`telemetry::HostStats`] row per shard (NIC bytes/seconds, shard
//! makespan), a [`telemetry::CommStats`] charging the achieved NIC
//! traffic against the Al Daas et al. communication lower bound, and a
//! `host` latency distribution of per-shard completion times.

use crate::backends::{
    emit_run_report, empty_report, fixed_alpha, record_gpu_batch_counters, total_iterations_of,
    SolveBackend,
};
use crate::report::{BatchReport, DeviceProfile, FaultLog};
use crate::spec::{device_slug, BackendError};
use crate::strategy::KernelStrategy;
use gpusim::{Cluster, DeviceSpec, ProfileSnapshot};
use sshopm::Solver;
use symtensor::{Scalar, TensorBatch};
use telemetry::{CommStats, HostStats, Telemetry};

/// A multi-host execution backend over a simulated [`Cluster`].
///
/// Construct with [`ClusterBackend::new`] (any topology) or
/// [`ClusterBackend::homogeneous`] (the `cluster:h:d` spec path), then
/// layer on [`with_streams`] / [`with_chunk_tensors`] for pipelined
/// shard execution.
///
/// [`with_streams`]: ClusterBackend::with_streams
/// [`with_chunk_tensors`]: ClusterBackend::with_chunk_tensors
#[derive(Debug, Clone)]
pub struct ClusterBackend {
    /// The host/device/link topology shards run on.
    pub cluster: Cluster,
    /// Kernel implementation to use (mapped onto a GPU variant).
    pub strategy: KernelStrategy,
    /// Streams per device: 1 launches each shard synchronously (the
    /// multi-GPU path, byte-identical timing included); ≥ 2 runs each
    /// shard through the double-buffered chunked path.
    pub streams_per_device: usize,
    /// Tensors per pipeline chunk when `streams_per_device > 1`.
    pub chunk_tensors: usize,
}

impl ClusterBackend {
    /// A cluster backend over an explicit topology.
    pub fn new(cluster: Cluster, strategy: KernelStrategy) -> Self {
        Self {
            cluster,
            strategy,
            streams_per_device: 1,
            chunk_tensors: crate::backends::PipelinedBackend::DEFAULT_CHUNK_TENSORS,
        }
    }

    /// `hosts` identical hosts of `devices_per_host` copies of `device`,
    /// behind the default links (PCIe 2.0 inside each host, a
    /// QDR-InfiniBand-class NIC between hosts).
    ///
    /// Errors when either count is zero.
    pub fn homogeneous(
        device: DeviceSpec,
        hosts: usize,
        devices_per_host: usize,
        strategy: KernelStrategy,
    ) -> Result<Self, BackendError> {
        Ok(Self::new(
            Cluster::homogeneous(device, hosts, devices_per_host)?,
            strategy,
        ))
    }

    /// Set the number of streams per device. Zero is an error (the CLI's
    /// `--streams` flag lands here): a device with no streams can never
    /// receive a chunk.
    pub fn with_streams(mut self, streams_per_device: usize) -> Result<Self, BackendError> {
        if streams_per_device == 0 {
            return Err(BackendError(
                "invalid --streams 0: need at least one stream per device".to_string(),
            ));
        }
        self.streams_per_device = streams_per_device;
        Ok(self)
    }

    /// Set the pipeline chunk size in tensors. Zero is an error (the
    /// CLI's `--chunk-tensors` flag lands here): a zero-sized pipeline
    /// chunk would make no progress.
    pub fn with_chunk_tensors(mut self, chunk_tensors: usize) -> Result<Self, BackendError> {
        if chunk_tensors == 0 {
            return Err(BackendError(
                "invalid --chunk-tensors 0: need at least one tensor per pipeline chunk"
                    .to_string(),
            ));
        }
        self.chunk_tensors = chunk_tensors;
        Ok(self)
    }
}

impl<S: Scalar> SolveBackend<S> for ClusterBackend {
    fn label(&self) -> String {
        let hosts = self.cluster.hosts();
        format!(
            "cluster:gpusim:{}:{}x{}x{}",
            device_slug(hosts[0].devices[0].name),
            hosts.len(),
            hosts[0].num_devices(),
            self.streams_per_device
        )
    }

    fn solve_batch(
        &self,
        batch: &TensorBatch<S>,
        starts: &[Vec<S>],
        solver: &dyn Solver<S>,
        telemetry: &Telemetry,
    ) -> Result<BatchReport<S>, BackendError> {
        let label = SolveBackend::<S>::label(self);
        if batch.is_empty() {
            return Ok(empty_report(label, self.strategy, solver));
        }
        let alpha = fixed_alpha(solver, "ClusterBackend")?;
        let (variant, effective) =
            crate::strategy::gpu_variant(self.strategy, batch.order(), batch.dim());
        let cache_before = crate::strategy::KernelRegistry::global().stats();
        let _batch_span = telemetry.span("batch.solve");
        let (result, report) = if self.streams_per_device > 1 {
            self.cluster.launch_pipelined(
                batch,
                starts,
                solver.policy(),
                alpha,
                variant,
                self.chunk_tensors,
                self.streams_per_device,
            )?
        } else {
            self.cluster
                .launch(batch, starts, solver.policy(), alpha, variant)?
        };
        let total_iterations = total_iterations_of(&result.results);
        record_gpu_batch_counters(telemetry, &result.results, total_iterations);

        // Global (host-major) device index of each host's first device.
        let mut device_base = Vec::with_capacity(self.cluster.num_hosts());
        let mut acc = 0usize;
        for host in self.cluster.hosts() {
            device_base.push(acc);
            acc += host.num_devices();
        }

        let mut profiles: Vec<DeviceProfile> = Vec::new();
        let mut hosts: Vec<HostStats> = Vec::new();
        for shard in &report.shards {
            let host = &self.cluster.hosts()[shard.host_index];
            for slice in &shard.report.slices {
                let snapshot =
                    ProfileSnapshot::from_report(&host.devices[slice.device_index], &slice.report);
                snapshot.emit(telemetry);
                profiles.push(DeviceProfile {
                    device_index: device_base[shard.host_index] + slice.device_index,
                    host_index: shard.host_index,
                    num_tensors: slice.num_tensors,
                    transfer_seconds: slice.transfer_seconds,
                    snapshot,
                });
            }
            shard.report.timeline.emit(telemetry);
            hosts.push(HostStats {
                host_index: shard.host_index as u64,
                num_devices: host.num_devices() as u64,
                num_tensors: shard.num_tensors as u64,
                nic_down_bytes: shard.nic_down_bytes,
                nic_up_bytes: shard.nic_up_bytes,
                nic_seconds: shard.nic_seconds,
                seconds: shard.seconds,
            });
        }
        if telemetry.is_enabled() {
            telemetry.counter("cluster.hosts", hosts.len() as u64);
            telemetry.counter("cluster.nic_bytes", report.nic_bytes);
        }
        let comm = CommStats {
            nic_bytes: report.nic_bytes,
            lower_bound_bytes: report.comm_lower_bound_bytes,
            ratio: report.comm_ratio(),
        };
        let batch_report = BatchReport {
            backend: label,
            kernel: effective.name().to_string(),
            solver: solver.name().to_string(),
            results: result.results,
            total_iterations,
            seconds: report.seconds,
            useful_flops: report.useful_flops,
            profiles,
            hosts,
            comm,
            fault_log: FaultLog::default(),
            kernel_cache: crate::backends::kernel_cache_delta(&cache_before),
            timeline: None,
        };
        emit_run_report(telemetry, &batch_report);
        Ok(batch_report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sshopm::starts::random_uniform_starts;
    use sshopm::{IterationPolicy, Shift, SsHopm};

    fn workload(t: usize, v: usize) -> (TensorBatch<f64>, Vec<Vec<f64>>) {
        let mut rng = StdRng::seed_from_u64(21);
        let tensors = TensorBatch::random(4, 3, t, &mut rng).unwrap();
        let starts = random_uniform_starts(3, v, &mut rng);
        (tensors, starts)
    }

    #[test]
    fn label_names_topology_and_streams() {
        let b =
            ClusterBackend::homogeneous(DeviceSpec::tesla_c2050(), 4, 2, KernelStrategy::Unrolled)
                .unwrap();
        assert_eq!(
            SolveBackend::<f64>::label(&b),
            "cluster:gpusim:tesla-c2050:4x2x1"
        );
        let piped = b.with_streams(3).unwrap();
        assert_eq!(
            SolveBackend::<f64>::label(&piped),
            "cluster:gpusim:tesla-c2050:4x2x3"
        );
    }

    #[test]
    fn zero_streams_and_zero_chunks_are_typed_errors_naming_the_flags() {
        let b =
            ClusterBackend::homogeneous(DeviceSpec::tesla_c2050(), 2, 2, KernelStrategy::Unrolled)
                .unwrap();
        let err = b.clone().with_streams(0).unwrap_err();
        assert!(err.to_string().contains("--streams"), "{err}");
        let err = b.with_chunk_tensors(0).unwrap_err();
        assert!(err.to_string().contains("--chunk-tensors"), "{err}");
    }

    #[test]
    fn zero_hosts_or_devices_are_errors() {
        assert!(ClusterBackend::homogeneous(
            DeviceSpec::tesla_c2050(),
            0,
            2,
            KernelStrategy::Unrolled
        )
        .is_err());
        assert!(ClusterBackend::homogeneous(
            DeviceSpec::tesla_c2050(),
            2,
            0,
            KernelStrategy::Unrolled
        )
        .is_err());
    }

    #[test]
    fn report_carries_host_rows_and_comm_accounting() {
        let (tensors, starts) = workload(96, 8);
        let backend =
            ClusterBackend::homogeneous(DeviceSpec::tesla_c2050(), 2, 2, KernelStrategy::Unrolled)
                .unwrap();
        let solver = SsHopm::new(Shift::Fixed(0.0)).with_policy(IterationPolicy::Fixed(6));
        let report = backend
            .solve_batch(&tensors, &starts, &solver, &Telemetry::disabled())
            .unwrap();
        assert_eq!(report.hosts.len(), 2);
        assert_eq!(report.hosts[0].nic_down_bytes, 0);
        assert!(report.hosts[1].nic_down_bytes > 0);
        assert!(report.comm.nic_bytes > 0);
        assert!(report.comm.lower_bound_bytes > 0);
        assert!(
            report.comm.ratio > 0.9 && report.comm.ratio < 8.0,
            "{}",
            report.comm.ratio
        );
        assert_eq!(report.profiles.len(), 4);
        assert_eq!(report.profiles[2].host_index, 1);
        assert_eq!(report.profiles[2].device_index, 2);
        let run = report.run_report();
        assert_eq!(run.hosts.len(), 2);
        assert!(run.latency("host").is_some());
    }

    #[test]
    fn adaptive_solvers_are_rejected_with_a_pointer_to_cpu() {
        let (tensors, starts) = workload(4, 2);
        let backend =
            ClusterBackend::homogeneous(DeviceSpec::tesla_c2050(), 2, 1, KernelStrategy::Unrolled)
                .unwrap();
        let solver = SsHopm::new(Shift::Adaptive).with_policy(IterationPolicy::Fixed(4));
        let err = backend
            .solve_batch(&tensors, &starts, &solver, &Telemetry::disabled())
            .unwrap_err();
        assert!(err.to_string().contains("cpu"), "{err}");
    }
}
