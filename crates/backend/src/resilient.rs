//! [`ResilientBackend`]: fault-tolerant batched execution over simulated
//! GPUs.
//!
//! Wraps the same launch machinery as the plain GPU backends, but splits
//! the batch into small chunks and survives the faults a
//! [`gpusim::FaultPlan`] injects:
//!
//! * **Transient launch failures** (watchdog timeouts, transfer errors)
//!   are retried on the same device with exponential backoff, up to
//!   `max_retries` extra attempts per device.
//! * **Device loss** is sticky: the device is marked dead and, when
//!   failover is enabled, its chunks move to the next live device — or to
//!   the CPU once every simulated device is gone.
//! * **Host loss** is device loss at cluster scale: every device on the
//!   struck host dies at once, so surviving chunks ladder from the lost
//!   host to a sibling host's devices and finally to the CPU. On a
//!   single-host backend a host loss is a total loss.
//! * **ECC corruption** poisons one tensor with NaN before the launch;
//!   the post-launch scan detects the non-finite eigenpairs and re-solves
//!   that single tensor on the CPU from the pristine data. Only the
//!   affected tensor's packed entries (15 scalars at the paper shape) are
//!   ever copied into a one-tensor scratch batch — the chunk itself
//!   launches straight from the borrowed arena slice, so the fault-free
//!   tensors' results come out of the exact same buffers as a fault-free
//!   run. With failover disabled the poisoned tensor *fails alone* — its
//!   batch index lands in [`FaultLog::failed_indices`] and its result row
//!   is empty, while the rest of the chunk stands.
//!
//! Every substrate runs the identical library kernels, so recovered
//! results are **bit-identical** to a fault-free run (the resilience test
//! suite asserts this against a sequential CPU solve). The price of a
//! fault shows up only in the modeled wall time: timeouts, backoff waits
//! and re-solves all cost seconds, never correctness.
//!
//! Execution is stream-based: chunks are enqueued round-robin onto
//! per-device [`gpusim::StreamQueue`] streams, so fault recovery is
//! **in-flight-chunk granular**. A faulted attempt marks the chunk's
//! stream, cancels only that stream's pending ops from the mark
//! ([`StreamQueue::cancel_from`]), and enqueues a [`Op::Stall`] for the
//! watchdog/backoff time — other streams' chunks (earlier successful
//! launches included) keep their place on the event timeline. The modeled
//! wall-clock is the resolved [`gpusim::Timeline`] makespan plus any CPU
//! fallback time.

use crate::backends::{empty_report, fixed_alpha, SolveBackend};
use crate::report::{BatchReport, FaultLog};
use crate::spec::{device_slug, BackendError, BackendSpec};
use crate::strategy::KernelStrategy;
use gpusim::{
    corrupt_tensor, problem_traffic_bytes, DeviceSpec, FaultKind, FaultPlan, FaultSite, Op,
    StreamId, StreamQueue, TransferModel, BACKOFF_BASE_SECONDS, WATCHDOG_TIMEOUT_SECONDS,
};
use sshopm::batch::BatchSolver;
use sshopm::{Eigenpair, Solver};
use symtensor::{flops, Scalar, TensorBatch};
use telemetry::Telemetry;

/// Tensors per launch chunk. Small chunks bound the blast radius of one
/// fault (a lost launch re-runs at most this many tensors) and give the
/// fault plan many independent draw sites per batch.
const MAX_CHUNK_TENSORS: usize = 256;

/// A fault-tolerant execution backend over one or more simulated GPUs.
///
/// Construct with [`ResilientBackend::from_spec`] (the CLI path) or
/// [`ResilientBackend::new`], then layer on [`with_retries`] and
/// [`with_failover`]. With an inactive [`FaultPlan`] this behaves exactly
/// like the plain multi-GPU backend, modulo chunked launches.
///
/// [`with_retries`]: ResilientBackend::with_retries
/// [`with_failover`]: ResilientBackend::with_failover
#[derive(Debug, Clone)]
pub struct ResilientBackend {
    /// The device models (chunks are dealt round-robin across them).
    pub devices: Vec<DeviceSpec>,
    /// Host↔device interconnect model the stream queue times copies with.
    pub transfer: TransferModel,
    /// Kernel implementation to use (mapped onto a GPU variant).
    pub strategy: KernelStrategy,
    /// The fault schedule to run under.
    pub plan: FaultPlan,
    /// Extra launch attempts per device after a transient fault.
    pub max_retries: u32,
    /// Move failed chunks to other devices / the CPU instead of failing.
    pub failover: bool,
    /// Streams per device: chunks are dealt round-robin across them, so
    /// ≥2 double-buffers transfers behind kernels even under faults.
    pub streams_per_device: usize,
    /// Host owning each device (global index → host index). All zeros for
    /// single-host backends; host-major for cluster specs. A
    /// [`FaultKind::HostLoss`] kills every device sharing the struck
    /// device's host.
    pub host_of: Vec<usize>,
}

impl ResilientBackend {
    /// A resilient backend over `devices`; errors if the list is empty.
    ///
    /// Defaults: 2 retries, failover disabled, 2 streams per device.
    pub fn new(
        devices: Vec<DeviceSpec>,
        transfer: TransferModel,
        strategy: KernelStrategy,
        plan: FaultPlan,
    ) -> Result<Self, BackendError> {
        if devices.is_empty() {
            return Err(BackendError(
                "resilient backend needs at least one device".to_string(),
            ));
        }
        let ndev = devices.len();
        Ok(Self {
            devices,
            transfer,
            strategy,
            plan,
            max_retries: 2,
            failover: false,
            streams_per_device: 2,
            host_of: vec![0; ndev],
        })
    }

    /// Wrap the device set a [`BackendSpec`] describes. Only `gpusim`
    /// specs have devices to fail; `cpu` specs are rejected. Cluster
    /// specs flatten host-major, so a host loss kills one contiguous run
    /// of device indices and its chunks ladder to the sibling hosts.
    pub fn from_spec(
        spec: &BackendSpec,
        strategy: KernelStrategy,
        plan: FaultPlan,
    ) -> Result<Self, BackendError> {
        match *spec {
            BackendSpec::GpuSim { device, devices }
            | BackendSpec::Pipelined { device, devices } => Self::new(
                vec![device.spec(); devices],
                TransferModel::pcie2(),
                strategy,
                plan,
            ),
            BackendSpec::Cluster {
                device,
                hosts,
                devices,
                ..
            } => {
                let mut backend = Self::new(
                    vec![device.spec(); hosts * devices],
                    TransferModel::pcie2(),
                    strategy,
                    plan,
                )?;
                backend.host_of = (0..hosts * devices).map(|i| i / devices).collect();
                Ok(backend)
            }
            BackendSpec::Cpu { .. } => Err(BackendError(format!(
                "fault injection requires a gpusim backend, got {spec}: cpu backends have \
                 no simulated devices to fail"
            ))),
        }
    }

    /// Number of hosts behind the device list (1 unless built from a
    /// cluster spec).
    pub fn num_hosts(&self) -> usize {
        self.host_of.iter().max().map_or(1, |&h| h + 1)
    }

    /// Set the per-device retry budget for transient faults.
    pub fn with_retries(mut self, max_retries: u32) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// Enable or disable failover to other devices / the CPU.
    pub fn with_failover(mut self, failover: bool) -> Self {
        self.failover = failover;
        self
    }

    /// Set the number of streams per device. Zero is an error (the CLI's
    /// `--streams` flag lands here): a device with no streams can never
    /// receive a chunk.
    pub fn with_streams(mut self, streams_per_device: usize) -> Result<Self, BackendError> {
        if streams_per_device == 0 {
            return Err(BackendError(
                "invalid --streams 0: need at least one stream per device".to_string(),
            ));
        }
        self.streams_per_device = streams_per_device;
        Ok(self)
    }
}

/// What one launch attempt of one chunk did.
enum Attempt<S> {
    /// The launch completed; rows are the chunk's eigenpairs.
    Completed(Vec<Vec<Eigenpair<S>>>),
    /// A transient fault (watchdog / transfer) killed the attempt.
    Transient,
    /// The device dropped off the bus.
    DeviceLost,
}

impl<S: Scalar> SolveBackend<S> for ResilientBackend {
    fn label(&self) -> String {
        let hosts = self.num_hosts();
        if hosts > 1 {
            format!(
                "resilient:cluster:gpusim:{}:{}x{}",
                device_slug(self.devices[0].name),
                hosts,
                self.devices.len() / hosts
            )
        } else {
            format!(
                "resilient:gpusim:{}:{}",
                device_slug(self.devices[0].name),
                self.devices.len()
            )
        }
    }

    fn solve_batch(
        &self,
        batch: &TensorBatch<S>,
        starts: &[Vec<S>],
        solver: &dyn Solver<S>,
        telemetry: &Telemetry,
    ) -> Result<BatchReport<S>, BackendError> {
        let label = SolveBackend::<S>::label(self);
        if batch.is_empty() {
            return Ok(empty_report(label, self.strategy, solver));
        }
        if starts.is_empty() {
            return Err(gpusim::GpuError::EmptyStarts.into());
        }
        let (m, n) = (batch.order(), batch.dim());
        let alpha = fixed_alpha(solver, "ResilientBackend")?;
        let (variant, effective) = crate::strategy::gpu_variant(self.strategy, m, n);
        let cache_before = crate::strategy::KernelRegistry::global().stats();
        // The CPU kernels used for failover and NaN recovery: `effective`
        // is exactly what the GPU variant executes, so CPU re-solves are
        // bit-identical to what the device would have produced. The plan
        // comes from the process-wide registry, so repeated re-solves (and
        // the GPU tape launches) share one memoized kernel object.
        let cpu_plan = crate::strategy::KernelRegistry::global().plan::<S>(m, n, effective);
        let cpu_kernels = cpu_plan.kernels;
        let num_entries = batch.stride();
        let _span = telemetry.span("resilient.solve");

        let mut log = FaultLog::default();
        let mut results: Vec<Vec<Eigenpair<S>>> = vec![Vec::new(); batch.len()];
        let ndev = self.devices.len();
        // Every GPU-side cost — transfers, kernels, watchdog stalls — is an
        // op on a per-device stream; the wall-clock is the timeline makespan.
        let mut queue = StreamQueue::new(ndev, self.transfer);
        let streams: Vec<Vec<StreamId>> = (0..ndev)
            .map(|d| {
                (0..self.streams_per_device.max(1))
                    .map(|_| queue.stream(d))
                    .collect()
            })
            .collect();
        let mut cpu_seconds = 0.0_f64;
        let mut alive = vec![true; ndev];
        let mut total_iterations = 0u64;
        let mut useful_flops = 0u64;
        let iter_flops = flops::sshopm_iter_flops(m, n);

        let num_chunks = batch.len().div_ceil(MAX_CHUNK_TENSORS);
        for chunk_index in 0..num_chunks {
            let lo = chunk_index * MAX_CHUNK_TENSORS;
            let hi = (lo + MAX_CHUNK_TENSORS).min(batch.len());
            // Zero-copy view into the arena: the chunk is never cloned,
            // faults or not.
            let chunk = batch.slice(lo..hi);
            // Bytes a faulted attempt had in flight when it was torn down.
            let (chunk_down_bytes, _) =
                problem_traffic_bytes(chunk.len(), starts.len(), m, n, std::mem::size_of::<S>());
            // Faults injected into this chunk, not yet resolved either way.
            let mut pending: Vec<gpusim::InjectedFault> = Vec::new();
            let mut rows: Option<Vec<Vec<Eigenpair<S>>>> = None;
            let mut ecc_failed_locals: Vec<usize> = Vec::new();

            'devices: for offset in 0..ndev {
                let dev = (chunk_index + offset) % ndev;
                if !alive[dev] {
                    if !self.failover {
                        // The chunk's home device is gone and we may not
                        // move the work: the whole chunk fails.
                        break 'devices;
                    }
                    continue 'devices;
                }
                if offset > 0 {
                    // The chunk runs somewhere other than its home device.
                    log.failovers += 1;
                }
                let stream = streams[dev][chunk_index % streams[dev].len()];
                for attempt in 0..=self.max_retries {
                    let site = FaultSite {
                        device_index: dev,
                        chunk_index,
                        attempt,
                    };
                    let faults = self.plan.faults_at(site, chunk.len());
                    log.injected.extend(faults.iter().cloned());
                    pending.extend(faults.iter().cloned());
                    let host_lost = faults.iter().any(|f| f.kind == FaultKind::HostLoss);
                    let device_lost =
                        host_lost || faults.iter().any(|f| f.kind == FaultKind::DeviceLoss);
                    let transient = faults.iter().any(|f| {
                        matches!(
                            f.kind,
                            FaultKind::WatchdogTimeout | FaultKind::TransferFailure
                        )
                    });
                    let outcome = if device_lost {
                        // Losing the board aborts the attempt; any other
                        // fault drawn alongside dies with it (and is
                        // observed as part of the failed launch). The
                        // in-flight upload is cancelled — only *this*
                        // stream's pending ops, other chunks keep their
                        // timeline slots — and the watchdog time shows up
                        // as a stall on the dead device's engine.
                        log.observed += faults.len();
                        let mark = queue.mark(stream);
                        queue.enqueue(
                            stream,
                            Op::HostToDevice {
                                bytes: chunk_down_bytes,
                            },
                        );
                        queue.cancel_from(mark);
                        queue.enqueue(
                            stream,
                            Op::Stall {
                                seconds: WATCHDOG_TIMEOUT_SECONDS,
                            },
                        );
                        if host_lost {
                            // The whole host dropped: every sibling device
                            // dies with it, so this chunk (and all later
                            // ones homed here) ladder to the next host's
                            // devices, then to the CPU.
                            let struck = self.host_of.get(dev).copied().unwrap_or(0);
                            for (d, a) in alive.iter_mut().enumerate() {
                                if self.host_of.get(d).copied().unwrap_or(0) == struck {
                                    *a = false;
                                }
                            }
                        } else {
                            alive[dev] = false;
                        }
                        Attempt::DeviceLost
                    } else if transient {
                        // Same scoped teardown, plus exponential backoff
                        // before the retry re-enqueues on this stream.
                        log.observed += faults.len();
                        let mark = queue.mark(stream);
                        queue.enqueue(
                            stream,
                            Op::HostToDevice {
                                bytes: chunk_down_bytes,
                            },
                        );
                        queue.cancel_from(mark);
                        queue.enqueue(
                            stream,
                            Op::Stall {
                                seconds: WATCHDOG_TIMEOUT_SECONDS
                                    + BACKOFF_BASE_SECONDS * f64::from(1u32 << attempt.min(16)),
                            },
                        );
                        Attempt::Transient
                    } else {
                        // Clean launch straight from the borrowed arena
                        // slice — the fault-free tensors' results come out
                        // of exactly the buffers a fault-free run reads.
                        let ecc = faults.iter().find(|f| f.kind == FaultKind::EccCorruption);
                        let (res, report) = gpusim::enqueue_sshopm(
                            &mut queue,
                            stream,
                            &self.devices[dev],
                            chunk,
                            starts,
                            solver.policy(),
                            alpha,
                            variant,
                        )?;
                        useful_flops += report.useful_flops;
                        let mut chunk_rows = res.results;
                        total_iterations += chunk_rows
                            .iter()
                            .flatten()
                            .map(|p| p.iterations as u64)
                            .sum::<u64>();
                        if let Some(f) = ecc {
                            // ECC corruption hits one tensor: copy just its
                            // packed entries (15 scalars at the paper
                            // shape) into a one-tensor scratch batch,
                            // flip an entry to NaN, and launch that alone —
                            // never the whole chunk.
                            let j = f.tensor_index.unwrap_or(0);
                            let entry = self.plan.ecc_entry(site, num_entries);
                            let corrupted = corrupt_tensor(&chunk.get(j).to_owned(), entry);
                            let scratch = match TensorBatch::from_tensors(&[corrupted]) {
                                Ok(b) => b,
                                // The tensor came out of a valid batch, so
                                // its shape cannot overflow the arena stride.
                                Err(e) => {
                                    return Err(BackendError(format!("ECC scratch batch: {e}")))
                                }
                            };
                            let (pres, preport) = gpusim::enqueue_sshopm(
                                &mut queue,
                                stream,
                                &self.devices[dev],
                                &scratch,
                                starts,
                                solver.policy(),
                                alpha,
                                variant,
                            )?;
                            useful_flops += preport.useful_flops;
                            let prow = pres.results.into_iter().next().unwrap_or_default();
                            total_iterations +=
                                prow.iter().map(|p| p.iterations as u64).sum::<u64>();
                            let detected = prow.iter().any(|p| !p.is_finite());
                            chunk_rows[j] = prow;
                            if detected {
                                log.observed += 1;
                            }
                            if self.failover {
                                // Re-solve just the poisoned tensor on the
                                // CPU from the pristine arena slice — same
                                // kernels, bit-identical eigenpairs.
                                let started = std::time::Instant::now();
                                let cpu = BatchSolver::new(solver).solve_sequential(
                                    &*cpu_kernels,
                                    chunk.slice(j..j + 1),
                                    starts,
                                );
                                cpu_seconds += started.elapsed().as_secs_f64();
                                total_iterations += cpu.total_iterations;
                                useful_flops += cpu.total_iterations * iter_flops;
                                chunk_rows[j] = cpu.results.into_iter().next().unwrap_or_default();
                                log.degraded = true;
                            } else {
                                // The poisoned tensor fails alone; the
                                // rest of the chunk stands.
                                chunk_rows[j] = Vec::new();
                                ecc_failed_locals.push(j);
                                log.failed += 1;
                                if let Some(pos) = pending.iter().position(|p| p == f) {
                                    pending.remove(pos);
                                }
                            }
                        }
                        Attempt::Completed(chunk_rows)
                    };
                    match outcome {
                        Attempt::Completed(r) => {
                            rows = Some(r);
                            break 'devices;
                        }
                        Attempt::DeviceLost => {
                            // Sticky: stop retrying here. Failover (if
                            // any) happens at the device loop.
                            if !self.failover {
                                break 'devices;
                            }
                            continue 'devices;
                        }
                        Attempt::Transient => {
                            if attempt < self.max_retries {
                                log.retries += 1;
                            } else if !self.failover {
                                break 'devices;
                            }
                            // Retries exhausted with failover: fall
                            // through to the next device.
                        }
                    }
                }
            }

            if rows.is_none() && self.failover {
                // Every device is dead or exhausted: degrade to the CPU.
                log.failovers += 1;
                log.degraded = true;
                let started = std::time::Instant::now();
                let cpu = BatchSolver::new(solver).solve_sequential(&*cpu_kernels, chunk, starts);
                cpu_seconds += started.elapsed().as_secs_f64();
                total_iterations += cpu.total_iterations;
                useful_flops += cpu.total_iterations * iter_flops;
                rows = Some(cpu.results);
            }

            match rows {
                Some(r) => {
                    for (local, row) in r.into_iter().enumerate() {
                        results[lo + local] = row;
                    }
                    for j in ecc_failed_locals {
                        log.failed_indices.push(lo + j);
                    }
                    log.recovered += pending.len();
                }
                None => {
                    log.failed += pending.len();
                    log.failed_indices.extend(lo..hi);
                }
            }
        }

        log.failed_indices.sort_unstable();
        if telemetry.is_enabled() {
            telemetry.counter("fault.injected", log.injected.len() as u64);
            telemetry.counter("fault.observed", log.observed as u64);
            telemetry.counter("fault.recovered", log.recovered as u64);
            telemetry.counter("fault.retries", u64::from(log.retries));
            telemetry.counter("fault.failovers", u64::from(log.failovers));
            telemetry.counter("fault.failed_tensors", log.failed_indices.len() as u64);
        }
        // Devices run concurrently (the scheduler resolves their streams
        // against independent engines); CPU fallback work serializes after.
        let timeline = queue.synchronize();
        timeline.emit(telemetry);
        let wall = timeline.makespan() + cpu_seconds;
        let report = BatchReport {
            backend: label,
            kernel: effective.name().to_string(),
            solver: solver.name().to_string(),
            results,
            total_iterations,
            seconds: wall,
            useful_flops,
            profiles: Vec::new(),
            hosts: Vec::new(),
            comm: telemetry::CommStats::default(),
            fault_log: log,
            kernel_cache: crate::backends::kernel_cache_delta(&cache_before),
            timeline: Some(timeline),
        };
        crate::backends::emit_run_report(telemetry, &report);
        Ok(report)
    }
}

/// Parse a `--faults` spec string into a [`FaultPlan`].
///
/// Grammar: comma-separated `key=value` fields, e.g.
/// `seed=42,ecc=0.01,watchdog=0.005,transfer=0.005,device-loss=0.001`.
/// Keys: `seed` (u64, default 0) and the five per-attempt probabilities
/// (`ecc`, `watchdog`, `transfer`, `device-loss`, `host-loss`), each in
/// `[0, 1]`, default 0.
pub fn parse_fault_plan(s: &str) -> Result<FaultPlan, BackendError> {
    let mut plan = FaultPlan::new(0);
    for field in s.split(',') {
        let field = field.trim();
        if field.is_empty() {
            continue;
        }
        let Some((key, value)) = field.split_once('=') else {
            return Err(BackendError(format!(
                "malformed fault field {field:?} in {s:?}: expected key=value"
            )));
        };
        match key.trim() {
            "seed" => {
                plan.seed = value.trim().parse::<u64>().map_err(|_| {
                    BackendError(format!(
                        "invalid fault seed {value:?} in {s:?}: expected a non-negative integer"
                    ))
                })?;
            }
            key @ ("ecc" | "watchdog" | "transfer" | "device-loss" | "host-loss") => {
                let p = value.trim().parse::<f64>().map_err(|_| {
                    BackendError(format!(
                        "invalid probability {value:?} for fault kind {key:?} in {s:?}"
                    ))
                })?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(BackendError(format!(
                        "probability {p} for fault kind {key:?} in {s:?} is outside [0, 1]"
                    )));
                }
                plan = match key {
                    "ecc" => plan.with_ecc(p),
                    "watchdog" => plan.with_watchdog(p),
                    "transfer" => plan.with_transfer(p),
                    "device-loss" => plan.with_device_loss(p),
                    _ => plan.with_host_loss(p),
                };
            }
            other => {
                return Err(BackendError(format!(
                    "unknown fault kind {other:?} in {s:?}: expected seed, ecc, watchdog, \
                     transfer, device-loss or host-loss"
                )));
            }
        }
    }
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_fault_specs() {
        let plan = parse_fault_plan(
            "seed=42,ecc=0.5,watchdog=0.25,transfer=0.125,device-loss=0.0625,host-loss=0.03125",
        )
        .unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.ecc, 0.5);
        assert_eq!(plan.watchdog, 0.25);
        assert_eq!(plan.transfer, 0.125);
        assert_eq!(plan.device_loss, 0.0625);
        assert_eq!(plan.host_loss, 0.03125);
        assert!(plan.is_active());
    }

    #[test]
    fn parses_partial_and_spaced_specs() {
        let plan = parse_fault_plan(" seed=7 , ecc=1.0 ").unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.ecc, 1.0);
        assert_eq!(plan.watchdog, 0.0);
        let empty = parse_fault_plan("").unwrap();
        assert!(!empty.is_active());
    }

    #[test]
    fn rejects_malformed_fault_specs() {
        for (spec, needle) in [
            ("ecc", "expected key=value"),
            ("ecc=x", "invalid probability"),
            ("ecc=1.5", "outside [0, 1]"),
            ("ecc=-0.1", "outside [0, 1]"),
            ("seed=-1", "invalid fault seed"),
            ("cosmic-ray=0.5", "unknown fault kind"),
        ] {
            let err = parse_fault_plan(spec).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "{spec:?} -> {err}, wanted {needle:?}"
            );
        }
    }

    #[test]
    fn from_spec_rejects_cpu_backends() {
        let cpu = BackendSpec::Cpu { threads: 4 };
        let err = ResilientBackend::from_spec(&cpu, KernelStrategy::General, FaultPlan::new(0))
            .unwrap_err();
        assert!(err.to_string().contains("gpusim"), "{err}");
    }

    #[test]
    fn from_spec_builds_gpu_device_lists() {
        let spec = BackendSpec::parse("gpusim:tesla-c2050:3").unwrap();
        let backend =
            ResilientBackend::from_spec(&spec, KernelStrategy::General, FaultPlan::new(1))
                .unwrap()
                .with_retries(5)
                .with_failover(true);
        assert_eq!(backend.devices.len(), 3);
        assert_eq!(backend.max_retries, 5);
        assert!(backend.failover);
        assert_eq!(
            SolveBackend::<f64>::label(&backend),
            "resilient:gpusim:tesla-c2050:3"
        );
    }

    #[test]
    fn from_spec_builds_cluster_host_maps() {
        let spec = BackendSpec::parse("cluster:3:2").unwrap();
        let backend =
            ResilientBackend::from_spec(&spec, KernelStrategy::General, FaultPlan::new(1)).unwrap();
        assert_eq!(backend.devices.len(), 6);
        assert_eq!(backend.host_of, vec![0, 0, 1, 1, 2, 2]);
        assert_eq!(backend.num_hosts(), 3);
        assert_eq!(
            SolveBackend::<f64>::label(&backend),
            "resilient:cluster:gpusim:tesla-c2050:3x2"
        );
    }

    #[test]
    fn zero_streams_is_a_typed_error_naming_the_flag() {
        let spec = BackendSpec::parse("gpusim:2").unwrap();
        let backend =
            ResilientBackend::from_spec(&spec, KernelStrategy::General, FaultPlan::new(0)).unwrap();
        let err = backend.with_streams(0).unwrap_err();
        assert!(err.to_string().contains("--streams"), "{err}");
    }
}
