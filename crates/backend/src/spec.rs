//! Declarative backend selection: parse `cpu:8` / `gpusim:tesla-c2050:4`
//! strings into [`BackendSpec`] values and build [`SolveBackend`] objects.

use crate::backends::{
    CpuParallel, CpuSequential, GpuSimBackend, MultiGpuBackend, PipelinedBackend, SolveBackend,
};
use crate::cluster::ClusterBackend;
use crate::strategy::KernelStrategy;
use gpusim::{DeviceSpec, TransferModel};
use symtensor::Scalar;

/// Error from parsing a backend spec or kernel-strategy token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackendError(pub String);

impl std::fmt::Display for BackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for BackendError {}

impl From<gpusim::GpuError> for BackendError {
    fn from(e: gpusim::GpuError) -> Self {
        BackendError(e.to_string())
    }
}

impl From<symtensor::CombinatoricsOverflow> for BackendError {
    fn from(e: symtensor::CombinatoricsOverflow) -> Self {
        BackendError(e.to_string())
    }
}

impl From<kernelgen::KernelError> for BackendError {
    fn from(e: kernelgen::KernelError) -> Self {
        BackendError(e.to_string())
    }
}

/// The GPU models the simulator knows how to profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceKind {
    /// Tesla C2050 (Fermi) — the paper's primary device.
    TeslaC2050,
    /// Tesla C1060 (GT200) — the paper's previous-generation comparison.
    TeslaC1060,
    /// GeForce GTX 580 (GF110) — consumer Fermi, higher clocks.
    Gtx580,
}

impl DeviceKind {
    /// Every known device model.
    pub const ALL: [DeviceKind; 3] = [
        DeviceKind::TeslaC2050,
        DeviceKind::TeslaC1060,
        DeviceKind::Gtx580,
    ];

    /// Canonical spec-string slug (`tesla-c2050`, `tesla-c1060`, `gtx-580`).
    pub fn name(&self) -> &'static str {
        match self {
            DeviceKind::TeslaC2050 => "tesla-c2050",
            DeviceKind::TeslaC1060 => "tesla-c1060",
            DeviceKind::Gtx580 => "gtx-580",
        }
    }

    /// The full simulator device model.
    pub fn spec(&self) -> DeviceSpec {
        match self {
            DeviceKind::TeslaC2050 => DeviceSpec::tesla_c2050(),
            DeviceKind::TeslaC1060 => DeviceSpec::tesla_c1060(),
            DeviceKind::Gtx580 => DeviceSpec::gtx_580(),
        }
    }

    /// Parse a device slug; accepts short aliases (`c2050`, `gtx580`).
    pub fn parse(s: &str) -> Result<Self, BackendError> {
        match s {
            "tesla-c2050" | "c2050" => Ok(DeviceKind::TeslaC2050),
            "tesla-c1060" | "c1060" => Ok(DeviceKind::TeslaC1060),
            "gtx-580" | "gtx580" => Ok(DeviceKind::Gtx580),
            other => Err(BackendError(format!(
                "unknown device {other:?}: expected one of tesla-c2050, tesla-c1060, gtx-580"
            ))),
        }
    }
}

impl std::fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Map a `DeviceSpec` marketing name back to its spec-string slug.
pub(crate) fn device_slug(name: &str) -> String {
    for kind in DeviceKind::ALL {
        if kind.spec().name == name {
            return kind.name().to_string();
        }
    }
    name.split(" (")
        .next()
        .unwrap_or(name)
        .to_lowercase()
        .replace(' ', "-")
}

/// A parsed backend selection, one of:
///
/// | spec string            | meaning                                   |
/// |------------------------|-------------------------------------------|
/// | `cpu`                  | sequential, one core                      |
/// | `cpu:8`                | rayon pool with 8 workers                 |
/// | `cpu:all`, `cpu:0`     | the global rayon pool (all cores)         |
/// | `gpusim`               | one simulated Tesla C2050                 |
/// | `gpusim:gtx-580`       | one simulated device of the named model   |
/// | `gpusim:4`             | four simulated Tesla C2050s               |
/// | `gpusim:tesla-c2050:4` | four simulated devices of the named model |
/// | `pipelined`            | one C2050, double-buffered streams        |
/// | `pipelined:gtx-580:2`  | two named devices, double-buffered        |
/// | `cluster`              | 2 hosts x 2 C2050s, QDR InfiniBand NICs   |
/// | `cluster:4`            | 4 hosts x 2 C2050s                        |
/// | `cluster:4:2`          | 4 hosts x 2 C2050s                        |
/// | `cluster:4:2:3`        | same, 3 streams per device                |
/// | `cluster:gtx-580:1:4`  | one host with 4 named devices             |
///
/// `pipelined` takes the same `[:device][:count]` fields as `gpusim` but
/// builds the stream-based [`PipelinedBackend`], which chunks the batch
/// and overlaps PCIe transfers with kernels on each device's engines.
///
/// `cluster` takes `[:device][:hosts[:devices[:streams]]]` and builds the
/// sharded [`ClusterBackend`]: the batch is cut into one contiguous arena
/// slice per host, each non-root shard pays a modeled NIC round trip, and
/// each host runs its shard on its own devices (pipelined when
/// `streams > 1`).
///
/// `Display` renders the canonical minimal form, so specs round-trip
/// through parse → `Display` → parse at the value level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendSpec {
    /// CPU execution: `threads == 1` is strictly sequential, `0` uses the
    /// global rayon pool, `k > 1` builds a dedicated `k`-worker pool.
    Cpu {
        /// Worker threads (1 = sequential, 0 = all cores).
        threads: usize,
    },
    /// Simulated-GPU execution on `devices` copies of `device`.
    GpuSim {
        /// The device model.
        device: DeviceKind,
        /// How many devices share the batch (≥ 1).
        devices: usize,
    },
    /// Stream-pipelined simulated-GPU execution on `devices` copies of
    /// `device` (double-buffered chunks; transfers overlap compute).
    Pipelined {
        /// The device model.
        device: DeviceKind,
        /// How many devices share the batch (≥ 1).
        devices: usize,
    },
    /// Cluster-sharded execution: `hosts` hosts, each with `devices`
    /// copies of `device` behind its own PCIe link, joined by modeled
    /// QDR-InfiniBand NICs. `streams > 1` pipelines each host's shard.
    Cluster {
        /// The device model installed in every host.
        device: DeviceKind,
        /// How many hosts share the batch (≥ 1; host 0 is the root).
        hosts: usize,
        /// Devices per host (≥ 1).
        devices: usize,
        /// Streams per device (≥ 1; 1 = plain synchronous launches).
        streams: usize,
    },
}

impl BackendSpec {
    /// Parse a spec string. See the type-level table for the grammar.
    pub fn parse(s: &str) -> Result<Self, BackendError> {
        let mut parts = s.split(':');
        let head = parts.next().unwrap_or("");
        match head {
            "cpu" => {
                let threads = match parts.next() {
                    None => 1,
                    Some("all") => 0,
                    Some(t) => t.parse::<usize>().map_err(|_| {
                        BackendError(format!(
                            "invalid thread count {t:?} in backend spec {s:?}: expected a \
                             non-negative integer or \"all\""
                        ))
                    })?,
                };
                if let Some(extra) = parts.next() {
                    return Err(BackendError(format!(
                        "trailing {extra:?} in backend spec {s:?}: cpu takes at most one \
                         \":threads\" field"
                    )));
                }
                Ok(BackendSpec::Cpu { threads })
            }
            head @ ("gpusim" | "pipelined") => {
                let (device, devices) = match (parts.next(), parts.next()) {
                    (None, _) => (DeviceKind::TeslaC2050, 1),
                    (Some(field), None) => {
                        // One field: either a device slug or a count
                        // shorthand for that many default devices.
                        if field.chars().next().is_some_and(|c| c.is_ascii_digit())
                            || field.starts_with('-')
                        {
                            (DeviceKind::TeslaC2050, parse_device_count(field, s)?)
                        } else {
                            (DeviceKind::parse(field)?, 1)
                        }
                    }
                    (Some(dev), Some(count)) => {
                        (DeviceKind::parse(dev)?, parse_device_count(count, s)?)
                    }
                };
                if let Some(extra) = parts.next() {
                    return Err(BackendError(format!(
                        "trailing {extra:?} in backend spec {s:?}: {head} takes at most \
                         \":device:count\""
                    )));
                }
                if head == "pipelined" {
                    Ok(BackendSpec::Pipelined { device, devices })
                } else {
                    Ok(BackendSpec::GpuSim { device, devices })
                }
            }
            "cluster" => {
                let rest: Vec<&str> = parts.collect();
                let (device, counts) = match rest.first() {
                    Some(field)
                        if !field.chars().next().is_some_and(|c| c.is_ascii_digit())
                            && !field.starts_with('-') =>
                    {
                        (DeviceKind::parse(field)?, &rest[1..])
                    }
                    _ => (DeviceKind::TeslaC2050, &rest[..]),
                };
                if counts.len() > 3 {
                    return Err(BackendError(format!(
                        "trailing {:?} in backend spec {s:?}: cluster takes at most \
                         \":device:hosts:devices:streams\"",
                        counts[3]
                    )));
                }
                let hosts = match counts.first() {
                    Some(c) => parse_count(c, s, "host", "host")?,
                    None => 2,
                };
                let devices = match counts.get(1) {
                    Some(c) => parse_count(c, s, "device", "device per host")?,
                    None => 2,
                };
                let streams = match counts.get(2) {
                    Some(c) => parse_count(c, s, "stream", "stream per device")?,
                    None => 1,
                };
                Ok(BackendSpec::Cluster {
                    device,
                    hosts,
                    devices,
                    streams,
                })
            }
            other => Err(BackendError(format!(
                "unknown backend {other:?}: expected \"cpu[:threads]\", \
                 \"gpusim[:device][:count]\", \"pipelined[:device][:count]\" or \
                 \"cluster[:device][:hosts[:devices[:streams]]]\""
            ))),
        }
    }

    /// Build the backend this spec describes, with the given kernel
    /// strategy. Multi-device specs model host↔device transfers over
    /// PCIe 2.0, as the paper's hardware used.
    ///
    /// Errors on degenerate hand-built specs (zero devices) — parsed
    /// specs always build, since the grammar rejects a zero count.
    pub fn build<S: Scalar>(
        &self,
        strategy: KernelStrategy,
    ) -> Result<Box<dyn SolveBackend<S>>, BackendError> {
        Ok(match *self {
            BackendSpec::Cpu { threads: 1 } => Box::new(CpuSequential::new(strategy)),
            BackendSpec::Cpu { threads } => Box::new(CpuParallel::new(threads, strategy)),
            BackendSpec::GpuSim { device, devices: 1 } => {
                Box::new(GpuSimBackend::new(device.spec(), strategy))
            }
            BackendSpec::GpuSim { device, devices } => Box::new(MultiGpuBackend::homogeneous(
                device.spec(),
                devices,
                TransferModel::pcie2(),
                strategy,
            )?),
            BackendSpec::Pipelined { device, devices } => Box::new(PipelinedBackend::homogeneous(
                device.spec(),
                devices,
                TransferModel::pcie2(),
                strategy,
            )?),
            BackendSpec::Cluster {
                device,
                hosts,
                devices,
                streams,
            } => Box::new(
                ClusterBackend::homogeneous(device.spec(), hosts, devices, strategy)?
                    .with_streams(streams)?,
            ),
        })
    }

    /// True for the simulated-GPU variants (which only support fixed
    /// shifts); lets callers validate the shift choice up front.
    pub fn is_gpu(&self) -> bool {
        matches!(
            self,
            BackendSpec::GpuSim { .. }
                | BackendSpec::Pipelined { .. }
                | BackendSpec::Cluster { .. }
        )
    }
}

fn parse_device_count(field: &str, whole: &str) -> Result<usize, BackendError> {
    parse_count(field, whole, "device", "device")
}

fn parse_count(field: &str, whole: &str, what: &str, need: &str) -> Result<usize, BackendError> {
    let count = field.parse::<usize>().map_err(|_| {
        BackendError(format!(
            "invalid {what} count {field:?} in backend spec {whole:?}: expected a positive \
             integer"
        ))
    })?;
    if count == 0 {
        return Err(BackendError(format!(
            "invalid {what} count 0 in backend spec {whole:?}: need at least one {need}"
        )));
    }
    Ok(count)
}

impl std::fmt::Display for BackendSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            BackendSpec::Cpu { threads: 1 } => f.write_str("cpu"),
            BackendSpec::Cpu { threads: 0 } => f.write_str("cpu:all"),
            BackendSpec::Cpu { threads } => write!(f, "cpu:{threads}"),
            BackendSpec::GpuSim {
                device: DeviceKind::TeslaC2050,
                devices: 1,
            } => f.write_str("gpusim"),
            BackendSpec::GpuSim { device, devices: 1 } => write!(f, "gpusim:{device}"),
            BackendSpec::GpuSim { device, devices } => write!(f, "gpusim:{device}:{devices}"),
            BackendSpec::Pipelined {
                device: DeviceKind::TeslaC2050,
                devices: 1,
            } => f.write_str("pipelined"),
            BackendSpec::Pipelined { device, devices: 1 } => write!(f, "pipelined:{device}"),
            BackendSpec::Pipelined { device, devices } => {
                write!(f, "pipelined:{device}:{devices}")
            }
            BackendSpec::Cluster {
                device,
                hosts,
                devices,
                streams,
            } => {
                f.write_str("cluster")?;
                if device != DeviceKind::TeslaC2050 {
                    write!(f, ":{device}")?;
                }
                if streams != 1 {
                    write!(f, ":{hosts}:{devices}:{streams}")
                } else if devices != 2 {
                    write!(f, ":{hosts}:{devices}")
                } else if hosts != 2 {
                    write!(f, ":{hosts}")
                } else {
                    Ok(())
                }
            }
        }
    }
}

impl std::str::FromStr for BackendSpec {
    type Err = BackendError;

    fn from_str(s: &str) -> Result<Self, BackendError> {
        BackendSpec::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_documented_grammar() {
        assert_eq!(
            BackendSpec::parse("cpu").unwrap(),
            BackendSpec::Cpu { threads: 1 }
        );
        assert_eq!(
            BackendSpec::parse("cpu:8").unwrap(),
            BackendSpec::Cpu { threads: 8 }
        );
        assert_eq!(
            BackendSpec::parse("cpu:all").unwrap(),
            BackendSpec::Cpu { threads: 0 }
        );
        assert_eq!(
            BackendSpec::parse("gpusim").unwrap(),
            BackendSpec::GpuSim {
                device: DeviceKind::TeslaC2050,
                devices: 1
            }
        );
        assert_eq!(
            BackendSpec::parse("gpusim:4").unwrap(),
            BackendSpec::GpuSim {
                device: DeviceKind::TeslaC2050,
                devices: 4
            }
        );
        assert_eq!(
            BackendSpec::parse("gpusim:gtx-580").unwrap(),
            BackendSpec::GpuSim {
                device: DeviceKind::Gtx580,
                devices: 1
            }
        );
        assert_eq!(
            BackendSpec::parse("gpusim:tesla-c1060:2").unwrap(),
            BackendSpec::GpuSim {
                device: DeviceKind::TeslaC1060,
                devices: 2
            }
        );
        assert_eq!(
            BackendSpec::parse("pipelined").unwrap(),
            BackendSpec::Pipelined {
                device: DeviceKind::TeslaC2050,
                devices: 1
            }
        );
        assert_eq!(
            BackendSpec::parse("pipelined:gtx-580:2").unwrap(),
            BackendSpec::Pipelined {
                device: DeviceKind::Gtx580,
                devices: 2
            }
        );
        assert_eq!(
            BackendSpec::parse("pipelined:4").unwrap(),
            BackendSpec::Pipelined {
                device: DeviceKind::TeslaC2050,
                devices: 4
            }
        );
        assert_eq!(
            BackendSpec::parse("cluster").unwrap(),
            BackendSpec::Cluster {
                device: DeviceKind::TeslaC2050,
                hosts: 2,
                devices: 2,
                streams: 1
            }
        );
        assert_eq!(
            BackendSpec::parse("cluster:4").unwrap(),
            BackendSpec::Cluster {
                device: DeviceKind::TeslaC2050,
                hosts: 4,
                devices: 2,
                streams: 1
            }
        );
        assert_eq!(
            BackendSpec::parse("cluster:1:4").unwrap(),
            BackendSpec::Cluster {
                device: DeviceKind::TeslaC2050,
                hosts: 1,
                devices: 4,
                streams: 1
            }
        );
        assert_eq!(
            BackendSpec::parse("cluster:gtx-580:4:2:3").unwrap(),
            BackendSpec::Cluster {
                device: DeviceKind::Gtx580,
                hosts: 4,
                devices: 2,
                streams: 3
            }
        );
    }

    #[test]
    fn rejects_malformed_specs_with_descriptive_errors() {
        for (spec, needle) in [
            ("cpu:", "invalid thread count"),
            ("cpu:x", "invalid thread count"),
            ("cpu:4:2", "trailing"),
            ("gpusim:-1", "invalid device count"),
            ("gpusim:0", "at least one device"),
            ("gpusim:tesla-c2050:0", "at least one device"),
            ("gpusim:quadro", "unknown device"),
            ("gpusim:tesla-c2050:2:2", "trailing"),
            ("pipelined:0", "at least one device"),
            ("pipelined:quadro", "unknown device"),
            ("pipelined:tesla-c2050:2:2", "trailing"),
            ("cluster:0", "at least one host"),
            ("cluster:2:0", "at least one device per host"),
            ("cluster:2:2:0", "at least one stream per device"),
            ("cluster:quadro", "unknown device"),
            ("cluster:x", "unknown device"),
            ("cluster:2:2:2:2", "trailing"),
            ("cluster:gtx-580:2:2:2:2", "trailing"),
            ("tpu", "unknown backend"),
            ("", "unknown backend"),
        ] {
            let err = BackendSpec::parse(spec).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "{spec:?} -> {err}, wanted {needle:?}"
            );
        }
    }

    #[test]
    fn display_is_canonical_and_reparses() {
        for s in [
            "cpu",
            "cpu:8",
            "cpu:all",
            "gpusim",
            "gpusim:gtx-580",
            "gpusim:tesla-c2050:4",
            "pipelined",
            "pipelined:gtx-580",
            "pipelined:tesla-c2050:4",
            "cluster",
            "cluster:4",
            "cluster:1:4",
            "cluster:2:2:3",
            "cluster:gtx-580",
            "cluster:gtx-580:4:2:3",
        ] {
            let spec = BackendSpec::parse(s).unwrap();
            assert_eq!(spec.to_string(), s);
            assert_eq!(BackendSpec::parse(&spec.to_string()).unwrap(), spec);
        }
        // Non-canonical inputs normalize.
        assert_eq!(BackendSpec::parse("cpu:1").unwrap().to_string(), "cpu");
        assert_eq!(BackendSpec::parse("cpu:0").unwrap().to_string(), "cpu:all");
        assert_eq!(
            BackendSpec::parse("gpusim:c2050:1").unwrap().to_string(),
            "gpusim"
        );
        assert_eq!(
            BackendSpec::parse("gpusim:gtx580").unwrap().to_string(),
            "gpusim:gtx-580"
        );
        assert_eq!(
            BackendSpec::parse("pipelined:c2050:1").unwrap().to_string(),
            "pipelined"
        );
        assert_eq!(
            BackendSpec::parse("cluster:c2050:2:2:1")
                .unwrap()
                .to_string(),
            "cluster"
        );
        assert_eq!(
            BackendSpec::parse("cluster:4:2").unwrap().to_string(),
            "cluster:4"
        );
    }

    #[test]
    fn device_slug_maps_marketing_names() {
        for kind in DeviceKind::ALL {
            assert_eq!(device_slug(kind.spec().name), kind.name());
        }
        assert_eq!(device_slug("Hypothetical X1 (Test)"), "hypothetical-x1");
    }
}
