//! [`BatchReport`]: one result type for every execution backend.

use gpusim::{InjectedFault, ProfileSnapshot, Timeline};
use sshopm::Eigenpair;
use symtensor::Scalar;
use telemetry::{
    CommStats, DeviceStats, FaultStats, Histogram, HostStats, KernelCacheStats, RunReport,
    ThroughputStats, WorkloadStats,
};

/// Per-device profile of a GPU-backed solve (empty for CPU backends).
#[derive(Debug, Clone)]
pub struct DeviceProfile {
    /// Index into the backend's device list (global, host-major, for
    /// cluster backends).
    pub device_index: usize,
    /// Index of the host owning this device (0 for single-host backends).
    pub host_index: usize,
    /// Tensors assigned to this device.
    pub num_tensors: usize,
    /// Host↔device transfer seconds attributed to this slice (0 when the
    /// backend models kernel time only, as the paper's timings do).
    pub transfer_seconds: f64,
    /// The full launch profile.
    pub snapshot: ProfileSnapshot,
}

/// The fault ledger of one batched solve: what was injected, what the
/// backend actually observed (NaN scans, failed launches), and how it was
/// resolved. Trivially all-zero for non-resilient backends.
///
/// Invariant maintained by `ResilientBackend`: every injected fault is
/// accounted for — `recovered + failed == injected.len()`.
#[derive(Debug, Clone, Default)]
pub struct FaultLog {
    /// Every fault the [`gpusim::FaultPlan`] injected, in injection order.
    pub injected: Vec<InjectedFault>,
    /// Faults the backend detected (failed attempts plus NaN-poisoned
    /// tensors found by the post-launch scan). With NaN poisoning this
    /// equals `injected.len()` — nothing goes wrong silently.
    pub observed: usize,
    /// Injected faults whose effects were fully recovered (the affected
    /// tensors ended up with correct eigenpairs).
    pub recovered: usize,
    /// Injected faults that could not be recovered.
    pub failed: usize,
    /// Batch-global indices of tensors with no valid result (empty result
    /// rows in the report). Sorted ascending.
    pub failed_indices: Vec<usize>,
    /// Launch attempts retried after a transient fault.
    pub retries: u32,
    /// Chunks moved to another device (or the CPU) after a device loss or
    /// retry exhaustion.
    pub failovers: u32,
    /// True if any work ran on the CPU fallback because every simulated
    /// device was lost or exhausted its retries.
    pub degraded: bool,
}

impl FaultLog {
    /// True when the ledger balances: every injected fault is either
    /// recovered or failed.
    pub fn accounts_for_all_faults(&self) -> bool {
        self.recovered + self.failed == self.injected.len()
    }

    /// The ledger in [`RunReport`] export form.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            injected: self.injected.len() as u64,
            observed: self.observed as u64,
            recovered: self.recovered as u64,
            failed: self.failed as u64,
            failed_tensors: self.failed_indices.len() as u64,
            retries: self.retries as u64,
            failovers: self.failovers as u64,
            degraded: self.degraded,
        }
    }

    /// One-line summary for CLI output, derived from the [`RunReport`]
    /// renderer so text and JSON can never disagree.
    pub fn summary(&self) -> String {
        self.stats().summary_line()
    }
}

/// Everything a batched solve reports, regardless of substrate:
/// the eigenpairs, the iteration/flop accounting, the wall time, and (for
/// GPU backends) the per-device profile snapshots.
///
/// This unifies what used to be scattered across `sshopm::BatchResult`,
/// `gpusim::LaunchReport`/`MultiReport` and ad-hoc `(seconds, iterations)`
/// tuples in the benchmark drivers.
#[derive(Debug, Clone)]
pub struct BatchReport<S> {
    /// Human-readable backend label (e.g. `cpu:4`, `gpusim:tesla-c2050`).
    pub backend: String,
    /// Kernel strategy actually in effect (after shape fallback).
    pub kernel: String,
    /// Solver that produced the eigenpairs (e.g. `sshopm`, `geap`,
    /// `qrst`).
    pub solver: String,
    /// Per-tensor, per-start eigenpairs: `results[t][v]`.
    pub results: Vec<Vec<Eigenpair<S>>>,
    /// Total SS-HOPM iterations across all solves.
    pub total_iterations: u64,
    /// Wall-clock seconds (measured for CPU backends, modeled for GPU).
    pub seconds: f64,
    /// Useful floating-point operations executed (FMA counted as 2).
    pub useful_flops: u64,
    /// One profile per device that received work; empty for CPU backends.
    pub profiles: Vec<DeviceProfile>,
    /// One row per host shard (NIC bytes/seconds, shard makespan); empty
    /// for single-host backends.
    pub hosts: Vec<HostStats>,
    /// Inter-node communication vs. the Al Daas et al. lower bound;
    /// all-zero for single-host backends.
    pub comm: CommStats,
    /// Fault-injection ledger; all-zero unless a resilient backend ran
    /// with an active fault plan.
    pub fault_log: FaultLog,
    /// Kernel-registry cache activity attributable to this solve (memo
    /// hits/misses, artifact-cache hits/misses, tapes generated). `None`
    /// when the solve touched no registry-managed kernels.
    pub kernel_cache: Option<KernelCacheStats>,
    /// The resolved stream/event timeline behind `seconds`, when the
    /// backend models asynchronous execution (`None` for CPU backends and
    /// the single-launch GPU backend, whose clock has no ops to overlap).
    pub timeline: Option<Timeline>,
}

impl<S: Scalar> BatchReport<S> {
    /// Number of tensors solved.
    pub fn num_tensors(&self) -> usize {
        self.results.len()
    }

    /// Starting vectors per tensor (0 for an empty batch).
    pub fn num_starts(&self) -> usize {
        self.results.first().map_or(0, Vec::len)
    }

    /// Flatten to `(tensor index, start index, eigenpair)` triples.
    pub fn iter_flat(&self) -> impl Iterator<Item = (usize, usize, &Eigenpair<S>)> {
        self.results
            .iter()
            .enumerate()
            .flat_map(|(t, row)| row.iter().enumerate().map(move |(v, p)| (t, v, p)))
    }

    /// Number of solves that converged.
    pub fn num_converged(&self) -> u64 {
        self.iter_flat().filter(|(_, _, p)| p.converged).count() as u64
    }

    /// Achieved GFLOP/s (0 for an empty or instantaneous batch).
    pub fn gflops(&self) -> f64 {
        if self.seconds > 0.0 {
            self.useful_flops as f64 / self.seconds / 1e9
        } else {
            0.0
        }
    }

    /// One-line summary, directly comparable across backends. Derived
    /// from the [`RunReport`] renderer so text and JSON can never
    /// disagree.
    pub fn summary(&self) -> String {
        self.run_report().headline()
    }

    /// The unified, schema-versioned observability record of this run.
    ///
    /// Latency distributions are derived from the stream timeline when the
    /// backend modeled one: `chunk` is the distribution of kernel-op
    /// durations (one launch per chunk), `stream` the per-stream busy
    /// windows, `device` the per-device completion times. Backends with no
    /// timeline (CPU substrates and the single-launch GPU backend) still
    /// report a `chunk` distribution — the whole batch as one chunk — so
    /// every backend's report carries p50/p90/p99 chunk latencies.
    pub fn run_report(&self) -> RunReport {
        let mut report = RunReport::new(self.backend.clone(), self.kernel.clone());
        report.solver = self.solver.clone();
        report.workload = WorkloadStats {
            num_tensors: self.num_tensors() as u64,
            num_starts: self.num_starts() as u64,
            total_solves: (self.num_tensors() * self.num_starts()) as u64,
            converged_solves: self.num_converged(),
            total_iterations: self.total_iterations,
        };
        report.throughput = ThroughputStats {
            seconds: self.seconds,
            useful_flops: self.useful_flops,
            gflops: self.gflops(),
            tensors_per_second: if self.seconds > 0.0 {
                self.num_tensors() as f64 / self.seconds
            } else {
                0.0
            },
        };
        report.faults = self.fault_log.stats();
        report.kernel_cache = self.kernel_cache;
        let timeline_chunks = self
            .timeline
            .as_ref()
            .map(Timeline::kernel_latencies)
            .filter(|h| !h.is_empty());
        match timeline_chunks {
            Some(chunks) => {
                report.push_latency("chunk", chunks);
                if let Some(t) = &self.timeline {
                    report.push_latency("stream", t.stream_latencies());
                    report.push_latency("device", t.device_latencies());
                }
            }
            None => {
                // No resolved ops to attribute: the batch is one chunk.
                let mut whole = Histogram::new();
                if self.num_tensors() > 0 || self.seconds > 0.0 {
                    whole.observe(self.seconds);
                }
                report.push_latency("chunk", whole);
            }
        }
        for p in &self.profiles {
            report.devices.push(DeviceStats {
                device_index: p.device_index as u64,
                host_index: p.host_index as u64,
                device: p.snapshot.device.clone(),
                num_tensors: p.num_tensors as u64,
                occupancy: p.snapshot.occupancy,
                gflops: p.snapshot.gflops,
                seconds: p.snapshot.seconds,
                transfer_seconds: p.transfer_seconds,
            });
        }
        report.hosts = self.hosts.clone();
        report.comm = self.comm.clone();
        if !self.hosts.is_empty() {
            // Per-host shard completion times, the cluster analogue of the
            // `device` distribution.
            let mut host_lat = Histogram::new();
            for h in &self.hosts {
                host_lat.observe(h.seconds);
            }
            report.push_latency("host", host_lat);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(lambda: f64, converged: bool) -> Eigenpair<f64> {
        Eigenpair {
            lambda,
            x: vec![1.0, 0.0, 0.0],
            iterations: 3,
            converged,
            alpha: 0.0,
        }
    }

    #[test]
    fn accessors_and_summary() {
        let report = BatchReport {
            backend: "cpu:4".to_string(),
            kernel: "general".to_string(),
            solver: "sshopm".to_string(),
            results: vec![
                vec![pair(2.0, true), pair(1.0, false)],
                vec![pair(0.5, true), pair(0.25, true)],
            ],
            total_iterations: 12,
            seconds: 0.5,
            useful_flops: 1_000_000_000,
            profiles: Vec::new(),
            hosts: Vec::new(),
            comm: CommStats::default(),
            fault_log: FaultLog::default(),
            kernel_cache: None,
            timeline: None,
        };
        assert_eq!(report.num_tensors(), 2);
        assert_eq!(report.num_starts(), 2);
        assert_eq!(report.num_converged(), 3);
        assert_eq!(report.iter_flat().count(), 4);
        assert!((report.gflops() - 2.0).abs() < 1e-12);
        let s = report.summary();
        assert!(s.contains("backend cpu:4"), "{s}");
        assert!(s.contains("2 tensors x 2 starts"), "{s}");
        assert!(s.contains("GFLOP/s"), "{s}");
    }

    #[test]
    fn empty_report_is_well_behaved() {
        let report: BatchReport<f64> = BatchReport {
            backend: "cpu".to_string(),
            kernel: "general".to_string(),
            solver: "sshopm".to_string(),
            results: Vec::new(),
            total_iterations: 0,
            seconds: 0.0,
            useful_flops: 0,
            profiles: Vec::new(),
            hosts: Vec::new(),
            comm: CommStats::default(),
            fault_log: FaultLog::default(),
            kernel_cache: None,
            timeline: None,
        };
        assert_eq!(report.num_tensors(), 0);
        assert_eq!(report.num_starts(), 0);
        assert_eq!(report.gflops(), 0.0);
    }
}
