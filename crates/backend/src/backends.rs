//! The [`SolveBackend`] trait and its four substrate implementations.

use crate::report::{BatchReport, DeviceProfile, FaultLog};
use crate::spec::BackendError;
use crate::strategy::{KernelRegistry, KernelStrategy};
use gpusim::{DeviceSpec, MultiGpu, ProfileSnapshot, TransferModel};
use sshopm::batch::BatchSolver;
use sshopm::Solver;
use std::time::Instant;
use symtensor::{flops, Scalar, TensorBatch};
use telemetry::{CommStats, Telemetry};

/// An execution substrate for the paper's batched SS-HOPM workload: many
/// same-shaped tensors, each solved from a shared set of starting vectors.
///
/// Implementations differ only in *where* the arithmetic runs; the
/// numerics are the identical library kernels everywhere, so all backends
/// produce bit-identical eigenpairs for the same kernel strategy (the
/// backend-parity test in this crate asserts exactly that).
///
/// The trait is object-safe: dispatch on `Box<dyn SolveBackend<S>>` built
/// from a [`crate::BackendSpec`].
pub trait SolveBackend<S: Scalar>: Sync {
    /// Human-readable backend label for reports (`cpu:4`, `gpusim:...`).
    fn label(&self) -> String;

    /// Solve every tensor from every starting vector with `solver`'s
    /// iteration scheme (SS-HOPM, GEAP, QRST, ...), recording progress on
    /// `telemetry`.
    ///
    /// The batch arrives as a [`TensorBatch`]: one contiguous arena of
    /// same-shape packed tensors, so every backend can hand sub-ranges
    /// around by zero-copy slicing and GPU-style substrates can model the
    /// host→device staging as a single coalesced transfer. Uniform shape
    /// is guaranteed by construction. CPU substrates run any
    /// [`Solver`]; GPU-simulated backends support only solvers that
    /// report a fixed shift via [`Solver::fixed_shift`] (SS-HOPM with
    /// `Shift::Fixed`, the paper's `α = 0` setting) and return a
    /// descriptive [`BackendError`] otherwise — adaptive shifts and the
    /// QR-based iteration need per-iterate spectral information the
    /// kernel model does not stage on-device. Overflowing shapes are
    /// reported as errors, never panics.
    fn solve_batch(
        &self,
        batch: &TensorBatch<S>,
        starts: &[Vec<S>],
        solver: &dyn Solver<S>,
        telemetry: &Telemetry,
    ) -> Result<BatchReport<S>, BackendError>;

    /// Like [`solve_batch`](SolveBackend::solve_batch), but also returns
    /// the unified [`telemetry::RunReport`] with the run's aggregated
    /// telemetry (counters, gauges, histograms) folded in. Every backend
    /// produces one, with per-chunk latency quantiles.
    fn solve_batch_with_report(
        &self,
        batch: &TensorBatch<S>,
        starts: &[Vec<S>],
        solver: &dyn Solver<S>,
        telemetry: &Telemetry,
    ) -> Result<(BatchReport<S>, telemetry::RunReport), BackendError> {
        let report = self.solve_batch(batch, starts, solver, telemetry)?;
        let mut run = report.run_report();
        if telemetry.is_enabled() {
            run.merge_telemetry(&telemetry.snapshot());
        }
        Ok((report, run))
    }
}

/// Emit the run's unified report as a structured `run.report` event, so
/// sinks (JSON-lines, memory) and the snapshot's event list carry the
/// same record the `report` renderers print. Called by every backend at
/// the end of a successful `solve_batch`.
pub(crate) fn emit_run_report<S: Scalar>(telemetry: &Telemetry, report: &BatchReport<S>) {
    if telemetry.is_enabled() {
        use serde::Serialize as _;
        telemetry.event("run.report", report.run_report().to_value());
    }
}

pub(crate) fn empty_report<S: Scalar>(
    label: String,
    kernel: KernelStrategy,
    solver: &dyn Solver<S>,
) -> BatchReport<S> {
    BatchReport {
        backend: label,
        kernel: kernel.name().to_string(),
        solver: solver.name().to_string(),
        results: Vec::new(),
        total_iterations: 0,
        seconds: 0.0,
        useful_flops: 0,
        profiles: Vec::new(),
        hosts: Vec::new(),
        comm: Default::default(),
        fault_log: FaultLog::default(),
        kernel_cache: None,
        timeline: None,
    }
}

/// What the process-wide kernel registry did since `before`, in the
/// [`telemetry::KernelCacheStats`] export form reports carry. `None` when
/// this solve touched no registry-managed kernels, so reports from paths
/// that never consult the registry stay unchanged.
pub(crate) fn kernel_cache_delta(
    before: &kernelgen::CacheStats,
) -> Option<telemetry::KernelCacheStats> {
    let d = KernelRegistry::global().stats().delta_since(before);
    if d.is_empty() {
        return None;
    }
    Some(telemetry::KernelCacheStats {
        memo_hits: d.memo_hits,
        memo_misses: d.memo_misses,
        disk_hits: d.disk_hits,
        disk_misses: d.disk_misses,
        generated: d.generated,
        generate_seconds: d.generate_seconds,
    })
}

fn cpu_solve_batch<S: Scalar>(
    label: String,
    strategy: KernelStrategy,
    threads: usize,
    batch: &TensorBatch<S>,
    starts: &[Vec<S>],
    solver: &dyn Solver<S>,
    telemetry: &Telemetry,
) -> Result<BatchReport<S>, BackendError> {
    if batch.is_empty() {
        return Ok(empty_report(label, strategy, solver));
    }
    let (m, n) = (batch.order(), batch.dim());
    let registry = KernelRegistry::global();
    let cache_before = registry.stats();
    // The batched strategy upgrades fixed-shift SS-HOPM to the lockstep
    // panel driver (LANE_WIDTH tensors per table walk). Adaptive solvers
    // keep the scalar per-tensor loop with the same lane-table kernels.
    if strategy == KernelStrategy::Batched {
        if let Some(alpha) = sshopm::lockstep_alpha(solver) {
            let kernels = registry.batched(m, n);
            let started = Instant::now();
            let result = sshopm::solve_batch_lockstep(
                &kernels,
                batch.view(),
                starts,
                alpha,
                solver.policy(),
                threads,
                telemetry,
            );
            let seconds = started.elapsed().as_secs_f64();
            let report = BatchReport {
                backend: label,
                kernel: strategy.name().to_string(),
                solver: solver.name().to_string(),
                useful_flops: result.total_iterations * flops::sshopm_iter_flops(m, n),
                results: result.results,
                total_iterations: result.total_iterations,
                seconds,
                profiles: Vec::new(),
                hosts: Vec::new(),
                comm: Default::default(),
                fault_log: FaultLog::default(),
                kernel_cache: kernel_cache_delta(&cache_before),
                timeline: None,
            };
            emit_run_report(telemetry, &report);
            return Ok(report);
        }
    }
    let plan = registry.plan::<S>(m, n, strategy);
    let started = Instant::now();
    let result = BatchSolver::new(solver).with_threads(threads).run(
        &*plan.kernels,
        batch,
        starts,
        telemetry,
    );
    let seconds = started.elapsed().as_secs_f64();
    let report = BatchReport {
        backend: label,
        kernel: plan.effective.name().to_string(),
        solver: solver.name().to_string(),
        useful_flops: result.total_iterations * flops::sshopm_iter_flops(m, n),
        results: result.results,
        total_iterations: result.total_iterations,
        seconds,
        profiles: Vec::new(),
        hosts: Vec::new(),
        comm: Default::default(),
        fault_log: FaultLog::default(),
        kernel_cache: kernel_cache_delta(&cache_before),
        timeline: None,
    };
    emit_run_report(telemetry, &report);
    Ok(report)
}

/// The paper's "CPU – 1 core" row: strictly sequential on the calling
/// thread, no thread pool involved.
#[derive(Debug, Clone, Copy)]
pub struct CpuSequential {
    /// Kernel implementation to use.
    pub strategy: KernelStrategy,
}

impl CpuSequential {
    /// A sequential CPU backend with the given kernel strategy.
    pub fn new(strategy: KernelStrategy) -> Self {
        Self { strategy }
    }
}

impl<S: Scalar> SolveBackend<S> for CpuSequential {
    fn label(&self) -> String {
        "cpu".to_string()
    }

    fn solve_batch(
        &self,
        batch: &TensorBatch<S>,
        starts: &[Vec<S>],
        solver: &dyn Solver<S>,
        telemetry: &Telemetry,
    ) -> Result<BatchReport<S>, BackendError> {
        cpu_solve_batch(
            SolveBackend::<S>::label(self),
            self.strategy,
            1,
            batch,
            starts,
            solver,
            telemetry,
        )
    }
}

/// The paper's OpenMP rows: rayon `par_iter` over tensors.
#[derive(Debug, Clone, Copy)]
pub struct CpuParallel {
    /// Worker threads: `0` = the global rayon pool, `k` = a dedicated
    /// pool of exactly `k` workers (the 4-core / 8-core benchmark rows).
    pub threads: usize,
    /// Kernel implementation to use.
    pub strategy: KernelStrategy,
}

impl CpuParallel {
    /// A parallel CPU backend on `threads` workers (`0` = all cores).
    pub fn new(threads: usize, strategy: KernelStrategy) -> Self {
        Self { threads, strategy }
    }
}

impl<S: Scalar> SolveBackend<S> for CpuParallel {
    fn label(&self) -> String {
        if self.threads == 0 {
            "cpu:all".to_string()
        } else {
            format!("cpu:{}", self.threads)
        }
    }

    fn solve_batch(
        &self,
        batch: &TensorBatch<S>,
        starts: &[Vec<S>],
        solver: &dyn Solver<S>,
        telemetry: &Telemetry,
    ) -> Result<BatchReport<S>, BackendError> {
        cpu_solve_batch(
            SolveBackend::<S>::label(self),
            self.strategy,
            self.threads,
            batch,
            starts,
            solver,
            telemetry,
        )
    }
}

/// Extract the fixed shift the GPU kernels support, or return an error
/// pointing at the CPU backends.
pub(crate) fn fixed_alpha<S: Scalar>(
    solver: &dyn Solver<S>,
    what: &str,
) -> Result<f64, BackendError> {
    match solver.fixed_shift() {
        Some(alpha) => Ok(alpha),
        None => Err(BackendError(format!(
            "{what} supports only Shift::Fixed (the paper's GPU setting); solver `{}` \
             needs per-iterate host work — run it on a cpu backend",
            solver.name()
        ))),
    }
}

/// Record the same progress counters the CPU paths emit, so traces from
/// different substrates stay comparable.
pub(crate) fn record_gpu_batch_counters<S: Scalar>(
    telemetry: &Telemetry,
    results: &[Vec<sshopm::Eigenpair<S>>],
    total_iterations: u64,
) {
    if !telemetry.is_enabled() {
        return;
    }
    let solves: u64 = results.iter().map(|row| row.len() as u64).sum();
    let converged: u64 = results
        .iter()
        .flat_map(|row| row.iter())
        .filter(|p| p.converged)
        .count() as u64;
    telemetry.counter("batch.tensors_done", results.len() as u64);
    telemetry.counter("batch.solves", solves);
    telemetry.counter("batch.converged", converged);
    telemetry.counter("batch.iterations", total_iterations);
}

pub(crate) fn total_iterations_of<S: Scalar>(results: &[Vec<sshopm::Eigenpair<S>>]) -> u64 {
    results
        .iter()
        .flat_map(|row| row.iter())
        .map(|p| p.iterations as u64)
        .sum()
}

/// One simulated GPU (Section V of the paper): one thread block per
/// tensor, one thread per starting vector. Wall time is the analytic
/// kernel estimate; transfers are excluded, as in the paper's timings.
#[derive(Debug, Clone)]
pub struct GpuSimBackend {
    /// The device model to launch on.
    pub device: DeviceSpec,
    /// Kernel implementation to use (mapped onto a GPU variant).
    pub strategy: KernelStrategy,
}

impl GpuSimBackend {
    /// A single simulated device with the given kernel strategy.
    pub fn new(device: DeviceSpec, strategy: KernelStrategy) -> Self {
        Self { device, strategy }
    }
}

impl<S: Scalar> SolveBackend<S> for GpuSimBackend {
    fn label(&self) -> String {
        format!("gpusim:{}", crate::spec::device_slug(self.device.name))
    }

    fn solve_batch(
        &self,
        batch: &TensorBatch<S>,
        starts: &[Vec<S>],
        solver: &dyn Solver<S>,
        telemetry: &Telemetry,
    ) -> Result<BatchReport<S>, BackendError> {
        let label = SolveBackend::<S>::label(self);
        if batch.is_empty() {
            return Ok(empty_report(label, self.strategy, solver));
        }
        let alpha = fixed_alpha(solver, "GpuSimBackend")?;
        let (variant, effective) =
            crate::strategy::gpu_variant(self.strategy, batch.order(), batch.dim());
        let cache_before = KernelRegistry::global().stats();
        let _batch_span = telemetry.span("batch.solve");
        let (result, report) =
            gpusim::launch_sshopm(&self.device, batch, starts, solver.policy(), alpha, variant)?;
        let total_iterations = total_iterations_of(&result.results);
        record_gpu_batch_counters(telemetry, &result.results, total_iterations);
        let snapshot = ProfileSnapshot::from_report(&self.device, &report);
        snapshot.emit(telemetry);
        let batch_report = BatchReport {
            backend: label,
            kernel: effective.name().to_string(),
            solver: solver.name().to_string(),
            results: result.results,
            total_iterations,
            seconds: report.timing.seconds,
            useful_flops: report.useful_flops,
            profiles: vec![DeviceProfile {
                device_index: 0,
                host_index: 0,
                num_tensors: batch.len(),
                transfer_seconds: 0.0,
                snapshot,
            }],
            hosts: Vec::new(),
            comm: Default::default(),
            fault_log: FaultLog::default(),
            kernel_cache: kernel_cache_delta(&cache_before),
            timeline: None,
        };
        emit_run_report(telemetry, &batch_report);
        Ok(batch_report)
    }
}

/// Several simulated GPUs sharing one host (Section V-B: the tensors are
/// independent, so the batch splits across devices with no communication).
/// Wall time is the slowest device's kernel-plus-transfer time.
#[derive(Debug, Clone)]
pub struct MultiGpuBackend {
    /// The device models (may be heterogeneous).
    pub devices: Vec<DeviceSpec>,
    /// Host↔device interconnect model.
    pub transfer: TransferModel,
    /// Kernel implementation to use (mapped onto a GPU variant).
    pub strategy: KernelStrategy,
}

impl MultiGpuBackend {
    /// A multi-device backend over `devices` with the given strategy.
    ///
    /// Returns an error if the device list is empty.
    pub fn new(
        devices: Vec<DeviceSpec>,
        transfer: TransferModel,
        strategy: KernelStrategy,
    ) -> Result<Self, BackendError> {
        if devices.is_empty() {
            return Err(BackendError(
                "multi-GPU backend needs at least one device".to_string(),
            ));
        }
        Ok(Self {
            devices,
            transfer,
            strategy,
        })
    }

    /// `count` identical devices; errors when `count == 0`.
    pub fn homogeneous(
        device: DeviceSpec,
        count: usize,
        transfer: TransferModel,
        strategy: KernelStrategy,
    ) -> Result<Self, BackendError> {
        Self::new(vec![device; count], transfer, strategy)
    }
}

impl<S: Scalar> SolveBackend<S> for MultiGpuBackend {
    fn label(&self) -> String {
        format!(
            "gpusim:{}:{}",
            crate::spec::device_slug(self.devices[0].name),
            self.devices.len()
        )
    }

    fn solve_batch(
        &self,
        batch: &TensorBatch<S>,
        starts: &[Vec<S>],
        solver: &dyn Solver<S>,
        telemetry: &Telemetry,
    ) -> Result<BatchReport<S>, BackendError> {
        let label = SolveBackend::<S>::label(self);
        if batch.is_empty() {
            return Ok(empty_report(label, self.strategy, solver));
        }
        let alpha = fixed_alpha(solver, "MultiGpuBackend")?;
        let (variant, effective) =
            crate::strategy::gpu_variant(self.strategy, batch.order(), batch.dim());
        let cache_before = KernelRegistry::global().stats();
        let _batch_span = telemetry.span("batch.solve");
        let mg = MultiGpu::new(self.devices.clone(), self.transfer)?;
        let (result, report) = mg.launch(batch, starts, solver.policy(), alpha, variant)?;
        let total_iterations = total_iterations_of(&result.results);
        record_gpu_batch_counters(telemetry, &result.results, total_iterations);
        let profiles: Vec<DeviceProfile> = report
            .slices
            .iter()
            .map(|slice| {
                let snapshot =
                    ProfileSnapshot::from_report(&self.devices[slice.device_index], &slice.report);
                snapshot.emit(telemetry);
                DeviceProfile {
                    device_index: slice.device_index,
                    host_index: 0,
                    num_tensors: slice.num_tensors,
                    transfer_seconds: slice.transfer_seconds,
                    snapshot,
                }
            })
            .collect();
        report.timeline.emit(telemetry);
        let batch_report = BatchReport {
            backend: label,
            kernel: effective.name().to_string(),
            solver: solver.name().to_string(),
            results: result.results,
            total_iterations,
            seconds: report.seconds,
            useful_flops: report.useful_flops,
            profiles,
            hosts: Vec::new(),
            comm: CommStats::default(),
            fault_log: FaultLog::default(),
            kernel_cache: kernel_cache_delta(&cache_before),
            timeline: Some(report.timeline),
        };
        emit_run_report(telemetry, &batch_report);
        Ok(batch_report)
    }
}

/// Double-buffered asynchronous execution (the stream model of a real
/// CUDA driver): each device's share of the batch is cut into
/// `chunk_tensors`-sized pieces dealt round-robin across
/// `streams_per_device` streams, so chunk `k+1`'s upload overlaps chunk
/// `k`'s kernel on the device's single copy engine. Wall time is the
/// event timeline's makespan; results are bitwise identical to the
/// synchronous backends (chunking changes the clock, never the
/// arithmetic).
#[derive(Debug, Clone)]
pub struct PipelinedBackend {
    /// The device models (may be heterogeneous).
    pub devices: Vec<DeviceSpec>,
    /// Host↔device interconnect model.
    pub transfer: TransferModel,
    /// Kernel implementation to use (mapped onto a GPU variant).
    pub strategy: KernelStrategy,
    /// Streams per device (2 = classic double buffering).
    pub streams_per_device: usize,
    /// Tensors per chunk (each chunk is one upload + kernel + download).
    pub chunk_tensors: usize,
}

impl PipelinedBackend {
    /// Tensors per chunk unless overridden: matches the resilient
    /// backend's chunking so the two models agree on launch granularity.
    pub const DEFAULT_CHUNK_TENSORS: usize = 256;

    /// A pipelined backend over `devices` with 2 streams per device and
    /// the default chunk size; errors when the device list is empty.
    pub fn new(
        devices: Vec<DeviceSpec>,
        transfer: TransferModel,
        strategy: KernelStrategy,
    ) -> Result<Self, BackendError> {
        if devices.is_empty() {
            return Err(BackendError(
                "pipelined backend needs at least one device".to_string(),
            ));
        }
        Ok(Self {
            devices,
            transfer,
            strategy,
            streams_per_device: 2,
            chunk_tensors: Self::DEFAULT_CHUNK_TENSORS,
        })
    }

    /// `count` identical devices; errors when `count == 0`.
    pub fn homogeneous(
        device: DeviceSpec,
        count: usize,
        transfer: TransferModel,
        strategy: KernelStrategy,
    ) -> Result<Self, BackendError> {
        Self::new(vec![device; count], transfer, strategy)
    }

    /// Set the number of streams per device. Zero is an error (the CLI's
    /// `--streams` flag lands here): a device with no streams can never
    /// receive a chunk.
    pub fn with_streams(mut self, streams_per_device: usize) -> Result<Self, BackendError> {
        if streams_per_device == 0 {
            return Err(BackendError(
                "invalid --streams 0: need at least one stream per device".to_string(),
            ));
        }
        self.streams_per_device = streams_per_device;
        Ok(self)
    }

    /// Set the chunk size in tensors. Zero is an error (the CLI's
    /// `--chunk-tensors` flag lands here): a zero-sized pipeline chunk
    /// would make no progress.
    pub fn with_chunk_tensors(mut self, chunk_tensors: usize) -> Result<Self, BackendError> {
        if chunk_tensors == 0 {
            return Err(BackendError(
                "invalid --chunk-tensors 0: need at least one tensor per pipeline chunk"
                    .to_string(),
            ));
        }
        self.chunk_tensors = chunk_tensors;
        Ok(self)
    }
}

impl<S: Scalar> SolveBackend<S> for PipelinedBackend {
    fn label(&self) -> String {
        format!(
            "pipelined:gpusim:{}:{}x{}",
            crate::spec::device_slug(self.devices[0].name),
            self.devices.len(),
            self.streams_per_device
        )
    }

    fn solve_batch(
        &self,
        batch: &TensorBatch<S>,
        starts: &[Vec<S>],
        solver: &dyn Solver<S>,
        telemetry: &Telemetry,
    ) -> Result<BatchReport<S>, BackendError> {
        let label = SolveBackend::<S>::label(self);
        if batch.is_empty() {
            return Ok(empty_report(label, self.strategy, solver));
        }
        let alpha = fixed_alpha(solver, "PipelinedBackend")?;
        let (variant, effective) =
            crate::strategy::gpu_variant(self.strategy, batch.order(), batch.dim());
        let cache_before = KernelRegistry::global().stats();
        let _batch_span = telemetry.span("batch.solve");
        let mg = MultiGpu::new(self.devices.clone(), self.transfer)?;
        let (result, report) = mg.launch_pipelined(
            batch,
            starts,
            solver.policy(),
            alpha,
            variant,
            self.chunk_tensors,
            self.streams_per_device,
        )?;
        let total_iterations = total_iterations_of(&result.results);
        record_gpu_batch_counters(telemetry, &result.results, total_iterations);
        let profiles: Vec<DeviceProfile> = report
            .slices
            .iter()
            .map(|slice| {
                let snapshot =
                    ProfileSnapshot::from_report(&self.devices[slice.device_index], &slice.report);
                snapshot.emit(telemetry);
                DeviceProfile {
                    device_index: slice.device_index,
                    host_index: 0,
                    num_tensors: slice.num_tensors,
                    transfer_seconds: slice.transfer_seconds,
                    snapshot,
                }
            })
            .collect();
        report.timeline.emit(telemetry);
        let batch_report = BatchReport {
            backend: label,
            kernel: effective.name().to_string(),
            solver: solver.name().to_string(),
            results: result.results,
            total_iterations,
            seconds: report.seconds,
            useful_flops: report.useful_flops,
            profiles,
            hosts: Vec::new(),
            comm: CommStats::default(),
            fault_log: FaultLog::default(),
            kernel_cache: kernel_cache_delta(&cache_before),
            timeline: Some(report.timeline),
        };
        emit_run_report(telemetry, &batch_report);
        Ok(batch_report)
    }
}
