//! # backend — one [`SolveBackend`] trait behind every batched solve
//!
//! The paper's whole point is running the *same* SS-HOPM batch on
//! different substrates — sequential CPU, multicore OpenMP, one GPU, many
//! GPUs (Tables II/III) — and the kernel-implementation choice (general
//! loops, precomputed tables, blocked const-generic code, fully unrolled
//! straight-line code) is an axis *orthogonal* to the substrate. This
//! crate models both axes explicitly:
//!
//! * [`SolveBackend`] — the substrate: *where* the batch runs.
//!   Implementations: [`CpuSequential`], [`CpuParallel`],
//!   [`GpuSimBackend`], [`MultiGpuBackend`], and the fault-tolerant
//!   [`ResilientBackend`] (retry / failover / NaN recovery under an
//!   injected [`gpusim::FaultPlan`], ledgered in [`FaultLog`]).
//! * [`KernelStrategy`] — the kernel implementation: *how* `A·xᵐ` /
//!   `A·xᵐ⁻¹` are computed. Falls back gracefully when a strategy is
//!   unavailable for a shape (e.g. no generated unrolled kernel).
//! * [`BackendSpec`] — a declarative string form (`cpu`, `cpu:8`,
//!   `gpusim`, `gpusim:tesla-c2050:4`) so CLIs and benchmark drivers
//!   select backends without hand-rolled dispatch.
//! * [`BatchReport`] — one result type unifying what used to be scattered
//!   across `BatchResult`, `LaunchReport` and ad-hoc timing tuples:
//!   eigenpairs, total iterations, wall time, flop accounting and
//!   per-device profile snapshots.
//!
//! ```
//! use backend::{BackendSpec, KernelStrategy, SolveBackend};
//! use sshopm::{IterationPolicy, Shift, SsHopm};
//! use symtensor::TensorBatch;
//! use telemetry::Telemetry;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let tensors = TensorBatch::<f32>::random(4, 3, 4, &mut rng).unwrap();
//! let starts = sshopm::starts::random_uniform_starts::<f32, _>(3, 8, &mut rng);
//! let solver = SsHopm::new(Shift::Fixed(0.0)).with_policy(IterationPolicy::Fixed(10));
//!
//! let spec: BackendSpec = "gpusim".parse().unwrap();
//! let backend = spec.build::<f32>(KernelStrategy::Unrolled).unwrap();
//! let report = backend
//!     .solve_batch(&tensors, &starts, &solver, &Telemetry::disabled())
//!     .unwrap();
//! assert_eq!(report.num_tensors(), 4);
//! assert_eq!(report.total_iterations, 4 * 8 * 10);
//! ```

#![deny(missing_docs)]

mod backends;
mod cluster;
mod report;
mod resilient;
mod spec;
mod strategy;

pub use backends::{
    CpuParallel, CpuSequential, GpuSimBackend, MultiGpuBackend, PipelinedBackend, SolveBackend,
};
pub use cluster::ClusterBackend;
pub use report::{BatchReport, DeviceProfile, FaultLog};
pub use resilient::{parse_fault_plan, ResilientBackend};
pub use spec::{BackendError, BackendSpec, DeviceKind};
pub use strategy::{gpu_variant, KernelPlan, KernelRegistry, KernelStrategy};
