//! Cluster-parity acceptance (satellite): a single-host cluster is the
//! multi-GPU backend wearing a topology — `cluster:1:N` must produce
//! *byte-identical* eigenpairs, iteration counts and modeled time to
//! `gpusim:N`, clean and faulted alike. The root shard pays no NIC
//! traffic, so the communication model must also collapse to zero.
//!
//! The 10 000-tensor runs here are the PR's headline acceptance numbers;
//! `ci` runs this suite under `--release`.

use backend::{
    BackendSpec, BatchReport, ClusterBackend, KernelStrategy, MultiGpuBackend, ResilientBackend,
    SolveBackend,
};
use gpusim::{DeviceSpec, FaultPlan, TransferModel};
use rand::SeedableRng;
use sshopm::{starts, IterationPolicy, Shift, SsHopm};
use symtensor::TensorBatch;
use telemetry::Telemetry;

const NUM_TENSORS: usize = 10_000;
const NUM_STARTS: usize = 4;

fn workload() -> (TensorBatch<f32>, Vec<Vec<f32>>, SsHopm) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xc1a5);
    let tensors = TensorBatch::random(4, 3, NUM_TENSORS, &mut rng).unwrap();
    let starts = starts::random_uniform_starts::<f32, _>(3, NUM_STARTS, &mut rng);
    let solver = SsHopm::new(Shift::Fixed(0.0)).with_policy(IterationPolicy::Fixed(3));
    (tensors, starts, solver)
}

/// Bitwise equality of the numerics a user can observe: eigenpairs (λ
/// and x to the bit), per-start iteration counts and convergence flags.
/// Modeled time is asserted separately: resilient runs fold real
/// wall-clock time for CPU fallback work into `seconds`, so only clean
/// runs can pin it to the bit.
fn assert_results_bitwise_equal(got: &BatchReport<f32>, want: &BatchReport<f32>) {
    assert_eq!(got.total_iterations, want.total_iterations);
    assert_eq!(got.useful_flops, want.useful_flops);
    for ((t, v, g), (_, _, w)) in got.iter_flat().zip(want.iter_flat()) {
        assert_eq!(
            g.lambda.to_bits(),
            w.lambda.to_bits(),
            "tensor {t} start {v}: lambda {} != {}",
            g.lambda,
            w.lambda
        );
        assert_eq!(g.iterations, w.iterations, "tensor {t} start {v}");
        assert_eq!(g.converged, w.converged, "tensor {t} start {v}");
        for (gx, wx) in g.x.iter().zip(&w.x) {
            assert_eq!(gx.to_bits(), wx.to_bits(), "tensor {t} start {v}: x");
        }
    }
}

#[test]
fn single_host_cluster_matches_multi_gpu_bitwise_on_10k_tensors() {
    let (tensors, starts, solver) = workload();
    for devices in [1usize, 2, 3] {
        let cluster = ClusterBackend::homogeneous(
            DeviceSpec::tesla_c2050(),
            1,
            devices,
            KernelStrategy::Unrolled,
        )
        .unwrap();
        let multi = MultiGpuBackend::homogeneous(
            DeviceSpec::tesla_c2050(),
            devices,
            TransferModel::pcie2(),
            KernelStrategy::Unrolled,
        )
        .unwrap();
        let a = cluster
            .solve_batch(&tensors, &starts, &solver, &Telemetry::disabled())
            .unwrap();
        let b = multi
            .solve_batch(&tensors, &starts, &solver, &Telemetry::disabled())
            .unwrap();
        assert_results_bitwise_equal(&a, &b);
        assert_eq!(
            a.seconds.to_bits(),
            b.seconds.to_bits(),
            "modeled time diverged: {} vs {} (devices={devices})",
            a.seconds,
            b.seconds
        );
        // One host means no inter-host traffic at all: the comm model
        // vanishes instead of charging a phantom bound.
        assert_eq!(a.comm.nic_bytes, 0, "devices={devices}");
        assert_eq!(a.comm.lower_bound_bytes, 0, "devices={devices}");
        assert_eq!(a.hosts.len(), 1);
        assert_eq!(a.hosts[0].nic_down_bytes, 0);
        assert_eq!(a.hosts[0].nic_up_bytes, 0);
    }
}

#[test]
fn single_host_cluster_matches_multi_gpu_under_faults() {
    let (tensors, starts, solver) = workload();
    let plan = || {
        FaultPlan::new(20260808)
            .with_ecc(0.25)
            .with_watchdog(0.2)
            .with_transfer(0.2)
            .with_device_loss(0.01)
    };
    let cluster_spec = BackendSpec::parse("cluster:tesla-c2050:1:2").unwrap();
    let gpu_spec = BackendSpec::parse("gpusim:tesla-c2050:2").unwrap();
    let build = |spec: &BackendSpec| {
        ResilientBackend::from_spec(spec, KernelStrategy::Unrolled, plan())
            .unwrap()
            .with_retries(3)
            .with_failover(true)
    };
    let a = build(&cluster_spec)
        .solve_batch(&tensors, &starts, &solver, &Telemetry::disabled())
        .unwrap();
    let b = build(&gpu_spec)
        .solve_batch(&tensors, &starts, &solver, &Telemetry::disabled())
        .unwrap();
    // A single-host cluster is the same fault surface: same label, same
    // injection draws, same ledger, same bits out.
    assert_eq!(a.backend, b.backend, "single-host labels must not fork");
    assert_eq!(a.fault_log.injected, b.fault_log.injected);
    assert_eq!(a.fault_log.failed_indices, b.fault_log.failed_indices);
    assert_eq!(a.fault_log.retries, b.fault_log.retries);
    assert_eq!(a.fault_log.failovers, b.fault_log.failovers);
    assert!(!a.fault_log.injected.is_empty(), "plan should fire on 10k");
    assert!(a.fault_log.accounts_for_all_faults());
    assert_results_bitwise_equal(&a, &b);
}

#[test]
fn pipelined_single_host_cluster_matches_pipelined_backend_bitwise() {
    // The stream>1 path routes through the same chunked double-buffered
    // launcher as PipelinedBackend; results (not timelines) stay bitwise.
    let (tensors, starts, solver) = workload();
    let cluster =
        ClusterBackend::homogeneous(DeviceSpec::tesla_c2050(), 1, 2, KernelStrategy::Unrolled)
            .unwrap()
            .with_streams(2)
            .unwrap();
    let piped = backend::PipelinedBackend::homogeneous(
        DeviceSpec::tesla_c2050(),
        2,
        TransferModel::pcie2(),
        KernelStrategy::Unrolled,
    )
    .unwrap()
    .with_streams(2)
    .unwrap();
    let a = cluster
        .solve_batch(&tensors, &starts, &solver, &Telemetry::disabled())
        .unwrap();
    let b = piped
        .solve_batch(&tensors, &starts, &solver, &Telemetry::disabled())
        .unwrap();
    assert_eq!(a.total_iterations, b.total_iterations);
    for ((t, v, g), (_, _, w)) in a.iter_flat().zip(b.iter_flat()) {
        assert_eq!(g.lambda.to_bits(), w.lambda.to_bits(), "t{t} v{v}");
    }
}
