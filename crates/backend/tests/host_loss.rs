//! Host-loss failover acceptance (satellite): whole-host failures on a
//! cluster-shaped resilient backend must walk the ladder host → sibling
//! host → CPU, keep the [`backend::FaultLog`] ledger balanced, and never
//! emit a silently wrong eigenpair. `ci` runs this suite seeded.

use backend::{
    BackendSpec, CpuSequential, FaultLog, KernelStrategy, ResilientBackend, SolveBackend,
};
use gpusim::{FaultKind, FaultPlan};
use rand::SeedableRng;
use sshopm::{starts, Eigenpair, IterationPolicy, Shift, SsHopm};
use symtensor::TensorBatch;
use telemetry::Telemetry;

fn workload(t: usize, v: usize, seed: u64) -> (TensorBatch<f32>, Vec<Vec<f32>>, SsHopm) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let tensors = TensorBatch::random(4, 3, t, &mut rng).unwrap();
    let starts = starts::random_uniform_starts::<f32, _>(3, v, &mut rng);
    let solver = SsHopm::new(Shift::Fixed(0.0)).with_policy(IterationPolicy::Fixed(3));
    (tensors, starts, solver)
}

fn cpu_reference(
    tensors: &TensorBatch<f32>,
    starts: &[Vec<f32>],
    solver: &SsHopm,
) -> Vec<Vec<Eigenpair<f32>>> {
    CpuSequential::new(KernelStrategy::General)
        .solve_batch(tensors, starts, solver, &Telemetry::disabled())
        .unwrap()
        .results
}

/// Every tensor is bitwise-recovered or exactly reported failed.
fn assert_recovered_or_reported(
    results: &[Vec<Eigenpair<f32>>],
    reference: &[Vec<Eigenpair<f32>>],
    log: &FaultLog,
) {
    assert!(
        log.accounts_for_all_faults(),
        "ledger out of balance: {}",
        log.summary()
    );
    for (t, (got, want)) in results.iter().zip(reference).enumerate() {
        if log.failed_indices.contains(&t) {
            assert!(got.is_empty(), "failed tensor {t} has a result row");
            continue;
        }
        assert_eq!(got.len(), want.len(), "tensor {t} row length");
        for (g, w) in got.iter().zip(want) {
            assert_eq!(g.lambda.to_bits(), w.lambda.to_bits(), "tensor {t}");
        }
    }
}

fn resilient(spec: &str, plan: FaultPlan) -> ResilientBackend {
    let spec = BackendSpec::parse(spec).unwrap();
    ResilientBackend::from_spec(&spec, KernelStrategy::General, plan)
        .unwrap()
        .with_retries(2)
        .with_failover(true)
}

/// The headline seeded run: host losses sprinkled over a 2×2 cluster
/// alongside the transient kinds; the ledger balances and every tensor
/// is recovered bitwise or reported.
#[test]
fn seeded_host_loss_run_keeps_the_ledger_balanced() {
    let (tensors, starts, solver) = workload(4_000, 4, 0x405e);
    let plan = FaultPlan::new(20260807)
        .with_ecc(0.1)
        .with_watchdog(0.1)
        .with_transfer(0.1)
        .with_host_loss(0.15);
    let backend = resilient("cluster:2:2", plan);
    let report = backend
        .solve_batch(&tensors, &starts, &solver, &Telemetry::disabled())
        .unwrap();
    let log = &report.fault_log;
    assert!(
        log.injected.iter().any(|f| f.kind == FaultKind::HostLoss),
        "seeded plan should fire at least one host loss: {}",
        log.summary()
    );
    assert_eq!(log.failed, 0, "failover should recover everything");
    let reference = cpu_reference(&tensors, &starts, &solver);
    assert_recovered_or_reported(&report.results, &reference, log);
}

/// Certain host loss kills hosts one by one; the ladder walks host 0 →
/// host 1 → CPU and still recovers every tensor bitwise.
#[test]
fn certain_host_loss_fails_over_to_sibling_host_then_cpu() {
    let (tensors, starts, solver) = workload(600, 4, 0x1057);
    let plan = FaultPlan::new(23).with_host_loss(1.0);
    let backend = resilient("cluster:2:2", plan);
    let report = backend
        .solve_batch(&tensors, &starts, &solver, &Telemetry::disabled())
        .unwrap();
    let log = &report.fault_log;
    // One loss per host: once a host dies every device on it is skipped,
    // and after the second loss nothing GPU-shaped is left to strike.
    assert_eq!(log.injected.len(), 2, "{}", log.summary());
    assert!(log.injected.iter().all(|f| f.kind == FaultKind::HostLoss));
    assert!(log.degraded, "CPU is the last rung of the ladder");
    assert!(log.failovers >= 2, "{}", log.summary());
    assert_eq!(log.failed, 0);
    let reference = cpu_reference(&tensors, &starts, &solver);
    assert_recovered_or_reported(&report.results, &reference, log);
}

/// Without failover a lost host takes its chunks with it loudly: every
/// tensor in them is reported failed, never silently wrong.
#[test]
fn host_loss_without_failover_fails_loudly() {
    let (tensors, starts, solver) = workload(50, 2, 0x1058);
    let plan = FaultPlan::new(31).with_host_loss(1.0);
    let spec = BackendSpec::parse("cluster:1:1").unwrap();
    let backend = ResilientBackend::from_spec(&spec, KernelStrategy::General, plan)
        .unwrap()
        .with_failover(false);
    let report = backend
        .solve_batch(&tensors, &starts, &solver, &Telemetry::disabled())
        .unwrap();
    let log = &report.fault_log;
    assert_eq!(log.injected.len(), 1);
    assert_eq!(log.recovered, 0);
    assert_eq!(log.failed_indices.len(), 50);
    assert!(report.results.iter().all(Vec::is_empty));
    assert!(log.accounts_for_all_faults());
}

/// Adding host-loss probability to a plan must not perturb the draws of
/// the other fault kinds (per-kind independent hash streams). Once a
/// host loss *fires*, surviving chunks reroute to other devices and the
/// later attempt history legitimately diverges — so the pin compares
/// transient faults only on chunks processed before the first loss.
#[test]
fn host_loss_draws_are_independent_of_other_kinds() {
    let (tensors, starts, solver) = workload(2_000, 3, 0x1059);
    let base = FaultPlan::new(77).with_ecc(0.2).with_transfer(0.2);
    let with_hosts = base.with_host_loss(0.4);
    let run = |plan: FaultPlan| {
        resilient("cluster:2:2", plan)
            .solve_batch(&tensors, &starts, &solver, &Telemetry::disabled())
            .unwrap()
    };
    let a = run(base);
    let b = run(with_hosts);
    let first_loss = b
        .fault_log
        .injected
        .iter()
        .filter(|f| f.kind == FaultKind::HostLoss)
        .map(|f| f.chunk_index)
        .min()
        .expect("host loss at p=0.4 should fire somewhere in 2000 tensors");
    let pre_loss_transients = |log: &FaultLog| {
        log.injected
            .iter()
            .filter(|f| f.kind != FaultKind::HostLoss && f.chunk_index < first_loss)
            .cloned()
            .collect::<Vec<_>>()
    };
    assert_eq!(
        pre_loss_transients(&a.fault_log),
        pre_loss_transients(&b.fault_log)
    );
}
