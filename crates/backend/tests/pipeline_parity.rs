//! Acceptance suite for the pipelined launch path: double-buffering
//! chunks through two streams changes *when* work runs, never *what* it
//! computes. On a 10 000-tensor seeded batch the pipelined backend must
//! produce bitwise-identical eigenpairs to the synchronous one — with and
//! without an active fault plan — while its event timeline shows real
//! transfer/compute overlap.

use backend::{
    BackendSpec, GpuSimBackend, KernelStrategy, MultiGpuBackend, PipelinedBackend,
    ResilientBackend, SolveBackend,
};
use gpusim::{DeviceSpec, FaultPlan, TransferModel};
use rand::SeedableRng;
use sshopm::{starts, Eigenpair, IterationPolicy, Shift, SsHopm};
use symtensor::TensorBatch;
use telemetry::Telemetry;

fn workload(t: usize, seed: u64) -> (TensorBatch<f32>, Vec<Vec<f32>>, SsHopm) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let tensors = TensorBatch::random(4, 3, t, &mut rng).unwrap();
    let starts = starts::random_uniform_starts::<f32, _>(3, 4, &mut rng);
    let solver = SsHopm::new(Shift::Fixed(0.0)).with_policy(IterationPolicy::Fixed(3));
    (tensors, starts, solver)
}

fn assert_bitwise_equal(got: &[Vec<Eigenpair<f32>>], want: &[Vec<Eigenpair<f32>>]) {
    assert_eq!(got.len(), want.len());
    for (t, (g_row, w_row)) in got.iter().zip(want).enumerate() {
        assert_eq!(g_row.len(), w_row.len(), "tensor {t} row length");
        for (v, (g, w)) in g_row.iter().zip(w_row).enumerate() {
            assert_eq!(
                g.lambda.to_bits(),
                w.lambda.to_bits(),
                "tensor {t} start {v}: lambda {} != {}",
                g.lambda,
                w.lambda
            );
            for (gx, wx) in g.x.iter().zip(&w.x) {
                assert_eq!(gx.to_bits(), wx.to_bits(), "tensor {t} start {v}: x");
            }
        }
    }
}

/// Headline acceptance: 10k tensors, synchronous single-launch vs
/// double-buffered pipeline — identical bits, strictly smaller makespan.
#[test]
fn pipelined_10k_matches_synchronous_bitwise_and_overlaps() {
    let (tensors, starts, solver) = workload(10_000, 0x5eed);
    let tel = Telemetry::disabled();

    let sync = GpuSimBackend::new(DeviceSpec::tesla_c2050(), KernelStrategy::General)
        .solve_batch(&tensors, &starts, &solver, &tel)
        .unwrap();
    let piped = PipelinedBackend::homogeneous(
        DeviceSpec::tesla_c2050(),
        1,
        TransferModel::pcie2(),
        KernelStrategy::General,
    )
    .unwrap()
    .with_streams(2)
    .unwrap()
    .solve_batch(&tensors, &starts, &solver, &tel)
    .unwrap();

    assert_bitwise_equal(&piped.results, &sync.results);

    let timeline = piped
        .timeline
        .as_ref()
        .expect("pipelined run has a timeline");
    assert!(
        timeline.overlap_seconds() > 0.0,
        "no transfer/compute overlap: {}",
        timeline.summary()
    );
    assert!(
        timeline.makespan() < timeline.serial_seconds(),
        "double-buffering should beat serialization: {}",
        timeline.summary()
    );
    // Perf claim against the apples-to-apples baseline: the same chunked
    // schedule executed on a single stream (no overlap, same per-chunk
    // launch overhead).
    let serial = PipelinedBackend::homogeneous(
        DeviceSpec::tesla_c2050(),
        1,
        TransferModel::pcie2(),
        KernelStrategy::General,
    )
    .unwrap()
    .with_streams(1)
    .unwrap()
    .solve_batch(&tensors, &starts, &solver, &tel)
    .unwrap();
    assert_bitwise_equal(&serial.results, &sync.results);
    assert!(
        piped.seconds < serial.seconds,
        "double-buffered {} s should beat single-stream {} s at 10k tensors",
        piped.seconds,
        serial.seconds
    );
}

/// Multi-device parity: the same proportional split fed through
/// per-device stream queues leaves every bit unchanged.
#[test]
fn pipelined_multi_device_matches_multi_gpu_bitwise() {
    let (tensors, starts, solver) = workload(2_000, 42);
    let tel = Telemetry::disabled();

    let multi = MultiGpuBackend::homogeneous(
        DeviceSpec::tesla_c2050(),
        2,
        TransferModel::pcie2(),
        KernelStrategy::General,
    )
    .unwrap()
    .solve_batch(&tensors, &starts, &solver, &tel)
    .unwrap();
    let piped = PipelinedBackend::homogeneous(
        DeviceSpec::tesla_c2050(),
        2,
        TransferModel::pcie2(),
        KernelStrategy::General,
    )
    .unwrap()
    .with_streams(2)
    .unwrap()
    .solve_batch(&tensors, &starts, &solver, &tel)
    .unwrap();

    assert_bitwise_equal(&piped.results, &multi.results);
}

/// Fault-plan acceptance: a resilient pipelined run under an injected
/// fault plan still recovers every tensor to the bits of a clean
/// synchronous run — recovery cancels one stream's in-flight ops, not the
/// arithmetic.
#[test]
fn pipelined_under_faults_matches_clean_run_bitwise() {
    let (tensors, starts, solver) = workload(10_000, 0xfau64);
    let tel = Telemetry::disabled();

    let clean = GpuSimBackend::new(DeviceSpec::tesla_c2050(), KernelStrategy::General)
        .solve_batch(&tensors, &starts, &solver, &tel)
        .unwrap();

    let spec: BackendSpec = "pipelined:tesla-c2050:2".parse().unwrap();
    let plan = FaultPlan::new(20260806)
        .with_ecc(0.2)
        .with_watchdog(0.2)
        .with_transfer(0.2);
    let faulty = ResilientBackend::from_spec(&spec, KernelStrategy::General, plan)
        .unwrap()
        .with_retries(3)
        .with_failover(true)
        .with_streams(2)
        .unwrap()
        .solve_batch(&tensors, &starts, &solver, &tel)
        .unwrap();

    let log = &faulty.fault_log;
    assert!(
        !log.injected.is_empty(),
        "plan should fire: {}",
        log.summary()
    );
    assert_eq!(log.failed, 0, "failover should recover everything");
    assert!(log.accounts_for_all_faults(), "{}", log.summary());
    assert_bitwise_equal(&faulty.results, &clean.results);

    let timeline = faulty
        .timeline
        .as_ref()
        .expect("resilient run has a timeline");
    assert!(timeline.makespan() > 0.0);
}
