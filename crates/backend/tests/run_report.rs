//! Every backend produces a unified `RunReport` with per-chunk latency
//! quantiles; summaries are derived from its renderers (golden-pinned
//! here); stream-timeline observations land in the telemetry snapshot.

use backend::{
    CpuParallel, CpuSequential, FaultLog, GpuSimBackend, KernelStrategy, MultiGpuBackend,
    PipelinedBackend, ResilientBackend, SolveBackend,
};
use gpusim::{DeviceSpec, FaultPlan, TransferModel};
use rand::SeedableRng;
use sshopm::{starts, IterationPolicy, Shift, SsHopm};
use std::sync::Arc;
use symtensor::TensorBatch;
use telemetry::{MemorySink, RunReport, Telemetry, RUN_REPORT_SCHEMA_VERSION};

const NUM_TENSORS: usize = 8;
const NUM_STARTS: usize = 4;

fn workload() -> (TensorBatch<f32>, Vec<Vec<f32>>, SsHopm) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xca11);
    let tensors = TensorBatch::random(4, 3, NUM_TENSORS, &mut rng).unwrap();
    let starts = starts::random_uniform_starts::<f32, _>(3, NUM_STARTS, &mut rng);
    let solver = SsHopm::new(Shift::Fixed(0.0)).with_policy(IterationPolicy::Fixed(20));
    (tensors, starts, solver)
}

fn all_backends() -> Vec<Box<dyn SolveBackend<f32>>> {
    let strategy = KernelStrategy::General;
    let device = DeviceSpec::tesla_c2050();
    vec![
        Box::new(CpuSequential::new(strategy)),
        Box::new(CpuParallel::new(2, strategy)),
        Box::new(GpuSimBackend::new(device.clone(), strategy)),
        Box::new(
            MultiGpuBackend::homogeneous(device.clone(), 2, TransferModel::pcie2(), strategy)
                .unwrap(),
        ),
        Box::new(
            PipelinedBackend::homogeneous(device, 1, TransferModel::pcie2(), strategy)
                .unwrap()
                .with_chunk_tensors(2)
                .unwrap(),
        ),
    ]
}

#[test]
fn every_backend_reports_chunk_latency_quantiles() {
    let (batch, starts, solver) = workload();
    for backend in all_backends() {
        let tel = Telemetry::enabled();
        let (report, run) = backend
            .solve_batch_with_report(&batch, &starts, &solver, &tel)
            .unwrap();
        assert_eq!(run.schema_version, RUN_REPORT_SCHEMA_VERSION);
        assert_eq!(run.backend, report.backend);
        assert_eq!(run.workload.num_tensors, NUM_TENSORS as u64);
        assert_eq!(run.workload.num_starts, NUM_STARTS as u64);
        let chunk = run
            .latency("chunk")
            .unwrap_or_else(|| panic!("no chunk latency for {}", report.backend));
        assert!(chunk.count() > 0, "{}", report.backend);
        assert!(chunk.p50() > 0.0, "{}", report.backend);
        assert!(chunk.p90() >= chunk.p50(), "{}", report.backend);
        assert!(chunk.p99() >= chunk.p90(), "{}", report.backend);
        // The serialized form round-trips and carries the quantiles.
        let back = RunReport::parse_json(&run.to_json_pretty()).unwrap();
        assert_eq!(back.latency("chunk").unwrap().count(), chunk.count());
        // Prometheus rendering mentions the chunk latency family.
        let prom = run.to_prometheus();
        assert!(prom.contains("latency=\"chunk\""), "{}", report.backend);
    }
}

#[test]
fn resilient_backend_reports_chunk_latency_and_fault_rates() {
    let (batch, starts, solver) = workload();
    let plan = FaultPlan::new(7).with_watchdog(1.0);
    let backend = ResilientBackend::new(
        vec![DeviceSpec::tesla_c2050(); 2],
        TransferModel::pcie2(),
        KernelStrategy::General,
        plan,
    )
    .unwrap()
    .with_retries(3);
    let tel = Telemetry::enabled();
    let (report, run) = backend
        .solve_batch_with_report(&batch, &starts, &solver, &tel)
        .unwrap();
    let chunk = run.latency("chunk").expect("chunk latency");
    assert!(chunk.count() > 0);
    assert!(chunk.p99() > 0.0);
    assert_eq!(run.faults.injected, report.fault_log.injected.len() as u64);
    assert!(run.faults.injected > 0, "plan with p=0.5 injected nothing");
    assert_eq!(run.faults.retries, u64::from(report.fault_log.retries));
    // The rendered text carries the same fault line the CLI prints.
    assert!(run.render_text().contains(&report.fault_log.summary()));
}

#[test]
fn summaries_are_derived_from_run_report_renderers() {
    // Golden pins: the legacy one-line formats must survive the
    // delegation to RunReport::headline / FaultStats::summary_line.
    let (batch, starts, solver) = workload();
    let tel = Telemetry::disabled();
    let report = CpuSequential::new(KernelStrategy::General)
        .solve_batch(&batch, &starts, &solver, &tel)
        .unwrap();
    let expected = format!(
        "backend cpu (general kernel): 8 tensors x 4 starts, {} iterations, \
         {:.3} ms, {:.2} GFLOP/s",
        report.total_iterations,
        report.seconds * 1e3,
        report.gflops()
    );
    assert_eq!(report.summary(), expected);
    assert_eq!(report.summary(), report.run_report().headline());

    let log = FaultLog {
        observed: 2,
        recovered: 2,
        failed: 0,
        failed_indices: vec![],
        retries: 3,
        failovers: 1,
        degraded: false,
        ..FaultLog::default()
    };
    assert_eq!(
        log.summary(),
        "faults: 0 injected, 2 observed, 2 recovered, 0 failed (0 tensors lost), \
         3 retries, 1 failovers"
    );
    assert_eq!(log.summary(), log.stats().summary_line());
}

#[test]
fn pipelined_observations_land_in_snapshot_and_sink() {
    // Regression for the --metrics-out path: stream-scheduler op durations
    // must appear as histogram observations in the snapshot (and stream
    // through the sink), not only as trace spans.
    let (batch, starts, solver) = workload();
    let sink = Arc::new(MemorySink::new());
    let tel = Telemetry::with_sink(Box::new(Arc::clone(&sink)));
    let backend = PipelinedBackend::homogeneous(
        DeviceSpec::tesla_c2050(),
        1,
        TransferModel::pcie2(),
        KernelStrategy::General,
    )
    .unwrap()
    .with_chunk_tensors(2)
    .unwrap();
    backend.solve_batch(&batch, &starts, &solver, &tel).unwrap();

    let snap = tel.snapshot();
    let kernels = snap.histogram("gpu.kernel").expect("gpu.kernel histogram");
    assert!(
        kernels.count >= (NUM_TENSORS / 2) as u64,
        "{}",
        kernels.count
    );
    assert!(kernels.p50() > 0.0);
    let observed = sink
        .events()
        .iter()
        .filter(|e| {
            matches!(
                e,
                telemetry::Event::Observation {
                    name: "gpu.kernel",
                    ..
                }
            )
        })
        .count() as u64;
    assert_eq!(observed, kernels.count);
    // The unified report reached the sink as a structured event too.
    assert!(sink.events().iter().any(|e| matches!(
        e,
        telemetry::Event::Custom {
            name: "run.report",
            ..
        }
    )));
}
