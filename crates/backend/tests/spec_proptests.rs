//! Property tests for the [`BackendSpec`] grammar: every representable
//! value round-trips through `Display` → `parse`, and malformed strings
//! produce descriptive errors rather than panics.

use backend::{BackendSpec, DeviceKind, KernelStrategy};
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = BackendSpec> {
    (
        0usize..4,
        0usize..64,
        0usize..3,
        1usize..16,
        1usize..16,
        1usize..8,
    )
        .prop_map(|(kind, threads, d, devices, hosts, streams)| match kind {
            0 => BackendSpec::Cpu { threads },
            1 => BackendSpec::GpuSim {
                device: DeviceKind::ALL[d],
                devices,
            },
            2 => BackendSpec::Pipelined {
                device: DeviceKind::ALL[d],
                devices,
            },
            _ => BackendSpec::Cluster {
                device: DeviceKind::ALL[d],
                hosts,
                devices,
                streams,
            },
        })
}

fn arb_garbage() -> impl Strategy<Value = String> {
    let charset: Vec<char> = "abcdefghijklmnopqrstuvwxyz0123456789:-".chars().collect();
    proptest::collection::vec(proptest::sample::select(charset), 0..16)
        .prop_map(|chars| chars.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn display_round_trips_for_every_value(spec in arb_spec()) {
        let rendered = spec.to_string();
        let back = BackendSpec::parse(&rendered);
        prop_assert_eq!(back, Ok(spec), "rendered as {}", rendered);
    }

    #[test]
    fn canonical_form_is_a_fixed_point(spec in arb_spec()) {
        let rendered = spec.to_string();
        let again = BackendSpec::parse(&rendered).unwrap().to_string();
        prop_assert_eq!(&rendered, &again);
    }

    #[test]
    fn explicit_cpu_thread_counts_parse(threads in 0usize..10_000) {
        let spec = BackendSpec::parse(&format!("cpu:{threads}")).unwrap();
        prop_assert_eq!(spec, BackendSpec::Cpu { threads });
    }

    #[test]
    fn arbitrary_garbage_never_panics(s in arb_garbage()) {
        // Any outcome is fine as long as errors are descriptive Results,
        // not panics.
        if let Err(err) = BackendSpec::parse(&s) {
            prop_assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn kernel_names_round_trip(k in 0usize..4) {
        let strategy = KernelStrategy::ALL[k];
        prop_assert_eq!(KernelStrategy::parse(strategy.name()), Ok(strategy));
    }
}

#[test]
fn malformed_specs_error_without_panicking() {
    for bad in [
        "cpu:",
        "cpu:-1",
        "cpu:1.5",
        "cpu:four",
        "gpusim:-1",
        "gpusim:",
        "gpusim::",
        "gpusim:tesla-c2050:",
        "pipelined:-1",
        "pipelined:",
        "pipelined::",
        "cluster:",
        "cluster::",
        "cluster:-1",
        "cluster:0",
        "cluster:2:0",
        "cluster:2:2:0",
        "cluster:2:2:2:2",
        "cluster:quadro",
        "cluster:gtx-580:2:2:2:2",
        "cuda",
        ":cpu",
    ] {
        let err = BackendSpec::parse(bad).expect_err(bad);
        let msg = err.to_string();
        assert!(
            msg.contains(&bad.split(':').next().unwrap_or("").to_string())
                || msg.contains("invalid")
                || msg.contains("unknown"),
            "error for {bad:?} should be descriptive: {msg}"
        );
    }
}
