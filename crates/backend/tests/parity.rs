//! Backend-parity: every substrate runs the *same* numerics, so a fixed
//! workload must produce identical eigenpair sets and iteration counts on
//! all four backends.

use backend::{
    BatchReport, CpuParallel, CpuSequential, GpuSimBackend, KernelStrategy, MultiGpuBackend,
    SolveBackend,
};
use gpusim::{DeviceSpec, TransferModel};
use rand::SeedableRng;
use sshopm::{starts, IterationPolicy, Shift, SsHopm};
use symtensor::TensorBatch;
use telemetry::Telemetry;

const NUM_TENSORS: usize = 6;
const NUM_STARTS: usize = 8;

fn workload(m: usize, n: usize) -> (TensorBatch<f32>, Vec<Vec<f32>>, SsHopm) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x5eed);
    let tensors = TensorBatch::random(m, n, NUM_TENSORS, &mut rng).unwrap();
    let starts = starts::random_uniform_starts::<f32, _>(n, NUM_STARTS, &mut rng);
    let solver = SsHopm::new(Shift::Fixed(1.0)).with_policy(IterationPolicy::Converge {
        tol: 1e-6,
        max_iters: 200,
    });
    (tensors, starts, solver)
}

fn backends(strategy: KernelStrategy) -> Vec<Box<dyn SolveBackend<f32>>> {
    vec![
        Box::new(CpuSequential::new(strategy)),
        Box::new(CpuParallel::new(4, strategy)),
        Box::new(GpuSimBackend::new(DeviceSpec::tesla_c2050(), strategy)),
        Box::new(
            MultiGpuBackend::homogeneous(
                DeviceSpec::tesla_c2050(),
                3,
                TransferModel::pcie2(),
                strategy,
            )
            .unwrap(),
        ),
    ]
}

/// Deduplicated eigenvalue set per tensor: sorted λ values with
/// near-duplicates (within 1e-6, generous for f32 iteration) collapsed.
fn eigenvalue_sets(report: &BatchReport<f32>) -> Vec<Vec<f64>> {
    report
        .results
        .iter()
        .map(|row| {
            let mut lambdas: Vec<f64> = row
                .iter()
                .filter(|p| p.converged)
                .map(|p| f64::from(p.lambda))
                .collect();
            lambdas.sort_by(f64::total_cmp);
            let mut dedup: Vec<f64> = Vec::new();
            for l in lambdas {
                if dedup.last().is_none_or(|prev| (l - prev).abs() > 1e-6) {
                    dedup.push(l);
                }
            }
            dedup
        })
        .collect()
}

#[test]
fn all_four_backends_agree_on_a_fixed_workload() {
    let (tensors, starts, solver) = workload(4, 3);
    let reports: Vec<BatchReport<f32>> = backends(KernelStrategy::General)
        .iter()
        .map(|b| {
            b.solve_batch(&tensors, &starts, &solver, &Telemetry::disabled())
                .unwrap()
        })
        .collect();

    let reference = &reports[0];
    assert_eq!(reference.num_tensors(), NUM_TENSORS);
    assert_eq!(reference.num_starts(), NUM_STARTS);
    assert!(reference.num_converged() > 0, "workload should converge");
    let reference_sets = eigenvalue_sets(reference);

    for report in &reports[1..] {
        assert_eq!(
            report.total_iterations, reference.total_iterations,
            "backend {} took a different iteration count than {}",
            report.backend, reference.backend
        );
        let sets = eigenvalue_sets(report);
        assert_eq!(sets.len(), reference_sets.len());
        for (t, (got, want)) in sets.iter().zip(&reference_sets).enumerate() {
            assert_eq!(
                got.len(),
                want.len(),
                "backend {} found a different eigenvalue set for tensor {t}",
                report.backend
            );
            for (g, w) in got.iter().zip(want) {
                assert!(
                    (g - w).abs() < 1e-12,
                    "backend {}: tensor {t} lambda {g} != {w}",
                    report.backend
                );
            }
        }
    }
}

#[test]
fn backends_agree_bitwise_with_identical_kernels() {
    // With the same kernel strategy the arithmetic is literally the same
    // code on every substrate, so results match to the bit, not just to a
    // tolerance.
    let (tensors, starts, solver) = workload(4, 3);
    for strategy in [KernelStrategy::General, KernelStrategy::Unrolled] {
        let reports: Vec<BatchReport<f32>> = backends(strategy)
            .iter()
            .map(|b| {
                b.solve_batch(&tensors, &starts, &solver, &Telemetry::disabled())
                    .unwrap()
            })
            .collect();
        let reference = &reports[0];
        assert_eq!(reference.kernel, strategy.name());
        for report in &reports[1..] {
            assert_eq!(report.kernel, reference.kernel);
            for ((t, v, got), (_, _, want)) in report.iter_flat().zip(reference.iter_flat()) {
                assert_eq!(
                    got.lambda.to_bits(),
                    want.lambda.to_bits(),
                    "backend {} vs {}: tensor {t} start {v}",
                    report.backend,
                    reference.backend
                );
                assert_eq!(got.iterations, want.iterations);
                assert_eq!(got.converged, want.converged);
            }
        }
    }
}

#[test]
fn parity_holds_for_unrolled_fallback_shapes() {
    // (3, 5) has no generated unrolled kernel: the CPU backends fall back
    // to blocked kernels, the GPU backends to the general variant. Within
    // each substrate class the arithmetic is still identical code, so
    // results match bitwise; across classes the kernels differ only in
    // summation order, so eigenvalues agree to f32 round-off.
    let (tensors, mut starts, mut solver) = workload(3, 5);
    starts.truncate(4);
    solver = solver.with_policy(IterationPolicy::Fixed(25));
    let reports: Vec<BatchReport<f32>> = backends(KernelStrategy::Unrolled)
        .iter()
        .map(|b| {
            b.solve_batch(&tensors, &starts, &solver, &Telemetry::disabled())
                .unwrap()
        })
        .collect();

    let (cpu_seq, cpu_par, gpu_one, gpu_multi) =
        (&reports[0], &reports[1], &reports[2], &reports[3]);
    assert_eq!(cpu_seq.kernel, "blocked");
    assert_eq!(gpu_one.kernel, "general");
    for report in &reports {
        assert_eq!(report.total_iterations, cpu_seq.total_iterations);
    }
    for (a, b) in [(cpu_seq, cpu_par), (gpu_one, gpu_multi)] {
        for ((_, _, got), (_, _, want)) in a.iter_flat().zip(b.iter_flat()) {
            assert_eq!(got.lambda.to_bits(), want.lambda.to_bits());
        }
    }
    for ((t, v, got), (_, _, want)) in cpu_seq.iter_flat().zip(gpu_one.iter_flat()) {
        let (g, w) = (f64::from(got.lambda), f64::from(want.lambda));
        assert!(
            (g - w).abs() < 1e-4 * (1.0 + w.abs()),
            "tensor {t} start {v}: {g} vs {w}"
        );
    }
}
