//! Differential property tests for the kernel-strategy layer: every
//! [`KernelStrategy`] — including the lane-vectorized `batched` one and
//! the runtime-generated `tape` one — must agree with the on-the-fly
//! [`GeneralKernels`] reference on both contractions, for random shapes,
//! batch sizes and seeds. This pins the whole registry `plan` surface
//! (including its fallback chains) to a single numerical truth, so a
//! strategy can never silently drift.

use backend::{KernelRegistry, KernelStrategy};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use symtensor::kernels::GeneralKernels;
use symtensor::{Scalar, TensorBatch, TensorKernels};

/// Shapes kept small enough that every strategy has something to do:
/// blocked covers orders 1–8, unrolled only its generated list (falling
/// back beyond it), batched/precomputed/general cover everything.
fn shape() -> impl Strategy<Value = (usize, usize)> {
    (2usize..=6, 2usize..=5)
}

fn max_abs<S: Scalar>(v: &[S]) -> f64 {
    v.iter().map(|e| e.to_f64().abs()).fold(0.0, f64::max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_strategy_matches_general_kernels(
        (m, n) in shape(),
        batch_len in 1usize..8,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let batch = TensorBatch::<f64>::random(m, n, batch_len, &mut rng).unwrap();
        let x: Vec<f64> = (0..n).map(|i| 0.45 - 0.13 * i as f64).collect();

        for strategy in KernelStrategy::ALL {
            let plan = KernelRegistry::global().plan::<f64>(m, n, strategy);
            let (kernels, effective) = (plan.kernels, plan.effective);
            for (t, a) in batch.iter().enumerate() {
                let want = GeneralKernels.axm(a, &x).unwrap();
                let got = kernels.axm(a, &x).unwrap();
                let scale = 1.0 + want.abs();
                prop_assert!(
                    (got - want).abs() < 1e-12 * scale,
                    "axm: strategy {strategy} (effective {effective}) diverged on \
                     ({m},{n}) tensor {t}: {got} vs {want}"
                );

                let mut want_y = vec![0.0f64; n];
                let mut got_y = vec![0.0f64; n];
                GeneralKernels.axm1(a, &x, &mut want_y).unwrap();
                kernels.axm1(a, &x, &mut got_y).unwrap();
                let scale = 1.0 + max_abs(&want_y);
                for (i, (g, w)) in got_y.iter().zip(&want_y).enumerate() {
                    prop_assert!(
                        (g - w).abs() < 1e-12 * scale,
                        "axm1: strategy {strategy} (effective {effective}) diverged on \
                         ({m},{n}) tensor {t} component {i}: {g} vs {w}"
                    );
                }
            }
        }
    }

    #[test]
    fn every_strategy_rejects_wrong_shape_tensors(
        (m, n) in shape(),
        seed in 0u64..1000,
    ) {
        // The shape-safety net: a resolved kernel handed a tensor of a
        // different shape must return a typed error, never a wrong answer
        // or a panic. (General is shape-agnostic by design and skipped.)
        let mut rng = StdRng::seed_from_u64(seed);
        let wrong = symtensor::SymTensor::<f64>::random(m + 1, n, &mut rng);
        let x = vec![0.5f64; n];
        let mut y = vec![0.0f64; n];
        for strategy in KernelStrategy::ALL {
            let plan = KernelRegistry::global().plan::<f64>(m, n, strategy);
            let (kernels, effective) = (plan.kernels, plan.effective);
            if effective == KernelStrategy::General {
                continue;
            }
            prop_assert!(
                kernels.axm(wrong.view(), &x).is_err(),
                "axm: strategy {strategy} (effective {effective}) accepted a \
                 ({},{n}) tensor on ({m},{n}) kernels",
                m + 1
            );
            prop_assert!(
                kernels.axm1(wrong.view(), &x, &mut y).is_err(),
                "axm1: strategy {strategy} (effective {effective}) accepted a \
                 ({},{n}) tensor on ({m},{n}) kernels",
                m + 1
            );
        }
    }
}
