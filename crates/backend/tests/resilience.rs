//! Fault-injection acceptance suite: a resilient run under an active
//! [`FaultPlan`] must either recover each tensor to the *bit-identical*
//! eigenpairs of a fault-free CPU run, or report that tensor's exact index
//! in `fault_log.failed_indices` — never a silently wrong answer. The
//! ledger must account for every injected fault.

use backend::{
    BackendSpec, CpuSequential, FaultLog, GpuSimBackend, KernelStrategy, MultiGpuBackend,
    ResilientBackend, SolveBackend,
};
use gpusim::{DeviceSpec, FaultPlan, TransferModel};
use proptest::prelude::*;
use rand::SeedableRng;
use sshopm::{starts, Eigenpair, IterationPolicy, Shift, SsHopm};
use symtensor::TensorBatch;
use telemetry::Telemetry;

fn workload(
    m: usize,
    n: usize,
    t: usize,
    v: usize,
    seed: u64,
) -> (TensorBatch<f32>, Vec<Vec<f32>>, SsHopm) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let tensors = TensorBatch::random(m, n, t, &mut rng).unwrap();
    let starts = starts::random_uniform_starts::<f32, _>(n, v, &mut rng);
    let solver = SsHopm::new(Shift::Fixed(0.0)).with_policy(IterationPolicy::Fixed(3));
    (tensors, starts, solver)
}

fn cpu_reference(
    tensors: &TensorBatch<f32>,
    starts: &[Vec<f32>],
    solver: &SsHopm,
) -> Vec<Vec<Eigenpair<f32>>> {
    CpuSequential::new(KernelStrategy::General)
        .solve_batch(tensors, starts, solver, &Telemetry::disabled())
        .unwrap()
        .results
}

/// Assert the resilience contract: every tensor is either bitwise equal to
/// the fault-free reference or listed in `failed_indices` with an empty
/// result row.
fn assert_recovered_or_reported(
    results: &[Vec<Eigenpair<f32>>],
    reference: &[Vec<Eigenpair<f32>>],
    log: &FaultLog,
) {
    assert!(
        log.accounts_for_all_faults(),
        "ledger out of balance: {}",
        log.summary()
    );
    assert_eq!(results.len(), reference.len());
    for (t, (got, want)) in results.iter().zip(reference).enumerate() {
        if log.failed_indices.contains(&t) {
            assert!(got.is_empty(), "failed tensor {t} has a result row");
            continue;
        }
        assert_eq!(got.len(), want.len(), "tensor {t} row length");
        for (v, (g, w)) in got.iter().zip(want).enumerate() {
            assert_eq!(
                g.lambda.to_bits(),
                w.lambda.to_bits(),
                "tensor {t} start {v}: lambda {} != {}",
                g.lambda,
                w.lambda
            );
            for (gx, wx) in g.x.iter().zip(&w.x) {
                assert_eq!(gx.to_bits(), wx.to_bits(), "tensor {t} start {v}: x");
            }
        }
    }
}

/// The headline acceptance run: a seeded plan injecting at least three
/// fault kinds into a 10 000-tensor batch on two simulated C2050s, with
/// retries and failover on, recovers every tensor bitwise.
#[test]
fn seeded_faults_on_10k_batch_recover_bitwise() {
    let (tensors, starts, solver) = workload(4, 3, 10_000, 4, 0x5eed);
    let spec = BackendSpec::parse("gpusim:tesla-c2050:2").unwrap();
    let plan = FaultPlan::new(20260806)
        .with_ecc(0.25)
        .with_watchdog(0.2)
        .with_transfer(0.2)
        .with_device_loss(0.01);
    let backend = ResilientBackend::from_spec(&spec, KernelStrategy::General, plan)
        .unwrap()
        .with_retries(3)
        .with_failover(true);
    let report = backend
        .solve_batch(&tensors, &starts, &solver, &Telemetry::disabled())
        .unwrap();
    let log = &report.fault_log;

    let mut kinds: Vec<&str> = log.injected.iter().map(|f| f.kind.name()).collect();
    kinds.sort_unstable();
    kinds.dedup();
    assert!(
        kinds.len() >= 3,
        "want >= 3 distinct fault kinds, got {kinds:?} ({})",
        log.summary()
    );
    assert!(!log.injected.is_empty());
    assert_eq!(log.observed, log.injected.len(), "{}", log.summary());
    assert_eq!(log.failed, 0, "failover should recover everything");
    assert!(log.failed_indices.is_empty());
    assert!(log.retries > 0, "transient faults should have retried");

    let reference = cpu_reference(&tensors, &starts, &solver);
    assert_recovered_or_reported(&report.results, &reference, log);
    // Fault handling costs modeled time, never correctness.
    assert!(report.seconds > 0.0 && report.seconds.is_finite());
}

/// ECC corruption with failover disabled: the poisoned tensor fails
/// *alone* — one empty row, one failed index — and the rest of the chunk
/// still matches the reference bitwise.
#[test]
fn poisoned_tensor_fails_alone_without_failover() {
    let (tensors, starts, solver) = workload(4, 3, 40, 4, 7);
    let plan = FaultPlan::new(11).with_ecc(1.0);
    let backend = ResilientBackend::new(
        vec![DeviceSpec::tesla_c2050()],
        TransferModel::pcie2(),
        KernelStrategy::General,
        plan,
    )
    .unwrap()
    .with_retries(0)
    .with_failover(false);
    let report = backend
        .solve_batch(&tensors, &starts, &solver, &Telemetry::disabled())
        .unwrap();
    let log = &report.fault_log;
    assert_eq!(log.injected.len(), 1, "{}", log.summary());
    assert_eq!(log.observed, 1);
    assert_eq!(log.failed, 1);
    assert_eq!(log.recovered, 0);
    assert_eq!(log.failed_indices.len(), 1);
    assert!(!log.degraded, "no CPU work without failover");
    let reference = cpu_reference(&tensors, &starts, &solver);
    assert_recovered_or_reported(&report.results, &reference, log);
    // 39 of 40 tensors survived.
    let live = report.results.iter().filter(|r| !r.is_empty()).count();
    assert_eq!(live, 39);
}

/// Pin (satellite): ECC poisoning never clones the chunk. The clean launch
/// reads straight from the borrowed arena slice, so with a fault injected
/// every *fault-free* tensor's eigenpairs are bitwise identical to an
/// inactive-plan run of the exact same backend — not merely close, the
/// same bits out of the same buffers. Only the poisoned tensor's 15 packed
/// entries are ever copied (into the one-tensor scratch batch).
#[test]
fn ecc_leaves_fault_free_tensors_bitwise_untouched() {
    let (tensors, starts, solver) = workload(4, 3, 40, 4, 7);
    let build = |plan: FaultPlan| {
        ResilientBackend::new(
            vec![DeviceSpec::tesla_c2050()],
            TransferModel::pcie2(),
            KernelStrategy::General,
            plan,
        )
        .unwrap()
        .with_retries(0)
        .with_failover(false)
    };
    let faulty = build(FaultPlan::new(11).with_ecc(1.0))
        .solve_batch(&tensors, &starts, &solver, &Telemetry::disabled())
        .unwrap();
    let clean = build(FaultPlan::new(11))
        .solve_batch(&tensors, &starts, &solver, &Telemetry::disabled())
        .unwrap();
    assert_eq!(faulty.fault_log.injected.len(), 1);
    assert!(clean.fault_log.injected.is_empty());
    let poisoned = faulty.fault_log.failed_indices[0];
    for (t, (got, want)) in faulty.results.iter().zip(&clean.results).enumerate() {
        if t == poisoned {
            assert!(got.is_empty(), "poisoned tensor {t} fails alone");
            continue;
        }
        assert_eq!(got.len(), want.len(), "tensor {t}");
        for (g, w) in got.iter().zip(want) {
            assert_eq!(g.lambda.to_bits(), w.lambda.to_bits(), "tensor {t}");
            for (gx, wx) in g.x.iter().zip(&w.x) {
                assert_eq!(gx.to_bits(), wx.to_bits(), "tensor {t}");
            }
        }
    }
}

/// A certain watchdog timeout on every attempt exhausts the retry budget,
/// then fails over to the CPU — deterministically: retries, failovers and
/// degraded mode are all exact.
#[test]
fn retry_exhaustion_fails_over_to_cpu() {
    let (tensors, starts, solver) = workload(3, 3, 30, 3, 3);
    let plan = FaultPlan::new(5).with_watchdog(1.0);
    let backend = ResilientBackend::new(
        vec![DeviceSpec::tesla_c2050()],
        TransferModel::pcie2(),
        KernelStrategy::General,
        plan,
    )
    .unwrap()
    .with_retries(2)
    .with_failover(true);
    let report = backend
        .solve_batch(&tensors, &starts, &solver, &Telemetry::disabled())
        .unwrap();
    let log = &report.fault_log;
    // One chunk, three attempts (initial + 2 retries), all timed out.
    assert_eq!(log.injected.len(), 3, "{}", log.summary());
    assert_eq!(log.retries, 2);
    assert_eq!(log.failovers, 1);
    assert!(log.degraded);
    assert_eq!(log.failed, 0);
    assert_eq!(log.recovered, 3);
    let reference = cpu_reference(&tensors, &starts, &solver);
    assert_recovered_or_reported(&report.results, &reference, log);
    // Each timeout costs at least the watchdog interval of modeled time.
    assert!(report.seconds >= 3.0 * gpusim::WATCHDOG_TIMEOUT_SECONDS);
}

/// Certain device loss kills both devices; failover walks device → device
/// → CPU and still recovers everything bitwise.
#[test]
fn device_loss_fails_over_across_devices_then_cpu() {
    let (tensors, starts, solver) = workload(4, 3, 600, 4, 17);
    let plan = FaultPlan::new(23).with_device_loss(1.0);
    let backend = ResilientBackend::new(
        vec![DeviceSpec::tesla_c2050(); 2],
        TransferModel::pcie2(),
        KernelStrategy::General,
        plan,
    )
    .unwrap()
    .with_failover(true);
    let report = backend
        .solve_batch(&tensors, &starts, &solver, &Telemetry::disabled())
        .unwrap();
    let log = &report.fault_log;
    // Both devices die on the first chunk's attempts; no further faults
    // can be injected once nothing is left to inject into.
    assert_eq!(log.injected.len(), 2, "{}", log.summary());
    assert!(log.degraded);
    assert_eq!(log.failed, 0);
    assert!(log.failovers >= 2);
    let reference = cpu_reference(&tensors, &starts, &solver);
    assert_recovered_or_reported(&report.results, &reference, log);
}

/// Without failover a dead device takes its whole share of the batch with
/// it: every tensor is reported failed, none silently wrong.
#[test]
fn device_loss_without_failover_fails_the_batch_loudly() {
    let (tensors, starts, solver) = workload(4, 3, 50, 2, 29);
    let plan = FaultPlan::new(31).with_device_loss(1.0);
    let backend = ResilientBackend::new(
        vec![DeviceSpec::tesla_c2050()],
        TransferModel::pcie2(),
        KernelStrategy::General,
        plan,
    )
    .unwrap()
    .with_failover(false);
    let report = backend
        .solve_batch(&tensors, &starts, &solver, &Telemetry::disabled())
        .unwrap();
    let log = &report.fault_log;
    assert_eq!(log.injected.len(), 1);
    assert_eq!(log.failed, 1);
    assert_eq!(log.recovered, 0);
    assert_eq!(log.failed_indices.len(), 50);
    assert!(report.results.iter().all(Vec::is_empty));
    assert!(log.accounts_for_all_faults());
}

/// An inactive plan makes the resilient backend a plain chunked launcher:
/// bitwise identical to `GpuSimBackend`, with an all-zero fault log.
#[test]
fn inactive_plan_matches_plain_gpu_backend_bitwise() {
    let (tensors, starts, solver) = workload(4, 3, 300, 4, 41);
    let resilient = ResilientBackend::new(
        vec![DeviceSpec::tesla_c2050()],
        TransferModel::pcie2(),
        KernelStrategy::Unrolled,
        FaultPlan::new(9),
    )
    .unwrap();
    let plain = GpuSimBackend::new(DeviceSpec::tesla_c2050(), KernelStrategy::Unrolled);
    let a = resilient
        .solve_batch(&tensors, &starts, &solver, &Telemetry::disabled())
        .unwrap();
    let b = plain
        .solve_batch(&tensors, &starts, &solver, &Telemetry::disabled())
        .unwrap();
    assert!(a.fault_log.injected.is_empty());
    assert!(!a.fault_log.degraded);
    assert_eq!(a.kernel, b.kernel);
    for ((t, v, got), (_, _, want)) in a.iter_flat().zip(b.iter_flat()) {
        assert_eq!(got.lambda.to_bits(), want.lambda.to_bits(), "t{t} v{v}");
    }
}

/// Regression (satellite): empty batches and empty device lists are clean
/// errors or empty reports on every backend — no aborts.
#[test]
fn empty_batches_and_device_lists_are_not_panics() {
    let telemetry = Telemetry::disabled();
    let solver = SsHopm::new(Shift::Fixed(0.0)).with_policy(IterationPolicy::Fixed(3));
    let no_tensors = TensorBatch::<f32>::new(4, 3).unwrap();
    let starts = vec![vec![1.0_f32, 0.0, 0.0]];

    let gpu = GpuSimBackend::new(DeviceSpec::tesla_c2050(), KernelStrategy::General);
    let report = gpu
        .solve_batch(&no_tensors, &starts, &solver, &telemetry)
        .unwrap();
    assert_eq!(report.num_tensors(), 0);

    let multi = MultiGpuBackend::homogeneous(
        DeviceSpec::tesla_c2050(),
        2,
        TransferModel::pcie2(),
        KernelStrategy::General,
    )
    .unwrap();
    let report = multi
        .solve_batch(&no_tensors, &starts, &solver, &telemetry)
        .unwrap();
    assert_eq!(report.num_tensors(), 0);

    let err = MultiGpuBackend::new(Vec::new(), TransferModel::pcie2(), KernelStrategy::General)
        .unwrap_err();
    assert!(err.to_string().contains("at least one device"), "{err}");
    let err = ResilientBackend::new(
        Vec::new(),
        TransferModel::pcie2(),
        KernelStrategy::General,
        FaultPlan::new(0),
    )
    .unwrap_err();
    assert!(err.to_string().contains("at least one device"), "{err}");

    let resilient = ResilientBackend::new(
        vec![DeviceSpec::tesla_c2050()],
        TransferModel::pcie2(),
        KernelStrategy::General,
        FaultPlan::new(0),
    )
    .unwrap();
    let report = resilient
        .solve_batch(&no_tensors, &starts, &solver, &telemetry)
        .unwrap();
    assert_eq!(report.num_tensors(), 0);
}

/// Regression (satellite): adaptive shifts on GPU backends are clean
/// errors now, not panics.
#[test]
fn adaptive_shift_on_gpu_backend_is_an_error() {
    let (tensors, starts, _) = workload(4, 3, 2, 2, 1);
    let adaptive = SsHopm::new(Shift::Convex);
    let gpu = GpuSimBackend::new(DeviceSpec::tesla_c2050(), KernelStrategy::General);
    let err = gpu
        .solve_batch(&tensors, &starts, &adaptive, &Telemetry::disabled())
        .unwrap_err();
    assert!(err.to_string().contains("Shift::Fixed"), "{err}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The resilience contract holds for arbitrary fault seeds, retry
    /// budgets and failover settings: every tensor is bitwise-recovered
    /// or exactly reported, and the ledger always balances.
    #[test]
    fn any_seeded_fault_run_recovers_or_reports(
        fault_seed in 0u64..512,
        data_seed in 0u64..16,
        retries in 0u32..3,
        failover_bit in 0u32..2,
        devices in 1usize..3,
    ) {
        let failover = failover_bit == 1;
        let (tensors, starts, solver) = workload(3, 3, 20, 3, data_seed);
        let plan = FaultPlan::new(fault_seed)
            .with_ecc(0.4)
            .with_watchdog(0.3)
            .with_transfer(0.3)
            .with_device_loss(0.15);
        let backend = ResilientBackend::new(
            vec![DeviceSpec::tesla_c2050(); devices],
            TransferModel::pcie2(),
            KernelStrategy::General,
            plan,
        )
        .unwrap()
        .with_retries(retries)
        .with_failover(failover);
        let report = backend
            .solve_batch(&tensors, &starts, &solver, &Telemetry::disabled())
            .unwrap();
        let log = &report.fault_log;
        prop_assert!(log.accounts_for_all_faults(), "{}", log.summary());
        let reference = cpu_reference(&tensors, &starts, &solver);
        for (t, (got, want)) in report.results.iter().zip(&reference).enumerate() {
            if log.failed_indices.contains(&t) {
                prop_assert!(got.is_empty());
                continue;
            }
            prop_assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(want) {
                prop_assert_eq!(g.lambda.to_bits(), w.lambda.to_bits(), "tensor {}", t);
            }
        }
        // Failed tensors exist only when failover is off (or impossible).
        if failover {
            prop_assert_eq!(log.failed, 0, "{}", log.summary());
        }
        // The same seed replays to the same ledger.
        let replay = backend
            .solve_batch(&tensors, &starts, &solver, &Telemetry::disabled())
            .unwrap();
        prop_assert_eq!(&replay.fault_log.injected, &log.injected);
        prop_assert_eq!(replay.fault_log.failed_indices, log.failed_indices.clone());
    }
}
