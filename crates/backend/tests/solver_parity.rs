//! Solver-parity: the `Solver`-trait refactor must be invisible to the
//! default path. `SolverSpec::parse("sshopm")` built with the caller's
//! shift and a `Converge` policy is the *same object* the pre-trait code
//! constructed with `SsHopm::new(shift).with_tolerance(tol)`, so every
//! backend must produce bitwise-identical eigenpairs, iteration counts
//! and convergence flags for the two spellings.

use backend::{
    BatchReport, CpuParallel, CpuSequential, GpuSimBackend, KernelStrategy, MultiGpuBackend,
    SolveBackend,
};
use gpusim::{DeviceSpec, TransferModel};
use rand::SeedableRng;
use sshopm::{starts, IterationPolicy, Shift, Solver, SolverSpec, SsHopm};
use symtensor::TensorBatch;
use telemetry::Telemetry;

const NUM_TENSORS: usize = 6;
const NUM_STARTS: usize = 8;
const TOL: f64 = 1e-6;
const MAX_ITERS: usize = 200;

fn workload(m: usize, n: usize) -> (TensorBatch<f32>, Vec<Vec<f32>>) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xbeef);
    let tensors = TensorBatch::random(m, n, NUM_TENSORS, &mut rng).unwrap();
    let starts = starts::random_uniform_starts::<f32, _>(n, NUM_STARTS, &mut rng);
    (tensors, starts)
}

fn backends(strategy: KernelStrategy) -> Vec<Box<dyn SolveBackend<f32>>> {
    vec![
        Box::new(CpuSequential::new(strategy)),
        Box::new(CpuParallel::new(4, strategy)),
        Box::new(GpuSimBackend::new(DeviceSpec::tesla_c2050(), strategy)),
        Box::new(
            MultiGpuBackend::homogeneous(
                DeviceSpec::tesla_c2050(),
                2,
                TransferModel::pcie2(),
                strategy,
            )
            .unwrap(),
        ),
    ]
}

fn assert_bitwise_equal(got: &BatchReport<f32>, want: &BatchReport<f32>, label: &str) {
    assert_eq!(got.total_iterations, want.total_iterations, "{label}");
    for ((t, v, g), (_, _, w)) in got.iter_flat().zip(want.iter_flat()) {
        assert_eq!(
            g.lambda.to_bits(),
            w.lambda.to_bits(),
            "{label}: tensor {t} start {v} lambda"
        );
        assert_eq!(g.iterations, w.iterations, "{label}: tensor {t} start {v}");
        assert_eq!(g.converged, w.converged, "{label}: tensor {t} start {v}");
        for (i, (gx, wx)) in g.x.iter().zip(&w.x).enumerate() {
            assert_eq!(
                gx.to_bits(),
                wx.to_bits(),
                "{label}: tensor {t} start {v} x[{i}]"
            );
        }
    }
}

/// The exact solver the CLI builds for `--solver sshopm --shift fixed:A
/// --tol T` — the refactored spec path.
fn spec_solver(spec: &str, shift: Shift) -> Box<dyn Solver<f32>> {
    SolverSpec::parse(spec).unwrap().build::<f32>(
        shift,
        IterationPolicy::Converge {
            tol: TOL,
            max_iters: MAX_ITERS,
        },
    )
}

/// The pre-refactor construction: a concrete `SsHopm` configured the way
/// every call site spelled it before the `Solver` trait existed.
fn legacy_solver(shift: Shift) -> SsHopm {
    SsHopm::new(shift)
        .with_tolerance(TOL)
        .with_max_iters(MAX_ITERS)
}

#[test]
fn default_spec_is_bitwise_identical_to_pre_refactor_sshopm() {
    let (tensors, starts) = workload(4, 3);
    for shift in [Shift::Fixed(1.0), Shift::Fixed(0.0), Shift::Convex] {
        let spec = spec_solver("sshopm", shift);
        let legacy = legacy_solver(shift);
        for backend in backends(KernelStrategy::General) {
            // GPU backends reject adaptive shifts for any solver; skip
            // those combinations (covered by the resilience suite).
            let via_spec =
                match backend.solve_batch(&tensors, &starts, &*spec, &Telemetry::disabled()) {
                    Ok(report) => report,
                    Err(_) => continue,
                };
            let via_legacy = backend
                .solve_batch(&tensors, &starts, &legacy, &Telemetry::disabled())
                .unwrap();
            assert_bitwise_equal(
                &via_spec,
                &via_legacy,
                &format!("{} shift {shift:?}", via_spec.backend),
            );
            assert_eq!(via_spec.solver, "sshopm");
        }
    }
}

#[test]
fn pinned_alpha_spec_matches_explicit_fixed_shift() {
    // `sshopm:A` must behave exactly like `sshopm` with `--shift fixed:A`
    // — the pinned alpha overrides whatever default shift the caller
    // supplies.
    let (tensors, starts) = workload(4, 3);
    let pinned = spec_solver("sshopm:2.5", Shift::Convex);
    let explicit = legacy_solver(Shift::Fixed(2.5));
    for backend in backends(KernelStrategy::Unrolled) {
        let a = backend
            .solve_batch(&tensors, &starts, &*pinned, &Telemetry::disabled())
            .unwrap();
        let b = backend
            .solve_batch(&tensors, &starts, &explicit, &Telemetry::disabled())
            .unwrap();
        assert_bitwise_equal(&a, &b, &a.backend.clone());
    }
}

#[test]
fn boxed_and_borrowed_solver_spellings_agree() {
    // The blanket impls (`&T`, `Box<T>`) must not change behaviour: a
    // boxed trait object, a bare reference and a double reference all
    // drive the same iteration.
    let (tensors, starts) = workload(4, 3);
    let concrete = legacy_solver(Shift::Fixed(1.0));
    let boxed: Box<dyn Solver<f32>> = Box::new(legacy_solver(Shift::Fixed(1.0)));
    let backend = CpuSequential::new(KernelStrategy::General);
    let via_concrete = backend
        .solve_batch(&tensors, &starts, &concrete, &Telemetry::disabled())
        .unwrap();
    let via_boxed = backend
        .solve_batch(&tensors, &starts, &*boxed, &Telemetry::disabled())
        .unwrap();
    let via_double_ref = backend
        .solve_batch(&tensors, &starts, &&concrete, &Telemetry::disabled())
        .unwrap();
    assert_bitwise_equal(&via_boxed, &via_concrete, "boxed vs concrete");
    assert_bitwise_equal(&via_double_ref, &via_concrete, "&& vs concrete");
}
