//! The CLI subcommand implementations. Each command takes raw argument
//! tokens plus a writer, so everything is unit-testable without a process
//! boundary.

use crate::args::Args;
use crate::CmdError;
use backend::{
    parse_fault_plan, BackendSpec, ClusterBackend, CpuParallel, GpuSimBackend, KernelStrategy,
    MultiGpuBackend, PipelinedBackend, ResilientBackend, SolveBackend,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sshopm::{spectrum_from_pairs, DedupConfig, IterationPolicy, Shift, SolverSpec, SsHopm};
use std::fs::File;
use std::io::{BufWriter, Write};
use symtensor::io::{read_tensor_batch, write_tensor_batch};
use symtensor::TensorBatch;
use telemetry::Telemetry;

type CmdResult = Result<(), CmdError>;

/// Load a tensor file straight into one contiguous [`TensorBatch`] arena.
/// The file format carries a single `(m, n)` header, so every batch is
/// uniform by construction — no shape grouping needed downstream.
fn load_batch(path: &str) -> Result<TensorBatch<f64>, CmdError> {
    let file = File::open(path).map_err(|e| CmdError(format!("cannot open {path}: {e}")))?;
    read_tensor_batch(file).map_err(|e| CmdError(format!("cannot parse {path}: {e}")))
}

fn save_batch(path: &str, batch: &TensorBatch<f64>) -> CmdResult {
    let file = File::create(path).map_err(|e| CmdError(format!("cannot create {path}: {e}")))?;
    let mut w = BufWriter::new(file);
    write_tensor_batch(&mut w, batch).map_err(|e| CmdError(format!("cannot write {path}: {e}")))?;
    w.flush().map_err(|e| CmdError(e.to_string()))
}

fn parse_shift(s: Option<&str>) -> Result<Shift, CmdError> {
    match s {
        None | Some("convex") => Ok(Shift::Convex),
        Some("concave") => Ok(Shift::Concave),
        Some("adaptive") => Ok(Shift::Adaptive),
        Some(v) => v
            .parse::<f64>()
            .map(Shift::Fixed)
            .map_err(|_| CmdError(format!("invalid --shift {v:?}"))),
    }
}

/// Parse `--solver` (default `sshopm`) into a [`SolverSpec`]; the parse
/// error already names the valid alternatives.
fn parse_solver(args: &Args) -> Result<SolverSpec, CmdError> {
    Ok(SolverSpec::parse(args.get("solver").unwrap_or("sshopm"))?)
}

/// Reject CPU-only solvers on GPU-simulated backends with a clean error,
/// mirroring [`gpu_shift`]: the kernel model stages only the fixed-shift
/// SS-HOPM iteration on-device.
fn gpu_solver(solver: SolverSpec) -> Result<(), CmdError> {
    match solver {
        SolverSpec::SsHopm { .. } => Ok(()),
        other => Err(CmdError(format!(
            "--solver {other} is CPU-only: gpusim backends stage only the fixed-shift \
             sshopm iteration on-device; use --backend cpu for geap/qrst"
        ))),
    }
}

/// Parse `--backend` (default `cpu`) and `--kernel` (default `general`)
/// into a built [`SolveBackend`] plus its parsed spec. When any of
/// `--faults SPEC`, `--retry N` or `--failover` is present the backend is
/// wrapped in a [`ResilientBackend`] (gpusim specs only). `--pipeline`
/// upgrades a `gpusim` spec to the stream-based [`PipelinedBackend`]
/// (double-buffered chunks) and `--streams N` sets the streams per device
/// for pipelined and resilient execution. `--kernel-cache-dir DIR` points
/// the process-wide kernel registry at an on-disk artifact cache, so
/// `--kernel tape` runs load previously generated tapes instead of
/// regenerating them.
fn parse_backend(args: &Args) -> Result<(BackendSpec, Box<dyn SolveBackend<f64>>), CmdError> {
    let mut spec: BackendSpec = args.get("backend").unwrap_or("cpu").parse()?;
    let strategy = match args.get("kernel") {
        None => KernelStrategy::General,
        Some(k) => KernelStrategy::parse(k)?,
    };
    if let Some(dir) = args.get("kernel-cache-dir") {
        backend::KernelRegistry::global().set_cache_dir(Some(std::path::PathBuf::from(dir)));
    }
    let streams: usize = args.get_parsed("streams", 2)?;
    let chunk_tensors: Option<usize> = match args.get("chunk-tensors") {
        Some(_) => Some(args.get_parsed("chunk-tensors", 1)?),
        None => None,
    };
    if args.flag("pipeline") {
        spec = match spec {
            BackendSpec::GpuSim { device, devices } => BackendSpec::Pipelined { device, devices },
            pipelined @ BackendSpec::Pipelined { .. } => pipelined,
            // Cluster shards already pipeline when the spec's stream
            // count (or --streams) exceeds 1.
            cluster @ BackendSpec::Cluster { .. } => cluster,
            BackendSpec::Cpu { .. } => {
                return Err(CmdError(format!(
                    "--pipeline requires a gpusim backend, got {spec}: CPU backends have no \
                     streams to overlap"
                )));
            }
        };
    }
    let resilient =
        args.get("faults").is_some() || args.get("retry").is_some() || args.flag("failover");
    let backend: Box<dyn SolveBackend<f64>> = if resilient {
        let plan = parse_fault_plan(args.get("faults").unwrap_or(""))?;
        Box::new(
            ResilientBackend::from_spec(&spec, strategy, plan)?
                .with_retries(args.get_parsed("retry", 2)?)
                .with_failover(args.flag("failover"))
                .with_streams(streams)?,
        )
    } else if let BackendSpec::Pipelined { device, devices } = spec {
        let mut built = PipelinedBackend::homogeneous(
            device.spec(),
            devices,
            gpusim::TransferModel::pcie2(),
            strategy,
        )?
        .with_streams(streams)?;
        if let Some(chunk) = chunk_tensors {
            built = built.with_chunk_tensors(chunk)?;
        }
        Box::new(built)
    } else if let BackendSpec::Cluster {
        device,
        hosts,
        devices,
        streams: spec_streams,
    } = spec
    {
        // An explicit --streams overrides the spec's stream field.
        let effective = if args.get("streams").is_some() {
            streams
        } else {
            spec_streams
        };
        let mut built = ClusterBackend::homogeneous(device.spec(), hosts, devices, strategy)?
            .with_streams(effective)?;
        if let Some(chunk) = chunk_tensors {
            built = built.with_chunk_tensors(chunk)?;
        }
        Box::new(built)
    } else {
        spec.build::<f64>(strategy)?
    };
    Ok((spec, backend))
}

/// Render a unified [`telemetry::RunReport`] in one of the supported
/// formats: `text` (human-readable summary), `json` (pretty,
/// schema-versioned), or `prom` (Prometheus text exposition).
fn render_run_report(run: &telemetry::RunReport, format: &str) -> Result<String, CmdError> {
    match format {
        "text" => Ok(run.render_text()),
        "json" => Ok(run.to_json_pretty()),
        "prom" | "prometheus" => Ok(run.to_prometheus()),
        other => Err(CmdError(format!(
            "invalid report format {other:?}: expected text, json, or prom"
        ))),
    }
}

/// Handle the `--report-out PATH` / `--report-format F` options shared by
/// `solve` and `fibers`: when either is present, render the unified run
/// report and write it to PATH (default format `text`), or append it to
/// the command's normal output when only a format was given.
fn write_report_output(args: &Args, run: &telemetry::RunReport, out: &mut dyn Write) -> CmdResult {
    let path = args.get("report-out");
    let format = args.get("report-format");
    if path.is_none() && format.is_none() {
        return Ok(());
    }
    let format = format.unwrap_or("text");
    let mut rendered = render_run_report(run, format)?;
    if !rendered.ends_with('\n') {
        rendered.push('\n');
    }
    match path {
        Some(p) => {
            std::fs::write(p, &rendered).map_err(|e| CmdError(format!("cannot write {p}: {e}")))?;
            writeln!(out, "wrote run report ({format}) to {p}")?;
        }
        None => write!(out, "{rendered}")?,
    }
    Ok(())
}

/// Validate/adjust the shift for a GPU-simulated backend, which only
/// supports fixed shifts: an *explicit* non-numeric `--shift` is a clean
/// error; with no explicit shift the paper's `α = 0` is used.
fn gpu_shift(explicit: Option<&str>, shift: Shift) -> Result<Shift, CmdError> {
    match (explicit, shift) {
        (_, Shift::Fixed(_)) => Ok(shift),
        (None, _) => Ok(Shift::Fixed(0.0)),
        (Some(s), _) => Err(CmdError(format!(
            "--shift {s} is CPU-only: gpusim backends support only fixed numeric shifts \
             (e.g. --shift 0); use --backend cpu for adaptive/convex shifts"
        ))),
    }
}

/// `random <m> <n> <count> --out FILE [--seed S]`
pub fn random(argv: Vec<String>, out: &mut dyn Write) -> Result<(), String> {
    inner_random(argv, out).map_err(|e| e.0)
}

fn inner_random(argv: Vec<String>, out: &mut dyn Write) -> CmdResult {
    let args = Args::parse(argv, &["out", "seed"], &[])?;
    let m: usize = args
        .positional(0, "m")?
        .parse()
        .map_err(|_| CmdError("invalid <m>".into()))?;
    let n: usize = args
        .positional(1, "n")?
        .parse()
        .map_err(|_| CmdError("invalid <n>".into()))?;
    let count: usize = args
        .positional(2, "count")?
        .parse()
        .map_err(|_| CmdError("invalid <count>".into()))?;
    let path = args
        .get("out")
        .ok_or_else(|| CmdError("--out FILE is required".into()))?;
    let seed: u64 = args.get_parsed("seed", 0)?;

    let mut rng = StdRng::seed_from_u64(seed);
    let tensors = TensorBatch::<f64>::random(m, n, count, &mut rng)
        .map_err(|e| CmdError(format!("invalid shape [{m},{n}]: {e}")))?;
    save_batch(path, &tensors)?;
    writeln!(out, "wrote {count} random [{m},{n}] tensors to {path}")?;
    Ok(())
}

/// `info <file>`
pub fn info(argv: Vec<String>, out: &mut dyn Write) -> Result<(), String> {
    inner_info(argv, out).map_err(|e| e.0)
}

fn inner_info(argv: Vec<String>, out: &mut dyn Write) -> CmdResult {
    let args = Args::parse(argv, &[], &[])?;
    let path = args.positional(0, "file")?;
    let tensors = load_batch(path)?;
    if tensors.is_empty() {
        writeln!(out, "{path}: empty tensor file")?;
        return Ok(());
    }
    let (m, n) = (tensors.order(), tensors.dim());
    writeln!(
        out,
        "{path}: {} tensors, order {m}, dimension {n}, {} unique entries each ({} total per tensor)",
        tensors.len(),
        tensors.stride(),
        (n as u64).pow(m as u32),
    )?;
    let norms: Vec<f64> = tensors.iter().map(|t| t.frobenius_norm()).collect();
    let min = norms.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = norms.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mean = norms.iter().sum::<f64>() / norms.len() as f64;
    writeln!(
        out,
        "Frobenius norms: min {min:.4}  mean {mean:.4}  max {max:.4}"
    )?;
    Ok(())
}

/// `solve <file> [--backend B] [--kernel K] [--starts N] [--shift ...]
/// [--tol T] [--refine] [--all]`
pub fn solve(argv: Vec<String>, out: &mut dyn Write) -> Result<(), String> {
    solve_instrumented(argv, out, &Telemetry::disabled())
}

/// [`solve`] with a live telemetry pipeline: the backend batch records
/// progress spans/counters, plus per-tensor eigenpair/failure counts.
pub fn solve_instrumented(
    argv: Vec<String>,
    out: &mut dyn Write,
    telemetry: &Telemetry,
) -> Result<(), String> {
    inner_solve(argv, out, telemetry).map_err(|e| e.0)
}

fn inner_solve(argv: Vec<String>, out: &mut dyn Write, telemetry: &Telemetry) -> CmdResult {
    let args = Args::parse(
        argv,
        &[
            "starts",
            "shift",
            "solver",
            "tol",
            "seed",
            "backend",
            "kernel",
            "kernel-cache-dir",
            "faults",
            "retry",
            "streams",
            "chunk-tensors",
            "report-out",
            "report-format",
        ],
        &["refine", "all", "failover", "pipeline"],
    )?;
    let path = args.positional(0, "file")?;
    let starts_count: usize = args.get_parsed("starts", 32)?;
    let tol: f64 = args.get_parsed("tol", 1e-12)?;
    let mut shift = parse_shift(args.get("shift"))?;
    let solver_spec = parse_solver(&args)?;
    let refine = args.flag("refine");
    let show_all = args.flag("all");
    let (spec, backend) = parse_backend(&args)?;
    if spec.is_gpu() {
        shift = gpu_shift(args.get("shift"), shift)?;
        gpu_solver(solver_spec)?;
    }

    let tensors = load_batch(path)?;
    let _cmd_span = telemetry.span("cli.solve");
    // The same Converge policy SsHopm::new().with_tolerance() produced
    // before solver selection existed, so the default spec is bitwise
    // identical to the pre-trait path.
    let solver = solver_spec.build::<f64>(
        shift,
        IterationPolicy::Converge {
            tol,
            max_iters: 1000,
        },
    );

    // The file format guarantees one shape per batch, so the whole file is
    // a single homogeneous arena: one batched solve through the backend.
    let n = tensors.dim();
    let starts = if n == 3 {
        sshopm::starts::fibonacci_sphere::<f64>(starts_count)
    } else {
        let mut rng = StdRng::seed_from_u64(args.get_parsed("seed", 0)?);
        sshopm::starts::random_gaussian_starts::<f64, _>(n, starts_count, &mut rng)
    };
    let (report, run) = backend.solve_batch_with_report(&tensors, &starts, &*solver, telemetry)?;
    telemetry.counter("solve.tensors", tensors.len() as u64);
    let mut summaries = vec![report.summary()];
    if !report.fault_log.injected.is_empty() || report.fault_log.degraded {
        summaries.push(report.fault_log.summary());
    }
    if args.flag("pipeline") {
        if let Some(timeline) = &report.timeline {
            summaries.push(timeline.summary());
        }
    }
    let mut spectra: Vec<Option<sshopm::Spectrum<f64>>> = Vec::with_capacity(tensors.len());
    for (pairs, a) in report.results.into_iter().zip(tensors.iter()) {
        let spectrum = spectrum_from_pairs(a, pairs, &DedupConfig::default(), 1e-5);
        telemetry.counter("solve.eigenpairs", spectrum.entries.len() as u64);
        telemetry.counter("solve.failures", spectrum.failures as u64);
        spectra.push(Some(spectrum));
    }

    for (i, a) in tensors.iter().enumerate() {
        let spectrum = spectra[i].take().expect("every tensor was solved");
        writeln!(
            out,
            "tensor {i}: {} distinct eigenpairs from {} starts ({} failures)",
            spectrum.entries.len(),
            spectrum.total_starts,
            spectrum.failures
        )?;
        for entry in &spectrum.entries {
            let mut pair = entry.pair.clone();
            let mut note = String::new();
            if refine {
                let refined = sshopm::refine(&a.to_owned(), &pair, 4, 1e-14);
                note = format!(
                    " (refined {:.1e} -> {:.1e})",
                    refined.residual_before, refined.residual_after
                );
                pair = refined.pair;
            }
            writeln!(
                out,
                "  lambda {:>13.8}  x {:?}  {:?}  basin {}/{}{}",
                pair.lambda,
                pair.x
                    .iter()
                    .map(|v| (v * 1e6).round() / 1e6)
                    .collect::<Vec<_>>(),
                entry.stability,
                entry.basin_count,
                spectrum.total_starts,
                note
            )?;
            if !show_all && entry.stability == sshopm::Stability::PositiveStable {
                // With a convex shift, minima only appear via lucky saddle
                // hits; keep output focused unless --all.
                continue;
            }
        }
    }
    for summary in &summaries {
        writeln!(out, "{summary}")?;
    }
    write_report_output(&args, &run, out)?;
    Ok(())
}

/// `phantom --out FILE [--width W] [--height H] [--noise X] [--seed S]`
pub fn phantom(argv: Vec<String>, out: &mut dyn Write) -> Result<(), String> {
    inner_phantom(argv, out).map_err(|e| e.0)
}

fn inner_phantom(argv: Vec<String>, out: &mut dyn Write) -> CmdResult {
    let args = Args::parse(argv, &["out", "width", "height", "noise", "seed"], &[])?;
    let path = args
        .get("out")
        .ok_or_else(|| CmdError("--out FILE is required".into()))?;
    let amplitude: f64 = args.get_parsed("noise", 0.0)?;
    let config = dwmri::PhantomConfig {
        width: args.get_parsed("width", 32)?,
        height: args.get_parsed("height", 32)?,
        noise: if amplitude == 0.0 {
            dwmri::NoiseModel::None
        } else {
            dwmri::NoiseModel::Multiplicative { amplitude }
        },
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(args.get_parsed("seed", 0)?);
    let phantom = dwmri::Phantom::generate(config, &mut rng);
    save_batch(path, &phantom.tensor_batch())?;
    writeln!(
        out,
        "wrote {} phantom voxels ({} single-fiber, {} crossing) to {path}",
        phantom.len(),
        phantom.count_with_fibers(1),
        phantom.count_with_fibers(2)
    )?;
    Ok(())
}

/// `fibers <file> [--backend B] [--kernel K] [--shift ...] [--starts N]
/// [--max-fibers K]`
pub fn fibers(argv: Vec<String>, out: &mut dyn Write) -> Result<(), String> {
    inner_fibers(argv, out).map_err(|e| e.0)
}

fn inner_fibers(argv: Vec<String>, out: &mut dyn Write) -> CmdResult {
    let args = Args::parse(
        argv,
        &[
            "starts",
            "max-fibers",
            "shift",
            "solver",
            "backend",
            "kernel",
            "kernel-cache-dir",
            "faults",
            "retry",
            "streams",
            "chunk-tensors",
            "report-out",
            "report-format",
        ],
        &["failover", "pipeline"],
    )?;
    let path = args.positional(0, "file")?;
    let tensors = load_batch(path)?;
    let (spec, backend) = parse_backend(&args)?;
    let mut shift = match args.get("shift") {
        None => dwmri::ExtractConfig::default().shift,
        Some(_) => parse_shift(args.get("shift"))?,
    };
    let solver = parse_solver(&args)?;
    if spec.is_gpu() {
        shift = gpu_shift(args.get("shift"), shift)?;
        gpu_solver(solver)?;
    }
    let cfg = dwmri::ExtractConfig {
        num_starts: args.get_parsed("starts", 64)?,
        max_fibers: args.get_parsed("max-fibers", 3)?,
        shift,
        solver,
        ..Default::default()
    };
    if !tensors.is_empty() && tensors.dim() != 3 {
        return Err(CmdError(format!(
            "fiber extraction needs dimension-3 tensors, file has n={}",
            tensors.dim()
        )));
    }
    let (all_fibers, report) =
        dwmri::extract_fibers_reported(&tensors, &cfg, &*backend, &Telemetry::disabled())?;
    let mut counts = [0usize; 4];
    for (i, fibers) in all_fibers.iter().enumerate() {
        counts[fibers.len().min(3)] += 1;
        write!(out, "voxel {i}: {} fiber(s)", fibers.len())?;
        for f in fibers {
            write!(
                out,
                "  [{:.4} {:.4} {:.4}] (lambda {:.4})",
                f.direction[0], f.direction[1], f.direction[2], f.lambda
            )?;
        }
        writeln!(out)?;
    }
    writeln!(
        out,
        "summary: {} voxels -> 0 fibers: {}, 1: {}, 2: {}, 3+: {}",
        tensors.len(),
        counts[0],
        counts[1],
        counts[2],
        counts[3]
    )?;
    write_report_output(&args, &report.run_report(), out)?;
    Ok(())
}

/// `decompose <file> [--terms K] [--starts N] [--tol T]`
pub fn decompose(argv: Vec<String>, out: &mut dyn Write) -> Result<(), String> {
    inner_decompose(argv, out).map_err(|e| e.0)
}

fn inner_decompose(argv: Vec<String>, out: &mut dyn Write) -> CmdResult {
    let args = Args::parse(argv, &["terms", "starts", "tol"], &[])?;
    let path = args.positional(0, "file")?;
    let terms: usize = args.get_parsed("terms", 3)?;
    let starts: usize = args.get_parsed("starts", 48)?;
    let tol: f64 = args.get_parsed("tol", 1e-8)?;
    let tensors = load_batch(path)?;
    for (i, a) in tensors.iter().enumerate() {
        let cp = sshopm::decompose(&a.to_owned(), terms, starts, tol);
        writeln!(
            out,
            "tensor {i}: {} rank-one term(s), relative residual {:.3e}",
            cp.terms.len(),
            cp.relative_residual()
        )?;
        for (r, t) in cp.terms.iter().enumerate() {
            writeln!(
                out,
                "  term {r}: weight {:>12.6}, v = {:?}, residual {:.3e}",
                t.weight,
                t.vector
                    .iter()
                    .map(|v| (v * 1e4).round() / 1e4)
                    .collect::<Vec<_>>(),
                t.residual_norm
            )?;
        }
    }
    Ok(())
}

/// `tract <file> --width W [--height H] [--starts N] [--seeds K]`
pub fn tract(argv: Vec<String>, out: &mut dyn Write) -> Result<(), String> {
    inner_tract(argv, out).map_err(|e| e.0)
}

fn inner_tract(argv: Vec<String>, out: &mut dyn Write) -> CmdResult {
    let args = Args::parse(argv, &["width", "height", "starts", "seeds"], &[])?;
    let path = args.positional(0, "file")?;
    let tensors = load_batch(path)?;
    let width: usize = args.get_parsed("width", 0)?;
    if width == 0 {
        return Err(CmdError(
            "--width W is required (grid layout of the file)".into(),
        ));
    }
    if tensors.len() % width != 0 {
        return Err(CmdError(format!(
            "{} tensors do not tile a grid of width {width}",
            tensors.len()
        )));
    }
    let height: usize = args.get_parsed("height", tensors.len() / width)?;
    if width * height != tensors.len() {
        return Err(CmdError(format!(
            "grid {width}x{height} != {} tensors",
            tensors.len()
        )));
    }
    let starts: usize = args.get_parsed("starts", 64)?;
    let num_seeds: usize = args.get_parsed("seeds", 5)?;

    let cfg = dwmri::ExtractConfig {
        num_starts: starts,
        ..Default::default()
    };
    let backend = CpuParallel::new(0, KernelStrategy::General);
    let fibers = dwmri::extract_fibers_with(&tensors, &cfg, &backend, &Telemetry::disabled())?;
    let field = dwmri::FiberField::new(width, height, fibers);

    // Evenly spaced seeds along the left edge.
    let tcfg = dwmri::TractConfig::default();
    writeln!(
        out,
        "tracking {num_seeds} seeds over a {width}x{height} field:"
    )?;
    for s in 0..num_seeds {
        let y = (s as f64 + 0.5) * height as f64 / num_seeds as f64;
        match dwmri::trace(&field, (0.5, y), &tcfg) {
            Some(stream) => writeln!(
                out,
                "  seed (0.5, {y:.1}): length {:.1} voxels, {} points, stops {:?}/{:?}",
                stream.length(),
                stream.points.len(),
                stream.stop_backward,
                stream.stop_forward
            )?,
            None => writeln!(out, "  seed (0.5, {y:.1}): no fibers at seed")?,
        }
    }
    Ok(())
}

/// Parse `--variant` (the GPU-side kernel choice) into a strategy.
fn parse_variant(s: Option<&str>) -> Result<KernelStrategy, CmdError> {
    match s {
        None | Some("unrolled") => Ok(KernelStrategy::Unrolled),
        Some("general") => Ok(KernelStrategy::General),
        Some("tape") => Ok(KernelStrategy::Tape),
        Some(v) => Err(CmdError(format!("invalid --variant {v:?}"))),
    }
}

/// `gpu <file> [--starts N] [--variant V] [--devices K] [--iters I]`
pub fn gpu(argv: Vec<String>, out: &mut dyn Write) -> Result<(), String> {
    gpu_instrumented(argv, out, &Telemetry::disabled())
}

/// [`gpu`] with a live telemetry pipeline: the backend times the launch
/// and emits a profile-snapshot event per device slice.
pub fn gpu_instrumented(
    argv: Vec<String>,
    out: &mut dyn Write,
    telemetry: &Telemetry,
) -> Result<(), String> {
    inner_gpu(argv, out, telemetry).map_err(|e| e.0)
}

fn inner_gpu(argv: Vec<String>, out: &mut dyn Write, telemetry: &Telemetry) -> CmdResult {
    let args = Args::parse(
        argv,
        &["starts", "variant", "devices", "iters", "seed"],
        &[],
    )?;
    let path = args.positional(0, "file")?;
    let starts_count: usize = args.get_parsed("starts", 128)?;
    let devices: usize = args.get_parsed("devices", 1)?;
    let iters: usize = args.get_parsed("iters", 20)?;
    let strategy = parse_variant(args.get("variant"))?;

    let tensors64 = load_batch(path)?;
    if tensors64.is_empty() {
        return Err(CmdError("tensor file is empty".into()));
    }
    let tensors = tensors64.to_f32();
    let (m, n) = (tensors.order(), tensors.dim());
    let mut rng = StdRng::seed_from_u64(args.get_parsed("seed", 0)?);
    let starts = sshopm::starts::random_uniform_starts::<f32, _>(n, starts_count, &mut rng);

    let backend = MultiGpuBackend::homogeneous(
        gpusim::DeviceSpec::tesla_c2050(),
        devices,
        gpusim::TransferModel::pcie2(),
        strategy,
    )?;
    let solver = SsHopm::new(Shift::Fixed(0.0)).with_policy(IterationPolicy::Fixed(iters));
    let _launch_span = telemetry.span("cli.gpu");
    let report = backend.solve_batch(&tensors, &starts, &solver, telemetry)?;
    if report.kernel != strategy.name() {
        writeln!(
            out,
            "note: no {} kernel for shape ({m},{n}); falling back to {}",
            strategy.name(),
            report.kernel
        )?;
    }
    writeln!(
        out,
        "{} tensors x {} starts x {} iterations ({} kernel) on {}x Tesla C2050 (model)",
        tensors.len(),
        starts_count,
        iters,
        report.kernel,
        devices
    )?;
    for p in &report.profiles {
        writeln!(
            out,
            "  device {}: {} tensors, occupancy {} blocks/SM ({}), kernel {:.3} ms + transfer {:.3} ms",
            p.device_index,
            p.num_tensors,
            p.snapshot.blocks_per_sm,
            p.snapshot.occupancy_limiter,
            p.snapshot.seconds * 1e3,
            p.transfer_seconds * 1e3,
        )?;
    }
    writeln!(
        out,
        "estimated wall-clock {:.3} ms, {:.1} GFLOP/s aggregate",
        report.seconds * 1e3,
        report.gflops()
    )?;
    Ok(())
}

/// `profile [file] [--tensors T] [--m M] [--n N] [--starts N]
/// [--variant V] [--iters I] [--device D] [--seed S] [--pipeline]
/// [--streams K]`
///
/// Runs one simulated kernel launch through a [`GpuSimBackend`] and dumps
/// the full profile snapshot — counter breakdown, occupancy, divergence
/// and coalescing statistics, timing components — as pretty JSON. Without
/// a tensor file it profiles a synthetic random workload. With
/// `--pipeline` the launch runs through the stream-based
/// [`PipelinedBackend`] instead and the resolved event-timeline summary
/// (makespan vs serial, overlap saved) is appended after the JSON.
pub fn profile(
    argv: Vec<String>,
    out: &mut dyn Write,
    telemetry: &Telemetry,
) -> Result<(), String> {
    inner_profile(argv, out, telemetry).map_err(|e| e.0)
}

fn inner_profile(argv: Vec<String>, out: &mut dyn Write, telemetry: &Telemetry) -> CmdResult {
    let args = Args::parse(
        argv,
        &[
            "tensors", "m", "n", "starts", "variant", "iters", "device", "seed", "streams",
        ],
        &["pipeline"],
    )?;
    let seed: u64 = args.get_parsed("seed", 0)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let tensors: TensorBatch<f32> = match args.positional(0, "file").ok() {
        Some(path) => {
            let loaded = load_batch(path)?;
            if loaded.is_empty() {
                return Err(CmdError("tensor file is empty".into()));
            }
            loaded.to_f32()
        }
        None => {
            let m: usize = args.get_parsed("m", 4)?;
            let n: usize = args.get_parsed("n", 3)?;
            let count: usize = args.get_parsed("tensors", 256)?;
            TensorBatch::<f64>::random(m, n, count, &mut rng)
                .map_err(|e| CmdError(format!("invalid shape [{m},{n}]: {e}")))?
                .to_f32()
        }
    };
    let n = tensors.dim();
    let strategy = parse_variant(args.get("variant"))?;
    let device = match args.get("device") {
        None | Some("c2050") => gpusim::DeviceSpec::tesla_c2050(),
        Some("c1060") => gpusim::DeviceSpec::tesla_c1060(),
        Some("gtx580") => gpusim::DeviceSpec::gtx_580(),
        Some(v) => return Err(CmdError(format!("invalid --device {v:?}"))),
    };
    let starts_count: usize = args.get_parsed("starts", 128)?;
    let iters: usize = args.get_parsed("iters", 20)?;
    let starts = sshopm::starts::random_uniform_starts::<f32, _>(n, starts_count, &mut rng);

    let backend: Box<dyn SolveBackend<f32>> = if args.flag("pipeline") {
        Box::new(
            PipelinedBackend::homogeneous(device, 1, gpusim::TransferModel::pcie2(), strategy)?
                .with_streams(args.get_parsed("streams", 2)?)?,
        )
    } else {
        Box::new(GpuSimBackend::new(device, strategy))
    };
    let solver = SsHopm::new(Shift::Fixed(0.0)).with_policy(IterationPolicy::Fixed(iters));
    let _span = telemetry.span("cli.profile");
    let report = backend.solve_batch(&tensors, &starts, &solver, telemetry)?;
    writeln!(out, "{}", report.profiles[0].snapshot.to_json_pretty())?;
    // Only pipelined launches have a resolved event timeline; the plain
    // profile output stays pure JSON.
    if let Some(timeline) = &report.timeline {
        writeln!(out, "{}", timeline.summary())?;
    }
    Ok(())
}

/// `report [file] [--tensors T] [--m M] [--n N] [--starts N] [--iters I]
/// [--seed S] [--shift F] [--backend B] [--kernel K] [--faults SPEC]
/// [--retry N] [--failover] [--pipeline] [--streams K]
/// [--format text|json|prom] [--out PATH]`
///
/// Runs one batched solve through any execution backend and emits the
/// unified, schema-versioned [`telemetry::RunReport`]: throughput and
/// convergence, fault/retry/failover rates, per-chunk/per-stream/
/// per-device latency quantiles (p50/p90/p99), and per-device occupancy.
/// Without a tensor file it reports on a synthetic random workload.
/// `--format` picks the renderer (default `text`); `--out` writes the
/// report to a file instead of stdout.
pub fn report(argv: Vec<String>, out: &mut dyn Write) -> Result<(), String> {
    report_instrumented(argv, out, &Telemetry::disabled())
}

/// [`report`] with a live telemetry pipeline: counters, gauges, and
/// histograms recorded during the run are folded into the emitted report.
pub fn report_instrumented(
    argv: Vec<String>,
    out: &mut dyn Write,
    telemetry: &Telemetry,
) -> Result<(), String> {
    inner_report(argv, out, telemetry).map_err(|e| e.0)
}

fn inner_report(argv: Vec<String>, out: &mut dyn Write, telemetry: &Telemetry) -> CmdResult {
    let args = Args::parse(
        argv,
        &[
            "tensors",
            "m",
            "n",
            "starts",
            "iters",
            "seed",
            "shift",
            "solver",
            "backend",
            "kernel",
            "kernel-cache-dir",
            "faults",
            "retry",
            "streams",
            "chunk-tensors",
            "format",
            "out",
        ],
        &["failover", "pipeline"],
    )?;
    let seed: u64 = args.get_parsed("seed", 0)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let tensors: TensorBatch<f64> = match args.positional(0, "file").ok() {
        Some(path) => load_batch(path)?,
        None => {
            let m: usize = args.get_parsed("m", 4)?;
            let n: usize = args.get_parsed("n", 3)?;
            let count: usize = args.get_parsed("tensors", 64)?;
            TensorBatch::<f64>::random(m, n, count, &mut rng)
                .map_err(|e| CmdError(format!("invalid shape [{m},{n}]: {e}")))?
        }
    };
    let (spec, backend) = parse_backend(&args)?;
    let mut shift = parse_shift(args.get("shift"))?;
    let solver_spec = parse_solver(&args)?;
    if spec.is_gpu() {
        shift = gpu_shift(args.get("shift"), shift)?;
        gpu_solver(solver_spec)?;
    }
    let starts_count: usize = args.get_parsed("starts", 32)?;
    let iters: usize = args.get_parsed("iters", 20)?;
    let n = tensors.dim();
    let starts = if n == 3 {
        sshopm::starts::fibonacci_sphere::<f64>(starts_count)
    } else {
        sshopm::starts::random_gaussian_starts::<f64, _>(n, starts_count, &mut rng)
    };
    let solver = solver_spec.build::<f64>(shift, IterationPolicy::Fixed(iters));
    let _span = telemetry.span("cli.report");
    let (_batch, run) = backend.solve_batch_with_report(&tensors, &starts, &*solver, telemetry)?;
    let format = args.get("format").unwrap_or("text");
    let mut rendered = render_run_report(&run, format)?;
    if !rendered.ends_with('\n') {
        rendered.push('\n');
    }
    match args.get("out") {
        Some(p) => {
            std::fs::write(p, &rendered).map_err(|e| CmdError(format!("cannot write {p}: {e}")))?;
            writeln!(out, "wrote run report ({format}) to {p}")?;
        }
        None => write!(out, "{rendered}")?,
    }
    Ok(())
}

/// `cache <stats|clear> [--kernel-cache-dir DIR]`
///
/// Inspects or empties the kernel-registry artifact cache. `stats` prints
/// the process-wide registry counters plus a validated listing of the
/// on-disk `.tape` entries; `clear` drops the in-process memo maps and
/// deletes every `.tape` file in the cache directory. The directory comes
/// from `--kernel-cache-dir`, falling back to whatever the registry was
/// already pointed at.
pub fn cache(argv: Vec<String>, out: &mut dyn Write) -> Result<(), String> {
    inner_cache(argv, out).map_err(|e| e.0)
}

fn inner_cache(argv: Vec<String>, out: &mut dyn Write) -> CmdResult {
    let args = Args::parse(argv, &["kernel-cache-dir"], &[])?;
    let action = args.positional(0, "stats|clear")?.to_string();
    let registry = backend::KernelRegistry::global();
    let dir = args
        .get("kernel-cache-dir")
        .map(std::path::PathBuf::from)
        .or_else(|| registry.cache_dir());
    match action.as_str() {
        "stats" => {
            let s = registry.stats();
            writeln!(out, "kernel registry (this process):")?;
            writeln!(out, "  memo hits      {}", s.memo_hits)?;
            writeln!(out, "  memo misses    {}", s.memo_misses)?;
            writeln!(out, "  disk hits      {}", s.disk_hits)?;
            writeln!(out, "  disk misses    {}", s.disk_misses)?;
            writeln!(out, "  generated      {}", s.generated)?;
            writeln!(out, "  generate time  {:.3} ms", s.generate_seconds * 1e3)?;
            if let Some(rate) = s.artifact_hit_rate() {
                writeln!(out, "  artifact hit rate {:.1}%", rate * 100.0)?;
            }
            match &dir {
                None => writeln!(
                    out,
                    "no artifact cache directory configured (--kernel-cache-dir DIR)"
                )?,
                Some(dir) => {
                    let entries = kernelgen::inspect_dir(dir)
                        .map_err(|e| CmdError(format!("cannot read {}: {e}", dir.display())))?;
                    writeln!(
                        out,
                        "artifact cache {} ({} entries):",
                        dir.display(),
                        entries.len()
                    )?;
                    let mut total = 0u64;
                    for e in &entries {
                        total += e.bytes;
                        let shape = match e.shape {
                            Some((m, n)) => format!("({m},{n})"),
                            None => "(?)".to_string(),
                        };
                        let scalar = e.scalar.as_deref().unwrap_or("?");
                        let status = if e.valid { "ok" } else { "INVALID" };
                        writeln!(
                            out,
                            "  {} {shape} {scalar} {} bytes [{status}]",
                            e.file_name, e.bytes
                        )?;
                    }
                    writeln!(out, "  total {total} bytes")?;
                }
            }
            Ok(())
        }
        "clear" => {
            registry.clear_memory();
            match &dir {
                None => {
                    writeln!(
                        out,
                        "cleared in-memory kernel cache; no artifact cache directory \
                         configured (--kernel-cache-dir DIR)"
                    )?;
                }
                Some(dir) => {
                    let removed = backend::KernelRegistry::clear_disk_at(dir)
                        .map_err(|e| CmdError(format!("cannot clear {}: {e}", dir.display())))?;
                    writeln!(
                        out,
                        "cleared in-memory kernel cache and removed {removed} artifact(s) \
                         from {}",
                        dir.display()
                    )?;
                }
            }
            Ok(())
        }
        other => Err(CmdError(format!(
            "unknown cache action {other:?}: expected stats or clear"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> String {
        let mut p = std::env::temp_dir();
        p.push(format!("tensor-eig-cli-test-{}-{name}", std::process::id()));
        p.to_string_lossy().into_owned()
    }

    fn sv(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn random_then_info_round_trip() {
        let path = tmp("rt.txt");
        let mut out = Vec::new();
        random(
            sv(&["4", "3", "5", "--out", &path, "--seed", "9"]),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("5 random [4,3] tensors"));

        let mut out = Vec::new();
        info(sv(&[&path]), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("5 tensors, order 4, dimension 3, 15 unique"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn solve_prints_eigenpairs_with_small_residuals() {
        let path = tmp("solve.txt");
        let mut out = Vec::new();
        random(
            sv(&["4", "3", "2", "--out", &path, "--seed", "1"]),
            &mut out,
        )
        .unwrap();
        let mut out = Vec::new();
        solve(sv(&[&path, "--starts", "16", "--refine"]), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("tensor 0:"));
        assert!(text.contains("tensor 1:"));
        assert!(text.contains("lambda"));
        assert!(text.contains("refined"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn phantom_then_fibers() {
        let path = tmp("ph.txt");
        let mut out = Vec::new();
        phantom(
            sv(&["--out", &path, "--width", "3", "--height", "3"]),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("9 phantom voxels"));

        let mut out = Vec::new();
        fibers(sv(&[&path, "--starts", "32"]), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("voxel 0:"));
        assert!(text.contains("summary: 9 voxels"));
        // A 3x3 default phantom has single- and two-fiber voxels.
        assert!(!text.contains("0 fibers: 9"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn gpu_command_reports_model() {
        let path = tmp("gpu.txt");
        let mut out = Vec::new();
        random(sv(&["4", "3", "8", "--out", &path]), &mut out).unwrap();
        let mut out = Vec::new();
        gpu(
            sv(&[&path, "--starts", "32", "--devices", "2", "--iters", "5"]),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("2x Tesla C2050"));
        assert!(text.contains("GFLOP/s aggregate"));
        assert!(text.contains("device 0:"));
        assert!(text.contains("device 1:"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn gpu_falls_back_for_ungenerated_unrolled_shape() {
        let path = tmp("gpu59.txt");
        let mut out = Vec::new();
        random(sv(&["5", "9", "2", "--out", &path]), &mut out).unwrap();
        // Default (unrolled) on an ungenerated shape falls back with a note.
        let mut out = Vec::new();
        gpu(sv(&[&path, "--iters", "2", "--starts", "8"]), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("falling back to general"), "{text}");
        assert!(text.contains("(general kernel)"), "{text}");
        // Asking for the general variant directly emits no note.
        let mut out = Vec::new();
        gpu(
            sv(&[
                &path,
                "--variant",
                "general",
                "--iters",
                "2",
                "--starts",
                "8",
            ]),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(!text.contains("falling back"), "{text}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tract_traces_over_a_phantom_grid() {
        let path = tmp("tract.txt");
        let mut out = Vec::new();
        phantom(
            sv(&["--out", &path, "--width", "6", "--height", "4"]),
            &mut out,
        )
        .unwrap();
        let mut out = Vec::new();
        tract(
            sv(&[&path, "--width", "6", "--starts", "32", "--seeds", "2"]),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("tracking 2 seeds over a 6x4 field"), "{text}");
        assert!(text.contains("length"), "{text}");
        // Missing width is a clean error.
        let mut out = Vec::new();
        let err = tract(sv(&[&path]), &mut out).unwrap_err();
        assert!(err.contains("--width"));
        // Non-tiling width is rejected.
        let mut out = Vec::new();
        let err = tract(sv(&[&path, "--width", "5"]), &mut out).unwrap_err();
        assert!(err.contains("do not tile"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn decompose_reports_rank_one_structure() {
        // Write a pure rank-one tensor and decompose it: one term, tiny
        // residual.
        let path = tmp("dec.txt");
        let v = [0.6f64, 0.0, 0.8];
        let t = symtensor::SymTensor::rank_one(4, &v);
        let mut f = std::fs::File::create(&path).unwrap();
        symtensor::io::write_tensor(&mut f, &t).unwrap();
        drop(f);
        let mut out = Vec::new();
        decompose(sv(&[&path, "--terms", "2", "--starts", "32"]), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("1 rank-one term(s)"), "{text}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_a_clean_error() {
        let mut out = Vec::new();
        let err = info(sv(&["/definitely/not/here.txt"]), &mut out).unwrap_err();
        assert!(err.contains("cannot open"));
    }

    #[test]
    fn bad_shift_rejected() {
        let path = tmp("shift.txt");
        let mut out = Vec::new();
        random(sv(&["3", "3", "1", "--out", &path]), &mut out).unwrap();
        let mut out = Vec::new();
        let err = solve(sv(&[&path, "--shift", "sideways"]), &mut out).unwrap_err();
        assert!(err.contains("invalid --shift"));
        // Numeric shifts are accepted.
        let mut out = Vec::new();
        solve(sv(&[&path, "--shift", "2.5", "--starts", "4"]), &mut out).unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn profile_dumps_snapshot_json() {
        let mut out = Vec::new();
        profile(
            sv(&["--tensors", "16", "--starts", "8", "--iters", "3"]),
            &mut out,
            &Telemetry::disabled(),
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        let v = serde::Value::parse_json(&text).unwrap();
        assert_eq!(
            v.get("variant").and_then(serde::Value::as_str),
            Some("unrolled")
        );
        assert!(v
            .get("device")
            .and_then(serde::Value::as_str)
            .unwrap()
            .contains("Tesla C2050"));
        assert!(v.get("occupancy").and_then(serde::Value::as_f64).is_some());
        assert!(v.get("gflops").and_then(serde::Value::as_f64).is_some());
        assert!(v.get("counters").and_then(|c| c.get("ffma")).is_some());
    }

    #[test]
    fn profile_accepts_file_device_and_general_variant() {
        let path = tmp("prof.txt");
        let mut out = Vec::new();
        random(sv(&["5", "9", "2", "--out", &path]), &mut out).unwrap();
        let mut out = Vec::new();
        profile(
            sv(&[
                &path,
                "--variant",
                "general",
                "--device",
                "gtx580",
                "--starts",
                "4",
                "--iters",
                "2",
            ]),
            &mut out,
            &Telemetry::disabled(),
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        let v = serde::Value::parse_json(&text).unwrap();
        assert_eq!(
            v.get("variant").and_then(serde::Value::as_str),
            Some("general")
        );
        assert!(v
            .get("device")
            .and_then(serde::Value::as_str)
            .unwrap()
            .contains("GTX 580"));
        // Unrolled on an ungenerated shape silently resolves to general.
        let mut out = Vec::new();
        profile(
            sv(&[&path, "--starts", "4", "--iters", "2"]),
            &mut out,
            &Telemetry::disabled(),
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        let v = serde::Value::parse_json(&text).unwrap();
        assert_eq!(
            v.get("variant").and_then(serde::Value::as_str),
            Some("general")
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn gpu_instrumented_emits_profile_snapshots() {
        let path = tmp("gputel.txt");
        let mut out = Vec::new();
        random(sv(&["4", "3", "8", "--out", &path]), &mut out).unwrap();
        let tel = Telemetry::enabled();
        let mut out = Vec::new();
        gpu_instrumented(
            sv(&[&path, "--starts", "16", "--devices", "2", "--iters", "3"]),
            &mut out,
            &tel,
        )
        .unwrap();
        let snap = tel.snapshot();
        assert_eq!(snap.counter("gpu.launches"), Some(2));
        assert!(snap.gauge("gpu.gflops").is_some());
        assert_eq!(snap.span("cli.gpu").map(|s| s.count), Some(1));
        assert_eq!(
            snap.events
                .iter()
                .filter(|(n, _)| *n == "gpu.launch")
                .count(),
            2
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn solve_instrumented_counts_work() {
        let path = tmp("solvetel.txt");
        let mut out = Vec::new();
        random(
            sv(&["4", "3", "2", "--out", &path, "--seed", "3"]),
            &mut out,
        )
        .unwrap();
        let tel = Telemetry::enabled();
        let mut out = Vec::new();
        solve_instrumented(sv(&[&path, "--starts", "8"]), &mut out, &tel).unwrap();
        let snap = tel.snapshot();
        assert_eq!(snap.counter("solve.tensors"), Some(2));
        assert!(snap.counter("solve.eigenpairs").unwrap_or(0) >= 2);
        // The batch goes through the backend layer: one batched solve of
        // both tensors, with per-tensor/per-solve progress counters.
        assert_eq!(snap.span("batch.solve").map(|s| s.count), Some(1));
        assert_eq!(snap.counter("batch.tensors_done"), Some(2));
        assert_eq!(snap.counter("batch.solves"), Some(16));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn solve_backend_flag_routes_cpu_and_gpu() {
        let path = tmp("solvebk.txt");
        let mut out = Vec::new();
        random(
            sv(&["4", "3", "3", "--out", &path, "--seed", "5"]),
            &mut out,
        )
        .unwrap();
        // Same workload through a CPU pool and the simulated GPU: both
        // print a comparable one-line backend summary.
        let mut out = Vec::new();
        solve(
            sv(&[&path, "--starts", "8", "--backend", "cpu:4"]),
            &mut out,
        )
        .unwrap();
        let cpu_text = String::from_utf8(out).unwrap();
        assert!(
            cpu_text.contains("backend cpu:4 (general kernel)"),
            "{cpu_text}"
        );
        assert!(cpu_text.contains("3 tensors x 8 starts"), "{cpu_text}");

        let mut out = Vec::new();
        solve(
            sv(&[
                &path,
                "--starts",
                "8",
                "--backend",
                "gpusim",
                "--shift",
                "0",
            ]),
            &mut out,
        )
        .unwrap();
        let gpu_text = String::from_utf8(out).unwrap();
        assert!(
            gpu_text.contains("backend gpusim:tesla-c2050 (general kernel)"),
            "{gpu_text}"
        );
        assert!(gpu_text.contains("3 tensors x 8 starts"), "{gpu_text}");

        // A GPU backend with a non-numeric shift is a clean error.
        let mut out = Vec::new();
        let err = solve(
            sv(&[&path, "--backend", "gpusim", "--shift", "adaptive"]),
            &mut out,
        )
        .unwrap_err();
        assert!(err.contains("CPU-only"), "{err}");
        // A malformed backend spec is a clean error too.
        let mut out = Vec::new();
        let err = solve(sv(&[&path, "--backend", "cpu:"]), &mut out).unwrap_err();
        assert!(err.contains("thread count"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn solve_kernel_batched_runs_lockstep_and_matches_precomputed() {
        let path = tmp("solvebatched.txt");
        let mut out = Vec::new();
        random(
            sv(&["4", "3", "10", "--out", &path, "--seed", "8"]),
            &mut out,
        )
        .unwrap();
        // Fixed shift → the batched strategy takes the lockstep panel
        // driver; output must be identical to the scalar precomputed path.
        let run = |kernel: &str| {
            let mut out = Vec::new();
            solve(
                sv(&[
                    &path, "--starts", "6", "--seed", "3", "--shift", "2", "--kernel", kernel,
                ]),
                &mut out,
            )
            .unwrap();
            String::from_utf8(out).unwrap()
        };
        let batched = run("batched");
        assert!(batched.contains("(batched kernel)"), "{batched}");
        let precomputed = run("precomputed");
        // Same eigenvalues line-for-line, only the kernel label differs.
        let strip = |s: &str| {
            s.lines()
                .filter(|l| !l.contains("kernel"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&batched), strip(&precomputed));
        // An adaptive shift still works: the batched kernels serve the
        // scalar per-tensor fallback path.
        let mut out = Vec::new();
        solve(
            sv(&[&path, "--starts", "4", "--kernel", "batched"]),
            &mut out,
        )
        .unwrap();
        let adaptive = String::from_utf8(out).unwrap();
        assert!(adaptive.contains("(batched kernel)"), "{adaptive}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn solve_solver_flag_routes_geap_and_qrst() {
        let path = tmp("solvesolver.txt");
        let mut out = Vec::new();
        random(
            sv(&["4", "3", "2", "--out", &path, "--seed", "11"]),
            &mut out,
        )
        .unwrap();
        for solver in ["geap", "qrst", "sshopm:1.5"] {
            let mut out = Vec::new();
            solve(sv(&[&path, "--starts", "8", "--solver", solver]), &mut out).unwrap();
            let text = String::from_utf8(out).unwrap();
            assert!(text.contains("tensor 0:"), "{solver}: {text}");
            assert!(text.contains("lambda"), "{solver}: {text}");
        }
        // A malformed solver spec is a clean error naming the grammar.
        let mut out = Vec::new();
        let err = solve(sv(&[&path, "--solver", "newton"]), &mut out).unwrap_err();
        assert!(err.contains("sshopm[:alpha]"), "{err}");
        // Adaptive solvers on GPU backends are clean errors, like --shift.
        let mut out = Vec::new();
        let err = solve(
            sv(&[&path, "--backend", "gpusim", "--solver", "geap"]),
            &mut out,
        )
        .unwrap_err();
        assert!(err.contains("CPU-only"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fibers_solver_flag_accepts_qrst() {
        let path = tmp("fibsolver.txt");
        let mut out = Vec::new();
        phantom(
            sv(&["--out", &path, "--width", "2", "--height", "2"]),
            &mut out,
        )
        .unwrap();
        let mut out = Vec::new();
        fibers(sv(&[&path, "--starts", "16", "--solver", "qrst"]), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("summary: 4 voxels"), "{text}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn report_json_carries_solver_name() {
        let mut out = Vec::new();
        report(
            sv(&[
                "--tensors",
                "4",
                "--starts",
                "4",
                "--iters",
                "3",
                "--solver",
                "geap",
                "--format",
                "json",
            ]),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        let run = telemetry::RunReport::parse_json(&text).unwrap();
        assert_eq!(run.solver, "geap");
    }

    #[test]
    fn solve_pipeline_flag_prints_timeline_summary() {
        let path = tmp("solvepipe.txt");
        let mut out = Vec::new();
        random(
            sv(&["4", "3", "6", "--out", &path, "--seed", "7"]),
            &mut out,
        )
        .unwrap();
        let mut out = Vec::new();
        solve(
            sv(&[
                &path,
                "--starts",
                "8",
                "--backend",
                "gpusim",
                "--shift",
                "0",
                "--pipeline",
                "--streams",
                "2",
            ]),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.contains("backend pipelined:gpusim:tesla-c2050:1x2"),
            "{text}"
        );
        assert!(text.contains("timeline:"), "{text}");
        assert!(text.contains("makespan"), "{text}");
        // The explicit spec form routes the same way without the flag,
        // but the timeline summary stays opt-in via --pipeline.
        let mut out = Vec::new();
        solve(
            sv(&[
                &path,
                "--starts",
                "8",
                "--backend",
                "pipelined",
                "--shift",
                "0",
            ]),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("backend pipelined:gpusim"), "{text}");
        assert!(!text.contains("timeline:"), "{text}");
        // --pipeline on a CPU backend is a clean error.
        let mut out = Vec::new();
        let err = solve(sv(&[&path, "--pipeline"]), &mut out).unwrap_err();
        assert!(err.contains("--pipeline requires"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn solve_cluster_backend_smokes_and_validates_flags() {
        let path = tmp("solvecluster.txt");
        let mut out = Vec::new();
        random(
            sv(&["4", "3", "6", "--out", &path, "--seed", "9"]),
            &mut out,
        )
        .unwrap();
        let mut out = Vec::new();
        solve(
            sv(&[
                &path,
                "--starts",
                "8",
                "--backend",
                "cluster:1:2",
                "--shift",
                "0",
            ]),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.contains("backend cluster:gpusim:tesla-c2050:1x2x1"),
            "{text}"
        );
        // --streams 0 and --chunk-tensors 0 are typed errors naming the
        // flag, for cluster and pipelined backends alike.
        let mut out = Vec::new();
        let err = solve(
            sv(&[
                &path,
                "--backend",
                "cluster:1:2",
                "--shift",
                "0",
                "--streams",
                "0",
            ]),
            &mut out,
        )
        .unwrap_err();
        assert!(err.contains("--streams 0"), "{err}");
        let mut out = Vec::new();
        let err = solve(
            sv(&[
                &path,
                "--backend",
                "cluster:1:2",
                "--shift",
                "0",
                "--chunk-tensors",
                "0",
            ]),
            &mut out,
        )
        .unwrap_err();
        assert!(err.contains("--chunk-tensors 0"), "{err}");
        let mut out = Vec::new();
        let err = solve(
            sv(&[
                &path,
                "--backend",
                "gpusim",
                "--shift",
                "0",
                "--pipeline",
                "--streams",
                "0",
            ]),
            &mut out,
        )
        .unwrap_err();
        assert!(err.contains("--streams 0"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn profile_pipeline_appends_timeline_summary() {
        let mut out = Vec::new();
        profile(
            sv(&[
                "--tensors",
                "600",
                "--starts",
                "8",
                "--iters",
                "3",
                "--pipeline",
                "--streams",
                "2",
            ]),
            &mut out,
            &Telemetry::disabled(),
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        // Snapshot JSON first, then the one-line timeline summary.
        let (json, rest) = text.split_at(text.find("timeline:").expect(&text));
        assert!(serde::Value::parse_json(json).is_ok(), "{json}");
        assert!(rest.contains("makespan"), "{rest}");
        assert!(rest.contains("overlap saves"), "{rest}");
    }

    #[test]
    fn report_prom_output_is_valid_exposition() {
        let mut out = Vec::new();
        report(
            sv(&[
                "--tensors",
                "8",
                "--starts",
                "4",
                "--iters",
                "2",
                "--format",
                "prom",
            ]),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        // Every line is a HELP/TYPE comment or `name{labels} value` with a
        // parseable value and a sanitized metric name.
        let mut samples = 0;
        for line in text.lines().filter(|l| !l.is_empty()) {
            if let Some(comment) = line.strip_prefix('#') {
                assert!(
                    comment.starts_with(" HELP ") || comment.starts_with(" TYPE "),
                    "{line}"
                );
                continue;
            }
            let (name_part, value) = line.rsplit_once(' ').unwrap_or_else(|| panic!("{line}"));
            assert!(
                value.parse::<f64>().is_ok() || value == "+Inf",
                "bad sample value in {line:?}"
            );
            let metric = name_part.split('{').next().unwrap();
            assert!(
                metric
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_'),
                "unsanitized metric name in {line:?}"
            );
            samples += 1;
        }
        assert!(samples > 0, "{text}");
        // The chunk-latency histogram family is present and cumulative.
        assert!(text.contains("tensor_eig_latency_seconds_bucket"), "{text}");
        assert!(text.contains("latency=\"chunk\""), "{text}");
        assert!(text.contains("le=\"+Inf\""), "{text}");
        assert!(text.contains("tensor_eig_latency_seconds_count"), "{text}");
    }

    #[test]
    fn report_json_goes_to_file_with_confirmation() {
        let path = tmp("runreport.json");
        let mut out = Vec::new();
        report(
            sv(&[
                "--tensors",
                "6",
                "--starts",
                "4",
                "--iters",
                "2",
                "--format",
                "json",
                "--out",
                &path,
            ]),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("wrote run report (json)"), "{text}");
        let json = std::fs::read_to_string(&path).unwrap();
        let run = telemetry::RunReport::parse_json(&json).unwrap();
        assert_eq!(run.backend, "cpu");
        assert_eq!(run.workload.num_tensors, 6);
        assert!(run.latency("chunk").unwrap().p50() > 0.0);
        // Bad formats are clean errors.
        let mut out = Vec::new();
        let err = report(sv(&["--format", "xml"]), &mut out).unwrap_err();
        assert!(err.contains("invalid report format"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn report_pipeline_backend_carries_stream_latencies() {
        let mut out = Vec::new();
        report(
            sv(&[
                "--tensors",
                "8",
                "--starts",
                "4",
                "--iters",
                "2",
                "--backend",
                "gpusim",
                "--pipeline",
                "--format",
                "json",
            ]),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        let run = telemetry::RunReport::parse_json(&text).unwrap();
        assert!(
            run.backend.starts_with("pipelined:gpusim"),
            "{}",
            run.backend
        );
        assert!(run.latency("chunk").is_some());
        assert!(run.latency("stream").is_some());
        assert!(run.latency("device").is_some());
    }

    #[test]
    fn solve_report_out_writes_unified_report() {
        let path = tmp("solverpt.txt");
        let rpt = tmp("solverpt.json");
        let mut out = Vec::new();
        random(
            sv(&["4", "3", "3", "--out", &path, "--seed", "2"]),
            &mut out,
        )
        .unwrap();
        let mut out = Vec::new();
        solve(
            sv(&[
                &path,
                "--starts",
                "4",
                "--report-out",
                &rpt,
                "--report-format",
                "json",
            ]),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("wrote run report (json)"), "{text}");
        let run =
            telemetry::RunReport::parse_json(&std::fs::read_to_string(&rpt).unwrap()).unwrap();
        assert_eq!(run.workload.num_tensors, 3);
        assert_eq!(run.workload.num_starts, 4);
        assert!(run.latency("chunk").unwrap().p99() > 0.0);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&rpt).ok();
    }

    #[test]
    fn fibers_report_format_appends_text_report() {
        let path = tmp("fibrpt.txt");
        let mut out = Vec::new();
        phantom(
            sv(&["--out", &path, "--width", "2", "--height", "2"]),
            &mut out,
        )
        .unwrap();
        let mut out = Vec::new();
        fibers(
            sv(&[&path, "--starts", "16", "--report-format", "text"]),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("summary: 4 voxels"), "{text}");
        assert!(text.contains("latencies (seconds):"), "{text}");
        // The report's workload accounting must reflect the actual batch
        // (a regression here means the results were drained before the
        // report was rendered).
        assert!(
            text.contains("backend cpu (general kernel): 4 tensors x 16 starts"),
            "{text}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn run_dispatches_and_reports_unknown() {
        let mut out = Vec::new();
        assert!(crate::run(sv(&["help"]), &mut out).is_ok());
        let err = crate::run(sv(&["frobnicate"]), &mut out).unwrap_err();
        assert!(err.contains("unknown command"));
        let err = crate::run(vec![], &mut out).unwrap_err();
        assert!(err.contains("commands:"));
    }

    #[test]
    fn solve_accepts_tape_kernel() {
        let path = tmp("tape.txt");
        let mut out = Vec::new();
        random(sv(&["5", "4", "2", "--out", &path]), &mut out).unwrap();
        let mut out = Vec::new();
        solve(
            sv(&[&path, "--kernel", "tape", "--starts", "4", "--shift", "2.0"]),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("tensor 0:"), "{text}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn cache_stats_and_clear_round_trip() {
        // A dedicated cache dir keeps this test independent of any other
        // test that touches the process-wide registry.
        let dir = tmp("cache-dir");
        std::fs::create_dir_all(&dir).unwrap();
        let tensors = tmp("cache-tensors.txt");
        let mut out = Vec::new();
        random(sv(&["4", "4", "2", "--out", &tensors]), &mut out).unwrap();
        let mut out = Vec::new();
        solve(
            sv(&[
                &tensors,
                "--kernel",
                "tape",
                "--kernel-cache-dir",
                &dir,
                "--starts",
                "4",
                "--shift",
                "2.0",
            ]),
            &mut out,
        )
        .unwrap();

        // stats sees the persisted artifact for (4,4) f64.
        let mut out = Vec::new();
        cache(sv(&["stats", "--kernel-cache-dir", &dir]), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("kernel registry (this process):"), "{text}");
        assert!(text.contains("(4,4) f64"), "{text}");
        assert!(text.contains("[ok]"), "{text}");

        // clear removes it; a second stats shows an empty directory.
        let mut out = Vec::new();
        cache(sv(&["clear", "--kernel-cache-dir", &dir]), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("removed"), "{text}");
        let mut out = Vec::new();
        cache(sv(&["stats", "--kernel-cache-dir", &dir]), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("(0 entries)"), "{text}");

        let mut out = Vec::new();
        let err = cache(sv(&["frobnicate"]), &mut out).unwrap_err();
        assert!(err.contains("expected stats or clear"), "{err}");

        std::fs::remove_file(&tensors).ok();
        std::fs::remove_dir_all(&dir).ok();
    }
}
