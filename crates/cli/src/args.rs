//! Minimal argument parsing: positionals plus `--key value` / `--flag`
//! options, hand-rolled so the workspace stays within its dependency
//! policy. Unknown options are errors; every command documents its own
//! option set.

use std::collections::BTreeMap;

/// Parsed command-line arguments: positional values in order plus a map of
/// `--key` options (valueless flags map to an empty string).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Args {
    /// Positional arguments in order of appearance.
    pub positional: Vec<String>,
    /// `--key value` pairs; bare flags store `""`.
    pub options: BTreeMap<String, String>,
}

/// A parse error with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parse raw arguments against the sets of options that take a value
    /// and boolean flags; anything starting with `--` outside both sets is
    /// rejected.
    pub fn parse<I: IntoIterator<Item = String>>(
        raw: I,
        value_opts: &[&str],
        flag_opts: &[&str],
    ) -> Result<Args, ArgError> {
        let mut args = Args::default();
        let mut iter = raw.into_iter();
        while let Some(tok) = iter.next() {
            if let Some(name) = tok.strip_prefix("--") {
                if flag_opts.contains(&name) {
                    args.options.insert(name.to_string(), String::new());
                } else if value_opts.contains(&name) {
                    let value = iter
                        .next()
                        .ok_or_else(|| ArgError(format!("--{name} requires a value")))?;
                    args.options.insert(name.to_string(), value);
                } else {
                    return Err(ArgError(format!("unknown option --{name}")));
                }
            } else {
                args.positional.push(tok);
            }
        }
        Ok(args)
    }

    /// Positional argument `i`, or an error naming it.
    pub fn positional(&self, i: usize, name: &str) -> Result<&str, ArgError> {
        self.positional
            .get(i)
            .map(|s| s.as_str())
            .ok_or_else(|| ArgError(format!("missing required argument <{name}>")))
    }

    /// Option value as a string, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(|s| s.as_str())
    }

    /// True if a flag was passed.
    pub fn flag(&self, name: &str) -> bool {
        self.options.contains_key(name)
    }

    /// Parse an option into any `FromStr` type, with a default.
    pub fn get_parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("invalid value for --{name}: {v:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn positionals_and_options_mix() {
        let a = Args::parse(
            sv(&["input.txt", "--seed", "42", "--refine", "out.txt"]),
            &["seed"],
            &["refine"],
        )
        .unwrap();
        assert_eq!(a.positional, vec!["input.txt", "out.txt"]);
        assert_eq!(a.get("seed"), Some("42"));
        assert!(a.flag("refine"));
        assert!(!a.flag("verbose"));
    }

    #[test]
    fn unknown_option_rejected() {
        let e = Args::parse(sv(&["--bogus"]), &[], &[]).unwrap_err();
        assert!(e.to_string().contains("bogus"));
    }

    #[test]
    fn missing_value_rejected() {
        let e = Args::parse(sv(&["--seed"]), &["seed"], &[]).unwrap_err();
        assert!(e.to_string().contains("requires a value"));
    }

    #[test]
    fn parsed_values_with_defaults() {
        let a = Args::parse(sv(&["--count", "7"]), &["count"], &[]).unwrap();
        assert_eq!(a.get_parsed("count", 1usize).unwrap(), 7);
        assert_eq!(a.get_parsed("missing", 3usize).unwrap(), 3);
        let bad = Args::parse(sv(&["--count", "x"]), &["count"], &[]).unwrap();
        assert!(bad.get_parsed::<usize>("count", 1).is_err());
    }

    #[test]
    fn missing_positional_named_in_error() {
        let a = Args::parse(sv(&[]), &[], &[]).unwrap();
        let e = a.positional(0, "input").unwrap_err();
        assert!(e.to_string().contains("<input>"));
    }
}
