//! The `tensor-eig` binary: thin shell around [`cli::run`].

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout();
    match cli::run(argv, &mut stdout) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
