//! # tensor-eig-cli — command-line front end
//!
//! Subcommands (see [`run`]):
//!
//! * `random <m> <n> <count> --out FILE [--seed S]` — generate tensors;
//! * `info <file>` — shape/count summary of a tensor file;
//! * `solve <file> [--backend B] [--kernel K] [--solver V] [--starts N]
//!   [--shift convex|concave|adaptive|FLOAT] [--tol T] [--refine]` —
//!   eigenpairs per tensor, batched through any execution backend;
//! * `phantom --out FILE [--width W --height H --noise X --seed S]` —
//!   DW-MRI phantom tensors;
//! * `fibers <file> [--backend B] [--kernel K] [--solver V] [--starts N]
//!   [--max-fibers K]` — fiber directions;
//! * `gpu <file> [--starts N] [--variant general|unrolled] [--devices K]
//!   [--iters I]` — batched solve on the simulated GPU;
//! * `profile [file]` — run one simulated GPU launch and dump the full
//!   [`gpusim::ProfileSnapshot`] as pretty JSON;
//! * `report [file] [--format text|json|prom] [--out PATH]` — run one
//!   batched solve (synthetic workload without a file) and emit the
//!   unified, schema-versioned [`telemetry::RunReport`]: throughput,
//!   fault/retry/failover rates, and per-chunk/per-stream/per-device
//!   latency quantiles. `solve` and `fibers` accept `--report-out PATH`
//!   and `--report-format F` to emit the same report alongside their
//!   normal output;
//! * `cache <stats|clear> [--kernel-cache-dir DIR]` — inspect or empty
//!   the kernel registry's on-disk artifact cache of generated tapes.
//!
//! `--backend` takes a [`backend::BackendSpec`] string — `cpu` (default,
//! sequential), `cpu:8` / `cpu:all` (rayon pool), `gpusim` (one simulated
//! Tesla C2050), `gpusim:gtx-580`, `gpusim:tesla-c2050:4` (multi-GPU), or
//! `pipelined[:device][:count]` (stream-based double buffering; also
//! reachable via `--pipeline` on a gpusim spec, with `--streams K`
//! streams per device) — and `--kernel` a [`backend::KernelStrategy`]
//! (`general|blocked|precomputed|unrolled|batched|tape`, with automatic
//! shape fallback; `batched` runs fixed-shift SS-HOPM batches in lockstep
//! panels over the tensor arena; `tape` replays runtime-generated kernel
//! tapes for arbitrary shapes, persisted via `--kernel-cache-dir DIR`). Every batched solve runs through the same
//! [`backend::SolveBackend`] trait, so CPU and simulated-GPU runs print
//! directly comparable summaries. The simulated GPU supports only fixed
//! numeric shifts. `--solver` takes a [`sshopm::SolverSpec`] string —
//! `sshopm` (default), `sshopm:ALPHA` (pinned fixed shift), `geap`
//! (adaptive projected-Hessian shift), or `qrst` (orthogonal-similarity
//! QR iteration); `geap`/`qrst` are CPU-only.
//!
//! Global options, accepted before or after the subcommand:
//!
//! * `--verbose` — print a telemetry summary (spans, counters, histograms)
//!   after the command finishes;
//! * `--quiet` — suppress normal command output (errors still reach
//!   stderr);
//! * `--metrics-out PATH` — stream every telemetry event to `PATH` as JSON
//!   lines;
//! * `--trace-out PATH` — write a chrome://tracing-compatible trace JSON
//!   to `PATH` when the command finishes.
//!
//! Any of `--verbose`, `--metrics-out`, or `--trace-out` enables the
//! telemetry pipeline; without them instrumentation is inert.
//!
//! File format: the plain-text format of [`symtensor::io`].

#![deny(missing_docs)]

pub mod args;
pub mod commands;

use std::io::Write;
use telemetry::{JsonLinesSink, Telemetry};

/// Global options recognized anywhere on the command line, stripped
/// before subcommand dispatch.
#[derive(Debug, Default, Clone)]
pub struct GlobalOpts {
    /// Print a telemetry summary after the command.
    pub verbose: bool,
    /// Suppress normal command output.
    pub quiet: bool,
    /// Stream telemetry events to this path as JSON lines.
    pub metrics_out: Option<String>,
    /// Write a chrome://tracing trace JSON to this path at exit.
    pub trace_out: Option<String>,
}

impl GlobalOpts {
    /// Split `argv` into the global options and the remaining tokens
    /// (subcommand plus its own arguments, order preserved).
    pub fn extract(argv: Vec<String>) -> Result<(GlobalOpts, Vec<String>), String> {
        let mut globals = GlobalOpts::default();
        let mut rest = Vec::with_capacity(argv.len());
        let mut it = argv.into_iter();
        while let Some(tok) = it.next() {
            match tok.as_str() {
                "--verbose" => globals.verbose = true,
                "--quiet" => globals.quiet = true,
                "--metrics-out" | "--trace-out" => {
                    let value = it
                        .next()
                        .ok_or_else(|| format!("{tok} requires a PATH value"))?;
                    if tok == "--metrics-out" {
                        globals.metrics_out = Some(value);
                    } else {
                        globals.trace_out = Some(value);
                    }
                }
                _ => rest.push(tok),
            }
        }
        if globals.verbose && globals.quiet {
            return Err("--verbose and --quiet are mutually exclusive".into());
        }
        Ok((globals, rest))
    }

    /// Whether any option asks for live instrumentation.
    pub fn wants_telemetry(&self) -> bool {
        self.verbose || self.metrics_out.is_some() || self.trace_out.is_some()
    }

    /// Build the telemetry pipeline these options describe: a JSON-lines
    /// sink when `--metrics-out` is set, plain in-memory aggregation for
    /// `--verbose`/`--trace-out`, and the inert handle otherwise.
    pub fn telemetry(&self) -> Result<Telemetry, String> {
        match &self.metrics_out {
            Some(path) => {
                let sink = JsonLinesSink::create(std::path::Path::new(path))
                    .map_err(|e| format!("cannot create {path}: {e}"))?;
                Ok(Telemetry::with_sink(Box::new(sink)))
            }
            None if self.wants_telemetry() => Ok(Telemetry::enabled()),
            None => Ok(Telemetry::disabled()),
        }
    }
}

/// Top-level dispatch. `argv` excludes the program name. Output goes to
/// `out` so tests can capture it.
pub fn run(argv: Vec<String>, out: &mut dyn Write) -> Result<(), String> {
    let (globals, argv) = GlobalOpts::extract(argv)?;
    let telemetry = globals.telemetry()?;
    let Some((cmd, rest)) = argv.split_first() else {
        return Err(usage());
    };
    let rest = rest.to_vec();
    let mut devnull = std::io::sink();
    let cmd_out: &mut dyn Write = if globals.quiet { &mut devnull } else { out };
    let result: Result<(), String> = match cmd.as_str() {
        "random" => commands::random(rest, cmd_out),
        "info" => commands::info(rest, cmd_out),
        "solve" => commands::solve_instrumented(rest, cmd_out, &telemetry),
        "phantom" => commands::phantom(rest, cmd_out),
        "fibers" => commands::fibers(rest, cmd_out),
        "decompose" => commands::decompose(rest, cmd_out),
        "tract" => commands::tract(rest, cmd_out),
        "gpu" => commands::gpu_instrumented(rest, cmd_out, &telemetry),
        "profile" => commands::profile(rest, cmd_out, &telemetry),
        "report" => commands::report_instrumented(rest, cmd_out, &telemetry),
        "cache" => commands::cache(rest, cmd_out),
        "help" | "--help" | "-h" => {
            let _ = writeln!(cmd_out, "{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{}", usage())),
    };
    result?;
    finish_telemetry(&globals, &telemetry, out)
}

/// Post-command telemetry drain: trace export, sink flush, verbose
/// summary.
fn finish_telemetry(
    globals: &GlobalOpts,
    telemetry: &Telemetry,
    out: &mut dyn Write,
) -> Result<(), String> {
    if let Some(path) = &globals.trace_out {
        std::fs::write(path, telemetry.chrome_trace_json())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    telemetry.flush();
    if globals.verbose && telemetry.is_enabled() {
        writeln!(out, "\n{}", telemetry.summary()).map_err(|e| e.to_string())?;
    }
    Ok(())
}

/// The usage banner.
pub fn usage() -> String {
    "tensor-eig [global options] <command> [options]\n\
     commands:\n\
     \x20 random <m> <n> <count> --out FILE [--seed S]\n\
     \x20 info <file>\n\
     \x20 solve <file> [--backend B] [--kernel K] [--solver V] [--starts N] [--shift convex|concave|adaptive|FLOAT] [--tol T] [--seed S] [--refine] [--all] [--pipeline] [--streams K]\n\
     \x20 phantom --out FILE [--width W] [--height H] [--noise X] [--seed S]\n\
     \x20 fibers <file> [--backend B] [--kernel K] [--solver V] [--shift ...] [--starts N] [--max-fibers K] [--pipeline] [--streams K]\n\
     \x20 decompose <file> [--terms K] [--starts N] [--tol T]\n\
     \x20 tract <file> --width W [--height H] [--starts N] [--seeds K]\n\
     \x20 gpu <file> [--starts N] [--variant general|unrolled] [--devices K] [--iters I] [--seed S]\n\
     \x20 profile [file] [--tensors T] [--m M] [--n N] [--starts N] [--variant general|unrolled] [--iters I] [--device c1060|c2050|gtx580] [--seed S] [--pipeline] [--streams K]\n\
     \x20 report [file] [--tensors T] [--m M] [--n N] [--starts N] [--iters I] [--backend B] [--kernel K] [--solver V] [--format text|json|prom] [--out PATH] [--seed S]\n\
     \x20 cache <stats|clear> [--kernel-cache-dir DIR]\n\
     \x20 help\n\
     global options:\n\
     \x20 --verbose            print a telemetry summary after the command\n\
     \x20 --quiet              suppress normal output (errors still shown)\n\
     \x20 --metrics-out PATH   stream telemetry events to PATH as JSON lines\n\
     \x20 --trace-out PATH     write a chrome://tracing trace JSON to PATH\n\
     notes:\n\
     \x20 --seed S seeds the deterministic RNG (default 0) wherever random\n\
     \x20 tensors or random starting vectors are drawn.\n\
     \x20 --backend B picks where batched solves run: cpu (default), cpu:K,\n\
     \x20 cpu:all, gpusim, gpusim:<device>[:count] with devices tesla-c2050,\n\
     \x20 tesla-c1060, gtx-580, or pipelined[:device][:count] for stream-based\n\
     \x20 double-buffered execution. gpusim backends need a fixed numeric\n\
     \x20 --shift.\n\
     \x20 --pipeline upgrades a gpusim backend to pipelined (chunked launches\n\
     \x20 whose transfers overlap compute); --streams K sets the streams per\n\
     \x20 device (default 2) and prints the resolved event-timeline summary.\n\
     \x20 --kernel K picks how contractions are computed: general, blocked,\n\
     \x20 precomputed, unrolled (auto-fallback for unavailable shapes),\n\
     \x20 batched (lane-vectorized over the tensor arena; fixed-shift sshopm\n\
     \x20 batches additionally run in lockstep panels), or tape (runtime-\n\
     \x20 generated kernel tapes for arbitrary shapes).\n\
     \x20 --kernel-cache-dir DIR persists generated tapes in a content-\n\
     \x20 addressed artifact cache; cache stats|clear inspects or empties it.\n\
     \x20 --solver V picks the per-tensor eigen-iteration: sshopm (default),\n\
     \x20 sshopm:ALPHA (pinned fixed shift), geap (adaptive projected-Hessian\n\
     \x20 shift), qrst (orthogonal-similarity QR iteration). geap and qrst\n\
     \x20 are CPU-only.\n\
     \x20 report emits the unified run report (throughput, fault rates,\n\
     \x20 p50/p90/p99 latency histograms) as text, JSON, or Prometheus text\n\
     \x20 exposition; solve and fibers take --report-out PATH and\n\
     \x20 --report-format text|json|prom to emit the same report alongside\n\
     \x20 their normal output."
        .to_string()
}

/// Internal command error, stringly typed at the CLI boundary.
#[derive(Debug)]
pub struct CmdError(pub String);

impl<E: std::error::Error> From<E> for CmdError {
    fn from(e: E) -> Self {
        CmdError(e.to_string())
    }
}

impl From<CmdError> for String {
    fn from(e: CmdError) -> String {
        e.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn global_opts_strip_from_anywhere() {
        let (g, rest) = GlobalOpts::extract(sv(&[
            "--verbose",
            "solve",
            "file.txt",
            "--metrics-out",
            "m.jsonl",
            "--starts",
            "4",
        ]))
        .unwrap();
        assert!(g.verbose);
        assert!(!g.quiet);
        assert_eq!(g.metrics_out.as_deref(), Some("m.jsonl"));
        assert_eq!(rest, sv(&["solve", "file.txt", "--starts", "4"]));
    }

    #[test]
    fn global_opts_reject_missing_value_and_conflicts() {
        let err = GlobalOpts::extract(sv(&["gpu", "--trace-out"])).unwrap_err();
        assert!(err.contains("--trace-out requires"), "{err}");
        let err = GlobalOpts::extract(sv(&["--verbose", "--quiet", "help"])).unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
    }

    #[test]
    fn telemetry_disabled_without_flags() {
        let (g, _) = GlobalOpts::extract(sv(&["help"])).unwrap();
        assert!(!g.wants_telemetry());
        assert!(!g.telemetry().unwrap().is_enabled());
        let (g, _) = GlobalOpts::extract(sv(&["--verbose", "help"])).unwrap();
        assert!(g.telemetry().unwrap().is_enabled());
    }

    #[test]
    fn quiet_suppresses_command_output() {
        let mut out = Vec::new();
        run(sv(&["--quiet", "help"]), &mut out).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn run_profile_writes_metrics_and_trace_files() {
        let mut dir = std::env::temp_dir();
        dir.push(format!("tensor-eig-run-test-{}", std::process::id()));
        let metrics = dir.with_extension("metrics.jsonl");
        let trace = dir.with_extension("trace.json");
        let metrics_s = metrics.to_string_lossy().into_owned();
        let trace_s = trace.to_string_lossy().into_owned();

        let mut out = Vec::new();
        run(
            sv(&[
                "--metrics-out",
                &metrics_s,
                "--trace-out",
                &trace_s,
                "profile",
                "--tensors",
                "4",
                "--starts",
                "4",
                "--iters",
                "2",
            ]),
            &mut out,
        )
        .unwrap();
        // The command's own output is the pretty snapshot JSON.
        let text = String::from_utf8(out).unwrap();
        assert!(serde::Value::parse_json(&text).is_ok(), "{text}");

        // The metrics file holds one JSON object per line.
        let lines = std::fs::read_to_string(&metrics).unwrap();
        assert!(!lines.trim().is_empty());
        for line in lines.lines() {
            assert!(serde::Value::parse_json(line).is_ok(), "{line}");
        }
        // The trace file is a chrome://tracing event array with our span.
        let trace_json = std::fs::read_to_string(&trace).unwrap();
        let events = serde::Value::parse_json(&trace_json).unwrap();
        assert!(events
            .as_seq()
            .unwrap()
            .iter()
            .any(|e| e.get("name").and_then(serde::Value::as_str) == Some("cli.profile")));
        std::fs::remove_file(&metrics).ok();
        std::fs::remove_file(&trace).ok();
    }

    #[test]
    fn verbose_appends_summary() {
        let mut out = Vec::new();
        run(
            sv(&[
                "--verbose",
                "profile",
                "--tensors",
                "2",
                "--starts",
                "4",
                "--iters",
                "2",
            ]),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("cli.profile"), "{text}");
        assert!(text.contains("gpu.launches"), "{text}");
    }

    #[test]
    fn usage_documents_globals_and_seed() {
        let u = usage();
        for needle in [
            "--verbose",
            "--quiet",
            "--metrics-out",
            "--trace-out",
            "--seed S",
            "--backend B",
            "--kernel K",
            "--solver V",
            "sshopm:ALPHA",
            "geap",
            "qrst",
            "gpusim:<device>[:count]",
            "pipelined[:device][:count]",
            "--pipeline",
            "--streams K",
            "profile",
            "report [file]",
            "--format text|json|prom",
            "--report-out PATH",
            "--report-format text|json|prom",
            "cache <stats|clear>",
            "--kernel-cache-dir DIR",
            "tape (runtime-",
        ] {
            assert!(u.contains(needle), "usage missing {needle}");
        }
    }
}
