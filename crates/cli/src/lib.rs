//! # tensor-eig-cli — command-line front end
//!
//! Subcommands (see [`run`]):
//!
//! * `random <m> <n> <count> --out FILE [--seed S]` — generate tensors;
//! * `info <file>` — shape/count summary of a tensor file;
//! * `solve <file> [--starts N] [--shift convex|concave|adaptive|FLOAT]
//!   [--tol T] [--refine]` — eigenpairs per tensor;
//! * `phantom --out FILE [--width W --height H --noise X --seed S]` —
//!   DW-MRI phantom tensors;
//! * `fibers <file> [--starts N] [--max-fibers K]` — fiber directions;
//! * `gpu <file> [--starts N] [--variant general|unrolled] [--devices K]
//!   [--iters I]` — batched solve on the simulated GPU.
//!
//! File format: the plain-text format of [`symtensor::io`].

#![deny(missing_docs)]

pub mod args;
pub mod commands;

use std::io::Write;

/// Top-level dispatch. `argv` excludes the program name. Output goes to
/// `out` so tests can capture it.
pub fn run(argv: Vec<String>, out: &mut dyn Write) -> Result<(), String> {
    let Some((cmd, rest)) = argv.split_first() else {
        return Err(usage());
    };
    let rest = rest.to_vec();
    let result: Result<(), String> = match cmd.as_str() {
        "random" => commands::random(rest, out),
        "info" => commands::info(rest, out),
        "solve" => commands::solve(rest, out),
        "phantom" => commands::phantom(rest, out),
        "fibers" => commands::fibers(rest, out),
        "decompose" => commands::decompose(rest, out),
        "tract" => commands::tract(rest, out),
        "gpu" => commands::gpu(rest, out),
        "help" | "--help" | "-h" => {
            let _ = writeln!(out, "{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{}", usage())),
    };
    result
}

/// The usage banner.
pub fn usage() -> String {
    "tensor-eig <command> [options]\n\
     commands:\n\
     \x20 random <m> <n> <count> --out FILE [--seed S]\n\
     \x20 info <file>\n\
     \x20 solve <file> [--starts N] [--shift convex|concave|adaptive|FLOAT] [--tol T] [--refine] [--all]\n\
     \x20 phantom --out FILE [--width W] [--height H] [--noise X] [--seed S]\n\
     \x20 fibers <file> [--starts N] [--max-fibers K]\n\
     \x20 decompose <file> [--terms K] [--starts N] [--tol T]\n\
     \x20 tract <file> --width W [--height H] [--starts N] [--seeds K]\n\
     \x20 gpu <file> [--starts N] [--variant general|unrolled] [--devices K] [--iters I]\n\
     \x20 help"
        .to_string()
}

/// Internal command error, stringly typed at the CLI boundary.
#[derive(Debug)]
pub struct CmdError(pub String);

impl<E: std::error::Error> From<E> for CmdError {
    fn from(e: E) -> Self {
        CmdError(e.to_string())
    }
}

impl From<CmdError> for String {
    fn from(e: CmdError) -> String {
        e.0
    }
}

