//! GEAP: the generalized eigenproblem adaptive power method of Kolda &
//! Mayo, with the shift re-chosen every iteration from the **projected**
//! Hessian spectrum.
//!
//! Where [`Shift::Adaptive`](crate::Shift) looks at the full Hessian
//! `H(x) = m(m−1)·A·x^{m−2}`, GEAP projects it onto the tangent space of
//! the unit sphere at the current iterate first —
//! `C(x) = P_x·H(x)·P_x` with `P_x = I − x·xᵀ` — and drops the radial
//! eigenvalue, because curvature along `x` itself is irrelevant to the
//! constrained ascent. The per-iteration shift
//!
//! ```text
//! α_k = max(0, (τ − λ_min^tangent(C(x_k))) / m)
//! ```
//!
//! is exactly enough convexity at `x_k` (plus the margin `τ`), so λ is
//! monotonically nondecreasing like the convex fixed shift but without
//! paying the global worst-case bound `(m−1)·‖A‖_F` — which is what
//! makes GEAP converge in fewer iterations, and converge at crossing
//! DW-MRI voxels where the unshifted S-HOPM oscillates.

use crate::shift::{sufficient_shift, SHIFT_MARGIN};
use crate::solver::{Eigenpair, IterationObserver, IterationPolicy, IterationUpdate, NoopObserver};
use crate::traits::Solver;
use linalg::{Matrix, SymmetricEigen};
use symtensor::kernels::{axm2_matrix, GeneralKernels, TensorKernels};
use symtensor::scalar::{norm2, normalize};
use symtensor::{Scalar, SymTensorRef};

/// The adaptive-shift GEAP solver (maximization variant): a convexity
/// margin `τ` plus an iteration policy.
#[derive(Debug, Clone, Copy)]
pub struct Geap {
    tau: f64,
    policy: IterationPolicy,
}

impl Default for Geap {
    fn default() -> Self {
        Self::new()
    }
}

impl Geap {
    /// Create a GEAP solver with the default margin ([`SHIFT_MARGIN`])
    /// and convergence policy (`tol = 1e-10`, `max_iters = 1000`).
    pub fn new() -> Self {
        Self {
            tau: SHIFT_MARGIN,
            policy: IterationPolicy::default(),
        }
    }

    /// Replace the convexity margin `τ`.
    pub fn with_margin(mut self, tau: f64) -> Self {
        self.tau = tau;
        self
    }

    /// Replace the convergence tolerance (keeps the iteration cap).
    pub fn with_tolerance(mut self, tol: f64) -> Self {
        if let IterationPolicy::Converge { max_iters, .. } = self.policy {
            self.policy = IterationPolicy::Converge { tol, max_iters };
        }
        self
    }

    /// Replace the iteration cap (keeps the tolerance).
    pub fn with_max_iters(mut self, max_iters: usize) -> Self {
        if let IterationPolicy::Converge { tol, .. } = self.policy {
            self.policy = IterationPolicy::Converge { tol, max_iters };
        }
        self
    }

    /// Replace the whole iteration policy.
    pub fn with_policy(mut self, policy: IterationPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The convexity margin `τ`.
    pub fn margin(&self) -> f64 {
        self.tau
    }

    /// Run GEAP from `x0` with the default on-the-fly kernels.
    ///
    /// # Panics
    /// Panics if `x0.len() != a.dim()` or `x0` is the zero vector.
    pub fn solve<'a, S: Scalar>(
        &self,
        a: impl Into<SymTensorRef<'a, S>>,
        x0: &[S],
    ) -> Eigenpair<S> {
        self.solve_one(
            &GeneralKernels,
            a.into(),
            x0,
            &mut NoopObserver,
            &mut Vec::new(),
        )
    }

    /// The GEAP shift at the unit iterate `x`: `max(0, (τ − λ_min)/m)`
    /// over the tangent spectrum of the projected Hessian, falling back
    /// to the global sufficient bound when the spectrum is unavailable
    /// (eigen-iteration failure on degenerate data).
    fn shift_at<S: Scalar>(&self, a: SymTensorRef<'_, S>, x: &[S]) -> f64 {
        let m = a.order() as f64;
        match tangent_hessian_min(a, x) {
            Some(lambda_min) => ((self.tau - lambda_min) / m).max(0.0),
            // No tangent space (n = 1): the constrained problem is
            // trivially convex.
            None if a.dim() == 1 => 0.0,
            None => sufficient_shift(a) + self.tau,
        }
    }
}

/// Smallest tangent eigenvalue of the projected Hessian
/// `P·(m(m−1)·A·x^{m−2})·P`, with the radial (parallel-to-`x`)
/// eigenvalue dropped. `None` when there is no tangent space (`n = 1`),
/// no Hessian (`m < 2`), or the eigen-iteration fails.
fn tangent_hessian_min<S: Scalar>(a: SymTensorRef<'_, S>, x: &[S]) -> Option<f64> {
    let n = a.dim();
    if n < 2 || a.order() < 2 {
        return None;
    }
    let m = a.order() as f64;
    let axm2 = axm2_matrix(a, x).ok()?;
    let scale = m * (m - 1.0);
    let h = Matrix::from_fn(n, n, |i, j| scale * axm2[i * n + j].to_f64());
    let xf: Vec<f64> = x.iter().map(|v| v.to_f64()).collect();
    let p = Matrix::from_fn(n, n, |i, j| {
        let delta = if i == j { 1.0 } else { 0.0 };
        delta - xf[i] * xf[j]
    });
    let c = p.matmul(&h).ok()?.matmul(&p).ok()?;
    let eig = SymmetricEigen::new(&c).ok()?;

    // C always carries one (numerically) zero eigenvalue along x itself;
    // identify the eigenvector most parallel to x and skip it.
    let mut radial_col = 0;
    let mut best_dot = -1.0;
    for col in 0..n {
        let dot: f64 = (0..n)
            .map(|r| eig.eigenvectors[(r, col)] * xf[r])
            .sum::<f64>()
            .abs();
        if dot > best_dot {
            best_dot = dot;
            radial_col = col;
        }
    }
    let mut min: Option<f64> = None;
    for col in 0..n {
        if col == radial_col {
            continue;
        }
        let v = eig.eigenvalues[col];
        min = Some(match min {
            Some(cur) if cur <= v => cur,
            _ => v,
        });
    }
    min
}

impl<S: Scalar> Solver<S> for Geap {
    fn name(&self) -> &'static str {
        "geap"
    }

    fn policy(&self) -> IterationPolicy {
        self.policy
    }

    fn fixed_shift(&self) -> Option<f64> {
        None
    }

    fn solve_one(
        &self,
        kernels: &dyn TensorKernels<S>,
        a: SymTensorRef<'_, S>,
        x0: &[S],
        observer: &mut dyn IterationObserver<S>,
        scratch: &mut Vec<S>,
    ) -> Eigenpair<S> {
        let n = a.dim();
        let poisoned = |x: Vec<S>, alpha: f64| Eigenpair {
            lambda: S::from_f64(f64::NAN),
            x,
            iterations: 0,
            converged: false,
            alpha,
        };
        if x0.len() != n {
            return poisoned(vec![S::ZERO; n], 0.0);
        }
        let mut x = x0.to_vec();
        if normalize(&mut x) == S::ZERO {
            return poisoned(x, 0.0);
        }

        let (tol, max_iters) = match self.policy {
            IterationPolicy::Converge { tol, max_iters } => (tol, max_iters),
            IterationPolicy::Fixed(k) => (0.0, k),
        };
        let converge_mode = matches!(self.policy, IterationPolicy::Converge { .. });

        let mut lambda = match kernels.axm(a, &x) {
            Ok(v) => v,
            Err(_) => return poisoned(x, 0.0),
        };
        let mut alpha = self.shift_at(a, &x);
        observer.observe(&IterationUpdate {
            k: 0,
            lambda: lambda.to_f64(),
            alpha,
            x: &x,
        });
        scratch.clear();
        scratch.resize(n, S::ZERO);
        let y = scratch;
        let mut cand = vec![S::ZERO; n];
        let mut iterations = 0;
        let mut converged = false;

        'iterate: for _ in 0..max_iters {
            // x̂ ← A x^{m-1} + α x with the per-iterate GEAP shift
            // (always ≥ 0: GEAP here is the maximization variant). The
            // projected spectrum deliberately ignores radial curvature,
            // which is concave when λ < 0 — so safeguard the step: accept
            // only a nondecreasing λ, otherwise escalate α (first by the
            // radial bound −λ, then the global sufficient bound, which
            // restores the fixed-shift monotonicity guarantee).
            let mut attempt = 0usize;
            let new_lambda = loop {
                if kernels.axm1(a, &x, y).is_err() {
                    return poisoned(x, alpha);
                }
                let alpha_s = S::from_f64(alpha);
                for (yi, &xi) in y.iter_mut().zip(x.iter()) {
                    *yi += alpha_s * xi;
                }
                let nrm = norm2(y);
                if nrm == S::ZERO {
                    // Degenerate: x already solves the shifted fixed point.
                    iterations += 1;
                    converged = converge_mode;
                    break 'iterate;
                }
                for (ci, &yi) in cand.iter_mut().zip(y.iter()) {
                    *ci = yi / nrm;
                }
                let nl = match kernels.axm(a, &cand) {
                    Ok(v) => v,
                    Err(_) => return poisoned(x, alpha),
                };
                let slack = 1e-12 * lambda.to_f64().abs().max(1.0);
                if attempt >= 2 || nl.to_f64() >= lambda.to_f64() - slack {
                    break nl;
                }
                attempt += 1;
                alpha = if attempt == 1 {
                    alpha.max(self.tau - lambda.to_f64())
                } else {
                    sufficient_shift(a) + self.tau
                };
            };
            x.copy_from_slice(&cand);
            iterations += 1;
            observer.observe(&IterationUpdate {
                k: iterations,
                lambda: new_lambda.to_f64(),
                alpha,
                x: &x,
            });
            if converge_mode && (new_lambda - lambda).abs().to_f64() <= tol {
                lambda = new_lambda;
                converged = true;
                break;
            }
            lambda = new_lambda;
            alpha = self.shift_at(a, &x);
        }

        Eigenpair {
            lambda,
            x,
            iterations,
            converged: converged || !converge_mode,
            alpha,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::{classify, Stability};
    use crate::shift::Shift;
    use crate::solver::SsHopm;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use symtensor::SymTensor;

    fn random_tensor(m: usize, n: usize, seed: u64) -> SymTensor<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        SymTensor::random(m, n, &mut rng)
    }

    #[test]
    fn lambda_is_monotone_nondecreasing_in_the_convex_case() {
        // The GEAP property test: with α_k from the projected Hessian
        // (maximization variant, α_k ≥ 0), the eigenvalue sequence is
        // nondecreasing — the adaptive analogue of the Kolda–Mayo
        // fixed-shift monotonicity theorem.
        for seed in 0..12u64 {
            let a = random_tensor(4, 3, seed);
            let solver = Geap::new().with_tolerance(1e-13);
            let mut trace = Vec::new();
            let pair = solver.solve_one(
                &GeneralKernels,
                a.view(),
                &[0.48, -0.62, 0.62],
                &mut |u: &IterationUpdate<'_, f64>| trace.push(u.lambda),
                &mut Vec::new(),
            );
            assert!(pair.converged, "seed {seed}");
            for w in trace.windows(2) {
                assert!(
                    w[1] >= w[0] - 1e-9,
                    "seed {seed}: lambda decreased {} -> {}",
                    w[0],
                    w[1]
                );
            }
        }
    }

    #[test]
    fn converged_pairs_satisfy_eigen_equation() {
        for seed in 0..6u64 {
            let a = random_tensor(4, 3, seed);
            let pair = Geap::new()
                .with_tolerance(1e-13)
                .solve(&a, &[0.3, -0.5, 0.8]);
            assert!(pair.converged, "seed {seed}");
            assert!(
                pair.residual(&a) < 1e-5,
                "seed {seed}: residual {}",
                pair.residual(&a)
            );
            let nrm: f64 = pair.x.iter().map(|v| v * v).sum::<f64>().sqrt();
            assert!((nrm - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn geap_lands_on_local_maxima() {
        for seed in 0..8u64 {
            let a = random_tensor(4, 3, seed + 40);
            let pair = Geap::new()
                .with_tolerance(1e-14)
                .solve(&a, &[0.48, -0.62, 0.62]);
            if !pair.converged || pair.residual(&a) > 1e-6 {
                continue;
            }
            let s = classify(&a, pair.lambda, &pair.x, 1e-5);
            assert!(
                s == Stability::NegativeStable || s == Stability::Degenerate,
                "seed {seed}: {s:?}"
            );
        }
    }

    #[test]
    fn geap_needs_no_more_iterations_than_the_fixed_convex_bound() {
        let mut fixed_total = 0usize;
        let mut geap_total = 0usize;
        for seed in 20..30u64 {
            let a = random_tensor(4, 3, seed);
            let x0 = [0.6, -0.7, 0.4];
            let fixed = SsHopm::new(Shift::Convex)
                .with_tolerance(1e-12)
                .solve(&a, &x0);
            let geap = Geap::new().with_tolerance(1e-12).solve(&a, &x0);
            assert!(geap.converged && fixed.converged, "seed {seed}");
            fixed_total += fixed.iterations;
            geap_total += geap.iterations;
        }
        assert!(
            geap_total <= fixed_total,
            "geap {geap_total} vs fixed convex {fixed_total}"
        );
    }

    #[test]
    fn fixed_policy_runs_exact_iteration_count() {
        let a = random_tensor(4, 3, 31);
        let solver = Geap::new().with_policy(IterationPolicy::Fixed(9));
        let pair = solver.solve(&a, &[1.0, 0.0, 0.0]);
        assert_eq!(pair.iterations, 9);
        assert!(pair.converged);
    }

    #[test]
    fn trait_surface_reports_geap() {
        let solver = Geap::new();
        let d: &dyn Solver<f64> = &solver;
        assert_eq!(d.name(), "geap");
        assert_eq!(d.fixed_shift(), None);
        assert_eq!(d.policy(), IterationPolicy::default());
        assert_eq!(Geap::new().with_margin(0.5).margin(), 0.5);
    }

    #[test]
    fn zero_starting_vector_poisons_result() {
        let a = random_tensor(4, 3, 37);
        let pair = Geap::new().solve(&a, &[0.0, 0.0, 0.0]);
        assert!(pair.lambda.is_nan());
        assert!(!pair.converged);
        assert_eq!(pair.iterations, 0);
    }

    #[test]
    fn matrix_case_recovers_dominant_eigenpair() {
        let mut a = SymTensor::<f64>::zeros(2, 2);
        a.set(&[0, 0], 3.0).unwrap();
        a.set(&[1, 1], 1.0).unwrap();
        let pair = Geap::new().with_tolerance(1e-14).solve(&a, &[0.5, 0.5]);
        assert!(pair.converged);
        assert!((pair.lambda - 3.0).abs() < 1e-6);
        assert!(pair.x[0].abs() > 0.999);
    }
}
