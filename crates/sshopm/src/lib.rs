//! # sshopm — the Shifted Symmetric Higher-Order Power Method
//!
//! Implementation of the SS-HOPM algorithm of Kolda & Mayo as presented in
//! Figure 1 of Ballard, Kolda & Plantenga (IPPS 2011), plus everything a
//! real application needs around the bare iteration:
//!
//! * [`solver`] — the core fixed-shift iteration with convergence detection
//!   and iteration tracing;
//! * [`shift`] — shift selection: fixed values, the sufficient convexity
//!   bound `α > (m−1)·‖A‖_F`, and an adaptive per-iteration shift;
//! * [`mod@classify`] — eigenpair classification (local max / local min /
//!   saddle) via the spectrum of the projected Hessian;
//! * [`starts`] — starting-vector generation (the paper's uniform-random
//!   scheme and a deterministic Fibonacci-sphere alternative);
//! * [`mod@multistart`] — many starting vectors with eigenpair deduplication,
//!   for "find all the real eigenpairs you can" workflows;
//! * [`batch`] — the paper's workload shape: many independent small tensors
//!   solved in parallel (rayon stands in for the paper's OpenMP loop);
//! * [`traits`] — the [`Solver`] abstraction every iteration implements,
//!   with [`mod@geap`] (adaptive projected-Hessian shifts) and [`mod@qrst`]
//!   (orthogonal-similarity QR iteration) as alternatives to SS-HOPM,
//!   selected by a [`SolverSpec`] string (`sshopm[:alpha]`, `geap`,
//!   `qrst`).
//!
//! ```
//! use symtensor::SymTensor;
//! use sshopm::{SsHopm, Shift};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let a = SymTensor::<f64>::random(4, 3, &mut rng);
//! let solver = SsHopm::new(Shift::Convex).with_tolerance(1e-12);
//! let x0 = [1.0, 0.0, 0.0];
//! let pair = solver.solve(&a, &x0);
//! assert!(pair.converged);
//! assert!(pair.residual(&a) < 1e-5);
//! ```

#![deny(missing_docs)]

pub mod batch;
pub mod classify;
pub mod decompose;
pub mod geap;
pub mod heig;
pub mod lockstep;
pub mod multistart;
pub mod qrst;
pub mod refine;
pub mod shift;
pub mod solver;
pub mod spec;
pub mod starts;
pub mod traits;

pub use batch::{BatchResult, BatchSolver};
pub use classify::{classify, Stability};
pub use decompose::{best_rank_one, decompose, SymCp};
pub use geap::Geap;
pub use heig::{nqz, HEigenpair};
pub use lockstep::{lockstep_alpha, solve_batch_lockstep};
pub use multistart::{multistart, spectrum_from_pairs, DedupConfig, Spectrum, SpectrumEntry};
pub use qrst::Qrst;
pub use refine::{refine, Refined};
pub use shift::Shift;
pub use solver::{
    Eigenpair, IterationObserver, IterationPolicy, IterationUpdate, NoopObserver, SsHopm,
};
pub use spec::{SolverSpec, SolverSpecError};
pub use traits::Solver;
