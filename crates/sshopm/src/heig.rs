//! H-eigenpairs of nonnegative symmetric tensors: the NQZ power method.
//!
//! The paper (Section II) notes that several definitions of tensor
//! eigenvalues coexist. SS-HOPM computes **Z-eigenpairs**
//! (`A·x^{m−1} = λx`, `‖x‖₂ = 1`); the other widely used definition is the
//! **H-eigenpair** `A·x^{m−1} = λ·x^{[m−1]}` where `x^{[m−1]}` raises each
//! component to the `m−1` power. For irreducible nonnegative tensors the
//! Perron–Frobenius theory carries over: there is a unique positive
//! H-eigenpair with maximal eigenvalue, and the Ng–Qi–Zhou (NQZ) power
//! iteration converges to it while sandwiching the eigenvalue between
//! monotone bounds:
//!
//! ```text
//! y   = A·x_k^{m−1}
//! λ⁻  = min_i  y_i / x_i^{m−1}      λ⁺ = max_i  y_i / x_i^{m−1}
//! x_{k+1} = y^{[1/(m−1)]} / ‖y^{[1/(m−1)]}‖₁
//! ```

use symtensor::kernels::axm1;
use symtensor::{Scalar, SymTensor};

/// A computed H-eigenpair with its final Perron bounds.
#[derive(Debug, Clone)]
pub struct HEigenpair<S> {
    /// The eigenvalue estimate (the geometric midpoint of the bounds).
    pub lambda: f64,
    /// The positive eigenvector, normalized to unit 1-norm.
    pub x: Vec<S>,
    /// Final lower bound `λ⁻ ≤ λ*`.
    pub lower: f64,
    /// Final upper bound `λ* ≤ λ⁺`.
    pub upper: f64,
    /// Iterations performed.
    pub iterations: usize,
    /// True if `λ⁺ − λ⁻` fell below the tolerance.
    pub converged: bool,
}

impl<S: Scalar> HEigenpair<S> {
    /// H-eigenpair residual `‖A·x^{m−1} − λ·x^{[m−1]}‖∞`.
    pub fn residual(&self, a: &SymTensor<S>) -> f64 {
        let n = a.dim();
        let m = a.order();
        let mut y = vec![S::ZERO; n];
        if axm1(a, &self.x, &mut y).is_err() {
            // A mismatched eigenvector has no meaningful residual.
            return f64::INFINITY;
        }
        let mut worst = 0.0f64;
        for (yi, xi) in y.iter().zip(&self.x) {
            let xi = xi.to_f64();
            let d = (yi.to_f64() - self.lambda * xi.powi(m as i32 - 1)).abs();
            worst = worst.max(d);
        }
        worst
    }
}

/// Errors from the NQZ iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HeigError {
    /// The tensor has a negative entry; NQZ requires nonnegativity.
    NegativeEntry,
    /// The iteration produced a zero vector (the tensor is reducible in a
    /// way that starves the iterate); no Perron pair is reachable from the
    /// positive cone.
    Degenerate,
}

impl std::fmt::Display for HeigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HeigError::NegativeEntry => write!(f, "NQZ requires a nonnegative tensor"),
            HeigError::Degenerate => write!(f, "iteration starved (reducible tensor)"),
        }
    }
}

impl std::error::Error for HeigError {}

/// Run the NQZ power method on a nonnegative symmetric tensor.
///
/// Returns the dominant H-eigenpair. Convergence (bounds gap below `tol`
/// relative to the eigenvalue) is guaranteed for irreducible nonnegative
/// tensors; for reducible ones the bounds may stall, reported via
/// `converged = false`.
pub fn nqz<S: Scalar>(
    a: &SymTensor<S>,
    tol: f64,
    max_iters: usize,
) -> Result<HEigenpair<S>, HeigError> {
    if a.values().iter().any(|v| v.to_f64() < 0.0) {
        return Err(HeigError::NegativeEntry);
    }
    let n = a.dim();
    let m = a.order();
    let p = (m - 1) as f64;

    // Strictly positive start (uniform).
    let mut x: Vec<f64> = vec![1.0 / n as f64; n];
    let mut y = vec![S::ZERO; n];
    let mut lower = 0.0f64;
    let mut upper = f64::INFINITY;
    let mut iterations = 0;
    let mut converged = false;

    for _ in 0..max_iters {
        let xs: Vec<S> = x.iter().map(|&v| S::from_f64(v)).collect();
        // The iterate has the tensor's own dimension, so this cannot fail.
        if axm1(a, &xs, &mut y).is_err() {
            return Err(HeigError::Degenerate);
        }
        // Perron bounds from ratios y_i / x_i^{m-1} over positive entries.
        let mut lo = f64::INFINITY;
        let mut hi = 0.0f64;
        for i in 0..n {
            let denom = x[i].powf(p);
            if denom > 0.0 {
                let r = y[i].to_f64() / denom;
                lo = lo.min(r);
                hi = hi.max(r);
            }
        }
        if !lo.is_finite() {
            return Err(HeigError::Degenerate);
        }
        lower = lo.max(lower);
        upper = hi.min(upper);
        iterations += 1;
        if upper - lower <= tol * upper.max(1e-300) {
            converged = true;
            break;
        }
        // Next iterate: componentwise (m-1)-th root, 1-norm normalized.
        let mut next: Vec<f64> = y
            .iter()
            .map(|v| v.to_f64().max(0.0).powf(1.0 / p))
            .collect();
        let sum: f64 = next.iter().sum();
        if sum <= 0.0 {
            return Err(HeigError::Degenerate);
        }
        for v in &mut next {
            *v /= sum;
        }
        x = next;
    }

    let lambda = (lower * upper).sqrt().max(lower);
    Ok(HEigenpair {
        lambda,
        x: x.into_iter().map(S::from_f64).collect(),
        lower,
        upper,
        iterations,
        converged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ones_tensor_has_lambda_n_to_m_minus_1() {
        // A = all-ones: A x^{m-1} = (sum x)^{m-1} per entry; the Perron
        // H-eigenpair is x = uniform, lambda = n^{m-1}.
        for (m, n) in [(3usize, 2usize), (3, 3), (4, 3)] {
            let a = SymTensor::<f64>::from_fn(m, n, |_| 1.0);
            let pair = nqz(&a, 1e-12, 500).unwrap();
            assert!(pair.converged, "[{m},{n}]");
            let want = (n as f64).powi(m as i32 - 1);
            assert!(
                (pair.lambda - want).abs() < 1e-8 * want,
                "[{m},{n}]: {} vs {want}",
                pair.lambda
            );
            // Uniform eigenvector.
            for xi in &pair.x {
                assert!((xi - 1.0 / n as f64).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn matrix_case_matches_perron_eigenvalue() {
        // m=2: H-eigenpairs are ordinary eigenpairs; NQZ is the classical
        // power method on a nonnegative matrix. Compare against Jacobi.
        let mut a = SymTensor::<f64>::zeros(2, 3);
        let entries = [
            ([0usize, 0], 2.0),
            ([0, 1], 1.0),
            ([0, 2], 0.5),
            ([1, 1], 3.0),
            ([1, 2], 0.25),
            ([2, 2], 1.0),
        ];
        for (idx, v) in entries {
            a.set(&idx, v).unwrap();
        }
        let pair = nqz(&a, 1e-12, 1000).unwrap();
        assert!(pair.converged);
        // Dense eigensolve for the reference.
        let mat = linalg::Matrix::from_fn(3, 3, |i, j| a.get(&[i.min(j), i.max(j)]).unwrap());
        let eig = linalg::SymmetricEigen::new(&mat).unwrap();
        assert!(
            (pair.lambda - eig.max()).abs() < 1e-8 * eig.max(),
            "{} vs {}",
            pair.lambda,
            eig.max()
        );
    }

    #[test]
    fn bounds_sandwich_the_eigenvalue() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let a = SymTensor::<f64>::from_fn(3, 4, |_| rng.gen_range(0.01..1.0));
        let pair = nqz(&a, 1e-10, 2000).unwrap();
        assert!(pair.converged);
        assert!(pair.lower <= pair.lambda + 1e-12);
        assert!(pair.lambda <= pair.upper + 1e-12);
        assert!(pair.residual(&a) < 1e-6, "{}", pair.residual(&a));
    }

    #[test]
    fn eigenvector_is_positive_with_unit_1_norm() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(4);
        let a = SymTensor::<f64>::from_fn(4, 3, |_| rng.gen_range(0.1..1.0));
        let pair = nqz(&a, 1e-10, 2000).unwrap();
        assert!(pair.x.iter().all(|&v| v > 0.0));
        let sum: f64 = pair.x.iter().sum();
        assert!((sum - 1.0).abs() < 1e-10);
    }

    #[test]
    fn negative_entries_rejected() {
        let mut a = SymTensor::<f64>::zeros(3, 2);
        a.set(&[0, 0, 1], -0.5).unwrap();
        assert_eq!(nqz(&a, 1e-8, 100).unwrap_err(), HeigError::NegativeEntry);
    }

    #[test]
    fn zero_tensor_has_zero_eigenvalue() {
        // Every positive x satisfies 0·x^{m-1} = 0·x^{[m-1]}: the bounds
        // collapse to zero immediately.
        let a = SymTensor::<f64>::zeros(3, 3);
        let pair = nqz(&a, 1e-8, 100).unwrap();
        assert!(pair.converged);
        assert_eq!(pair.lambda, 0.0);
        assert_eq!(pair.iterations, 1);
    }

    #[test]
    fn reducible_tensor_still_finds_its_perron_pair() {
        // a_{000} = 1 only (reducible): the iterate collapses onto
        // coordinate 0 in one step; the 0/0 ratios of the starved
        // coordinates are skipped by the positivity guard, and the method
        // lands exactly on the true pair (lambda = 1, x = e_0).
        let mut a = SymTensor::<f64>::zeros(3, 3);
        a.set(&[0, 0, 0], 1.0).unwrap();
        let pair = nqz(&a, 1e-10, 50).unwrap();
        assert!(pair.converged);
        assert!((pair.lambda - 1.0).abs() < 1e-12);
        assert!((pair.x[0] - 1.0).abs() < 1e-12);
        assert!(pair.residual(&a) < 1e-12);
    }

    #[test]
    fn h_and_z_eigenvalues_differ_in_general() {
        // For the all-ones m=3, n=2 tensor: H-lambda = 4 (above), while the
        // Z-eigenvalue of the same dominant direction is
        // A x^m at x = (1,1)/sqrt(2): (sum x)^3 = (2/sqrt2)^3 = 2.828...
        let a = SymTensor::<f64>::from_fn(3, 2, |_| 1.0);
        let h = nqz(&a, 1e-12, 500).unwrap();
        let z = crate::solver::SsHopm::new(crate::shift::Shift::Convex)
            .with_tolerance(1e-13)
            .solve(&a, &[0.6, 0.4]);
        assert!((h.lambda - 4.0).abs() < 1e-8);
        assert!((z.lambda - 8.0f64.sqrt()).abs() < 1e-6, "{}", z.lambda);
    }
}
