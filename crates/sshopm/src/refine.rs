//! Newton refinement of tensor eigenpairs.
//!
//! SS-HOPM converges linearly, so an eigenvalue tolerance of `1e-14`
//! typically leaves an eigenvector residual around `1e-7`. A Newton
//! iteration on the square system
//!
//! ```text
//! F(x, λ) = [ A·x^{m−1} − λx ; (xᵀx − 1)/2 ] = 0
//! J(x, λ) = [ (m−1)·A·x^{m−2} − λI , −x ;  xᵀ , 0 ]
//! ```
//!
//! converges quadratically once inside SS-HOPM's basin, polishing the pair
//! to machine precision in one or two steps. (Kolda & Mayo note Newton
//! methods as the natural companion to the power iteration; this module
//! supplies it.)

use crate::solver::Eigenpair;
use linalg::{Lu, Matrix};
use symtensor::kernels::{axm, axm1, axm2_matrix};
use symtensor::scalar::normalize;
use symtensor::{Scalar, SymTensor};

/// Outcome of a refinement run.
#[derive(Debug, Clone)]
pub struct Refined<S> {
    /// The polished eigenpair (normalized eigenvector).
    pub pair: Eigenpair<S>,
    /// Residual `‖A·x^{m−1} − λx‖₂` before refinement.
    pub residual_before: f64,
    /// Residual after refinement.
    pub residual_after: f64,
    /// Newton steps actually taken.
    pub steps: usize,
}

/// Polish an approximate eigenpair with up to `max_steps` Newton steps,
/// stopping early when the residual falls below `tol` or stops improving.
///
/// Refinement happens in `f64` regardless of the tensor's scalar type (the
/// standard mixed-precision approach: iterate fast in f32, polish in f64);
/// the result is converted back to `S`.
///
/// If a Newton step fails (singular Jacobian) or increases the residual,
/// the last good iterate is returned.
pub fn refine<S: Scalar>(
    a: &SymTensor<S>,
    pair: &Eigenpair<S>,
    max_steps: usize,
    tol: f64,
) -> Refined<S> {
    let a64 = a.to_f64();
    let mut x: Vec<f64> = pair.x.iter().map(|v| v.to_f64()).collect();
    normalize(&mut x);
    let mut lambda = pair.lambda.to_f64();

    let residual_before = residual(&a64, lambda, &x);
    let mut best = (x.clone(), lambda, residual_before);
    let mut steps = 0;

    for _ in 0..max_steps {
        if best.2 <= tol {
            break;
        }
        let Some((nx, nl)) = newton_step(&a64, lambda, &x) else {
            break;
        };
        let r = residual(&a64, nl, &nx);
        steps += 1;
        if r < best.2 {
            best = (nx.clone(), nl, r);
            x = nx;
            lambda = nl;
        } else {
            break;
        }
    }

    let (bx, bl, residual_after) = best;
    Refined {
        pair: Eigenpair {
            lambda: S::from_f64(bl),
            x: bx.iter().map(|&v| S::from_f64(v)).collect(),
            iterations: pair.iterations + steps,
            converged: pair.converged || residual_after <= tol,
            alpha: pair.alpha,
        },
        residual_before,
        residual_after,
        steps,
    }
}

/// One Newton step on the bordered system; `None` on a singular Jacobian.
fn newton_step(a: &SymTensor<f64>, lambda: f64, x: &[f64]) -> Option<(Vec<f64>, f64)> {
    let n = a.dim();
    let m = a.order() as f64;

    // F = [A x^{m-1} - lambda x ; (x'x - 1)/2]
    let mut ax = vec![0.0; n];
    axm1(a, x, &mut ax).ok()?;
    let mut f = Vec::with_capacity(n + 1);
    for i in 0..n {
        f.push(ax[i] - lambda * x[i]);
    }
    let norm2: f64 = x.iter().map(|v| v * v).sum();
    f.push((norm2 - 1.0) / 2.0);

    // J = [(m-1) A x^{m-2} - lambda I, -x ; x', 0]
    let h = axm2_matrix(a, x).ok()?;
    let jac = Matrix::from_fn(n + 1, n + 1, |i, j| {
        if i < n && j < n {
            let v = (m - 1.0) * h[i * n + j];
            if i == j {
                v - lambda
            } else {
                v
            }
        } else if i < n {
            -x[i]
        } else if j < n {
            x[j]
        } else {
            0.0
        }
    });

    let rhs: Vec<f64> = f.iter().map(|v| -v).collect();
    // The bordered Jacobian is unsymmetric; LU with partial pivoting is the
    // cheap exact solver for it.
    let delta = Lu::new(&jac).ok()?.solve(&rhs).ok()?;

    let mut nx: Vec<f64> = x.iter().zip(&delta[..n]).map(|(xi, d)| xi + d).collect();
    normalize(&mut nx);
    // Recompute lambda as the Rayleigh quotient of the new iterate — more
    // accurate than lambda + delta[n] and free.
    let nl = axm(a, &nx).ok()?;
    Some((nx, nl))
}

fn residual(a: &SymTensor<f64>, lambda: f64, x: &[f64]) -> f64 {
    let n = a.dim();
    let mut y = vec![0.0; n];
    if axm1(a, x, &mut y).is_err() {
        return f64::INFINITY;
    }
    y.iter()
        .zip(x)
        .map(|(yi, xi)| (yi - lambda * xi).powi(2))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shift::Shift;
    use crate::solver::SsHopm;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_tensor(m: usize, n: usize, seed: u64) -> SymTensor<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        SymTensor::random(m, n, &mut rng)
    }

    #[test]
    fn refinement_reaches_machine_precision() {
        for seed in 0..6u64 {
            let a = random_tensor(4, 3, seed);
            let pair = SsHopm::new(Shift::Convex)
                .with_tolerance(1e-10)
                .solve(&a, &[0.5, 0.5, std::f64::consts::FRAC_1_SQRT_2]);
            let refined = refine(&a, &pair, 5, 1e-13);
            assert!(
                refined.residual_after < 1e-12,
                "seed {seed}: {:e} -> {:e}",
                refined.residual_before,
                refined.residual_after
            );
            assert!(refined.residual_after <= refined.residual_before);
        }
    }

    #[test]
    fn refinement_is_quadratic() {
        // From a residual ~1e-4, one or two Newton steps reach ~1e-10.
        let a = random_tensor(4, 3, 10);
        let rough = SsHopm::new(Shift::Convex)
            .with_tolerance(1e-6)
            .solve(&a, &[0.1, 0.9, 0.42]);
        let refined = refine(&a, &rough, 2, 0.0);
        assert!(refined.steps <= 2);
        assert!(
            refined.residual_after < refined.residual_before.powf(1.5),
            "{:e} -> {:e} in {} steps",
            refined.residual_before,
            refined.residual_after,
            refined.steps
        );
    }

    #[test]
    fn refined_vector_stays_normalized() {
        let a = random_tensor(6, 3, 11);
        let pair = SsHopm::new(Shift::Convex)
            .with_tolerance(1e-8)
            .solve(&a, &[1.0, 1.0, 1.0]);
        let refined = refine(&a, &pair, 4, 1e-13);
        let nrm: f64 = refined.pair.x.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!((nrm - 1.0).abs() < 1e-12);
    }

    #[test]
    fn exact_pair_is_left_alone() {
        // diag(3,1) matrix: (3, e_0) is exact; refinement takes 0 steps.
        let mut a = SymTensor::<f64>::zeros(2, 2);
        a.set(&[0, 0], 3.0).unwrap();
        a.set(&[1, 1], 1.0).unwrap();
        let pair = Eigenpair {
            lambda: 3.0,
            x: vec![1.0, 0.0],
            iterations: 0,
            converged: true,
            alpha: 0.0,
        };
        let refined = refine(&a, &pair, 3, 1e-13);
        assert_eq!(refined.steps, 0);
        assert!(refined.residual_after < 1e-15);
    }

    #[test]
    fn f32_pair_polished_in_f64() {
        let a64 = random_tensor(4, 3, 12);
        let a32 = a64.to_f32();
        let pair32 = SsHopm::new(Shift::Convex)
            .with_tolerance(1e-6)
            .solve(&a32, &[0.5f32, -0.5, std::f32::consts::FRAC_1_SQRT_2]);
        // f32 residual floor is ~1e-6; refinement (computed in f64 on the
        // f32 tensor's values) gets far below it.
        let refined = refine(&a32, &pair32, 4, 1e-12);
        assert!(
            refined.residual_after < 1e-10,
            "{:e}",
            refined.residual_after
        );
    }

    #[test]
    fn odd_order_pairs_refine_too() {
        let a = random_tensor(3, 4, 13);
        let pair = SsHopm::new(Shift::Convex)
            .with_tolerance(1e-8)
            .solve(&a, &[0.5, 0.5, 0.5, 0.5]);
        let refined = refine(&a, &pair, 4, 1e-13);
        assert!(refined.residual_after < 1e-12);
    }

    #[test]
    fn max_steps_zero_reports_without_touching() {
        let a = random_tensor(4, 3, 14);
        let pair = SsHopm::new(Shift::Convex)
            .with_tolerance(1e-8)
            .solve(&a, &[1.0, 0.0, 0.0]);
        let refined = refine(&a, &pair, 0, 0.0);
        assert_eq!(refined.steps, 0);
        assert_eq!(refined.residual_before, refined.residual_after);
    }
}
