//! Greedy symmetric rank-one decomposition by successive deflation.
//!
//! The unshifted symmetric power method (the paper's references \[2\], \[10\])
//! computes the **best symmetric rank-one approximation** of `A`: the
//! eigenpair `(λ*, x*)` with maximal `|λ|` minimizes
//! `‖A − λ·x^{⊗m}‖_F`. Deflating (`A ← A − λ*·x*^{⊗m}`) and repeating
//! yields a greedy symmetric CP decomposition:
//!
//! ```text
//! A ≈ Σ_{r} λ_r · v_r^{⊗m}
//! ```
//!
//! Greedy deflation is exact for **odeco** tensors (orthogonally
//! decomposable, `Σ λᵢ uᵢ^{⊗m}` with orthonormal `uᵢ` — Zhang & Golub) and
//! a useful approximation otherwise; the per-term residual norms report
//! how much of the tensor each term explains.

use crate::multistart::{multistart, DedupConfig};
use crate::shift::Shift;
use crate::solver::SsHopm;
use symtensor::special::from_rank_ones;
use symtensor::{Scalar, SymTensor};

/// One term of a greedy decomposition.
#[derive(Debug, Clone)]
pub struct RankOneTerm<S> {
    /// The weight `λ` (can be negative; for odd order it is normalized
    /// positive by flipping the vector).
    pub weight: S,
    /// The unit vector `v`.
    pub vector: Vec<S>,
    /// Frobenius norm of the residual *after* subtracting this term.
    pub residual_norm: f64,
}

/// The result of [`decompose`].
#[derive(Debug, Clone)]
pub struct SymCp<S> {
    /// Tensor order.
    pub m: usize,
    /// The extracted terms, in extraction order (non-increasing `|λ|` for
    /// odeco inputs).
    pub terms: Vec<RankOneTerm<S>>,
    /// Frobenius norm of the input (for relative-error reporting).
    pub input_norm: f64,
}

impl<S: Scalar> SymCp<S> {
    /// Reconstruct `Σ λ_r v_r^{⊗m}`.
    pub fn reconstruct(&self, n: usize) -> SymTensor<S> {
        if self.terms.is_empty() {
            return SymTensor::zeros(self.m, n);
        }
        let weights: Vec<S> = self.terms.iter().map(|t| t.weight).collect();
        let vectors: Vec<Vec<S>> = self.terms.iter().map(|t| t.vector.clone()).collect();
        from_rank_ones(self.m, &weights, &vectors)
    }

    /// Relative residual after all terms, `‖A − Σ…‖_F / ‖A‖_F`.
    pub fn relative_residual(&self) -> f64 {
        match self.terms.last() {
            Some(t) => t.residual_norm / self.input_norm.max(1e-300),
            None => 1.0,
        }
    }
}

/// Find the best symmetric rank-one approximation of `a`: the real
/// eigenpair with maximal `|λ|`, located by multistart SS-HOPM under both
/// shift signs from `num_starts` deterministic starts.
///
/// Returns `None` if no start converged (pathological inputs).
pub fn best_rank_one<S: Scalar>(a: &SymTensor<S>, num_starts: usize) -> Option<(S, Vec<S>)> {
    let n = a.dim();
    let starts: Vec<Vec<S>> = if n == 3 {
        crate::starts::fibonacci_sphere::<S>(num_starts)
    } else {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x5eed);
        crate::starts::random_gaussian_starts::<S, _>(n, num_starts, &mut rng)
    };
    let dedup = DedupConfig::default();
    let mut best: Option<crate::solver::Eigenpair<S>> = None;
    for shift in [Shift::Convex, Shift::Concave] {
        let solver = SsHopm::new(shift)
            .with_tolerance(1e-13)
            .with_max_iters(5000);
        let spectrum = multistart(&solver, a, &starts, &dedup, 1e-5);
        for entry in &spectrum.entries {
            let lam = entry.pair.lambda;
            if best.as_ref().is_none_or(|b| lam.abs() > b.lambda.abs()) {
                best = Some(entry.pair.clone());
            }
        }
    }
    // Newton-polish before deflation: SS-HOPM's linear convergence leaves
    // ~1e-7 eigenvector error, which would survive the subtraction as a
    // spurious small rank-one term.
    best.map(|pair| {
        let refined = crate::refine::refine(a, &pair, 4, 1e-14);
        (refined.pair.lambda, refined.pair.x)
    })
}

/// Greedy decomposition: extract up to `max_terms` best-rank-one terms,
/// stopping early once the relative residual falls below `tol`.
pub fn decompose<S: Scalar>(
    a: &SymTensor<S>,
    max_terms: usize,
    num_starts: usize,
    tol: f64,
) -> SymCp<S> {
    let m = a.order();
    let input_norm = a.frobenius_norm().to_f64();
    let mut residual = a.clone();
    let mut terms: Vec<RankOneTerm<S>> = Vec::new();

    for _ in 0..max_terms {
        if residual.frobenius_norm().to_f64() <= tol * input_norm.max(1e-300) {
            break;
        }
        let Some((weight, vector)) = best_rank_one(&residual, num_starts) else {
            break;
        };
        // Subtract weight * v^{(x)m}.
        let mut term = SymTensor::rank_one(m, &vector);
        term.scale(weight);
        // `rank_one(m, &vector)` has `residual`'s shape by construction,
        // so the subtraction cannot fail; bail out rather than panic.
        residual = match residual.sub(&term) {
            Ok(next) => next,
            Err(_) => break,
        };
        terms.push(RankOneTerm {
            weight,
            vector,
            residual_norm: residual.frobenius_norm().to_f64(),
        });
    }

    SymCp {
        m,
        terms,
        input_norm,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use symtensor::scalar::normalize;

    fn unit(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut v: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        normalize(&mut v);
        v
    }

    #[test]
    fn rank_one_tensor_recovered_in_one_term() {
        let v = unit(3, 1);
        let mut a = SymTensor::<f64>::rank_one(4, &v);
        a.scale(2.5);
        let cp = decompose(&a, 3, 64, 1e-8);
        assert_eq!(
            cp.terms.len(),
            1,
            "relative residual {}",
            cp.relative_residual()
        );
        assert!((cp.terms[0].weight - 2.5).abs() < 1e-5);
        let dot: f64 = cp.terms[0].vector.iter().zip(&v).map(|(a, b)| a * b).sum();
        assert!(dot.abs() > 0.99999);
        assert!(cp.relative_residual() < 1e-6);
    }

    #[test]
    fn odeco_tensor_recovered_exactly() {
        // Sum of axis rank-ones with distinct positive weights: greedy
        // deflation extracts them largest-first, exactly.
        let weights = [3.0, 2.0, 1.0];
        let axes = [
            vec![1.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0],
        ];
        let a = from_rank_ones(4, &weights, &axes);
        let cp = decompose(&a, 3, 64, 1e-10);
        assert_eq!(cp.terms.len(), 3);
        for (i, term) in cp.terms.iter().enumerate() {
            assert!(
                (term.weight - weights[i]).abs() < 1e-6,
                "term {i}: {} vs {}",
                term.weight,
                weights[i]
            );
            let dot: f64 = term.vector.iter().zip(&axes[i]).map(|(a, b)| a * b).sum();
            assert!(dot.abs() > 0.9999, "term {i} direction");
        }
        assert!(cp.relative_residual() < 1e-6);
    }

    #[test]
    fn residual_norms_are_non_increasing() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = SymTensor::<f64>::random(4, 3, &mut rng);
        let cp = decompose(&a, 4, 48, 0.0);
        let mut prev = cp.input_norm;
        for t in &cp.terms {
            assert!(
                t.residual_norm <= prev + 1e-9,
                "{} -> {}",
                prev,
                t.residual_norm
            );
            prev = t.residual_norm;
        }
    }

    #[test]
    fn reconstruction_error_matches_reported_residual() {
        let mut rng = StdRng::seed_from_u64(6);
        let a = SymTensor::<f64>::random(4, 3, &mut rng);
        let cp = decompose(&a, 3, 48, 0.0);
        let rec = cp.reconstruct(3);
        let diff = a.sub(&rec).unwrap().frobenius_norm();
        let reported = cp.terms.last().unwrap().residual_norm;
        assert!((diff - reported).abs() < 1e-8 * (1.0 + diff));
    }

    #[test]
    fn odd_order_rank_one_recovery() {
        let v = unit(4, 7);
        let mut a = SymTensor::<f64>::rank_one(3, &v);
        a.scale(-1.5); // negative weight; for odd order (-1.5, v) ~ (1.5, -v)
        let cp = decompose(&a, 2, 64, 1e-8);
        assert_eq!(cp.terms.len(), 1);
        assert!((cp.terms[0].weight.abs() - 1.5).abs() < 1e-5);
        assert!(cp.relative_residual() < 1e-6);
    }

    #[test]
    fn empty_decomposition_of_zero_tensor() {
        let a = SymTensor::<f64>::zeros(4, 3);
        let cp = decompose(&a, 3, 16, 1e-10);
        assert!(cp.terms.is_empty());
        let rec = cp.reconstruct(3);
        assert_eq!(rec.frobenius_norm(), 0.0);
    }

    #[test]
    fn best_rank_one_picks_largest_magnitude_eigenvalue() {
        // diag-ish tensor with a dominant negative weight.
        let a = from_rank_ones(4, &[-5.0, 2.0], &[vec![1.0, 0.0, 0.0], vec![0.0, 1.0, 0.0]]);
        let (lam, v) = best_rank_one(&a, 64).unwrap();
        assert!((lam + 5.0).abs() < 1e-5, "{lam}");
        assert!(v[0].abs() > 0.9999);
    }
}
