//! The [`Solver`] abstraction: one object-safe trait behind SS-HOPM,
//! GEAP and QRST, so every batched layer — [`crate::BatchSolver`], the
//! execution backends, resilient re-solves and the DW-MRI fiber
//! extraction — dispatches per-tensor iteration without naming a
//! concrete algorithm.
//!
//! The trait owns the per-tensor contract: initialize from a starting
//! vector, iterate, test convergence, and report every iterate to an
//! [`IterationObserver`] (from which the provided [`Solver::solve_trace`]
//! builds a [`ConvergenceTrace`]). Implementations differ only in *how*
//! they step:
//!
//! * [`SsHopm`] — the paper's shifted power iteration (fixed or
//!   tensor-level adaptive shift);
//! * [`crate::Geap`] — per-iteration shift from the projected Hessian
//!   spectrum (Kolda & Mayo's adaptive method);
//! * [`crate::Qrst`] — orthogonal-similarity QR iteration on a dense
//!   copy (Batselier & Wong), which reaches eigenpairs power iteration
//!   misses.

use crate::shift::Shift;
use crate::solver::{
    Eigenpair, IterationObserver, IterationPolicy, IterationUpdate, NoopObserver, SsHopm,
};
use symtensor::kernels::{GeneralKernels, TensorKernels};
use symtensor::{Scalar, SymTensorRef};
use telemetry::{ConvergenceTrace, IterationRecord};

/// A per-tensor eigenpair solver: the seam every batched layer
/// dispatches through.
///
/// Object safety is deliberate — backends hold `&dyn Solver<S>` so one
/// `solve_batch` signature serves every algorithm. The required method
/// is the allocation-free workhorse; the provided methods wrap it with
/// a no-op observer, a fresh scratch buffer, or a recorded
/// [`ConvergenceTrace`].
pub trait Solver<S: Scalar>: Sync {
    /// Short machine name (`"sshopm"`, `"geap"`, `"qrst"`) used in
    /// reports and spec strings.
    fn name(&self) -> &'static str;

    /// The iteration policy (convergence tolerance / iteration cap).
    fn policy(&self) -> IterationPolicy;

    /// The shift `α` this solver applies identically on every iteration,
    /// if its shift is state-independent. GPU backends replicate the
    /// fixed-shift update in device code (the paper's setting), so they
    /// accept exactly the solvers that return `Some` here and reject the
    /// rest with a descriptive error.
    fn fixed_shift(&self) -> Option<f64>;

    /// Solve one tensor from one starting vector, reporting every
    /// iterate (including the initial one, `k = 0`) to `observer` and
    /// reusing `scratch` as the iteration work buffer.
    ///
    /// A mismatched or zero `x0`, or a kernel error (e.g. a shape-checked
    /// kernel handed the wrong tensor), yields a *poisoned* eigenpair
    /// (`lambda = NaN`, `converged = false`, `iterations = 0`) so batch
    /// drivers fail per-tensor instead of aborting the process.
    fn solve_one(
        &self,
        kernels: &dyn TensorKernels<S>,
        a: SymTensorRef<'_, S>,
        x0: &[S],
        observer: &mut dyn IterationObserver<S>,
        scratch: &mut Vec<S>,
    ) -> Eigenpair<S>;

    /// [`solve_one`](Self::solve_one) with a no-op observer and a fresh
    /// scratch buffer: the convenience entry point for one-off solves.
    fn solve_pair(&self, a: SymTensorRef<'_, S>, x0: &[S]) -> Eigenpair<S> {
        self.solve_one(&GeneralKernels, a, x0, &mut NoopObserver, &mut Vec::new())
    }

    /// Solve and record a full per-iteration [`ConvergenceTrace`]
    /// (λ, shift, and — when `with_residuals` — the eigenpair residual,
    /// which costs one extra `A·xᵐ⁻¹` per iteration). Works for every
    /// solver because the trace is built from the observer stream.
    fn solve_trace(
        &self,
        a: SymTensorRef<'_, S>,
        x0: &[S],
        with_residuals: bool,
    ) -> (Eigenpair<S>, ConvergenceTrace) {
        let mut trace = ConvergenceTrace::new();
        let mut recorder = |u: &IterationUpdate<'_, S>| {
            let residual = with_residuals.then(|| {
                let probe = Eigenpair {
                    lambda: S::from_f64(u.lambda),
                    x: u.x.to_vec(),
                    iterations: u.k,
                    converged: false,
                    alpha: u.alpha,
                };
                probe.residual(a)
            });
            trace.push(IterationRecord {
                k: u.k,
                lambda: u.lambda,
                alpha: u.alpha,
                residual,
            });
        };
        let pair = self.solve_one(&GeneralKernels, a, x0, &mut recorder, &mut Vec::new());
        (pair, trace)
    }
}

/// Solvers pass through shared references, so `&S` (and in particular
/// `&dyn Solver<_>`) is itself a [`Solver`] — this is what lets
/// [`crate::BatchSolver`] stay generic while backends hand it a trait
/// object.
impl<S: Scalar, T: Solver<S> + ?Sized> Solver<S> for &T {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn policy(&self) -> IterationPolicy {
        (**self).policy()
    }

    fn fixed_shift(&self) -> Option<f64> {
        (**self).fixed_shift()
    }

    fn solve_one(
        &self,
        kernels: &dyn TensorKernels<S>,
        a: SymTensorRef<'_, S>,
        x0: &[S],
        observer: &mut dyn IterationObserver<S>,
        scratch: &mut Vec<S>,
    ) -> Eigenpair<S> {
        (**self).solve_one(kernels, a, x0, observer, scratch)
    }
}

/// [`Box`]ed solvers delegate too, so `SolverSpec::build` results plug
/// into every generic call site directly.
impl<S: Scalar, T: Solver<S> + ?Sized> Solver<S> for Box<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn policy(&self) -> IterationPolicy {
        (**self).policy()
    }

    fn fixed_shift(&self) -> Option<f64> {
        (**self).fixed_shift()
    }

    fn solve_one(
        &self,
        kernels: &dyn TensorKernels<S>,
        a: SymTensorRef<'_, S>,
        x0: &[S],
        observer: &mut dyn IterationObserver<S>,
        scratch: &mut Vec<S>,
    ) -> Eigenpair<S> {
        (**self).solve_one(kernels, a, x0, observer, scratch)
    }
}

/// SS-HOPM as a [`Solver`]: a plain delegation to the inherent
/// iteration, so the trait path runs bit-for-bit the same arithmetic as
/// the pre-trait code (pinned by the solver-parity suite).
impl<S: Scalar> Solver<S> for SsHopm {
    fn name(&self) -> &'static str {
        "sshopm"
    }

    fn policy(&self) -> IterationPolicy {
        SsHopm::policy(self)
    }

    fn fixed_shift(&self) -> Option<f64> {
        match self.shift() {
            Shift::Fixed(alpha) => Some(alpha),
            _ => None,
        }
    }

    fn solve_one(
        &self,
        kernels: &dyn TensorKernels<S>,
        a: SymTensorRef<'_, S>,
        x0: &[S],
        observer: &mut dyn IterationObserver<S>,
        scratch: &mut Vec<S>,
    ) -> Eigenpair<S> {
        self.solve_observed_with_scratch(kernels, a, x0, observer, scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use symtensor::SymTensor;

    fn random_tensor(seed: u64) -> SymTensor<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        SymTensor::random(4, 3, &mut rng)
    }

    #[test]
    fn trait_path_is_bitwise_identical_to_inherent_sshopm() {
        let a = random_tensor(7);
        let x0 = [0.3, -0.5, 0.8];
        let solver = SsHopm::new(Shift::Convex).with_tolerance(1e-12);
        let inherent = solver.solve(&a, &x0);
        let dynamic: &dyn Solver<f64> = &solver;
        let via_trait = dynamic.solve_pair(a.view(), &x0);
        assert_eq!(inherent.lambda.to_bits(), via_trait.lambda.to_bits());
        assert_eq!(inherent.iterations, via_trait.iterations);
        assert_eq!(inherent.converged, via_trait.converged);
        for (i, t) in inherent.x.iter().zip(&via_trait.x) {
            assert_eq!(i.to_bits(), t.to_bits());
        }
    }

    #[test]
    fn fixed_shift_exposed_only_for_fixed_policies() {
        let fixed: &dyn Solver<f64> = &SsHopm::new(Shift::Fixed(1.5));
        assert_eq!(fixed.fixed_shift(), Some(1.5));
        for shift in [Shift::Convex, Shift::Concave, Shift::Adaptive] {
            let s = SsHopm::new(shift);
            let d: &dyn Solver<f64> = &s;
            assert_eq!(d.fixed_shift(), None, "{shift:?}");
        }
    }

    #[test]
    fn reference_and_box_delegate() {
        let solver = SsHopm::new(Shift::Fixed(0.5));
        let by_ref = &solver;
        assert_eq!(Solver::<f64>::name(&by_ref), "sshopm");
        assert_eq!(Solver::<f64>::fixed_shift(&by_ref), Some(0.5));
        let boxed: Box<dyn Solver<f64>> = Box::new(solver);
        assert_eq!(boxed.name(), "sshopm");
        assert_eq!(boxed.policy(), solver.policy());
    }

    #[test]
    fn solve_trace_matches_inherent_convergence_trace() {
        let a = random_tensor(9);
        let x0 = [0.9, 0.1, 0.4];
        let solver = SsHopm::new(Shift::Convex).with_tolerance(1e-12);
        let (pair_inherent, trace_inherent) = solver.solve_convergence_trace(&a, &x0, true);
        let dynamic: &dyn Solver<f64> = &solver;
        let (pair_trait, trace_trait) = dynamic.solve_trace(a.view(), &x0, true);
        assert_eq!(pair_inherent.lambda.to_bits(), pair_trait.lambda.to_bits());
        assert_eq!(trace_inherent.len(), trace_trait.len());
        for (a_rec, b_rec) in trace_inherent
            .records
            .iter()
            .zip(trace_trait.records.iter())
        {
            assert_eq!(a_rec.k, b_rec.k);
            assert_eq!(a_rec.lambda.to_bits(), b_rec.lambda.to_bits());
        }
    }
}
