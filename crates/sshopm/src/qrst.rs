//! QRST: the QR algorithm for symmetric tensors of Batselier & Wong
//! (arXiv 1411.1926), adapted to this crate's solver contract.
//!
//! Where the power family updates a single vector, QRST updates an
//! entire orthogonal basis: each iteration takes the first-slice matrix
//! of the rotated tensor, QR-factors a shifted copy of it, and applies
//! the orthogonal factor to *every* mode —
//!
//! ```text
//! C_k[i,j] = B_k[i, j, 0, …, 0]
//! Q_k R_k  = C_k + β·I              (β = (m−1)·‖A‖_F + τ, so C_k + β·I ≻ 0)
//! B_{k+1}  = B_k ×₁ Q_k ×₂ Q_k ⋯ ×ₘ Q_k,    U_{k+1} = U_k · Q_k
//! ```
//!
//! The first column of `Q_k` reproduces the convex-shifted power step
//! (`Q_k·e₁ ∝ C_k·e₁ + β·e₁`), so the primary trajectory `U_k·e₁`
//! converges like SS-HOPM with the Kolda–Mayo bound — but the remaining
//! columns keep rotating the rest of the basis, and at the end *every*
//! column of `U` is a candidate eigenvector. The solver validates all
//! `n` candidates against the original packed tensor and returns the one
//! with the smallest eigenpair residual, which is how QRST surfaces
//! eigenpairs (secondary fiber directions, saddles) that a single power
//! trajectory from the same start never visits.
//!
//! The iteration works on a dense `n^m` copy in `f64`; at the paper's
//! shape (`m = 4`, `n = 3`) that is an 81-entry buffer and a 3×3 QR per
//! iteration, so the cost stays comparable to a power step.

use crate::shift::{sufficient_shift, SHIFT_MARGIN};
use crate::solver::{Eigenpair, IterationObserver, IterationPolicy, IterationUpdate, NoopObserver};
use crate::traits::Solver;
use linalg::{Matrix, Qr};
use symtensor::kernels::{GeneralKernels, TensorKernels};
use symtensor::scalar::normalize;
use symtensor::{Scalar, SymTensorRef};

/// The QRST solver: an iteration policy plus the convexity margin added
/// to the QR shift.
#[derive(Debug, Clone, Copy)]
pub struct Qrst {
    tau: f64,
    policy: IterationPolicy,
}

impl Default for Qrst {
    fn default() -> Self {
        Self::new()
    }
}

impl Qrst {
    /// Create a QRST solver with the default margin ([`SHIFT_MARGIN`])
    /// and convergence policy (`tol = 1e-10`, `max_iters = 1000`).
    pub fn new() -> Self {
        Self {
            tau: SHIFT_MARGIN,
            policy: IterationPolicy::default(),
        }
    }

    /// Replace the convergence tolerance (keeps the iteration cap).
    pub fn with_tolerance(mut self, tol: f64) -> Self {
        if let IterationPolicy::Converge { max_iters, .. } = self.policy {
            self.policy = IterationPolicy::Converge { tol, max_iters };
        }
        self
    }

    /// Replace the iteration cap (keeps the tolerance).
    pub fn with_max_iters(mut self, max_iters: usize) -> Self {
        if let IterationPolicy::Converge { tol, .. } = self.policy {
            self.policy = IterationPolicy::Converge { tol, max_iters };
        }
        self
    }

    /// Replace the whole iteration policy.
    pub fn with_policy(mut self, policy: IterationPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Run QRST from `x0` with the default on-the-fly kernels.
    ///
    /// # Panics
    /// Panics if `x0.len() != a.dim()` or `x0` is the zero vector.
    pub fn solve<'a, S: Scalar>(
        &self,
        a: impl Into<SymTensorRef<'a, S>>,
        x0: &[S],
    ) -> Eigenpair<S> {
        self.solve_one(
            &GeneralKernels,
            a.into(),
            x0,
            &mut NoopObserver,
            &mut Vec::new(),
        )
    }
}

/// Expand a packed symmetric tensor into a dense row-major `n^m` buffer
/// of `f64` values (the last index varies fastest).
fn densify<S: Scalar>(a: SymTensorRef<'_, S>) -> Vec<f64> {
    let (m, n) = (a.order(), a.dim());
    let len = n.pow(m as u32);
    let mut out = vec![0.0f64; len];
    let mut idx = vec![0usize; m];
    for (pos, slot) in out.iter_mut().enumerate() {
        let mut lin = pos;
        for s in idx.iter_mut().rev() {
            *s = lin % n;
            lin /= n;
        }
        *slot = match a.get(&idx) {
            Ok(v) => v.to_f64(),
            // Unreachable: every decoded index is in range by construction.
            Err(_) => 0.0,
        };
    }
    out
}

/// In-place orthogonal similarity: contract every mode of the dense
/// order-`m` tensor `b` with `Qᵀ` (`b ← b ×ₜ Qᵀ` for all `t`), i.e.
/// `b'[i₁…iₘ] = Σ q[j₁,i₁]…q[jₘ,iₘ]·b[j₁…jₘ]`. `buf` is a same-length
/// work buffer.
fn rotate_all_modes(b: &mut [f64], buf: &mut [f64], q: &Matrix, m: usize, n: usize) {
    for t in 0..m {
        // Mode `t` has stride n^{m-1-t}; each contiguous group of
        // `stride` entries shares the trailing indices.
        let stride = n.pow((m - 1 - t) as u32);
        let block = stride * n;
        buf.iter_mut().for_each(|v| *v = 0.0);
        for (chunk_out, chunk_in) in buf.chunks_mut(block).zip(b.chunks(block)) {
            for i in 0..n {
                for j in 0..n {
                    let w = q[(j, i)];
                    if w == 0.0 {
                        continue;
                    }
                    let src = &chunk_in[j * stride..(j + 1) * stride];
                    let dst = &mut chunk_out[i * stride..(i + 1) * stride];
                    for (d, s) in dst.iter_mut().zip(src) {
                        *d += w * s;
                    }
                }
            }
        }
        b.copy_from_slice(buf);
    }
}

/// The first-slice matrix `C[i,j] = b[i, j, 0, …, 0]`.
fn first_slice(b: &[f64], m: usize, n: usize) -> Matrix {
    let row_stride = n.pow((m - 1) as u32);
    let col_stride = n.pow((m - 2) as u32);
    Matrix::from_fn(n, n, |i, j| b[i * row_stride + j * col_stride])
}

/// Householder reflection `H = I − 2·v·vᵀ/(vᵀv)` with `v = u − e₁`, the
/// symmetric orthogonal map swapping the unit vector `u` with `e₁`.
/// Returns the identity when `u` is already (numerically) `e₁`.
fn reflection_to_e1(u: &[f64]) -> Matrix {
    let n = u.len();
    let mut v = u.to_vec();
    v[0] -= 1.0;
    let vtv: f64 = v.iter().map(|&c| c * c).sum();
    if vtv <= f64::EPSILON {
        return Matrix::identity(n);
    }
    Matrix::from_fn(n, n, |i, j| {
        let delta = if i == j { 1.0 } else { 0.0 };
        delta - 2.0 * v[i] * v[j] / vtv
    })
}

impl<S: Scalar> Solver<S> for Qrst {
    fn name(&self) -> &'static str {
        "qrst"
    }

    fn policy(&self) -> IterationPolicy {
        self.policy
    }

    fn fixed_shift(&self) -> Option<f64> {
        None
    }

    fn solve_one(
        &self,
        kernels: &dyn TensorKernels<S>,
        a: SymTensorRef<'_, S>,
        x0: &[S],
        observer: &mut dyn IterationObserver<S>,
        _scratch: &mut Vec<S>,
    ) -> Eigenpair<S> {
        let (m, n) = (a.order(), a.dim());
        let poisoned = |x: Vec<S>, alpha: f64| Eigenpair {
            lambda: S::from_f64(f64::NAN),
            x,
            iterations: 0,
            converged: false,
            alpha,
        };
        if x0.len() != n {
            return poisoned(vec![S::ZERO; n], 0.0);
        }
        let mut x_s = x0.to_vec();
        if normalize(&mut x_s) == S::ZERO {
            return poisoned(x_s, 0.0);
        }

        let (tol, max_iters) = match self.policy {
            IterationPolicy::Converge { tol, max_iters } => (tol, max_iters),
            IterationPolicy::Fixed(k) => (0.0, k),
        };
        let converge_mode = matches!(self.policy, IterationPolicy::Converge { .. });
        let beta = sufficient_shift(a) + self.tau;

        // Rotate the dense copy so the starting vector becomes e1; from
        // here on the primary trajectory lives in the first column of U.
        let xf: Vec<f64> = x_s.iter().map(|v| v.to_f64()).collect();
        let mut u = reflection_to_e1(&xf);
        let mut b = densify(a);
        let mut buf = vec![0.0f64; b.len()];
        rotate_all_modes(&mut b, &mut buf, &u, m, n);

        let mut lambda = b[0];
        observer.observe(&IterationUpdate {
            k: 0,
            lambda,
            alpha: beta,
            x: &x_s,
        });

        let mut iterations = 0;
        let mut converged = false;
        for _ in 0..max_iters {
            let c = first_slice(&b, m, n);
            let shifted = Matrix::from_fn(n, n, |i, j| c[(i, j)] + if i == j { beta } else { 0.0 });
            let qr = match Qr::new(&shifted) {
                Ok(qr) => qr,
                // C + beta*I is positive definite by the Kolda-Mayo bound,
                // so factorization failure means corrupted (non-finite)
                // input; stop and let the caller see converged = false.
                Err(_) => break,
            };
            let mut q = qr.q();
            // Canonical signs: positive R diagonal, so Q·e1 is the
            // *un-negated* shifted power direction and odd-order lambda
            // traces do not alternate sign.
            let r = qr.r();
            for j in 0..n {
                if r[(j, j)] < 0.0 {
                    for i in 0..n {
                        q[(i, j)] = -q[(i, j)];
                    }
                }
            }

            rotate_all_modes(&mut b, &mut buf, &q, m, n);
            u = match u.matmul(&q) {
                Ok(next) => next,
                Err(_) => break,
            };
            let new_lambda = b[0];
            iterations += 1;

            for (dst, i) in x_s.iter_mut().zip(0..n) {
                *dst = S::from_f64(u[(i, 0)]);
            }
            observer.observe(&IterationUpdate {
                k: iterations,
                lambda: new_lambda,
                alpha: beta,
                x: &x_s,
            });
            let delta = (new_lambda - lambda).abs();
            lambda = new_lambda;
            if converge_mode && delta <= tol {
                converged = true;
                break;
            }
        }

        // Every column of U is a candidate eigenvector; validate each
        // against the original packed tensor and keep the best.
        let mut best: Option<Eigenpair<S>> = None;
        for col in 0..n {
            let mut x: Vec<S> = (0..n).map(|row| S::from_f64(u[(row, col)])).collect();
            if normalize(&mut x) == S::ZERO {
                continue;
            }
            let lambda = match kernels.axm(a, &x) {
                Ok(v) => v,
                Err(_) => return poisoned(x, beta),
            };
            let pair = Eigenpair {
                lambda,
                x,
                iterations,
                converged: converged || !converge_mode,
                alpha: beta,
            };
            let replace = match &best {
                Some(cur) => pair.residual(a) < cur.residual(a),
                None => true,
            };
            if replace {
                best = Some(pair);
            }
        }
        match best {
            Some(pair) => pair,
            // Unreachable in practice: U is orthogonal, so every column
            // is unit-norm. Fall back to the (normalized) start.
            None => {
                let lambda = kernels
                    .axm(a, &x_s)
                    .unwrap_or_else(|_| S::from_f64(f64::NAN));
                Eigenpair {
                    lambda,
                    x: x_s,
                    iterations,
                    converged: false,
                    alpha: beta,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use symtensor::SymTensor;

    fn random_tensor(m: usize, n: usize, seed: u64) -> SymTensor<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        SymTensor::random(m, n, &mut rng)
    }

    #[test]
    fn matrix_case_recovers_dominant_eigenpair() {
        let mut a = SymTensor::<f64>::zeros(2, 2);
        a.set(&[0, 0], 3.0).unwrap();
        a.set(&[1, 1], 1.0).unwrap();
        let pair = Qrst::new().with_tolerance(1e-14).solve(&a, &[0.5, 0.5]);
        assert!(pair.converged);
        assert!((pair.lambda - 3.0).abs() < 1e-6, "{}", pair.lambda);
        assert!(pair.residual(&a) < 1e-6);
    }

    #[test]
    fn converged_pairs_satisfy_eigen_equation() {
        for seed in 0..6u64 {
            let a = random_tensor(4, 3, seed);
            let pair = Qrst::new()
                .with_tolerance(1e-13)
                .solve(&a, &[0.3, -0.5, 0.8]);
            assert!(pair.converged, "seed {seed}");
            assert!(
                pair.residual(&a) < 1e-5,
                "seed {seed}: residual {}",
                pair.residual(&a)
            );
            let nrm: f64 = pair.x.iter().map(|v| v * v).sum::<f64>().sqrt();
            assert!((nrm - 1.0).abs() < 1e-10, "seed {seed}: norm {nrm}");
        }
    }

    #[test]
    fn odd_order_traces_do_not_alternate_sign() {
        let a = random_tensor(3, 3, 5);
        let mut trace = Vec::new();
        let pair = Qrst::new().with_tolerance(1e-12).solve_one(
            &GeneralKernels,
            a.view(),
            &[0.6, -0.7, 0.4],
            &mut |u: &IterationUpdate<'_, f64>| trace.push(u.lambda),
            &mut Vec::new(),
        );
        assert!(pair.converged);
        assert!(pair.residual(&a) < 1e-5, "{}", pair.residual(&a));
        // The tail of the trace must settle, not oscillate in sign.
        let tail = &trace[trace.len().saturating_sub(3)..];
        for w in tail.windows(2) {
            assert!((w[1] - w[0]).abs() < 1e-6, "{:?}", tail);
        }
    }

    #[test]
    fn fixed_policy_runs_exact_iteration_count() {
        let a = random_tensor(4, 3, 31);
        let pair = Qrst::new()
            .with_policy(IterationPolicy::Fixed(11))
            .solve(&a, &[1.0, 0.0, 0.0]);
        assert_eq!(pair.iterations, 11);
        assert!(pair.converged);
    }

    #[test]
    fn trait_surface_reports_qrst() {
        let solver = Qrst::new();
        let d: &dyn Solver<f64> = &solver;
        assert_eq!(d.name(), "qrst");
        assert_eq!(d.fixed_shift(), None);
        assert_eq!(d.policy(), IterationPolicy::default());
    }

    #[test]
    fn f32_tensors_solve_too() {
        // The iteration runs on an internal f64 copy, so a tight Δλ
        // tolerance is attainable even for f32 inputs; only the final
        // eigenpair evaluation rounds to f32.
        let a = random_tensor(4, 3, 12).to_f32();
        let pair = Qrst::new()
            .with_tolerance(1e-10)
            .solve(&a, &[0.5f32, 0.5, 0.7]);
        assert!(pair.converged);
        assert!(pair.residual(&a) < 1e-3, "{}", pair.residual(&a));
    }

    #[test]
    fn zero_starting_vector_poisons_result() {
        let a = random_tensor(4, 3, 37);
        let pair = Qrst::new().solve(&a, &[0.0, 0.0, 0.0]);
        assert!(pair.lambda.is_nan());
        assert!(!pair.converged);
        assert_eq!(pair.iterations, 0);
    }

    #[test]
    fn rotation_helpers_are_consistent() {
        // Rotating a dense rank-one tensor v^{(x)m} by H that maps v to e1
        // must concentrate all mass in b[0].
        let mut v = vec![0.6, -0.8, 0.0];
        symtensor::scalar::normalize(&mut v);
        let a = SymTensor::<f64>::rank_one(4, &v);
        let mut b = densify(a.view());
        let mut buf = vec![0.0; b.len()];
        let h = reflection_to_e1(&v);
        rotate_all_modes(&mut b, &mut buf, &h, 4, 3);
        assert!((b[0] - 1.0).abs() < 1e-12, "{}", b[0]);
        let rest: f64 = b[1..].iter().map(|x| x.abs()).sum();
        assert!(rest < 1e-10, "{rest}");
    }
}
