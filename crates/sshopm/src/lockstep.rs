//! Lockstep batched SS-HOPM: iterate a *panel* of tensors simultaneously
//! through the vectorized [`LanePanel`] kernels.
//!
//! The scalar batch driver ([`crate::BatchSolver`]) walks the shared
//! per-shape index tables once per tensor per iteration. With a fixed
//! shift, every tensor in a panel executes the *same* instruction sequence
//! — only the data differs — so the driver here walks the tables once per
//! panel per iteration and updates all `LANE_WIDTH` accumulators in each
//! step (the CPU analogue of the paper's one-thread-block-per-tensor GPU
//! mapping). A per-lane *retirement mask* freezes tensors whose eigenvalue
//! estimate has converged while the rest of the panel keeps iterating, so
//! ragged convergence costs bookkeeping, not extra kernel work.
//!
//! Lockstep execution requires a state-independent update rule, so the
//! driver accepts exactly the solvers whose [`Solver::fixed_shift`]
//! reports `Some` (fixed-shift SS-HOPM — the paper's GPU setting);
//! adaptive solvers fall back to the scalar path, with the batched
//! kernels still serving per-tensor products.

use crate::batch::BatchResult;
use crate::solver::{Eigenpair, IterationPolicy};
use crate::traits::Solver;
use rayon::prelude::*;
use std::time::Instant;
use symtensor::{BatchedKernels, LanePanel, Scalar, TensorBatchRef, LANE_WIDTH};
use telemetry::Telemetry;

/// The fixed shift a solver must expose to run in lockstep: `Some(α)`
/// exactly when the solver is fixed-shift SS-HOPM. GEAP/QRST (and
/// adaptive-shift SS-HOPM) re-evaluate state per iterate, which breaks
/// the "same instruction stream for every lane" premise.
pub fn lockstep_alpha<S: Scalar>(solver: &dyn Solver<S>) -> Option<f64> {
    if solver.name() == "sshopm" {
        solver.fixed_shift()
    } else {
        None
    }
}

/// Solve every tensor of `batch` from every start in lockstep panels of
/// up to [`LANE_WIDTH`] tensors, using the fixed shift `alpha`.
///
/// Arithmetic is ordered identically to the scalar
/// [`SsHopm`](crate::SsHopm) iteration over
/// [`PrecomputedTables`](symtensor::PrecomputedTables), so results are
/// bitwise equal to `BatchSolver::solve_sequential` with those kernels.
/// Mismatched or zero starting vectors yield per-lane poisoned eigenpairs
/// (`lambda = NaN`), never a panic.
///
/// `threads == 1` runs panels sequentially on the calling thread;
/// `threads == 0` uses the current rayon pool; `threads == k` builds a
/// dedicated `k`-worker pool. Telemetry names match the scalar driver
/// (`batch.solve`, `batch.tensor_seconds`, `batch.tensors_done`,
/// `batch.solves`, `batch.converged`, `batch.iterations`).
pub fn solve_batch_lockstep<S: Scalar>(
    kernels: &BatchedKernels,
    batch: TensorBatchRef<'_, S>,
    starts: &[Vec<S>],
    alpha: f64,
    policy: IterationPolicy,
    threads: usize,
    telemetry: &Telemetry,
) -> BatchResult<S> {
    let _batch_span = telemetry.span("batch.solve");
    let count = batch.len();
    let num_panels = count.div_ceil(LANE_WIDTH);

    let solve_panel_at = |p: usize| -> (Vec<Vec<Eigenpair<S>>>, u64) {
        let start = p * LANE_WIDTH;
        let width = LANE_WIDTH.min(count - start);
        let started = telemetry.is_enabled().then(Instant::now);
        let (rows, iters, converged) = match LanePanel::gather(kernels, batch, start, width) {
            Ok(panel) => solve_panel(kernels, &panel, width, starts, alpha, policy),
            // A shape mismatch between the batch and the kernel tables
            // poisons the whole panel rather than aborting the batch.
            Err(_) => (
                vec![vec![poisoned_pair(kernels.dim(), 0.0); starts.len()]; width],
                0,
                0,
            ),
        };
        if let Some(started) = started {
            let per_tensor = started.elapsed().as_secs_f64() / width as f64;
            for _ in 0..width {
                telemetry.observe("batch.tensor_seconds", per_tensor);
            }
            telemetry.counter("batch.tensors_done", width as u64);
            telemetry.counter("batch.solves", (width * starts.len()) as u64);
            telemetry.counter("batch.converged", converged);
            telemetry.counter("batch.iterations", iters);
        }
        (rows, iters)
    };

    let collect = |panels: Vec<(Vec<Vec<Eigenpair<S>>>, u64)>| {
        let mut results = Vec::with_capacity(count);
        let mut total_iterations = 0u64;
        for (rows, iters) in panels {
            total_iterations += iters;
            results.extend(rows);
        }
        BatchResult {
            results,
            total_iterations,
        }
    };

    if threads == 1 {
        return collect((0..num_panels).map(solve_panel_at).collect());
    }
    let solve_all = || {
        collect(
            (0..num_panels)
                .into_par_iter()
                .map(solve_panel_at)
                .collect(),
        )
    };
    if threads == 0 {
        solve_all()
    } else {
        match rayon::ThreadPoolBuilder::new().num_threads(threads).build() {
            Ok(pool) => pool.install(solve_all),
            // Pool creation only fails on resource exhaustion; degrade to
            // the global pool rather than aborting.
            Err(_) => solve_all(),
        }
    }
}

fn poisoned_pair<S: Scalar>(n: usize, alpha: f64) -> Eigenpair<S> {
    Eigenpair {
        lambda: S::from_f64(f64::NAN),
        x: vec![S::ZERO; n],
        iterations: 0,
        converged: false,
        alpha,
    }
}

/// Iterate one gathered panel through all starting vectors. Returns the
/// per-tensor rows (`rows[w][v]`), total iterations, and converged count.
fn solve_panel<S: Scalar>(
    kernels: &BatchedKernels,
    panel: &LanePanel<S>,
    width: usize,
    starts: &[Vec<S>],
    alpha: f64,
    policy: IterationPolicy,
) -> (Vec<Vec<Eigenpair<S>>>, u64, u64) {
    let n = kernels.dim();
    let (tol, max_iters) = match policy {
        IterationPolicy::Converge { tol, max_iters } => (tol, max_iters),
        IterationPolicy::Fixed(k) => (0.0, k),
    };
    let converge_mode = matches!(policy, IterationPolicy::Converge { .. });

    let mut rows: Vec<Vec<Eigenpair<S>>> = vec![Vec::with_capacity(starts.len()); width];
    let mut total_iters = 0u64;
    let mut total_converged = 0u64;

    // Lane work buffers, reused across starts.
    let mut xs = vec![S::ZERO; n * LANE_WIDTH];
    let mut ys = vec![S::ZERO; n * LANE_WIDTH];
    let mut out = [S::ZERO; LANE_WIDTH];

    for x0 in starts {
        // The scalar solver normalizes the start once; every lane shares
        // the same start, so one normalization serves the whole panel.
        let mut x0n = x0.clone();
        let valid = x0.len() == n && symtensor::scalar::normalize(&mut x0n) != S::ZERO;
        if !valid {
            for row in rows.iter_mut() {
                row.push(poisoned_pair(n, 0.0));
            }
            continue;
        }
        for i in 0..n {
            for w in 0..LANE_WIDTH {
                xs[i * LANE_WIDTH + w] = x0n[i];
            }
        }

        // λ₀ per lane.
        if panel.axm(kernels, &xs, &mut out).is_err() {
            for row in rows.iter_mut() {
                row.push(poisoned_pair(n, alpha));
            }
            continue;
        }
        let mut lambda = out;
        let alpha_s = S::from_f64(alpha);

        // The retirement mask: lanes drop out as they converge; the panel
        // keeps iterating until every lane has retired or the cap hits.
        let mut active = [false; LANE_WIDTH];
        active[..width].iter_mut().for_each(|a| *a = true);
        let mut iterations = [0usize; LANE_WIDTH];
        let mut converged = [false; LANE_WIDTH];
        let mut poisoned = [false; LANE_WIDTH];

        for _ in 0..max_iters {
            if !active.iter().any(|&a| a) {
                break;
            }
            // ŷ ← A x^{m-1} for every lane in one table walk.
            if panel.axm1(kernels, &xs, &mut ys).is_err() {
                for w in 0..width {
                    if active[w] {
                        active[w] = false;
                        poisoned[w] = true;
                    }
                }
                break;
            }
            for w in 0..LANE_WIDTH {
                if !active[w] {
                    continue;
                }
                // ŷ ← ŷ + α x (negated when α < 0), then normalize — the
                // exact per-component order of the scalar iteration.
                if alpha >= 0.0 {
                    for i in 0..n {
                        ys[i * LANE_WIDTH + w] += alpha_s * xs[i * LANE_WIDTH + w];
                    }
                } else {
                    for i in 0..n {
                        let v = ys[i * LANE_WIDTH + w] + alpha_s * xs[i * LANE_WIDTH + w];
                        ys[i * LANE_WIDTH + w] = -v;
                    }
                }
                let mut acc = S::ZERO;
                for i in 0..n {
                    let v = ys[i * LANE_WIDTH + w];
                    acc += v * v;
                }
                let nrm = acc.sqrt();
                if nrm == S::ZERO {
                    // Degenerate: x already solves the shifted fixed point.
                    iterations[w] += 1;
                    converged[w] = converge_mode;
                    active[w] = false;
                    continue;
                }
                for i in 0..n {
                    xs[i * LANE_WIDTH + w] = ys[i * LANE_WIDTH + w] / nrm;
                }
            }
            // λ_{k+1} per lane in one table walk (retired lanes' iterates
            // are frozen, so their recomputed λ is unchanged and unread).
            if panel.axm(kernels, &xs, &mut out).is_err() {
                for w in 0..width {
                    if active[w] {
                        active[w] = false;
                        poisoned[w] = true;
                    }
                }
                break;
            }
            for w in 0..LANE_WIDTH {
                if !active[w] {
                    continue;
                }
                let new_lambda = out[w];
                iterations[w] += 1;
                if converge_mode && (new_lambda - lambda[w]).abs().to_f64() <= tol {
                    converged[w] = true;
                    active[w] = false;
                }
                lambda[w] = new_lambda;
            }
        }

        for (w, row) in rows.iter_mut().enumerate() {
            if poisoned[w] {
                row.push(poisoned_pair(n, alpha));
                continue;
            }
            let pair = Eigenpair {
                lambda: lambda[w],
                x: (0..n).map(|i| xs[i * LANE_WIDTH + w]).collect(),
                iterations: iterations[w],
                converged: converged[w] || !converge_mode,
                alpha,
            };
            total_iters += pair.iterations as u64;
            total_converged += u64::from(pair.converged);
            row.push(pair);
        }
    }

    (rows, total_iters, total_converged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::BatchSolver;
    use crate::shift::Shift;
    use crate::solver::SsHopm;
    use crate::starts::random_uniform_starts;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use symtensor::{PrecomputedTables, TensorBatch};

    fn workload(t: usize, v: usize, seed: u64) -> (TensorBatch<f64>, Vec<Vec<f64>>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let tensors = TensorBatch::random(4, 3, t, &mut rng).unwrap();
        let starts = random_uniform_starts(3, v, &mut rng);
        (tensors, starts)
    }

    fn scalar_reference(
        tensors: &TensorBatch<f64>,
        starts: &[Vec<f64>],
        solver: SsHopm,
    ) -> BatchResult<f64> {
        let tables = PrecomputedTables::new(4, 3);
        BatchSolver::new(solver).solve_sequential(&tables, tensors, starts)
    }

    #[test]
    fn lockstep_is_bitwise_equal_to_scalar_precomputed_path() {
        // 11 tensors: one full panel plus a ragged 3-lane tail.
        let (tensors, starts) = workload(11, 4, 42);
        let solver = SsHopm::new(Shift::Fixed(2.5)).with_tolerance(1e-12);
        let reference = scalar_reference(&tensors, &starts, solver);
        let kernels = BatchedKernels::new(4, 3);
        let got = solve_batch_lockstep(
            &kernels,
            tensors.view(),
            &starts,
            2.5,
            solver.policy(),
            1,
            &Telemetry::disabled(),
        );
        assert_eq!(got.num_tensors(), reference.num_tensors());
        assert_eq!(got.total_iterations, reference.total_iterations);
        for (t, v, want) in reference.iter_flat() {
            let have = &got.results[t][v];
            assert_eq!(
                want.lambda.to_bits(),
                have.lambda.to_bits(),
                "tensor {t} start {v}"
            );
            assert_eq!(want.iterations, have.iterations, "tensor {t} start {v}");
            assert_eq!(want.converged, have.converged);
            for (a, b) in want.x.iter().zip(&have.x) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn lockstep_matches_scalar_under_fixed_iteration_policy() {
        let (tensors, starts) = workload(9, 3, 7);
        let solver = SsHopm::new(Shift::Fixed(0.0)).with_policy(IterationPolicy::Fixed(20));
        let reference = scalar_reference(&tensors, &starts, solver);
        let kernels = BatchedKernels::new(4, 3);
        let got = solve_batch_lockstep(
            &kernels,
            tensors.view(),
            &starts,
            0.0,
            solver.policy(),
            1,
            &Telemetry::disabled(),
        );
        assert_eq!(got.total_iterations, 9 * 3 * 20);
        for (t, v, want) in reference.iter_flat() {
            let have = &got.results[t][v];
            assert_eq!(want.lambda.to_bits(), have.lambda.to_bits());
            assert_eq!(have.iterations, 20);
            assert!(have.converged);
        }
    }

    #[test]
    fn negative_shift_branch_matches_scalar() {
        let (tensors, starts) = workload(5, 3, 13);
        let solver = SsHopm::new(Shift::Fixed(-3.0)).with_tolerance(1e-12);
        let reference = scalar_reference(&tensors, &starts, solver);
        let kernels = BatchedKernels::new(4, 3);
        let got = solve_batch_lockstep(
            &kernels,
            tensors.view(),
            &starts,
            -3.0,
            solver.policy(),
            1,
            &Telemetry::disabled(),
        );
        for (t, v, want) in reference.iter_flat() {
            let have = &got.results[t][v];
            assert_eq!(want.lambda.to_bits(), have.lambda.to_bits());
            assert_eq!(want.iterations, have.iterations);
        }
    }

    #[test]
    fn thread_count_does_not_change_lockstep_results() {
        let (tensors, starts) = workload(20, 2, 3);
        let kernels = BatchedKernels::new(4, 3);
        let policy = IterationPolicy::Converge {
            tol: 1e-12,
            max_iters: 1000,
        };
        let tel = Telemetry::disabled();
        let r1 = solve_batch_lockstep(&kernels, tensors.view(), &starts, 1.0, policy, 1, &tel);
        let r4 = solve_batch_lockstep(&kernels, tensors.view(), &starts, 1.0, policy, 4, &tel);
        for (t, v, p) in r1.iter_flat() {
            let q = &r4.results[t][v];
            assert_eq!(p.lambda.to_bits(), q.lambda.to_bits());
            assert_eq!(p.iterations, q.iterations);
        }
    }

    #[test]
    fn bad_starts_poison_per_lane_without_panicking() {
        let (tensors, _) = workload(3, 1, 5);
        let kernels = BatchedKernels::new(4, 3);
        let starts = vec![vec![0.0; 3], vec![1.0, 0.0], vec![0.5, 0.5, 0.5]];
        let res = solve_batch_lockstep(
            &kernels,
            tensors.view(),
            &starts,
            1.0,
            IterationPolicy::default(),
            1,
            &Telemetry::disabled(),
        );
        for t in 0..3 {
            assert!(res.results[t][0].lambda.is_nan(), "zero start");
            assert!(res.results[t][1].lambda.is_nan(), "short start");
            assert!(res.results[t][2].lambda.is_finite(), "good start");
            assert!(!res.results[t][0].converged);
            assert_eq!(res.results[t][0].iterations, 0);
        }
    }

    #[test]
    fn lockstep_alpha_gates_on_solver_identity() {
        let fixed: &dyn Solver<f64> = &SsHopm::new(Shift::Fixed(1.25));
        assert_eq!(lockstep_alpha(fixed), Some(1.25));
        let adaptive: &dyn Solver<f64> = &SsHopm::new(Shift::Adaptive);
        assert_eq!(lockstep_alpha(adaptive), None);
        let geap: &dyn Solver<f64> = &crate::Geap::new();
        assert_eq!(lockstep_alpha(geap), None);
        let qrst: &dyn Solver<f64> = &crate::Qrst::new();
        assert_eq!(lockstep_alpha(qrst), None);
    }

    #[test]
    fn telemetry_names_match_the_scalar_driver() {
        let (tensors, starts) = workload(10, 2, 21);
        let kernels = BatchedKernels::new(4, 3);
        let tel = Telemetry::enabled();
        let res = solve_batch_lockstep(
            &kernels,
            tensors.view(),
            &starts,
            1.0,
            IterationPolicy::Fixed(5),
            1,
            &tel,
        );
        let snap = tel.snapshot();
        assert_eq!(snap.counter("batch.tensors_done"), Some(10));
        assert_eq!(snap.counter("batch.solves"), Some(20));
        assert_eq!(snap.counter("batch.iterations"), Some(res.total_iterations));
        assert_eq!(
            snap.histogram("batch.tensor_seconds").map(|h| h.count),
            Some(10)
        );
        assert_eq!(snap.span("batch.solve").map(|s| s.count), Some(1));
    }

    #[test]
    fn empty_batch_and_empty_starts() {
        let kernels = BatchedKernels::new(4, 3);
        let empty = TensorBatch::<f64>::new(4, 3).unwrap();
        let res = solve_batch_lockstep(
            &kernels,
            empty.view(),
            &[],
            1.0,
            IterationPolicy::default(),
            1,
            &Telemetry::disabled(),
        );
        assert_eq!(res.num_tensors(), 0);
        assert_eq!(res.total_iterations, 0);
    }
}
