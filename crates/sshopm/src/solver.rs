//! The core SS-HOPM iteration (Figure 1 of the paper).
//!
//! ```text
//! repeat
//!     if α ≥ 0:  x̂_{k+1} ← A·x_kᵐ⁻¹ + α·x_k
//!     else:      x̂_{k+1} ← −(A·x_kᵐ⁻¹ + α·x_k)
//!     x_{k+1} ← x̂_{k+1} / ‖x̂_{k+1}‖
//!     λ_{k+1} ← A·x_{k+1}ᵐ
//! until λ converges
//! ```

use crate::shift::Shift;
use symtensor::kernels::{GeneralKernels, TensorKernels};
use symtensor::scalar::{norm2, normalize};
use symtensor::{Scalar, SymTensorRef};
use telemetry::{ConvergenceTrace, IterationRecord};

/// Per-iteration observables handed to an [`IterationObserver`].
///
/// `k = 0` reports the initial iterate (λ of the normalized start vector,
/// before any update); `k ≥ 1` reports the state after the `k`-th update.
#[derive(Debug)]
pub struct IterationUpdate<'a, S> {
    /// Iteration index (0 = initial iterate).
    pub k: usize,
    /// Rayleigh quotient `λ_k = A·x_kᵐ`.
    pub lambda: f64,
    /// Shift α in effect for the update producing this iterate (for
    /// `k = 0`, the shift that the first update will use).
    pub alpha: f64,
    /// The current unit iterate.
    pub x: &'a [S],
}

/// Observes each solver iteration; see [`SsHopm::solve_observed_with`].
///
/// Implemented for any `FnMut(&IterationUpdate<S>)` closure. Observation
/// happens at iteration granularity, outside the `axm`/`axm1` kernels, so
/// a cheap observer adds negligible cost; the unobserved solve paths
/// monomorphize the no-op observer away entirely.
pub trait IterationObserver<S> {
    /// Handle one iteration's observables.
    fn observe(&mut self, update: &IterationUpdate<'_, S>);
}

/// The do-nothing observer used by the plain solve paths.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl<S> IterationObserver<S> for NoopObserver {
    #[inline]
    fn observe(&mut self, _update: &IterationUpdate<'_, S>) {}
}

impl<S, F: FnMut(&IterationUpdate<'_, S>)> IterationObserver<S> for F {
    #[inline]
    fn observe(&mut self, update: &IterationUpdate<'_, S>) {
        self(update)
    }
}

/// When to stop iterating.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IterationPolicy {
    /// Stop when `|λ_{k+1} − λ_k|` falls below the tolerance, or after the
    /// maximum number of iterations, whichever comes first.
    Converge {
        /// Absolute tolerance on successive eigenvalue estimates.
        tol: f64,
        /// Hard iteration cap.
        max_iters: usize,
    },
    /// Run exactly this many iterations (the regime used for the paper's
    /// GPU throughput benchmarks, where every thread does identical work).
    Fixed(usize),
}

impl Default for IterationPolicy {
    fn default() -> Self {
        IterationPolicy::Converge {
            tol: 1e-10,
            max_iters: 1000,
        }
    }
}

/// A computed (approximate) eigenpair with solve metadata.
#[derive(Debug, Clone)]
pub struct Eigenpair<S> {
    /// Eigenvalue estimate `λ = A·xᵐ`.
    pub lambda: S,
    /// Unit eigenvector estimate.
    pub x: Vec<S>,
    /// Number of iterations performed.
    pub iterations: usize,
    /// Whether the convergence criterion was met (always `true` under
    /// [`IterationPolicy::Fixed`]).
    pub converged: bool,
    /// The (final) shift used.
    pub alpha: f64,
}

impl<S: Scalar> Eigenpair<S> {
    /// Eigenpair residual `‖A·xᵐ⁻¹ − λ·x‖₂`, the definitional measure of
    /// eigenpair quality (Definition 3 of the paper).
    ///
    /// Accepts anything that views as a packed tensor — `&SymTensor<S>` or
    /// a borrowed [`SymTensorRef`] straight out of a
    /// [`symtensor::TensorBatch`] arena.
    pub fn residual<'a>(&self, a: impl Into<SymTensorRef<'a, S>>) -> f64
    where
        S: 'a,
    {
        let a = a.into();
        let n = a.dim();
        let mut y = vec![S::ZERO; n];
        if symtensor::kernels::axm1(a, &self.x, &mut y).is_err() {
            // A residual cannot be evaluated against a mismatched tensor;
            // infinity keeps "smaller is better" orderings meaningful.
            return f64::INFINITY;
        }
        let mut acc = 0.0f64;
        for (yi, xi) in y.iter().zip(&self.x) {
            let d = yi.to_f64() - self.lambda.to_f64() * xi.to_f64();
            acc += d * d;
        }
        acc.sqrt()
    }

    /// True if the eigenvalue and every eigenvector component are finite.
    ///
    /// SS-HOPM with a valid (convex/concave) shift converges monotonically
    /// (Kolda–Mayo), so a NaN or infinity in the result is never a
    /// legitimate answer — it indicates corrupted input data or a diverged
    /// iteration, and resilient callers treat it as a detected fault.
    pub fn is_finite(&self) -> bool {
        self.lambda.is_finite() && self.x.iter().all(|v| v.is_finite())
    }

    /// The eigenpair with the eigenvector's sign flipped; for even tensor
    /// order this is an equally valid eigenpair (`λ, −x`), for odd order the
    /// eigenvalue flips too (`−λ, −x`).
    pub fn negated(&self, m: usize) -> Self {
        Self {
            lambda: if m.is_multiple_of(2) {
                self.lambda
            } else {
                -self.lambda
            },
            x: self.x.iter().map(|&v| -v).collect(),
            iterations: self.iterations,
            converged: self.converged,
            alpha: self.alpha,
        }
    }
}

/// The SS-HOPM solver: a shift policy plus an iteration policy.
#[derive(Debug, Clone, Copy)]
pub struct SsHopm {
    shift: Shift,
    policy: IterationPolicy,
}

impl SsHopm {
    /// Create a solver with the given shift policy and default convergence
    /// policy (`tol = 1e-10`, `max_iters = 1000`).
    pub fn new(shift: Shift) -> Self {
        Self {
            shift,
            policy: IterationPolicy::default(),
        }
    }

    /// Replace the convergence tolerance (keeps the iteration cap).
    pub fn with_tolerance(mut self, tol: f64) -> Self {
        if let IterationPolicy::Converge { max_iters, .. } = self.policy {
            self.policy = IterationPolicy::Converge { tol, max_iters };
        }
        self
    }

    /// Replace the iteration cap (keeps the tolerance).
    pub fn with_max_iters(mut self, max_iters: usize) -> Self {
        if let IterationPolicy::Converge { tol, .. } = self.policy {
            self.policy = IterationPolicy::Converge { tol, max_iters };
        }
        self
    }

    /// Replace the whole iteration policy.
    pub fn with_policy(mut self, policy: IterationPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The shift policy.
    pub fn shift(&self) -> Shift {
        self.shift
    }

    /// The iteration policy.
    pub fn policy(&self) -> IterationPolicy {
        self.policy
    }

    /// Run SS-HOPM from `x0` with the default on-the-fly kernels.
    ///
    /// Accepts `&SymTensor<S>` or a borrowed [`SymTensorRef`] (e.g. one
    /// tensor of a [`symtensor::TensorBatch`] arena) — no copy either way.
    ///
    /// A mismatched or zero `x0`, or a kernel/tensor shape mismatch, yields
    /// a *poisoned* eigenpair (`lambda = NaN`, `converged = false`,
    /// `iterations = 0`) rather than a panic, so batch drivers degrade
    /// per-tensor; see [`Eigenpair::is_finite`].
    pub fn solve<'a, S: Scalar>(
        &self,
        a: impl Into<SymTensorRef<'a, S>>,
        x0: &[S],
    ) -> Eigenpair<S> {
        self.solve_with(&GeneralKernels, a, x0)
    }

    /// Run SS-HOPM from `x0` using a caller-chosen kernel implementation
    /// (general / precomputed / unrolled).
    pub fn solve_with<'a, S: Scalar, K: TensorKernels<S> + ?Sized>(
        &self,
        kernels: &K,
        a: impl Into<SymTensorRef<'a, S>>,
        x0: &[S],
    ) -> Eigenpair<S> {
        self.solve_observed_with(kernels, a, x0, &mut NoopObserver)
    }

    /// Run SS-HOPM from `x0` with the default kernels, reporting every
    /// iteration to `observer`.
    pub fn solve_observed<'a, S: Scalar, O: IterationObserver<S>>(
        &self,
        a: impl Into<SymTensorRef<'a, S>>,
        x0: &[S],
        observer: &mut O,
    ) -> Eigenpair<S> {
        self.solve_observed_with(&GeneralKernels, a, x0, observer)
    }

    /// The fully general entry point: caller-chosen kernels plus an
    /// iteration observer. The observer sees the initial iterate (`k = 0`)
    /// and each subsequent iterate; observation sits outside the kernel
    /// inner loops, and with [`NoopObserver`] this monomorphizes to
    /// exactly the unobserved iteration.
    pub fn solve_observed_with<'a, S, K, O>(
        &self,
        kernels: &K,
        a: impl Into<SymTensorRef<'a, S>>,
        x0: &[S],
        observer: &mut O,
    ) -> Eigenpair<S>
    where
        S: Scalar,
        K: TensorKernels<S> + ?Sized,
        O: IterationObserver<S>,
    {
        self.solve_observed_with_scratch(kernels, a, x0, observer, &mut Vec::new())
    }

    /// [`solve_with`](Self::solve_with) reusing a caller-held iteration
    /// buffer. One SS-HOPM solve needs a single length-`n` work vector;
    /// batched drivers that solve hundreds of thousands of voxels pass
    /// the same `scratch` to every call so the solve path performs no
    /// per-voxel allocation beyond the returned eigenvector itself.
    pub fn solve_with_scratch<'a, S, K>(
        &self,
        kernels: &K,
        a: impl Into<SymTensorRef<'a, S>>,
        x0: &[S],
        scratch: &mut Vec<S>,
    ) -> Eigenpair<S>
    where
        S: Scalar,
        K: TensorKernels<S> + ?Sized,
    {
        self.solve_observed_with_scratch(kernels, a, x0, &mut NoopObserver, scratch)
    }

    /// [`solve_observed_with`](Self::solve_observed_with) reusing a
    /// caller-held iteration buffer (see
    /// [`solve_with_scratch`](Self::solve_with_scratch)); `scratch` is
    /// cleared and resized to `a.dim()` before use.
    pub fn solve_observed_with_scratch<'a, S, K, O>(
        &self,
        kernels: &K,
        a: impl Into<SymTensorRef<'a, S>>,
        x0: &[S],
        observer: &mut O,
        scratch: &mut Vec<S>,
    ) -> Eigenpair<S>
    where
        S: Scalar,
        K: TensorKernels<S> + ?Sized,
        O: IterationObserver<S> + ?Sized,
    {
        let a = a.into();
        let n = a.dim();
        let poisoned = |x: Vec<S>, alpha: f64| Eigenpair {
            lambda: S::from_f64(f64::NAN),
            x,
            iterations: 0,
            converged: false,
            alpha,
        };
        if x0.len() != n {
            return poisoned(vec![S::ZERO; n], 0.0);
        }
        let mut x = x0.to_vec();
        let nrm = normalize(&mut x);
        if nrm == S::ZERO {
            return poisoned(x, 0.0);
        }

        let (tol, max_iters) = match self.policy {
            IterationPolicy::Converge { tol, max_iters } => (tol, max_iters),
            IterationPolicy::Fixed(k) => (0.0, k),
        };
        let converge_mode = matches!(self.policy, IterationPolicy::Converge { .. });

        let mut lambda = match kernels.axm(a, &x) {
            Ok(v) => v,
            Err(_) => return poisoned(x, 0.0),
        };
        let mut alpha = self.shift.value_at(a, &x);
        observer.observe(&IterationUpdate {
            k: 0,
            lambda: lambda.to_f64(),
            alpha,
            x: &x,
        });
        scratch.clear();
        scratch.resize(n, S::ZERO);
        let y = scratch;
        let mut iterations = 0;
        let mut converged = false;

        for _ in 0..max_iters {
            // x̂ ← A x^{m-1} + α x   (negated when α < 0).
            if kernels.axm1(a, &x, y).is_err() {
                return poisoned(x, alpha);
            }
            let alpha_s = S::from_f64(alpha);
            if alpha >= 0.0 {
                for (yi, &xi) in y.iter_mut().zip(x.iter()) {
                    *yi += alpha_s * xi;
                }
            } else {
                for (yi, &xi) in y.iter_mut().zip(x.iter()) {
                    *yi = -(*yi + alpha_s * xi);
                }
            }
            let nrm = norm2(y);
            if nrm == S::ZERO {
                // Degenerate: A x^{m-1} = -alpha x exactly. x is already an
                // eigenvector of the shifted map; stop here.
                iterations += 1;
                converged = converge_mode;
                break;
            }
            for (xi, &yi) in x.iter_mut().zip(y.iter()) {
                *xi = yi / nrm;
            }
            let new_lambda = match kernels.axm(a, &x) {
                Ok(v) => v,
                Err(_) => return poisoned(x, alpha),
            };
            iterations += 1;
            observer.observe(&IterationUpdate {
                k: iterations,
                lambda: new_lambda.to_f64(),
                alpha,
                x: &x,
            });
            if converge_mode && (new_lambda - lambda).abs().to_f64() <= tol {
                lambda = new_lambda;
                converged = true;
                break;
            }
            lambda = new_lambda;
            // Adaptive policy re-evaluates the shift at the new iterate.
            if self.shift.fixed_value(a).is_none() {
                alpha = self.shift.value_at(a, &x);
            }
        }

        Eigenpair {
            lambda,
            x,
            iterations,
            converged: converged || !converge_mode,
            alpha,
        }
    }

    /// Solve and also record the eigenvalue estimate at every iteration
    /// (for convergence plots and the shift ablation bench).
    pub fn solve_traced<'a, S: Scalar>(
        &self,
        a: impl Into<SymTensorRef<'a, S>>,
        x0: &[S],
    ) -> (Eigenpair<S>, Vec<f64>) {
        let mut trace = Vec::new();
        let pair = self.solve_observed(a, x0, &mut |u: &IterationUpdate<'_, S>| {
            trace.push(u.lambda);
        });
        (pair, trace)
    }

    /// Solve and record a full per-iteration [`ConvergenceTrace`]
    /// (λ, shift, and — when `with_residuals` — the eigenpair residual,
    /// which costs one extra `axm1` per iteration).
    pub fn solve_convergence_trace<'a, S: Scalar>(
        &self,
        a: impl Into<SymTensorRef<'a, S>>,
        x0: &[S],
        with_residuals: bool,
    ) -> (Eigenpair<S>, ConvergenceTrace) {
        let a = a.into();
        let mut trace = ConvergenceTrace::new();
        let pair = self.solve_observed(a, x0, &mut |u: &IterationUpdate<'_, S>| {
            let residual = with_residuals.then(|| {
                let probe = Eigenpair {
                    lambda: S::from_f64(u.lambda),
                    x: u.x.to_vec(),
                    iterations: u.k,
                    converged: false,
                    alpha: u.alpha,
                };
                probe.residual(a)
            });
            trace.push(IterationRecord {
                k: u.k,
                lambda: u.lambda,
                alpha: u.alpha,
                residual,
            });
        });
        (pair, trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use symtensor::{PrecomputedTables, SymTensor};

    fn random_tensor(m: usize, n: usize, seed: u64) -> SymTensor<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        SymTensor::random(m, n, &mut rng)
    }

    #[test]
    fn matrix_case_recovers_dominant_eigenpair() {
        // m=2 with alpha=0 is the classical power method. diag(3, 1):
        // dominant eigenpair (3, e_0).
        let mut a = SymTensor::<f64>::zeros(2, 2);
        a.set(&[0, 0], 3.0).unwrap();
        a.set(&[1, 1], 1.0).unwrap();
        let solver = SsHopm::new(Shift::Fixed(0.0)).with_tolerance(1e-14);
        let pair = solver.solve(&a, &[0.5, 0.5]);
        assert!(pair.converged);
        assert!((pair.lambda - 3.0).abs() < 1e-6);
        assert!(pair.x[0].abs() > 0.999);
    }

    #[test]
    fn converged_pairs_satisfy_eigen_equation() {
        for seed in 0..5 {
            let a = random_tensor(4, 3, seed);
            let solver = SsHopm::new(Shift::Convex).with_tolerance(1e-13);
            let pair = solver.solve(&a, &[0.3, -0.5, 0.8]);
            assert!(pair.converged, "seed {seed}");
            assert!(
                pair.residual(&a) < 1e-5,
                "seed {seed}: {}",
                pair.residual(&a)
            );
            // Unit eigenvector.
            let nrm: f64 = pair.x.iter().map(|v| v * v).sum::<f64>().sqrt();
            assert!((nrm - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn convex_shift_converges_monotonically() {
        let a = random_tensor(4, 3, 10);
        let solver = SsHopm::new(Shift::Convex).with_tolerance(1e-13);
        let (_, trace) = solver.solve_traced(&a, &[1.0, 1.0, 1.0]);
        // Kolda-Mayo: with alpha above the convexity bound, lambda_k is
        // nondecreasing.
        for w in trace.windows(2) {
            assert!(w[1] >= w[0] - 1e-10, "{} -> {}", w[0], w[1]);
        }
    }

    #[test]
    fn concave_shift_converges_to_local_minimum() {
        let a = random_tensor(4, 3, 11);
        let up = SsHopm::new(Shift::Convex).solve(&a, &[0.2, 0.3, 0.9]);
        let down = SsHopm::new(Shift::Concave).solve(&a, &[0.2, 0.3, 0.9]);
        assert!(down.lambda <= up.lambda);
        let (_, trace) = SsHopm::new(Shift::Concave).solve_traced(&a, &[0.2, 0.3, 0.9]);
        for w in trace.windows(2) {
            assert!(w[1] <= w[0] + 1e-10);
        }
    }

    #[test]
    fn adaptive_shift_converges_at_least_as_fast_as_fixed_bound() {
        let mut fixed_total = 0usize;
        let mut adaptive_total = 0usize;
        for seed in 20..30 {
            let a = random_tensor(4, 3, seed);
            let x0 = [0.6, -0.7, 0.4];
            let fixed = SsHopm::new(Shift::Convex)
                .with_tolerance(1e-12)
                .solve(&a, &x0);
            let adaptive = SsHopm::new(Shift::Adaptive)
                .with_tolerance(1e-12)
                .solve(&a, &x0);
            assert!(adaptive.converged && fixed.converged, "seed {seed}");
            assert!(adaptive.residual(&a) < 1e-4);
            fixed_total += fixed.iterations;
            adaptive_total += adaptive.iterations;
        }
        assert!(
            adaptive_total <= fixed_total,
            "adaptive {adaptive_total} vs fixed {fixed_total}"
        );
    }

    #[test]
    fn fixed_policy_runs_exact_iteration_count() {
        let a = random_tensor(4, 3, 31);
        let solver = SsHopm::new(Shift::Fixed(0.0)).with_policy(IterationPolicy::Fixed(17));
        let pair = solver.solve(&a, &[1.0, 0.0, 0.0]);
        assert_eq!(pair.iterations, 17);
        assert!(pair.converged, "fixed policy always reports success");
    }

    #[test]
    fn unconverged_solve_is_reported() {
        let a = random_tensor(4, 3, 32);
        let solver = SsHopm::new(Shift::Convex)
            .with_tolerance(0.0)
            .with_max_iters(2);
        let pair = solver.solve(&a, &[1.0, 1.0, 1.0]);
        assert!(!pair.converged);
        assert_eq!(pair.iterations, 2);
    }

    #[test]
    fn precomputed_kernels_give_identical_trajectory() {
        let a = random_tensor(4, 3, 33);
        let tables = PrecomputedTables::new(4, 3);
        let solver = SsHopm::new(Shift::Convex).with_tolerance(1e-13);
        let p1 = solver.solve(&a, &[0.1, 0.2, 0.97]);
        let p2 = solver.solve_with(&tables, &a, &[0.1, 0.2, 0.97]);
        assert!((p1.lambda - p2.lambda).abs() < 1e-12);
        for (a1, b1) in p1.x.iter().zip(&p2.x) {
            assert!((a1 - b1).abs() < 1e-12);
        }
    }

    #[test]
    fn rank_one_tensor_recovers_its_vector() {
        // A = v^(x)m: lambda_max = 1 with eigenvector v (for unit v).
        let mut v = vec![0.6, -0.8, 0.0];
        symtensor::scalar::normalize(&mut v);
        let a = SymTensor::<f64>::rank_one(4, &v);
        let pair = SsHopm::new(Shift::Convex)
            .with_tolerance(1e-14)
            .solve(&a, &[1.0, 1.0, 1.0]);
        assert!((pair.lambda - 1.0).abs() < 1e-6, "{}", pair.lambda);
        let dot: f64 = pair.x.iter().zip(&v).map(|(a, b)| a * b).sum();
        assert!(dot.abs() > 0.9999, "{dot}");
    }

    #[test]
    fn negated_eigenpair_is_valid_for_even_order() {
        let a = random_tensor(4, 3, 34);
        let pair = SsHopm::new(Shift::Convex)
            .with_tolerance(1e-14)
            .solve(&a, &[0.3, 0.3, 0.9]);
        let neg = pair.negated(4);
        assert_eq!(neg.lambda, pair.lambda);
        // For even order the sign-flipped pair has the identical residual.
        assert!((neg.residual(&a) - pair.residual(&a)).abs() < 1e-12);
        assert!(neg.residual(&a) < 1e-5, "{}", neg.residual(&a));
    }

    #[test]
    fn negated_eigenpair_flips_lambda_for_odd_order() {
        let a = random_tensor(3, 3, 35);
        let pair = SsHopm::new(Shift::Convex)
            .with_tolerance(1e-13)
            .solve(&a, &[0.3, 0.3, 0.9]);
        let neg = pair.negated(3);
        assert_eq!(neg.lambda, -pair.lambda);
        assert!(neg.residual(&a) < 1e-5);
    }

    #[test]
    fn f32_solve_matches_f64_to_single_precision() {
        let a64 = random_tensor(4, 3, 36);
        let a32 = a64.to_f32();
        let s = SsHopm::new(Shift::Convex).with_tolerance(1e-6);
        let p64 = s.solve(&a64, &[0.5, 0.5, 0.7]);
        let p32 = s.solve(&a32, &[0.5f32, 0.5, 0.7]);
        assert!((p64.lambda - p32.lambda as f64).abs() < 1e-3);
    }

    #[test]
    fn zero_starting_vector_poisons_result() {
        let a = random_tensor(4, 3, 37);
        let pair = SsHopm::new(Shift::Convex).solve(&a, &[0.0, 0.0, 0.0]);
        assert!(pair.lambda.is_nan());
        assert!(!pair.converged);
        assert_eq!(pair.iterations, 0);
        assert!(!pair.is_finite());
    }

    #[test]
    fn wrong_length_start_poisons_result() {
        let a = random_tensor(4, 3, 38);
        let pair = SsHopm::new(Shift::Convex).solve(&a, &[1.0, 0.0]);
        assert!(pair.lambda.is_nan());
        assert!(!pair.converged);
        assert_eq!(pair.iterations, 0);
    }

    #[test]
    fn traced_solve_matches_untraced() {
        let a = random_tensor(4, 3, 39);
        let solver = SsHopm::new(Shift::Convex).with_tolerance(1e-12);
        let plain = solver.solve(&a, &[0.9, 0.1, 0.4]);
        let (traced, trace) = solver.solve_traced(&a, &[0.9, 0.1, 0.4]);
        assert!((plain.lambda - traced.lambda).abs() < 1e-12);
        assert_eq!(plain.iterations, traced.iterations);
        assert_eq!(trace.len(), traced.iterations + 1);
    }
}
