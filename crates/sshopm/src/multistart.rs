//! Multistart driver: run SS-HOPM from many starting vectors and
//! deduplicate the converged eigenpairs into a spectrum.
//!
//! For a symmetric order-`m`, dimension-`n` tensor there are at most
//! `((m−1)ⁿ − 1)/(m−2)` distinct complex eigenpairs (Cartwright &
//! Sturmfels); the real ones reachable by SS-HOPM are found by sphere
//! coverage. Deduplication must respect the sign symmetry: for even `m`,
//! `(λ, −x)` is the same eigenpair as `(λ, x)`; for odd `m` the negation is
//! `(−λ, −x)`.

use crate::classify::{classify, Stability};
use crate::solver::Eigenpair;
use crate::traits::Solver;
use symtensor::{Scalar, SymTensorRef};

/// Tolerances used to decide two converged eigenpairs are the same.
#[derive(Debug, Clone, Copy)]
pub struct DedupConfig {
    /// Relative tolerance on eigenvalues: two values match when their
    /// difference is within `lambda_tol · max(1, |λ₁|, |λ₂|)`, so the
    /// test is scale-invariant for large spectra and degrades gracefully
    /// to an absolute test near zero.
    pub lambda_tol: f64,
    /// Euclidean tolerance on (unit) eigenvectors, after sign alignment.
    pub vector_tol: f64,
}

impl Default for DedupConfig {
    fn default() -> Self {
        Self {
            lambda_tol: 1e-6,
            vector_tol: 1e-4,
        }
    }
}

/// A deduplicated eigenpair with its classification and multiplicity
/// (how many starting vectors converged to it — a proxy for the size of its
/// basin of attraction).
#[derive(Debug, Clone)]
pub struct SpectrumEntry<S> {
    /// The representative eigenpair (first one found).
    pub pair: Eigenpair<S>,
    /// Stability classification.
    pub stability: Stability,
    /// Number of starts that converged to this eigenpair.
    pub basin_count: usize,
}

/// The result of a multistart sweep.
#[derive(Debug, Clone)]
pub struct Spectrum<S> {
    /// Distinct eigenpairs, sorted by descending eigenvalue.
    pub entries: Vec<SpectrumEntry<S>>,
    /// Number of starts that failed to converge.
    pub failures: usize,
    /// Total number of starts attempted.
    pub total_starts: usize,
}

impl<S: Scalar> Spectrum<S> {
    /// The eigenpairs classified as local maxima, descending by eigenvalue.
    pub fn local_maxima(&self) -> impl Iterator<Item = &SpectrumEntry<S>> {
        self.entries.iter().filter(|e| e.stability.is_local_max())
    }

    /// The largest eigenvalue found (`None` if nothing converged).
    pub fn max_lambda(&self) -> Option<S> {
        self.entries.first().map(|e| e.pair.lambda)
    }
}

/// True if `(l1, x1)` and `(l2, x2)` represent the same eigenpair of an
/// order-`m` tensor, modulo the sign symmetry.
fn same_pair<S: Scalar>(m: usize, l1: S, x1: &[S], l2: S, x2: &[S], cfg: &DedupConfig) -> bool {
    // Relative λ tolerance: eigenvalues scale with ‖A‖, so an absolute
    // test either over-merges small spectra or splits large ones. The
    // max(1, ·) floor keeps near-zero eigenvalues on an absolute scale.
    let scale = l1.to_f64().abs().max(l2.to_f64().abs()).max(1.0);
    let lambda_tol = cfg.lambda_tol * scale;
    let d_direct = vec_dist(x1, x2);
    let d_flipped = vec_dist_neg(x1, x2);
    if m.is_multiple_of(2) {
        // (lambda, x) == (lambda, -x).
        (l1 - l2).abs().to_f64() <= lambda_tol && d_direct.min(d_flipped) <= cfg.vector_tol
    } else {
        // (lambda, x) == itself, and (-lambda, -x) is its mirror.
        let direct = (l1 - l2).abs().to_f64() <= lambda_tol && d_direct <= cfg.vector_tol;
        let mirrored = (l1 + l2).abs().to_f64() <= lambda_tol && d_flipped <= cfg.vector_tol;
        direct || mirrored
    }
}

fn vec_dist<S: Scalar>(a: &[S], b: &[S]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(&p, &q)| {
            let d = p.to_f64() - q.to_f64();
            d * d
        })
        .sum::<f64>()
        .sqrt()
}

fn vec_dist_neg<S: Scalar>(a: &[S], b: &[S]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(&p, &q)| {
            let d = p.to_f64() + q.to_f64();
            d * d
        })
        .sum::<f64>()
        .sqrt()
}

/// Run any [`Solver`] from every start in `starts` and collect the
/// deduplicated spectrum. Unconverged runs are counted but not included.
/// `classify_tol` is forwarded to [`classify`].
pub fn multistart<'a, S: Scalar, V: Solver<S> + ?Sized>(
    solver: &V,
    a: impl Into<SymTensorRef<'a, S>>,
    starts: &[Vec<S>],
    cfg: &DedupConfig,
    classify_tol: f64,
) -> Spectrum<S> {
    let a = a.into();
    spectrum_from_pairs(
        a,
        starts.iter().map(|x0| solver.solve_pair(a, x0)),
        cfg,
        classify_tol,
    )
}

/// Build a deduplicated [`Spectrum`] from eigenpairs that were already
/// computed — the dedup/classify half of [`multistart`], decoupled from the
/// solving half so the pairs can come from any execution backend (the
/// batched CPU driver, the simulated GPU, a multi-device split, ...).
///
/// Unconverged pairs are counted as failures and excluded, exactly as in
/// [`multistart`]; `total_starts` is the number of pairs consumed.
pub fn spectrum_from_pairs<'a, S: Scalar, I>(
    a: impl Into<SymTensorRef<'a, S>>,
    pairs: I,
    cfg: &DedupConfig,
    classify_tol: f64,
) -> Spectrum<S>
where
    I: IntoIterator<Item = Eigenpair<S>>,
{
    let a = a.into();
    let m = a.order();
    let mut entries: Vec<SpectrumEntry<S>> = Vec::new();
    let mut failures = 0usize;
    let mut total_starts = 0usize;

    for pair in pairs {
        total_starts += 1;
        if !pair.converged {
            failures += 1;
            continue;
        }
        let mut merged = false;
        for entry in &mut entries {
            if same_pair(
                m,
                entry.pair.lambda,
                &entry.pair.x,
                pair.lambda,
                &pair.x,
                cfg,
            ) {
                entry.basin_count += 1;
                merged = true;
                break;
            }
        }
        if !merged {
            let stability = classify(a, pair.lambda, &pair.x, classify_tol);
            entries.push(SpectrumEntry {
                pair,
                stability,
                basin_count: 1,
            });
        }
    }

    entries.sort_by(|a, b| {
        b.pair
            .lambda
            .partial_cmp(&a.pair.lambda)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    Spectrum {
        entries,
        failures,
        total_starts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shift::Shift;
    use crate::solver::SsHopm;
    use crate::starts::{fibonacci_sphere, random_uniform_starts};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use symtensor::SymTensor;

    #[test]
    fn matrix_spectrum_recovers_all_eigenvalues() {
        // diag(3, 2, 1) with convex shift: local max is 3. With enough
        // starts and both shifts we can see 3 and 1; 2 is a saddle.
        let mut a = SymTensor::<f64>::zeros(2, 3);
        a.set(&[0, 0], 3.0).unwrap();
        a.set(&[1, 1], 2.0).unwrap();
        a.set(&[2, 2], 1.0).unwrap();
        let starts = fibonacci_sphere::<f64>(64);
        let up = multistart(
            &SsHopm::new(Shift::Convex).with_tolerance(1e-14),
            &a,
            &starts,
            &DedupConfig::default(),
            1e-6,
        );
        assert!(up.failures == 0);
        assert!((up.max_lambda().unwrap() - 3.0).abs() < 1e-6);
        let down = multistart(
            &SsHopm::new(Shift::Concave).with_tolerance(1e-14),
            &a,
            &starts,
            &DedupConfig::default(),
            1e-6,
        );
        let min = down.entries.last().unwrap().pair.lambda;
        assert!((min - 1.0).abs() < 1e-6);
    }

    #[test]
    fn dedup_collapses_repeated_basins() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = SymTensor::<f64>::random(4, 3, &mut rng);
        let starts = random_uniform_starts::<f64, _>(3, 128, &mut rng);
        let spectrum = multistart(
            &SsHopm::new(Shift::Convex).with_tolerance(1e-13),
            &a,
            &starts,
            &DedupConfig::default(),
            1e-5,
        );
        // Far fewer distinct pairs than starts; all basins accounted for.
        assert!(spectrum.entries.len() < 20, "{}", spectrum.entries.len());
        let total: usize = spectrum.entries.iter().map(|e| e.basin_count).sum();
        assert_eq!(total + spectrum.failures, 128);
        // Entries are sorted by descending lambda.
        for w in spectrum.entries.windows(2) {
            assert!(w[0].pair.lambda >= w[1].pair.lambda);
        }
        // Every reported pair satisfies the eigen equation.
        for e in &spectrum.entries {
            assert!(e.pair.residual(&a) < 1e-5);
        }
    }

    #[test]
    fn eigenpair_count_respects_cartwright_sturmfels_bound() {
        // (m-1)^n - 1) / (m-2) complex pairs bounds the real count;
        // for m=4, n=3: (3^3-1)/2 = 13. With even m, +/-x are identified,
        // so we can see at most 13 distinct classes.
        let mut rng = StdRng::seed_from_u64(6);
        let a = SymTensor::<f64>::random(4, 3, &mut rng);
        let starts = random_uniform_starts::<f64, _>(3, 256, &mut rng);
        let both: Vec<SpectrumEntry<f64>> = {
            let mut all = Vec::new();
            for shift in [Shift::Convex, Shift::Concave] {
                let s = multistart(
                    &SsHopm::new(shift).with_tolerance(1e-13),
                    &a,
                    &starts,
                    &DedupConfig::default(),
                    1e-5,
                );
                all.extend(s.entries);
            }
            all
        };
        assert!(both.len() <= 13, "found {} pairs", both.len());
    }

    #[test]
    fn lambda_dedup_tolerance_is_relative() {
        let cfg = DedupConfig::default();
        let x = vec![0.6f64, 0.8, 0.0];
        // |Δλ| = 50 but relative to |λ| ≈ 1e9 that is 5e-8 < 1e-6: same.
        assert!(same_pair(4, 1.0e9, &x, 1.0e9 + 50.0, &x, &cfg));
        // Near zero the floor keeps the test absolute: 5e-7 < 1e-6 merges,
        // 5e-6 does not.
        assert!(same_pair(4, 0.0, &x, 5.0e-7, &x, &cfg));
        assert!(!same_pair(4, 0.0, &x, 5.0e-6, &x, &cfg));
        // A genuinely different large eigenvalue still splits.
        assert!(!same_pair(4, 1.0e9, &x, 1.001e9, &x, &cfg));
    }

    #[test]
    fn multistart_accepts_any_solver() {
        // The driver is generic in the iteration: GEAP through a trait
        // object must find the dominant local maximum of diag(3, 2, 1)
        // exactly as SS-HOPM does.
        let mut a = SymTensor::<f64>::zeros(2, 3);
        a.set(&[0, 0], 3.0).unwrap();
        a.set(&[1, 1], 2.0).unwrap();
        a.set(&[2, 2], 1.0).unwrap();
        let starts = fibonacci_sphere::<f64>(32);
        let geap: Box<dyn crate::traits::Solver<f64>> =
            Box::new(crate::geap::Geap::new().with_tolerance(1e-14));
        let spectrum = multistart(&*geap, &a, &starts, &DedupConfig::default(), 1e-6);
        assert!((spectrum.max_lambda().unwrap() - 3.0).abs() < 1e-6);
    }

    #[test]
    fn even_order_sign_flip_is_same_pair() {
        let cfg = DedupConfig::default();
        let x = vec![0.6f64, 0.8, 0.0];
        let neg: Vec<f64> = x.iter().map(|v| -v).collect();
        assert!(same_pair(4, 1.5, &x, 1.5, &neg, &cfg));
        assert!(!same_pair(4, 1.5, &x, -1.5, &neg, &cfg));
    }

    #[test]
    fn odd_order_mirror_is_same_pair() {
        let cfg = DedupConfig::default();
        let x = vec![0.6f64, 0.8, 0.0];
        let neg: Vec<f64> = x.iter().map(|v| -v).collect();
        assert!(same_pair(3, 1.5, &x, -1.5, &neg, &cfg));
        assert!(!same_pair(3, 1.5, &x, 1.5, &neg, &cfg));
    }

    #[test]
    fn local_maxima_filter() {
        let mut a = SymTensor::<f64>::zeros(2, 3);
        a.set(&[0, 0], 3.0).unwrap();
        a.set(&[1, 1], 2.0).unwrap();
        a.set(&[2, 2], 1.0).unwrap();
        let starts = fibonacci_sphere::<f64>(64);
        let spectrum = multistart(
            &SsHopm::new(Shift::Convex).with_tolerance(1e-14),
            &a,
            &starts,
            &DedupConfig::default(),
            1e-6,
        );
        let maxima: Vec<_> = spectrum.local_maxima().collect();
        assert_eq!(maxima.len(), 1);
        assert!((maxima[0].pair.lambda - 3.0).abs() < 1e-6);
    }

    #[test]
    fn spectrum_from_pairs_matches_multistart() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = SymTensor::<f64>::random(4, 3, &mut rng);
        let starts = random_uniform_starts::<f64, _>(3, 64, &mut rng);
        let solver = SsHopm::new(Shift::Convex).with_tolerance(1e-13);
        let direct = multistart(&solver, &a, &starts, &DedupConfig::default(), 1e-5);
        let pairs: Vec<_> = starts.iter().map(|x0| solver.solve(&a, x0)).collect();
        let rebuilt = spectrum_from_pairs(&a, pairs, &DedupConfig::default(), 1e-5);
        assert_eq!(direct.entries.len(), rebuilt.entries.len());
        assert_eq!(direct.failures, rebuilt.failures);
        assert_eq!(direct.total_starts, rebuilt.total_starts);
        for (d, r) in direct.entries.iter().zip(&rebuilt.entries) {
            assert_eq!(d.pair.lambda, r.pair.lambda);
            assert_eq!(d.basin_count, r.basin_count);
            assert_eq!(d.stability, r.stability);
        }
    }

    #[test]
    fn empty_starts_give_empty_spectrum() {
        let a = SymTensor::<f64>::diagonal_ones(4, 3);
        let spectrum = multistart(
            &SsHopm::new(Shift::Convex),
            &a,
            &[],
            &DedupConfig::default(),
            1e-6,
        );
        assert!(spectrum.entries.is_empty());
        assert_eq!(spectrum.total_starts, 0);
        assert!(spectrum.max_lambda().is_none());
    }
}
