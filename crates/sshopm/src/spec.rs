//! The [`SolverSpec`] string grammar — `sshopm[:alpha]`, `geap`,
//! `qrst` — the solver-selection analogue of the backend crate's
//! `BackendSpec`. CLIs and benchmark drivers parse one token into a
//! spec, then [`SolverSpec::build`] it into a boxed [`Solver`].

use crate::geap::Geap;
use crate::qrst::Qrst;
use crate::shift::Shift;
use crate::solver::{IterationPolicy, SsHopm};
use crate::traits::Solver;
use symtensor::Scalar;

/// The forms a spec string may take, quoted in every parse error so the
/// message names the valid alternatives.
const VALID_FORMS: &str = "expected \"sshopm[:alpha]\", \"geap\" or \"qrst\"";

/// A parse error for a malformed solver spec string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SolverSpecError(pub String);

impl std::fmt::Display for SolverSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for SolverSpecError {}

/// A declarative solver choice, parsed from a string such as `sshopm`,
/// `sshopm:2.5`, `geap` or `qrst`.
///
/// `sshopm` without an explicit alpha defers the shift choice to the
/// caller (the CLI's `--shift` option, [`Shift::Convex`] by default in
/// the fiber pipeline), so the default spec is exactly the pre-trait
/// solver configuration; `sshopm:ALPHA` pins [`Shift::Fixed`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SolverSpec {
    /// Shifted power iteration; `alpha: None` uses the caller's shift
    /// policy, `Some(a)` forces `Shift::Fixed(a)`.
    SsHopm {
        /// Explicit fixed shift, if the spec carried one.
        alpha: Option<f64>,
    },
    /// Adaptive-shift GEAP (per-iteration projected-Hessian shift).
    Geap,
    /// Orthogonal-similarity QR iteration on a dense copy.
    Qrst,
}

impl Default for SolverSpec {
    fn default() -> Self {
        SolverSpec::SsHopm { alpha: None }
    }
}

impl SolverSpec {
    /// Parse a spec string. Errors are descriptive and name the valid
    /// alternatives.
    pub fn parse(s: &str) -> Result<SolverSpec, SolverSpecError> {
        let mut parts = s.split(':');
        let head = parts.next().unwrap_or("");
        let param = parts.next();
        if parts.next().is_some() {
            return Err(SolverSpecError(format!(
                "too many \":\" segments in solver spec {s:?}: {VALID_FORMS}"
            )));
        }
        match head {
            "sshopm" => match param {
                None => Ok(SolverSpec::SsHopm { alpha: None }),
                Some(v) => match v.parse::<f64>() {
                    Ok(alpha) => Ok(SolverSpec::SsHopm { alpha: Some(alpha) }),
                    Err(_) => Err(SolverSpecError(format!(
                        "invalid sshopm shift {v:?} in {s:?}: the parameter must be a \
                         float alpha, as in \"sshopm:2.5\"; {VALID_FORMS}"
                    ))),
                },
            },
            "geap" | "qrst" => {
                if let Some(v) = param {
                    return Err(SolverSpecError(format!(
                        "solver {head:?} takes no parameter, got {v:?}: {VALID_FORMS}"
                    )));
                }
                Ok(if head == "geap" {
                    SolverSpec::Geap
                } else {
                    SolverSpec::Qrst
                })
            }
            other => Err(SolverSpecError(format!(
                "unknown solver {other:?}: {VALID_FORMS}"
            ))),
        }
    }

    /// Build the solver this spec describes. `default_shift` is the
    /// shift policy used by `sshopm` when the spec carries no explicit
    /// alpha; `policy` applies to every solver.
    pub fn build<S: Scalar>(
        &self,
        default_shift: Shift,
        policy: IterationPolicy,
    ) -> Box<dyn Solver<S>> {
        match *self {
            SolverSpec::SsHopm { alpha } => {
                let shift = match alpha {
                    Some(a) => Shift::Fixed(a),
                    None => default_shift,
                };
                Box::new(SsHopm::new(shift).with_policy(policy))
            }
            SolverSpec::Geap => Box::new(Geap::new().with_policy(policy)),
            SolverSpec::Qrst => Box::new(Qrst::new().with_policy(policy)),
        }
    }

    /// The solver's short machine name (matches [`Solver::name`]).
    pub fn name(&self) -> &'static str {
        match self {
            SolverSpec::SsHopm { .. } => "sshopm",
            SolverSpec::Geap => "geap",
            SolverSpec::Qrst => "qrst",
        }
    }
}

impl std::fmt::Display for SolverSpec {
    /// The canonical spec string; parsing it back yields the same value.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolverSpec::SsHopm { alpha: None } => write!(f, "sshopm"),
            SolverSpec::SsHopm { alpha: Some(a) } => write!(f, "sshopm:{a}"),
            SolverSpec::Geap => write!(f, "geap"),
            SolverSpec::Qrst => write!(f, "qrst"),
        }
    }
}

impl std::str::FromStr for SolverSpec {
    type Err = SolverSpecError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        SolverSpec::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_documented_grammar() {
        assert_eq!(
            SolverSpec::parse("sshopm"),
            Ok(SolverSpec::SsHopm { alpha: None })
        );
        assert_eq!(
            SolverSpec::parse("sshopm:2.5"),
            Ok(SolverSpec::SsHopm { alpha: Some(2.5) })
        );
        assert_eq!(
            SolverSpec::parse("sshopm:-1"),
            Ok(SolverSpec::SsHopm { alpha: Some(-1.0) })
        );
        assert_eq!(SolverSpec::parse("geap"), Ok(SolverSpec::Geap));
        assert_eq!(SolverSpec::parse("qrst"), Ok(SolverSpec::Qrst));
        assert_eq!(SolverSpec::default(), SolverSpec::SsHopm { alpha: None });
    }

    #[test]
    fn rejects_malformed_specs_with_errors_naming_alternatives() {
        for bad in [
            "",
            "sshopm:",
            "sshopm:abc",
            "sshopm:1:2",
            "geap:1",
            "qrst:x",
            "newton",
            ":sshopm",
        ] {
            let err = match SolverSpec::parse(bad) {
                Err(e) => e,
                Ok(spec) => panic!("{bad:?} parsed as {spec:?}"),
            };
            let msg = err.to_string();
            for needle in ["sshopm[:alpha]", "geap", "qrst"] {
                assert!(
                    msg.contains(needle),
                    "error for {bad:?} missing {needle}: {msg}"
                );
            }
        }
    }

    #[test]
    fn display_is_canonical_and_reparses() {
        for spec in [
            SolverSpec::SsHopm { alpha: None },
            SolverSpec::SsHopm { alpha: Some(0.0) },
            SolverSpec::SsHopm { alpha: Some(-3.25) },
            SolverSpec::Geap,
            SolverSpec::Qrst,
        ] {
            let rendered = spec.to_string();
            assert_eq!(rendered.parse::<SolverSpec>(), Ok(spec), "{rendered}");
        }
    }

    #[test]
    fn build_honors_explicit_alpha_and_default_shift() {
        let policy = IterationPolicy::Fixed(7);
        let fixed = SolverSpec::SsHopm { alpha: Some(1.5) }.build::<f64>(Shift::Convex, policy);
        assert_eq!(fixed.fixed_shift(), Some(1.5));
        assert_eq!(fixed.policy(), policy);
        let deferred = SolverSpec::SsHopm { alpha: None }.build::<f64>(Shift::Fixed(0.25), policy);
        assert_eq!(deferred.fixed_shift(), Some(0.25));
        for (spec, name) in [(SolverSpec::Geap, "geap"), (SolverSpec::Qrst, "qrst")] {
            let solver = spec.build::<f64>(Shift::Convex, policy);
            assert_eq!(solver.name(), name);
            assert_eq!(solver.fixed_shift(), None);
            assert_eq!(solver.policy(), policy);
        }
    }
}
