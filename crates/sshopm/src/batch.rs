//! Batched solves: the paper's workload shape — many independent small
//! tensors (DW-MRI voxels), each solved from many starting vectors.
//!
//! The CPU parallelization mirrors the paper's OpenMP `omp for` over the
//! tensor loop: rayon's `par_iter` over tensors, each worker running all
//! starting vectors for its tensor sequentially. Every tensor shares the
//! same set of starting vectors (Section V-C: "every thread block can use
//! the same set of starting vectors").

use crate::solver::{Eigenpair, NoopObserver, SsHopm};
use crate::traits::Solver;
use rayon::prelude::*;
use std::time::Instant;
use symtensor::kernels::{GeneralKernels, TensorKernels};
use symtensor::{Scalar, SymTensorRef, TensorBatchRef};
use telemetry::Telemetry;

/// Results of a batched solve: `results[t][v]` is the eigenpair computed
/// for tensor `t` from starting vector `v`.
#[derive(Debug, Clone)]
pub struct BatchResult<S> {
    /// Per-tensor, per-start eigenpairs.
    pub results: Vec<Vec<Eigenpair<S>>>,
    /// Total SS-HOPM iterations across all solves (for flop accounting).
    pub total_iterations: u64,
}

impl<S: Scalar> BatchResult<S> {
    /// Flatten to `(tensor index, start index, eigenpair)` triples.
    pub fn iter_flat(&self) -> impl Iterator<Item = (usize, usize, &Eigenpair<S>)> {
        self.results
            .iter()
            .enumerate()
            .flat_map(|(t, row)| row.iter().enumerate().map(move |(v, p)| (t, v, p)))
    }

    /// Number of tensors solved.
    pub fn num_tensors(&self) -> usize {
        self.results.len()
    }
}

/// Batched eigensolver driver over a set of same-shaped tensors, generic
/// in the per-tensor iteration `V` (any [`Solver`] — [`SsHopm`] by
/// default, [`crate::Geap`], [`crate::Qrst`], or a boxed/borrowed trait
/// object for runtime selection).
#[derive(Debug, Clone, Copy)]
pub struct BatchSolver<V = SsHopm> {
    solver: V,
    /// Number of worker threads: `1` for the sequential baseline, `k` for
    /// the paper's 4-core / 8-core configurations, `0` for "all cores".
    pub threads: usize,
}

impl<V> BatchSolver<V> {
    /// Create a batch driver around a configured per-tensor solver.
    pub fn new(solver: V) -> Self {
        Self { solver, threads: 0 }
    }

    /// Restrict the solve to `threads` worker threads (0 = rayon default,
    /// 1 = strictly sequential on the calling thread).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The per-tensor solver this driver runs.
    pub fn solver(&self) -> &V {
        &self.solver
    }

    /// The single batched-solve path every substrate-independent caller
    /// goes through: solve every tensor from every starting vector,
    /// honoring [`with_threads`](Self::with_threads) —
    ///
    /// * `threads == 1` — strictly sequential on the calling thread (no
    ///   rayon involvement at all; the paper's "CPU – 1 core" row);
    /// * `threads == 0` — parallel over tensors on the current/global
    ///   rayon pool;
    /// * `threads == k` — parallel on a dedicated pool of exactly `k`
    ///   workers (the paper's 4-core / 8-core rows).
    ///
    /// Every path records the same telemetry names — a `batch.solve` span,
    /// a `batch.tensor_seconds` histogram and the `batch.tensors_done` /
    /// `batch.solves` / `batch.converged` / `batch.iterations` counters —
    /// so traces from different substrates are directly comparable.
    pub fn run<'a, S: Scalar, K: TensorKernels<S> + ?Sized>(
        &self,
        kernels: &K,
        batch: impl Into<TensorBatchRef<'a, S>>,
        starts: &[Vec<S>],
        telemetry: &Telemetry,
    ) -> BatchResult<S>
    where
        V: Solver<S>,
    {
        let batch = batch.into();
        let _batch_span = telemetry.span("batch.solve");
        if self.threads == 1 {
            let mut results = Vec::with_capacity(batch.len());
            let mut total_iterations = 0u64;
            // One iteration buffer for the whole batch: the sequential
            // path performs no per-voxel allocation beyond the results.
            let mut scratch = Vec::new();
            for a in batch.iter() {
                let (row, iters) =
                    solve_one_tensor(&self.solver, kernels, a, starts, telemetry, &mut scratch);
                total_iterations += iters;
                results.push(row);
            }
            return BatchResult {
                results,
                total_iterations,
            };
        }

        let solve_all = || {
            let rows: Vec<(Vec<Eigenpair<S>>, u64)> = (0..batch.len())
                .into_par_iter()
                .map(|i| {
                    solve_one_tensor(
                        &self.solver,
                        kernels,
                        batch.get(i),
                        starts,
                        telemetry,
                        &mut Vec::new(),
                    )
                })
                .collect();
            let mut results = Vec::with_capacity(rows.len());
            let mut total_iterations = 0u64;
            for (row, iters) in rows {
                results.push(row);
                total_iterations += iters;
            }
            BatchResult {
                results,
                total_iterations,
            }
        };

        if self.threads == 0 {
            solve_all()
        } else {
            match rayon::ThreadPoolBuilder::new()
                .num_threads(self.threads)
                .build()
            {
                Ok(pool) => pool.install(solve_all),
                // Pool creation only fails on resource exhaustion;
                // degrade to the global pool rather than aborting.
                Err(_) => solve_all(),
            }
        }
    }

    /// Solve every tensor from every starting vector, sequentially
    /// (the paper's "CPU – 1 core" row). Thin shim over
    /// [`run`](Self::run) with `with_threads(1)` semantics.
    pub fn solve_sequential<'a, S: Scalar, K: TensorKernels<S> + ?Sized>(
        &self,
        kernels: &K,
        batch: impl Into<TensorBatchRef<'a, S>>,
        starts: &[Vec<S>],
    ) -> BatchResult<S>
    where
        V: Solver<S>,
    {
        BatchSolver {
            solver: &self.solver,
            threads: 1,
        }
        .run(kernels, batch, starts, &Telemetry::disabled())
    }

    /// Solve in parallel over tensors (the paper's OpenMP scheme). Thin
    /// shim over [`run`](Self::run) honoring the configured thread count.
    pub fn solve_parallel<'a, S: Scalar, K: TensorKernels<S> + Sync + ?Sized>(
        &self,
        kernels: &K,
        batch: impl Into<TensorBatchRef<'a, S>>,
        starts: &[Vec<S>],
    ) -> BatchResult<S>
    where
        V: Solver<S>,
    {
        self.run(kernels, batch, starts, &Telemetry::disabled())
    }

    /// Convenience: solve with the default on-the-fly kernels, parallel.
    pub fn solve<'a, S: Scalar>(
        &self,
        batch: impl Into<TensorBatchRef<'a, S>>,
        starts: &[Vec<S>],
    ) -> BatchResult<S>
    where
        V: Solver<S>,
    {
        self.run(&GeneralKernels, batch, starts, &Telemetry::disabled())
    }
}

/// Solve every start for one tensor, recording per-tensor telemetry.
///
/// The timing sits at tensor granularity — the disabled path costs one
/// `is_enabled` branch per tensor, nothing per iteration or per start.
fn solve_one_tensor<S: Scalar, V: Solver<S> + ?Sized, K: TensorKernels<S> + ?Sized>(
    solver: &V,
    kernels: &K,
    a: SymTensorRef<'_, S>,
    starts: &[Vec<S>],
    telemetry: &Telemetry,
    scratch: &mut Vec<S>,
) -> (Vec<Eigenpair<S>>, u64) {
    let started = telemetry.is_enabled().then(Instant::now);
    let mut row = Vec::with_capacity(starts.len());
    let mut iters = 0u64;
    let mut converged = 0u64;
    for x0 in starts {
        let pair = solver.solve_one(&kernels, a, x0, &mut NoopObserver, scratch);
        iters += pair.iterations as u64;
        converged += u64::from(pair.converged);
        row.push(pair);
    }
    if let Some(started) = started {
        telemetry.observe("batch.tensor_seconds", started.elapsed().as_secs_f64());
        telemetry.counter("batch.tensors_done", 1);
        telemetry.counter("batch.solves", starts.len() as u64);
        telemetry.counter("batch.converged", converged);
        telemetry.counter("batch.iterations", iters);
    }
    (row, iters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shift::Shift;
    use crate::solver::IterationPolicy;
    use crate::starts::random_uniform_starts;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use symtensor::{PrecomputedTables, TensorBatch};

    fn workload(t: usize, v: usize, seed: u64) -> (TensorBatch<f64>, Vec<Vec<f64>>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let tensors = TensorBatch::random(4, 3, t, &mut rng).unwrap();
        let starts = random_uniform_starts(3, v, &mut rng);
        (tensors, starts)
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let (tensors, starts) = workload(8, 6, 1);
        let solver = BatchSolver::new(
            SsHopm::new(Shift::Fixed(0.0)).with_policy(IterationPolicy::Fixed(25)),
        );
        let seq = solver.solve_sequential(&GeneralKernels, &tensors, &starts);
        let par = solver.solve_parallel(&GeneralKernels, &tensors, &starts);
        assert_eq!(seq.total_iterations, par.total_iterations);
        for (t, v, p) in seq.iter_flat() {
            let q = &par.results[t][v];
            assert_eq!(p.lambda, q.lambda, "tensor {t} start {v}");
            assert_eq!(p.x, q.x);
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let (tensors, starts) = workload(6, 4, 2);
        let base = BatchSolver::new(SsHopm::new(Shift::Convex).with_tolerance(1e-12));
        let r1 = base
            .with_threads(1)
            .solve_parallel(&GeneralKernels, &tensors, &starts);
        let r4 = base
            .with_threads(4)
            .solve_parallel(&GeneralKernels, &tensors, &starts);
        for (t, v, p) in r1.iter_flat() {
            let q = &r4.results[t][v];
            assert_eq!(p.lambda, q.lambda);
        }
    }

    #[test]
    fn fixed_iteration_budget_is_deterministic() {
        let (tensors, starts) = workload(4, 8, 3);
        let solver = BatchSolver::new(
            SsHopm::new(Shift::Fixed(0.0)).with_policy(IterationPolicy::Fixed(30)),
        );
        let res = solver.solve(&tensors, &starts);
        assert_eq!(res.total_iterations, 4 * 8 * 30);
        assert_eq!(res.num_tensors(), 4);
        for (_, _, p) in res.iter_flat() {
            assert_eq!(p.iterations, 30);
        }
    }

    #[test]
    fn precomputed_kernels_agree_with_general_in_batch() {
        let (tensors, starts) = workload(5, 5, 4);
        let tables = PrecomputedTables::new(4, 3);
        let solver = BatchSolver::new(SsHopm::new(Shift::Convex).with_tolerance(1e-13));
        let g = solver.solve_parallel(&GeneralKernels, &tensors, &starts);
        let p = solver.solve_parallel(&tables, &tensors, &starts);
        for (t, v, pair) in g.iter_flat() {
            let q = &p.results[t][v];
            assert!((pair.lambda - q.lambda).abs() < 1e-10);
        }
    }

    #[test]
    fn all_converged_pairs_have_small_residuals() {
        let (tensors, starts) = workload(6, 10, 5);
        let solver = BatchSolver::new(SsHopm::new(Shift::Convex).with_tolerance(1e-13));
        let res = solver.solve(&tensors, &starts);
        for (t, _, p) in res.iter_flat() {
            if p.converged {
                assert!(p.residual(tensors.get(t)) < 1e-5);
            }
        }
    }

    #[test]
    fn instrumented_batch_records_progress_metrics() {
        let (tensors, starts) = workload(5, 3, 6);
        let solver = BatchSolver::new(
            SsHopm::new(Shift::Fixed(0.0)).with_policy(IterationPolicy::Fixed(10)),
        );
        let tel = Telemetry::enabled();
        let res = solver.run(&GeneralKernels, &tensors, &starts, &tel);
        let snap = tel.snapshot();
        assert_eq!(snap.counter("batch.tensors_done"), Some(5));
        assert_eq!(snap.counter("batch.solves"), Some(15));
        assert_eq!(snap.counter("batch.iterations"), Some(res.total_iterations));
        let hist = snap.histogram("batch.tensor_seconds").unwrap();
        assert_eq!(hist.count, 5);
        let span = snap.span("batch.solve").unwrap();
        assert_eq!(span.count, 1);

        // The uninstrumented entry points agree bit-for-bit.
        let plain = solver.solve_parallel(&GeneralKernels, &tensors, &starts);
        for (t, v, p) in res.iter_flat() {
            assert_eq!(p.lambda, plain.results[t][v].lambda);
        }
    }

    #[test]
    fn sequential_and_parallel_record_the_same_telemetry_names() {
        // Satellite: traces from different thread configurations must be
        // comparable — identical span/counter/histogram names either way.
        let (tensors, starts) = workload(3, 2, 9);
        let solver =
            BatchSolver::new(SsHopm::new(Shift::Fixed(0.0)).with_policy(IterationPolicy::Fixed(5)));
        let tel_seq = Telemetry::enabled();
        let tel_par = Telemetry::enabled();
        solver
            .with_threads(1)
            .run(&GeneralKernels, &tensors, &starts, &tel_seq);
        solver
            .with_threads(2)
            .run(&GeneralKernels, &tensors, &starts, &tel_par);
        let (seq, par) = (tel_seq.snapshot(), tel_par.snapshot());
        for name in [
            "batch.tensors_done",
            "batch.solves",
            "batch.converged",
            "batch.iterations",
        ] {
            assert_eq!(seq.counter(name), par.counter(name), "{name}");
        }
        assert_eq!(
            seq.histogram("batch.tensor_seconds").map(|h| h.count),
            par.histogram("batch.tensor_seconds").map(|h| h.count)
        );
        assert_eq!(
            seq.span("batch.solve").map(|s| s.count),
            par.span("batch.solve").map(|s| s.count)
        );
    }

    #[test]
    fn convenience_entry_points_agree_with_run() {
        // Migrated from the removed `*_instrumented` shims: the remaining
        // convenience wrappers must stay bit-identical to `run`.
        let (tensors, starts) = workload(3, 4, 7);
        let solver =
            BatchSolver::new(SsHopm::new(Shift::Fixed(0.0)).with_policy(IterationPolicy::Fixed(8)));
        let tel = Telemetry::disabled();
        let base = solver.run(&GeneralKernels, &tensors, &starts, &tel);
        let seq = solver.solve_sequential(&GeneralKernels, &tensors, &starts);
        let par = solver.solve_parallel(&GeneralKernels, &tensors, &starts);
        for (t, v, p) in base.iter_flat() {
            assert_eq!(p.lambda, seq.results[t][v].lambda);
            assert_eq!(p.lambda, par.results[t][v].lambda);
        }
    }

    #[test]
    fn empty_batch() {
        let solver = BatchSolver::new(SsHopm::new(Shift::Convex));
        let empty = TensorBatch::<f64>::new(4, 3).unwrap();
        let res = solver.solve(&empty, &[]);
        assert_eq!(res.num_tensors(), 0);
        assert_eq!(res.total_iterations, 0);
    }
}
