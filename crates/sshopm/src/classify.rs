//! Eigenpair classification via the projected Hessian (Kolda & Mayo).
//!
//! For an eigenpair `(λ, x)` of a symmetric order-`m` tensor define the
//! projected Hessian on the tangent space of the unit sphere at `x`:
//!
//! ```text
//! C(λ, x) = P_x · ((m−1)·A·x^{m−2} − λ·I) · P_x,    P_x = I − x·xᵀ
//! ```
//!
//! The eigenpair is **negative stable** (all tangent eigenvalues < 0) iff
//! `x` is a local maximum of `A·xᵐ` on the sphere — these are the
//! eigenpairs SS-HOPM with `α ≥ β(A)` converges to, and in the DW-MRI
//! application they are the fiber directions. **Positive stable** pairs are
//! local minima (found by the concave/negative-shift variant), and
//! indefinite pairs are saddles, which SS-HOPM almost never returns but a
//! lucky starting vector can land on.

use linalg::{Matrix, SymmetricEigen};
use symtensor::kernels::axm2_matrix;
use symtensor::{Scalar, SymTensorRef};

/// Stability classification of a tensor eigenpair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stability {
    /// All tangent-space Hessian eigenvalues negative: local maximum of the
    /// homogeneous form on the sphere.
    NegativeStable,
    /// All tangent-space Hessian eigenvalues positive: local minimum.
    PositiveStable,
    /// Mixed signs: saddle point.
    Saddle,
    /// At least one tangent eigenvalue is (numerically) zero: degenerate,
    /// cannot be classified at this tolerance.
    Degenerate,
}

impl Stability {
    /// True for eigenpairs corresponding to local maxima (the ones the
    /// fiber-detection application keeps).
    pub fn is_local_max(self) -> bool {
        self == Stability::NegativeStable
    }
}

/// Classify an eigenpair by the sign pattern of the projected Hessian
/// spectrum. `tol` is the relative threshold below which a tangent
/// eigenvalue is considered zero (use ~`1e-6` for converged pairs).
///
/// For `n = 1` every unit "vector" (±1) is trivially both a maximum and a
/// minimum; we report [`Stability::Degenerate`].
pub fn classify<'a, S: Scalar>(
    a: impl Into<SymTensorRef<'a, S>>,
    lambda: S,
    x: &[S],
    tol: f64,
) -> Stability {
    let a = a.into();
    let n = a.dim();
    if x.len() != n {
        // A mismatched eigenvector cannot be classified; degenerate is the
        // "no stable answer" bucket.
        return Stability::Degenerate;
    }
    if n == 1 {
        return Stability::Degenerate;
    }
    let m = a.order() as f64;
    let lam = lambda.to_f64();

    // B = (m-1) A x^{m-2} - lambda I (dense n x n, f64). Order-1 tensors
    // have no Hessian; report them degenerate instead of panicking.
    let Ok(axm2) = axm2_matrix(a, x) else {
        return Stability::Degenerate;
    };
    let mut b = Matrix::from_fn(n, n, |i, j| (m - 1.0) * axm2[i * n + j].to_f64());
    for i in 0..n {
        b[(i, i)] -= lam;
    }

    // P = I - x x^T; C = P B P.
    let xf: Vec<f64> = x.iter().map(|v| v.to_f64()).collect();
    let p = Matrix::from_fn(n, n, |i, j| {
        let delta = if i == j { 1.0 } else { 0.0 };
        delta - xf[i] * xf[j]
    });
    // Both products are n x n by construction and cannot mismatch.
    let Ok(pb) = p.matmul(&b) else {
        return Stability::Degenerate;
    };
    let Ok(c) = pb.matmul(&p) else {
        return Stability::Degenerate;
    };
    let eig = match SymmetricEigen::new(&c) {
        Ok(e) => e,
        Err(_) => return Stability::Degenerate,
    };

    // C always has a zero eigenvalue along x itself; drop the single
    // eigenvalue whose eigenvector is (numerically) parallel to x and
    // classify the remaining n-1 tangent eigenvalues.
    let mut tangent: Vec<f64> = Vec::with_capacity(n - 1);
    let mut dropped_parallel = false;
    // Identify the column most parallel to x.
    let mut best_col = 0;
    let mut best_dot = -1.0;
    for col in 0..n {
        let dot: f64 = (0..n)
            .map(|r| eig.eigenvectors[(r, col)] * xf[r])
            .sum::<f64>()
            .abs();
        if dot > best_dot {
            best_dot = dot;
            best_col = col;
        }
    }
    for col in 0..n {
        if col == best_col && !dropped_parallel {
            dropped_parallel = true;
            continue;
        }
        tangent.push(eig.eigenvalues[col]);
    }

    let scale = eig.spectral_radius().max(lam.abs()).max(1e-30);
    let thresh = tol * scale;
    let pos = tangent.iter().filter(|&&v| v > thresh).count();
    let neg = tangent.iter().filter(|&&v| v < -thresh).count();
    let zero = tangent.len() - pos - neg;

    if zero > 0 {
        Stability::Degenerate
    } else if neg == tangent.len() {
        Stability::NegativeStable
    } else if pos == tangent.len() {
        Stability::PositiveStable
    } else {
        Stability::Saddle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shift::Shift;
    use crate::solver::SsHopm;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use symtensor::SymTensor;

    #[test]
    fn matrix_extremes_classify_as_expected() {
        // A = diag(3, 1): on the sphere, e_0 is the max (lambda=3), e_1 the
        // min (lambda=1).
        let mut a = SymTensor::<f64>::zeros(2, 2);
        a.set(&[0, 0], 3.0).unwrap();
        a.set(&[1, 1], 1.0).unwrap();
        assert_eq!(
            classify(&a, 3.0, &[1.0, 0.0], 1e-8),
            Stability::NegativeStable
        );
        assert_eq!(
            classify(&a, 1.0, &[0.0, 1.0], 1e-8),
            Stability::PositiveStable
        );
    }

    #[test]
    fn matrix_saddle_in_3d() {
        // diag(3, 2, 1): e_1 is a saddle of the quadratic form on the sphere.
        let mut a = SymTensor::<f64>::zeros(2, 3);
        a.set(&[0, 0], 3.0).unwrap();
        a.set(&[1, 1], 2.0).unwrap();
        a.set(&[2, 2], 1.0).unwrap();
        assert_eq!(classify(&a, 2.0, &[0.0, 1.0, 0.0], 1e-8), Stability::Saddle);
    }

    #[test]
    fn convex_sshopm_lands_on_negative_stable_pairs() {
        for seed in 0..8u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = SymTensor::<f64>::random(4, 3, &mut rng);
            let pair = SsHopm::new(Shift::Convex)
                .with_tolerance(1e-14)
                .solve(&a, &[0.48, -0.62, 0.62]);
            if !pair.converged || pair.residual(&a) > 1e-6 {
                continue;
            }
            let s = classify(&a, pair.lambda, &pair.x, 1e-5);
            assert!(
                s == Stability::NegativeStable || s == Stability::Degenerate,
                "seed {seed}: {s:?}"
            );
        }
    }

    #[test]
    fn concave_sshopm_lands_on_positive_stable_pairs() {
        for seed in 10..18u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = SymTensor::<f64>::random(4, 3, &mut rng);
            let pair = SsHopm::new(Shift::Concave)
                .with_tolerance(1e-14)
                .solve(&a, &[0.48, -0.62, 0.62]);
            if !pair.converged || pair.residual(&a) > 1e-6 {
                continue;
            }
            let s = classify(&a, pair.lambda, &pair.x, 1e-5);
            assert!(
                s == Stability::PositiveStable || s == Stability::Degenerate,
                "seed {seed}: {s:?}"
            );
        }
    }

    #[test]
    fn sphere_of_identity_tensor_is_degenerate() {
        // For A = I (m=2), every unit vector is an eigenvector with
        // lambda=1; the projected Hessian is identically zero on the
        // tangent space.
        let a = SymTensor::<f64>::diagonal_ones(2, 3);
        let s = classify(&a, 1.0, &[1.0, 0.0, 0.0], 1e-8);
        assert_eq!(s, Stability::Degenerate);
    }

    #[test]
    fn n1_is_degenerate() {
        let a = SymTensor::<f64>::from_values(3, 1, vec![2.0]).unwrap();
        assert_eq!(classify(&a, 2.0, &[1.0], 1e-8), Stability::Degenerate);
    }

    #[test]
    fn local_max_flag() {
        assert!(Stability::NegativeStable.is_local_max());
        assert!(!Stability::PositiveStable.is_local_max());
        assert!(!Stability::Saddle.is_local_max());
        assert!(!Stability::Degenerate.is_local_max());
    }
}
