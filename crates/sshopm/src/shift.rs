//! Shift selection for SS-HOPM.
//!
//! The shift `α` forces the underlying function
//! `f̂(x) = A·xᵐ + α·(xᵀx)^{m/2}` to be convex (`α ≥ 0`, converges to local
//! maxima of `A·xᵐ` on the sphere) or concave (`α < 0`, local minima).
//! Kolda & Mayo prove convergence whenever `|α|` exceeds `β(A) =
//! (m−1)·max_{‖x‖=1} ρ(A·x^{m−2})`; since `ρ(A·x^{m−2}) ≤ ‖A‖_F` on the
//! sphere, `(m−1)·‖A‖_F` is a computable sufficient bound.
//!
//! The adaptive variant re-picks the shift every iteration from the spectrum of
//! the current Hessian (the idea behind Kolda & Mayo's later GEAP method):
//! just enough convexity at the current iterate rather than a global bound,
//! which typically converges in fewer iterations than the worst-case fixed
//! shift.

use linalg::{Matrix, SymmetricEigen};
use symtensor::kernels::axm2_matrix;
use symtensor::{Scalar, SymTensorRef};

/// How SS-HOPM chooses its shift `α`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Shift {
    /// A user-supplied fixed shift. `Fixed(0.0)` recovers the unshifted
    /// symmetric higher-order power method (S-HOPM) of De Lathauwer et al. /
    /// Kofidis & Regalia — the paper's experimental setting (`α = 0`).
    Fixed(f64),
    /// The sufficient convexity bound `α = (m−1)·‖A‖_F + τ`: guaranteed
    /// convergence to a local *maximum* for every starting vector.
    Convex,
    /// The mirrored bound `α = −(m−1)·‖A‖_F − τ`: guaranteed convergence to
    /// a local *minimum*.
    Concave,
    /// Per-iteration adaptive shift: `α_k = max(0, (τ − λ_min(H(x_k)))/m)`
    /// where `H(x) = m(m−1)·A·x^{m−2}`, i.e. exactly enough to make the
    /// current iterate's Hessian positive semidefinite plus a margin `τ`.
    Adaptive,
}

/// Margin added to the theoretical bounds so strict inequalities hold in
/// floating point.
pub const SHIFT_MARGIN: f64 = 1e-6;

/// The sufficient convexity bound `(m−1)·‖A‖_F` of Kolda & Mayo.
///
/// Accepts `&SymTensor<S>` or a borrowed [`SymTensorRef`] (e.g. one tensor
/// of a [`symtensor::TensorBatch`] arena).
pub fn sufficient_shift<'a, S: Scalar>(a: impl Into<SymTensorRef<'a, S>>) -> f64 {
    let a = a.into();
    (a.order() as f64 - 1.0) * a.frobenius_norm().to_f64()
}

impl Shift {
    /// The fixed shift value used for the whole solve, or `None` for the
    /// adaptive policy (which must be evaluated per iterate).
    pub fn fixed_value<'a, S: Scalar>(&self, a: impl Into<SymTensorRef<'a, S>>) -> Option<f64> {
        match self {
            Shift::Fixed(v) => Some(*v),
            Shift::Convex => Some(sufficient_shift(a) + SHIFT_MARGIN),
            Shift::Concave => Some(-sufficient_shift(a) - SHIFT_MARGIN),
            Shift::Adaptive => None,
        }
    }

    /// True if this policy searches for local maxima (nonnegative shift).
    pub fn is_convex<'a, S: Scalar>(&self, _a: impl Into<SymTensorRef<'a, S>>) -> bool {
        match self {
            Shift::Fixed(v) => *v >= 0.0,
            Shift::Convex | Shift::Adaptive => true,
            Shift::Concave => false,
        }
    }

    /// Evaluate the adaptive shift at the current unit iterate `x`:
    /// `max(0, (τ − λ_min(m(m−1)·A·x^{m−2}))/m)`.
    ///
    /// Falls back to the fixed value for non-adaptive policies.
    pub fn value_at<'a, S: Scalar>(&self, a: impl Into<SymTensorRef<'a, S>>, x: &[S]) -> f64 {
        let a = a.into();
        if let Some(v) = self.fixed_value(a) {
            return v;
        }
        let m = a.order() as f64;
        let lambda_min = hessian_spectrum(a, x).map_or(0.0, |e| e.min());
        ((SHIFT_MARGIN - lambda_min) / m).max(0.0)
    }
}

/// Spectrum of the scaled Hessian `H(x) = m(m−1)·A·x^{m−2}` at a unit
/// vector `x`. Returns `None` for order-1 tensors (no Hessian).
pub fn hessian_spectrum<'a, S: Scalar>(
    a: impl Into<SymTensorRef<'a, S>>,
    x: &[S],
) -> Option<SymmetricEigen> {
    let a = a.into();
    if a.order() < 2 {
        return None;
    }
    let n = a.dim();
    let m = a.order() as f64;
    let mat = axm2_matrix(a, x).ok()?;
    let scale = m * (m - 1.0);
    let h = Matrix::from_fn(n, n, |i, j| scale * mat[i * n + j].to_f64());
    SymmetricEigen::new(&h).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use symtensor::SymTensor;

    fn random_tensor(seed: u64) -> SymTensor<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        SymTensor::random(4, 3, &mut rng)
    }

    #[test]
    fn fixed_shift_passes_through() {
        let a = random_tensor(1);
        assert_eq!(Shift::Fixed(2.5).fixed_value(&a), Some(2.5));
        assert_eq!(Shift::Fixed(-1.0).fixed_value(&a), Some(-1.0));
    }

    #[test]
    fn convex_bound_exceeds_frobenius_scale() {
        let a = random_tensor(2);
        let alpha = Shift::Convex.fixed_value(&a).unwrap();
        assert!(alpha > 3.0 * a.frobenius_norm() - 1e-12);
        let beta = Shift::Concave.fixed_value(&a).unwrap();
        assert!((alpha + beta).abs() < 1e-12, "concave mirrors convex");
    }

    #[test]
    fn convexity_flags() {
        let a = random_tensor(3);
        assert!(Shift::Fixed(0.0).is_convex(&a));
        assert!(Shift::Convex.is_convex(&a));
        assert!(Shift::Adaptive.is_convex(&a));
        assert!(!Shift::Concave.is_convex(&a));
        assert!(!Shift::Fixed(-0.1).is_convex(&a));
    }

    #[test]
    fn adaptive_shift_is_nonnegative_and_bounded() {
        let a = random_tensor(4);
        let x = [1.0, 0.0, 0.0];
        let alpha = Shift::Adaptive.value_at(&a, &x);
        assert!(alpha >= 0.0);
        // Never needs more than the global sufficient bound times m
        // (the Hessian spectral radius is at most m(m-1) ||A||_F).
        assert!(alpha <= (4.0 - 1.0) * 4.0 * a.frobenius_norm() + 1.0);
    }

    #[test]
    fn adaptive_shift_zero_for_convex_tensor() {
        // Rank-one tensor v^(x)4 with v = e_0: at x = e_0 the Hessian
        // m(m-1) A x^{m-2} = 12 * e_0 e_0^T is PSD, so no shift is needed.
        let a = SymTensor::<f64>::rank_one(4, &[1.0, 0.0, 0.0]);
        let alpha = Shift::Adaptive.value_at(&a, &[1.0, 0.0, 0.0]);
        assert!(alpha <= SHIFT_MARGIN, "{alpha}");
    }

    #[test]
    fn hessian_spectrum_matches_quadratic_form_case() {
        // m=2: H = 2A; for A = diag(1, 3) eigenvalues are 2 and 6.
        let mut a = SymTensor::<f64>::zeros(2, 2);
        a.set(&[0, 0], 1.0).unwrap();
        a.set(&[1, 1], 3.0).unwrap();
        let eig = hessian_spectrum(&a, &[1.0, 0.0]).unwrap();
        assert!((eig.eigenvalues[0] - 2.0).abs() < 1e-12);
        assert!((eig.eigenvalues[1] - 6.0).abs() < 1e-12);
    }

    #[test]
    fn hessian_spectrum_none_for_order_one() {
        let a = SymTensor::<f64>::zeros(1, 3);
        assert!(hessian_spectrum(&a, &[1.0, 0.0, 0.0]).is_none());
    }

    #[test]
    fn sufficient_shift_scales_with_tensor() {
        let a = random_tensor(5);
        let mut b = a.clone();
        b.scale(2.0);
        let sa = sufficient_shift(&a);
        let sb = sufficient_shift(&b);
        assert!((sb - 2.0 * sa).abs() < 1e-9);
    }
}
