//! Starting-vector generation.
//!
//! SS-HOPM converges to different eigenpairs from different starting
//! vectors, so finding multiple eigenpairs means covering the unit sphere
//! with starts. The paper uses 128 random vectors per tensor, each entry
//! drawn uniformly from `[−1, 1]` and then normalized; it also suggests a
//! deterministic evenly-spaced alternative, which we provide as the
//! Fibonacci sphere for `n = 3` and a seeded-but-reproducible design for
//! general `n`.

use rand::Rng;
use symtensor::scalar::normalize;
use symtensor::Scalar;

/// The paper's scheme: entries i.i.d. uniform on `[−1, 1]`, then
/// normalized to the unit sphere. (This is *not* a uniform distribution on
/// the sphere — it is mildly biased toward the cube's corners — but matches
/// the paper; use [`random_gaussian_starts`] for exactly uniform coverage.)
pub fn random_uniform_starts<S: Scalar, R: Rng + ?Sized>(
    n: usize,
    count: usize,
    rng: &mut R,
) -> Vec<Vec<S>> {
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        let mut v: Vec<S> = (0..n)
            .map(|_| S::from_f64(rng.gen_range(-1.0..=1.0)))
            .collect();
        if normalize(&mut v) != S::ZERO {
            out.push(v);
        }
    }
    out
}

/// Exactly-uniform sphere coverage via normalized Gaussian samples
/// (Box–Muller from uniform draws, no external distributions crate).
pub fn random_gaussian_starts<S: Scalar, R: Rng + ?Sized>(
    n: usize,
    count: usize,
    rng: &mut R,
) -> Vec<Vec<S>> {
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        let mut v: Vec<S> = (0..n).map(|_| S::from_f64(gaussian(rng))).collect();
        if normalize(&mut v) != S::ZERO {
            out.push(v);
        }
    }
    out
}

/// One standard normal sample by Box–Muller.
fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        if z.is_finite() {
            return z;
        }
    }
}

/// Deterministic, evenly-spaced starting vectors on the 2-sphere (`n = 3`)
/// using the Fibonacci lattice — the paper's suggested deterministic
/// alternative to random starts.
///
/// `count >= 1` is a debug-checked precondition; `count == 0` yields an
/// empty list in release builds.
pub fn fibonacci_sphere<S: Scalar>(count: usize) -> Vec<Vec<S>> {
    debug_assert!(count > 0, "need at least one starting vector");
    let golden = (1.0 + 5.0f64.sqrt()) / 2.0;
    (0..count)
        .map(|i| {
            // Latitude chosen so points split the sphere into equal-area
            // bands; longitude advances by the golden angle.
            let z = 1.0 - (2.0 * i as f64 + 1.0) / count as f64;
            let r = (1.0 - z * z).max(0.0).sqrt();
            let theta = 2.0 * std::f64::consts::PI * (i as f64 / golden).fract();
            vec![
                S::from_f64(r * theta.cos()),
                S::from_f64(r * theta.sin()),
                S::from_f64(z),
            ]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use symtensor::scalar::norm2;

    #[test]
    fn uniform_starts_are_unit_and_counted() {
        let mut rng = StdRng::seed_from_u64(1);
        let starts = random_uniform_starts::<f64, _>(3, 128, &mut rng);
        assert_eq!(starts.len(), 128);
        for s in &starts {
            assert_eq!(s.len(), 3);
            assert!((norm2(s) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn gaussian_starts_are_unit() {
        let mut rng = StdRng::seed_from_u64(2);
        let starts = random_gaussian_starts::<f32, _>(5, 64, &mut rng);
        assert_eq!(starts.len(), 64);
        for s in &starts {
            assert!((norm2(s) - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn fibonacci_points_are_unit_and_distinct() {
        let pts = fibonacci_sphere::<f64>(128);
        assert_eq!(pts.len(), 128);
        for p in &pts {
            assert!((norm2(p) - 1.0).abs() < 1e-12);
        }
        // No two points identical.
        for i in 0..pts.len() {
            for j in i + 1..pts.len() {
                let d: f64 = pts[i]
                    .iter()
                    .zip(&pts[j])
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
                assert!(d > 1e-6, "points {i} and {j} coincide");
            }
        }
    }

    #[test]
    fn fibonacci_covers_both_hemispheres() {
        let pts = fibonacci_sphere::<f64>(100);
        let north = pts.iter().filter(|p| p[2] > 0.0).count();
        assert!((40..=60).contains(&north), "north count {north}");
    }

    #[test]
    fn fibonacci_minimum_pairwise_distance_scales() {
        // Equal-area layout: nearest-neighbor distance ~ 2/sqrt(count).
        let pts = fibonacci_sphere::<f64>(256);
        let mut min_d2 = f64::INFINITY;
        for i in 0..pts.len() {
            for j in i + 1..pts.len() {
                let d2: f64 = pts[i]
                    .iter()
                    .zip(&pts[j])
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
                min_d2 = min_d2.min(d2);
            }
        }
        let expected = 2.0 / (256.0f64).sqrt();
        assert!(
            min_d2.sqrt() > 0.3 * expected,
            "{} vs {}",
            min_d2.sqrt(),
            expected
        );
    }

    #[test]
    fn gaussian_starts_cover_all_orthants_in_3d() {
        let mut rng = StdRng::seed_from_u64(3);
        let starts = random_gaussian_starts::<f64, _>(3, 400, &mut rng);
        let mut seen = [false; 8];
        for s in &starts {
            let idx =
                (s[0] > 0.0) as usize | ((s[1] > 0.0) as usize) << 1 | ((s[2] > 0.0) as usize) << 2;
            seen[idx] = true;
        }
        assert!(seen.iter().all(|&b| b), "orthant coverage {seen:?}");
    }

    #[test]
    #[should_panic]
    fn fibonacci_zero_count_panics() {
        fibonacci_sphere::<f64>(0);
    }

    #[test]
    fn seeded_generation_is_reproducible() {
        let a = random_uniform_starts::<f64, _>(3, 16, &mut StdRng::seed_from_u64(9));
        let b = random_uniform_starts::<f64, _>(3, 16, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
