//! Property-based tests for SS-HOPM: convergence invariants, shift
//! monotonicity, eigen-equation residuals, refinement, and dedup sanity on
//! random tensors.

use proptest::prelude::*;
use sshopm::{multistart, refine, DedupConfig, IterationPolicy, Shift, SsHopm};
use symtensor::multinomial::num_unique_entries;
use symtensor::SymTensor;

fn shape() -> impl Strategy<Value = (usize, usize)> {
    proptest::sample::select(vec![
        (3usize, 2usize),
        (3, 3),
        (4, 2),
        (4, 3),
        (5, 3),
        (6, 3),
    ])
}

fn tensor_and_start() -> impl Strategy<Value = (SymTensor<f64>, Vec<f64>)> {
    shape().prop_flat_map(|(m, n)| {
        let len = num_unique_entries(m, n) as usize;
        (
            proptest::collection::vec(-1.0f64..1.0, len)
                .prop_map(move |v| SymTensor::from_values(m, n, v).unwrap()),
            proptest::collection::vec(-1.0f64..1.0, n).prop_filter("nonzero start", |x| {
                x.iter().map(|v| v * v).sum::<f64>() > 1e-4
            }),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn convex_shift_converges_and_satisfies_eigen_equation((a, x0) in tensor_and_start()) {
        // Convergence is guaranteed but the *rate* can be arbitrarily slow
        // near degenerate pairs, so give the iteration generous headroom.
        let pair = SsHopm::new(Shift::Convex)
            .with_tolerance(1e-13)
            .with_max_iters(50_000)
            .solve(&a, &x0);
        prop_assert!(pair.converged, "convex shift guarantees convergence");
        let scale = 1.0 + a.frobenius_norm();
        prop_assert!(pair.residual(&a) < 1e-4 * scale, "residual {:e}", pair.residual(&a));
        // Unit eigenvector.
        let nrm: f64 = pair.x.iter().map(|v| v * v).sum::<f64>().sqrt();
        prop_assert!((nrm - 1.0).abs() < 1e-10);
        // Lambda is the Rayleigh quotient at x.
        let rq = symtensor::kernels::axm(&a, &pair.x).unwrap();
        prop_assert!((rq - pair.lambda).abs() < 1e-10 * scale);
    }

    #[test]
    fn convex_trace_is_monotone_nondecreasing((a, x0) in tensor_and_start()) {
        let (_, trace) = SsHopm::new(Shift::Convex)
            .with_tolerance(1e-12)
            .solve_traced(&a, &x0);
        for w in trace.windows(2) {
            prop_assert!(w[1] >= w[0] - 1e-9 * (1.0 + w[0].abs()), "{} -> {}", w[0], w[1]);
        }
    }

    #[test]
    fn concave_trace_is_monotone_nonincreasing((a, x0) in tensor_and_start()) {
        let (_, trace) = SsHopm::new(Shift::Concave)
            .with_tolerance(1e-12)
            .solve_traced(&a, &x0);
        for w in trace.windows(2) {
            prop_assert!(w[1] <= w[0] + 1e-9 * (1.0 + w[0].abs()));
        }
    }

    #[test]
    fn concave_result_never_exceeds_convex((a, x0) in tensor_and_start()) {
        let up = SsHopm::new(Shift::Convex).with_tolerance(1e-12).solve(&a, &x0);
        let down = SsHopm::new(Shift::Concave).with_tolerance(1e-12).solve(&a, &x0);
        prop_assert!(down.lambda <= up.lambda + 1e-8);
    }

    #[test]
    fn fixed_policy_runs_exactly_k((a, x0) in tensor_and_start(), k in 1usize..40) {
        let pair = SsHopm::new(Shift::Convex)
            .with_policy(IterationPolicy::Fixed(k))
            .solve(&a, &x0);
        prop_assert_eq!(pair.iterations, k);
        prop_assert!(pair.converged);
    }

    #[test]
    fn refinement_never_worsens_residual((a, x0) in tensor_and_start()) {
        let pair = SsHopm::new(Shift::Convex).with_tolerance(1e-8).solve(&a, &x0);
        let refined = refine(&a, &pair, 3, 1e-14);
        prop_assert!(refined.residual_after <= refined.residual_before + 1e-15);
        let nrm: f64 = refined.pair.x.iter().map(|v| v * v).sum::<f64>().sqrt();
        prop_assert!((nrm - 1.0).abs() < 1e-10);
    }

    #[test]
    fn multistart_bookkeeping_is_consistent(a_x in tensor_and_start(), starts in 2usize..12) {
        let (a, _) = a_x;
        let n = a.dim();
        let start_vecs: Vec<Vec<f64>> = (0..starts)
            .map(|i| {
                let mut v = vec![0.1; n];
                v[i % n] = 1.0;
                v
            })
            .collect();
        let spectrum = multistart(
            &SsHopm::new(Shift::Convex).with_tolerance(1e-12),
            &a,
            &start_vecs,
            &DedupConfig::default(),
            1e-5,
        );
        let basins: usize = spectrum.entries.iter().map(|e| e.basin_count).sum();
        prop_assert_eq!(basins + spectrum.failures, starts);
        for w in spectrum.entries.windows(2) {
            prop_assert!(w[0].pair.lambda >= w[1].pair.lambda);
        }
    }

    #[test]
    fn scaling_tensor_scales_eigenvalues((a, x0) in tensor_and_start(), c in 0.1f64..3.0) {
        // Eigenpairs of c*A are (c*lambda, x).
        let mut ca = a.clone();
        ca.scale(c);
        let p1 = SsHopm::new(Shift::Convex).with_tolerance(1e-13).solve(&a, &x0);
        let p2 = SsHopm::new(Shift::Convex).with_tolerance(1e-13).solve(&ca, &x0);
        // Same starting vector + scaled problem converges to the scaled
        // version of the same pair (the iteration map is identical).
        prop_assert!((p2.lambda - c * p1.lambda).abs() < 1e-5 * (1.0 + p1.lambda.abs()),
            "{} vs {}", p2.lambda, c * p1.lambda);
    }
}
