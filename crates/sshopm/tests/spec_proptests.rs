//! Property tests for the [`SolverSpec`] grammar: every representable
//! value round-trips through `Display` → `parse`, and malformed strings
//! produce descriptive errors (naming the valid alternatives) rather
//! than panics.

use proptest::prelude::*;
use sshopm::SolverSpec;

fn arb_spec() -> impl Strategy<Value = SolverSpec> {
    (0usize..4, -1e6f64..1e6).prop_map(|(kind, alpha)| match kind {
        0 => SolverSpec::SsHopm { alpha: None },
        1 => SolverSpec::SsHopm { alpha: Some(alpha) },
        2 => SolverSpec::Geap,
        _ => SolverSpec::Qrst,
    })
}

fn arb_garbage() -> impl Strategy<Value = String> {
    let charset: Vec<char> = "abcdefghijklmnopqrstuvwxyz0123456789:.-".chars().collect();
    proptest::collection::vec(proptest::sample::select(charset), 0..16)
        .prop_map(|chars| chars.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn display_round_trips_for_every_value(spec in arb_spec()) {
        let rendered = spec.to_string();
        let back = SolverSpec::parse(&rendered);
        prop_assert_eq!(back, Ok(spec), "rendered as {}", rendered);
    }

    #[test]
    fn canonical_form_is_a_fixed_point(spec in arb_spec()) {
        let rendered = spec.to_string();
        let again = SolverSpec::parse(&rendered).unwrap().to_string();
        prop_assert_eq!(&rendered, &again);
    }

    #[test]
    fn explicit_alphas_parse_exactly(alpha in -1e300f64..1e300) {
        // Rust float formatting is shortest-round-trip, so any finite
        // alpha must survive spec -> string -> spec bitwise.
        let spec = SolverSpec::parse(&format!("sshopm:{alpha}")).unwrap();
        prop_assert_eq!(spec, SolverSpec::SsHopm { alpha: Some(alpha) });
    }

    #[test]
    fn arbitrary_garbage_never_panics(s in arb_garbage()) {
        // Any outcome is fine as long as errors are descriptive Results
        // that name the valid forms, not panics.
        if let Err(err) = SolverSpec::parse(&s) {
            let msg = err.to_string();
            prop_assert!(msg.contains("sshopm[:alpha]"), "{}", msg);
            prop_assert!(msg.contains("geap"), "{}", msg);
            prop_assert!(msg.contains("qrst"), "{}", msg);
        }
    }
}
