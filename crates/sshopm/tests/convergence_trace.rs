//! Convergence-trace behaviour from Kolda & Mayo's SS-HOPM analysis:
//! with the sufficient shift `|α| ≥ (m−1)·‖A‖_F` the shifted objective is
//! convex on the sphere and the λ sequence is monotone nondecreasing;
//! with α = 0 (plain S-HOPM) convergence is *not* guaranteed and the λ
//! sequence can oscillate. The recorded [`ConvergenceTrace`] must capture
//! both behaviours.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sshopm::{IterationPolicy, Shift, SsHopm};
use symtensor::SymTensor;
use telemetry::ConvergenceTrace;

/// Monotone tolerance: fixed-point roundoff per iteration, not algorithmic
/// decrease. The Kolda–Mayo guarantee is exact in real arithmetic.
const MONOTONE_TOL: f64 = 1e-12;

fn random_tensor(m: usize, n: usize, seed: u64) -> SymTensor<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    SymTensor::random(m, n, &mut rng)
}

fn first_start(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    sshopm::starts::random_uniform_starts(n, 1, &mut rng).remove(0)
}

#[test]
fn convex_shift_gives_monotone_nondecreasing_lambda_trace() {
    for seed in 0..20u64 {
        let a = random_tensor(4, 3, seed);
        let x0 = first_start(3, 1000 + seed);
        let solver = SsHopm::new(Shift::Convex).with_tolerance(1e-12);
        let (pair, trace) = solver.solve_convergence_trace(&a, &x0, false);
        assert!(pair.converged, "seed {seed} did not converge");
        assert_eq!(trace.len(), pair.iterations + 1);
        assert!(
            trace.is_monotone_nondecreasing(MONOTONE_TOL),
            "seed {seed}: max decrease {} violates Kolda–Mayo monotonicity",
            trace.max_decrease()
        );
        // The shift actually used satisfies the convexity bound.
        let m = a.order() as f64;
        assert!(pair.alpha >= (m - 1.0) * a.frobenius_norm() - 1e-9);
    }
}

#[test]
fn zero_shift_oscillates_on_some_tensor_and_trace_captures_it() {
    // α = 0 is plain S-HOPM, which Kolda & Mayo show need not converge for
    // general tensors. Search a deterministic seed stream for a tensor
    // whose λ sequence actually decreases somewhere; the guarantee of this
    // test is that the trace machinery *detects* the oscillation.
    let solver = SsHopm::new(Shift::Fixed(0.0)).with_policy(IterationPolicy::Fixed(60));
    let mut oscillating: Option<(u64, ConvergenceTrace)> = None;
    for seed in 0..300u64 {
        let a = random_tensor(4, 3, seed);
        let x0 = first_start(3, 5000 + seed);
        let (_, trace) = solver.solve_convergence_trace(&a, &x0, false);
        assert_eq!(trace.len(), 61);
        if trace.has_decrease(1e-9) {
            oscillating = Some((seed, trace));
            break;
        }
    }
    let (seed, trace) =
        oscillating.expect("no oscillating α = 0 trajectory found in 300 deterministic seeds");
    assert!(trace.max_decrease() > 1e-9, "seed {seed}");
    assert!(!trace.is_monotone_nondecreasing(MONOTONE_TOL));

    // The same tensor under the convex sufficient shift is monotone: the
    // oscillation is the shift's fault, not the tensor's.
    let a = random_tensor(4, 3, seed);
    let x0 = first_start(3, 5000 + seed);
    let convex = SsHopm::new(Shift::Convex).with_tolerance(1e-12);
    let (pair, fixed_trace) = convex.solve_convergence_trace(&a, &x0, false);
    assert!(pair.converged);
    assert!(fixed_trace.is_monotone_nondecreasing(MONOTONE_TOL));
}

#[test]
fn residual_recording_is_optional_and_consistent() {
    let a = random_tensor(3, 4, 11);
    let x0 = first_start(4, 11);
    let solver = SsHopm::new(Shift::Convex).with_tolerance(1e-12);

    let (pair, without) = solver.solve_convergence_trace(&a, &x0, false);
    assert!(without.records.iter().all(|r| r.residual.is_none()));

    let (pair_r, with) = solver.solve_convergence_trace(&a, &x0, true);
    assert_eq!(
        pair.lambda, pair_r.lambda,
        "residual probes must not perturb the solve"
    );
    assert!(with.records.iter().all(|r| r.residual.is_some()));
    // Residual at the final iterate matches the eigenpair's own residual
    // and is small for a converged run.
    let last = with.records.last().unwrap();
    assert!(
        last.residual.unwrap() < 1e-5,
        "converged={} iters={} residual={}",
        pair_r.converged,
        pair_r.iterations,
        last.residual.unwrap()
    );
    assert!((last.residual.unwrap() - pair_r.residual(&a)).abs() < 1e-12);

    // Both traces record identical λ and shift sequences.
    assert_eq!(without.lambdas(), with.lambdas());
    for (u, v) in without.records.iter().zip(with.records.iter()) {
        assert_eq!(u.k, v.k);
        assert_eq!(u.alpha, v.alpha);
    }
}

#[test]
fn trace_serializes_for_export() {
    let a = random_tensor(4, 3, 3);
    let x0 = first_start(3, 3);
    let solver = SsHopm::new(Shift::Convex).with_tolerance(1e-10);
    let (_, trace) = solver.solve_convergence_trace(&a, &x0, true);
    let json = trace.to_value().to_json();
    let parsed = serde::Value::parse_json(&json).unwrap();
    let records = parsed.as_seq().unwrap();
    assert_eq!(records.len(), trace.len());
    assert!(records[0].get("lambda").unwrap().as_f64().is_some());
}
