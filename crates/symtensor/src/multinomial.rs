//! Exact integer combinatorics: factorials, binomial and multinomial
//! coefficients, and the streaming multinomial computations of the paper's
//! `MULTINOMIAL0` / `MULTINOMIAL1` helper functions (Figure 2 / Figure 3).
//!
//! All arithmetic is exact `u64`/`u128`; the supported tensor orders
//! (`m <= 20`) keep `m!` within `u64`.

/// Largest tensor order supported by exact `u64` factorials (`20! < 2^64`).
pub const MAX_ORDER: usize = 20;

/// `k!` for `k <= 20`, exact.
///
/// # Panics
/// Panics if `k > 20` (would overflow `u64`).
#[inline]
pub fn factorial(k: usize) -> u64 {
    const TABLE: [u64; 21] = {
        let mut t = [1u64; 21];
        let mut i = 1;
        while i <= 20 {
            t[i] = t[i - 1] * i as u64;
            i += 1;
        }
        t
    };
    TABLE[k]
}

/// Error returned by the checked combinatorics routines when an exact
/// `u64` result does not exist (the true value exceeds `u64::MAX`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CombinatoricsOverflow {
    /// Human-readable description of the quantity that overflowed.
    pub what: String,
}

impl std::fmt::Display for CombinatoricsOverflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} overflows u64", self.what)
    }
}

impl std::error::Error for CombinatoricsOverflow {}

/// Binomial coefficient `C(n, k)` with exact intermediate arithmetic.
///
/// Returns 0 when `k > n`. Uses the multiplicative formula with `u128`
/// intermediates so values up to `u64::MAX` are produced without overflow.
///
/// A result overflowing `u64` is a debug-checked precondition violation;
/// release builds saturate to `u64::MAX`. Use [`try_binomial`] when the
/// arguments come from untrusted input.
pub fn binomial(n: usize, k: usize) -> u64 {
    match try_binomial(n, k) {
        Ok(v) => v,
        Err(e) => {
            debug_assert!(false, "{e}");
            u64::MAX
        }
    }
}

/// Checked binomial coefficient `C(n, k)`: returns an error instead of
/// panicking when the result overflows `u64`.
///
/// Returns `Ok(0)` when `k > n`.
pub fn try_binomial(n: usize, k: usize) -> Result<u64, CombinatoricsOverflow> {
    if k > n {
        return Ok(0);
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        // Multiply before dividing: acc * (n-i) is always divisible by (i+1)
        // because acc holds C(n, i) after each step.
        acc = acc * (n - i) as u128 / (i + 1) as u128;
        // Early out: once the running value exceeds u64::MAX it can only
        // grow for the remaining factors (each >= 1).
        if acc > u64::MAX as u128 {
            return Err(CombinatoricsOverflow {
                what: format!("binomial coefficient C({n}, {k})"),
            });
        }
    }
    u64::try_from(acc).map_err(|_| CombinatoricsOverflow {
        what: format!("binomial coefficient C({n}, {k})"),
    })
}

/// Number of unique entries of a symmetric tensor in `R^[m,n]`:
/// `C(m+n-1, m)` (Property 1 of the paper).
#[inline]
pub fn num_unique_entries(m: usize, n: usize) -> u64 {
    binomial(m + n - 1, m)
}

/// Checked variant of [`num_unique_entries`]: `Err` instead of a panic
/// when `C(m+n-1, m)` does not fit in `u64` (huge shapes from untrusted
/// specs).
#[inline]
pub fn try_num_unique_entries(m: usize, n: usize) -> Result<u64, CombinatoricsOverflow> {
    try_binomial(m + n - 1, m)
}

/// Multinomial coefficient `m! / (k_1! k_2! ... k_n!)` from a monomial
/// representation (the counts `k_i` must sum to `m`).
///
/// This is the number of tensor indices in the index class (Property 2).
///
/// # Panics
/// Panics if `sum(counts) > 20`.
pub fn multinomial(counts: &[usize]) -> u64 {
    let m: usize = counts.iter().sum();
    let mut denom: u64 = 1;
    for &k in counts {
        denom *= factorial(k);
    }
    factorial(m) / denom
}

/// The paper's `MULTINOMIAL0` (Figure 2): multinomial coefficient of an index
/// class computed in one pass over its *index representation* (a
/// nondecreasing array of `m` indices).
///
/// Walks the array accumulating `1·2·…` for each run of equal indices, i.e.
/// the denominator `k_1!·…·k_n!`, then divides the precomputed `m!`.
pub fn multinomial0(index_rep: &[usize]) -> u64 {
    let m = index_rep.len();
    let mut div: u64 = 1;
    let mut mult: u64 = 0;
    let mut curr: Option<usize> = None;
    for &i in index_rep {
        if Some(i) != curr {
            mult = 1;
            curr = Some(i);
        } else {
            mult += 1;
            div *= mult;
        }
    }
    factorial(m) / div
}

/// The paper's `MULTINOMIAL1` (Figure 3): number of tensor indices in the
/// class of `index_rep` that contribute to output entry `j` of `A·x^{m-1}`,
/// i.e. `C(m-1; k_1, …, k_j - 1, …, k_n)`.
///
/// Same one-pass denominator computation as [`multinomial0`] but one
/// occurrence of `j` is ignored.
///
/// Returns 0 if `j` does not occur in `index_rep` (the class does not
/// contribute to entry `j`).
pub fn multinomial1(index_rep: &[usize], j: usize) -> u64 {
    let m = index_rep.len();
    if !index_rep.contains(&j) {
        return 0;
    }
    let mut div: u64 = 1;
    let mut mult: u64 = 0;
    let mut curr: Option<usize> = None;
    let mut skipped = false;
    for &i in index_rep {
        if !skipped && i == j {
            // Ignore one occurrence of j: do not advance the run counter.
            skipped = true;
            // If j starts a new run we must still reset the run state so the
            // next occurrence of j counts as the "first".
            if Some(i) != curr {
                mult = 0;
                curr = Some(i);
            }
            continue;
        }
        if Some(i) != curr {
            mult = 1;
            curr = Some(i);
        } else {
            mult += 1;
            div *= mult;
        }
    }
    factorial(m - 1) / div
}

/// Derive `MULTINOMIAL1` from a stored `MULTINOMIAL0` value: the paper's
/// Section V-C look-up trick, `σ(j) = c · k_j / m` where `c = C(m; k)`.
///
/// `k_j` is the number of occurrences of `j` in the index class and `m` the
/// tensor order. The product `c · k_j` is always divisible by `m`.
#[inline]
pub fn multinomial1_from_stored(c: u64, k_j: usize, m: usize) -> u64 {
    c * k_j as u64 / m as u64
}

/// Precomputed Pascal's-triangle table of binomial coefficients, used by the
/// rank/unrank routines in [`crate::index`] to avoid recomputing `C(n, k)`
/// in inner loops.
#[derive(Debug, Clone)]
pub struct BinomialTable {
    rows: usize,
    data: Vec<u64>,
}

impl BinomialTable {
    /// Build a table holding `C(i, j)` for all `i < rows`, `j <= i`.
    ///
    /// An entry overflowing `u64` (`rows > 68`) is a debug-checked
    /// precondition violation; release builds fall back to an empty table
    /// whose lookups panic. Use [`try_new`](Self::try_new) when `rows`
    /// comes from untrusted input.
    pub fn new(rows: usize) -> Self {
        Self::try_new(rows).unwrap_or_else(|e| {
            debug_assert!(false, "{e}");
            Self {
                rows: 0,
                data: Vec::new(),
            }
        })
    }

    /// Checked variant of [`new`](Self::new): `Err` instead of a panic
    /// when an entry of Pascal's triangle overflows `u64`.
    pub fn try_new(rows: usize) -> Result<Self, CombinatoricsOverflow> {
        let mut data = vec![0u64; rows * rows];
        for i in 0..rows {
            data[i * rows] = 1;
            for j in 1..=i {
                let above = data[(i - 1) * rows + j];
                let above_left = data[(i - 1) * rows + j - 1];
                data[i * rows + j] =
                    above
                        .checked_add(above_left)
                        .ok_or_else(|| CombinatoricsOverflow {
                            what: format!("binomial table entry C({i}, {j})"),
                        })?;
            }
        }
        Ok(Self { rows, data })
    }

    /// `C(n, k)`; returns 0 when `k > n`.
    ///
    /// # Panics
    /// Panics (index out of bounds) if `n >= rows`.
    #[inline]
    pub fn get(&self, n: usize, k: usize) -> u64 {
        if k > n {
            0
        } else {
            // For n >= rows the offset lands past the end of `data`
            // (n·rows ≥ rows²), so the slice indexing itself reports the
            // out-of-range row.
            self.data[n * self.rows + k]
        }
    }

    /// Number of rows in the table.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorials_match_known_values() {
        assert_eq!(factorial(0), 1);
        assert_eq!(factorial(1), 1);
        assert_eq!(factorial(5), 120);
        assert_eq!(factorial(10), 3_628_800);
        assert_eq!(factorial(20), 2_432_902_008_176_640_000);
    }

    #[test]
    #[should_panic]
    fn factorial_21_panics() {
        factorial(21);
    }

    #[test]
    fn binomial_small_cases() {
        assert_eq!(binomial(0, 0), 1);
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(6, 3), 20);
        assert_eq!(binomial(10, 10), 1);
        assert_eq!(binomial(3, 5), 0);
    }

    #[test]
    fn binomial_symmetry() {
        for n in 0..30 {
            for k in 0..=n {
                assert_eq!(binomial(n, k), binomial(n, n - k), "C({n},{k})");
            }
        }
    }

    #[test]
    fn binomial_pascal_recurrence() {
        for n in 1..25 {
            for k in 1..n {
                assert_eq!(binomial(n, k), binomial(n - 1, k - 1) + binomial(n - 1, k));
            }
        }
    }

    #[test]
    fn binomial_handles_large_args_without_overflowing_intermediates() {
        // C(64, 32) = 1832624140942590534 < u64::MAX, but naive factorial
        // arithmetic would overflow long before.
        assert_eq!(binomial(64, 32), 1_832_624_140_942_590_534);
    }

    #[test]
    fn unique_entry_counts_match_paper_examples() {
        // Paper Section V-A: m=4, n=3 has 15 unique values (81 total).
        assert_eq!(num_unique_entries(4, 3), 15);
        // Table I: m=3, n=4 has 20 index classes.
        assert_eq!(num_unique_entries(3, 4), 20);
        // Matrices: symmetric n x n has n(n+1)/2 unique entries.
        for n in 1..10 {
            assert_eq!(num_unique_entries(2, n), (n * (n + 1) / 2) as u64);
        }
    }

    #[test]
    fn multinomial_matches_definition() {
        assert_eq!(multinomial(&[2, 1]), 3); // 3!/2!1!
        assert_eq!(multinomial(&[3, 0, 0, 0]), 1);
        assert_eq!(multinomial(&[1, 1, 1]), 6);
        assert_eq!(multinomial(&[2, 2]), 6);
        assert_eq!(multinomial(&[4]), 1);
    }

    #[test]
    fn multinomial0_agrees_with_multinomial_on_monomials() {
        // index rep [0,1,1,4,4,4,4] (paper's example [1,2,2,5,5,5,5], 0-based)
        // has monomial rep [1,2,0,0,4] -> 7!/(1!2!4!) = 105.
        assert_eq!(multinomial0(&[0, 1, 1, 4, 4, 4, 4]), 105);
        assert_eq!(multinomial(&[1, 2, 0, 0, 4]), 105);
    }

    #[test]
    fn multinomial0_all_equal_indices() {
        assert_eq!(multinomial0(&[2, 2, 2, 2]), 1);
    }

    #[test]
    fn multinomial0_all_distinct_indices() {
        assert_eq!(multinomial0(&[0, 1, 2, 3]), 24);
    }

    #[test]
    fn multinomial1_paper_example() {
        // Paper Section III-B4: index rep [1,2,2,5,5,5,5] (1-based), computing
        // element 5: accumulated product 1!·2!·3! = 12, so 6!/12 = 60.
        assert_eq!(multinomial1(&[0, 1, 1, 4, 4, 4, 4], 4), 60);
    }

    #[test]
    fn multinomial1_zero_when_index_absent() {
        assert_eq!(multinomial1(&[0, 0, 2], 1), 0);
    }

    #[test]
    fn multinomial1_matches_direct_formula() {
        // For class with monomial [k_0, ..], sigma(j) = (m-1)!/(..(k_j-1)!..).
        let rep = [0usize, 0, 1, 2, 2, 2];
        // monomial = [2, 1, 3], m = 6.
        let m1 = factorial(5) / (factorial(1) * factorial(1) * factorial(3));
        assert_eq!(multinomial1(&rep, 0), m1);
        let m2 = factorial(5) / (factorial(2) * factorial(0) * factorial(3));
        assert_eq!(multinomial1(&rep, 1), m2);
        let m3 = factorial(5) / (factorial(2) * factorial(1) * factorial(2));
        assert_eq!(multinomial1(&rep, 2), m3);
    }

    #[test]
    fn multinomial1_from_stored_matches_direct() {
        let rep = [0usize, 0, 1, 2, 2, 2];
        let counts = [2usize, 1, 3];
        let c = multinomial0(&rep);
        for (j, &kj) in counts.iter().enumerate() {
            assert_eq!(
                multinomial1_from_stored(c, kj, rep.len()),
                multinomial1(&rep, j),
                "j={j}"
            );
        }
    }

    #[test]
    fn multinomial1_sums_to_m_times_total_over_distinct_indices() {
        // Sum over distinct j of k_j * C(m-1; ... k_j - 1 ...) equals
        // m * C(m; k) / m * ... actually: sum_j k_j/m * C(m;k) * m = C(m;k)*m.
        // Simpler identity: sum over distinct j of multinomial1 * 1 weighted
        // by nothing: sum_j C(m-1; k - e_j) = C(m; k) * (sum_j k_j) / m = C(m;k).
        let rep = [0usize, 1, 1, 3, 3, 3];
        let total: u64 = (0..4).map(|j| multinomial1(&rep, j)).sum();
        assert_eq!(total, multinomial0(&rep));
    }

    #[test]
    fn try_binomial_reports_overflow_instead_of_panicking() {
        // C(68, 34) > u64::MAX; the checked variant must return Err.
        assert!(try_binomial(68, 34).is_err());
        assert!(try_binomial(500, 250).is_err());
        // In-range values agree with the panicking variant.
        assert_eq!(try_binomial(64, 32), Ok(binomial(64, 32)));
        assert_eq!(try_binomial(3, 5), Ok(0));
    }

    #[test]
    fn try_num_unique_entries_rejects_huge_shapes() {
        // (m, n) = (40, 40): C(79, 40) overflows u64.
        assert!(try_num_unique_entries(40, 40).is_err());
        assert_eq!(try_num_unique_entries(4, 3), Ok(15));
    }

    #[test]
    fn binomial_table_try_new_reports_overflow() {
        // Row 68 contains C(68, 34) > u64::MAX.
        assert!(BinomialTable::try_new(69).is_err());
        let t = BinomialTable::try_new(68).expect("rows <= 68 fit in u64");
        assert_eq!(t.get(67, 33), binomial(67, 33));
    }

    #[test]
    fn binomial_table_matches_direct_computation() {
        let t = BinomialTable::new(40);
        for n in 0..40 {
            for k in 0..40 {
                assert_eq!(t.get(n, k), binomial(n, k), "C({n},{k})");
            }
        }
    }

    #[test]
    #[should_panic]
    fn binomial_table_out_of_range_panics() {
        let t = BinomialTable::new(5);
        t.get(5, 2);
    }
}
