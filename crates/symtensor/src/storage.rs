//! Packed storage for dense symmetric tensors (Section III-A of the paper).
//!
//! A [`SymTensor`] stores one value per index class, in lexicographic order
//! of index representations, so a symmetric tensor in `R^[m,n]` occupies
//! `C(m+n-1, m)` scalars — a factor of about `m!` less than the `n^m`
//! entries of the full array — with no per-entry index metadata.

use crate::error::{Error, Result};
use crate::index::{IndexClass, IndexClassIter};
use crate::multinomial::{num_unique_entries, MAX_ORDER};
use crate::scalar::Scalar;
use rand::Rng;
use serde::{Deserialize, Serialize, Value};

/// A dense symmetric tensor in `R^[m,n]` in packed (unique-entry) storage.
#[derive(Debug, Clone, PartialEq)]
pub struct SymTensor<S> {
    m: usize,
    n: usize,
    values: Vec<S>,
}

impl<S: Serialize> Serialize for SymTensor<S> {
    fn to_value(&self) -> Value {
        Value::object(vec![
            ("m", Value::UInt(self.m as u64)),
            ("n", Value::UInt(self.n as u64)),
            ("values", self.values.to_value()),
        ])
    }
}

impl<'de, S> Deserialize<'de> for SymTensor<S>
where
    S: for<'a> Deserialize<'a> + Scalar,
{
    fn from_value(value: &'de Value) -> std::result::Result<Self, serde::Error> {
        let field = |name: &str| {
            value
                .get(name)
                .ok_or_else(|| serde::Error::custom(format!("SymTensor: missing field '{name}'")))
        };
        let m = field("m")?
            .as_u64()
            .ok_or_else(|| serde::Error::custom("SymTensor: 'm' must be an integer"))?
            as usize;
        let n = field("n")?
            .as_u64()
            .ok_or_else(|| serde::Error::custom("SymTensor: 'n' must be an integer"))?
            as usize;
        let values = Vec::<S>::from_value(field("values")?)?;
        SymTensor::from_values(m, n, values)
            .map_err(|e| serde::Error::custom(format!("SymTensor: {e}")))
    }
}

impl<S: Scalar> SymTensor<S> {
    /// Validate `(m, n)` and compute the packed length.
    fn checked_len(m: usize, n: usize) -> Result<usize> {
        if !(1..=MAX_ORDER).contains(&m) {
            return Err(Error::OrderOutOfRange(m));
        }
        if n < 1 {
            return Err(Error::DimensionOutOfRange(n));
        }
        Ok(num_unique_entries(m, n) as usize)
    }

    /// The zero tensor of order `m` and dimension `n`.
    ///
    /// A shape with `m` in `1..=20` and `n >= 1` is a debug-checked
    /// precondition; release builds yield an empty value buffer for
    /// invalid shapes.
    pub fn zeros(m: usize, n: usize) -> Self {
        let len = Self::checked_len(m, n).unwrap_or_else(|e| {
            debug_assert!(false, "invalid tensor shape: {e}");
            0
        });
        Self {
            m,
            n,
            values: vec![S::ZERO; len],
        }
    }

    /// Build a tensor from packed values in lexicographic index-class order.
    pub fn from_values(m: usize, n: usize, values: Vec<S>) -> Result<Self> {
        let len = Self::checked_len(m, n)?;
        if values.len() != len {
            return Err(Error::ValueLengthMismatch {
                expected: len,
                actual: values.len(),
            });
        }
        Ok(Self { m, n, values })
    }

    /// Build a tensor by evaluating `f` on every index class, in order.
    ///
    /// A shape with `m` in `1..=20` and `n >= 1` is a debug-checked
    /// precondition; release builds yield an empty value buffer for
    /// invalid shapes.
    pub fn from_fn(m: usize, n: usize, mut f: impl FnMut(&IndexClass) -> S) -> Self {
        let len = Self::checked_len(m, n).unwrap_or_else(|e| {
            debug_assert!(false, "invalid tensor shape: {e}");
            0
        });
        let mut values = Vec::with_capacity(len);
        for class in IndexClassIter::new(m, n) {
            values.push(f(&class));
        }
        Self { m, n, values }
    }

    /// A random symmetric tensor with unique entries drawn i.i.d. uniformly
    /// from `[-1, 1]` (the paper's choice for synthetic experiments).
    ///
    /// A shape with `m` in `1..=20` and `n >= 1` is a debug-checked
    /// precondition; release builds yield an empty value buffer for
    /// invalid shapes.
    pub fn random<R: Rng + ?Sized>(m: usize, n: usize, rng: &mut R) -> Self {
        let len = Self::checked_len(m, n).unwrap_or_else(|e| {
            debug_assert!(false, "invalid tensor shape: {e}");
            0
        });
        let values = (0..len)
            .map(|_| S::from_f64(rng.gen_range(-1.0..=1.0)))
            .collect();
        Self { m, n, values }
    }

    /// Tensor order `m` (number of modes).
    #[inline]
    pub fn order(&self) -> usize {
        self.m
    }

    /// A borrowed, zero-copy view of this tensor.
    #[inline]
    pub fn view(&self) -> SymTensorRef<'_, S> {
        SymTensorRef {
            m: self.m,
            n: self.n,
            values: &self.values,
        }
    }

    /// Tensor dimension `n` (extent of every mode).
    #[inline]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of stored unique entries, `C(m+n-1, m)`.
    #[inline]
    pub fn num_unique(&self) -> usize {
        self.values.len()
    }

    /// Total number of entries of the full array, `n^m`.
    #[inline]
    pub fn num_total(&self) -> u64 {
        (self.n as u64).pow(self.m as u32)
    }

    /// The packed values, in lexicographic index-class order.
    #[inline]
    pub fn values(&self) -> &[S] {
        &self.values
    }

    /// Mutable access to the packed values.
    #[inline]
    pub fn values_mut(&mut self) -> &mut [S] {
        &mut self.values
    }

    /// Consume the tensor, returning the packed value vector.
    pub fn into_values(self) -> Vec<S> {
        self.values
    }

    /// Value of the entry at packed position `rank` (lexicographic order).
    #[inline]
    pub fn value_at_rank(&self, rank: usize) -> S {
        self.values[rank]
    }

    /// Value of the entry for a given index class.
    pub fn value_at_class(&self, class: &IndexClass) -> S {
        debug_assert_eq!(class.order(), self.m);
        debug_assert_eq!(class.dim(), self.n);
        self.values[class.rank() as usize]
    }

    /// Value at an arbitrary tensor index (any permutation); the index is
    /// canonicalized by sorting.
    pub fn get(&self, tensor_index: &[usize]) -> Result<S> {
        let rank = self.rank_of(tensor_index)?;
        Ok(self.values[rank])
    }

    /// Set the value of the whole index class containing `tensor_index`.
    pub fn set(&mut self, tensor_index: &[usize], value: S) -> Result<()> {
        let rank = self.rank_of(tensor_index)?;
        self.values[rank] = value;
        Ok(())
    }

    fn rank_of(&self, tensor_index: &[usize]) -> Result<usize> {
        rank_of(self.m, self.n, tensor_index)
    }

    /// Iterate over `(class, value)` pairs in lexicographic order.
    pub fn iter_classes(&self) -> impl Iterator<Item = (IndexClass, S)> + '_ {
        IndexClassIter::new(self.m, self.n).zip(self.values.iter().copied())
    }

    /// Frobenius norm of the *full* symmetric tensor: each unique value is
    /// weighted by the size of its index class.
    pub fn frobenius_norm(&self) -> S {
        let mut acc = S::ZERO;
        for (class, v) in self.iter_classes() {
            acc += S::from_u64(class.occurrences()) * v * v;
        }
        acc.sqrt()
    }

    /// Scale every entry by `c` in place.
    pub fn scale(&mut self, c: S) {
        for v in &mut self.values {
            *v *= c;
        }
    }

    /// Elementwise sum of two tensors of identical shape.
    pub fn add(&self, other: &Self) -> Result<Self> {
        if self.m != other.m || self.n != other.n {
            return Err(Error::ValueLengthMismatch {
                expected: self.values.len(),
                actual: other.values.len(),
            });
        }
        let values = self
            .values
            .iter()
            .zip(other.values.iter())
            .map(|(&a, &b)| a + b)
            .collect();
        Ok(Self {
            m: self.m,
            n: self.n,
            values,
        })
    }

    /// Elementwise difference `self − other` of two tensors of identical
    /// shape.
    pub fn sub(&self, other: &Self) -> Result<Self> {
        if self.m != other.m || self.n != other.n {
            return Err(Error::ValueLengthMismatch {
                expected: self.values.len(),
                actual: other.values.len(),
            });
        }
        let values = self
            .values
            .iter()
            .zip(other.values.iter())
            .map(|(&a, &b)| a - b)
            .collect();
        Ok(Self {
            m: self.m,
            n: self.n,
            values,
        })
    }

    /// Frobenius inner product `⟨A, B⟩ = Σ a_{i₁…i_m} b_{i₁…i_m}` of the
    /// *full* tensors: each packed product is weighted by the size of its
    /// index class, so `inner_product(A, A) == frobenius_norm(A)²`.
    pub fn inner_product(&self, other: &Self) -> Result<S> {
        if self.m != other.m || self.n != other.n {
            return Err(Error::ValueLengthMismatch {
                expected: self.values.len(),
                actual: other.values.len(),
            });
        }
        let mut acc = S::ZERO;
        for (class, (a, b)) in
            IndexClassIter::new(self.m, self.n).zip(self.values.iter().zip(other.values.iter()))
        {
            acc += S::from_u64(class.occurrences()) * *a * *b;
        }
        Ok(acc)
    }

    /// Maximum absolute difference between packed values of two tensors of
    /// identical shape.
    pub fn max_abs_diff(&self, other: &Self) -> Result<S> {
        if self.m != other.m || self.n != other.n {
            return Err(Error::ValueLengthMismatch {
                expected: self.values.len(),
                actual: other.values.len(),
            });
        }
        let mut worst = S::ZERO;
        for (&a, &b) in self.values.iter().zip(other.values.iter()) {
            worst = worst.max((a - b).abs());
        }
        Ok(worst)
    }

    /// Convert each stored value to `f64` (reference-precision copies).
    pub fn to_f64(&self) -> SymTensor<f64> {
        SymTensor {
            m: self.m,
            n: self.n,
            values: self.values.iter().map(|v| v.to_f64()).collect(),
        }
    }

    /// Convert each stored value to `f32` (the precision the paper uses on
    /// the GPU).
    pub fn to_f32(&self) -> SymTensor<f32> {
        SymTensor {
            m: self.m,
            n: self.n,
            values: self.values.iter().map(|v| v.to_f64() as f32).collect(),
        }
    }

    /// The identity-like diagonal tensor: `a_{i…i} = 1`, all other classes 0.
    /// For `m = 2` this is the identity matrix.
    pub fn diagonal_ones(m: usize, n: usize) -> Self {
        Self::from_fn(m, n, |class| {
            let idx = class.indices();
            if idx.iter().all(|&i| i == idx[0]) {
                S::ONE
            } else {
                S::ZERO
            }
        })
    }

    /// The symmetric outer power `v ⊗ v ⊗ … ⊗ v` (m copies) of a vector,
    /// which is a rank-one symmetric tensor with `A x^m = (v·x)^m`.
    pub fn rank_one(m: usize, v: &[S]) -> Self {
        let n = v.len();
        Self::from_fn(m, n, |class| {
            let mut prod = S::ONE;
            for &i in class.indices() {
                prod *= v[i];
            }
            prod
        })
    }
}

/// Canonical packed rank of an arbitrary tensor index for shape `(m, n)`.
fn rank_of(m: usize, n: usize, tensor_index: &[usize]) -> Result<usize> {
    if tensor_index.len() != m {
        return Err(Error::IndexLengthMismatch {
            expected: m,
            actual: tensor_index.len(),
        });
    }
    if let Some(&bad) = tensor_index.iter().find(|&&i| i >= n) {
        return Err(Error::IndexOutOfBounds { index: bad, n });
    }
    let class = IndexClass::from_tensor_index(tensor_index.to_vec(), n);
    Ok(class.rank() as usize)
}

/// A borrowed view of a packed symmetric tensor: shape metadata plus a
/// slice of unique entries that may live anywhere — inside an owned
/// [`SymTensor`], or inside the contiguous arena of a
/// [`crate::TensorBatch`]. `Copy`, so it is passed by value everywhere the
/// kernels need a tensor without requiring an owned allocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SymTensorRef<'a, S> {
    m: usize,
    n: usize,
    values: &'a [S],
}

impl<'a, S: Scalar> SymTensorRef<'a, S> {
    /// Build a view over packed values in lexicographic index-class order,
    /// validating the shape and the buffer length.
    pub fn from_values(m: usize, n: usize, values: &'a [S]) -> Result<Self> {
        let len = SymTensor::<S>::checked_len(m, n)?;
        if values.len() != len {
            return Err(Error::ValueLengthMismatch {
                expected: len,
                actual: values.len(),
            });
        }
        Ok(Self { m, n, values })
    }

    /// Build a view from parts already known to be consistent.
    #[inline]
    pub(crate) fn from_raw(m: usize, n: usize, values: &'a [S]) -> Self {
        debug_assert_eq!(
            SymTensor::<S>::checked_len(m, n).ok(),
            Some(values.len()),
            "inconsistent view shape"
        );
        Self { m, n, values }
    }

    /// Tensor order `m` (number of modes).
    #[inline]
    pub fn order(&self) -> usize {
        self.m
    }

    /// Tensor dimension `n` (extent of every mode).
    #[inline]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of stored unique entries, `C(m+n-1, m)`.
    #[inline]
    pub fn num_unique(&self) -> usize {
        self.values.len()
    }

    /// The packed values, in lexicographic index-class order.
    #[inline]
    pub fn values(&self) -> &'a [S] {
        self.values
    }

    /// Value of the entry at packed position `rank` (lexicographic order).
    #[inline]
    pub fn value_at_rank(&self, rank: usize) -> S {
        self.values[rank]
    }

    /// Value of the entry for a given index class.
    pub fn value_at_class(&self, class: &IndexClass) -> S {
        debug_assert_eq!(class.order(), self.m);
        debug_assert_eq!(class.dim(), self.n);
        self.values[class.rank() as usize]
    }

    /// Value at an arbitrary tensor index (any permutation); the index is
    /// canonicalized by sorting.
    pub fn get(&self, tensor_index: &[usize]) -> Result<S> {
        let rank = rank_of(self.m, self.n, tensor_index)?;
        Ok(self.values[rank])
    }

    /// Iterate over `(class, value)` pairs in lexicographic order.
    pub fn iter_classes(&self) -> impl Iterator<Item = (IndexClass, S)> + 'a {
        IndexClassIter::new(self.m, self.n).zip(self.values.iter().copied())
    }

    /// Frobenius norm of the *full* symmetric tensor: each unique value is
    /// weighted by the size of its index class.
    pub fn frobenius_norm(&self) -> S {
        let mut acc = S::ZERO;
        for (class, v) in self.iter_classes() {
            acc += S::from_u64(class.occurrences()) * v * v;
        }
        acc.sqrt()
    }

    /// Copy the viewed entries into an owned [`SymTensor`].
    pub fn to_owned(&self) -> SymTensor<S> {
        SymTensor {
            m: self.m,
            n: self.n,
            values: self.values.to_vec(),
        }
    }
}

impl<'a, S: Scalar> From<&'a SymTensor<S>> for SymTensorRef<'a, S> {
    fn from(t: &'a SymTensor<S>) -> Self {
        t.view()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn view_round_trips_and_reads_like_the_tensor() {
        let mut rng = StdRng::seed_from_u64(91);
        let t = SymTensor::<f64>::random(4, 3, &mut rng);
        let v = t.view();
        assert_eq!(v.order(), 4);
        assert_eq!(v.dim(), 3);
        assert_eq!(v.num_unique(), 15);
        assert_eq!(v.values(), t.values());
        assert_eq!(v.value_at_rank(3), t.value_at_rank(3));
        assert_eq!(v.get(&[2, 0, 1, 0]).unwrap(), t.get(&[2, 0, 1, 0]).unwrap());
        assert_eq!(v.frobenius_norm(), t.frobenius_norm());
        assert_eq!(v.to_owned(), t);
    }

    #[test]
    fn view_from_values_validates() {
        let buf = vec![0.0f64; 15];
        assert!(SymTensorRef::from_values(4, 3, &buf).is_ok());
        assert!(matches!(
            SymTensorRef::from_values(4, 3, &buf[..14]),
            Err(Error::ValueLengthMismatch {
                expected: 15,
                actual: 14
            })
        ));
        assert!(SymTensorRef::from_values(0, 3, &buf).is_err());
    }

    #[test]
    fn zeros_has_expected_unique_count() {
        let t = SymTensor::<f64>::zeros(4, 3);
        assert_eq!(t.num_unique(), 15);
        assert_eq!(t.num_total(), 81);
        assert!(t.values().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_values_validates_length() {
        assert!(SymTensor::<f64>::from_values(4, 3, vec![0.0; 15]).is_ok());
        let err = SymTensor::<f64>::from_values(4, 3, vec![0.0; 14]).unwrap_err();
        assert_eq!(
            err,
            Error::ValueLengthMismatch {
                expected: 15,
                actual: 14
            }
        );
    }

    #[test]
    fn shape_validation() {
        assert!(matches!(
            SymTensor::<f64>::from_values(0, 3, vec![]),
            Err(Error::OrderOutOfRange(0))
        ));
        assert!(matches!(
            SymTensor::<f64>::from_values(21, 3, vec![]),
            Err(Error::OrderOutOfRange(21))
        ));
        assert!(matches!(
            SymTensor::<f64>::from_values(3, 0, vec![]),
            Err(Error::DimensionOutOfRange(0))
        ));
    }

    #[test]
    fn get_is_permutation_invariant() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = SymTensor::<f64>::random(3, 3, &mut rng);
        let a = t.get(&[0, 1, 2]).unwrap();
        for perm in [[0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]] {
            assert_eq!(t.get(&perm).unwrap(), a);
        }
    }

    #[test]
    fn set_updates_whole_class() {
        let mut t = SymTensor::<f64>::zeros(3, 2);
        t.set(&[1, 0, 0], 5.0).unwrap();
        assert_eq!(t.get(&[0, 0, 1]).unwrap(), 5.0);
        assert_eq!(t.get(&[0, 1, 0]).unwrap(), 5.0);
        assert_eq!(t.get(&[0, 0, 0]).unwrap(), 0.0);
    }

    #[test]
    fn get_rejects_bad_indices() {
        let t = SymTensor::<f64>::zeros(3, 2);
        assert!(matches!(
            t.get(&[0, 1]),
            Err(Error::IndexLengthMismatch { .. })
        ));
        assert!(matches!(
            t.get(&[0, 1, 2]),
            Err(Error::IndexOutOfBounds { index: 2, n: 2 })
        ));
    }

    #[test]
    fn from_fn_visits_classes_in_order() {
        let t = SymTensor::<f64>::from_fn(3, 4, |c| c.rank() as f64);
        for (i, &v) in t.values().iter().enumerate() {
            assert_eq!(v, i as f64);
        }
    }

    #[test]
    fn random_values_in_range() {
        let mut rng = StdRng::seed_from_u64(42);
        let t = SymTensor::<f32>::random(4, 3, &mut rng);
        assert!(t.values().iter().all(|&v| (-1.0..=1.0).contains(&v)));
        assert_eq!(t.num_unique(), 15);
    }

    #[test]
    fn frobenius_norm_of_identity_matrix() {
        // Identity n x n has Frobenius norm sqrt(n).
        let t = SymTensor::<f64>::diagonal_ones(2, 4);
        assert!((t.frobenius_norm() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn frobenius_norm_counts_occurrences() {
        // Tensor with a_{001} class = 1 (3 occurrences), everything else 0:
        // full Frobenius norm is sqrt(3).
        let mut t = SymTensor::<f64>::zeros(3, 2);
        t.set(&[0, 0, 1], 1.0).unwrap();
        assert!((t.frobenius_norm() - 3.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn rank_one_evaluates_as_power_of_dot() {
        let v = [0.5f64, -1.0, 2.0];
        let t = SymTensor::rank_one(3, &v);
        // a_{ijk} = v_i v_j v_k: check a few entries.
        assert!((t.get(&[0, 1, 2]).unwrap() - -0.5 * 2.0).abs() < 1e-12);
        assert!((t.get(&[2, 2, 2]).unwrap() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn scale_and_add() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = SymTensor::<f64>::random(3, 3, &mut rng);
        let mut b = a.clone();
        b.scale(2.0);
        let sum = a.add(&a).unwrap();
        assert_eq!(sum.max_abs_diff(&b).unwrap(), 0.0);
    }

    #[test]
    fn add_rejects_shape_mismatch() {
        let a = SymTensor::<f64>::zeros(3, 3);
        let b = SymTensor::<f64>::zeros(3, 4);
        assert!(a.add(&b).is_err());
        assert!(a.sub(&b).is_err());
        assert!(a.inner_product(&b).is_err());
        assert!(a.max_abs_diff(&b).is_err());
    }

    #[test]
    fn sub_inverts_add() {
        let mut rng = StdRng::seed_from_u64(21);
        let a = SymTensor::<f64>::random(4, 3, &mut rng);
        let b = SymTensor::<f64>::random(4, 3, &mut rng);
        let back = a.add(&b).unwrap().sub(&b).unwrap();
        assert!(back.max_abs_diff(&a).unwrap() < 1e-14);
    }

    #[test]
    fn inner_product_matches_frobenius_norm() {
        let mut rng = StdRng::seed_from_u64(22);
        let a = SymTensor::<f64>::random(3, 4, &mut rng);
        let ip = a.inner_product(&a).unwrap();
        let fro = a.frobenius_norm();
        assert!((ip - fro * fro).abs() < 1e-12 * (1.0 + ip.abs()));
    }

    #[test]
    fn inner_product_matches_dense_expansion() {
        use crate::dense::DenseTensor;
        let mut rng = StdRng::seed_from_u64(23);
        let a = SymTensor::<f64>::random(3, 3, &mut rng);
        let b = SymTensor::<f64>::random(3, 3, &mut rng);
        let packed = a.inner_product(&b).unwrap();
        let da = DenseTensor::from_sym(&a);
        let db = DenseTensor::from_sym(&b);
        let dense: f64 = da
            .values()
            .iter()
            .zip(db.values())
            .map(|(p, q)| p * q)
            .sum();
        assert!((packed - dense).abs() < 1e-12 * (1.0 + dense.abs()));
    }

    #[test]
    fn precision_conversions() {
        let mut rng = StdRng::seed_from_u64(11);
        let t = SymTensor::<f64>::random(4, 3, &mut rng);
        let t32 = t.to_f32();
        let back = t32.to_f64();
        assert!(t.max_abs_diff(&back).unwrap() < 1e-6);
    }

    #[test]
    fn serde_traits_are_implemented() {
        fn assert_serde<T: serde::Serialize + serde::de::DeserializeOwned>() {}
        assert_serde::<SymTensor<f64>>();
        assert_serde::<SymTensor<f32>>();
    }

    #[test]
    fn serde_round_trips_through_json() {
        let mut rng = StdRng::seed_from_u64(19);
        let t = SymTensor::<f64>::random(3, 4, &mut rng);
        let json = serde::Serialize::to_value(&t).to_json();
        let parsed = serde::Value::parse_json(&json).unwrap();
        let back = <SymTensor<f64> as serde::Deserialize>::from_value(&parsed).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn serde_rejects_inconsistent_shape() {
        let v = serde::Value::object(vec![
            ("m", serde::Value::UInt(3)),
            ("n", serde::Value::UInt(2)),
            ("values", vec![0.0f64; 3].to_value()),
        ]);
        assert!(<SymTensor<f64> as serde::Deserialize>::from_value(&v).is_err());
    }

    #[test]
    fn iter_classes_pairs_ranks_with_values() {
        let t = SymTensor::<f64>::from_fn(3, 3, |c| c.rank() as f64 * 2.0);
        for (class, v) in t.iter_classes() {
            assert_eq!(v, class.rank() as f64 * 2.0);
        }
    }

    #[test]
    fn into_values_returns_packed_buffer() {
        let t = SymTensor::<f64>::from_fn(2, 2, |c| c.rank() as f64);
        assert_eq!(t.into_values(), vec![0.0, 1.0, 2.0]);
    }
}
