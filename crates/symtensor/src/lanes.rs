//! Lockstep batch-lane kernels: `A·xᵐ` / `A·xᵐ⁻¹` for a panel of
//! [`LANE_WIDTH`] tensors evaluated *in lockstep* over the packed
//! [`crate::TensorBatch`] arena.
//!
//! The paper's workload (Section VI) is millions of independent small
//! tensors of one shape. The per-tensor kernels walk the shared index and
//! coefficient tables once *per tensor*; this module restructures the loop
//! the way Schatz et al. block symmetric contractions: gather each
//! unique-entry stride across a panel of `W` tensors into a
//! structure-of-arrays lane buffer (one transpose per panel, amortized over
//! every subsequent kernel call), walk the shared per-shape tables once per
//! *class*, and update all `W` accumulators per step. The inner `W`-wide
//! loops carry no cross-lane dependencies, so they autovectorize — and the
//! dependent-accumulation chain of the scalar kernel is broken `W` ways.
//!
//! Per-lane arithmetic is ordered exactly as in
//! [`PrecomputedTables::axm`]/[`PrecomputedTables::axm1`], so each lane's
//! result is bitwise identical to the scalar table-driven kernel — the
//! lockstep SS-HOPM driver in `sshopm` relies on this for its parity suite.

use crate::batch::TensorBatchRef;
use crate::error::{Error, Result};
use crate::kernels::{check_shape, check_vec, PrecomputedTables, TensorKernels};
use crate::multinomial::multinomial1_from_stored;
use crate::scalar::Scalar;
use crate::storage::SymTensorRef;

/// Number of tensors evaluated in lockstep by one [`LanePanel`].
///
/// Eight lanes of `f64` fill a 512-bit vector register (two 256-bit ones on
/// AVX2); the tail panel of a batch simply runs with zero-padded lanes.
pub const LANE_WIDTH: usize = 8;

/// The lockstep kernel family: shared per-shape tables plus the panel
/// evaluation routines.
///
/// As a [`TensorKernels`] implementation it falls back to the scalar
/// table-driven kernels (name `"batched"`), so adaptive solvers that cannot
/// run in lockstep still work with `--kernel batched`.
#[derive(Debug, Clone)]
pub struct BatchedKernels {
    tables: PrecomputedTables,
}

impl BatchedKernels {
    /// Build the shared tables for shape `(m, n)`.
    pub fn new(m: usize, n: usize) -> Self {
        Self {
            tables: PrecomputedTables::new(m, n),
        }
    }

    /// Tensor order the kernels were built for.
    #[inline]
    pub fn order(&self) -> usize {
        self.tables.order()
    }

    /// Tensor dimension the kernels were built for.
    #[inline]
    pub fn dim(&self) -> usize {
        self.tables.dim()
    }

    /// The underlying shared tables.
    #[inline]
    pub fn tables(&self) -> &PrecomputedTables {
        &self.tables
    }
}

impl<S: Scalar> TensorKernels<S> for BatchedKernels {
    fn axm(&self, a: SymTensorRef<'_, S>, x: &[S]) -> Result<S> {
        self.tables.axm(a, x)
    }

    fn axm1(&self, a: SymTensorRef<'_, S>, x: &[S], y: &mut [S]) -> Result<()> {
        self.tables.axm1(a, x, y)
    }

    fn name(&self) -> &'static str {
        "batched"
    }
}

/// A structure-of-arrays view of up to [`LANE_WIDTH`] same-shape tensors:
/// entry `e` of lane `w` lives at `soa[e * LANE_WIDTH + w]`, so the panel
/// kernels stream `W` contiguous values per table step.
///
/// Unused tail lanes are zero tensors — they compute harmless zeros and
/// their outputs are simply never read.
#[derive(Debug, Clone)]
pub struct LanePanel<S> {
    width: usize,
    soa: Vec<S>,
}

impl<S: Scalar> LanePanel<S> {
    /// Gather `width` tensors of a batch, starting at `start`, into lane
    /// form (the one transpose per panel that every later kernel call
    /// amortizes).
    ///
    /// # Errors
    /// Returns [`Error::ShapeMismatch`] if the batch shape differs from the
    /// kernels' shape, and [`Error::ValueLengthMismatch`] if `width` is zero
    /// or exceeds [`LANE_WIDTH`] or the batch slice is out of range.
    pub fn gather(
        kernels: &BatchedKernels,
        batch: TensorBatchRef<'_, S>,
        start: usize,
        width: usize,
    ) -> Result<Self> {
        if width == 0 || width > LANE_WIDTH || start + width > batch.len() {
            return Err(Error::ValueLengthMismatch {
                expected: LANE_WIDTH,
                actual: width,
            });
        }
        let (m, n) = batch.shape();
        if (m, n) != (kernels.order(), kernels.dim()) {
            return Err(Error::ShapeMismatch {
                expected: (kernels.order(), kernels.dim()),
                found: (m, n),
            });
        }
        let u = kernels.tables.num_unique();
        let mut soa = vec![S::ZERO; u * LANE_WIDTH];
        for w in 0..width {
            let t = batch.try_get(start + w)?;
            for (e, &v) in t.values().iter().enumerate() {
                soa[e * LANE_WIDTH + w] = v;
            }
        }
        Ok(Self { width, soa })
    }

    /// Gather from a slice of same-shape tensor views (the non-arena entry
    /// point used by tests and the bench harness).
    ///
    /// # Errors
    /// Same contract as [`LanePanel::gather`].
    pub fn gather_views(kernels: &BatchedKernels, tensors: &[SymTensorRef<'_, S>]) -> Result<Self> {
        if tensors.is_empty() || tensors.len() > LANE_WIDTH {
            return Err(Error::ValueLengthMismatch {
                expected: LANE_WIDTH,
                actual: tensors.len(),
            });
        }
        let u = kernels.tables.num_unique();
        let mut soa = vec![S::ZERO; u * LANE_WIDTH];
        for (w, t) in tensors.iter().enumerate() {
            check_shape(t, kernels.order(), kernels.dim())?;
            for (e, &v) in t.values().iter().enumerate() {
                soa[e * LANE_WIDTH + w] = v;
            }
        }
        Ok(Self {
            width: tensors.len(),
            soa,
        })
    }

    /// Number of live lanes (gathered tensors).
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// `A·xᵐ` for every lane at once.
    ///
    /// `xs` holds the per-lane vectors component-major
    /// (`xs[i * LANE_WIDTH + w]` is component `i` of lane `w`, length
    /// `n · LANE_WIDTH`); `out` receives one scalar per lane (length
    /// [`LANE_WIDTH`]; entries past [`width`](Self::width) are meaningless).
    ///
    /// # Errors
    /// Returns [`Error::VectorLengthMismatch`] on wrongly sized `xs`/`out`.
    pub fn axm(&self, kernels: &BatchedKernels, xs: &[S], out: &mut [S]) -> Result<()> {
        let t = &kernels.tables;
        check_vec(xs, t.dim() * LANE_WIDTH)?;
        check_vec(out, LANE_WIDTH)?;
        for o in out.iter_mut() {
            *o = S::ZERO;
        }
        for (u, &coeff) in t.coeffs().iter().enumerate() {
            let mut xhat = [S::ONE; LANE_WIDTH];
            for &i in t.rep(u) {
                let xi = &xs[i as usize * LANE_WIDTH..(i as usize + 1) * LANE_WIDTH];
                for w in 0..LANE_WIDTH {
                    xhat[w] *= xi[w];
                }
            }
            let c = S::from_u64(coeff);
            let av = &self.soa[u * LANE_WIDTH..(u + 1) * LANE_WIDTH];
            for w in 0..LANE_WIDTH {
                out[w] += c * av[w] * xhat[w];
            }
        }
        Ok(())
    }

    /// `A·xᵐ⁻¹` for every lane at once, into `ys` (overwritten; same
    /// component-major `n · LANE_WIDTH` layout as `xs`).
    ///
    /// # Errors
    /// Returns [`Error::VectorLengthMismatch`] on wrongly sized `xs`/`ys`.
    pub fn axm1(&self, kernels: &BatchedKernels, xs: &[S], ys: &mut [S]) -> Result<()> {
        let t = &kernels.tables;
        let n = t.dim();
        let m = t.order();
        check_vec(xs, n * LANE_WIDTH)?;
        check_vec(ys, n * LANE_WIDTH)?;
        for e in ys.iter_mut() {
            *e = S::ZERO;
        }
        for (u, &c) in t.coeffs().iter().enumerate() {
            let rep = t.rep(u);
            let av = &self.soa[u * LANE_WIDTH..(u + 1) * LANE_WIDTH];
            for &(j, kj) in t.distinct(u) {
                // Product over the representation with one `j` removed —
                // recomputed per distinct index exactly as the scalar
                // kernel does, but across W lanes per multiply.
                let mut xhat = [S::ONE; LANE_WIDTH];
                let mut skipped = false;
                for &i in rep {
                    if !skipped && i == j {
                        skipped = true;
                        continue;
                    }
                    let xi = &xs[i as usize * LANE_WIDTH..(i as usize + 1) * LANE_WIDTH];
                    for w in 0..LANE_WIDTH {
                        xhat[w] *= xi[w];
                    }
                }
                let sigma = S::from_u64(multinomial1_from_stored(c, kj as usize, m));
                let j = j as usize;
                let yj = &mut ys[j * LANE_WIDTH..(j + 1) * LANE_WIDTH];
                for w in 0..LANE_WIDTH {
                    yj[w] += sigma * av[w] * xhat[w];
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::TensorBatch;
    use crate::storage::SymTensor;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_batch(m: usize, n: usize, len: usize, seed: u64) -> TensorBatch<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        TensorBatch::random(m, n, len, &mut rng).unwrap()
    }

    fn random_lane_vectors(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n * LANE_WIDTH)
            .map(|_| rng.gen_range(-1.0..=1.0))
            .collect()
    }

    #[test]
    fn panel_axm_is_bitwise_identical_to_scalar_tables() {
        let kernels = BatchedKernels::new(4, 3);
        let batch = random_batch(4, 3, 5, 1);
        let panel = LanePanel::gather(&kernels, batch.view(), 0, 5).unwrap();
        let xs = random_lane_vectors(3, 2);
        let mut out = [0.0; LANE_WIDTH];
        panel.axm(&kernels, &xs, &mut out).unwrap();
        for w in 0..5 {
            let x: Vec<f64> = (0..3).map(|i| xs[i * LANE_WIDTH + w]).collect();
            let want = kernels.tables().axm(batch.view().try_get(w).unwrap(), &x);
            assert_eq!(out[w].to_bits(), want.unwrap().to_bits(), "lane {w}");
        }
    }

    #[test]
    fn panel_axm1_is_bitwise_identical_to_scalar_tables() {
        let kernels = BatchedKernels::new(4, 3);
        let batch = random_batch(4, 3, LANE_WIDTH, 3);
        let panel = LanePanel::gather(&kernels, batch.view(), 0, LANE_WIDTH).unwrap();
        let xs = random_lane_vectors(3, 4);
        let mut ys = vec![0.0; 3 * LANE_WIDTH];
        panel.axm1(&kernels, &xs, &mut ys).unwrap();
        for w in 0..LANE_WIDTH {
            let x: Vec<f64> = (0..3).map(|i| xs[i * LANE_WIDTH + w]).collect();
            let mut want = vec![0.0; 3];
            kernels
                .tables()
                .axm1(batch.view().try_get(w).unwrap(), &x, &mut want)
                .unwrap();
            for i in 0..3 {
                assert_eq!(
                    ys[i * LANE_WIDTH + w].to_bits(),
                    want[i].to_bits(),
                    "lane {w} component {i}"
                );
            }
        }
    }

    #[test]
    fn panel_handles_other_shapes_and_partial_width() {
        for (m, n) in [(3, 2), (3, 4), (6, 3)] {
            let kernels = BatchedKernels::new(m, n);
            let batch = random_batch(m, n, 3, 100 + m as u64);
            let panel = LanePanel::gather(&kernels, batch.view(), 1, 2).unwrap();
            assert_eq!(panel.width(), 2);
            let xs = random_lane_vectors(n, 200 + n as u64);
            let mut ys = vec![0.0; n * LANE_WIDTH];
            panel.axm1(&kernels, &xs, &mut ys).unwrap();
            for w in 0..2 {
                let x: Vec<f64> = (0..n).map(|i| xs[i * LANE_WIDTH + w]).collect();
                let mut want = vec![0.0; n];
                kernels
                    .tables()
                    .axm1(batch.view().try_get(1 + w).unwrap(), &x, &mut want)
                    .unwrap();
                for i in 0..n {
                    assert_eq!(ys[i * LANE_WIDTH + w].to_bits(), want[i].to_bits());
                }
            }
        }
    }

    #[test]
    fn gather_rejects_bad_widths_and_shapes() {
        let kernels = BatchedKernels::new(4, 3);
        let batch = random_batch(4, 3, 4, 7);
        assert!(LanePanel::gather(&kernels, batch.view(), 0, 0).is_err());
        assert!(LanePanel::gather(&kernels, batch.view(), 0, LANE_WIDTH + 1).is_err());
        assert!(LanePanel::gather(&kernels, batch.view(), 2, 3).is_err());
        let wrong = random_batch(3, 3, 2, 8);
        assert!(matches!(
            LanePanel::gather(&kernels, wrong.view(), 0, 2),
            Err(Error::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn gather_views_matches_arena_gather() {
        let kernels = BatchedKernels::new(4, 3);
        let batch = random_batch(4, 3, 3, 9);
        let views: Vec<_> = (0..3).map(|i| batch.view().try_get(i).unwrap()).collect();
        let a = LanePanel::gather(&kernels, batch.view(), 0, 3).unwrap();
        let b = LanePanel::gather_views(&kernels, &views).unwrap();
        assert_eq!(a.soa.len(), b.soa.len());
        for (x, y) in a.soa.iter().zip(&b.soa) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn scalar_fallback_matches_precomputed_and_reports_name() {
        let kernels = BatchedKernels::new(4, 3);
        let mut rng = StdRng::seed_from_u64(11);
        let a = SymTensor::<f64>::random(4, 3, &mut rng);
        let x = [0.3, -0.6, 0.74];
        let via_batched = TensorKernels::axm(&kernels, a.view(), &x).unwrap();
        let via_tables = kernels.tables().axm(&a, &x).unwrap();
        assert_eq!(via_batched.to_bits(), via_tables.to_bits());
        assert_eq!(TensorKernels::<f64>::name(&kernels), "batched");
        let wrong = SymTensor::<f64>::random(3, 3, &mut rng);
        assert!(TensorKernels::axm(&kernels, wrong.view(), &x).is_err());
    }

    #[test]
    fn wrong_lane_vector_lengths_error() {
        let kernels = BatchedKernels::new(4, 3);
        let batch = random_batch(4, 3, 2, 13);
        let panel = LanePanel::gather(&kernels, batch.view(), 0, 2).unwrap();
        let xs = vec![0.0; 3 * LANE_WIDTH - 1];
        let mut out = [0.0; LANE_WIDTH];
        assert!(panel.axm(&kernels, &xs, &mut out).is_err());
        let good = vec![0.5; 3 * LANE_WIDTH];
        let mut short = vec![0.0; 3];
        assert!(panel.axm1(&kernels, &good, &mut short).is_err());
    }
}
