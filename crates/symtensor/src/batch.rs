//! Contiguous arena storage for batches of same-shape packed tensors.
//!
//! The paper's workload is millions of tiny identical-shape tensors
//! (DW-MRI voxels: order 4, dimension 3 → 15 scalars each). Storing them
//! as `Vec<SymTensor<S>>` costs one heap allocation per tensor and
//! pointer-chasing on every kernel call; a real GPU transfer of such a
//! batch is one `cudaMemcpy` of one contiguous buffer. [`TensorBatch`]
//! matches that reality: a single packed arena of `len · stride` scalars,
//! with zero-copy [`SymTensorRef`] views per tensor and zero-copy
//! [`TensorBatchRef`] sub-batch slices.
//!
//! ```
//! use symtensor::{SymTensor, TensorBatch, kernels};
//!
//! let mut batch = TensorBatch::<f64>::new(4, 3).unwrap();
//! batch.push(&SymTensor::diagonal_ones(4, 3)).unwrap();
//! batch.push(&SymTensor::rank_one(4, &[1.0, 0.0, 0.0])).unwrap();
//! assert_eq!(batch.len(), 2);
//!
//! // Each view borrows straight from the arena — no per-tensor allocation.
//! let x = [1.0, 0.0, 0.0];
//! for t in batch.iter() {
//!     assert!((kernels::axm(t, &x).unwrap() - 1.0).abs() < 1e-12);
//! }
//! ```

use crate::error::{Error, Result};
use crate::multinomial::{num_unique_entries, MAX_ORDER};
use crate::scalar::Scalar;
use crate::storage::{SymTensor, SymTensorRef};
use rand::Rng;
use std::ops::Range;

/// Validate a batch shape and return the per-tensor stride `C(m+n-1, m)`.
fn checked_stride(m: usize, n: usize) -> Result<usize> {
    if !(1..=MAX_ORDER).contains(&m) {
        return Err(Error::OrderOutOfRange(m));
    }
    if n < 1 {
        return Err(Error::DimensionOutOfRange(n));
    }
    Ok(num_unique_entries(m, n) as usize)
}

/// A batch of `N` same-shape packed symmetric tensors stored in one
/// contiguous arena: tensor `i` occupies `values[i*stride..(i+1)*stride]`.
///
/// All batch-facing layers of this workspace (`sshopm::BatchSolver`,
/// `gpusim::launch_sshopm`, the execution backends, `dwmri` extraction)
/// consume this type or its borrowed view [`TensorBatchRef`].
#[derive(Debug, Clone, PartialEq)]
pub struct TensorBatch<S> {
    m: usize,
    n: usize,
    stride: usize,
    values: Vec<S>,
}

impl<S: Scalar> TensorBatch<S> {
    /// An empty batch for tensors of shape `(m, n)`.
    pub fn new(m: usize, n: usize) -> Result<Self> {
        Self::with_capacity(m, n, 0)
    }

    /// An empty batch with arena capacity reserved for `count` tensors.
    pub fn with_capacity(m: usize, n: usize, count: usize) -> Result<Self> {
        let stride = checked_stride(m, n)?;
        Ok(Self {
            m,
            n,
            stride,
            values: Vec::with_capacity(stride * count),
        })
    }

    /// Build a batch directly from a packed arena whose length must be a
    /// whole number of tensors.
    pub fn from_values(m: usize, n: usize, values: Vec<S>) -> Result<Self> {
        let stride = checked_stride(m, n)?;
        if !values.len().is_multiple_of(stride) {
            return Err(Error::ValueLengthMismatch {
                expected: values.len().div_ceil(stride) * stride,
                actual: values.len(),
            });
        }
        Ok(Self {
            m,
            n,
            stride,
            values,
        })
    }

    /// A batch of `count` random tensors with entries i.i.d. uniform in
    /// `[-1, 1]` (the paper's synthetic workload), drawn in tensor order so
    /// it matches `count` successive [`SymTensor::random`] calls.
    pub fn random<R: Rng + ?Sized>(m: usize, n: usize, count: usize, rng: &mut R) -> Result<Self> {
        let stride = checked_stride(m, n)?;
        let values = (0..stride * count)
            .map(|_| S::from_f64(rng.gen_range(-1.0..=1.0)))
            .collect();
        Ok(Self {
            m,
            n,
            stride,
            values,
        })
    }

    /// Number of tensors in the batch.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len().checked_div(self.stride).unwrap_or(0)
    }

    /// True if the batch holds no tensors.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Tensor order `m` shared by every tensor in the batch.
    #[inline]
    pub fn order(&self) -> usize {
        self.m
    }

    /// Tensor dimension `n` shared by every tensor in the batch.
    #[inline]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Packed entries per tensor, `C(m+n-1, m)`.
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// The whole arena: `len() * stride()` scalars, tensor-major.
    #[inline]
    pub fn values(&self) -> &[S] {
        &self.values
    }

    /// Mutable access to the whole arena.
    #[inline]
    pub fn values_mut(&mut self) -> &mut [S] {
        &mut self.values
    }

    /// Consume the batch, returning the arena.
    pub fn into_values(self) -> Vec<S> {
        self.values
    }

    /// Append a tensor, copying its `stride()` entries into the arena.
    /// Returns [`Error::ShapeMismatch`] if the tensor's shape differs from
    /// the batch shape.
    pub fn push(&mut self, tensor: &SymTensor<S>) -> Result<()> {
        self.push_view(tensor.view())
    }

    /// Append a borrowed tensor view (e.g. from another batch).
    pub fn push_view(&mut self, tensor: SymTensorRef<'_, S>) -> Result<()> {
        if tensor.order() != self.m || tensor.dim() != self.n {
            return Err(Error::ShapeMismatch {
                expected: (self.m, self.n),
                found: (tensor.order(), tensor.dim()),
            });
        }
        self.values.extend_from_slice(tensor.values());
        Ok(())
    }

    /// Append one tensor's packed values directly (no intermediate
    /// [`SymTensor`]); the slice length must equal `stride()`.
    pub fn push_values(&mut self, values: &[S]) -> Result<()> {
        if values.len() != self.stride {
            return Err(Error::ValueLengthMismatch {
                expected: self.stride,
                actual: values.len(),
            });
        }
        self.values.extend_from_slice(values);
        Ok(())
    }

    /// Borrowed view of tensor `i`.
    ///
    /// # Panics
    /// Panics if `i >= len()` (slice-indexing semantics; use
    /// [`TensorBatch::try_get`] for a fallible variant).
    #[inline]
    pub fn get(&self, i: usize) -> SymTensorRef<'_, S> {
        self.view().get(i)
    }

    /// Borrowed view of tensor `i`, or [`Error::IndexOutOfBounds`] if
    /// `i >= len()`.
    #[inline]
    pub fn try_get(&self, i: usize) -> Result<SymTensorRef<'_, S>> {
        self.view().try_get(i)
    }

    /// Iterate over per-tensor views, in order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = SymTensorRef<'_, S>> + '_ {
        self.view().iter()
    }

    /// Borrowed view of the whole batch.
    #[inline]
    pub fn view(&self) -> TensorBatchRef<'_, S> {
        TensorBatchRef {
            m: self.m,
            n: self.n,
            stride: self.stride,
            values: &self.values,
        }
    }

    /// Zero-copy view of tensors `range.start..range.end`.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: Range<usize>) -> TensorBatchRef<'_, S> {
        self.view().slice(range)
    }

    /// Expand into owned per-tensor storage (compatibility path; allocates
    /// one `Vec` per tensor).
    pub fn to_tensors(&self) -> Vec<SymTensor<S>> {
        self.iter().map(|t| t.to_owned()).collect()
    }

    /// The whole arena converted to `f32` entries (the precision the
    /// paper's GPU benchmarks use), layout preserved.
    pub fn to_f32(&self) -> TensorBatch<f32> {
        TensorBatch {
            m: self.m,
            n: self.n,
            stride: self.stride,
            values: self.values.iter().map(|v| v.to_f64() as f32).collect(),
        }
    }

    /// The whole arena converted to `f64` entries, layout preserved.
    pub fn to_f64(&self) -> TensorBatch<f64> {
        TensorBatch {
            m: self.m,
            n: self.n,
            stride: self.stride,
            values: self.values.iter().map(|v| v.to_f64()).collect(),
        }
    }
}

impl<S: Scalar> TensorBatch<S> {
    /// Pack a slice of same-shape tensors into one arena.
    ///
    /// An empty slice yields an empty `(1, 1)`-shaped batch (mirroring
    /// `io::write_tensors`).
    ///
    /// # Errors
    /// Returns [`Error::ShapeMismatch`] if the tensors do not all share one
    /// shape.
    pub fn from_tensors(tensors: &[SymTensor<S>]) -> Result<Self> {
        let (m, n) = match tensors.first() {
            Some(t) => (t.order(), t.dim()),
            None => (1, 1),
        };
        let mut batch = TensorBatch::with_capacity(m, n, tensors.len())?;
        for t in tensors {
            batch.push(t)?;
        }
        Ok(batch)
    }

    /// Collect same-shape tensors into a batch, taking ownership (an empty
    /// iterator yields an empty `(1, 1)` batch).
    ///
    /// # Errors
    /// Returns [`Error::ShapeMismatch`] on mixed shapes.
    pub fn collect_tensors<I: IntoIterator<Item = SymTensor<S>>>(iter: I) -> Result<Self> {
        let mut it = iter.into_iter();
        let Some(first) = it.next() else {
            return TensorBatch::new(1, 1);
        };
        let mut batch = TensorBatch::new(first.order(), first.dim())?;
        let mut values = first.into_values();
        batch.values.append(&mut values);
        for t in it {
            batch.push(&t)?;
        }
        Ok(batch)
    }
}

/// A borrowed, zero-copy view of a (sub-)batch: the analogue of `&[T]` for
/// [`TensorBatch`]. `Copy`, so it is passed by value through the solver
/// layers; [`TensorBatchRef::slice`] re-slices without touching the arena.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TensorBatchRef<'a, S> {
    m: usize,
    n: usize,
    stride: usize,
    values: &'a [S],
}

impl<'a, S: Scalar> TensorBatchRef<'a, S> {
    /// Number of tensors in the view.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len().checked_div(self.stride).unwrap_or(0)
    }

    /// True if the view holds no tensors.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Tensor order `m`.
    #[inline]
    pub fn order(&self) -> usize {
        self.m
    }

    /// Tensor dimension `n`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Packed entries per tensor.
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// The viewed arena segment, tensor-major.
    #[inline]
    pub fn values(&self) -> &'a [S] {
        self.values
    }

    /// Shared shape `(m, n)` of every tensor in the view.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.m, self.n)
    }

    /// Borrowed view of tensor `i`.
    ///
    /// # Panics
    /// Panics if `i >= len()` (slice-indexing semantics; use
    /// [`TensorBatchRef::try_get`] for a fallible variant).
    #[inline]
    pub fn get(&self, i: usize) -> SymTensorRef<'a, S> {
        let lo = i * self.stride;
        SymTensorRef::from_raw(self.m, self.n, &self.values[lo..lo + self.stride])
    }

    /// Borrowed view of tensor `i`, or [`Error::IndexOutOfBounds`] if
    /// `i >= len()`.
    #[inline]
    pub fn try_get(&self, i: usize) -> Result<SymTensorRef<'a, S>> {
        if i >= self.len() {
            return Err(Error::IndexOutOfBounds {
                index: i,
                n: self.len(),
            });
        }
        Ok(self.get(i))
    }

    /// Iterate over per-tensor views, in order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = SymTensorRef<'a, S>> + 'a {
        let (m, n) = (self.m, self.n);
        self.values
            .chunks_exact(self.stride.max(1))
            .map(move |chunk| SymTensorRef::from_raw(m, n, chunk))
    }

    /// Zero-copy sub-view of tensors `range.start..range.end`.
    ///
    /// # Panics
    /// Panics if the range is out of bounds (slice-indexing semantics).
    pub fn slice(&self, range: Range<usize>) -> TensorBatchRef<'a, S> {
        TensorBatchRef {
            m: self.m,
            n: self.n,
            stride: self.stride,
            values: &self.values[range.start * self.stride..range.end * self.stride],
        }
    }

    /// Copy the viewed tensors into an owned batch.
    pub fn to_owned(&self) -> TensorBatch<S> {
        TensorBatch {
            m: self.m,
            n: self.n,
            stride: self.stride,
            values: self.values.to_vec(),
        }
    }

    /// Expand into owned per-tensor storage (compatibility path).
    pub fn to_tensors(&self) -> Vec<SymTensor<S>> {
        self.iter().map(|t| t.to_owned()).collect()
    }
}

impl<'a, S: Scalar> From<&'a TensorBatch<S>> for TensorBatchRef<'a, S> {
    fn from(b: &'a TensorBatch<S>) -> Self {
        b.view()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_tensors(m: usize, n: usize, count: usize, seed: u64) -> Vec<SymTensor<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count)
            .map(|_| SymTensor::random(m, n, &mut rng))
            .collect()
    }

    #[test]
    fn push_and_views_round_trip() {
        let tensors = random_tensors(4, 3, 7, 1);
        let mut batch = TensorBatch::new(4, 3).unwrap();
        for t in &tensors {
            batch.push(t).unwrap();
        }
        assert_eq!(batch.len(), 7);
        assert_eq!(batch.stride(), 15);
        assert_eq!(batch.values().len(), 7 * 15);
        for (i, t) in tensors.iter().enumerate() {
            assert_eq!(batch.get(i).values(), t.values());
        }
        assert_eq!(batch.to_tensors(), tensors);
    }

    #[test]
    fn from_slice_matches_pushes() {
        let tensors = random_tensors(3, 4, 5, 2);
        let batch = TensorBatch::from_tensors(&tensors).unwrap();
        assert_eq!(batch.len(), 5);
        assert_eq!(batch.to_tensors(), tensors);
    }

    #[test]
    fn from_iterator_collects() {
        let tensors = random_tensors(3, 3, 4, 12);
        let batch = TensorBatch::collect_tensors(tensors.iter().cloned()).unwrap();
        assert_eq!(batch.to_tensors(), tensors);
        let empty = TensorBatch::<f64>::collect_tensors(std::iter::empty()).unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn push_rejects_shape_mismatch_with_typed_error() {
        let mut batch = TensorBatch::<f64>::new(4, 3).unwrap();
        let wrong = SymTensor::<f64>::zeros(3, 3);
        assert_eq!(
            batch.push(&wrong).unwrap_err(),
            Error::ShapeMismatch {
                expected: (4, 3),
                found: (3, 3),
            }
        );
        assert!(batch.is_empty(), "failed push must not grow the arena");
    }

    #[test]
    fn push_values_checks_stride() {
        let mut batch = TensorBatch::<f64>::new(4, 3).unwrap();
        assert!(batch.push_values(&[0.0; 15]).is_ok());
        assert!(matches!(
            batch.push_values(&[0.0; 14]),
            Err(Error::ValueLengthMismatch {
                expected: 15,
                actual: 14
            })
        ));
        assert_eq!(batch.len(), 1);
    }

    #[test]
    fn slice_is_zero_copy_and_consistent() {
        let tensors = random_tensors(4, 3, 10, 3);
        let batch = TensorBatch::from_tensors(&tensors).unwrap();
        let sub = batch.slice(3..7);
        assert_eq!(sub.len(), 4);
        // Same allocation: the sub-view's pointer sits inside the arena.
        let base = batch.values().as_ptr() as usize;
        let sub_ptr = sub.values().as_ptr() as usize;
        assert_eq!(sub_ptr, base + 3 * 15 * std::mem::size_of::<f64>());
        for (i, t) in sub.iter().enumerate() {
            assert_eq!(t.values(), tensors[3 + i].values());
        }
        // Re-slicing a view composes.
        let sub2 = sub.slice(1..3);
        assert_eq!(sub2.get(0).values(), tensors[4].values());
    }

    #[test]
    fn from_values_validates_arena_length() {
        assert!(TensorBatch::<f64>::from_values(4, 3, vec![0.0; 30]).is_ok());
        assert!(TensorBatch::<f64>::from_values(4, 3, vec![0.0; 31]).is_err());
        assert!(TensorBatch::<f64>::from_values(0, 3, vec![]).is_err());
    }

    #[test]
    fn random_batch_matches_sequential_tensors() {
        let mut rng1 = StdRng::seed_from_u64(9);
        let batch = TensorBatch::<f64>::random(4, 3, 3, &mut rng1).unwrap();
        let mut rng2 = StdRng::seed_from_u64(9);
        let tensors: Vec<SymTensor<f64>> =
            (0..3).map(|_| SymTensor::random(4, 3, &mut rng2)).collect();
        assert_eq!(batch.to_tensors(), tensors);
    }

    #[test]
    #[should_panic]
    fn get_out_of_bounds_panics() {
        let batch = TensorBatch::<f64>::new(4, 3).unwrap();
        let _ = batch.get(0);
    }

    #[test]
    fn mixed_shape_constructors_return_typed_errors() {
        let tensors = vec![SymTensor::<f64>::zeros(4, 3), SymTensor::<f64>::zeros(3, 3)];
        assert!(matches!(
            TensorBatch::from_tensors(&tensors),
            Err(Error::ShapeMismatch { .. })
        ));
        assert!(matches!(
            TensorBatch::collect_tensors(tensors.into_iter()),
            Err(Error::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn try_get_returns_typed_error_out_of_bounds() {
        let tensors = random_tensors(4, 3, 2, 21);
        let batch = TensorBatch::from_tensors(&tensors).unwrap();
        assert!(batch.try_get(1).is_ok());
        assert!(matches!(
            batch.try_get(2),
            Err(Error::IndexOutOfBounds { index: 2, n: 2 })
        ));
        assert_eq!(batch.view().shape(), (4, 3));
    }
}
