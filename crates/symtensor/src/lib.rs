//! # symtensor — packed symmetric tensors and symmetry-exploiting kernels
//!
//! This crate implements the core contribution of Ballard, Kolda & Plantenga,
//! *Efficiently Computing Tensor Eigenvalues on a GPU* (IPPS 2011):
//!
//! * a **packed storage format** for symmetric order-`m`, dimension-`n`
//!   tensors that stores only the `C(m+n-1, m)` unique entries in
//!   lexicographic order of *index classes* (Section III-A of the paper);
//! * **symmetry-exploiting kernels** for the tensor-vector products
//!   `A·xᵐ` (scalar) and `A·xᵐ⁻¹` (vector) that weight each unique entry by
//!   a multinomial coefficient, reducing both storage and computation by a
//!   factor of roughly `m!` (Section III-B);
//! * a **dense (nonsymmetric) baseline** implementing the same products by
//!   repeated mode contraction, used for correctness cross-checks and as the
//!   "general" column of the paper's Table II;
//! * **arena batch storage** ([`TensorBatch`]) packing N same-shape tensors
//!   into one contiguous buffer with zero-copy [`SymTensorRef`] views and
//!   [`TensorBatchRef`] sub-batch slices — the layout a GPU batch transfer
//!   actually moves as a single coalesced copy.
//!
//! ## Quick example
//!
//! ```
//! use symtensor::{SymTensor, kernels};
//!
//! // A symmetric 3x3x3x3 tensor (order m=4, dimension n=3): 15 unique entries.
//! let a = SymTensor::<f64>::from_fn(4, 3, |class| class.indices().iter().sum::<usize>() as f64);
//! let x = [1.0, 0.5, -0.25];
//!
//! let s = kernels::axm(&a, &x).unwrap(); // A·x^m, a scalar
//! let mut y = [0.0; 3];
//! kernels::axm1(&a, &x, &mut y).unwrap(); // A·x^{m-1}, a vector
//! // Euler's identity for homogeneous forms: x·(A x^{m-1}) = A x^m.
//! let dot: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
//! assert!((dot - s).abs() < 1e-12);
//! ```
//!
//! All tensors in this crate are real-valued and use 0-based indices
//! internally (the paper uses 1-based).

#![deny(missing_docs)]

pub mod batch;
pub mod blocked;
pub mod dense;
pub mod error;
pub mod flops;
pub mod index;
pub mod io;
pub mod kernels;
pub mod lanes;
pub mod multinomial;
pub mod scalar;
pub mod special;
pub mod storage;

pub use batch::{TensorBatch, TensorBatchRef};
pub use blocked::BlockedKernels;
pub use dense::DenseTensor;
pub use error::{Error, Result};
pub use index::{IndexClass, IndexClassIter, MonomialRep};
pub use kernels::{GeneralKernels, PrecomputedTables, TensorKernels};
pub use lanes::{BatchedKernels, LanePanel, LANE_WIDTH};
pub use multinomial::CombinatoricsOverflow;
pub use scalar::Scalar;
pub use storage::{SymTensor, SymTensorRef};
