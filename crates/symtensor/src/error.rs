//! Error type shared by the `symtensor` crate.

use std::fmt;

/// Errors produced by tensor constructors and kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The tensor order `m` is outside the supported range (`1..=20`).
    ///
    /// The bound exists because multinomial coefficients are computed with
    /// exact `u64` arithmetic and `21!` overflows `u64`.
    OrderOutOfRange(usize),
    /// The tensor dimension `n` must be at least 1.
    DimensionOutOfRange(usize),
    /// A value buffer had the wrong length for the given `(m, n)`.
    ValueLengthMismatch {
        /// Expected number of unique entries, `C(m+n-1, m)`.
        expected: usize,
        /// Length actually supplied.
        actual: usize,
    },
    /// A vector argument had the wrong length (must equal the dimension `n`).
    VectorLengthMismatch {
        /// Expected length (`n`).
        expected: usize,
        /// Length actually supplied.
        actual: usize,
    },
    /// A tensor index contained an index `>= n`.
    IndexOutOfBounds {
        /// The offending index value.
        index: usize,
        /// The tensor dimension.
        n: usize,
    },
    /// A tensor index had the wrong number of entries (must equal `m`).
    IndexLengthMismatch {
        /// Expected length (`m`).
        expected: usize,
        /// Length actually supplied.
        actual: usize,
    },
    /// A dense tensor was not symmetric when symmetry was required.
    NotSymmetric,
    /// The requested number of contracted modes `p` was larger than `m - 1`
    /// (for `axm1`-family kernels) or `m` (for full contraction).
    InvalidContraction {
        /// Requested result order `p`.
        p: usize,
        /// Tensor order `m`.
        m: usize,
    },
    /// A tensor pushed into a [`crate::TensorBatch`] had a different shape
    /// than the batch was built for.
    ShapeMismatch {
        /// The batch shape `(m, n)`.
        expected: (usize, usize),
        /// The shape of the offending tensor.
        found: (usize, usize),
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::OrderOutOfRange(m) => {
                write!(f, "tensor order m={m} out of supported range 1..=20")
            }
            Error::DimensionOutOfRange(n) => {
                write!(f, "tensor dimension n={n} must be >= 1")
            }
            Error::ValueLengthMismatch { expected, actual } => {
                write!(
                    f,
                    "value buffer length {actual}, expected {expected} unique entries"
                )
            }
            Error::VectorLengthMismatch { expected, actual } => {
                write!(f, "vector length {actual}, expected dimension {expected}")
            }
            Error::IndexOutOfBounds { index, n } => {
                write!(f, "index {index} out of bounds for dimension {n}")
            }
            Error::IndexLengthMismatch { expected, actual } => {
                write!(f, "tensor index length {actual}, expected order {expected}")
            }
            Error::NotSymmetric => write!(f, "dense tensor is not symmetric"),
            Error::InvalidContraction { p, m } => {
                write!(
                    f,
                    "invalid contraction: result order p={p} for tensor order m={m}"
                )
            }
            Error::ShapeMismatch { expected, found } => {
                write!(
                    f,
                    "tensor shape [{},{}] does not match batch shape [{},{}]",
                    found.0, found.1, expected.0, expected.1
                )
            }
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_offending_values() {
        let cases: Vec<(Error, &str)> = vec![
            (Error::OrderOutOfRange(25), "25"),
            (Error::DimensionOutOfRange(0), "0"),
            (
                Error::ValueLengthMismatch {
                    expected: 15,
                    actual: 3,
                },
                "15",
            ),
            (
                Error::VectorLengthMismatch {
                    expected: 3,
                    actual: 4,
                },
                "4",
            ),
            (Error::IndexOutOfBounds { index: 7, n: 3 }, "7"),
            (
                Error::IndexLengthMismatch {
                    expected: 4,
                    actual: 2,
                },
                "2",
            ),
            (Error::NotSymmetric, "symmetric"),
            (Error::InvalidContraction { p: 5, m: 4 }, "p=5"),
            (
                Error::ShapeMismatch {
                    expected: (4, 3),
                    found: (3, 5),
                },
                "[3,5]",
            ),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
        }
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: std::error::Error>() {}
        assert_error::<Error>();
    }
}
