//! Register-blocked kernels for tensors of *general* dimension: the
//! direction sketched in the paper's conclusions ("we hope to be able to
//! attain the same performance … for tensors of general size using
//! register blocking and loop unrolling").
//!
//! Full unrolling (the `unrolled` crate) scales the generated code with
//! `C(m+n-1, m)` and is only practical for small shapes. Blocking splits
//! the problem differently:
//!
//! * the tensor **order `M` is a compile-time constant** (const generic),
//!   so every per-entry monomial product is a fixed-trip-count loop the
//!   compiler fully unrolls and keeps in registers;
//! * the **dimension `n` stays a runtime value**, so one instantiation
//!   handles arbitrarily large `n`;
//! * index representations and multinomial coefficients are precomputed
//!   into flat structure-of-arrays tables (one cache-friendly stream), and
//!   the `A·xᵐ⁻¹` coefficients use the paper's `σ(j) = c·k_j/m` look-up
//!   trick so no multinomial is recomputed in the loop.
//!
//! Orders 1 through 8 are exposed behind the shape-erased
//! [`BlockedKernels`], which implements [`TensorKernels`] like every other
//! strategy in this crate.

// The fixed-trip `0..M` loops are the point of the blocking scheme; keep
// them as indexed loops.
#![allow(clippy::needless_range_loop)]

use crate::error::{Error, Result};
use crate::index::IndexClassIter;
use crate::kernels::TensorKernels;
use crate::multinomial::num_unique_entries;
use crate::scalar::Scalar;
use crate::storage::SymTensorRef;

/// Blocked kernel tables for a fixed compile-time order `M` and runtime
/// dimension `n`.
#[derive(Debug, Clone)]
pub struct Blocked<const M: usize> {
    n: usize,
    /// Index representation of each class, one fixed-size row per class.
    reps: Vec<[u32; M]>,
    /// `C(M; k)` per class, pre-converted to f64 (exact for the supported
    /// orders: the largest coefficient `8! = 40320` is far below 2^53).
    coeffs: Vec<f64>,
    /// Flattened (index, count) pairs of the distinct indices per class.
    distinct: Vec<(u32, u32)>,
    /// Per-class ranges into `distinct` (len = classes + 1).
    starts: Vec<u32>,
}

impl<const M: usize> Blocked<M> {
    /// Build the tables for dimension `n`.
    ///
    /// `M >= 1` and `n >= 1` are preconditions (checked in debug builds);
    /// [`BlockedKernels::for_shape`] only ever instantiates valid orders.
    pub fn new(n: usize) -> Self {
        debug_assert!(M >= 1, "order must be at least 1");
        debug_assert!(n >= 1, "dimension must be at least 1");
        let count = num_unique_entries(M, n) as usize;
        let mut reps = Vec::with_capacity(count);
        let mut coeffs = Vec::with_capacity(count);
        let mut distinct = Vec::new();
        let mut starts = Vec::with_capacity(count + 1);
        starts.push(0u32);
        for class in IndexClassIter::new(M, n) {
            let mut row = [0u32; M];
            for (slot, &i) in row.iter_mut().zip(class.indices()) {
                *slot = i as u32;
            }
            reps.push(row);
            coeffs.push(class.occurrences() as f64);
            for (i, &k) in class.monomial().counts().iter().enumerate() {
                if k > 0 {
                    distinct.push((i as u32, k as u32));
                }
            }
            starts.push(distinct.len() as u32);
        }
        Self {
            n,
            reps,
            coeffs,
            distinct,
            starts,
        }
    }

    /// The dimension the tables were built for.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of unique entries `C(M+n-1, M)`.
    pub fn num_unique(&self) -> usize {
        self.reps.len()
    }

    /// Blocked `A·xᵐ`: the monomial product is a fixed `M`-trip loop.
    ///
    /// # Errors
    /// Returns a length-mismatch error if `values` does not hold exactly
    /// the packed unique-entry count or `x` is not `n` long.
    pub fn axm<S: Scalar>(&self, values: &[S], x: &[S]) -> Result<S> {
        if values.len() != self.reps.len() {
            return Err(Error::ValueLengthMismatch {
                expected: self.reps.len(),
                actual: values.len(),
            });
        }
        if x.len() != self.n {
            return Err(Error::VectorLengthMismatch {
                expected: self.n,
                actual: x.len(),
            });
        }
        let mut acc = S::ZERO;
        for (u, rep) in self.reps.iter().enumerate() {
            let mut xhat = S::ONE;
            for t in 0..M {
                xhat *= x[rep[t] as usize];
            }
            acc += S::from_f64(self.coeffs[u]) * values[u] * xhat;
        }
        Ok(acc)
    }

    /// Blocked `A·xᵐ⁻¹` into `y` (overwritten). Per-contribution
    /// coefficients come from the stored `C(M; k)` via `σ(j) = c·k_j/M`.
    ///
    /// # Errors
    /// Returns a length-mismatch error if `values` does not hold exactly
    /// the packed unique-entry count or `x`/`y` are not `n` long.
    pub fn axm1<S: Scalar>(&self, values: &[S], x: &[S], y: &mut [S]) -> Result<()> {
        if values.len() != self.reps.len() {
            return Err(Error::ValueLengthMismatch {
                expected: self.reps.len(),
                actual: values.len(),
            });
        }
        if x.len() != self.n {
            return Err(Error::VectorLengthMismatch {
                expected: self.n,
                actual: x.len(),
            });
        }
        if y.len() != self.n {
            return Err(Error::VectorLengthMismatch {
                expected: self.n,
                actual: y.len(),
            });
        }
        y.iter_mut().for_each(|e| *e = S::ZERO);
        let inv_m = 1.0 / M as f64;
        for (u, rep) in self.reps.iter().enumerate() {
            let av = values[u];
            let c = self.coeffs[u];
            let lo = self.starts[u] as usize;
            let hi = self.starts[u + 1] as usize;
            for &(j, kj) in &self.distinct[lo..hi] {
                // Product over the representation with one `j` skipped;
                // fixed-trip loop over M again.
                let mut xhat = S::ONE;
                let mut skipped = false;
                for t in 0..M {
                    let i = rep[t];
                    if !skipped && i == j {
                        skipped = true;
                        continue;
                    }
                    xhat *= x[i as usize];
                }
                let sigma = c * kj as f64 * inv_m;
                y[j as usize] += S::from_f64(sigma) * av * xhat;
            }
        }
        Ok(())
    }
}

impl<const M: usize, S: Scalar> TensorKernels<S> for Blocked<M> {
    fn axm(&self, a: SymTensorRef<'_, S>, x: &[S]) -> Result<S> {
        if a.order() != M || a.dim() != self.n {
            return Err(Error::ShapeMismatch {
                expected: (M, self.n),
                found: (a.order(), a.dim()),
            });
        }
        Blocked::axm(self, a.values(), x)
    }

    fn axm1(&self, a: SymTensorRef<'_, S>, x: &[S], y: &mut [S]) -> Result<()> {
        if a.order() != M || a.dim() != self.n {
            return Err(Error::ShapeMismatch {
                expected: (M, self.n),
                found: (a.order(), a.dim()),
            });
        }
        Blocked::axm1(self, a.values(), x, y)
    }

    fn name(&self) -> &'static str {
        "blocked"
    }
}

/// Shape-erased blocked kernels covering orders 1–8 (beyond order 8 the
/// table sizes dwarf any blocking benefit; use the general kernels).
#[derive(Debug, Clone)]
pub enum BlockedKernels {
    /// Order 1.
    M1(Blocked<1>),
    /// Order 2.
    M2(Blocked<2>),
    /// Order 3.
    M3(Blocked<3>),
    /// Order 4.
    M4(Blocked<4>),
    /// Order 5.
    M5(Blocked<5>),
    /// Order 6.
    M6(Blocked<6>),
    /// Order 7.
    M7(Blocked<7>),
    /// Order 8.
    M8(Blocked<8>),
}

impl BlockedKernels {
    /// Build blocked kernels for shape `(m, n)`; `None` if `m` is outside
    /// `1..=8`.
    pub fn for_shape(m: usize, n: usize) -> Option<Self> {
        Some(match m {
            1 => BlockedKernels::M1(Blocked::new(n)),
            2 => BlockedKernels::M2(Blocked::new(n)),
            3 => BlockedKernels::M3(Blocked::new(n)),
            4 => BlockedKernels::M4(Blocked::new(n)),
            5 => BlockedKernels::M5(Blocked::new(n)),
            6 => BlockedKernels::M6(Blocked::new(n)),
            7 => BlockedKernels::M7(Blocked::new(n)),
            8 => BlockedKernels::M8(Blocked::new(n)),
            _ => return None,
        })
    }

    /// The shape `(m, n)` this instance dispatches to.
    pub fn shape(&self) -> (usize, usize) {
        match self {
            BlockedKernels::M1(b) => (1, b.dim()),
            BlockedKernels::M2(b) => (2, b.dim()),
            BlockedKernels::M3(b) => (3, b.dim()),
            BlockedKernels::M4(b) => (4, b.dim()),
            BlockedKernels::M5(b) => (5, b.dim()),
            BlockedKernels::M6(b) => (6, b.dim()),
            BlockedKernels::M7(b) => (7, b.dim()),
            BlockedKernels::M8(b) => (8, b.dim()),
        }
    }
}

impl<S: Scalar> TensorKernels<S> for BlockedKernels {
    fn axm(&self, a: SymTensorRef<'_, S>, x: &[S]) -> Result<S> {
        match self {
            BlockedKernels::M1(b) => TensorKernels::axm(b, a, x),
            BlockedKernels::M2(b) => TensorKernels::axm(b, a, x),
            BlockedKernels::M3(b) => TensorKernels::axm(b, a, x),
            BlockedKernels::M4(b) => TensorKernels::axm(b, a, x),
            BlockedKernels::M5(b) => TensorKernels::axm(b, a, x),
            BlockedKernels::M6(b) => TensorKernels::axm(b, a, x),
            BlockedKernels::M7(b) => TensorKernels::axm(b, a, x),
            BlockedKernels::M8(b) => TensorKernels::axm(b, a, x),
        }
    }

    fn axm1(&self, a: SymTensorRef<'_, S>, x: &[S], y: &mut [S]) -> Result<()> {
        match self {
            BlockedKernels::M1(b) => TensorKernels::axm1(b, a, x, y),
            BlockedKernels::M2(b) => TensorKernels::axm1(b, a, x, y),
            BlockedKernels::M3(b) => TensorKernels::axm1(b, a, x, y),
            BlockedKernels::M4(b) => TensorKernels::axm1(b, a, x, y),
            BlockedKernels::M5(b) => TensorKernels::axm1(b, a, x, y),
            BlockedKernels::M6(b) => TensorKernels::axm1(b, a, x, y),
            BlockedKernels::M7(b) => TensorKernels::axm1(b, a, x, y),
            BlockedKernels::M8(b) => TensorKernels::axm1(b, a, x, y),
        }
    }

    fn name(&self) -> &'static str {
        "blocked"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{axm, axm1};
    use crate::storage::SymTensor;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_sym(m: usize, n: usize, seed: u64) -> SymTensor<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        SymTensor::random(m, n, &mut rng)
    }

    fn random_vec(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(-1.5..1.5)).collect()
    }

    #[test]
    fn blocked_matches_general_across_shapes() {
        // Including dimensions far beyond anything fully unrollable.
        for (m, n, seed) in [
            (1usize, 5usize, 1u64),
            (2, 8, 2),
            (3, 12, 3),
            (4, 3, 4),
            (4, 10, 5),
            (5, 6, 6),
            (6, 4, 7),
            (7, 3, 8),
            (8, 3, 9),
        ] {
            let a = random_sym(m, n, seed);
            let x = random_vec(n, seed + 100);
            let k = BlockedKernels::for_shape(m, n).unwrap();
            assert_eq!(k.shape(), (m, n));

            let want = axm(&a, &x).unwrap();
            let got = TensorKernels::axm(&k, a.view(), &x).unwrap();
            assert!(
                (got - want).abs() < 1e-9 * (1.0 + want.abs()),
                "[{m},{n}] axm: {got} vs {want}"
            );

            let mut wanty = vec![0.0; n];
            let mut goty = vec![0.0; n];
            axm1(&a, &x, &mut wanty).unwrap();
            TensorKernels::axm1(&k, a.view(), &x, &mut goty).unwrap();
            for j in 0..n {
                assert!(
                    (goty[j] - wanty[j]).abs() < 1e-9 * (1.0 + wanty[j].abs()),
                    "[{m},{n}] axm1 j={j}"
                );
            }
        }
    }

    #[test]
    fn order_out_of_range_is_none() {
        assert!(BlockedKernels::for_shape(9, 3).is_none());
        assert!(BlockedKernels::for_shape(0, 3).is_none());
    }

    #[test]
    fn table_sizes_match_unique_counts() {
        let b = Blocked::<4>::new(5);
        assert_eq!(b.num_unique() as u64, num_unique_entries(4, 5));
        assert_eq!(b.dim(), 5);
    }

    #[test]
    fn euler_identity_holds() {
        let a = random_sym(5, 7, 20);
        let x = random_vec(7, 21);
        let k = BlockedKernels::for_shape(5, 7).unwrap();
        let s = TensorKernels::axm(&k, a.view(), &x).unwrap();
        let mut y = vec![0.0; 7];
        TensorKernels::axm1(&k, a.view(), &x, &mut y).unwrap();
        let dot: f64 = x.iter().zip(&y).map(|(p, q)| p * q).sum();
        assert!((dot - s).abs() < 1e-9 * (1.0 + s.abs()));
    }

    #[test]
    fn zero_components_handled() {
        let a = random_sym(4, 5, 22);
        let mut x = random_vec(5, 23);
        x[2] = 0.0;
        let k = BlockedKernels::for_shape(4, 5).unwrap();
        let mut want = vec![0.0; 5];
        let mut got = vec![0.0; 5];
        axm1(&a, &x, &mut want).unwrap();
        TensorKernels::axm1(&k, a.view(), &x, &mut got).unwrap();
        for j in 0..5 {
            assert!((got[j] - want[j]).abs() < 1e-10, "j={j}");
        }
    }

    #[test]
    fn works_in_f32() {
        let mut rng = StdRng::seed_from_u64(24);
        let a = SymTensor::<f32>::random(4, 6, &mut rng);
        let x: Vec<f32> = (0..6).map(|i| 0.3 - 0.1 * i as f32).collect();
        let k = BlockedKernels::for_shape(4, 6).unwrap();
        let want = axm(&a, &x).unwrap();
        let got = TensorKernels::axm(&k, a.view(), &x).unwrap();
        assert!((got - want).abs() < 1e-4 * (1.0 + want.abs()));
    }

    #[test]
    fn shape_mismatch_is_typed_error() {
        let a = random_sym(4, 3, 25);
        let k = BlockedKernels::for_shape(4, 5).unwrap();
        let err = TensorKernels::axm(&k, a.view(), &[1.0; 5]).unwrap_err();
        assert!(matches!(
            err,
            Error::ShapeMismatch {
                expected: (4, 5),
                found: (4, 3),
            }
        ));
        let mut y = [0.0; 5];
        assert!(TensorKernels::axm1(&k, a.view(), &[1.0; 5], &mut y).is_err());
    }

    #[test]
    fn name_is_blocked() {
        let k = BlockedKernels::for_shape(4, 3).unwrap();
        assert_eq!(TensorKernels::<f64>::name(&k), "blocked");
    }
}
