//! Index classes of symmetric tensors (Section III-A of the paper).
//!
//! An *index class* is the set of tensor indices that share a value due to
//! symmetry. Its canonical *index representation* is the nondecreasing
//! tensor index (an array of `m` indices in `0..n`); its *monomial
//! representation* is the array of `n` occurrence counts. Unique tensor
//! entries are stored in lexicographic order of index representations (which
//! is the reverse lexicographic order of monomial representations), so no
//! index metadata needs to be stored alongside the values.
//!
//! Beyond the paper's sequential successor function (`UPDATEINDEX`,
//! Figure 4) this module provides *ranking* and *unranking* — O(m·n)
//! random access between an index class and its position in the packed
//! value array — built on the combinatorial number system.

use crate::multinomial::{binomial, multinomial0, num_unique_entries, BinomialTable};
use std::fmt;

/// The monomial representation of an index class: `counts[i]` is the number
/// of occurrences of index `i`, with `counts.len() == n` and
/// `sum(counts) == m`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MonomialRep {
    counts: Vec<usize>,
}

impl MonomialRep {
    /// Wrap a counts array. Non-emptiness is a debug-checked precondition.
    pub fn new(counts: Vec<usize>) -> Self {
        debug_assert!(
            !counts.is_empty(),
            "monomial representation must have n >= 1"
        );
        Self { counts }
    }

    /// Occurrence counts per index.
    #[inline]
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Tensor order `m` (sum of the counts).
    #[inline]
    pub fn order(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Tensor dimension `n` (length of the counts array).
    #[inline]
    pub fn dim(&self) -> usize {
        self.counts.len()
    }

    /// Convert to the index representation (nondecreasing index array).
    pub fn to_index_class(&self) -> IndexClass {
        let mut indices = Vec::with_capacity(self.order());
        for (i, &k) in self.counts.iter().enumerate() {
            indices.extend(std::iter::repeat_n(i, k));
        }
        IndexClass::new(indices, self.dim())
    }
}

impl fmt::Display for MonomialRep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, k) in self.counts.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}")?;
        }
        write!(f, "]")
    }
}

/// An index class, held by its canonical (nondecreasing) index
/// representation together with the tensor dimension `n`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IndexClass {
    indices: Vec<usize>,
    n: usize,
}

impl IndexClass {
    /// Create an index class from a nondecreasing index array.
    ///
    /// The array being non-empty, nondecreasing, and bounded by `n` are
    /// debug-checked preconditions; callers constructing classes from
    /// untrusted data should validate first (e.g. via
    /// [`SymTensor::get`](crate::SymTensor::get), which returns typed
    /// errors).
    pub fn new(indices: Vec<usize>, n: usize) -> Self {
        debug_assert!(!indices.is_empty(), "index representation must have m >= 1");
        debug_assert!(
            indices.windows(2).all(|w| w[0] <= w[1]),
            "index representation must be nondecreasing: {indices:?}"
        );
        debug_assert!(
            indices.iter().all(|&i| i < n),
            "index {indices:?} out of bounds for dimension {n}"
        );
        Self { indices, n }
    }

    /// Canonicalize an arbitrary tensor index (any order of indices) into its
    /// index class by sorting.
    pub fn from_tensor_index(mut indices: Vec<usize>, n: usize) -> Self {
        indices.sort_unstable();
        Self::new(indices, n)
    }

    /// The first index class in lexicographic order: `[0, 0, …, 0]`.
    ///
    /// `m >= 1` and `n >= 1` are debug-checked preconditions.
    pub fn first(m: usize, n: usize) -> Self {
        debug_assert!(m >= 1 && n >= 1, "index class needs m >= 1 and n >= 1");
        Self {
            indices: vec![0; m],
            n,
        }
    }

    /// The last index class in lexicographic order: `[n-1, …, n-1]`.
    ///
    /// `m >= 1` and `n >= 1` are debug-checked preconditions; `n - 1`
    /// still panics on underflow when `n == 0`.
    pub fn last(m: usize, n: usize) -> Self {
        debug_assert!(m >= 1 && n >= 1, "index class needs m >= 1 and n >= 1");
        Self {
            indices: vec![n - 1; m],
            n,
        }
    }

    /// The nondecreasing index representation.
    #[inline]
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Tensor order `m`.
    #[inline]
    pub fn order(&self) -> usize {
        self.indices.len()
    }

    /// Tensor dimension `n`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Monomial representation (occurrence counts of each index).
    pub fn monomial(&self) -> MonomialRep {
        let mut counts = vec![0usize; self.n];
        for &i in &self.indices {
            counts[i] += 1;
        }
        MonomialRep::new(counts)
    }

    /// Number of tensor indices in this class: the multinomial coefficient
    /// `C(m; k_1, …, k_n)` (Property 2), computed by the paper's one-pass
    /// `MULTINOMIAL0`.
    #[inline]
    pub fn occurrences(&self) -> u64 {
        multinomial0(&self.indices)
    }

    /// Advance to the successor in lexicographic order: the paper's
    /// `UPDATEINDEX` (Figure 4). Returns `false` (leaving the class at the
    /// last representation) when no successor exists.
    pub fn advance(&mut self) -> bool {
        let m = self.indices.len();
        let last = self.n - 1;
        // Find the least significant index != n-1.
        let Some(j) = self.indices.iter().rposition(|&i| i != last) else {
            return false;
        };
        let v = self.indices[j] + 1;
        for k in j..m {
            self.indices[k] = v;
        }
        true
    }

    /// The successor in lexicographic order, or `None` at the last class.
    pub fn successor(&self) -> Option<Self> {
        let mut next = self.clone();
        next.advance().then_some(next)
    }

    /// Lexicographic rank of this class among all `C(m+n-1, m)` classes
    /// (0-based). Inverse of [`IndexClass::unrank`].
    ///
    /// Counts, for each position `t`, the classes sharing the prefix
    /// `indices[..t]` whose `t`-th index is smaller: a class with `t`-th
    /// index `v` constrains the remaining `m-t-1` nondecreasing indices to
    /// `v..n`, of which there are `C((m-t-1) + (n-v-1), m-t-1)`.
    pub fn rank(&self) -> u64 {
        let m = self.indices.len();
        let n = self.n;
        let mut rank: u64 = 0;
        let mut lo = 0usize;
        for (t, &it) in self.indices.iter().enumerate() {
            let rem = m - t - 1;
            for v in lo..it {
                rank += binomial(rem + n - v - 1, rem);
            }
            lo = it;
        }
        rank
    }

    /// Like [`IndexClass::rank`] but reads binomials from a precomputed
    /// table, for use in inner loops.
    pub fn rank_with(&self, table: &BinomialTable) -> u64 {
        let m = self.indices.len();
        let n = self.n;
        let mut rank: u64 = 0;
        let mut lo = 0usize;
        for (t, &it) in self.indices.iter().enumerate() {
            let rem = m - t - 1;
            for v in lo..it {
                rank += table.get(rem + n - v - 1, rem);
            }
            lo = it;
        }
        rank
    }

    /// Construct the index class of the given lexicographic rank (0-based).
    ///
    /// `rank < C(m+n-1, m)` is a debug-checked precondition; an
    /// out-of-range rank in release builds clamps to the last class.
    pub fn unrank(mut rank: u64, m: usize, n: usize) -> Self {
        debug_assert!(
            rank < num_unique_entries(m, n),
            "rank {rank} out of range for [{m},{n}]"
        );
        rank = rank.min(num_unique_entries(m, n).saturating_sub(1));
        let mut indices = Vec::with_capacity(m);
        let mut lo = 0usize;
        for t in 0..m {
            let rem = m - t - 1;
            let mut v = lo;
            loop {
                let block = binomial(rem + n - v - 1, rem);
                if rank < block {
                    break;
                }
                rank -= block;
                v += 1;
            }
            indices.push(v);
            lo = v;
        }
        Self { indices, n }
    }
}

impl fmt::Display for IndexClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.indices.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

/// Iterator over all index classes of a symmetric tensor in `R^[m,n]` in
/// lexicographic order, yielding exactly `C(m+n-1, m)` classes.
#[derive(Debug, Clone)]
pub struct IndexClassIter {
    next: Option<IndexClass>,
    remaining: u64,
}

impl IndexClassIter {
    /// Iterate over the index classes of `R^[m,n]`.
    pub fn new(m: usize, n: usize) -> Self {
        Self {
            next: Some(IndexClass::first(m, n)),
            remaining: num_unique_entries(m, n),
        }
    }
}

impl Iterator for IndexClassIter {
    type Item = IndexClass;

    fn next(&mut self) -> Option<IndexClass> {
        let curr = self.next.take()?;
        self.next = curr.successor();
        self.remaining -= 1;
        Some(curr)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let r = self.remaining as usize;
        (r, Some(r))
    }
}

impl ExactSizeIterator for IndexClassIter {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multinomial::num_unique_entries;

    /// The paper's Table I: index classes of R^[3,4] in lexicographic order,
    /// converted to 0-based indices. Both representations asserted exactly.
    #[test]
    fn table_1_exact_contents() {
        #[rustfmt::skip]
        let expected: [([usize; 3], [usize; 4]); 20] = [
            ([0,0,0], [3,0,0,0]),
            ([0,0,1], [2,1,0,0]),
            ([0,0,2], [2,0,1,0]),
            ([0,0,3], [2,0,0,1]),
            ([0,1,1], [1,2,0,0]),
            ([0,1,2], [1,1,1,0]),
            ([0,1,3], [1,1,0,1]),
            ([0,2,2], [1,0,2,0]),
            ([0,2,3], [1,0,1,1]),
            ([0,3,3], [1,0,0,2]),
            ([1,1,1], [0,3,0,0]),
            ([1,1,2], [0,2,1,0]),
            ([1,1,3], [0,2,0,1]),
            ([1,2,2], [0,1,2,0]),
            ([1,2,3], [0,1,1,1]),
            ([1,3,3], [0,1,0,2]),
            ([2,2,2], [0,0,3,0]),
            ([2,2,3], [0,0,2,1]),
            ([2,3,3], [0,0,1,2]),
            ([3,3,3], [0,0,0,3]),
        ];
        let classes: Vec<IndexClass> = IndexClassIter::new(3, 4).collect();
        assert_eq!(classes.len(), 20);
        for (i, (cls, (idx, mono))) in classes.iter().zip(expected.iter()).enumerate() {
            assert_eq!(cls.indices(), idx, "row {i} index rep");
            assert_eq!(cls.monomial().counts(), mono, "row {i} monomial rep");
        }
    }

    #[test]
    fn successor_paper_examples() {
        // Paper: successor of [1,1,1] is [1,1,2]; of [2,4,4] is [3,3,3]
        // (1-based). 0-based: [0,0,0] -> [0,0,1]; [1,3,3] -> [2,2,2].
        let c = IndexClass::new(vec![0, 0, 0], 4);
        assert_eq!(c.successor().unwrap().indices(), &[0, 0, 1]);
        let c = IndexClass::new(vec![1, 3, 3], 4);
        assert_eq!(c.successor().unwrap().indices(), &[2, 2, 2]);
    }

    #[test]
    fn last_class_has_no_successor() {
        let c = IndexClass::last(3, 4);
        assert_eq!(c.indices(), &[3, 3, 3]);
        assert!(c.successor().is_none());
        let mut c2 = IndexClass::last(5, 2);
        assert!(!c2.advance());
        assert_eq!(c2.indices(), &[1; 5]);
    }

    #[test]
    fn iterator_counts_match_property_1() {
        for m in 1..=6 {
            for n in 1..=6 {
                let count = IndexClassIter::new(m, n).count();
                assert_eq!(count as u64, num_unique_entries(m, n), "[{m},{n}]");
            }
        }
    }

    #[test]
    fn iterator_is_strictly_increasing_lexicographically() {
        let classes: Vec<IndexClass> = IndexClassIter::new(4, 3).collect();
        for w in classes.windows(2) {
            assert!(w[0].indices() < w[1].indices());
        }
    }

    #[test]
    fn monomial_order_is_reverse_lexicographic() {
        // Paper: index-rep order increasing == monomial-rep order decreasing.
        let classes: Vec<IndexClass> = IndexClassIter::new(3, 4).collect();
        for w in classes.windows(2) {
            let m0 = w[0].monomial();
            let m1 = w[1].monomial();
            assert!(m0.counts() > m1.counts(), "{m0} !> {m1}");
        }
    }

    #[test]
    fn rank_matches_iteration_order() {
        for (m, n) in [(3, 4), (4, 3), (2, 5), (6, 2), (1, 7)] {
            for (pos, cls) in IndexClassIter::new(m, n).enumerate() {
                assert_eq!(cls.rank(), pos as u64, "[{m},{n}] at {pos}");
            }
        }
    }

    #[test]
    fn unrank_is_inverse_of_rank() {
        for (m, n) in [(3, 4), (4, 3), (5, 5)] {
            let total = num_unique_entries(m, n);
            for r in 0..total {
                let cls = IndexClass::unrank(r, m, n);
                assert_eq!(cls.rank(), r);
            }
        }
    }

    #[test]
    fn rank_with_table_matches_rank() {
        let table = BinomialTable::new(32);
        for cls in IndexClassIter::new(5, 4) {
            assert_eq!(cls.rank_with(&table), cls.rank());
        }
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn unrank_out_of_range_panics_in_debug() {
        IndexClass::unrank(20, 3, 4);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn unrank_out_of_range_clamps_in_release() {
        let last = IndexClass::last(3, 4);
        assert_eq!(IndexClass::unrank(20, 3, 4), last);
    }

    #[test]
    fn from_tensor_index_sorts() {
        let c = IndexClass::from_tensor_index(vec![2, 0, 1, 0], 3);
        assert_eq!(c.indices(), &[0, 0, 1, 2]);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn new_rejects_decreasing_indices_in_debug() {
        IndexClass::new(vec![1, 0], 3);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn new_rejects_out_of_bounds_in_debug() {
        IndexClass::new(vec![0, 3], 3);
    }

    #[test]
    fn monomial_round_trip() {
        for cls in IndexClassIter::new(4, 3) {
            let back = cls.monomial().to_index_class();
            assert_eq!(back, cls);
        }
    }

    #[test]
    fn occurrences_sum_to_total_entry_count() {
        // Sum of multinomials over all classes = n^m (every tensor index is
        // in exactly one class).
        for (m, n) in [(3, 4), (4, 3), (2, 6), (5, 2)] {
            let sum: u64 = IndexClassIter::new(m, n).map(|c| c.occurrences()).sum();
            assert_eq!(sum, (n as u64).pow(m as u32), "[{m},{n}]");
        }
    }

    #[test]
    fn display_formats() {
        let c = IndexClass::new(vec![0, 1, 1], 3);
        assert_eq!(c.to_string(), "[0, 1, 1]");
        assert_eq!(c.monomial().to_string(), "[1, 2, 0]");
    }

    #[test]
    fn size_hint_is_exact() {
        let mut it = IndexClassIter::new(3, 3);
        assert_eq!(it.len(), 10);
        it.next();
        assert_eq!(it.len(), 9);
    }
}
