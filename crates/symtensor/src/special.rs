//! Special symmetric tensors: the identity tensor for even order, and
//! construction from symmetric rank-one terms (the inverse of what the
//! power method computes).

use crate::index::IndexClassIter;
use crate::scalar::Scalar;
use crate::storage::SymTensor;

/// The symmetric **identity tensor** `E = sym(I^{⊗m/2})` of even order `m`:
/// the unique symmetric tensor with
///
/// ```text
/// E·x^{m−1} = ‖x‖^{m−2}·x      and      E·x^m = ‖x‖^m ,
/// ```
///
/// so every unit vector is an eigenvector with eigenvalue 1 (the tensor
/// analogue of the identity matrix; for `m = 2` it *is* the identity).
///
/// Entries are computed from the perfect matchings of the `m` index
/// positions: `E_{i₁…i_m} = #{matchings whose matched pairs carry equal
/// indices} / (m−1)!!`. For `m = 4` this is the familiar
/// `(δ_{ij}δ_{kl} + δ_{ik}δ_{jl} + δ_{il}δ_{jk}) / 3`.
///
/// `m` being even and nonzero is a debug-checked precondition; release
/// builds fall back to the zero tensor for invalid orders.
pub fn identity_even<S: Scalar>(m: usize, n: usize) -> SymTensor<S> {
    if m < 2 || !m.is_multiple_of(2) {
        debug_assert!(false, "identity tensor needs even order, got {m}");
        return SymTensor::zeros(m.max(1), n);
    }
    let matchings = perfect_matchings(m);
    let total = matchings.len() as f64; // (m-1)!!
    let mut values = Vec::new();
    for class in IndexClassIter::new(m, n) {
        let idx = class.indices();
        let good = matchings
            .iter()
            .filter(|pairs| pairs.iter().all(|&(a, b)| idx[a] == idx[b]))
            .count();
        values.push(S::from_f64(good as f64 / total));
    }
    // The iterator yields exactly C(m+n-1, m) classes, so this cannot fail.
    SymTensor::from_values(m, n, values).unwrap_or_else(|_| SymTensor::zeros(m, n))
}

/// All perfect matchings of `{0, …, m-1}` (for even `m`), each as a list of
/// index pairs. There are `(m-1)!! = 1·3·5·…·(m-1)` of them.
///
/// Even `m` is a debug-checked precondition; odd `m` in release builds
/// yields an empty list.
pub fn perfect_matchings(m: usize) -> Vec<Vec<(usize, usize)>> {
    if !m.is_multiple_of(2) {
        debug_assert!(false, "perfect matchings need even m, got {m}");
        return Vec::new();
    }
    let mut out = Vec::new();
    let items: Vec<usize> = (0..m).collect();
    let mut current = Vec::new();
    fn rec(items: &[usize], current: &mut Vec<(usize, usize)>, out: &mut Vec<Vec<(usize, usize)>>) {
        if items.is_empty() {
            out.push(current.clone());
            return;
        }
        let first = items[0];
        for k in 1..items.len() {
            let partner = items[k];
            let rest: Vec<usize> = items
                .iter()
                .copied()
                .filter(|&v| v != first && v != partner)
                .collect();
            current.push((first, partner));
            rec(&rest, current, out);
            current.pop();
        }
    }
    rec(&items, &mut current, &mut out);
    out
}

/// Build `Σᵢ λᵢ·vᵢ^{⊗m}`: a symmetric tensor from weighted symmetric
/// rank-one terms. This is the synthesis direction of the best-rank-one
/// problem the (unshifted) power method solves, and the generator used by
/// the decomposition tests.
///
/// Equal-length, non-empty lists of same-dimension vectors are
/// debug-checked preconditions.
///
/// # Panics
/// Panics (index out of bounds) on an empty vector list in release
/// builds; mismatched term counts truncate to the shorter list.
pub fn from_rank_ones<S: Scalar>(m: usize, weights: &[S], vectors: &[Vec<S>]) -> SymTensor<S> {
    debug_assert!(
        weights.len() == vectors.len(),
        "one weight per vector: {} weights, {} vectors",
        weights.len(),
        vectors.len()
    );
    debug_assert!(!weights.is_empty(), "need at least one term");
    let n = vectors[0].len();
    debug_assert!(
        vectors.iter().all(|v| v.len() == n),
        "all vectors must share one dimension"
    );
    let mut acc = SymTensor::zeros(m, n);
    for (&w, v) in weights.iter().zip(vectors) {
        let mut term = SymTensor::rank_one(m, v);
        term.scale(w);
        // Every term is built with shape (m, n), matching `acc`; keep the
        // accumulator unchanged on the impossible mismatch.
        acc = acc.add(&term).unwrap_or(acc);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{axm, axm1};
    use crate::scalar::norm2;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn matching_counts_are_double_factorials() {
        assert_eq!(perfect_matchings(2).len(), 1);
        assert_eq!(perfect_matchings(4).len(), 3);
        assert_eq!(perfect_matchings(6).len(), 15);
        assert_eq!(perfect_matchings(8).len(), 105);
    }

    #[test]
    fn matchings_cover_all_positions_once() {
        for m in [2usize, 4, 6] {
            for matching in perfect_matchings(m) {
                let mut seen = vec![false; m];
                for (a, b) in matching {
                    assert!(!seen[a] && !seen[b]);
                    seen[a] = true;
                    seen[b] = true;
                }
                assert!(seen.iter().all(|&s| s));
            }
        }
    }

    #[test]
    fn identity_order_2_is_identity_matrix() {
        let e = identity_even::<f64>(2, 4);
        for i in 0..4 {
            for j in 0..4 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert_eq!(e.get(&[i.min(j), i.max(j)]).unwrap(), want);
            }
        }
    }

    #[test]
    fn identity_order_4_matches_closed_form() {
        // E_{iijj} (i != j) = 1/3; E_{iiii} = 1; E_{ijkl} all distinct = 0.
        let e = identity_even::<f64>(4, 3);
        assert_eq!(e.get(&[0, 0, 0, 0]).unwrap(), 1.0);
        assert!((e.get(&[0, 0, 1, 1]).unwrap() - 1.0 / 3.0).abs() < 1e-15);
        assert_eq!(e.get(&[0, 0, 0, 1]).unwrap(), 0.0);
        assert_eq!(e.get(&[0, 1, 1, 2]).unwrap(), 0.0);
    }

    #[test]
    fn identity_acts_as_identity_on_the_sphere() {
        for (m, n) in [(2usize, 3usize), (4, 3), (4, 5), (6, 3)] {
            let e = identity_even::<f64>(m, n);
            let mut rng = StdRng::seed_from_u64(7 + m as u64);
            let x: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let nrm = norm2(&x);
            // E x^m = ||x||^m.
            let s = axm(&e, &x).unwrap();
            assert!(
                (s - nrm.powi(m as i32)).abs() < 1e-10 * (1.0 + s.abs()),
                "[{m},{n}] E x^m: {s} vs {}",
                nrm.powi(m as i32)
            );
            // E x^{m-1} = ||x||^{m-2} x.
            let mut y = vec![0.0; n];
            axm1(&e, &x, &mut y).unwrap();
            let scale = nrm.powi(m as i32 - 2);
            for j in 0..n {
                assert!(
                    (y[j] - scale * x[j]).abs() < 1e-10 * (1.0 + y[j].abs()),
                    "[{m},{n}] j={j}"
                );
            }
        }
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn odd_order_identity_panics_in_debug() {
        identity_even::<f64>(3, 3);
    }

    #[test]
    fn from_rank_ones_single_term_matches_rank_one() {
        let v = vec![0.5, -1.0, 0.25];
        let direct = SymTensor::<f64>::rank_one(3, &v);
        let built = from_rank_ones(3, &[1.0], &[v]);
        assert_eq!(built.max_abs_diff(&direct).unwrap(), 0.0);
    }

    #[test]
    fn from_rank_ones_evaluates_as_weighted_powers() {
        let mut rng = StdRng::seed_from_u64(11);
        let v1: Vec<f64> = (0..4).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let v2: Vec<f64> = (0..4).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let a = from_rank_ones(4, &[2.0, -0.5], &[v1.clone(), v2.clone()]);
        let x: Vec<f64> = (0..4).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let d1: f64 = v1.iter().zip(&x).map(|(p, q)| p * q).sum();
        let d2: f64 = v2.iter().zip(&x).map(|(p, q)| p * q).sum();
        let want = 2.0 * d1.powi(4) - 0.5 * d2.powi(4);
        assert!((axm(&a, &x).unwrap() - want).abs() < 1e-10 * (1.0 + want.abs()));
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn from_rank_ones_length_mismatch_panics_in_debug() {
        from_rank_ones::<f64>(3, &[1.0, 2.0], &[vec![1.0, 0.0]]);
    }
}
