//! Flop accounting for the kernels, used to report GFLOPS figures the way
//! the paper does (Table II formulas, Table III(a) rates).
//!
//! The counts below are *useful floating-point operations* — multiplies and
//! adds on tensor/vector values — for the unrolled-style kernels where index
//! arithmetic and multinomial coefficients are resolved outside the floating
//! point stream. They intentionally exclude integer index bookkeeping, which
//! is how GPU flop rates are conventionally reported.

use crate::multinomial::num_unique_entries;

/// Flops to evaluate `A·xᵐ` with the symmetric kernel:
/// per unique entry, `m-1` multiplies for the monomial `x` product, one
/// multiply by the (precomputed) coefficient, one multiply by the tensor
/// value and one add into the accumulator — `(m + 2)` flops per entry.
pub fn axm_sym_flops(m: usize, n: usize) -> u64 {
    num_unique_entries(m, n) * (m as u64 + 2)
}

/// Flops to evaluate `A·xᵐ⁻¹` with the symmetric kernel: each (class,
/// distinct index) pair costs `m-2` multiplies for the reduced monomial, one
/// multiply by the coefficient, one by the value and one add — `(m + 1)`
/// flops per contribution. The number of contributions is the total number
/// of (class, distinct-index) incidences.
pub fn axm1_sym_flops(m: usize, n: usize) -> u64 {
    distinct_incidences(m, n) * (m as u64 + 1)
}

/// Number of (index class, distinct index) pairs of `R^[m,n]`: the total
/// inner-loop trip count of Figure 3. Equals `n · C(m-1+n-1, m-1)` — each
/// of the `n` output entries receives one contribution per class of the
/// remaining `m-1` modes.
pub fn distinct_incidences(m: usize, n: usize) -> u64 {
    n as u64 * num_unique_entries(m - 1, n)
}

/// Flops for the general (dense, nonsymmetric) baseline of `A·xᵐ`:
/// `m` successive mode contractions; contraction `k` multiplies an
/// `n^{m-k+1}`-entry tensor by `x` (`2` flops per entry). Total
/// `2(n^m + n^{m-1} + … + n) = 2n(n^m - 1)/(n - 1)` for `n > 1`.
pub fn axm_dense_flops(m: usize, n: usize) -> u64 {
    let n64 = n as u64;
    if n == 1 {
        return 2 * m as u64;
    }
    let mut total = 0u64;
    let mut size = n64.pow(m as u32);
    for _ in 0..m {
        total += 2 * size;
        size /= n64;
    }
    total
}

/// Flops for the general baseline of `A·xᵐ⁻¹`: `m-1` mode contractions.
pub fn axm1_dense_flops(m: usize, n: usize) -> u64 {
    let n64 = n as u64;
    if n == 1 {
        return 2 * (m as u64 - 1);
    }
    let mut total = 0u64;
    let mut size = n64.pow(m as u32);
    for _ in 0..m - 1 {
        total += 2 * size;
        size /= n64;
    }
    total
}

/// Useful flops per SS-HOPM iteration (one `A·xᵐ⁻¹`, one shift-add `αx`,
/// one normalization, one `A·xᵐ`), symmetric kernels. This is the
/// per-iteration count used for Table III GFLOPS accounting.
pub fn sshopm_iter_flops(m: usize, n: usize) -> u64 {
    let n64 = n as u64;
    axm1_sym_flops(m, n)            // A x^{m-1}
        + 2 * n64                   // + alpha * x (mul + add per entry)
        + (2 * n64 + 1 + n64)       // norm: n mul + n add (fused as 2n) + sqrt + n div
        + axm_sym_flops(m, n) // lambda = A x^m
}

/// Storage (number of scalars) for a symmetric tensor: `C(m+n-1, m)`.
pub fn sym_storage(m: usize, n: usize) -> u64 {
    num_unique_entries(m, n)
}

/// Storage (number of scalars) for a general tensor: `n^m`.
pub fn dense_storage(m: usize, n: usize) -> u64 {
    (n as u64).pow(m as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_case_m4_n3() {
        // 15 unique entries; Section V-D: Axm has 15 terms, each Axm1 output
        // entry has 10 terms (= C(3+3-1, 3) classes of the remaining modes).
        assert_eq!(sym_storage(4, 3), 15);
        assert_eq!(dense_storage(4, 3), 81);
        assert_eq!(distinct_incidences(4, 3), 30); // 3 outputs x 10 terms
        assert_eq!(axm_sym_flops(4, 3), 15 * 6);
        assert_eq!(axm1_sym_flops(4, 3), 30 * 5);
    }

    #[test]
    fn dense_flops_dominated_by_first_contraction() {
        // 2 n^m leading term (Table II).
        let f = axm_dense_flops(4, 10);
        assert!(f >= 2 * 10u64.pow(4));
        assert!(f < 2 * 10u64.pow(4) + 3 * 10u64.pow(3));
    }

    #[test]
    fn symmetric_flops_beat_dense_by_roughly_m_factorial() {
        for (m, n) in [(4, 30), (5, 25), (6, 20)] {
            let ratio = axm_dense_flops(m, n) as f64 / axm_sym_flops(m, n) as f64;
            // The asymptotic gain is 2·m!/(m+2); the O(n^{m-1}) terms still
            // matter at these n, so allow slack but require the gain to be
            // a large fraction of it and to exceed (m-1)!.
            let asymptotic = 2.0 * crate::multinomial::factorial(m) as f64 / (m as f64 + 2.0);
            assert!(
                ratio > asymptotic * 0.3
                    && ratio > crate::multinomial::factorial(m - 1) as f64 * 0.5,
                "[{m},{n}] ratio {ratio} vs asymptotic {asymptotic}"
            );
        }
    }

    #[test]
    fn distinct_incidences_counts_inner_loop_trips() {
        // Direct count by enumeration.
        use crate::index::IndexClassIter;
        for (m, n) in [(3, 3), (4, 3), (4, 4), (5, 2)] {
            let mut count = 0u64;
            for class in IndexClassIter::new(m, n) {
                let mut prev = usize::MAX;
                for &i in class.indices() {
                    if i != prev {
                        count += 1;
                        prev = i;
                    }
                }
            }
            assert_eq!(count, distinct_incidences(m, n), "[{m},{n}]");
        }
    }

    #[test]
    fn n_equals_one_degenerate_cases() {
        assert_eq!(axm_dense_flops(4, 1), 8);
        assert_eq!(axm1_dense_flops(4, 1), 6);
        assert_eq!(sym_storage(4, 1), 1);
    }

    #[test]
    fn sshopm_iter_flops_is_sum_of_parts() {
        let f = sshopm_iter_flops(4, 3);
        assert!(f > axm_sym_flops(4, 3) + axm1_sym_flops(4, 3));
        assert!(f < axm_sym_flops(4, 3) + axm1_sym_flops(4, 3) + 100);
    }
}
