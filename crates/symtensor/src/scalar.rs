//! Floating-point abstraction so every kernel works in both `f32` (the
//! precision the paper benchmarks) and `f64` (used for reference checks).

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A real scalar type usable in tensor kernels.
///
/// Implemented for `f32` and `f64`. The trait is deliberately small: just
/// the arithmetic the kernels need plus conversions for exact integer
/// coefficients (multinomials) and tolerances.
pub trait Scalar:
    Copy
    + Clone
    + Debug
    + Display
    + PartialEq
    + PartialOrd
    + Default
    + Send
    + Sync
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
    + 'static
{
    /// Canonical lowercase type name ("f32" / "f64"), used to key
    /// scalar-specific artifacts such as cached kernel tapes.
    const NAME: &'static str;
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Machine epsilon for this type.
    const EPSILON: Self;

    /// Lossy conversion from `f64` (exact for `f64`, rounded for `f32`).
    fn from_f64(v: f64) -> Self;
    /// Widening conversion to `f64`.
    fn to_f64(self) -> f64;
    /// Exact-for-small-values conversion from `u64` (multinomial coefficients).
    fn from_u64(v: u64) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// `self^k` for a small non-negative integer exponent.
    fn powi(self, k: i32) -> Self;
    /// `self * a + b` (used where an FMA-shaped expression reads best).
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// Maximum of two values (NaN-propagating is acceptable; inputs are finite).
    fn max(self, other: Self) -> Self;
    /// Minimum of two values.
    fn min(self, other: Self) -> Self;
    /// True if the value is finite (not NaN or infinite).
    fn is_finite(self) -> bool;
}

macro_rules! impl_scalar {
    ($t:ty, $name:literal) => {
        impl Scalar for $t {
            const NAME: &'static str = $name;
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const EPSILON: Self = <$t>::EPSILON;

            #[inline(always)]
            fn from_f64(v: f64) -> Self {
                v as $t
            }
            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline(always)]
            fn from_u64(v: u64) -> Self {
                v as $t
            }
            #[inline(always)]
            fn abs(self) -> Self {
                <$t>::abs(self)
            }
            #[inline(always)]
            fn sqrt(self) -> Self {
                <$t>::sqrt(self)
            }
            #[inline(always)]
            fn powi(self, k: i32) -> Self {
                <$t>::powi(self, k)
            }
            #[inline(always)]
            fn mul_add(self, a: Self, b: Self) -> Self {
                <$t>::mul_add(self, a, b)
            }
            #[inline(always)]
            fn max(self, other: Self) -> Self {
                <$t>::max(self, other)
            }
            #[inline(always)]
            fn min(self, other: Self) -> Self {
                <$t>::min(self, other)
            }
            #[inline(always)]
            fn is_finite(self) -> bool {
                <$t>::is_finite(self)
            }
        }
    };
}

impl_scalar!(f32, "f32");
impl_scalar!(f64, "f64");

/// Euclidean norm of a slice.
#[inline]
pub fn norm2<S: Scalar>(v: &[S]) -> S {
    v.iter().map(|&e| e * e).sum::<S>().sqrt()
}

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics in debug builds if the lengths differ.
#[inline]
pub fn dot<S: Scalar>(a: &[S], b: &[S]) -> S {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum()
}

/// Normalize a vector in place; returns the original norm.
///
/// If the norm is zero the vector is left untouched and zero is returned.
#[inline]
pub fn normalize<S: Scalar>(v: &mut [S]) -> S {
    let nrm = norm2(v);
    if nrm != S::ZERO {
        for e in v.iter_mut() {
            *e /= nrm;
        }
    }
    nrm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_match_literals() {
        assert_eq!(<f32 as Scalar>::ZERO, 0.0f32);
        assert_eq!(<f64 as Scalar>::ONE, 1.0f64);
        assert_eq!(<f32 as Scalar>::EPSILON, f32::EPSILON);
        assert_eq!(<f32 as Scalar>::NAME, "f32");
        assert_eq!(<f64 as Scalar>::NAME, "f64");
    }

    #[test]
    fn conversions_round_trip_small_integers() {
        for v in 0u64..100 {
            assert_eq!(<f64 as Scalar>::from_u64(v).to_f64(), v as f64);
            assert_eq!(<f32 as Scalar>::from_u64(v).to_f64(), v as f64);
        }
    }

    #[test]
    fn norm_and_dot_agree_with_hand_computation() {
        let v = [3.0f64, 4.0];
        assert!((norm2(&v) - 5.0).abs() < 1e-15);
        let a = [1.0f64, 2.0, 3.0];
        let b = [4.0f64, -5.0, 6.0];
        assert!((dot(&a, &b) - 12.0).abs() < 1e-15);
    }

    #[test]
    fn normalize_produces_unit_vector_and_returns_norm() {
        let mut v = [3.0f32, 4.0];
        let nrm = normalize(&mut v);
        assert!((nrm - 5.0).abs() < 1e-6);
        assert!((norm2(&v) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn normalize_zero_vector_is_noop() {
        let mut v = [0.0f64; 3];
        let nrm = normalize(&mut v);
        assert_eq!(nrm, 0.0);
        assert_eq!(v, [0.0; 3]);
    }

    #[test]
    fn powi_matches_repeated_multiplication() {
        let x = 1.5f64;
        let mut acc = 1.0f64;
        for k in 0..8 {
            assert!((Scalar::powi(x, k) - acc).abs() < 1e-12);
            acc *= x;
        }
    }

    #[test]
    fn min_max_are_consistent() {
        assert_eq!(Scalar::max(2.0f64, 3.0), 3.0);
        assert_eq!(Scalar::min(2.0f64, 3.0), 2.0);
        assert_eq!(Scalar::max(-2.0f32, -3.0), -2.0);
    }
}
