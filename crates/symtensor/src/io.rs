//! Plain-text persistence for packed symmetric tensors.
//!
//! A deliberately simple, line-oriented, versioned format (no external
//! format crates required):
//!
//! ```text
//! symtensor 1              <- magic + format version
//! order 4 dim 3 count 2    <- shape and number of tensors in the file
//! # comment lines and blank lines are ignored
//! 0.5 -0.25 ... (15 values, whitespace-separated, one tensor per line)
//! 1.0 0.0 ...
//! ```
//!
//! Values are written with enough digits to round-trip `f64` exactly
//! (`{:?}` formatting); any whitespace separates values, and a tensor's
//! values may wrap across lines as long as tensors are concatenated in
//! order. Readers of `f32` data parse through `f64`.

use crate::batch::{TensorBatch, TensorBatchRef};
use crate::error::Error;
use crate::multinomial::num_unique_entries;
use crate::scalar::Scalar;
use crate::storage::SymTensor;
use std::io::{BufRead, BufReader, Read, Write};

/// Errors specific to parsing the text format, converted into
/// [`crate::Error`] via a value-length mismatch or surfaced as
/// `std::io::Error` by the caller-facing functions.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file does not start with the expected magic/version line.
    BadHeader(String),
    /// A numeric field failed to parse.
    BadNumber {
        /// The offending token.
        token: String,
    },
    /// The file ended before all declared values were read.
    UnexpectedEof {
        /// Values still missing.
        missing: usize,
    },
    /// More values were present than the header declared.
    TrailingValues,
    /// Shape failed tensor validation.
    Shape(Error),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::BadHeader(line) => write!(f, "bad header line: {line:?}"),
            IoError::BadNumber { token } => write!(f, "bad number: {token:?}"),
            IoError::UnexpectedEof { missing } => {
                write!(f, "unexpected end of file ({missing} values missing)")
            }
            IoError::TrailingValues => write!(f, "trailing values after last tensor"),
            IoError::Shape(e) => write!(f, "invalid shape: {e}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Write an arena batch: the header plus one line of `stride` values per
/// tensor, streamed straight from the contiguous buffer.
pub fn write_tensor_batch<'a, S: Scalar, W: Write>(
    w: &mut W,
    batch: impl Into<TensorBatchRef<'a, S>>,
) -> std::io::Result<()> {
    let batch = batch.into();
    writeln!(w, "symtensor 1")?;
    writeln!(
        w,
        "order {} dim {} count {}",
        batch.order(),
        batch.dim(),
        batch.len()
    )?;
    for t in batch.iter() {
        let mut first = true;
        for v in t.values() {
            if !first {
                write!(w, " ")?;
            }
            write!(w, "{:?}", v.to_f64())?;
            first = false;
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Write a batch of same-shaped tensors held in per-tensor storage.
///
/// # Errors
/// Returns [`std::io::ErrorKind::InvalidInput`] if the tensors do not all
/// share one shape, and propagates any write error from `w`.
pub fn write_tensors<S: Scalar, W: Write>(
    w: &mut W,
    tensors: &[SymTensor<S>],
) -> std::io::Result<()> {
    let (m, n) = match tensors.first() {
        Some(t) => (t.order(), t.dim()),
        None => (1, 1), // an empty file still needs a well-formed header
    };
    if !tensors.iter().all(|t| t.order() == m && t.dim() == n) {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "all tensors in a file must share one shape",
        ));
    }
    writeln!(w, "symtensor 1")?;
    writeln!(w, "order {m} dim {n} count {}", tensors.len())?;
    for t in tensors {
        let mut first = true;
        for v in t.values() {
            if !first {
                write!(w, " ")?;
            }
            write!(w, "{:?}", v.to_f64())?;
            first = false;
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Write a single tensor (a one-element batch).
pub fn write_tensor<S: Scalar, W: Write>(w: &mut W, tensor: &SymTensor<S>) -> std::io::Result<()> {
    write_tensors(w, std::slice::from_ref(tensor))
}

/// Read a batch written by [`write_tensor_batch`] (or [`write_tensors`])
/// directly into one contiguous [`TensorBatch`] arena — no intermediate
/// `Vec<SymTensor>` and no per-tensor allocation.
pub fn read_tensor_batch<S: Scalar, R: Read>(r: R) -> std::result::Result<TensorBatch<S>, IoError> {
    let mut reader = BufReader::new(r);
    let mut line = String::new();

    // Magic line.
    read_content_line(&mut reader, &mut line)?;
    if line.trim() != "symtensor 1" {
        return Err(IoError::BadHeader(line.trim().to_string()));
    }

    // Shape line: "order M dim N count K".
    read_content_line(&mut reader, &mut line)?;
    let fields: Vec<&str> = line.split_whitespace().collect();
    if fields.len() != 6 || fields[0] != "order" || fields[2] != "dim" || fields[4] != "count" {
        return Err(IoError::BadHeader(line.trim().to_string()));
    }
    let m: usize = parse(fields[1])?;
    let n: usize = parse(fields[3])?;
    let count: usize = parse(fields[5])?;
    let per_tensor = num_unique_entries_checked(m, n)?;

    // Value stream.
    let mut values: Vec<S> = Vec::with_capacity(per_tensor * count);
    let needed = per_tensor * count;
    loop {
        line.clear();
        let read = reader.read_line(&mut line)?;
        if read == 0 {
            break;
        }
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        for tok in trimmed.split_whitespace() {
            let v: f64 = tok.parse().map_err(|_| IoError::BadNumber {
                token: tok.to_string(),
            })?;
            values.push(S::from_f64(v));
            if values.len() > needed {
                return Err(IoError::TrailingValues);
            }
        }
    }
    if values.len() < needed {
        return Err(IoError::UnexpectedEof {
            missing: needed - values.len(),
        });
    }

    // The flat value stream *is* the arena.
    TensorBatch::from_values(m, n, values).map_err(IoError::Shape)
}

/// Read a batch of tensors written by [`write_tensors`] into per-tensor
/// storage (compatibility wrapper over [`read_tensor_batch`]).
pub fn read_tensors<S: Scalar, R: Read>(r: R) -> std::result::Result<Vec<SymTensor<S>>, IoError> {
    Ok(read_tensor_batch(r)?.to_tensors())
}

/// Read a single tensor; errors if the file holds zero or several.
pub fn read_tensor<S: Scalar, R: Read>(r: R) -> std::result::Result<SymTensor<S>, IoError> {
    let batch: TensorBatch<S> = read_tensor_batch(r)?;
    if batch.len() != 1 {
        return Err(IoError::BadHeader(format!(
            "expected exactly one tensor, file holds {}",
            batch.len()
        )));
    }
    Ok(batch.get(0).to_owned())
}

fn num_unique_entries_checked(m: usize, n: usize) -> std::result::Result<usize, IoError> {
    if !(1..=crate::multinomial::MAX_ORDER).contains(&m) {
        return Err(IoError::Shape(Error::OrderOutOfRange(m)));
    }
    if n < 1 {
        return Err(IoError::Shape(Error::DimensionOutOfRange(n)));
    }
    Ok(num_unique_entries(m, n) as usize)
}

fn parse<T: std::str::FromStr>(tok: &str) -> std::result::Result<T, IoError> {
    tok.parse().map_err(|_| IoError::BadNumber {
        token: tok.to_string(),
    })
}

/// Skip blank/comment lines; error at EOF.
fn read_content_line<R: BufRead>(r: &mut R, line: &mut String) -> std::result::Result<(), IoError> {
    loop {
        line.clear();
        let read = r.read_line(line)?;
        if read == 0 {
            return Err(IoError::UnexpectedEof { missing: 0 });
        }
        let trimmed = line.trim();
        if !trimmed.is_empty() && !trimmed.starts_with('#') {
            return Ok(());
        }
    }
}

/// Result alias for this module.
pub type IoResult<T> = std::result::Result<T, IoError>;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn round_trip(tensors: &[SymTensor<f64>]) -> Vec<SymTensor<f64>> {
        let mut buf = Vec::new();
        write_tensors(&mut buf, tensors).unwrap();
        read_tensors(&buf[..]).unwrap()
    }

    #[test]
    fn single_tensor_round_trips_exactly() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = SymTensor::<f64>::random(4, 3, &mut rng);
        let mut buf = Vec::new();
        write_tensor(&mut buf, &t).unwrap();
        let back: SymTensor<f64> = read_tensor(&buf[..]).unwrap();
        assert_eq!(back.values(), t.values(), "f64 round-trip must be exact");
    }

    #[test]
    fn batch_round_trips() {
        let mut rng = StdRng::seed_from_u64(2);
        let tensors: Vec<SymTensor<f64>> =
            (0..5).map(|_| SymTensor::random(3, 4, &mut rng)).collect();
        let back = round_trip(&tensors);
        assert_eq!(back.len(), 5);
        for (a, b) in tensors.iter().zip(&back) {
            assert_eq!(a.values(), b.values());
        }
    }

    #[test]
    fn empty_batch_round_trips() {
        let back = round_trip(&[]);
        assert!(back.is_empty());
    }

    #[test]
    fn tensor_batch_round_trips_through_arena() {
        let mut rng = StdRng::seed_from_u64(8);
        let batch = TensorBatch::<f64>::random(4, 3, 6, &mut rng).unwrap();
        let mut buf = Vec::new();
        write_tensor_batch(&mut buf, &batch).unwrap();
        let back: TensorBatch<f64> = read_tensor_batch(&buf[..]).unwrap();
        assert_eq!(back, batch, "arena round-trip must be exact");
        // The Vec-based compatibility reader sees the same tensors.
        let tensors: Vec<SymTensor<f64>> = read_tensors(&buf[..]).unwrap();
        assert_eq!(tensors, batch.to_tensors());
    }

    #[test]
    fn batch_and_vec_writers_produce_identical_bytes() {
        let mut rng = StdRng::seed_from_u64(9);
        let tensors: Vec<SymTensor<f64>> =
            (0..4).map(|_| SymTensor::random(3, 4, &mut rng)).collect();
        let batch = TensorBatch::from_tensors(&tensors).unwrap();
        let mut a = Vec::new();
        write_tensors(&mut a, &tensors).unwrap();
        let mut b = Vec::new();
        write_tensor_batch(&mut b, &batch).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn f32_reads_f64_file() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = SymTensor::<f64>::random(4, 3, &mut rng);
        let mut buf = Vec::new();
        write_tensor(&mut buf, &t).unwrap();
        let back: SymTensor<f32> = read_tensor(&buf[..]).unwrap();
        for (a, b) in t.values().iter().zip(back.values()) {
            assert!((*a as f32 - b).abs() < 1e-7);
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "\n# a comment\nsymtensor 1\n# another\norder 2 dim 2 count 1\n\n1.0 2.0\n# trailing comment\n3.0\n";
        let t: SymTensor<f64> = read_tensor(text.as_bytes()).unwrap();
        assert_eq!(t.values(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn values_may_wrap_lines() {
        let text = "symtensor 1\norder 2 dim 2 count 2\n1 2\n3 4\n5 6\n";
        let ts: Vec<SymTensor<f64>> = read_tensors(text.as_bytes()).unwrap();
        assert_eq!(ts.len(), 2);
        assert_eq!(ts[0].values(), &[1.0, 2.0, 3.0]);
        assert_eq!(ts[1].values(), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn bad_magic_rejected() {
        let text = "symtensor 2\norder 2 dim 2 count 0\n";
        assert!(matches!(
            read_tensors::<f64, _>(text.as_bytes()),
            Err(IoError::BadHeader(_))
        ));
    }

    #[test]
    fn bad_shape_line_rejected() {
        for bad in [
            "symtensor 1\norder 2 dim 2\n",
            "symtensor 1\nshape 2 2 1\n",
            "symtensor 1\norder x dim 2 count 1\n",
        ] {
            assert!(read_tensors::<f64, _>(bad.as_bytes()).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn bad_number_rejected() {
        let text = "symtensor 1\norder 2 dim 2 count 1\n1.0 oops 3.0\n";
        assert!(matches!(
            read_tensors::<f64, _>(text.as_bytes()),
            Err(IoError::BadNumber { .. })
        ));
    }

    #[test]
    fn truncated_file_rejected() {
        let text = "symtensor 1\norder 2 dim 2 count 1\n1.0 2.0\n";
        assert!(matches!(
            read_tensors::<f64, _>(text.as_bytes()),
            Err(IoError::UnexpectedEof { missing: 1 })
        ));
    }

    #[test]
    fn trailing_values_rejected() {
        let text = "symtensor 1\norder 2 dim 2 count 1\n1 2 3 4\n";
        assert!(matches!(
            read_tensors::<f64, _>(text.as_bytes()),
            Err(IoError::TrailingValues)
        ));
    }

    #[test]
    fn invalid_shape_in_header_rejected() {
        let text = "symtensor 1\norder 0 dim 2 count 1\n";
        assert!(matches!(
            read_tensors::<f64, _>(text.as_bytes()),
            Err(IoError::Shape(Error::OrderOutOfRange(0)))
        ));
        let text = "symtensor 1\norder 25 dim 2 count 1\n";
        assert!(read_tensors::<f64, _>(text.as_bytes()).is_err());
    }

    #[test]
    fn read_tensor_requires_exactly_one() {
        let text = "symtensor 1\norder 2 dim 2 count 2\n1 2 3\n4 5 6\n";
        assert!(read_tensor::<f64, _>(text.as_bytes()).is_err());
    }

    #[test]
    fn error_display_is_informative() {
        let e = IoError::BadNumber {
            token: "xyz".into(),
        };
        assert!(e.to_string().contains("xyz"));
        let e = IoError::UnexpectedEof { missing: 7 };
        assert!(e.to_string().contains('7'));
    }

    #[test]
    fn mixed_shapes_are_invalid_input_on_write() {
        let a = SymTensor::<f64>::zeros(2, 2);
        let b = SymTensor::<f64>::zeros(3, 2);
        let mut buf = Vec::new();
        let err = write_tensors(&mut buf, &[a, b]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
        assert!(buf.is_empty(), "nothing may be written on invalid input");
    }
}
