//! Symmetry-exploiting tensor-times-same-vector kernels (Section III-B).
//!
//! * [`axm`] — `A·xᵐ` (scalar; the generalized Rayleigh quotient), Figure 2.
//! * [`axm1`] — `A·xᵐ⁻¹` (vector; the generalized matrix-vector product),
//!   Figure 3.
//! * [`axmp`] — the general `(m-p)`-times product `A·x^{m-p}` returning a
//!   symmetric order-`p` tensor (Definition 2), which subsumes both (`p=0`,
//!   `p=1`) and also provides the `p=2` projected-Hessian matrix used for
//!   eigenpair classification.
//! * [`PrecomputedTables`] — the Section III-B5 / V-C storage-for-compute
//!   trade-off: index representations and multinomial coefficients stored
//!   once per `(m, n)` and shared by all tensors of that shape.
//!
//! Every kernel walks the packed unique entries in lexicographic order using
//! the `UPDATEINDEX` successor, weighting each entry by the number of tensor
//! indices in its class ([`crate::multinomial::multinomial0`] /
//! [`crate::multinomial::multinomial1`]), so the flop count is proportional to `n^m / m!`
//! instead of `n^m`.

use crate::error::{Error, Result};
use crate::index::{IndexClass, IndexClassIter};
use crate::multinomial::{multinomial0, multinomial1_from_stored, num_unique_entries};
use crate::scalar::Scalar;
use crate::storage::{SymTensor, SymTensorRef};

/// A strategy for evaluating the two SS-HOPM kernels on packed symmetric
/// tensors. Implemented by the on-the-fly [`GeneralKernels`], the
/// table-driven [`PrecomputedTables`], the lockstep
/// [`crate::lanes::BatchedKernels`], and (in the `unrolled` crate) the
/// compile-time fully-unrolled kernels — letting the power-method driver and
/// the benchmark harness swap implementations without code changes.
///
/// Methods take borrowed [`SymTensorRef`] views, so a tensor living inside a
/// [`crate::TensorBatch`] arena is evaluated in place — no owned
/// [`SymTensor`] is ever required on the hot path. Call sites holding an
/// owned tensor pass `a.view()`.
///
/// Both kernels are fallible: a vector of the wrong length or a tensor whose
/// shape does not match the shape an implementation was built for surfaces as
/// a typed [`Error`], never a panic or a silently wrong value — this is what
/// lets a mismatched tensor inside a batch fail alone on the resilient path.
pub trait TensorKernels<S: Scalar>: Sync {
    /// Evaluate `A·xᵐ`.
    ///
    /// # Errors
    /// Returns [`Error::VectorLengthMismatch`] if `x.len() != a.dim()`, or
    /// [`Error::ShapeMismatch`] if the implementation was built for a
    /// different shape than `a`.
    fn axm(&self, a: SymTensorRef<'_, S>, x: &[S]) -> Result<S>;

    /// Evaluate `A·xᵐ⁻¹` into `y` (overwritten).
    ///
    /// # Errors
    /// Returns a typed error on length or shape mismatch; `y` may have been
    /// partially zeroed in that case but is never left with garbage values.
    fn axm1(&self, a: SymTensorRef<'_, S>, x: &[S], y: &mut [S]) -> Result<()>;

    /// Short human-readable name for reports ("general", "precomputed",
    /// "unrolled(m,n)").
    fn name(&self) -> &'static str {
        "kernels"
    }
}

impl<S: Scalar, K: TensorKernels<S> + ?Sized> TensorKernels<S> for &K {
    fn axm(&self, a: SymTensorRef<'_, S>, x: &[S]) -> Result<S> {
        (**self).axm(a, x)
    }

    fn axm1(&self, a: SymTensorRef<'_, S>, x: &[S], y: &mut [S]) -> Result<()> {
        (**self).axm1(a, x, y)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// The paper's Figure 2 / Figure 3 kernels computing index representations
/// and multinomial coefficients on the fly (no extra storage).
#[derive(Debug, Clone, Copy, Default)]
pub struct GeneralKernels;

impl<S: Scalar> TensorKernels<S> for GeneralKernels {
    fn axm(&self, a: SymTensorRef<'_, S>, x: &[S]) -> Result<S> {
        axm(a, x)
    }

    fn axm1(&self, a: SymTensorRef<'_, S>, x: &[S], y: &mut [S]) -> Result<()> {
        axm1(a, x, y)
    }

    fn name(&self) -> &'static str {
        "general"
    }
}

impl<S: Scalar> TensorKernels<S> for PrecomputedTables {
    fn axm(&self, a: SymTensorRef<'_, S>, x: &[S]) -> Result<S> {
        PrecomputedTables::axm(self, a, x)
    }

    fn axm1(&self, a: SymTensorRef<'_, S>, x: &[S], y: &mut [S]) -> Result<()> {
        PrecomputedTables::axm1(self, a, x, y)
    }

    fn name(&self) -> &'static str {
        "precomputed"
    }
}

/// Validate that `x` has length `n`.
pub(crate) fn check_vec<S>(x: &[S], n: usize) -> Result<()> {
    if x.len() != n {
        return Err(Error::VectorLengthMismatch {
            expected: n,
            actual: x.len(),
        });
    }
    Ok(())
}

/// Validate that a tensor view has shape `(m, n)`.
pub(crate) fn check_shape<S: Scalar>(a: &SymTensorRef<'_, S>, m: usize, n: usize) -> Result<()> {
    if a.order() != m || a.dim() != n {
        return Err(Error::ShapeMismatch {
            expected: (m, n),
            found: (a.order(), a.dim()),
        });
    }
    Ok(())
}

/// `A·xᵐ`: the tensor applied to the same vector in all modes, yielding a
/// scalar (Figure 2 / Equation 4 of the paper).
///
/// Cost: `O(m · n^m / m!)` flops (each of the `C(m+n-1, m)` unique entries
/// contributes an `m`-fold product, a multinomial weight and one
/// accumulation).
///
/// # Errors
/// Returns [`Error::VectorLengthMismatch`] if `x.len() != A.dim()`.
///
/// Accepts `&SymTensor<S>` or a [`SymTensorRef`] view interchangeably.
pub fn axm<'a, S: Scalar>(a: impl Into<SymTensorRef<'a, S>>, x: &[S]) -> Result<S> {
    let a = a.into();
    check_vec(x, a.dim())?;
    let m = a.order();
    let n = a.dim();
    let mut y = S::ZERO;
    let mut index = vec![0usize; m];
    let last = n - 1;
    for &av in a.values() {
        // xhat = x_{I_1} * ... * x_{I_m}
        let mut xhat = S::ONE;
        for &i in &index {
            xhat *= x[i];
        }
        let c = multinomial0(&index);
        y += S::from_u64(c) * av * xhat;
        // UPDATEINDEX (Figure 4), inlined.
        if let Some(j) = index.iter().rposition(|&i| i != last) {
            let v = index[j] + 1;
            for slot in &mut index[j..] {
                *slot = v;
            }
        }
    }
    Ok(y)
}

/// `A·xᵐ⁻¹`: the tensor applied to the same vector in all modes but one,
/// yielding a vector (Figure 3 / Equation 6 of the paper). The result is
/// accumulated into `y` (which is zeroed first).
///
/// Cost: `O(m² · n^m / m!)` flops — the inner loop visits each *distinct*
/// index of each class.
///
/// # Errors
/// Returns [`Error::VectorLengthMismatch`] if `x` or `y` is not of length
/// `A.dim()`.
///
/// Accepts `&SymTensor<S>` or a [`SymTensorRef`] view interchangeably.
pub fn axm1<'a, S: Scalar>(a: impl Into<SymTensorRef<'a, S>>, x: &[S], y: &mut [S]) -> Result<()> {
    let a = a.into();
    let n = a.dim();
    check_vec(x, n)?;
    check_vec(y, n)?;
    let m = a.order();
    y.iter_mut().for_each(|e| *e = S::ZERO);
    let mut index = vec![0usize; m];
    let last = n - 1;
    for &av in a.values() {
        // Full product x_{I_1} * ... * x_{I_m}; per-entry products below
        // divide one factor out *by recomputation* (not division, which
        // would be unstable at x_i = 0): for each distinct i in I we form
        // the product over the remaining positions.
        let mut t = 0usize;
        while t < m {
            let i = index[t];
            // Skip repeated indices: only the first occurrence of each
            // distinct index spawns a contribution (Figure 3 line 5).
            if t > 0 && index[t - 1] == i {
                t += 1;
                continue;
            }
            // xhat = product over all positions except this occurrence of i.
            let mut xhat = S::ONE;
            for (s, &is) in index.iter().enumerate() {
                if s != t {
                    xhat *= x[is];
                }
            }
            let c = crate::multinomial::multinomial1(&index, i);
            y[i] += S::from_u64(c) * av * xhat;
            t += 1;
        }
        if let Some(j) = index.iter().rposition(|&i| i != last) {
            let v = index[j] + 1;
            for slot in &mut index[j..] {
                *slot = v;
            }
        }
    }
    Ok(())
}

/// The general symmetric tensor-vector multiply of Definition 2:
/// `A·x^{m-p}` for `0 <= p <= m-1`, returning the symmetric order-`p`
/// result as a packed [`SymTensor`] (for `p = 0` a 1-entry order-... scalar
/// is inconvenient, so `p = 0` returns an order-1 tensor is *not* used;
/// instead use [`axm`]; this function requires `p >= 1`).
///
/// Entry `(A·x^{m-p})_J` for a result class `J` is computed by summing over
/// all order-`(m-p)` completion classes `K`:
///
/// ```text
/// (A x^{m-p})_J = Σ_K  C(m-p; mono(K)) · a_{sort(J ∪ K)} · Π_{i∈K} x_i
/// ```
///
/// which exploits symmetry in the contracted modes exactly as Equation 6
/// does for `p = 1`.
pub fn axmp<'a, S: Scalar>(
    a: impl Into<SymTensorRef<'a, S>>,
    x: &[S],
    p: usize,
) -> Result<SymTensor<S>> {
    let a = a.into();
    let m = a.order();
    let n = a.dim();
    check_vec(x, n)?;
    if p < 1 || p > m - 1 {
        return Err(Error::InvalidContraction { p, m });
    }
    let q = m - p; // number of contracted modes
    let mut out = SymTensor::zeros(p, n);
    // Precompute for every completion class K: its multinomial weight and
    // the product of x over its indices.
    let completions: Vec<(IndexClass, S)> = IndexClassIter::new(q, n)
        .map(|k| {
            let w = S::from_u64(k.occurrences());
            let prod: S = k.indices().iter().fold(S::ONE, |acc, &i| acc * x[i]);
            (k, w * prod)
        })
        .collect();
    let mut merged = vec![0usize; m];
    let out_len = out.num_unique();
    for jr in 0..out_len {
        let j = IndexClass::unrank(jr as u64, p, n);
        let mut acc = S::ZERO;
        for (k, wx) in &completions {
            // merge sorted J (p) and K (q) into a sorted tensor index, then
            // rank it directly — no per-iteration IndexClass allocation in
            // this O(U_p · U_q) loop (it feeds GEAP Hessian assembly).
            merge_sorted(j.indices(), k.indices(), &mut merged);
            let rank = rank_sorted(&merged, n);
            acc += *wx * a.value_at_rank(rank as usize);
        }
        out.values_mut()[jr] = acc;
    }
    Ok(out)
}

/// Rank a sorted (non-decreasing) tensor index in the combinatorial number
/// system — the same ordering as [`IndexClass::rank`], computed without
/// constructing an [`IndexClass`].
fn rank_sorted(indices: &[usize], n: usize) -> u64 {
    let m = indices.len();
    let mut rank = 0u64;
    let mut lo = 0usize;
    for (t, &it) in indices.iter().enumerate() {
        let rem = m - t - 1;
        for v in lo..it {
            rank += crate::multinomial::binomial(rem + n - v - 1, rem);
        }
        lo = it;
    }
    rank
}

/// Merge two sorted index slices into `out` (standard two-pointer merge).
fn merge_sorted(a: &[usize], b: &[usize], out: &mut [usize]) {
    debug_assert_eq!(a.len() + b.len(), out.len());
    let (mut ia, mut ib) = (0, 0);
    for slot in out.iter_mut() {
        if ia < a.len() && (ib >= b.len() || a[ia] <= b[ib]) {
            *slot = a[ia];
            ia += 1;
        } else {
            *slot = b[ib];
            ib += 1;
        }
    }
}

/// `A·x^{m-2}` reshaped as a dense symmetric `n × n` matrix (row-major),
/// used for the projected-Hessian eigenpair classification.
pub fn axm2_matrix<'a, S: Scalar>(a: impl Into<SymTensorRef<'a, S>>, x: &[S]) -> Result<Vec<S>> {
    let a = a.into();
    let m = a.order();
    let n = a.dim();
    if m < 2 {
        return Err(Error::InvalidContraction { p: 2, m });
    }
    if m == 2 {
        // The tensor is itself the matrix; expand packed to dense.
        let mut mat = vec![S::ZERO; n * n];
        for i in 0..n {
            for j in 0..n {
                mat[i * n + j] = a.get(&[i, j])?;
            }
        }
        return Ok(mat);
    }
    let t = axmp(a, x, 2)?;
    let mut mat = vec![S::ZERO; n * n];
    for i in 0..n {
        for j in 0..n {
            let v = t.get(&[i.min(j), i.max(j)])?;
            mat[i * n + j] = v;
        }
    }
    Ok(mat)
}

/// Precomputed index and multinomial-coefficient tables for a fixed shape
/// `(m, n)`: the paper's Section V-C data structures. The tables depend only
/// on the shape, so one instance is shared by *all* tensors of that shape
/// (e.g. every voxel of a DW-MRI dataset).
#[derive(Debug, Clone)]
pub struct PrecomputedTables {
    m: usize,
    n: usize,
    /// Index representations, flattened `m × U` (class-major).
    index_reps: Vec<u32>,
    /// `C(m; k)` for each class (the `MULTINOMIAL0` value).
    coeffs: Vec<u64>,
    /// Occurrence counts `k_i` per (class, distinct index) pair, flattened as
    /// a prefix list: for each class, pairs `(index, count)` of its distinct
    /// indices, with `starts[u]..starts[u+1]` delimiting class `u`.
    distinct: Vec<(u32, u32)>,
    starts: Vec<u32>,
}

impl PrecomputedTables {
    /// Build the tables for shape `(m, n)`.
    ///
    /// Storage: `m·U` `u32`s of index data + `U` `u64` coefficients — the
    /// factor-`(m+2)` overhead discussed in Section III-B5.
    pub fn new(m: usize, n: usize) -> Self {
        let u = num_unique_entries(m, n) as usize;
        let mut index_reps = Vec::with_capacity(m * u);
        let mut coeffs = Vec::with_capacity(u);
        let mut distinct = Vec::new();
        let mut starts = Vec::with_capacity(u + 1);
        starts.push(0u32);
        for class in IndexClassIter::new(m, n) {
            index_reps.extend(class.indices().iter().map(|&i| i as u32));
            coeffs.push(class.occurrences());
            let mono = class.monomial();
            for (i, &k) in mono.counts().iter().enumerate() {
                if k > 0 {
                    distinct.push((i as u32, k as u32));
                }
            }
            starts.push(distinct.len() as u32);
        }
        Self {
            m,
            n,
            index_reps,
            coeffs,
            distinct,
            starts,
        }
    }

    /// Tensor order the tables were built for.
    #[inline]
    pub fn order(&self) -> usize {
        self.m
    }

    /// Tensor dimension the tables were built for.
    #[inline]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of unique entries `U`.
    #[inline]
    pub fn num_unique(&self) -> usize {
        self.coeffs.len()
    }

    /// Bytes of table storage (the "extra storage" of Section III-B5).
    pub fn storage_bytes(&self) -> usize {
        self.index_reps.len() * 4
            + self.coeffs.len() * 8
            + self.distinct.len() * 8
            + self.starts.len() * 4
    }

    /// Index representation of class `u` as a `u32` slice of length `m`.
    #[inline]
    pub(crate) fn rep(&self, u: usize) -> &[u32] {
        &self.index_reps[u * self.m..(u + 1) * self.m]
    }

    /// The stored `C(m; k)` coefficient of every class (lane kernels walk
    /// these once per panel).
    #[inline]
    pub(crate) fn coeffs(&self) -> &[u64] {
        &self.coeffs
    }

    /// The `(index, count)` pairs of class `u`'s distinct indices.
    #[inline]
    pub(crate) fn distinct(&self, u: usize) -> &[(u32, u32)] {
        &self.distinct[self.starts[u] as usize..self.starts[u + 1] as usize]
    }

    /// `A·xᵐ` using the precomputed tables: no successor updates and no
    /// multinomial recomputation in the loop (pure look-ups).
    ///
    /// # Errors
    /// Returns [`Error::ShapeMismatch`] if `a` has a different shape than the
    /// tables were built for (a wrong-shape tensor would silently index the
    /// wrong tables), and [`Error::VectorLengthMismatch`] on a bad `x`.
    pub fn axm<'a, S: Scalar>(&self, a: impl Into<SymTensorRef<'a, S>>, x: &[S]) -> Result<S> {
        let a = a.into();
        check_shape(&a, self.m, self.n)?;
        check_vec(x, self.n)?;
        let mut y = S::ZERO;
        for (u, &av) in a.values().iter().enumerate() {
            let mut xhat = S::ONE;
            for &i in self.rep(u) {
                xhat *= x[i as usize];
            }
            y += S::from_u64(self.coeffs[u]) * av * xhat;
        }
        Ok(y)
    }

    /// `A·xᵐ⁻¹` using the precomputed tables. The per-entry coefficient
    /// `C(m-1; …, k_j-1, …)` is derived from the stored `C(m; k)` by the
    /// paper's look-up trick `σ(j) = c·k_j/m` (footnote 3).
    /// # Errors
    /// Returns [`Error::ShapeMismatch`] if `a` has a different shape than the
    /// tables were built for, and [`Error::VectorLengthMismatch`] on a bad
    /// `x` or `y`.
    pub fn axm1<'a, S: Scalar>(
        &self,
        a: impl Into<SymTensorRef<'a, S>>,
        x: &[S],
        y: &mut [S],
    ) -> Result<()> {
        let a = a.into();
        check_shape(&a, self.m, self.n)?;
        check_vec(x, self.n)?;
        check_vec(y, self.n)?;
        y.iter_mut().for_each(|e| *e = S::ZERO);
        let m = self.m;
        for (u, &av) in a.values().iter().enumerate() {
            let c = self.coeffs[u];
            let rep = self.rep(u);
            let lo = self.starts[u] as usize;
            let hi = self.starts[u + 1] as usize;
            for &(j, kj) in &self.distinct[lo..hi] {
                // Product of x over the representation with one `j` removed.
                let mut xhat = S::ONE;
                let mut skipped = false;
                for &i in rep {
                    if !skipped && i == j {
                        skipped = true;
                        continue;
                    }
                    xhat *= x[i as usize];
                }
                let sigma = multinomial1_from_stored(c, kj as usize, m);
                y[j as usize] += S::from_u64(sigma) * av * xhat;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseTensor;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_sym(m: usize, n: usize, seed: u64) -> SymTensor<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        SymTensor::random(m, n, &mut rng)
    }

    fn random_unit(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut v: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..=1.0)).collect();
        crate::scalar::normalize(&mut v);
        v
    }

    #[test]
    fn axm_matches_dense_baseline() {
        for (m, n, seed) in [
            (3, 2, 1),
            (3, 3, 2),
            (4, 3, 3),
            (4, 5, 4),
            (6, 3, 5),
            (2, 4, 6),
        ] {
            let a = random_sym(m, n, seed);
            let x = random_unit(n, seed + 100);
            let dense = DenseTensor::from_sym(&a);
            let want = dense.axm_dense(&x).unwrap();
            let got = axm(&a, &x).unwrap();
            assert!((got - want).abs() < 1e-10, "[{m},{n}]: {got} vs {want}");
        }
    }

    #[test]
    fn axm1_matches_dense_baseline() {
        for (m, n, seed) in [
            (3, 2, 11),
            (3, 3, 12),
            (4, 3, 13),
            (4, 5, 14),
            (6, 3, 15),
            (2, 4, 16),
        ] {
            let a = random_sym(m, n, seed);
            let x = random_unit(n, seed + 200);
            let dense = DenseTensor::from_sym(&a);
            let want = dense.axm1_dense(&x).unwrap();
            let mut got = vec![0.0; n];
            axm1(&a, &x, &mut got).unwrap();
            for j in 0..n {
                assert!(
                    (got[j] - want[j]).abs() < 1e-10,
                    "[{m},{n}] j={j}: {} vs {}",
                    got[j],
                    want[j]
                );
            }
        }
    }

    #[test]
    fn eulers_identity_links_axm_and_axm1() {
        // x · (A x^{m-1}) == A x^m for any x (not just unit).
        let a = random_sym(5, 4, 77);
        let mut rng = StdRng::seed_from_u64(78);
        let x: Vec<f64> = (0..4).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let s = axm(&a, &x).unwrap();
        let mut y = vec![0.0; 4];
        axm1(&a, &x, &mut y).unwrap();
        let dot: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert!((dot - s).abs() < 1e-9, "{dot} vs {s}");
    }

    #[test]
    fn axm_homogeneity() {
        // A (c x)^m = c^m A x^m.
        let a = random_sym(4, 3, 31);
        let x = random_unit(3, 32);
        let c = 1.7;
        let cx: Vec<f64> = x.iter().map(|&e| c * e).collect();
        let lhs = axm(&a, &cx).unwrap();
        let rhs = c.powi(4) * axm(&a, &x).unwrap();
        assert!((lhs - rhs).abs() < 1e-9);
    }

    #[test]
    fn axm_rank_one_tensor_gives_power_of_dot() {
        let v = random_unit(4, 41);
        let a = SymTensor::rank_one(3, &v);
        let x = random_unit(4, 42);
        let d: f64 = v.iter().zip(&x).map(|(a, b)| a * b).sum();
        assert!((axm(&a, &x).unwrap() - d.powi(3)).abs() < 1e-10);
    }

    #[test]
    fn axm1_identity_matrix_is_identity_map() {
        // m=2 identity: A x^{m-1} = x.
        let a = SymTensor::<f64>::diagonal_ones(2, 5);
        let x = random_unit(5, 51);
        let mut y = vec![0.0; 5];
        axm1(&a, &x, &mut y).unwrap();
        for j in 0..5 {
            assert!((y[j] - x[j]).abs() < 1e-12);
        }
    }

    #[test]
    fn axm1_handles_zero_components_of_x() {
        // The per-entry product divides out one factor by recomputation, so
        // zeros in x must not poison other components.
        let a = random_sym(4, 3, 61);
        let x = [0.0, 1.0, -0.5];
        let dense = DenseTensor::from_sym(&a);
        let want = dense.axm1_dense(&x).unwrap();
        let mut got = vec![0.0; 3];
        axm1(&a, &x, &mut got).unwrap();
        for j in 0..3 {
            assert!((got[j] - want[j]).abs() < 1e-10, "j={j}");
        }
    }

    #[test]
    fn axmp_p1_matches_axm1() {
        let a = random_sym(4, 3, 71);
        let x = random_unit(3, 72);
        let t = axmp(&a, &x, 1).unwrap();
        let mut y = vec![0.0; 3];
        axm1(&a, &x, &mut y).unwrap();
        for (j, yj) in y.iter().enumerate() {
            assert!((t.get(&[j]).unwrap() - yj).abs() < 1e-10);
        }
    }

    #[test]
    fn axmp_result_is_symmetric_and_matches_dense() {
        let a = random_sym(5, 3, 81);
        let x = random_unit(3, 82);
        let t = axmp(&a, &x, 2).unwrap();
        assert_eq!(t.order(), 2);
        // Dense check: contract last 3 modes of the dense expansion.
        let mut dense = DenseTensor::from_sym(&a);
        for _ in 0..3 {
            dense = dense.contract_last(&x).unwrap();
        }
        for i in 0..3 {
            for j in 0..3 {
                let want = dense.get(&[i, j]);
                let got = t.get(&[i.min(j), i.max(j)]).unwrap();
                assert!((got - want).abs() < 1e-10, "({i},{j})");
            }
        }
    }

    #[test]
    fn axmp_rejects_invalid_p() {
        let a = random_sym(4, 3, 91);
        let x = [1.0, 0.0, 0.0];
        assert!(matches!(
            axmp(&a, &x, 0),
            Err(Error::InvalidContraction { p: 0, m: 4 })
        ));
        assert!(matches!(
            axmp(&a, &x, 4),
            Err(Error::InvalidContraction { p: 4, m: 4 })
        ));
    }

    #[test]
    fn axm2_matrix_is_symmetric_and_consistent_with_axm1() {
        let a = random_sym(4, 3, 101);
        let x = random_unit(3, 102);
        let mat = axm2_matrix(&a, &x).unwrap();
        // Symmetry.
        for i in 0..3 {
            for j in 0..3 {
                assert!((mat[i * 3 + j] - mat[j * 3 + i]).abs() < 1e-12);
            }
        }
        // (A x^{m-2}) x == A x^{m-1}.
        let mut y = vec![0.0; 3];
        axm1(&a, &x, &mut y).unwrap();
        for i in 0..3 {
            let row: f64 = (0..3).map(|j| mat[i * 3 + j] * x[j]).sum();
            assert!((row - y[i]).abs() < 1e-10, "row {i}");
        }
    }

    #[test]
    fn axm2_matrix_order2_returns_the_matrix_itself() {
        let a = random_sym(2, 4, 111);
        let x = [1.0, 0.0, 0.0, 0.0];
        let mat = axm2_matrix(&a, &x).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(mat[i * 4 + j], a.get(&[i.min(j), i.max(j)]).unwrap());
            }
        }
    }

    #[test]
    fn precomputed_tables_match_on_the_fly_kernels() {
        for (m, n, seed) in [(3, 3, 121), (4, 3, 122), (4, 5, 123), (6, 3, 124)] {
            let tables = PrecomputedTables::new(m, n);
            assert_eq!(tables.num_unique() as u64, num_unique_entries(m, n));
            let a = random_sym(m, n, seed);
            let x = random_unit(n, seed + 300);
            let s0 = axm(&a, &x).unwrap();
            let s1 = tables.axm(&a, &x).unwrap();
            assert!((s0 - s1).abs() < 1e-10, "[{m},{n}] axm");
            let mut y0 = vec![0.0; n];
            let mut y1 = vec![0.0; n];
            axm1(&a, &x, &mut y0).unwrap();
            tables.axm1(&a, &x, &mut y1).unwrap();
            for j in 0..n {
                assert!((y0[j] - y1[j]).abs() < 1e-10, "[{m},{n}] axm1 j={j}");
            }
        }
    }

    #[test]
    fn precomputed_storage_overhead_is_reported() {
        let t = PrecomputedTables::new(4, 3);
        // 15 classes * 4 indices * 4B + 15 coeffs * 8B + distinct + starts.
        assert!(t.storage_bytes() >= 15 * 4 * 4 + 15 * 8);
        assert_eq!(t.order(), 4);
        assert_eq!(t.dim(), 3);
    }

    #[test]
    fn kernels_work_in_f32() {
        let mut rng = StdRng::seed_from_u64(131);
        let a = SymTensor::<f32>::random(4, 3, &mut rng);
        let x = [0.5f32, -0.5, std::f32::consts::FRAC_1_SQRT_2];
        let s = axm(&a, &x).unwrap();
        let mut y = [0.0f32; 3];
        axm1(&a, &x, &mut y).unwrap();
        let dot: f32 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert!((dot - s).abs() < 1e-4, "{dot} vs {s}");
    }

    #[test]
    fn checked_variants_reject_bad_lengths() {
        let a = random_sym(3, 3, 141);
        assert!(axm(&a, &[1.0, 2.0]).is_err());
        let mut y = vec![0.0; 2];
        assert!(axm1(&a, &[1.0, 2.0, 3.0], &mut y).is_err());
        let tables = PrecomputedTables::new(3, 3);
        assert!(tables.axm(&a, &[1.0]).is_err());
    }

    #[test]
    fn precomputed_tables_reject_wrong_shape_in_release() {
        // These are real checks, not debug_asserts: a wrong-shape tensor
        // must produce a typed error in every build profile instead of
        // silently indexing the wrong tables.
        let tables = PrecomputedTables::new(4, 3);
        let wrong = random_sym(3, 3, 161);
        let x = [1.0, 0.0, 0.0];
        assert_eq!(
            tables.axm(&wrong, &x).unwrap_err(),
            Error::ShapeMismatch {
                expected: (4, 3),
                found: (3, 3),
            }
        );
        let mut y = [0.0; 3];
        assert!(matches!(
            tables.axm1(&wrong, &x, &mut y),
            Err(Error::ShapeMismatch { .. })
        ));
        // The trait-object path surfaces the same typed error (no panic).
        let k: &dyn TensorKernels<f64> = &tables;
        assert!(k.axm(wrong.view(), &x).is_err());
        assert!(k.axm1(wrong.view(), &x, &mut y).is_err());
    }

    #[test]
    fn kernel_trait_objects_agree() {
        let a = random_sym(4, 3, 151);
        let x = random_unit(3, 152);
        let tables = PrecomputedTables::new(4, 3);
        let impls: Vec<&dyn TensorKernels<f64>> = vec![&GeneralKernels, &tables];
        let want = axm(&a, &x).unwrap();
        for k in &impls {
            let got = k.axm(a.view(), &x).unwrap();
            assert!((got - want).abs() < 1e-12, "{}", k.name());
            let mut y0 = vec![0.0; 3];
            let mut y1 = vec![0.0; 3];
            axm1(&a, &x, &mut y0).unwrap();
            k.axm1(a.view(), &x, &mut y1).unwrap();
            for j in 0..3 {
                assert!((y0[j] - y1[j]).abs() < 1e-12);
            }
        }
        assert_eq!(TensorKernels::<f64>::name(&GeneralKernels), "general");
        assert_eq!(TensorKernels::<f64>::name(&tables), "precomputed");
    }

    #[test]
    fn merge_sorted_merges() {
        let mut out = vec![0usize; 5];
        merge_sorted(&[0, 2, 4], &[1, 3], &mut out);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        merge_sorted(&[1, 1], &[0, 1, 2], &mut out);
        assert_eq!(out, vec![0, 1, 1, 1, 2]);
    }
}
