//! Dense (full, possibly nonsymmetric) tensors: the "general" baseline of
//! the paper's Table II.
//!
//! A [`DenseTensor`] stores all `n^m` entries in row-major order. The
//! tensor-times-same-vector products are computed by repeated contraction of
//! the last mode — a sequence of matricized matrix-vector products — which
//! costs `2·n^m + O(n^{m-1})` flops and is what a general tensor library
//! would do without knowledge of symmetry.

use crate::error::{Error, Result};
use crate::scalar::Scalar;
use crate::storage::SymTensor;

/// A dense order-`m`, dimension-`n` tensor stored as `n^m` row-major values
/// (the last index varies fastest).
#[derive(Debug, Clone, PartialEq)]
pub struct DenseTensor<S> {
    m: usize,
    n: usize,
    values: Vec<S>,
}

impl<S: Scalar> DenseTensor<S> {
    /// The zero tensor.
    ///
    /// `m >= 1` and `n >= 1` are debug-checked preconditions.
    ///
    /// # Panics
    /// Panics (capacity overflow) if `n^m` overflows `usize`.
    pub fn zeros(m: usize, n: usize) -> Self {
        debug_assert!(m >= 1 && n >= 1, "tensor must have m >= 1, n >= 1");
        // On overflow, request an allocation the allocator must refuse, so
        // the failure surfaces as the same capacity panic a direct n^m-sized
        // vector would raise.
        let len = n.checked_pow(m as u32).unwrap_or(usize::MAX);
        Self {
            m,
            n,
            values: vec![S::ZERO; len],
        }
    }

    /// Build from a row-major value buffer of length `n^m`.
    pub fn from_values(m: usize, n: usize, values: Vec<S>) -> Result<Self> {
        let expected = n.pow(m as u32);
        if values.len() != expected {
            return Err(Error::ValueLengthMismatch {
                expected,
                actual: values.len(),
            });
        }
        Ok(Self { m, n, values })
    }

    /// Expand a packed symmetric tensor into its full `n^m` representation.
    pub fn from_sym(sym: &SymTensor<S>) -> Self {
        let m = sym.order();
        let n = sym.dim();
        let mut out = Self::zeros(m, n);
        let mut idx = vec![0usize; m];
        for pos in 0..out.values.len() {
            out.decode_linear(pos, &mut idx);
            // `decode_linear` yields in-range nondecreasing-classifiable
            // indices, so the lookup cannot fail.
            out.values[pos] = sym.get(&idx).unwrap_or(S::ZERO);
        }
        out
    }

    /// Tensor order `m`.
    #[inline]
    pub fn order(&self) -> usize {
        self.m
    }

    /// Tensor dimension `n`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// All `n^m` entries, row-major.
    #[inline]
    pub fn values(&self) -> &[S] {
        &self.values
    }

    /// Row-major linear offset of a full tensor index.
    #[inline]
    pub fn linear_index(&self, tensor_index: &[usize]) -> usize {
        debug_assert_eq!(tensor_index.len(), self.m);
        let mut lin = 0usize;
        for &i in tensor_index {
            debug_assert!(i < self.n);
            lin = lin * self.n + i;
        }
        lin
    }

    /// Decode a row-major linear offset into `out` (length `m`).
    pub fn decode_linear(&self, mut lin: usize, out: &mut [usize]) {
        debug_assert_eq!(out.len(), self.m);
        for slot in out.iter_mut().rev() {
            *slot = lin % self.n;
            lin /= self.n;
        }
    }

    /// Entry at a full tensor index.
    pub fn get(&self, tensor_index: &[usize]) -> S {
        self.values[self.linear_index(tensor_index)]
    }

    /// Set the entry at a full tensor index (this one entry only — no
    /// symmetry is enforced).
    pub fn set(&mut self, tensor_index: &[usize], value: S) {
        let lin = self.linear_index(tensor_index);
        self.values[lin] = value;
    }

    /// True if the tensor is invariant under all index permutations, to
    /// within absolute tolerance `tol`.
    ///
    /// Checks every entry against its sorted-index representative, which is
    /// equivalent to checking all permutations.
    pub fn is_symmetric(&self, tol: S) -> bool {
        let mut idx = vec![0usize; self.m];
        let mut sorted = vec![0usize; self.m];
        for pos in 0..self.values.len() {
            self.decode_linear(pos, &mut idx);
            sorted.copy_from_slice(&idx);
            sorted.sort_unstable();
            let rep = self.values[self.linear_index(&sorted)];
            if (self.values[pos] - rep).abs() > tol {
                return false;
            }
        }
        true
    }

    /// Symmetrize: replace each entry with the average over its index
    /// class (the symmetric part of the tensor).
    pub fn symmetrize(&self) -> Self {
        Self::from_sym(&self.to_sym_averaged())
    }

    /// Average each index class into a packed symmetric tensor.
    pub fn to_sym_averaged(&self) -> SymTensor<S> {
        let m = self.m;
        let n = self.n;
        let mut sums = vec![S::ZERO; crate::multinomial::num_unique_entries(m, n) as usize];
        let mut counts = vec![0u64; sums.len()];
        let mut idx = vec![0usize; m];
        for pos in 0..self.values.len() {
            self.decode_linear(pos, &mut idx);
            let class = crate::index::IndexClass::from_tensor_index(idx.clone(), n);
            let r = class.rank() as usize;
            sums[r] += self.values[pos];
            counts[r] += 1;
        }
        for (s, &c) in sums.iter_mut().zip(counts.iter()) {
            *s /= S::from_u64(c);
        }
        // `sums` holds exactly C(m+n-1, m) entries by construction.
        SymTensor::from_values(m, n, sums).unwrap_or_else(|_| SymTensor::zeros(m, n))
    }

    /// Convert an exactly-symmetric dense tensor to packed storage,
    /// verifying symmetry to within `tol`.
    pub fn to_sym_checked(&self, tol: S) -> Result<SymTensor<S>> {
        if !self.is_symmetric(tol) {
            return Err(Error::NotSymmetric);
        }
        Ok(self.to_sym_averaged())
    }

    /// Contract the last mode with `x`: returns the order-`m-1` tensor
    /// `B_{i_1…i_{m-1}} = Σ_j A_{i_1…i_{m-1} j} x_j`.
    ///
    /// This is one matricized matrix-vector product (`n^{m-1} × n` times
    /// `n`), the building block of the general-tensor baseline.
    pub fn contract_last(&self, x: &[S]) -> Result<DenseTensor<S>> {
        if x.len() != self.n {
            return Err(Error::VectorLengthMismatch {
                expected: self.n,
                actual: x.len(),
            });
        }
        if self.m == 1 {
            return Err(Error::InvalidContraction { p: 0, m: 1 });
        }
        let rows = self.values.len() / self.n;
        let mut out = Vec::with_capacity(rows);
        for chunk in self.values.chunks_exact(self.n) {
            let mut acc = S::ZERO;
            for (&a, &xi) in chunk.iter().zip(x.iter()) {
                acc += a * xi;
            }
            out.push(acc);
        }
        DenseTensor::from_values(self.m - 1, self.n, out)
    }

    /// General-baseline `A·x^m` (scalar): contract the last mode `m` times.
    /// Cost `2 n^m + O(n^{m-1})` flops — the paper's Table II "general" row.
    pub fn axm_dense(&self, x: &[S]) -> Result<S> {
        if x.len() != self.n {
            return Err(Error::VectorLengthMismatch {
                expected: self.n,
                actual: x.len(),
            });
        }
        let mut curr = self.contract_all_but_one(x)?;
        // curr now holds A x^{m-1}; final dot with x.
        let mut acc = S::ZERO;
        for (&c, &xi) in curr.iter().zip(x.iter()) {
            acc += c * xi;
        }
        curr.clear();
        Ok(acc)
    }

    /// General-baseline `A·x^{m-1}` (vector): contract the last mode `m-1`
    /// times.
    pub fn axm1_dense(&self, x: &[S]) -> Result<Vec<S>> {
        self.contract_all_but_one(x)
    }

    fn contract_all_but_one(&self, x: &[S]) -> Result<Vec<S>> {
        if x.len() != self.n {
            return Err(Error::VectorLengthMismatch {
                expected: self.n,
                actual: x.len(),
            });
        }
        if self.m == 1 {
            return Ok(self.values.clone());
        }
        let mut t = self.contract_last(x)?;
        while t.order() > 1 {
            t = t.contract_last(x)?;
        }
        Ok(t.values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_dense(m: usize, n: usize, seed: u64) -> DenseTensor<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let values = (0..n.pow(m as u32))
            .map(|_| rng.gen_range(-1.0..=1.0))
            .collect();
        DenseTensor::from_values(m, n, values).unwrap()
    }

    #[test]
    fn linear_index_round_trip() {
        let t = DenseTensor::<f64>::zeros(3, 4);
        let mut idx = vec![0usize; 3];
        for pos in 0..64 {
            t.decode_linear(pos, &mut idx);
            assert_eq!(t.linear_index(&idx), pos);
        }
    }

    #[test]
    fn from_sym_expands_all_permutations() {
        let mut sym = SymTensor::<f64>::zeros(3, 2);
        sym.set(&[0, 0, 1], 7.0).unwrap();
        let dense = DenseTensor::from_sym(&sym);
        assert_eq!(dense.get(&[0, 0, 1]), 7.0);
        assert_eq!(dense.get(&[0, 1, 0]), 7.0);
        assert_eq!(dense.get(&[1, 0, 0]), 7.0);
        assert_eq!(dense.get(&[1, 1, 0]), 0.0);
    }

    #[test]
    fn from_sym_is_symmetric() {
        let mut rng = StdRng::seed_from_u64(5);
        let sym = SymTensor::<f64>::random(4, 3, &mut rng);
        let dense = DenseTensor::from_sym(&sym);
        assert!(dense.is_symmetric(0.0));
    }

    #[test]
    fn random_dense_is_not_symmetric() {
        let t = random_dense(3, 3, 99);
        assert!(!t.is_symmetric(1e-12));
    }

    #[test]
    fn sym_round_trip_through_dense() {
        let mut rng = StdRng::seed_from_u64(13);
        let sym = SymTensor::<f64>::random(4, 3, &mut rng);
        let back = DenseTensor::from_sym(&sym).to_sym_checked(0.0).unwrap();
        // Averaging k identical values sums then divides, which can round in
        // the last ulp; the result must still be bit-close.
        assert!(back.max_abs_diff(&sym).unwrap() < 1e-15);
    }

    #[test]
    fn to_sym_checked_rejects_asymmetric() {
        let t = random_dense(3, 2, 1);
        assert!(matches!(t.to_sym_checked(1e-12), Err(Error::NotSymmetric)));
    }

    #[test]
    fn symmetrize_produces_symmetric_tensor() {
        let t = random_dense(3, 3, 2);
        let s = t.symmetrize();
        assert!(s.is_symmetric(1e-12));
        // Symmetrizing twice is idempotent.
        let s2 = s.symmetrize();
        for (&a, &b) in s.values().iter().zip(s2.values().iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn symmetrize_preserves_quadratic_form() {
        // x^T A x == x^T sym(A) x for matrices (m=2).
        let t = random_dense(2, 4, 3);
        let s = t.symmetrize();
        let mut rng = StdRng::seed_from_u64(4);
        let x: Vec<f64> = (0..4).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let a = t.axm_dense(&x).unwrap();
        let b = s.axm_dense(&x).unwrap();
        assert!((a - b).abs() < 1e-12, "{a} vs {b}");
    }

    #[test]
    fn matrix_case_matches_hand_matvec() {
        // m=2: axm1_dense is just A·x.
        let a = DenseTensor::from_values(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let y = a.axm1_dense(&[1.0, 1.0]).unwrap();
        assert_eq!(y, vec![3.0, 7.0]);
        let s = a.axm_dense(&[1.0, 1.0]).unwrap();
        assert_eq!(s, 10.0);
    }

    #[test]
    fn axm_matches_brute_force_summation() {
        let t = random_dense(3, 3, 17);
        let mut rng = StdRng::seed_from_u64(18);
        let x: Vec<f64> = (0..3).map(|_| rng.gen_range(-1.0..1.0)).collect();
        // Brute force: sum over all multi-indices.
        let mut expect = 0.0;
        let mut idx = vec![0usize; 3];
        for pos in 0..27 {
            t.decode_linear(pos, &mut idx);
            expect += t.values()[pos] * idx.iter().map(|&i| x[i]).product::<f64>();
        }
        let got = t.axm_dense(&x).unwrap();
        assert!((got - expect).abs() < 1e-12);
    }

    #[test]
    fn axm1_matches_brute_force_summation() {
        let t = random_dense(4, 2, 21);
        let x = [0.3, -0.8];
        let y = t.axm1_dense(&x).unwrap();
        #[allow(clippy::needless_range_loop)]
        for j in 0..2 {
            let mut expect = 0.0;
            let mut idx = vec![0usize; 4];
            for pos in 0..16 {
                t.decode_linear(pos, &mut idx);
                if idx[0] == j {
                    expect += t.values()[pos] * idx[1..].iter().map(|&i| x[i]).product::<f64>();
                }
            }
            assert!((y[j] - expect).abs() < 1e-12, "j={j}");
        }
    }

    #[test]
    fn vector_length_checked() {
        let t = random_dense(3, 3, 8);
        assert!(matches!(
            t.axm_dense(&[1.0, 2.0]),
            Err(Error::VectorLengthMismatch { .. })
        ));
        assert!(matches!(
            t.contract_last(&[1.0; 4]),
            Err(Error::VectorLengthMismatch { .. })
        ));
    }

    #[test]
    fn contract_last_reduces_order() {
        let t = random_dense(4, 2, 30);
        let b = t.contract_last(&[1.0, 0.0]).unwrap();
        assert_eq!(b.order(), 3);
        // Contracting with e_0 selects the slice with last index 0.
        let mut idx3 = vec![0usize; 3];
        for pos in 0..8 {
            b.decode_linear(pos, &mut idx3);
            let mut idx4 = idx3.clone();
            idx4.push(0);
            assert_eq!(b.values()[pos], t.get(&idx4));
        }
    }

    #[test]
    fn order_one_tensor_contractions() {
        let t = DenseTensor::from_values(1, 3, vec![1.0, 2.0, 3.0]).unwrap();
        assert!(t.contract_last(&[1.0; 3]).is_err());
        assert_eq!(t.axm1_dense(&[9.0, 9.0, 9.0]).unwrap(), vec![1.0, 2.0, 3.0]);
        assert_eq!(t.axm_dense(&[1.0, 1.0, 1.0]).unwrap(), 6.0);
    }

    #[test]
    fn from_values_length_checked() {
        assert!(DenseTensor::<f64>::from_values(3, 2, vec![0.0; 7]).is_err());
    }
}
