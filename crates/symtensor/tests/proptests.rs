//! Property-based tests for the symmetric tensor core: storage round-trips,
//! index-class combinatorics, and kernel identities on random tensors.

use proptest::prelude::*;
use symtensor::kernels::{axm, axm1, axmp, PrecomputedTables};
use symtensor::multinomial::{multinomial0, multinomial1, num_unique_entries};
use symtensor::{DenseTensor, IndexClass, IndexClassIter, SymTensor, TensorBatch};

/// Strategy: a small tensor shape (m, n) that keeps n^m manageable.
fn shape() -> impl Strategy<Value = (usize, usize)> {
    (1usize..=5, 1usize..=5).prop_filter("keep dense expansion small", |(m, n)| {
        n.pow(*m as u32) <= 4096
    })
}

/// Strategy: a shape plus a random packed value vector for it.
fn sym_tensor() -> impl Strategy<Value = SymTensor<f64>> {
    shape().prop_flat_map(|(m, n)| {
        let len = num_unique_entries(m, n) as usize;
        proptest::collection::vec(-1.0f64..1.0, len)
            .prop_map(move |v| SymTensor::from_values(m, n, v).unwrap())
    })
}

/// Strategy: tensor together with a compatible random vector.
fn tensor_and_vec() -> impl Strategy<Value = (SymTensor<f64>, Vec<f64>)> {
    sym_tensor().prop_flat_map(|t| {
        let n = t.dim();
        (Just(t), proptest::collection::vec(-2.0f64..2.0, n))
    })
}

proptest! {
    #[test]
    fn rank_unrank_bijection((m, n) in shape(), seed in 0u64..u64::MAX) {
        let total = num_unique_entries(m, n);
        let r = seed % total;
        let cls = IndexClass::unrank(r, m, n);
        prop_assert_eq!(cls.rank(), r);
    }

    #[test]
    fn successor_increments_rank((m, n) in shape()) {
        let mut prev: Option<IndexClass> = None;
        for cls in IndexClassIter::new(m, n) {
            if let Some(p) = prev {
                prop_assert_eq!(p.rank() + 1, cls.rank());
            }
            prev = Some(cls);
        }
    }

    #[test]
    fn multinomials_sum_to_power((m, n) in shape()) {
        let total: u64 = IndexClassIter::new(m, n).map(|c| c.occurrences()).sum();
        prop_assert_eq!(total, (n as u64).pow(m as u32));
    }

    #[test]
    fn multinomial1_consistency((m, n) in shape(), seed in 0u64..u64::MAX) {
        // Sum over distinct indices of the class equals multinomial0.
        let r = seed % num_unique_entries(m, n);
        let cls = IndexClass::unrank(r, m, n);
        let rep = cls.indices();
        let total: u64 = (0..n).map(|j| multinomial1(rep, j)).sum();
        prop_assert_eq!(total, multinomial0(rep));
    }

    #[test]
    fn get_set_round_trip(t in sym_tensor(), seed in 0u64..u64::MAX, v in -10.0f64..10.0) {
        let mut t = t;
        let r = (seed % t.num_unique() as u64) as usize;
        let cls = IndexClass::unrank(r as u64, t.order(), t.dim());
        t.set(cls.indices(), v).unwrap();
        prop_assert_eq!(t.get(cls.indices()).unwrap(), v);
        prop_assert_eq!(t.value_at_rank(r), v);
    }

    #[test]
    fn dense_round_trip(t in sym_tensor()) {
        let dense = DenseTensor::from_sym(&t);
        prop_assert!(dense.is_symmetric(0.0));
        let back = dense.to_sym_checked(0.0).unwrap();
        prop_assert!(back.max_abs_diff(&t).unwrap() < 1e-14);
    }

    #[test]
    fn axm_matches_dense((t, x) in tensor_and_vec()) {
        let dense = DenseTensor::from_sym(&t);
        let want = dense.axm_dense(&x).unwrap();
        let got = axm(&t, &x).unwrap();
        // Scale tolerance with the magnitude of the computation.
        let scale = 1.0 + want.abs();
        prop_assert!((got - want).abs() < 1e-9 * scale, "{got} vs {want}");
    }

    #[test]
    fn axm1_matches_dense((t, x) in tensor_and_vec()) {
        let n = t.dim();
        let dense = DenseTensor::from_sym(&t);
        let want = dense.axm1_dense(&x).unwrap();
        let mut got = vec![0.0; n];
        axm1(&t, &x, &mut got).unwrap();
        for j in 0..n {
            let scale = 1.0 + want[j].abs();
            prop_assert!((got[j] - want[j]).abs() < 1e-9 * scale, "j={j}");
        }
    }

    #[test]
    fn euler_identity((t, x) in tensor_and_vec()) {
        let s = axm(&t, &x).unwrap();
        let mut y = vec![0.0; t.dim()];
        axm1(&t, &x, &mut y).unwrap();
        let dot: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        let scale = 1.0 + s.abs();
        prop_assert!((dot - s).abs() < 1e-9 * scale);
    }

    #[test]
    fn homogeneity((t, x) in tensor_and_vec(), c in -3.0f64..3.0) {
        let m = t.order() as i32;
        let cx: Vec<f64> = x.iter().map(|&e| c * e).collect();
        let lhs = axm(&t, &cx).unwrap();
        let rhs = c.powi(m) * axm(&t, &x).unwrap();
        let scale = 1.0 + lhs.abs().max(rhs.abs());
        prop_assert!((lhs - rhs).abs() < 1e-9 * scale);
    }

    #[test]
    fn linearity_in_tensor((a, x) in tensor_and_vec(), scale in -2.0f64..2.0) {
        // (A + sA) x^m == (1+s) A x^m.
        let mut b = a.clone();
        b.scale(scale);
        let sum = a.add(&b).unwrap();
        let lhs = axm(&sum, &x).unwrap();
        let rhs = (1.0 + scale) * axm(&a, &x).unwrap();
        let tol_scale = 1.0 + lhs.abs();
        prop_assert!((lhs - rhs).abs() < 1e-9 * tol_scale);
    }

    #[test]
    fn precomputed_tables_match((t, x) in tensor_and_vec()) {
        let tables = PrecomputedTables::new(t.order(), t.dim());
        let s0 = axm(&t, &x).unwrap();
        let s1 = tables.axm(&t, &x).unwrap();
        let scale = 1.0 + s0.abs();
        prop_assert!((s0 - s1).abs() < 1e-10 * scale);

        let mut y0 = vec![0.0; t.dim()];
        let mut y1 = vec![0.0; t.dim()];
        axm1(&t, &x, &mut y0).unwrap();
        tables.axm1(&t, &x, &mut y1).unwrap();
        for j in 0..t.dim() {
            let scale = 1.0 + y0[j].abs();
            prop_assert!((y0[j] - y1[j]).abs() < 1e-10 * scale);
        }
    }

    #[test]
    fn axmp_contracts_consistently((t, x) in tensor_and_vec()) {
        // Contract p modes via axmp, then finish with axm on the result:
        // must equal axm on the original for every valid p.
        let m = t.order();
        prop_assume!(m >= 2);
        let full = axm(&t, &x).unwrap();
        for p in 1..m {
            let partial = axmp(&t, &x, p).unwrap();
            let finished = axm(&partial, &x).unwrap();
            let scale = 1.0 + full.abs();
            prop_assert!((finished - full).abs() < 1e-8 * scale, "p={p}");
        }
    }

    #[test]
    fn rank_one_axm_is_dot_power(v in proptest::collection::vec(-1.0f64..1.0, 2..5),
                                 m in 2usize..5) {
        let t = SymTensor::rank_one(m, &v);
        let x: Vec<f64> = v.iter().map(|&e| e + 0.5).collect();
        let d: f64 = v.iter().zip(&x).map(|(a, b)| a * b).sum();
        let want = d.powi(m as i32);
        let got = axm(&t, &x).unwrap();
        let scale = 1.0 + want.abs();
        prop_assert!((got - want).abs() < 1e-9 * scale);
    }

    #[test]
    fn io_round_trip_is_exact(t in sym_tensor()) {
        let mut buf = Vec::new();
        symtensor::io::write_tensor(&mut buf, &t).unwrap();
        let back: SymTensor<f64> = symtensor::io::read_tensor(&buf[..]).unwrap();
        prop_assert_eq!(back.values(), t.values());
        prop_assert_eq!(back.order(), t.order());
        prop_assert_eq!(back.dim(), t.dim());
    }

    #[test]
    fn blocked_kernels_match_general((t, x) in tensor_and_vec()) {
        let Some(k) = symtensor::BlockedKernels::for_shape(t.order(), t.dim()) else {
            return Ok(());
        };
        use symtensor::TensorKernels;
        let want = axm(&t, &x).unwrap();
        let got = TensorKernels::axm(&k, t.view(), &x).unwrap();
        prop_assert!((got - want).abs() < 1e-9 * (1.0 + want.abs()));
        let mut y0 = vec![0.0; t.dim()];
        let mut y1 = vec![0.0; t.dim()];
        axm1(&t, &x, &mut y0).unwrap();
        TensorKernels::axm1(&k, t.view(), &x, &mut y1).unwrap();
        for j in 0..t.dim() {
            prop_assert!((y0[j] - y1[j]).abs() < 1e-9 * (1.0 + y0[j].abs()), "j={j}");
        }
    }

    #[test]
    fn inner_product_is_bilinear(t in sym_tensor(), c in -2.0f64..2.0) {
        let mut ct = t.clone();
        ct.scale(c);
        let base = t.inner_product(&t).unwrap();
        let scaled = t.inner_product(&ct).unwrap();
        prop_assert!((scaled - c * base).abs() < 1e-9 * (1.0 + base.abs()));
    }

    #[test]
    fn frobenius_norm_matches_dense(t in sym_tensor()) {
        let dense = DenseTensor::from_sym(&t);
        let direct: f64 = dense.values().iter().map(|&v| v * v).sum::<f64>().sqrt();
        let packed = t.frobenius_norm();
        prop_assert!((direct - packed).abs() < 1e-10 * (1.0 + direct));
    }

    #[test]
    fn tensor_batch_vec_round_trip((m, n) in shape(), count in 0usize..8, seed in 0u64..1000) {
        // Vec<SymTensor> -> TensorBatch -> Vec<SymTensor> is the identity,
        // and the arena holds the concatenation of the packed buffers.
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let tensors: Vec<SymTensor<f64>> =
            (0..count).map(|_| SymTensor::random(m, n, &mut rng)).collect();
        let batch = TensorBatch::from_tensors(&tensors).unwrap();
        prop_assert_eq!(batch.len(), count);
        let flat: Vec<f64> = tensors.iter().flat_map(|t| t.values().to_vec()).collect();
        prop_assert_eq!(batch.values(), &flat[..]);
        prop_assert_eq!(batch.to_tensors(), tensors);
    }

    #[test]
    fn batch_slice_views_match_standalone((m, n) in shape(),
                                          count in 1usize..8,
                                          lo in 0usize..8,
                                          seed in 0u64..1000) {
        // A zero-copy slice sees exactly the tensors a standalone sub-batch
        // would hold, and kernel results on its views are bitwise identical.
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let batch = TensorBatch::<f64>::random(m, n, count, &mut rng).unwrap();
        let lo = lo % count;
        let sub = batch.slice(lo..count);
        let standalone = sub.to_owned();
        prop_assert_eq!(standalone.len(), count - lo);
        let x: Vec<f64> = (0..n).map(|i| 0.3 - 0.1 * i as f64).collect();
        for (a, b) in sub.iter().zip(standalone.iter()) {
            prop_assert_eq!(axm(a, &x).unwrap().to_bits(), axm(b, &x).unwrap().to_bits());
        }
    }

    #[test]
    fn batched_lanes_match_general((m, n) in shape(),
                                   count in 1usize..12,
                                   seed in 0u64..1000) {
        // Every lane of every panel agrees with the scalar reference kernels
        // to 1e-12 on random batches — the SIMD path may not drift.
        use rand::{rngs::StdRng, SeedableRng};
        use symtensor::{BatchedKernels, LanePanel, LANE_WIDTH};
        let mut rng = StdRng::seed_from_u64(seed);
        let batch = TensorBatch::<f64>::random(m, n, count, &mut rng).unwrap();
        let kernels = BatchedKernels::new(m, n);
        let x: Vec<f64> = (0..n).map(|i| 0.4 - 0.15 * i as f64).collect();
        let mut xs = vec![0.0; n * LANE_WIDTH];
        for i in 0..n {
            for w in 0..LANE_WIDTH {
                xs[i * LANE_WIDTH + w] = x[i];
            }
        }
        let mut start = 0;
        while start < count {
            let width = LANE_WIDTH.min(count - start);
            let panel = LanePanel::gather(&kernels, batch.view(), start, width).unwrap();
            let mut out = [0.0; LANE_WIDTH];
            panel.axm(&kernels, &xs, &mut out).unwrap();
            let mut ys = vec![0.0; n * LANE_WIDTH];
            panel.axm1(&kernels, &xs, &mut ys).unwrap();
            for w in 0..width {
                let a = batch.get(start + w);
                let want = axm(a, &x).unwrap();
                prop_assert!((out[w] - want).abs() < 1e-12 * (1.0 + want.abs()));
                let mut wy = vec![0.0; n];
                axm1(a, &x, &mut wy).unwrap();
                for j in 0..n {
                    let got = ys[j * LANE_WIDTH + w];
                    prop_assert!((got - wy[j]).abs() < 1e-12 * (1.0 + wy[j].abs()), "j={j} w={w}");
                }
            }
            start += width;
        }
    }

    #[test]
    fn batch_push_shape_mismatch_is_typed((m, n) in shape(), (m2, n2) in shape()) {
        prop_assume!((m, n) != (m2, n2));
        let mut batch = TensorBatch::<f64>::new(m, n).unwrap();
        let wrong = SymTensor::<f64>::zeros(m2, n2);
        let err = batch.push(&wrong).unwrap_err();
        prop_assert_eq!(err, symtensor::Error::ShapeMismatch {
            expected: (m, n),
            found: (m2, n2),
        });
        prop_assert!(batch.is_empty());
    }
}
