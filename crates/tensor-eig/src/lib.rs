//! # tensor-eig — batched symmetric tensor eigensolver toolkit
//!
//! The facade crate for this workspace: a single dependency that re-exports
//! the full stack reproducing Ballard, Kolda & Plantenga, *Efficiently
//! Computing Tensor Eigenvalues on a GPU* (IPPS 2011).
//!
//! | Layer | Crate | What it provides |
//! |---|---|---|
//! | storage & kernels | [`symtensor`] | packed symmetric tensors, `A·xᵐ`, `A·xᵐ⁻¹`, dense baseline |
//! | unrolling | [`unrolled`] | compile-time straight-line kernels per shape |
//! | algorithm | [`sshopm`] | SS-HOPM, shifts, classification, multistart, batching |
//! | GPU substrate | [`gpusim`] | functional + analytic Fermi-class simulator |
//! | application | [`dwmri`] | synthetic DW-MRI phantom and fiber detection |
//! | small linalg | [`linalg`] | Cholesky / Jacobi / QR / least squares |
//!
//! ## Quickstart
//!
//! ```
//! use tensor_eig::prelude::*;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let a = SymTensor::<f64>::random(4, 3, &mut rng);
//! let pair = SsHopm::new(Shift::Convex).with_tolerance(1e-13).solve(&a, &[1.0, 0.0, 0.0]);
//! assert!(pair.converged && pair.residual(&a) < 1e-5);
//! ```

#![deny(missing_docs)]

pub use dwmri;
pub use gpusim;
pub use linalg;
pub use sshopm;
pub use symtensor;
pub use unrolled;

/// The most commonly used types, re-exported flat.
pub mod prelude {
    pub use dwmri::{extract_fibers, ExtractConfig, NoiseModel, Phantom, PhantomConfig};
    pub use gpusim::{launch_sshopm, DeviceSpec, GpuVariant, MultiGpu, TransferModel};
    pub use sshopm::{
        multistart, refine, BatchSolver, DedupConfig, Eigenpair, IterationPolicy, Shift, SsHopm,
        Stability,
    };
    pub use symtensor::{
        BlockedKernels, DenseTensor, GeneralKernels, IndexClass, IndexClassIter, PrecomputedTables,
        SymTensor, TensorKernels,
    };
    pub use unrolled::UnrolledKernels;
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_names_resolve() {
        use crate::prelude::*;
        let _ = SymTensor::<f64>::zeros(4, 3);
        let _ = SsHopm::new(Shift::Convex);
        let _ = DeviceSpec::tesla_c2050();
        let _ = UnrolledKernels::for_shape(4, 3);
        let _ = PhantomConfig::default();
    }
}
