//! # tensor-eig — batched symmetric tensor eigensolver toolkit
//!
//! The facade crate for this workspace: a single dependency that re-exports
//! the full stack reproducing Ballard, Kolda & Plantenga, *Efficiently
//! Computing Tensor Eigenvalues on a GPU* (IPPS 2011).
//!
//! | Layer | Crate | What it provides |
//! |---|---|---|
//! | storage & kernels | [`symtensor`] | packed symmetric tensors, `A·xᵐ`, `A·xᵐ⁻¹`, dense baseline |
//! | unrolling | [`unrolled`] | compile-time straight-line kernels per shape |
//! | algorithm | [`sshopm`] | SS-HOPM, shifts, classification, multistart, batching |
//! | GPU substrate | [`gpusim`] | functional + analytic Fermi-class simulator |
//! | execution backends | [`backend`] | one `SolveBackend` trait behind every batched solve |
//! | application | [`dwmri`] | synthetic DW-MRI phantom and fiber detection |
//! | small linalg | [`linalg`] | Cholesky / Jacobi / QR / least squares |
//! | instrumentation | [`telemetry`] | spans, counters, histograms, trace export |
//!
//! ## Quickstart
//!
//! ```
//! use tensor_eig::prelude::*;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let a = SymTensor::<f64>::random(4, 3, &mut rng);
//! let pair = SsHopm::new(Shift::Convex).with_tolerance(1e-13).solve(&a, &[1.0, 0.0, 0.0]);
//! assert!(pair.converged && pair.residual(&a) < 1e-5);
//! ```
//!
//! ## Batched solves through an execution backend
//!
//! Every batched solve — CPU pools and simulated GPUs alike — runs behind
//! the [`backend::SolveBackend`] trait, selected by a spec string:
//!
//! ```
//! use tensor_eig::prelude::*;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let tensors = TensorBatch::<f64>::random(4, 3, 4, &mut rng).unwrap();
//! let starts = sshopm::starts::random_uniform_starts::<f64, _>(3, 8, &mut rng);
//! let solver = SsHopm::new(Shift::Fixed(0.0)).with_policy(IterationPolicy::Fixed(10));
//!
//! let spec: BackendSpec = "gpusim".parse().unwrap();
//! let gpu = spec.build::<f64>(KernelStrategy::Unrolled).unwrap();
//! let report = gpu
//!     .solve_batch(&tensors, &starts, &solver, &Telemetry::disabled())
//!     .unwrap();
//! assert_eq!(report.num_tensors(), 4);
//! assert_eq!(report.total_iterations, 4 * 8 * 10);
//! ```

#![deny(missing_docs)]

pub use backend;
pub use dwmri;
pub use gpusim;
pub use linalg;
pub use sshopm;
pub use symtensor;
pub use telemetry;
pub use unrolled;

/// The most commonly used types, re-exported flat.
pub mod prelude {
    pub use backend::{
        parse_fault_plan, BackendSpec, BatchReport, CpuParallel, CpuSequential, FaultLog,
        GpuSimBackend, KernelStrategy, MultiGpuBackend, PipelinedBackend, ResilientBackend,
        SolveBackend,
    };
    pub use dwmri::{
        extract_fibers, extract_fibers_with, ExtractConfig, NoiseModel, Phantom, PhantomConfig,
    };
    pub use gpusim::{DeviceSpec, GpuVariant, TransferModel};
    pub use sshopm::{
        multistart, refine, BatchSolver, DedupConfig, Eigenpair, IterationPolicy, Shift, SsHopm,
        Stability,
    };
    pub use symtensor::{
        BlockedKernels, DenseTensor, GeneralKernels, IndexClass, IndexClassIter, PrecomputedTables,
        SymTensor, SymTensorRef, TensorBatch, TensorBatchRef, TensorKernels,
    };
    pub use telemetry::Telemetry;
    pub use unrolled::UnrolledKernels;
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_names_resolve() {
        use crate::prelude::*;
        let _ = SymTensor::<f64>::zeros(4, 3);
        let _ = SsHopm::new(Shift::Convex);
        let _ = DeviceSpec::tesla_c2050();
        let _ = UnrolledKernels::for_shape(4, 3);
        let _ = PhantomConfig::default();
        let _ = CpuSequential::new(KernelStrategy::General);
        let spec: BackendSpec = "cpu:2".parse().unwrap();
        let _: Box<dyn SolveBackend<f64>> = spec.build(KernelStrategy::Blocked).unwrap();
        let _ = gpusim::FaultPlan::new(1);
        let _ = PipelinedBackend::homogeneous(
            DeviceSpec::tesla_c2050(),
            1,
            TransferModel::pcie2(),
            KernelStrategy::General,
        );
        let _ = Telemetry::disabled();
    }
}
