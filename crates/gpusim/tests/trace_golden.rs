//! Golden-file test for the chrome://tracing timeline export.
//!
//! The stream scheduler and the telemetry exporter are both fully
//! deterministic (modeled timestamps, no wall clock), so the exact JSON a
//! double-buffered launch exports is pinned byte-for-byte. Regenerate
//! with `GOLDEN_UPDATE=1 cargo test -p gpusim --test trace_golden` after
//! an *intentional* format or model change.

use gpusim::{Op, StreamQueue, TransferModel};
use telemetry::Telemetry;

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/timeline_trace.json")
}

/// A fixed two-stream double-buffered workload: 2 chunks of
/// upload → kernel → download on one device.
fn exported_timeline_json() -> String {
    let mut q = StreamQueue::new(1, TransferModel::pcie2());
    let s0 = q.stream(0);
    let s1 = q.stream(0);
    for &s in &[s0, s1] {
        q.enqueue(s, Op::HostToDevice { bytes: 6_000_000 });
        q.enqueue(s, Op::Kernel { seconds: 2e-3 });
        q.enqueue(s, Op::DeviceToHost { bytes: 3_000_000 });
    }
    let timeline = q.synchronize();
    let tel = Telemetry::enabled();
    timeline.emit(&tel);
    tel.chrome_trace_json()
}

#[test]
fn chrome_trace_timeline_matches_golden_file() {
    let json = exported_timeline_json();
    let path = golden_path();
    if std::env::var_os("GOLDEN_UPDATE").is_some() {
        std::fs::write(&path, format!("{json}\n")).unwrap();
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with GOLDEN_UPDATE=1",
            path.display()
        )
    });
    assert_eq!(
        json.trim(),
        golden.trim(),
        "timeline trace export drifted from the golden file; if intentional, \
         regenerate with GOLDEN_UPDATE=1 cargo test -p gpusim --test trace_golden"
    );
}

#[test]
fn exported_trace_shows_transfer_compute_overlap() {
    let json = exported_timeline_json();
    let value = serde::Value::parse_json(&json).unwrap();
    let events = value.as_seq().unwrap();
    assert_eq!(events.len(), 6, "{json}");

    let field = |e: &serde::Value, k: &str| e.get(k).and_then(serde::Value::as_f64).unwrap();
    fn name(e: &serde::Value) -> &str {
        e.get("name").and_then(serde::Value::as_str).unwrap()
    }
    let tid = |e: &serde::Value| e.get("tid").and_then(serde::Value::as_u64).unwrap();

    // One trace row per stream.
    let tids: std::collections::BTreeSet<u64> = events.iter().map(tid).collect();
    assert_eq!(tids.into_iter().collect::<Vec<_>>(), vec![0, 1]);

    // Stream 1's upload runs while stream 0's kernel occupies the compute
    // engine — the overlap the viewer renders as stacked rows.
    let s0_kernel = events
        .iter()
        .find(|e| tid(e) == 0 && name(e) == "gpu.kernel")
        .unwrap();
    let s1_h2d = events
        .iter()
        .find(|e| tid(e) == 1 && name(e) == "gpu.h2d")
        .unwrap();
    assert!(
        field(s1_h2d, "ts") < field(s0_kernel, "ts") + field(s0_kernel, "dur"),
        "no overlap: {json}"
    );
}
