//! Cross-checks between the simulator's counted work and the closed-form
//! Table II flop formulas, plus algebraic properties of [`OpCounters`].
//!
//! The simulator counts operations bottom-up (per thread, per iteration);
//! `symtensor::flops` derives the same quantities top-down from the
//! combinatorial formulas. Agreement must be *exact* — these are integer
//! counts of the same arithmetic, not estimates.

use gpusim::{launch_sshopm, DeviceSpec, GpuVariant, OpCounters};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sshopm::starts::random_uniform_starts;
use sshopm::IterationPolicy;
use symtensor::flops::sshopm_iter_flops;
use symtensor::TensorBatch;

fn workload(
    m: usize,
    n: usize,
    t: usize,
    v: usize,
    seed: u64,
) -> (TensorBatch<f32>, Vec<Vec<f32>>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let tensors = TensorBatch::random(m, n, t, &mut rng).unwrap();
    let starts = random_uniform_starts(n, v, &mut rng);
    (tensors, starts)
}

/// Counted useful flops of a launch == Σ_threads iterations × the
/// closed-form per-iteration count, for both kernel variants.
#[test]
fn launch_useful_flops_match_closed_form_exactly() {
    for (m, n) in [(3, 3), (4, 3), (4, 4), (3, 5)] {
        let (tensors, starts) = workload(m, n, 7, 32, 42 + m as u64 * 10 + n as u64);
        let device = DeviceSpec::tesla_c2050();
        // A convergence policy makes per-thread iteration counts differ,
        // exercising the per-thread scaling rather than a uniform T·V·k.
        let policy = IterationPolicy::Converge {
            tol: 1e-5,
            max_iters: 200,
        };
        for variant in [GpuVariant::General, GpuVariant::Unrolled] {
            if variant == GpuVariant::Unrolled
                && unrolled::UnrolledKernels::for_shape(m, n).is_none()
            {
                continue;
            }
            let (res, report) =
                launch_sshopm(&device, &tensors, &starts, policy, 0.4, variant).unwrap();
            let total_iterations: u64 = res
                .results
                .iter()
                .flatten()
                .map(|p| p.iterations as u64)
                .sum();
            assert!(total_iterations > 0);
            assert_eq!(
                report.useful_flops,
                total_iterations * sshopm_iter_flops(m, n),
                "[{m},{n}] {} counted flops diverge from Table II formula",
                variant.name()
            );
        }
    }
}

/// Fixed iteration budgets give the fully closed-form total
/// `T · V · k · sshopm_iter_flops(m, n)` — the quantity the paper's
/// Table III GFLOPS figures divide by.
#[test]
fn fixed_policy_flops_are_t_v_k_times_per_iteration() {
    let (t, v, k) = (9, 64, 25);
    let (tensors, starts) = workload(4, 3, t, v, 7);
    let device = DeviceSpec::tesla_c2050();
    for variant in [GpuVariant::General, GpuVariant::Unrolled] {
        let (_, report) = launch_sshopm(
            &device,
            &tensors,
            &starts,
            IterationPolicy::Fixed(k),
            0.0,
            variant,
        )
        .unwrap();
        assert_eq!(
            report.useful_flops,
            (t * v * k) as u64 * sshopm_iter_flops(4, 3)
        );
    }
}

fn counters_strategy() -> impl Strategy<Value = OpCounters> {
    (
        (0u64..1000, 0u64..1000, 0u64..1000, 0u64..1000, 0u64..1000),
        (0u64..1000, 0u64..1000, 0u64..1000, 0u64..1000, 0u64..1000),
    )
        .prop_map(
            |((fadd, fmul, ffma, fdiv, fsqrt), (int_ops, sl, ss, gl, gs))| OpCounters {
                fadd,
                fmul,
                ffma,
                fdiv,
                fsqrt,
                int_ops,
                shared_loads: sl,
                shared_stores: ss,
                global_loads: gl,
                global_stores: gs,
            },
        )
}

fn merged(a: &OpCounters, b: &OpCounters) -> OpCounters {
    let mut out = *a;
    out.merge(b);
    out
}

proptest! {
    /// `merge` is commutative and associative, so the aggregation order of
    /// blocks/warps/threads in `run_grid` cannot change launch totals.
    #[test]
    fn merge_is_commutative_and_associative(
        a in counters_strategy(),
        b in counters_strategy(),
        c in counters_strategy(),
    ) {
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
        prop_assert_eq!(
            merged(&merged(&a, &b), &c),
            merged(&a, &merged(&b, &c))
        );
    }

    /// Derived totals are additive under merge: counting then summing
    /// equals summing then counting.
    #[test]
    fn derived_totals_are_additive(a in counters_strategy(), b in counters_strategy()) {
        let ab = merged(&a, &b);
        prop_assert_eq!(ab.useful_flops(), a.useful_flops() + b.useful_flops());
        prop_assert_eq!(
            ab.arithmetic_instructions(),
            a.arithmetic_instructions() + b.arithmetic_instructions()
        );
        prop_assert_eq!(ab.shared_accesses(), a.shared_accesses() + b.shared_accesses());
        prop_assert_eq!(ab.global_words(), a.global_words() + b.global_words());
    }

    /// The zero counter is the identity of `merge`.
    #[test]
    fn default_is_merge_identity(a in counters_strategy()) {
        prop_assert_eq!(merged(&a, &OpCounters::default()), a);
        prop_assert_eq!(merged(&OpCounters::default(), &a), a);
    }
}
