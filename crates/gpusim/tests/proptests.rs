//! Property tests for the GPU simulator: functional parity with the CPU
//! solver for arbitrary workloads, occupancy monotonicity, and timing-model
//! scaling laws.

use gpusim::{launch_sshopm, DeviceSpec, GpuVariant, KernelResources, Occupancy};
use proptest::prelude::*;
use sshopm::starts::random_uniform_starts;
use sshopm::{BatchSolver, IterationPolicy, Shift, SsHopm};
use symtensor::kernels::GeneralKernels;
use symtensor::TensorBatch;

fn workload(t: usize, v: usize, seed: u64) -> (TensorBatch<f32>, Vec<Vec<f32>>) {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    let tensors = TensorBatch::random(4, 3, t, &mut rng).unwrap();
    let starts = random_uniform_starts(3, v, &mut rng);
    (tensors, starts)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn functional_parity_with_cpu(t in 1usize..8, v in 1usize..16, seed in 0u64..1000, iters in 1usize..12) {
        let (tensors, starts) = workload(t, v, seed);
        let policy = IterationPolicy::Fixed(iters);
        let device = DeviceSpec::tesla_c2050();
        let (gpu, report) = launch_sshopm(&device, &tensors, &starts, policy, 0.0, GpuVariant::General).unwrap();
        let cpu = BatchSolver::new(SsHopm::new(Shift::Fixed(0.0)).with_policy(policy))
            .solve_sequential(&GeneralKernels, &tensors, &starts);
        for ti in 0..t {
            for vi in 0..v {
                prop_assert_eq!(gpu.results[ti][vi].lambda, cpu.results[ti][vi].lambda);
                prop_assert_eq!(&gpu.results[ti][vi].x, &cpu.results[ti][vi].x);
            }
        }
        prop_assert_eq!(report.grid.num_blocks, t);
        prop_assert!(report.timing.seconds.is_finite());
    }

    #[test]
    fn flops_scale_linearly_with_iterations(seed in 0u64..100, iters in 1usize..20) {
        let (tensors, starts) = workload(4, 8, seed);
        let device = DeviceSpec::tesla_c2050();
        let (_, r1) = launch_sshopm(&device, &tensors, &starts,
            IterationPolicy::Fixed(iters), 0.0, GpuVariant::Unrolled).unwrap();
        let (_, r2) = launch_sshopm(&device, &tensors, &starts,
            IterationPolicy::Fixed(2 * iters), 0.0, GpuVariant::Unrolled).unwrap();
        prop_assert_eq!(r2.useful_flops, 2 * r1.useful_flops);
        prop_assert_eq!(r2.stats.warp_serial_instructions, 2 * r1.stats.warp_serial_instructions);
    }

    #[test]
    fn occupancy_is_monotone_in_block_footprint(
        regs in 1usize..63,
        smem in 0usize..48_000,
        threads_pow in 0u32..5,
    ) {
        let device = DeviceSpec::tesla_c2050();
        let threads = 32usize << threads_pow;
        let base = Occupancy::compute(&device, &KernelResources {
            registers_per_thread: regs,
            shared_mem_per_block: smem,
            threads_per_block: threads,
        });
        // More shared memory can never increase occupancy.
        let bigger = Occupancy::compute(&device, &KernelResources {
            registers_per_thread: regs,
            shared_mem_per_block: smem + 4096,
            threads_per_block: threads,
        });
        prop_assert!(bigger.blocks_per_sm <= base.blocks_per_sm);
        // More registers can never increase occupancy.
        if regs + 8 <= device.max_registers_per_thread {
            let more_regs = Occupancy::compute(&device, &KernelResources {
                registers_per_thread: regs + 8,
                shared_mem_per_block: smem,
                threads_per_block: threads,
            });
            prop_assert!(more_regs.blocks_per_sm <= base.blocks_per_sm);
        }
    }

    #[test]
    fn warp_accounting_bounds(t in 1usize..6, v in 1usize..40, seed in 0u64..100) {
        let (tensors, starts) = workload(t, v, seed);
        let device = DeviceSpec::tesla_c2050();
        let (_, report) = launch_sshopm(&device, &tensors, &starts,
            IterationPolicy::Converge { tol: 1e-5, max_iters: 200 }, 0.5, GpuVariant::General).unwrap();
        let eff = report.stats.simd_efficiency(device.warp_size);
        prop_assert!(eff > 0.0 && eff <= 1.0 + 1e-12, "efficiency {eff}");
        // Warp-serial cost is at least the per-thread mean and at most the sum.
        let ws = report.stats.warp_serial_instructions;
        let ti = report.stats.thread_instructions;
        prop_assert!(ws <= ti);
        prop_assert!(ws * (device.warp_size as u64) >= ti);
    }

    #[test]
    fn more_tensors_never_slower_throughput_at_scale(seed in 0u64..50) {
        let device = DeviceSpec::tesla_c2050();
        let policy = IterationPolicy::Fixed(10);
        let (t64, starts) = workload(64, 64, seed);
        let (t256, _) = workload(256, 64, seed + 1);
        let (_, r64) = launch_sshopm(&device, &t64, &starts, policy, 0.0, GpuVariant::Unrolled).unwrap();
        let (_, r256) = launch_sshopm(&device, &t256, &starts, policy, 0.0, GpuVariant::Unrolled).unwrap();
        prop_assert!(r256.gflops >= r64.gflops * 0.9, "{} vs {}", r256.gflops, r64.gflops);
    }
}
