//! Property tests for the stream/event scheduler: invariants the event
//! timeline must satisfy for *every* op mix and enqueue interleaving, and
//! bitwise parity between pipelined and synchronous execution.

use gpusim::{
    launch_sshopm, DeviceSpec, Engine, MultiGpu, Op, StreamQueue, Timeline, TransferModel,
};
use proptest::prelude::*;
use sshopm::starts::random_uniform_starts;
use sshopm::IterationPolicy;
use symtensor::TensorBatch;

/// An op drawn from the same space the launch path enqueues.
fn arb_op() -> impl Strategy<Value = Op> {
    (0usize..4, 1u64..64_000_000, 1e-6..5e-3f64).prop_map(|(kind, bytes, seconds)| match kind {
        0 => Op::HostToDevice { bytes },
        1 => Op::DeviceToHost { bytes },
        2 => Op::Kernel { seconds },
        _ => Op::Stall { seconds },
    })
}

/// An arbitrary enqueue interleaving: each element is (stream slot, op),
/// applied in order, so streams fill in arbitrary relative order.
fn arb_schedule(streams: usize, max_ops: usize) -> impl Strategy<Value = Vec<(usize, Op)>> {
    proptest::collection::vec((0..streams, arb_op()), 1..max_ops)
}

fn build(num_devices: usize, streams_per_device: usize, plan: &[(usize, Op)]) -> Timeline {
    let mut q = StreamQueue::new(num_devices, TransferModel::pcie2());
    let ids: Vec<_> = (0..num_devices * streams_per_device)
        .map(|i| q.stream(i % num_devices))
        .collect();
    for &(slot, op) in plan {
        q.enqueue(ids[slot % ids.len()], op);
    }
    q.synchronize()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The makespan can never beat the longest single op, and can never
    /// lose to full serialization.
    #[test]
    fn makespan_is_bounded_by_longest_op_and_serial_sum(
        plan in arb_schedule(4, 24),
        devices in 1usize..3,
    ) {
        let t = build(devices, 2, &plan);
        let link = TransferModel::pcie2();
        let longest = plan
            .iter()
            .map(|(_, op)| op.duration(&link))
            .fold(0.0f64, f64::max);
        prop_assert!(t.makespan() >= longest - 1e-15,
            "makespan {} < longest op {}", t.makespan(), longest);
        prop_assert!(t.makespan() <= t.serial_seconds() + 1e-12,
            "makespan {} > serial {}", t.makespan(), t.serial_seconds());
        prop_assert!((t.overlap_seconds() - (t.serial_seconds() - t.makespan())).abs() < 1e-12);
    }

    /// FIFO order within each stream survives any cross-stream
    /// interleaving: an op never starts before its stream predecessor ends.
    #[test]
    fn dependency_order_is_preserved_within_streams(
        plan in arb_schedule(5, 32),
    ) {
        let t = build(2, 2, &plan);
        // Reconstruct each stream's ops in schedule order.
        for stream in 0..t.num_streams {
            let mut prev_end = 0.0f64;
            let mut ops: Vec<_> = t.ops.iter().filter(|o| o.stream.index() == stream).collect();
            ops.sort_by(|a, b| a.start_s.total_cmp(&b.start_s));
            for o in ops {
                prop_assert!(o.start_s >= prev_end - 1e-15,
                    "stream {stream}: op at {} starts before predecessor end {}",
                    o.start_s, prev_end);
                prev_end = prev_end.max(o.end_s);
            }
        }
    }

    /// Engine exclusivity: on any one device, two copy ops (or two compute
    /// ops) never overlap in time — one DMA engine, one SM array.
    #[test]
    fn engines_are_exclusive_per_device(
        plan in arb_schedule(4, 24),
        devices in 1usize..3,
    ) {
        let t = build(devices, 2, &plan);
        for device in 0..devices {
            for engine in [Engine::Copy, Engine::Compute] {
                let mut spans: Vec<(f64, f64)> = t
                    .ops
                    .iter()
                    .filter(|o| o.device == device && o.op.engine() == engine)
                    .map(|o| (o.start_s, o.end_s))
                    .collect();
                spans.sort_by(|a, b| a.0.total_cmp(&b.0));
                for w in spans.windows(2) {
                    prop_assert!(w[1].0 >= w[0].1 - 1e-15,
                        "{engine:?} on device {device}: {:?} overlaps {:?}", w[0], w[1]);
                }
            }
        }
    }

    /// Events serialize across streams: work gated on a recorded event
    /// starts no earlier than the event's covered ops finish.
    #[test]
    fn recorded_events_gate_cross_stream_work(
        head in proptest::collection::vec(arb_op(), 1..6),
        tail in arb_op(),
    ) {
        let mut q = StreamQueue::new(1, TransferModel::pcie2());
        let producer = q.stream(0);
        let consumer = q.stream(0);
        for &op in &head {
            q.enqueue(producer, op);
        }
        let ev = q.record_event(producer);
        q.wait_event(consumer, ev);
        q.enqueue(consumer, tail);
        let t = q.synchronize();
        let producer_done = t
            .ops
            .iter()
            .filter(|o| o.stream == producer)
            .fold(0.0f64, |a, o| a.max(o.end_s));
        let gated = t.ops.iter().find(|o| o.stream == consumer).unwrap();
        prop_assert!(gated.start_s >= producer_done - 1e-15,
            "gated op starts {} before producer finished {}", gated.start_s, producer_done);
    }

    /// The pipelined launch path produces bitwise-identical eigenpairs to
    /// the synchronous one for arbitrary chunkings and stream counts —
    /// chunking changes the clock, never the arithmetic.
    #[test]
    fn pipelined_execution_is_bitwise_equal_to_synchronous(
        tensors in 1usize..40,
        chunk in 1usize..16,
        streams in 1usize..4,
        seed in 0u64..500,
    ) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let batch = TensorBatch::<f32>::random(4, 3, tensors, &mut rng).unwrap();
        let starts = random_uniform_starts(3, 4, &mut rng);
        let policy = IterationPolicy::Fixed(4);
        let device = DeviceSpec::tesla_c2050();

        let (sync, _) = launch_sshopm(
            &device, &batch, &starts, policy, 0.0, gpusim::GpuVariant::General).unwrap();
        let mg = MultiGpu::homogeneous(device, 1, TransferModel::pcie2()).unwrap();
        let (piped, report) = mg.launch_pipelined(
            &batch, &starts, policy, 0.0, gpusim::GpuVariant::General, chunk, streams).unwrap();

        for (srow, prow) in sync.results.iter().zip(&piped.results) {
            for (s, p) in srow.iter().zip(prow) {
                prop_assert_eq!(s.lambda.to_bits(), p.lambda.to_bits());
                for (sx, px) in s.x.iter().zip(&p.x) {
                    prop_assert_eq!(sx.to_bits(), px.to_bits());
                }
            }
        }
        // The timeline carries one h2d + kernel + d2h triple per chunk.
        let chunks = tensors.div_ceil(chunk);
        prop_assert_eq!(report.timeline.ops.len(), 3 * chunks);
    }
}
