//! Error type for simulated launches.
//!
//! Every condition that used to abort the process with an `assert!` in the
//! launch path is now a recoverable [`GpuError`], so callers (the `backend`
//! crate, the CLI) can surface a clean message instead of a panic.

/// A reason a simulated launch (or device-set construction) cannot proceed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GpuError {
    /// A multi-GPU set was built with no devices.
    EmptyDeviceList,
    /// A cluster host was built with no devices.
    EmptyHost,
    /// A cluster was built with no hosts.
    EmptyCluster,
    /// A launch was requested with no tensors.
    EmptyBatch,
    /// A launch was requested with no start vectors.
    EmptyStarts,
    /// The batch mixes tensors of different `(m, n)` shapes.
    MismatchedShapes {
        /// Shape of the first tensor in the batch.
        expected: (usize, usize),
        /// The first differing shape encountered.
        found: (usize, usize),
    },
    /// The unrolled kernel variant was requested for a shape that has no
    /// generated kernel.
    NoUnrolledKernel {
        /// Tensor order.
        m: usize,
        /// Tensor dimension.
        n: usize,
    },
    /// The tape kernel variant was requested for a shape the runtime
    /// generator does not support (table sizes exceed the tape slot cap).
    NoTapeKernel {
        /// Tensor order.
        m: usize,
        /// Tensor dimension.
        n: usize,
    },
    /// The shape is too large to model: its unique-entry count overflows
    /// `u64`.
    ShapeTooLarge {
        /// Tensor order.
        m: usize,
        /// Tensor dimension.
        n: usize,
    },
}

impl std::fmt::Display for GpuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GpuError::EmptyDeviceList => write!(f, "need at least one device"),
            GpuError::EmptyHost => write!(f, "need at least one device per host"),
            GpuError::EmptyCluster => write!(f, "need at least one host in the cluster"),
            GpuError::EmptyBatch => write!(f, "need at least one tensor to launch"),
            GpuError::EmptyStarts => write!(f, "need at least one start vector"),
            GpuError::MismatchedShapes { expected, found } => write!(
                f,
                "all tensors in a launch must share one shape: expected ({}, {}), found ({}, {})",
                expected.0, expected.1, found.0, found.1
            ),
            GpuError::NoUnrolledKernel { m, n } => {
                write!(f, "no unrolled kernel generated for shape ({m}, {n})")
            }
            GpuError::NoTapeKernel { m, n } => {
                write!(f, "no tape kernel can be generated for shape ({m}, {n})")
            }
            GpuError::ShapeTooLarge { m, n } => write!(
                f,
                "shape ({m}, {n}) is too large to model: unique-entry count overflows u64"
            ),
        }
    }
}

impl std::error::Error for GpuError {}
