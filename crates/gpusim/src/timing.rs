//! The analytic timing model: counted work → estimated seconds → GFLOPS.
//!
//! ## Model
//!
//! Let `I` be the divergence-aware warp-serial instruction count of the
//! whole launch (each warp charged its slowest lane; expensive instructions
//! pre-weighted in issue slots). An SM issues `issue_rate` warp
//! instructions per cycle when enough warps are resident to hide latency.
//!
//! * **Parallelism**: with `B` blocks and `blocks_per_sm` resident blocks,
//!   at most `min(num_sms, ceil(B / blocks_per_sm))` SMs have work; work is
//!   assumed evenly divided among them (the blocks are homogeneous).
//! * **Latency hiding**: an SM needs roughly `warps_needed` resident warps
//!   to keep its pipelines full (Fermi arithmetic latency ≈ 18 cycles at
//!   ~1 IPC); below that, issue efficiency degrades proportionally.
//! * **Memory bound**: global traffic divided by bandwidth gives a floor.
//! * **Overhead**: a fixed per-launch cost (driver + kernel launch).
//!
//! `estimated seconds = max(compute, memory) + overhead`.

use crate::device::DeviceSpec;
use crate::exec::LaunchStats;
use crate::occupancy::Occupancy;

/// Resident warps an SM needs for full issue efficiency.
pub const WARPS_NEEDED: f64 = 16.0;

/// Fixed per-launch overhead in seconds (driver, launch, sync).
pub const LAUNCH_OVERHEAD_S: f64 = 10e-6;

/// Issue-slot weights for expensive operations, used when kernels compute
/// their weighted instruction counts.
pub mod weights {
    /// Plain FP add/mul/FMA and integer ops: one issue slot.
    pub const SIMPLE: u64 = 1;
    /// Division (software-expanded on Fermi).
    pub const FDIV: u64 = 8;
    /// Square root (special function unit).
    pub const FSQRT: u64 = 8;
    /// Shared-memory access (conflict-free).
    pub const SHARED: u64 = 1;
}

/// The timing breakdown of one launch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingEstimate {
    /// Seconds in the compute-bound term.
    pub compute_seconds: f64,
    /// Seconds in the memory-bound term.
    pub memory_seconds: f64,
    /// Total estimate (max of the above plus overhead).
    pub seconds: f64,
    /// Issue efficiency applied (1.0 = full latency hiding).
    pub issue_efficiency: f64,
    /// Number of SMs with work.
    pub active_sms: usize,
}

impl TimingEstimate {
    /// Achieved GFLOP/s for a given number of useful flops.
    pub fn gflops(&self, useful_flops: u64) -> f64 {
        useful_flops as f64 / self.seconds / 1e9
    }
}

/// Estimate the run time of a launch.
///
/// `num_blocks` is the grid size; `stats` the functional execution's
/// accounting; `occ` the occupancy of the kernel on `device`.
///
/// If the occupancy is zero (kernel cannot fit), the estimate is infinite.
pub fn estimate(
    device: &DeviceSpec,
    num_blocks: usize,
    stats: &LaunchStats,
    occ: &Occupancy,
) -> TimingEstimate {
    if occ.blocks_per_sm == 0 || num_blocks == 0 {
        return TimingEstimate {
            compute_seconds: f64::INFINITY,
            memory_seconds: 0.0,
            seconds: f64::INFINITY,
            issue_efficiency: 0.0,
            active_sms: 0,
        };
    }

    // Blocks are distributed breadth-first across SMs, so any grid with at
    // least `num_sms` blocks lights up the whole chip.
    let active_sms = device.num_sms.min(num_blocks).max(1);

    // Resident warps per active SM: capped by what the grid supplies.
    let warps_per_block = stats.num_warps as f64 / num_blocks.max(1) as f64;
    let resident_blocks = occ
        .blocks_per_sm
        .min(num_blocks.div_ceil(active_sms))
        .max(1);
    let resident_warps = resident_blocks as f64 * warps_per_block;
    let issue_efficiency = (resident_warps / WARPS_NEEDED).min(1.0);

    let clock_hz = device.clock_ghz * 1e9;
    let cycles = stats.warp_serial_instructions as f64
        / (active_sms as f64 * device.issue_rate * issue_efficiency);
    let compute_seconds = cycles / clock_hz;

    let global_bytes = stats.counters.global_words() * 4;
    let memory_seconds = crate::memory::transfer_seconds(global_bytes, device.mem_bandwidth_gbs);

    let seconds = compute_seconds.max(memory_seconds) + LAUNCH_OVERHEAD_S;
    TimingEstimate {
        compute_seconds,
        memory_seconds,
        seconds,
        issue_efficiency,
        active_sms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::OpCounters;

    fn stats(warp_serial: u64, warps: usize, global_words: u64) -> LaunchStats {
        LaunchStats {
            counters: OpCounters {
                global_loads: global_words,
                ..Default::default()
            },
            warp_serial_instructions: warp_serial,
            thread_instructions: warp_serial * 32,
            num_warps: warps,
        }
    }

    fn full_occ() -> Occupancy {
        Occupancy {
            blocks_per_sm: 8,
            warps_per_sm: 32,
            fraction: 0.67,
            limiter: "block slots",
        }
    }

    #[test]
    fn zero_occupancy_is_infinite() {
        let d = DeviceSpec::tesla_c2050();
        let occ = Occupancy {
            blocks_per_sm: 0,
            warps_per_sm: 0,
            fraction: 0.0,
            limiter: "block too large",
        };
        let t = estimate(&d, 100, &stats(1000, 400, 0), &occ);
        assert!(t.seconds.is_infinite());
        assert_eq!(t.active_sms, 0);
    }

    #[test]
    fn compute_time_scales_with_instructions() {
        let d = DeviceSpec::tesla_c2050();
        // 1024 blocks, 4 warps each: device fully active.
        let t1 = estimate(&d, 1024, &stats(1_000_000, 4096, 0), &full_occ());
        let t2 = estimate(&d, 1024, &stats(2_000_000, 4096, 0), &full_occ());
        assert!((t2.compute_seconds / t1.compute_seconds - 2.0).abs() < 1e-9);
        assert_eq!(t1.active_sms, 14);
        assert!((t1.issue_efficiency - 1.0).abs() < 1e-12);
    }

    #[test]
    fn small_grids_use_fewer_sms() {
        let d = DeviceSpec::tesla_c2050();
        // Blocks spread breadth-first: 4 blocks light up 4 SMs.
        let t = estimate(&d, 4, &stats(1000, 16, 0), &full_occ());
        assert_eq!(t.active_sms, 4);
        // The 4-block launch also runs at reduced issue efficiency (only
        // one resident block per SM): 1000/(4 SMs x 0.25) = 1000 cycles.
        assert!((t.issue_efficiency - 0.25).abs() < 1e-12);
        // 56 blocks fill all 14 SMs at full efficiency; 14x the total work
        // across 3.5x the SMs at 4x the efficiency comes out equal.
        let big = estimate(&d, 56, &stats(14_000, 224, 0), &full_occ());
        assert_eq!(big.active_sms, 14);
        assert!((big.issue_efficiency - 1.0).abs() < 1e-12);
        assert!((big.compute_seconds - t.compute_seconds).abs() < 1e-12);
        assert!(big.compute_seconds < t.compute_seconds * 14.0);
    }

    #[test]
    fn low_resident_warps_reduce_issue_efficiency() {
        let d = DeviceSpec::tesla_c2050();
        let occ_one_block = Occupancy {
            blocks_per_sm: 1,
            warps_per_sm: 4,
            fraction: 0.083,
            limiter: "shared memory",
        };
        // 14 blocks, 4 warps each -> one block per SM, 4 resident warps.
        let t = estimate(&d, 14, &stats(10_000, 56, 0), &occ_one_block);
        assert!((t.issue_efficiency - 4.0 / WARPS_NEEDED).abs() < 1e-9);
    }

    #[test]
    fn memory_bound_launch_is_floored_by_bandwidth() {
        let d = DeviceSpec::tesla_c2050();
        // Tiny compute, huge traffic: 144 GB/s moving 1.44 GB = 10 ms.
        let words = 1_440_000_000 / 4;
        let t = estimate(&d, 1024, &stats(100, 4096, words as u64), &full_occ());
        assert!((t.memory_seconds - 0.01).abs() < 1e-4);
        assert!(t.seconds >= t.memory_seconds);
    }

    #[test]
    fn gflops_inverts_seconds() {
        let d = DeviceSpec::tesla_c2050();
        let t = estimate(&d, 1024, &stats(1_000_000, 4096, 0), &full_occ());
        let g = t.gflops(1_000_000_000);
        assert!((g - 1.0 / t.seconds).abs() < 1e-9);
    }

    #[test]
    fn overhead_dominates_trivial_launches() {
        let d = DeviceSpec::tesla_c2050();
        let t = estimate(&d, 1, &stats(10, 4, 10), &full_occ());
        assert!(t.seconds >= LAUNCH_OVERHEAD_S);
        assert!(t.seconds < LAUNCH_OVERHEAD_S * 2.0);
    }

    /// Regression pin (satellite): the stream/pipeline refactor must not
    /// silently retune the per-launch overhead the Table II/III baselines
    /// (and the per-chunk charging in chunked paths) are built on.
    #[test]
    fn launch_overhead_constant_is_pinned() {
        assert_eq!(LAUNCH_OVERHEAD_S, 10e-6);
        // It is additive on top of the engine terms: the same launch with
        // the overhead subtracted reproduces max(compute, memory).
        let d = DeviceSpec::tesla_c2050();
        let t = estimate(&d, 1024, &stats(1_000_000, 4096, 0), &full_occ());
        assert!(
            (t.seconds - t.compute_seconds.max(t.memory_seconds) - LAUNCH_OVERHEAD_S).abs() < 1e-18
        );
    }
}
