//! The batched SS-HOPM kernels mapped onto the simulated GPU exactly as in
//! Section V of the paper: one thread block per tensor, one thread per
//! starting vector, the packed tensor staged into block-shared memory, the
//! iteration vectors in per-thread registers.
//!
//! Two kernel variants mirror the paper's, plus a generated middle ground:
//!
//! * **Unrolled** — straight-line kernels (from the `unrolled` crate);
//!   `x`/`y` live in registers, coefficients are compile-time constants.
//! * **General** — the Figure 2/3 loops with shared index/coefficient
//!   tables. Crucially, the dynamically-indexed iteration vectors cannot
//!   live in the register file (on a real GPU a dynamically indexed local
//!   array spills to *local memory*, which is device memory); the model
//!   charges those accesses as global traffic with an issue-slot penalty.
//!   This is the indirection the paper's Section V-D unrolling removes and
//!   is the main source of its 18.7× GPU unrolled speedup.
//! * **Tape** — runtime-generated kernel tapes (from the `kernelgen`
//!   crate): the UPDATEINDEX/MULTINOMIAL integer bookkeeping is resolved
//!   at generation time into flat offset/coefficient tables, so the
//!   per-iteration integer work disappears, but the dynamically-indexed
//!   vectors still spill. The modeled *instruction* cost sits strictly
//!   between General and Unrolled; memory-bound launches stay close to
//!   General because the spilled-vector traffic is unchanged — consistent
//!   with the paper, where the big unrolled win comes from eliminating the
//!   spill, not the integer bookkeeping.
//!
//! The numerics are computed by the *real* library kernels, so the
//! functional results agree bit-for-bit with the CPU implementations built
//! on the same scalar type.

use crate::counters::OpCounters;
use crate::device::DeviceSpec;
use crate::error::GpuError;
use crate::exec::{run_grid, GridConfig, LaunchStats, ThreadRecord};
use crate::multi::HostTransfer;
use crate::occupancy::{KernelResources, Occupancy};
use crate::stream::{Op, StreamId, StreamQueue};
use crate::timing::{estimate, weights, TimingEstimate};
use sshopm::{Eigenpair, IterationPolicy, SsHopm};
use symtensor::flops;
use symtensor::kernels::GeneralKernels;
use symtensor::multinomial::{num_unique_entries, try_num_unique_entries};
use symtensor::{Scalar, TensorBatchRef};
use unrolled::UnrolledKernels;

/// Which kernel variant to launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GpuVariant {
    /// Figure 2/3 loop kernels with shared tables (works for any shape).
    General,
    /// Straight-line generated kernels (only for generated shapes).
    Unrolled,
    /// Runtime-generated kernel tapes (any shape the generator supports).
    Tape,
}

impl GpuVariant {
    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            GpuVariant::General => "general",
            GpuVariant::Unrolled => "unrolled",
            GpuVariant::Tape => "tape",
        }
    }
}

/// Per-thread, per-iteration operation counts for a given shape and
/// variant. These are analytic counts of exactly what the corresponding
/// kernel executes per SS-HOPM iteration; the functional run multiplies
/// them by each thread's actual iteration count.
fn per_iteration_counters(m: usize, n: usize, variant: GpuVariant) -> OpCounters {
    let u = num_unique_entries(m, n);
    let inc = flops::distinct_incidences(m, n);
    let (m64, n64) = (m as u64, n as u64);

    let mut c = OpCounters::default();
    // A·x^{m-1}: per (class, distinct index) incidence — monomial product
    // (m-2 muls), coefficient and value multiplies, one accumulate.
    c.fmul += inc * m64;
    c.fadd += inc;
    // shift-add alpha*x and the lambda = A·x^m evaluation.
    c.ffma += n64; // y += alpha * x
    c.fmul += u * (m64 + 1); // monomial + coeff + value per class
    c.fadd += u;
    // normalization: sum of squares (ffma), sqrt, divide by the norm.
    c.ffma += n64;
    c.fsqrt += 1;
    c.fdiv += n64;
    // Tensor reads from shared memory: one per class for A·x^m, one per
    // incidence for A·x^{m-1}.
    c.shared_loads += u + inc;

    match variant {
        GpuVariant::Unrolled => {
            // Index information folded into the instruction stream: no
            // integer bookkeeping, vectors in registers.
        }
        GpuVariant::General => {
            // UPDATEINDEX + MULTINOMIAL passes: O(m) integer work per class
            // for A·x^m and per incidence for A·x^{m-1}.
            c.int_ops += u * 2 * m64 + inc * 2 * m64;
            // Index representations read from the shared tables.
            c.shared_loads += u * m64 + inc * m64;
            // Dynamically-indexed x/y cannot stay in registers: local
            // (= device) memory traffic. Per class, A·x^m reads x m times;
            // per incidence, A·x^{m-1} reads x (m-1) times and
            // reads+writes y once each.
            c.global_loads += u * m64 + inc * (m64 - 1) + inc;
            c.global_stores += inc;
        }
        GpuVariant::Tape => {
            // Pre-resolved tape entries: the UPDATEINDEX/MULTINOMIAL
            // integer passes are gone (no `int_ops`), but the factor
            // offsets and folded coefficients are read from shared tables
            // and the dynamically-indexed x/y still spill to local memory
            // exactly like the general kernel.
            c.shared_loads += u * m64 + inc * (m64 - 1) + inc; // factor offsets + output ranks
            c.shared_loads += u + inc; // folded coefficients
            c.global_loads += u * m64 + inc * (m64 - 1) + inc;
            c.global_stores += inc;
        }
    }
    c
}

/// Issue-slot weight of one iteration's instructions (divergence-aware
/// warp accounting multiplies this by the slowest lane's iteration count).
fn per_iteration_weight(c: &OpCounters) -> u64 {
    c.fadd + c.fmul + c.ffma + c.int_ops
        + weights::FDIV * c.fdiv
        + weights::FSQRT * c.fsqrt
        + weights::SHARED * c.shared_accesses()
        // Local-memory (spilled vector) accesses cost several issue slots
        // even when the latency itself is hidden.
        + 4 * c.global_words()
}

/// Functional results of a GPU launch: `results[t][v]` is the eigenpair for
/// tensor `t` from start `v` (identical layout to `sshopm::BatchResult`).
#[derive(Debug, Clone)]
pub struct GpuBatchResult<S> {
    /// Per-tensor, per-start eigenpairs.
    pub results: Vec<Vec<Eigenpair<S>>>,
}

/// Everything the launch reports besides the numerics.
#[derive(Debug, Clone)]
pub struct LaunchReport {
    /// Kernel variant launched.
    pub variant: GpuVariant,
    /// Grid geometry.
    pub grid: GridConfig,
    /// Static resource footprint used for occupancy.
    pub resources: KernelResources,
    /// Occupancy on the target device.
    pub occupancy: Occupancy,
    /// Aggregated functional statistics.
    pub stats: LaunchStats,
    /// Useful floating-point operations executed.
    pub useful_flops: u64,
    /// The timing estimate.
    pub timing: TimingEstimate,
    /// Estimated achieved GFLOP/s.
    pub gflops: f64,
    /// Host↔device staging for this launch: one coalesced copy each way,
    /// because the batch arena is a single contiguous allocation. Kernel
    /// timing (`timing`/`gflops`) deliberately excludes it — the copy
    /// *time* lives on the event timeline, where the stream scheduler
    /// charges each `HostToDevice`/`DeviceToHost` op against the caller's
    /// [`crate::TransferModel`].
    pub host_transfer: HostTransfer,
}

/// Launch the batched SS-HOPM problem on the simulated device.
///
/// This is a thin synchronous wrapper over the asynchronous path: it
/// enqueues the launch's three ops (upload, kernel, download) on a default
/// stream of a fresh single-device [`StreamQueue`] via [`enqueue_sshopm`]
/// and immediately synchronizes. Callers that want transfer/compute
/// overlap enqueue on their own queue instead (see [`crate::MultiGpu`]).
///
/// Takes the batch as a borrowed [`TensorBatchRef`] (or anything that
/// converts into one, e.g. `&TensorBatch`): same-shape is guaranteed by
/// construction, and the packed arena is exactly the buffer a real driver
/// would ship to the device in one `cudaMemcpy`. Starting vectors are
/// shared by all blocks (Section V-C). Returns the functional results plus
/// the performance report.
///
/// # Errors
/// Returns a [`GpuError`] if the batch or `starts` is empty, the shape is
/// too large to model, the unrolled variant is requested for a shape with
/// no generated kernel, or the tape variant is requested for a shape the
/// runtime generator does not support. (Mixed shapes can no longer reach
/// the launch: [`symtensor::TensorBatch`] rejects them at construction.)
pub fn launch_sshopm<'a, S: Scalar>(
    device: &DeviceSpec,
    batch: impl Into<TensorBatchRef<'a, S>>,
    starts: &[Vec<S>],
    policy: IterationPolicy,
    alpha: f64,
    variant: GpuVariant,
) -> Result<(GpuBatchResult<S>, LaunchReport), GpuError> {
    let mut queue = StreamQueue::new(1, crate::multi::TransferModel::pcie2());
    let stream = queue.stream(0);
    let out = enqueue_sshopm(
        &mut queue, stream, device, batch, starts, policy, alpha, variant,
    )?;
    // Default-stream semantics: block until everything is resolved. The
    // timeline of a lone launch carries no overlap to report; the
    // kernel-only `timing` in the report matches the paper's convention of
    // excluding transfers.
    let _ = queue.synchronize();
    Ok(out)
}

/// Enqueue one batched SS-HOPM launch on `stream` of `queue`.
///
/// The *functional* half runs immediately (the kernels execute and the
/// bit-exact results come back now); the *clock* is deferred — the call
/// enqueues `HostToDevice(arena + starts)`, `Kernel(analytic estimate)`
/// and `DeviceToHost(packed eigenpairs)` ops that the queue's scheduler
/// resolves against the device's copy/compute engines at
/// [`StreamQueue::synchronize`]. The kernel op's duration is the full
/// [`TimingEstimate::seconds`], launch overhead included, so chunked
/// callers pay the overhead per chunk exactly like real launches.
///
/// # Errors
/// Same contract as [`launch_sshopm`].
#[allow(clippy::too_many_arguments)]
pub fn enqueue_sshopm<'a, S: Scalar>(
    queue: &mut StreamQueue,
    stream: StreamId,
    device: &DeviceSpec,
    batch: impl Into<TensorBatchRef<'a, S>>,
    starts: &[Vec<S>],
    policy: IterationPolicy,
    alpha: f64,
    variant: GpuVariant,
) -> Result<(GpuBatchResult<S>, LaunchReport), GpuError> {
    let batch = batch.into();
    if batch.is_empty() {
        return Err(GpuError::EmptyBatch);
    }
    if starts.is_empty() {
        return Err(GpuError::EmptyStarts);
    }
    let m = batch.order();
    let n = batch.dim();
    if try_num_unique_entries(m, n).is_err() {
        return Err(GpuError::ShapeTooLarge { m, n });
    }

    let grid = GridConfig {
        num_blocks: batch.len(),
        threads_per_block: starts.len(),
        warp_size: device.warp_size,
    };
    let resources = KernelResources::sshopm(
        m,
        n,
        starts.len(),
        std::mem::size_of::<S>(),
        variant == GpuVariant::Unrolled,
    );
    let occupancy = Occupancy::compute(device, &resources);

    let solver = SsHopm::new(sshopm::Shift::Fixed(alpha)).with_policy(policy);
    let unrolled_kernels = UnrolledKernels::for_shape(m, n);
    if variant == GpuVariant::Unrolled && unrolled_kernels.is_none() {
        return Err(GpuError::NoUnrolledKernel { m, n });
    }
    // Tape kernels come from the process-wide registry, so repeated
    // launches (and chunked backends) reuse one generated tape per shape.
    let tape_kernels = match variant {
        GpuVariant::Tape => Some(
            kernelgen::KernelRegistry::global()
                .tape::<S>(m, n)
                .map_err(|_| GpuError::NoTapeKernel { m, n })?,
        ),
        _ => None,
    };

    let iter_counters = per_iteration_counters(m, n, variant);
    let iter_weight = per_iteration_weight(&iter_counters);
    let u = num_unique_entries(m, n);
    let inc = flops::distinct_incidences(m, n);

    let (results, stats) = run_grid(grid, |block| {
        let tensor = batch.get(block);
        // Cooperative staging of the tensor (and, for the general variant,
        // the index/coefficient tables) from global into shared memory.
        // The block's 15 (for the paper shape) values sit contiguously in
        // the arena at `block * stride`, so consecutive blocks read
        // adjacent, naturally aligned segments of device memory.
        let table_words = match variant {
            GpuVariant::General => u * m as u64 + u, // index reps + coeffs
            GpuVariant::Unrolled => 0,
            // Tape tables: axm factor offsets + coeffs, axm1 factor
            // offsets + output ranks + tensor ranks + coeffs.
            GpuVariant::Tape => u * m as u64 + u + inc * (m as u64 + 2),
        };
        // Consecutive threads load consecutive words: fully coalesced, so
        // the word count is the traffic (transactions only round up).
        let staging = OpCounters {
            global_loads: u + table_words,
            shared_stores: u + table_words,
            ..Default::default()
        };

        let records: Vec<ThreadRecord<Eigenpair<S>>> = starts
            .iter()
            .map(|x0| {
                let pair = match (variant, unrolled_kernels.as_ref(), tape_kernels.as_ref()) {
                    (GpuVariant::Unrolled, Some(k), _) => solver.solve_with(k, tensor, x0),
                    (GpuVariant::Tape, _, Some(k)) => solver.solve_with(&**k, tensor, x0),
                    _ => solver.solve_with(&GeneralKernels, tensor, x0),
                };
                // Scale the per-iteration counts by this thread's actual
                // iteration count.
                let iters = pair.iterations as u64;
                let mut counters = OpCounters {
                    fadd: iter_counters.fadd * iters,
                    fmul: iter_counters.fmul * iters,
                    ffma: iter_counters.ffma * iters,
                    fdiv: iter_counters.fdiv * iters,
                    fsqrt: iter_counters.fsqrt * iters,
                    int_ops: iter_counters.int_ops * iters,
                    shared_loads: iter_counters.shared_loads * iters,
                    shared_stores: iter_counters.shared_stores * iters,
                    global_loads: iter_counters.global_loads * iters,
                    global_stores: iter_counters.global_stores * iters,
                };
                // Final eigenvector/eigenvalue write-back to global memory.
                counters.global_stores += n as u64 + 1;
                ThreadRecord {
                    weighted_instructions: iter_weight * iters,
                    counters,
                    output: pair,
                }
            })
            .collect();
        (records, staging)
    });

    let useful_flops = stats.counters.useful_flops();
    let timing = estimate(device, grid.num_blocks, &stats, &occupancy);
    let gflops = timing.gflops(useful_flops);

    // The arena is contiguous, so the whole tensor payload goes down in a
    // single coalesced DMA (plus the shared starts); results come back in
    // one packed copy. A Vec-of-tensors layout would need one DMA per
    // tensor, paying the per-transfer latency `batch.len()` times.
    let elem = std::mem::size_of::<S>() as u64;
    let host_transfer = HostTransfer {
        down_bytes: (batch.values().len() + starts.len() * n) as u64 * elem,
        up_bytes: (batch.len() * starts.len()) as u64 * (n as u64 + 1) * elem,
        down_copies: 1,
        up_copies: 1,
    };

    // The launch as the device sees it: upload, compute, download — three
    // in-order ops on the caller's stream, scheduled lazily against the
    // device's engines.
    queue.enqueue(
        stream,
        Op::HostToDevice {
            bytes: host_transfer.down_bytes,
        },
    );
    queue.enqueue(
        stream,
        Op::Kernel {
            seconds: timing.seconds,
        },
    );
    queue.enqueue(
        stream,
        Op::DeviceToHost {
            bytes: host_transfer.up_bytes,
        },
    );

    Ok((
        GpuBatchResult { results },
        LaunchReport {
            variant,
            grid,
            resources,
            occupancy,
            stats,
            useful_flops,
            timing,
            gflops,
            host_transfer,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sshopm::starts::random_uniform_starts;
    use sshopm::BatchSolver;
    use symtensor::{SymTensor, TensorBatch};

    fn workload(t: usize, v: usize, seed: u64) -> (TensorBatch<f32>, Vec<Vec<f32>>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let tensors = TensorBatch::random(4, 3, t, &mut rng).unwrap();
        let starts = random_uniform_starts(3, v, &mut rng);
        (tensors, starts)
    }

    #[test]
    fn gpu_results_match_cpu_batch_exactly() {
        let (tensors, starts) = workload(8, 32, 1);
        let policy = IterationPolicy::Fixed(20);
        let device = DeviceSpec::tesla_c2050();
        let (gpu, _) =
            launch_sshopm(&device, &tensors, &starts, policy, 0.0, GpuVariant::General).unwrap();
        let cpu = BatchSolver::new(SsHopm::new(sshopm::Shift::Fixed(0.0)).with_policy(policy))
            .solve_sequential(&GeneralKernels, &tensors, &starts);
        for t in 0..8 {
            for v in 0..32 {
                assert_eq!(gpu.results[t][v].lambda, cpu.results[t][v].lambda);
                assert_eq!(gpu.results[t][v].x, cpu.results[t][v].x);
            }
        }
    }

    #[test]
    fn unrolled_variant_matches_unrolled_cpu() {
        let (tensors, starts) = workload(4, 32, 2);
        let policy = IterationPolicy::Fixed(15);
        let device = DeviceSpec::tesla_c2050();
        let (gpu, _) = launch_sshopm(
            &device,
            &tensors,
            &starts,
            policy,
            0.0,
            GpuVariant::Unrolled,
        )
        .unwrap();
        let k = UnrolledKernels::for_shape(4, 3).unwrap();
        let cpu = BatchSolver::new(SsHopm::new(sshopm::Shift::Fixed(0.0)).with_policy(policy))
            .solve_sequential(&k, &tensors, &starts);
        for t in 0..4 {
            for v in 0..32 {
                assert_eq!(gpu.results[t][v].lambda, cpu.results[t][v].lambda);
            }
        }
    }

    #[test]
    fn unrolled_is_faster_than_general() {
        let (tensors, starts) = workload(64, 128, 3);
        let policy = IterationPolicy::Fixed(20);
        let device = DeviceSpec::tesla_c2050();
        let (_, general) =
            launch_sshopm(&device, &tensors, &starts, policy, 0.0, GpuVariant::General).unwrap();
        let (_, unrolled) = launch_sshopm(
            &device,
            &tensors,
            &starts,
            policy,
            0.0,
            GpuVariant::Unrolled,
        )
        .unwrap();
        // Paper Table III(a): 18.7x on the GPU. The model should show a
        // large multiple (>4x) without hand-tuning to the exact figure.
        let speedup = general.timing.seconds / unrolled.timing.seconds;
        assert!(speedup > 4.0, "unrolled speedup only {speedup:.2}x");
        assert!(unrolled.gflops > general.gflops);
    }

    #[test]
    fn achieved_gflops_is_a_plausible_fraction_of_peak() {
        let (tensors, starts) = workload(1024, 128, 4);
        let policy = IterationPolicy::Fixed(20);
        let device = DeviceSpec::tesla_c2050();
        let (_, report) = launch_sshopm(
            &device,
            &tensors,
            &starts,
            policy,
            0.0,
            GpuVariant::Unrolled,
        )
        .unwrap();
        let frac = report.gflops / device.peak_sp_gflops();
        // Paper: 31% of peak. Accept a generous band around it.
        assert!(
            (0.1..=0.6).contains(&frac),
            "achieved fraction {frac:.3} ({:.1} GFLOPS)",
            report.gflops
        );
    }

    #[test]
    fn throughput_ramps_with_problem_size_then_saturates() {
        // Figure 5's GPU curve: small T underutilizes the device.
        let policy = IterationPolicy::Fixed(20);
        let device = DeviceSpec::tesla_c2050();
        let mut last = 0.0;
        let mut series = Vec::new();
        for t in [1usize, 4, 16, 64, 256, 1024] {
            let (tensors, starts) = workload(t, 128, 5);
            let (_, report) = launch_sshopm(
                &device,
                &tensors,
                &starts,
                policy,
                0.0,
                GpuVariant::Unrolled,
            )
            .unwrap();
            series.push((t, report.gflops));
            assert!(
                report.gflops >= last * 0.95,
                "throughput should not collapse as T grows: {series:?}"
            );
            last = report.gflops;
        }
        // Saturation: the last doubling gains little.
        let g256 = series[4].1;
        let g1024 = series[5].1;
        assert!(g1024 < g256 * 1.5, "{series:?}");
        // Ramp: 1024 tensors much faster than 1.
        assert!(g1024 > series[0].1 * 5.0, "{series:?}");
    }

    #[test]
    fn divergence_costs_show_up_with_convergence_policy() {
        let (tensors, starts) = workload(16, 64, 6);
        let device = DeviceSpec::tesla_c2050();
        let policy = IterationPolicy::Converge {
            tol: 1e-6,
            max_iters: 500,
        };
        let (_, report) = launch_sshopm(
            &device,
            &tensors,
            &starts,
            policy,
            0.2,
            GpuVariant::Unrolled,
        )
        .unwrap();
        // Different threads converge at different iterations: SIMD
        // efficiency strictly below 1.
        let eff = report.stats.simd_efficiency(32);
        assert!(eff < 1.0, "expected divergence, got efficiency {eff}");
        assert!(eff > 0.1, "efficiency implausibly low: {eff}");
    }

    #[test]
    fn report_carries_consistent_metadata() {
        let (tensors, starts) = workload(10, 32, 7);
        let device = DeviceSpec::tesla_c2050();
        let (res, report) = launch_sshopm(
            &device,
            &tensors,
            &starts,
            IterationPolicy::Fixed(5),
            0.0,
            GpuVariant::General,
        )
        .unwrap();
        assert_eq!(res.results.len(), 10);
        assert_eq!(res.results[0].len(), 32);
        assert_eq!(report.grid.num_blocks, 10);
        assert_eq!(report.grid.threads_per_block, 32);
        assert_eq!(report.variant.name(), "general");
        assert!(report.useful_flops > 0);
        assert!(report.gflops > 0.0);
        assert!(report.occupancy.blocks_per_sm > 0);
    }

    #[test]
    fn general_variant_moves_local_memory_traffic() {
        let (tensors, starts) = workload(8, 32, 8);
        let device = DeviceSpec::tesla_c2050();
        let policy = IterationPolicy::Fixed(10);
        let (_, g) =
            launch_sshopm(&device, &tensors, &starts, policy, 0.0, GpuVariant::General).unwrap();
        let (_, u) = launch_sshopm(
            &device,
            &tensors,
            &starts,
            policy,
            0.0,
            GpuVariant::Unrolled,
        )
        .unwrap();
        assert!(g.stats.counters.global_words() > 10 * u.stats.counters.global_words());
    }

    #[test]
    fn tape_variant_matches_cpu_tape_kernels_on_nongenerated_shape() {
        // (5, 4) has no build-time unrolled kernel; the tape variant still
        // runs it and agrees bit-for-bit with the CPU tape kernels.
        let mut rng = StdRng::seed_from_u64(21);
        let tensors = TensorBatch::<f32>::random(5, 4, 6, &mut rng).unwrap();
        let starts = random_uniform_starts(4, 32, &mut rng);
        let policy = IterationPolicy::Fixed(15);
        let device = DeviceSpec::tesla_c2050();
        let (gpu, report) =
            launch_sshopm(&device, &tensors, &starts, policy, 0.0, GpuVariant::Tape).unwrap();
        assert_eq!(report.variant.name(), "tape");
        let k = kernelgen::TapeKernels::<f32>::generate(5, 4).unwrap();
        let cpu = BatchSolver::new(SsHopm::new(sshopm::Shift::Fixed(0.0)).with_policy(policy))
            .solve_sequential(&k, &tensors, &starts);
        for t in 0..6 {
            for v in 0..32 {
                assert_eq!(gpu.results[t][v].lambda, cpu.results[t][v].lambda);
                assert_eq!(gpu.results[t][v].x, cpu.results[t][v].x);
            }
        }
    }

    #[test]
    fn tape_cost_sits_between_general_and_unrolled() {
        let (tensors, starts) = workload(64, 128, 13);
        let policy = IterationPolicy::Fixed(20);
        let device = DeviceSpec::tesla_c2050();
        let (_, general) =
            launch_sshopm(&device, &tensors, &starts, policy, 0.0, GpuVariant::General).unwrap();
        let (_, tape) =
            launch_sshopm(&device, &tensors, &starts, policy, 0.0, GpuVariant::Tape).unwrap();
        let (_, unrolled) = launch_sshopm(
            &device,
            &tensors,
            &starts,
            policy,
            0.0,
            GpuVariant::Unrolled,
        )
        .unwrap();
        // The tape removes the integer index bookkeeping but keeps the
        // spilled-vector traffic, so its *instruction* cost sits strictly
        // between the two paper variants...
        assert!(
            general.timing.compute_seconds > tape.timing.compute_seconds,
            "general compute {:.3e}s vs tape {:.3e}s",
            general.timing.compute_seconds,
            tape.timing.compute_seconds
        );
        assert!(
            tape.timing.compute_seconds > unrolled.timing.compute_seconds,
            "tape compute {:.3e}s vs unrolled {:.3e}s",
            tape.timing.compute_seconds,
            unrolled.timing.compute_seconds
        );
        // ...while a memory-bound launch stays general-like (the spill is
        // unchanged; only slightly larger tables are staged) and both stay
        // well above unrolled, which removes the spill entirely.
        assert!(
            tape.timing.seconds <= general.timing.seconds * 1.01,
            "tape {:.3e}s vs general {:.3e}s",
            tape.timing.seconds,
            general.timing.seconds
        );
        assert!(
            tape.timing.seconds > unrolled.timing.seconds * 2.0,
            "tape {:.3e}s vs unrolled {:.3e}s",
            tape.timing.seconds,
            unrolled.timing.seconds
        );
    }

    #[test]
    fn tape_errors_for_unsupported_shape() {
        // (5, 40) overflows the tape generator's slot cap: the shape is a
        // valid tensor but no tape can be generated for it.
        assert!(!kernelgen::tape_supported(5, 40));
        let mut rng = StdRng::seed_from_u64(22);
        let tensors = TensorBatch::<f32>::random(5, 40, 1, &mut rng).unwrap();
        let starts = random_uniform_starts(40, 8, &mut rng);
        let device = DeviceSpec::tesla_c2050();
        let err = launch_sshopm(
            &device,
            &tensors,
            &starts,
            IterationPolicy::Fixed(5),
            0.0,
            GpuVariant::Tape,
        )
        .unwrap_err();
        assert_eq!(err, GpuError::NoTapeKernel { m: 5, n: 40 });
    }

    #[test]
    fn unrolled_errors_for_ungenerated_shape() {
        let mut rng = StdRng::seed_from_u64(9);
        let tensors = TensorBatch::<f32>::random(5, 5, 1, &mut rng).unwrap();
        let starts = random_uniform_starts(5, 32, &mut rng);
        let device = DeviceSpec::tesla_c2050();
        let err = launch_sshopm(
            &device,
            &tensors,
            &starts,
            IterationPolicy::Fixed(5),
            0.0,
            GpuVariant::Unrolled,
        )
        .unwrap_err();
        assert_eq!(err, GpuError::NoUnrolledKernel { m: 5, n: 5 });
    }

    #[test]
    fn mixed_shapes_are_rejected_at_batch_construction() {
        // A mixed-shape launch is now structurally impossible: the batch
        // arena rejects the stray tensor before any device is involved.
        let mut rng = StdRng::seed_from_u64(10);
        let mut batch = TensorBatch::<f32>::new(4, 3).unwrap();
        batch
            .push(&SymTensor::<f32>::random(4, 3, &mut rng))
            .unwrap();
        let err = batch
            .push(&SymTensor::<f32>::random(3, 3, &mut rng))
            .unwrap_err();
        assert_eq!(
            err,
            symtensor::Error::ShapeMismatch {
                expected: (4, 3),
                found: (3, 3)
            }
        );
        assert_eq!(batch.len(), 1, "the bad tensor must not be staged");
    }

    #[test]
    fn host_transfer_is_one_coalesced_copy_each_way() {
        let (tensors, starts) = workload(8, 32, 12);
        let device = DeviceSpec::tesla_c2050();
        let (_, report) = launch_sshopm(
            &device,
            &tensors,
            &starts,
            IterationPolicy::Fixed(5),
            0.0,
            GpuVariant::General,
        )
        .unwrap();
        let ht = report.host_transfer;
        assert_eq!(ht.down_copies, 1);
        assert_eq!(ht.up_copies, 1);
        // 8 tensors x 15 packed entries + 32 starts of 3 floats, f32.
        assert_eq!(ht.down_bytes, (8 * 15 + 32 * 3) * 4);
        assert_eq!(ht.up_bytes, 8 * 32 * (3 + 1) * 4);
    }

    #[test]
    fn empty_batch_and_empty_starts_error_cleanly() {
        let device = DeviceSpec::tesla_c2050();
        let none = TensorBatch::<f32>::new(4, 3).unwrap();
        let starts = vec![vec![1.0f32, 0.0, 0.0]];
        let err = launch_sshopm(
            &device,
            &none,
            &starts,
            IterationPolicy::Fixed(5),
            0.0,
            GpuVariant::General,
        )
        .unwrap_err();
        assert_eq!(err, GpuError::EmptyBatch);

        let mut rng = StdRng::seed_from_u64(11);
        let tensors = TensorBatch::<f32>::random(4, 3, 1, &mut rng).unwrap();
        let no_starts: Vec<Vec<f32>> = Vec::new();
        let err = launch_sshopm(
            &device,
            &tensors,
            &no_starts,
            IterationPolicy::Fixed(5),
            0.0,
            GpuVariant::General,
        )
        .unwrap_err();
        assert_eq!(err, GpuError::EmptyStarts);
    }
}
