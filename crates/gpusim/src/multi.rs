//! Multi-GPU launches and host↔device transfer accounting.
//!
//! Section V-B of the paper: "for larger numbers of tensors, this approach
//! generalizes to a system with multiple GPUs" — the tensors are
//! independent, so the batch splits across devices with no communication.
//! This module implements that split (work divided proportionally to each
//! device's peak throughput) plus the piece the paper's timings exclude:
//! moving the tensors to the device and the eigenpairs back over PCIe.

use crate::device::DeviceSpec;
use crate::error::GpuError;
use crate::kernel::{enqueue_sshopm, GpuBatchResult, GpuVariant, LaunchReport};
use crate::stream::{StreamQueue, Timeline};
use sshopm::IterationPolicy;
use symtensor::multinomial::num_unique_entries;
use symtensor::{Scalar, TensorBatchRef};

/// Host↔device interconnect model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferModel {
    /// Sustained bandwidth in GB/s (PCIe 2.0 x16 ≈ 6 GB/s effective, the
    /// C2050's bus; PCIe 3.0 x16 ≈ 12).
    pub bandwidth_gbs: f64,
    /// Fixed per-transfer latency in seconds (DMA setup + driver).
    pub latency_s: f64,
}

impl TransferModel {
    /// The Tesla C2050's PCIe 2.0 x16 link.
    pub fn pcie2() -> Self {
        Self {
            bandwidth_gbs: 6.0,
            latency_s: 10e-6,
        }
    }

    /// A QDR-InfiniBand-class NIC (the cluster interconnect of the
    /// paper's era): ~4 GB/s sustained, microsecond-scale latency. The
    /// default inter-host link of [`crate::topology::Host`].
    pub fn qdr_infiniband() -> Self {
        Self {
            bandwidth_gbs: 4.0,
            latency_s: 2e-6,
        }
    }

    /// Time to move `bytes` in one transfer.
    pub fn transfer_seconds(&self, bytes: u64) -> f64 {
        self.latency_s + bytes as f64 / (self.bandwidth_gbs * 1e9)
    }
}

/// One launch's host↔device staging: how many DMA operations it takes and
/// the bytes they move. Because the batch lives in a single contiguous
/// arena ([`symtensor::TensorBatch`]), the tensor payload goes down in ONE
/// coalesced copy; a `Vec<SymTensor>` layout would pay
/// [`TransferModel::latency_s`] once per tensor instead. This is the
/// memory-layout point of the paper's Section V: the device wants one flat,
/// densely packed buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostTransfer {
    /// Bytes staged host→device: the packed tensor arena plus the shared
    /// starting vectors.
    pub down_bytes: u64,
    /// Bytes returned device→host: one packed `(x, λ)` record per solve.
    pub up_bytes: u64,
    /// DMA operations host→device (1 for an arena-backed batch).
    pub down_copies: u64,
    /// DMA operations device→host (1: results are written packed).
    pub up_copies: u64,
}

impl HostTransfer {
    /// Total bytes both ways.
    pub fn total_bytes(&self) -> u64 {
        self.down_bytes + self.up_bytes
    }
}

/// Bytes shipped for a batched problem: tensors + shared starts down,
/// eigenpairs (vector + value per thread) back. `elem` is the scalar size.
pub fn problem_traffic_bytes(
    num_tensors: usize,
    num_starts: usize,
    m: usize,
    n: usize,
    elem: usize,
) -> (u64, u64) {
    let u = num_unique_entries(m, n);
    let down = (num_tensors as u64 * u + (num_starts * n) as u64) * elem as u64;
    let up = (num_tensors * num_starts) as u64 * (n as u64 + 1) * elem as u64;
    (down, up)
}

/// Per-device slice of a multi-GPU launch.
#[derive(Debug, Clone)]
pub struct DeviceSlice {
    /// Index into the device list.
    pub device_index: usize,
    /// Tensors assigned to this device.
    pub num_tensors: usize,
    /// The device's own launch report.
    pub report: LaunchReport,
    /// Host→device + device→host transfer time for this slice.
    pub transfer_seconds: f64,
    /// Kernel + transfer time for this slice.
    pub total_seconds: f64,
}

/// Aggregate result of a multi-GPU launch.
#[derive(Debug, Clone)]
pub struct MultiReport {
    /// One entry per device that received work.
    pub slices: Vec<DeviceSlice>,
    /// Wall-clock estimate: the event timeline's makespan (devices run
    /// concurrently; streams overlap transfers with compute).
    pub seconds: f64,
    /// Total useful flops across devices.
    pub useful_flops: u64,
    /// Aggregate achieved GFLOP/s (flops / wall-clock).
    pub gflops: f64,
    /// The resolved event timeline behind `seconds`: every transfer and
    /// kernel op with its modeled start/end.
    pub timeline: Timeline,
}

/// A set of devices sharing one host.
#[derive(Debug, Clone)]
pub struct MultiGpu {
    devices: Vec<DeviceSpec>,
    transfer: TransferModel,
}

impl MultiGpu {
    /// A multi-GPU host. Devices may be heterogeneous.
    ///
    /// # Errors
    /// Returns [`GpuError::EmptyDeviceList`] if the device list is empty —
    /// a malformed spec must surface as an error, not abort the process.
    pub fn new(devices: Vec<DeviceSpec>, transfer: TransferModel) -> Result<Self, GpuError> {
        if devices.is_empty() {
            return Err(GpuError::EmptyDeviceList);
        }
        Ok(Self { devices, transfer })
    }

    /// `count` identical devices.
    ///
    /// # Errors
    /// Returns [`GpuError::EmptyDeviceList`] if `count` is zero.
    pub fn homogeneous(
        device: DeviceSpec,
        count: usize,
        transfer: TransferModel,
    ) -> Result<Self, GpuError> {
        Self::new(vec![device; count], transfer)
    }

    /// The device set of one cluster [`Host`](crate::topology::Host),
    /// timed against that host's own PCIe link.
    ///
    /// # Errors
    /// Returns [`GpuError::EmptyDeviceList`] if the host has no devices
    /// (unreachable for hosts built through `topology`'s constructors,
    /// which reject empty device lists up front).
    pub fn for_host(host: &crate::topology::Host) -> Result<Self, GpuError> {
        Self::new(host.devices.clone(), host.pcie)
    }

    /// The devices.
    pub fn devices(&self) -> &[DeviceSpec] {
        &self.devices
    }

    /// Split `total` tensors across devices proportionally to peak
    /// throughput (every device gets at least one while tensors remain).
    pub fn split(&self, total: usize) -> Vec<usize> {
        let peaks: Vec<f64> = self.devices.iter().map(|d| d.peak_sp_gflops()).collect();
        let sum: f64 = peaks.iter().sum();
        let mut counts: Vec<usize> = peaks
            .iter()
            .map(|p| ((p / sum) * total as f64).floor() as usize)
            .collect();
        // Distribute the remainder to the fastest devices first.
        let mut assigned: usize = counts.iter().sum();
        let mut order: Vec<usize> = (0..self.devices.len()).collect();
        order.sort_by(|&a, &b| peaks[b].total_cmp(&peaks[a]));
        let mut i = 0;
        while assigned < total {
            counts[order[i % order.len()]] += 1;
            assigned += 1;
            i += 1;
        }
        counts
    }

    /// Launch the batched SS-HOPM problem across all devices.
    ///
    /// Each device's slice goes through one stream (upload → kernel →
    /// download, in order), so the wall-clock is the slowest device's
    /// kernel-plus-transfer chain — devices run concurrently, and
    /// transfers to distinct devices use distinct PCIe lanes, as on real
    /// multi-GPU boards. Results come back in the original tensor order.
    ///
    /// # Errors
    /// Returns a [`GpuError`] for an empty batch or any per-device launch
    /// failure (empty starts, mixed shapes, missing unrolled kernel).
    pub fn launch<'a, S: Scalar>(
        &self,
        batch: impl Into<TensorBatchRef<'a, S>>,
        starts: &[Vec<S>],
        policy: IterationPolicy,
        alpha: f64,
        variant: GpuVariant,
    ) -> Result<(GpuBatchResult<S>, MultiReport), GpuError> {
        self.launch_streamed(batch.into(), starts, policy, alpha, variant, None, 1)
    }

    /// Launch with double-buffered chunking: each device's slice is cut
    /// into `chunk_tensors`-sized pieces dealt round-robin across
    /// `streams_per_device` streams, so chunk `k+1`'s upload overlaps
    /// chunk `k`'s kernel (and downloads interleave on the copy engine).
    /// With one stream per device this degenerates to
    /// [`launch`](MultiGpu::launch) plus per-chunk launch overhead.
    ///
    /// Results are bitwise identical to the synchronous path — chunking
    /// changes the clock, never the arithmetic.
    ///
    /// # Errors
    /// Same contract as [`launch`](MultiGpu::launch).
    #[allow(clippy::too_many_arguments)]
    pub fn launch_pipelined<'a, S: Scalar>(
        &self,
        batch: impl Into<TensorBatchRef<'a, S>>,
        starts: &[Vec<S>],
        policy: IterationPolicy,
        alpha: f64,
        variant: GpuVariant,
        chunk_tensors: usize,
        streams_per_device: usize,
    ) -> Result<(GpuBatchResult<S>, MultiReport), GpuError> {
        self.launch_streamed(
            batch.into(),
            starts,
            policy,
            alpha,
            variant,
            Some(chunk_tensors.max(1)),
            streams_per_device.max(1),
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn launch_streamed<S: Scalar>(
        &self,
        batch: TensorBatchRef<'_, S>,
        starts: &[Vec<S>],
        policy: IterationPolicy,
        alpha: f64,
        variant: GpuVariant,
        chunk_tensors: Option<usize>,
        streams_per_device: usize,
    ) -> Result<(GpuBatchResult<S>, MultiReport), GpuError> {
        if batch.is_empty() {
            return Err(GpuError::EmptyBatch);
        }
        let counts = self.split(batch.len());
        let mut queue = StreamQueue::new(self.devices.len(), self.transfer);

        let mut results = Vec::with_capacity(batch.len());
        // (device_index, tensors, merged report) per device with work;
        // transfer/total seconds are read off the timeline afterwards.
        let mut merged: Vec<(usize, usize, LaunchReport)> = Vec::new();
        let mut offset = 0usize;
        let mut useful_flops = 0u64;

        for (device_index, (&count, device)) in counts.iter().zip(&self.devices).enumerate() {
            if count == 0 {
                continue;
            }
            // Zero-copy arena slice: the device's share is a contiguous
            // sub-range of the same buffer; each chunk of it ships in one
            // DMA from the same memory.
            let slice = batch.slice(offset..offset + count);
            offset += count;
            let streams: Vec<_> = (0..streams_per_device)
                .map(|_| queue.stream(device_index))
                .collect();
            let chunk_size = chunk_tensors.unwrap_or(count);
            let mut device_report: Option<LaunchReport> = None;
            let mut lo = 0usize;
            let mut chunk_index = 0usize;
            while lo < count {
                let hi = (lo + chunk_size).min(count);
                let (res, report) = enqueue_sshopm(
                    &mut queue,
                    streams[chunk_index % streams.len()],
                    device,
                    slice.slice(lo..hi),
                    starts,
                    policy,
                    alpha,
                    variant,
                )?;
                results.extend(res.results);
                useful_flops += report.useful_flops;
                device_report = Some(match device_report {
                    None => report,
                    Some(acc) => merge_reports(acc, &report),
                });
                lo = hi;
                chunk_index += 1;
            }
            if let Some(report) = device_report {
                merged.push((device_index, count, report));
            }
        }

        let timeline = queue.synchronize();
        let wall = timeline.makespan();
        let slices = merged
            .into_iter()
            .map(|(device_index, num_tensors, report)| DeviceSlice {
                device_index,
                num_tensors,
                report,
                transfer_seconds: timeline.copy_seconds(device_index),
                total_seconds: timeline.device_busy_seconds(device_index),
            })
            .collect();
        let gflops = if wall > 0.0 {
            useful_flops as f64 / wall / 1e9
        } else {
            0.0
        };
        Ok((
            GpuBatchResult { results },
            MultiReport {
                slices,
                seconds: wall,
                useful_flops,
                gflops,
                timeline,
            },
        ))
    }
}

/// Merge two launch reports of the *same device and variant* (successive
/// chunks of one slice) into one per-device report: counts, stats, flops
/// and serial kernel seconds add up; occupancy/resources are per-launch
/// constants and carry over.
fn merge_reports(mut acc: LaunchReport, next: &LaunchReport) -> LaunchReport {
    acc.grid.num_blocks += next.grid.num_blocks;
    acc.stats.counters.merge(&next.stats.counters);
    acc.stats.warp_serial_instructions += next.stats.warp_serial_instructions;
    acc.stats.thread_instructions += next.stats.thread_instructions;
    acc.stats.num_warps += next.stats.num_warps;
    acc.useful_flops += next.useful_flops;
    // Kernel time on one device is serial regardless of streams (one
    // compute engine), so seconds add; per-chunk launch overhead is
    // already inside each estimate.
    let (sa, sb) = (acc.timing.seconds, next.timing.seconds);
    acc.timing.compute_seconds += next.timing.compute_seconds;
    acc.timing.memory_seconds += next.timing.memory_seconds;
    acc.timing.seconds += next.timing.seconds;
    if sa + sb > 0.0 {
        acc.timing.issue_efficiency =
            (acc.timing.issue_efficiency * sa + next.timing.issue_efficiency * sb) / (sa + sb);
    }
    acc.timing.active_sms = acc.timing.active_sms.max(next.timing.active_sms);
    acc.gflops = acc.timing.gflops(acc.useful_flops);
    acc.host_transfer.down_bytes += next.host_transfer.down_bytes;
    acc.host_transfer.up_bytes += next.host_transfer.up_bytes;
    acc.host_transfer.down_copies += next.host_transfer.down_copies;
    acc.host_transfer.up_copies += next.host_transfer.up_copies;
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::launch_sshopm;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sshopm::starts::random_uniform_starts;
    use symtensor::TensorBatch;

    fn workload(t: usize, v: usize, seed: u64) -> (TensorBatch<f32>, Vec<Vec<f32>>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let tensors = TensorBatch::random(4, 3, t, &mut rng).unwrap();
        let starts = random_uniform_starts(3, v, &mut rng);
        (tensors, starts)
    }

    #[test]
    fn split_is_exact_and_proportional() {
        let mg =
            MultiGpu::homogeneous(DeviceSpec::tesla_c2050(), 4, TransferModel::pcie2()).unwrap();
        let counts = mg.split(1024);
        assert_eq!(counts.iter().sum::<usize>(), 1024);
        assert_eq!(counts, vec![256; 4]);
    }

    #[test]
    fn heterogeneous_split_favors_faster_device() {
        let mg = MultiGpu::new(
            vec![DeviceSpec::tesla_c2050(), DeviceSpec::tesla_c1060()],
            TransferModel::pcie2(),
        )
        .unwrap();
        let counts = mg.split(100);
        assert_eq!(counts.iter().sum::<usize>(), 100);
        assert!(counts[0] > counts[1], "{counts:?}");
    }

    #[test]
    fn multi_gpu_results_match_single_gpu() {
        let (tensors, starts) = workload(16, 32, 1);
        let policy = IterationPolicy::Fixed(10);
        let single = DeviceSpec::tesla_c2050();
        let (base, _) = launch_sshopm(
            &single,
            &tensors,
            &starts,
            policy,
            0.0,
            GpuVariant::Unrolled,
        )
        .unwrap();
        let mg = MultiGpu::homogeneous(single, 4, TransferModel::pcie2()).unwrap();
        let (multi, report) = mg
            .launch(&tensors, &starts, policy, 0.0, GpuVariant::Unrolled)
            .unwrap();
        assert_eq!(multi.results.len(), 16);
        for t in 0..16 {
            for v in 0..32 {
                assert_eq!(multi.results[t][v].lambda, base.results[t][v].lambda);
            }
        }
        assert_eq!(report.slices.len(), 4);
    }

    #[test]
    fn two_gpus_are_faster_than_one_at_scale() {
        let (tensors, starts) = workload(512, 128, 2);
        let policy = IterationPolicy::Fixed(20);
        let one =
            MultiGpu::homogeneous(DeviceSpec::tesla_c2050(), 1, TransferModel::pcie2()).unwrap();
        let two =
            MultiGpu::homogeneous(DeviceSpec::tesla_c2050(), 2, TransferModel::pcie2()).unwrap();
        let (_, r1) = one
            .launch(&tensors, &starts, policy, 0.0, GpuVariant::Unrolled)
            .unwrap();
        let (_, r2) = two
            .launch(&tensors, &starts, policy, 0.0, GpuVariant::Unrolled)
            .unwrap();
        let speedup = r1.seconds / r2.seconds;
        assert!(
            speedup > 1.5,
            "2 GPUs should approach 2x at 512 tensors, got {speedup:.2}"
        );
    }

    #[test]
    fn tiny_batches_do_not_benefit_from_more_gpus() {
        let (tensors, starts) = workload(2, 32, 3);
        let policy = IterationPolicy::Fixed(5);
        let one =
            MultiGpu::homogeneous(DeviceSpec::tesla_c2050(), 1, TransferModel::pcie2()).unwrap();
        let four =
            MultiGpu::homogeneous(DeviceSpec::tesla_c2050(), 4, TransferModel::pcie2()).unwrap();
        let (_, r1) = one
            .launch(&tensors, &starts, policy, 0.0, GpuVariant::Unrolled)
            .unwrap();
        let (_, r4) = four
            .launch(&tensors, &starts, policy, 0.0, GpuVariant::Unrolled)
            .unwrap();
        // Fixed transfer latency and launch overhead dominate; no big win.
        assert!(
            r4.seconds > r1.seconds * 0.4,
            "{} vs {}",
            r4.seconds,
            r1.seconds
        );
    }

    #[test]
    fn transfer_traffic_accounting() {
        // 8 tensors (15 entries) + 32 starts of 3 floats down; 8*32 pairs
        // of (3+1) floats up. f32 = 4 bytes.
        let (down, up) = problem_traffic_bytes(8, 32, 4, 3, 4);
        assert_eq!(down, (8 * 15 + 32 * 3) * 4);
        assert_eq!(up, 8 * 32 * 4 * 4);
        let tm = TransferModel::pcie2();
        let t = tm.transfer_seconds(down);
        assert!(t > tm.latency_s);
        assert!(t < tm.latency_s + 1e-5);
    }

    #[test]
    fn transfer_share_is_bounded_and_dominated_by_results() {
        // Result traffic scales with tensors x starts — the same scaling as
        // the compute — so the transfer share tends to a *constant*
        // fraction rather than vanishing; the model must keep it modest
        // (kernel-bound overall) and attribute most bytes to the upload of
        // results, not the tensor download.
        let policy = IterationPolicy::Fixed(20);
        let mg =
            MultiGpu::homogeneous(DeviceSpec::tesla_c2050(), 1, TransferModel::pcie2()).unwrap();
        for t in [64usize, 1024] {
            let (tensors, starts) = workload(t, 128, 4);
            let (_, report) = mg
                .launch(&tensors, &starts, policy, 0.0, GpuVariant::Unrolled)
                .unwrap();
            let slice = &report.slices[0];
            let share = slice.transfer_seconds / slice.total_seconds;
            assert!(share < 0.5, "T={t}: transfer share {share:.3}");
            let (down, up) = problem_traffic_bytes(t, 128, 4, 3, 4);
            assert!(up > 5 * down, "T={t}: results dominate traffic");
        }
    }

    /// Regression pin (satellite): the pipeline refactor must not shift
    /// the Table II/III baselines by silently retuning the link model.
    #[test]
    fn pcie2_constants_are_pinned() {
        let tm = TransferModel::pcie2();
        assert_eq!(tm.bandwidth_gbs, 6.0);
        assert_eq!(tm.latency_s, 10e-6);
        assert_eq!(tm.transfer_seconds(0), 10e-6);
        // 6 GB at 6 GB/s: one second plus the DMA setup.
        assert!((tm.transfer_seconds(6_000_000_000) - (1.0 + 10e-6)).abs() < 1e-12);
    }

    /// The stream scheduler must reproduce the old serial
    /// `transfer + compute` sum exactly when there is nothing to overlap:
    /// one stream per device means upload → kernel → download back to
    /// back, so the makespan equals kernel seconds plus both copies.
    #[test]
    fn synchronous_timeline_equals_serial_transfer_plus_compute() {
        let (tensors, starts) = workload(64, 32, 21);
        let mg =
            MultiGpu::homogeneous(DeviceSpec::tesla_c2050(), 1, TransferModel::pcie2()).unwrap();
        let (_, report) = mg
            .launch(
                &tensors,
                &starts,
                IterationPolicy::Fixed(10),
                0.0,
                GpuVariant::Unrolled,
            )
            .unwrap();
        assert_eq!(report.timeline.ops.len(), 3);
        let slice = &report.slices[0];
        let ht = slice.report.host_transfer;
        let tm = TransferModel::pcie2();
        let serial = slice.report.timing.seconds
            + tm.transfer_seconds(ht.down_bytes)
            + tm.transfer_seconds(ht.up_bytes);
        assert!(
            (report.seconds - serial).abs() < 1e-12,
            "makespan {} vs serial {}",
            report.seconds,
            serial
        );
        assert_eq!(slice.total_seconds, report.seconds);
        assert!(
            (slice.transfer_seconds
                - (tm.transfer_seconds(ht.down_bytes) + tm.transfer_seconds(ht.up_bytes)))
            .abs()
                < 1e-15
        );
    }

    #[test]
    fn pipelined_results_are_bitwise_identical_to_synchronous() {
        let (tensors, starts) = workload(300, 32, 22);
        let policy = IterationPolicy::Fixed(8);
        let mg =
            MultiGpu::homogeneous(DeviceSpec::tesla_c2050(), 2, TransferModel::pcie2()).unwrap();
        let (sync, _) = mg
            .launch(&tensors, &starts, policy, 0.0, GpuVariant::Unrolled)
            .unwrap();
        let (piped, report) = mg
            .launch_pipelined(&tensors, &starts, policy, 0.0, GpuVariant::Unrolled, 64, 2)
            .unwrap();
        assert_eq!(piped.results.len(), sync.results.len());
        for (t, (a, b)) in piped.results.iter().zip(&sync.results).enumerate() {
            for (v, (pa, pb)) in a.iter().zip(b).enumerate() {
                assert_eq!(pa.lambda.to_bits(), pb.lambda.to_bits(), "t{t} v{v}");
                for (xa, xb) in pa.x.iter().zip(&pb.x) {
                    assert_eq!(xa.to_bits(), xb.to_bits(), "t{t} v{v}");
                }
            }
        }
        // Both devices split the work and chunked it: 150 tensors / 64 →
        // 3 chunks each, 3 ops per chunk.
        assert_eq!(report.timeline.ops.len(), 2 * 3 * 3);
    }

    /// Regression pin (satellite): chunked paths charge the launch
    /// overhead per *chunk*, not per batch — each chunk's kernel estimate
    /// carries its own `LAUNCH_OVERHEAD_S`.
    #[test]
    fn pipelined_charges_launch_overhead_per_chunk() {
        use crate::timing::LAUNCH_OVERHEAD_S;
        let (tensors, starts) = workload(512, 32, 23);
        let policy = IterationPolicy::Fixed(5);
        let mg =
            MultiGpu::homogeneous(DeviceSpec::tesla_c2050(), 1, TransferModel::pcie2()).unwrap();
        let (_, sync) = mg
            .launch(&tensors, &starts, policy, 0.0, GpuVariant::Unrolled)
            .unwrap();
        let (_, piped) = mg
            .launch_pipelined(&tensors, &starts, policy, 0.0, GpuVariant::Unrolled, 128, 1)
            .unwrap();
        // 4 chunks: 3 more launch overheads than the single launch.
        let extra = piped.slices[0].report.timing.seconds - sync.slices[0].report.timing.seconds;
        assert!(
            extra >= 3.0 * LAUNCH_OVERHEAD_S * 0.999,
            "per-chunk overhead missing: extra kernel time {extra:e}"
        );
    }

    #[test]
    fn double_buffering_beats_synchronous_at_scale() {
        // Enough result traffic that hiding downloads behind kernels pays
        // for the extra per-chunk launch overheads.
        let (tensors, starts) = workload(2048, 64, 24);
        let policy = IterationPolicy::Fixed(5);
        let mg =
            MultiGpu::homogeneous(DeviceSpec::tesla_c2050(), 1, TransferModel::pcie2()).unwrap();
        let (_, sync) = mg
            .launch(&tensors, &starts, policy, 0.0, GpuVariant::Unrolled)
            .unwrap();
        let (_, piped) = mg
            .launch_pipelined(&tensors, &starts, policy, 0.0, GpuVariant::Unrolled, 256, 2)
            .unwrap();
        assert!(
            piped.seconds < sync.seconds,
            "pipelined {} >= synchronous {}",
            piped.seconds,
            sync.seconds
        );
        assert!(piped.timeline.overlap_seconds() > 0.0);
    }

    #[test]
    fn empty_device_list_is_an_error_not_a_panic() {
        let err = MultiGpu::new(vec![], TransferModel::pcie2()).unwrap_err();
        assert_eq!(err, GpuError::EmptyDeviceList);
        let err = MultiGpu::homogeneous(DeviceSpec::tesla_c2050(), 0, TransferModel::pcie2())
            .unwrap_err();
        assert_eq!(err, GpuError::EmptyDeviceList);
    }

    #[test]
    fn empty_batch_is_an_error_not_a_panic() {
        let mg =
            MultiGpu::homogeneous(DeviceSpec::tesla_c2050(), 2, TransferModel::pcie2()).unwrap();
        let none = TensorBatch::<f32>::new(4, 3).unwrap();
        let starts = vec![vec![1.0f32, 0.0, 0.0]];
        let err = mg
            .launch(
                &none,
                &starts,
                IterationPolicy::Fixed(5),
                0.0,
                GpuVariant::General,
            )
            .unwrap_err();
        assert_eq!(err, GpuError::EmptyBatch);
    }
}
