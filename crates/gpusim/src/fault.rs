//! Deterministic, seed-driven fault injection for simulated launches.
//!
//! Real Fermi-era hardware misbehaves in ways the functional simulator never
//! did: ECC scrubbing flips memory bits, the kernel watchdog kills
//! long-running launches, PCIe transfers fail, and whole boards drop off the
//! bus. A [`FaultPlan`] reproduces those behaviors *deterministically*: every
//! draw is a pure hash of `(seed, device, chunk, attempt, kind)`, so a given
//! seed always injects the same faults into the same launch sites — failures
//! are replayable from the command line (`--faults seed=42,ecc=0.01,...`).
//!
//! The plan only *decides* what goes wrong; reacting to it (retry, failover,
//! re-solve) is the job of the `backend` crate's `ResilientBackend`.

use symtensor::{Scalar, SymTensor};

/// Modeled wall-clock cost of a kernel watchdog timeout, in seconds.
///
/// Fermi's display watchdog kills kernels after roughly two seconds; a
/// launch that trips it wastes that long before the host notices.
pub const WATCHDOG_TIMEOUT_SECONDS: f64 = 2.0;

/// Base delay for exponential retry backoff, in seconds. Attempt `k`
/// (0-based) waits `BACKOFF_BASE_SECONDS * 2^k` before re-launching.
pub const BACKOFF_BASE_SECONDS: f64 = 0.05;

/// The kinds of hardware fault the simulator can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A memory bit-flip: one packed tensor entry is corrupted to NaN
    /// before the launch reads it (detectable in the results).
    EccCorruption,
    /// The kernel watchdog killed the launch; no results were produced.
    WatchdogTimeout,
    /// The host-to-device (or device-to-host) transfer failed; the launch
    /// never ran.
    TransferFailure,
    /// The whole device dropped off the bus. Device loss is *sticky*: once
    /// a device is lost it stays lost for the rest of the batch.
    DeviceLoss,
    /// The whole *host* dropped out of the cluster (kernel panic, power,
    /// NIC partition): every device it owns is lost at once, equally
    /// sticky. On a single-host topology this is total device loss.
    HostLoss,
}

impl FaultKind {
    /// All fault kinds, for sweeps and reports.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::EccCorruption,
        FaultKind::WatchdogTimeout,
        FaultKind::TransferFailure,
        FaultKind::DeviceLoss,
        FaultKind::HostLoss,
    ];

    /// Short name for logs and CLI specs.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::EccCorruption => "ecc",
            FaultKind::WatchdogTimeout => "watchdog",
            FaultKind::TransferFailure => "transfer",
            FaultKind::DeviceLoss => "device-loss",
            FaultKind::HostLoss => "host-loss",
        }
    }

    fn salt(&self) -> u64 {
        match self {
            FaultKind::EccCorruption => 0x45CC,
            FaultKind::WatchdogTimeout => 0xD06,
            FaultKind::TransferFailure => 0x7274,
            FaultKind::DeviceLoss => 0xDEAD,
            FaultKind::HostLoss => 0x4057,
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Where a fault draw happens: one launch attempt of one chunk on one
/// device. Draws at distinct sites are independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSite {
    /// Index of the device the chunk is (currently) assigned to.
    pub device_index: usize,
    /// Index of the chunk within the batch.
    pub chunk_index: usize,
    /// 0-based attempt number for this chunk (increments on retry/failover).
    pub attempt: u32,
}

/// One fault the plan injected, for the `FaultLog` ledger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    /// What went wrong.
    pub kind: FaultKind,
    /// Device the fault hit.
    pub device_index: usize,
    /// Chunk whose launch was hit.
    pub chunk_index: usize,
    /// Attempt number the fault hit.
    pub attempt: u32,
    /// For ECC corruption: the chunk-local index of the poisoned tensor.
    pub tensor_index: Option<usize>,
}

/// A deterministic, seed-driven schedule of injected faults.
///
/// Each fault kind has an independent per-attempt probability; whether a
/// given `(device, chunk, attempt)` site trips a kind is a pure function of
/// the seed, so runs are bit-for-bit replayable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed for the deterministic draws.
    pub seed: u64,
    /// Per-attempt probability of ECC corruption of one tensor.
    pub ecc: f64,
    /// Per-attempt probability of a watchdog timeout.
    pub watchdog: f64,
    /// Per-attempt probability of a transfer failure.
    pub transfer: f64,
    /// Per-attempt probability of losing the device outright.
    pub device_loss: f64,
    /// Per-attempt probability of losing the chunk's whole host (all of
    /// its devices at once).
    pub host_loss: f64,
}

impl FaultPlan {
    /// A plan that injects nothing (all probabilities zero).
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            ecc: 0.0,
            watchdog: 0.0,
            transfer: 0.0,
            device_loss: 0.0,
            host_loss: 0.0,
        }
    }

    /// Set the per-attempt ECC-corruption probability.
    pub fn with_ecc(mut self, p: f64) -> Self {
        self.ecc = p;
        self
    }

    /// Set the per-attempt watchdog-timeout probability.
    pub fn with_watchdog(mut self, p: f64) -> Self {
        self.watchdog = p;
        self
    }

    /// Set the per-attempt transfer-failure probability.
    pub fn with_transfer(mut self, p: f64) -> Self {
        self.transfer = p;
        self
    }

    /// Set the per-attempt device-loss probability.
    pub fn with_device_loss(mut self, p: f64) -> Self {
        self.device_loss = p;
        self
    }

    /// Set the per-attempt host-loss probability.
    pub fn with_host_loss(mut self, p: f64) -> Self {
        self.host_loss = p;
        self
    }

    /// True if any fault kind has a nonzero probability.
    pub fn is_active(&self) -> bool {
        self.ecc > 0.0
            || self.watchdog > 0.0
            || self.transfer > 0.0
            || self.device_loss > 0.0
            || self.host_loss > 0.0
    }

    /// The configured probability for one kind.
    pub fn probability(&self, kind: FaultKind) -> f64 {
        match kind {
            FaultKind::EccCorruption => self.ecc,
            FaultKind::WatchdogTimeout => self.watchdog,
            FaultKind::TransferFailure => self.transfer,
            FaultKind::DeviceLoss => self.device_loss,
            FaultKind::HostLoss => self.host_loss,
        }
    }

    fn draw(&self, kind: FaultKind, site: FaultSite, extra: u64) -> u64 {
        let mut h = self.seed ^ kind.salt().wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h = splitmix64(h ^ site.device_index as u64);
        h = splitmix64(h ^ (site.chunk_index as u64).wrapping_shl(1));
        h = splitmix64(h ^ u64::from(site.attempt).wrapping_shl(2));
        splitmix64(h ^ extra)
    }

    /// Deterministically decide whether `kind` fires at `site`.
    pub fn should_inject(&self, kind: FaultKind, site: FaultSite) -> bool {
        let p = self.probability(kind);
        if p <= 0.0 {
            return false;
        }
        unit_interval(self.draw(kind, site, 0)) < p
    }

    /// For an ECC fault at `site`, the chunk-local index of the tensor that
    /// gets corrupted (deterministic). Returns 0 for an empty chunk.
    pub fn ecc_target(&self, site: FaultSite, chunk_len: usize) -> usize {
        if chunk_len == 0 {
            return 0;
        }
        (self.draw(FaultKind::EccCorruption, site, 1) % chunk_len as u64) as usize
    }

    /// All faults the plan injects at `site`, with ECC targets resolved
    /// against a chunk of `chunk_len` tensors. Kinds draw independently, so
    /// one attempt can suffer several faults at once.
    pub fn faults_at(&self, site: FaultSite, chunk_len: usize) -> Vec<InjectedFault> {
        FaultKind::ALL
            .iter()
            .filter(|&&kind| self.should_inject(kind, site))
            .map(|&kind| InjectedFault {
                kind,
                device_index: site.device_index,
                chunk_index: site.chunk_index,
                attempt: site.attempt,
                tensor_index: (kind == FaultKind::EccCorruption)
                    .then(|| self.ecc_target(site, chunk_len)),
            })
            .collect()
    }

    /// The packed-entry index an ECC fault flips inside the targeted tensor.
    pub fn ecc_entry(&self, site: FaultSite, num_entries: usize) -> usize {
        if num_entries == 0 {
            return 0;
        }
        (self.draw(FaultKind::EccCorruption, site, 2) % num_entries as u64) as usize
    }
}

/// Return a copy of `tensor` with one packed entry overwritten by NaN — the
/// observable effect of an ECC bit-flip in tensor memory. The poison is NaN
/// (not a perturbed value) so corruption is always *detectable* downstream:
/// NaN propagates through every SS-HOPM iteration into the eigenpair.
pub fn corrupt_tensor<S: Scalar>(tensor: &SymTensor<S>, entry: usize) -> SymTensor<S> {
    let mut poisoned = tensor.clone();
    let values = poisoned.values_mut();
    if let Some(len) = values.len().checked_sub(1) {
        values[entry.min(len)] = S::from_f64(f64::NAN);
    }
    poisoned
}

/// SplitMix64: a tiny, high-quality 64-bit mixer (public-domain constant
/// set). Deterministic and allocation-free — ideal for replayable draws.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Map a hash to `[0, 1)` with 53 bits of precision.
fn unit_interval(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(d: usize, c: usize, a: u32) -> FaultSite {
        FaultSite {
            device_index: d,
            chunk_index: c,
            attempt: a,
        }
    }

    #[test]
    fn draws_are_deterministic() {
        let plan = FaultPlan::new(42).with_ecc(0.5).with_watchdog(0.25);
        for d in 0..4 {
            for c in 0..8 {
                for a in 0..4 {
                    for kind in FaultKind::ALL {
                        assert_eq!(
                            plan.should_inject(kind, site(d, c, a)),
                            plan.should_inject(kind, site(d, c, a)),
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn zero_probability_never_fires_and_one_always_fires() {
        let never = FaultPlan::new(7);
        let always = FaultPlan::new(7)
            .with_ecc(1.0)
            .with_watchdog(1.0)
            .with_transfer(1.0)
            .with_device_loss(1.0)
            .with_host_loss(1.0);
        assert!(!never.is_active());
        assert!(always.is_active());
        for c in 0..32 {
            for kind in FaultKind::ALL {
                assert!(!never.should_inject(kind, site(0, c, 0)));
                assert!(always.should_inject(kind, site(0, c, 0)));
            }
        }
    }

    #[test]
    fn empirical_rate_tracks_probability() {
        let plan = FaultPlan::new(1234).with_transfer(0.3);
        let n = 4000;
        let hits = (0..n)
            .filter(|&c| plan.should_inject(FaultKind::TransferFailure, site(0, c, 0)))
            .count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.05, "rate {rate}");
    }

    #[test]
    fn kinds_and_sites_draw_independently() {
        // Distinct kinds at the same site must not be perfectly correlated,
        // and distinct attempts must re-draw.
        let plan = FaultPlan::new(99)
            .with_watchdog(0.5)
            .with_transfer(0.5)
            .with_ecc(0.5);
        let mut differs_across_kinds = false;
        let mut differs_across_attempts = false;
        for c in 0..64 {
            let s0 = site(0, c, 0);
            let w = plan.should_inject(FaultKind::WatchdogTimeout, s0);
            let t = plan.should_inject(FaultKind::TransferFailure, s0);
            if w != t {
                differs_across_kinds = true;
            }
            if w != plan.should_inject(FaultKind::WatchdogTimeout, site(0, c, 1)) {
                differs_across_attempts = true;
            }
        }
        assert!(differs_across_kinds);
        assert!(differs_across_attempts);
    }

    #[test]
    fn corrupt_tensor_poisons_exactly_one_entry_with_nan() {
        let t = SymTensor::<f64>::diagonal_ones(4, 3);
        let bad = corrupt_tensor(&t, 7);
        let nans = bad.values().iter().filter(|v| !v.is_finite()).count();
        assert_eq!(nans, 1);
        assert!(bad.values()[7].is_nan());
        // Original untouched.
        assert!(t.values().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn corrupt_tensor_clamps_out_of_range_entry() {
        let t = SymTensor::<f32>::diagonal_ones(2, 2);
        let bad = corrupt_tensor(&t, 10_000);
        assert_eq!(bad.values().iter().filter(|v| !v.is_finite()).count(), 1);
    }

    /// Parity pin: draws are independent per kind, so turning host loss on
    /// must not perturb any other kind's draws at the same sites — faulted
    /// runs replayed under an extended plan reproduce bit-for-bit.
    #[test]
    fn host_loss_does_not_perturb_other_kinds_draws() {
        let base = FaultPlan::new(42)
            .with_ecc(0.3)
            .with_watchdog(0.3)
            .with_transfer(0.3)
            .with_device_loss(0.3);
        let extended = base.with_host_loss(0.5);
        for d in 0..4 {
            for c in 0..32 {
                for a in 0..3 {
                    for kind in [
                        FaultKind::EccCorruption,
                        FaultKind::WatchdogTimeout,
                        FaultKind::TransferFailure,
                        FaultKind::DeviceLoss,
                    ] {
                        assert_eq!(
                            base.should_inject(kind, site(d, c, a)),
                            extended.should_inject(kind, site(d, c, a)),
                        );
                    }
                }
            }
        }
        let hits = (0..64)
            .filter(|&c| extended.should_inject(FaultKind::HostLoss, site(0, c, 0)))
            .count();
        assert!(hits > 0, "host loss at p=0.5 should fire somewhere");
    }

    #[test]
    fn faults_at_resolves_ecc_targets_within_chunk() {
        let plan = FaultPlan::new(5).with_ecc(1.0).with_device_loss(1.0);
        let faults = plan.faults_at(site(1, 3, 0), 17);
        assert_eq!(faults.len(), 2);
        let ecc = faults
            .iter()
            .find(|f| f.kind == FaultKind::EccCorruption)
            .expect("ecc fault drawn");
        assert!(ecc.tensor_index.is_some_and(|i| i < 17));
        let loss = faults
            .iter()
            .find(|f| f.kind == FaultKind::DeviceLoss)
            .expect("device-loss fault drawn");
        assert_eq!(loss.tensor_index, None);
    }
}
