//! Device specifications for the analytic model.
//!
//! The constants for the Tesla C2050 are the published Fermi numbers; the
//! paper quotes its single-precision peak as 1030 GFLOPS, which the spec
//! reproduces as `2 flops/FMA × 448 cores × 1.15 GHz`.

/// Static hardware parameters of a simulated GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Marketing name, for reports.
    pub name: &'static str,
    /// Number of streaming multiprocessors.
    pub num_sms: usize,
    /// Scalar cores ("CUDA cores") per SM.
    pub cores_per_sm: usize,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Threads per warp (32 on every NVIDIA architecture).
    pub warp_size: usize,
    /// 32-bit registers per SM.
    pub registers_per_sm: usize,
    /// Hardware cap on registers per thread.
    pub max_registers_per_thread: usize,
    /// Shared memory per SM, bytes.
    pub shared_mem_per_sm: usize,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: usize,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: usize,
    /// Maximum threads per block.
    pub max_threads_per_block: usize,
    /// Global memory bandwidth, GB/s.
    pub mem_bandwidth_gbs: f64,
    /// Global memory latency in core cycles (used to derive how much
    /// occupancy is needed to hide it).
    pub mem_latency_cycles: f64,
    /// Warp instructions issued per SM per cycle (Fermi: two schedulers,
    /// but one 32-wide FP pipe — effectively 1 FP warp instruction/cycle).
    pub issue_rate: f64,
}

impl DeviceSpec {
    /// NVIDIA Tesla C2050 (Fermi GF100), the paper's platform.
    pub fn tesla_c2050() -> Self {
        Self {
            name: "Tesla C2050 (Fermi)",
            num_sms: 14,
            cores_per_sm: 32,
            clock_ghz: 1.15,
            warp_size: 32,
            registers_per_sm: 32768,
            max_registers_per_thread: 63,
            shared_mem_per_sm: 48 * 1024,
            max_threads_per_sm: 1536,
            max_blocks_per_sm: 8,
            max_threads_per_block: 1024,
            mem_bandwidth_gbs: 144.0,
            mem_latency_cycles: 600.0,
            issue_rate: 1.0,
        }
    }

    /// A GT200-class part (Tesla C1060 era): one of the paper's "two other
    /// NVIDIA GPUs" with similar relative behaviour at smaller scale.
    pub fn tesla_c1060() -> Self {
        Self {
            name: "Tesla C1060 (GT200)",
            num_sms: 30,
            cores_per_sm: 8,
            clock_ghz: 1.296,
            warp_size: 32,
            registers_per_sm: 16384,
            max_registers_per_thread: 124,
            shared_mem_per_sm: 16 * 1024,
            max_threads_per_sm: 1024,
            max_blocks_per_sm: 8,
            max_threads_per_block: 512,
            mem_bandwidth_gbs: 102.0,
            mem_latency_cycles: 550.0,
            issue_rate: 0.25, // 8 cores serve a 32-wide warp in 4 cycles
        }
    }

    /// A GF110-class consumer part (GTX 580 era), the faster sibling.
    pub fn gtx_580() -> Self {
        Self {
            name: "GeForce GTX 580 (GF110)",
            num_sms: 16,
            cores_per_sm: 32,
            clock_ghz: 1.544,
            warp_size: 32,
            registers_per_sm: 32768,
            max_registers_per_thread: 63,
            shared_mem_per_sm: 48 * 1024,
            max_threads_per_sm: 1536,
            max_blocks_per_sm: 8,
            max_threads_per_block: 1024,
            mem_bandwidth_gbs: 192.4,
            mem_latency_cycles: 600.0,
            issue_rate: 1.0,
        }
    }

    /// Peak single-precision throughput in GFLOP/s, counting FMA as two
    /// flops: `2 × cores × clock`.
    pub fn peak_sp_gflops(&self) -> f64 {
        2.0 * (self.num_sms * self.cores_per_sm) as f64 * self.clock_ghz
    }

    /// Maximum resident warps per SM.
    pub fn max_warps_per_sm(&self) -> usize {
        self.max_threads_per_sm / self.warp_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c2050_peak_matches_paper_quote() {
        // The paper: "single precision peak performance of 1030 GFLOPS".
        let d = DeviceSpec::tesla_c2050();
        assert!(
            (d.peak_sp_gflops() - 1030.4).abs() < 0.5,
            "{}",
            d.peak_sp_gflops()
        );
    }

    #[test]
    fn c2050_warp_capacity() {
        let d = DeviceSpec::tesla_c2050();
        assert_eq!(d.max_warps_per_sm(), 48);
        assert_eq!(d.num_sms * d.cores_per_sm, 448);
    }

    #[test]
    fn c1060_is_slower_than_c2050() {
        assert!(
            DeviceSpec::tesla_c1060().peak_sp_gflops() < DeviceSpec::tesla_c2050().peak_sp_gflops()
        );
    }

    #[test]
    fn gtx580_is_faster_than_c2050() {
        assert!(
            DeviceSpec::gtx_580().peak_sp_gflops() > DeviceSpec::tesla_c2050().peak_sp_gflops()
        );
    }

    #[test]
    fn presets_have_sane_limits() {
        for d in [
            DeviceSpec::tesla_c2050(),
            DeviceSpec::tesla_c1060(),
            DeviceSpec::gtx_580(),
        ] {
            assert_eq!(d.warp_size, 32);
            assert!(d.max_threads_per_sm % d.warp_size == 0);
            assert!(d.max_threads_per_block <= d.max_threads_per_sm);
            assert!(d.mem_bandwidth_gbs > 0.0);
            assert!(d.issue_rate > 0.0);
        }
    }
}
