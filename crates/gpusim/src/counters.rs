//! Per-thread operation counters gathered during functional execution.
//!
//! The counters separate "useful" floating-point work (what GFLOPS figures
//! are computed from) from integer bookkeeping and memory traffic (what the
//! timing model charges for separately). Counting happens in the simulated
//! kernels, not inside the `symtensor` hot loops, so the library kernels
//! stay clean.

/// Operation counts for one thread (or aggregated over many).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounters {
    /// Floating-point additions/subtractions.
    pub fadd: u64,
    /// Floating-point multiplications.
    pub fmul: u64,
    /// Fused multiply-adds (count as 2 useful flops each).
    pub ffma: u64,
    /// Floating-point divisions.
    pub fdiv: u64,
    /// Square roots.
    pub fsqrt: u64,
    /// Integer/address operations (index updates, loop bookkeeping).
    pub int_ops: u64,
    /// Words read from block-shared memory.
    pub shared_loads: u64,
    /// Words written to block-shared memory.
    pub shared_stores: u64,
    /// Words read from device (global) memory.
    pub global_loads: u64,
    /// Words written to device (global) memory.
    pub global_stores: u64,
}

impl OpCounters {
    /// Useful floating-point operations (FMA counted as two).
    pub fn useful_flops(&self) -> u64 {
        self.fadd + self.fmul + 2 * self.ffma + self.fdiv + self.fsqrt
    }

    /// All issued arithmetic instructions (FMA counted once, since it is
    /// one instruction), which is what the issue-rate model charges for.
    pub fn arithmetic_instructions(&self) -> u64 {
        self.fadd + self.fmul + self.ffma + self.fdiv + self.fsqrt + self.int_ops
    }

    /// All shared-memory accesses.
    pub fn shared_accesses(&self) -> u64 {
        self.shared_loads + self.shared_stores
    }

    /// All global-memory words moved.
    pub fn global_words(&self) -> u64 {
        self.global_loads + self.global_stores
    }

    /// Merge another counter set into this one.
    pub fn merge(&mut self, other: &OpCounters) {
        self.fadd += other.fadd;
        self.fmul += other.fmul;
        self.ffma += other.ffma;
        self.fdiv += other.fdiv;
        self.fsqrt += other.fsqrt;
        self.int_ops += other.int_ops;
        self.shared_loads += other.shared_loads;
        self.shared_stores += other.shared_stores;
        self.global_loads += other.global_loads;
        self.global_stores += other.global_stores;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn useful_flops_counts_fma_twice() {
        let c = OpCounters {
            fadd: 3,
            fmul: 5,
            ffma: 7,
            fdiv: 1,
            fsqrt: 1,
            ..Default::default()
        };
        assert_eq!(c.useful_flops(), 3 + 5 + 14 + 1 + 1);
        assert_eq!(c.arithmetic_instructions(), 3 + 5 + 7 + 1 + 1);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = OpCounters {
            fadd: 1,
            global_loads: 10,
            ..Default::default()
        };
        let b = OpCounters {
            fadd: 2,
            shared_stores: 4,
            global_stores: 5,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.fadd, 3);
        assert_eq!(a.shared_accesses(), 4);
        assert_eq!(a.global_words(), 15);
    }

    #[test]
    fn default_is_zero() {
        let c = OpCounters::default();
        assert_eq!(c.useful_flops(), 0);
        assert_eq!(c.arithmetic_instructions(), 0);
    }
}
