//! CUDA-style streams, events, and a discrete-event timeline scheduler.
//!
//! Real Fermi-class hardware (the paper's Tesla C2050) executes work from
//! *streams*: per-stream FIFO queues of transfer and kernel operations
//! that the device resolves against its engines — **one copy engine**
//! (the C2050 has a single DMA engine serving both directions) and **one
//! compute engine**. Operations in one stream run in order; operations in
//! different streams may overlap wherever the engines allow, which is how
//! double-buffering hides PCIe transfers behind kernels.
//!
//! This module models exactly that. Callers enqueue [`Op`]s on
//! [`StreamId`]s obtained from a [`StreamQueue`]; nothing is timed at
//! enqueue. [`StreamQueue::synchronize`] then resolves the whole queue
//! with a deterministic list scheduler into a [`Timeline`] of
//! [`TimedOp`]s whose [`Timeline::makespan`] replaces the old serial
//! `transfer + compute` sum. The scheduler is *lazy* on purpose: resolving
//! ops eagerly at enqueue time would serialize each engine in global
//! enqueue order and destroy precisely the overlap streams exist to
//! expose.
//!
//! The functional half of the simulator is untouched: kernels still
//! execute (and produce bit-exact results) when they are enqueued; only
//! the *clock* is deferred to the scheduler.

use crate::multi::TransferModel;
use telemetry::Telemetry;

/// The two engines a Fermi-class device arbitrates streams over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// The single DMA engine (host→device and device→host share it on a
    /// C2050; dual copy engines arrived with later Teslas).
    Copy,
    /// The kernel execution engine (the SM array as a whole).
    Compute,
}

/// One asynchronous operation enqueued on a stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// Stage `bytes` host→device over the PCIe link (copy engine).
    HostToDevice {
        /// Payload size in bytes.
        bytes: u64,
    },
    /// Run a kernel whose analytic estimate is `seconds` (compute engine).
    /// The estimate already includes the per-launch overhead, so chunked
    /// paths charge that overhead per chunk, exactly like real launches.
    Kernel {
        /// Modeled kernel duration in seconds.
        seconds: f64,
    },
    /// Return `bytes` device→host over the PCIe link (copy engine).
    DeviceToHost {
        /// Payload size in bytes.
        bytes: u64,
    },
    /// Dead time on the compute engine: a watchdog timeout or a backoff
    /// wait before a retry. Faults cost seconds, never correctness.
    Stall {
        /// Stall duration in seconds.
        seconds: f64,
    },
}

impl Op {
    /// Which engine executes this op.
    pub fn engine(&self) -> Engine {
        match self {
            Op::HostToDevice { .. } | Op::DeviceToHost { .. } => Engine::Copy,
            Op::Kernel { .. } | Op::Stall { .. } => Engine::Compute,
        }
    }

    /// Trace name, static so it can flow into the telemetry trace buffer.
    pub fn name(&self) -> &'static str {
        match self {
            Op::HostToDevice { .. } => "gpu.h2d",
            Op::Kernel { .. } => "gpu.kernel",
            Op::DeviceToHost { .. } => "gpu.d2h",
            Op::Stall { .. } => "gpu.stall",
        }
    }

    /// Modeled duration in seconds over `link`.
    pub fn duration(&self, link: &TransferModel) -> f64 {
        match *self {
            Op::HostToDevice { bytes } | Op::DeviceToHost { bytes } => link.transfer_seconds(bytes),
            Op::Kernel { seconds } | Op::Stall { seconds } => seconds,
        }
    }
}

/// Handle to one stream in a [`StreamQueue`]. The index is global across
/// all devices and doubles as the trace row (`tid`) in exports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StreamId(usize);

impl StreamId {
    /// The queue-global stream index.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// Handle to one enqueued op: its stream plus its position in it. Also
/// serves as a *mark* for scoped cancellation ([`StreamQueue::mark`] /
/// [`StreamQueue::cancel_from`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpId {
    stream: StreamId,
    index: usize,
}

impl OpId {
    /// The stream this op lives on.
    pub fn stream(&self) -> StreamId {
        self.stream
    }
}

/// A recorded synchronization point: completes when every op enqueued on
/// its stream *before* the record has completed (CUDA `cudaEventRecord`
/// semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventId {
    stream: StreamId,
    /// Ops on `stream` at record time; the event resolves when the first
    /// `up_to` ops of the stream have resolved.
    up_to: usize,
}

struct PendingOp {
    op: Op,
    /// Global enqueue sequence number — the deterministic tie-breaker.
    seq: usize,
    /// Events this op waits on before it may start.
    waits: Vec<EventId>,
    cancelled: bool,
}

struct StreamState {
    device: usize,
    ops: Vec<PendingOp>,
    /// Waits registered via [`StreamQueue::wait_event`], attached to the
    /// next op enqueued on this stream (CUDA `cudaStreamWaitEvent`
    /// semantics: all *subsequent* work waits).
    pending_waits: Vec<EventId>,
}

/// A queue of asynchronous ops across one or more devices, resolved into
/// a [`Timeline`] at [`synchronize`](StreamQueue::synchronize) time.
///
/// Per device there is one copy engine and one compute engine; streams on
/// the same device contend for them, streams on different devices never
/// do (distinct PCIe lanes, as on real multi-GPU boards).
pub struct StreamQueue {
    link: TransferModel,
    num_devices: usize,
    streams: Vec<StreamState>,
    next_seq: usize,
}

impl StreamQueue {
    /// A queue over `num_devices` devices sharing the `link` model.
    pub fn new(num_devices: usize, link: TransferModel) -> Self {
        Self {
            link,
            num_devices: num_devices.max(1),
            streams: Vec::new(),
            next_seq: 0,
        }
    }

    /// A queue over one cluster [`Host`](crate::topology::Host)'s
    /// devices, timing copies against that host's own PCIe link — each
    /// host in a sharded launch schedules on its own queue.
    pub fn for_host(host: &crate::topology::Host) -> Self {
        Self::new(host.num_devices(), host.pcie)
    }

    /// The interconnect model copies are timed against.
    pub fn link(&self) -> &TransferModel {
        &self.link
    }

    /// Create a stream on `device` (clamped into range) and return its
    /// handle.
    pub fn stream(&mut self, device: usize) -> StreamId {
        let id = StreamId(self.streams.len());
        self.streams.push(StreamState {
            device: device.min(self.num_devices - 1),
            ops: Vec::new(),
            pending_waits: Vec::new(),
        });
        id
    }

    /// Enqueue `op` on `stream`; returns immediately (nothing is timed
    /// until [`synchronize`](StreamQueue::synchronize)).
    pub fn enqueue(&mut self, stream: StreamId, op: Op) -> OpId {
        let seq = self.next_seq;
        self.next_seq += 1;
        let s = &mut self.streams[stream.0];
        let waits = std::mem::take(&mut s.pending_waits);
        let index = s.ops.len();
        s.ops.push(PendingOp {
            op,
            seq,
            waits,
            cancelled: false,
        });
        OpId { stream, index }
    }

    /// Record an event on `stream`: it completes once everything enqueued
    /// on the stream so far has completed.
    pub fn record_event(&mut self, stream: StreamId) -> EventId {
        EventId {
            stream,
            up_to: self.streams[stream.0].ops.len(),
        }
    }

    /// Make all *future* work on `stream` wait for `event` (ops already
    /// enqueued are unaffected).
    pub fn wait_event(&mut self, stream: StreamId, event: EventId) {
        self.streams[stream.0].pending_waits.push(event);
    }

    /// A mark at the current tail of `stream`: ops enqueued from now on
    /// fall inside [`cancel_from`](StreamQueue::cancel_from) of this mark.
    pub fn mark(&self, stream: StreamId) -> OpId {
        OpId {
            stream,
            index: self.streams[stream.0].ops.len(),
        }
    }

    /// Cancel every op currently enqueued on `mark`'s stream at or after
    /// the mark. *Scoped* on purpose: a fault tears down one stream's
    /// in-flight work; other streams' pending ops (earlier successful
    /// chunks included) are untouched. Cancelled ops resolve instantly,
    /// consume no engine time, and are excluded from the timeline (only
    /// counted in [`Timeline::cancelled`]).
    pub fn cancel_from(&mut self, mark: OpId) {
        let s = &mut self.streams[mark.stream.0];
        for op in s.ops.iter_mut().skip(mark.index) {
            op.cancelled = true;
        }
    }

    /// Ops enqueued so far, across all streams.
    pub fn len(&self) -> usize {
        self.streams.iter().map(|s| s.ops.len()).sum()
    }

    /// True when nothing has been enqueued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resolve the whole queue into an event timeline.
    ///
    /// List scheduling: repeatedly pick, among the head ops of all streams
    /// whose stream predecessors and waited events have resolved, the op
    /// with the earliest feasible start (`max(ready, engine free)` on its
    /// device's engine); ties break by earliest ready time, then lowest
    /// enqueue sequence number. This is deterministic and respects both
    /// FIFO order within streams and the per-device engine constraints.
    pub fn synchronize(self) -> Timeline {
        let num_streams = self.streams.len();
        let mut next = vec![0usize; num_streams];
        let mut op_end: Vec<Vec<f64>> = self
            .streams
            .iter()
            .map(|s| vec![0.0; s.ops.len()])
            .collect();
        let mut copy_free = vec![0.0f64; self.num_devices];
        let mut compute_free = vec![0.0f64; self.num_devices];
        let total: usize = self.streams.iter().map(|s| s.ops.len()).sum();
        let mut done = 0usize;
        let mut cancelled = 0usize;
        let mut ops: Vec<TimedOp> = Vec::with_capacity(total);

        while done < total {
            // Candidate = best (start, ready, seq) among ready stream heads.
            let mut best: Option<(f64, f64, usize, usize)> = None; // start, ready, seq, stream
            let mut progressed = false;
            for si in 0..num_streams {
                let i = next[si];
                let Some(p) = self.streams[si].ops.get(i) else {
                    continue;
                };
                let mut ready = if i == 0 { 0.0 } else { op_end[si][i - 1] };
                let mut waits_resolved = true;
                for ev in &p.waits {
                    let evs = ev.stream.0;
                    if next[evs] < ev.up_to {
                        waits_resolved = false;
                        break;
                    }
                    if ev.up_to > 0 {
                        ready = ready.max(op_end[evs][ev.up_to - 1]);
                    }
                }
                if !waits_resolved {
                    continue;
                }
                if p.cancelled {
                    // Resolves instantly at its ready time: no engine, no
                    // timeline entry.
                    op_end[si][i] = ready;
                    next[si] += 1;
                    done += 1;
                    cancelled += 1;
                    progressed = true;
                    continue;
                }
                let device = self.streams[si].device;
                let engine_free = match p.op.engine() {
                    Engine::Copy => copy_free[device],
                    Engine::Compute => compute_free[device],
                };
                let start = ready.max(engine_free);
                let cand = (start, ready, p.seq, si);
                let better = match best {
                    None => true,
                    Some(b) => (cand.0, cand.1, cand.2) < (b.0, b.1, b.2),
                };
                if better {
                    best = Some(cand);
                }
            }
            if progressed {
                continue;
            }
            let Some((start, _, _, si)) = best else {
                // Defensive: an event wait that can never resolve (only
                // possible through API misuse — recorded events always
                // cover already-enqueued ops, which makes the dependency
                // graph acyclic). Force progress on the lowest-sequence
                // head so synchronize always terminates.
                let forced = (0..num_streams)
                    .filter(|&si| next[si] < self.streams[si].ops.len())
                    .min_by_key(|&si| self.streams[si].ops[next[si]].seq);
                let Some(si) = forced else { break };
                let i = next[si];
                let ready = if i == 0 { 0.0 } else { op_end[si][i - 1] };
                op_end[si][i] = ready;
                next[si] += 1;
                done += 1;
                continue;
            };
            let i = next[si];
            let p = &self.streams[si].ops[i];
            let device = self.streams[si].device;
            let duration = p.op.duration(&self.link);
            let end = start + duration;
            match p.op.engine() {
                Engine::Copy => copy_free[device] = end,
                Engine::Compute => compute_free[device] = end,
            }
            op_end[si][i] = end;
            next[si] += 1;
            done += 1;
            ops.push(TimedOp {
                stream: StreamId(si),
                device,
                op: p.op,
                start_s: start,
                end_s: end,
            });
        }

        ops.sort_by(|a, b| {
            a.start_s
                .total_cmp(&b.start_s)
                .then(a.stream.0.cmp(&b.stream.0))
        });
        Timeline {
            ops,
            cancelled,
            num_streams,
        }
    }
}

/// One resolved op on the event timeline.
#[derive(Debug, Clone, Copy)]
pub struct TimedOp {
    /// The stream the op ran on.
    pub stream: StreamId,
    /// The device the op ran on.
    pub device: usize,
    /// The operation.
    pub op: Op,
    /// Modeled start time in seconds from queue epoch.
    pub start_s: f64,
    /// Modeled completion time in seconds from queue epoch.
    pub end_s: f64,
}

/// The resolved event timeline of a [`StreamQueue`]: every scheduled op
/// with its modeled start/end, sorted by start time.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    /// Scheduled ops, sorted by `(start_s, stream)`.
    pub ops: Vec<TimedOp>,
    /// Ops cancelled before they ran (scoped fault teardown).
    pub cancelled: usize,
    /// Streams that existed in the queue.
    pub num_streams: usize,
}

impl Timeline {
    /// The modeled wall-clock: when the last op completes. This is what
    /// replaces the serial `transfer + compute` sum.
    pub fn makespan(&self) -> f64 {
        self.ops.iter().fold(0.0f64, |a, o| a.max(o.end_s))
    }

    /// What the same ops would cost fully serialized (the pre-stream
    /// model): the sum of every op's duration.
    pub fn serial_seconds(&self) -> f64 {
        self.ops.iter().map(|o| o.end_s - o.start_s).sum()
    }

    /// Seconds the schedule saved versus serial execution. Positive
    /// whenever transfers overlapped compute or devices ran concurrently.
    pub fn overlap_seconds(&self) -> f64 {
        (self.serial_seconds() - self.makespan()).max(0.0)
    }

    /// When `device` finishes its last op (0 if it ran nothing).
    pub fn device_busy_seconds(&self, device: usize) -> f64 {
        self.ops
            .iter()
            .filter(|o| o.device == device)
            .fold(0.0f64, |a, o| a.max(o.end_s))
    }

    /// Copy-engine seconds charged on `device` (its PCIe time).
    pub fn copy_seconds(&self, device: usize) -> f64 {
        self.ops
            .iter()
            .filter(|o| o.device == device && o.op.engine() == Engine::Copy)
            .map(|o| o.end_s - o.start_s)
            .sum()
    }

    /// Compute-engine seconds charged on `device` (kernels + stalls).
    pub fn compute_seconds(&self, device: usize) -> f64 {
        self.ops
            .iter()
            .filter(|o| o.device == device && o.op.engine() == Engine::Compute)
            .map(|o| o.end_s - o.start_s)
            .sum()
    }

    /// Human-readable one-paragraph summary for CLI / example output.
    pub fn summary(&self) -> String {
        let makespan = self.makespan();
        let serial = self.serial_seconds();
        let saved = self.overlap_seconds();
        let pct = if serial > 0.0 {
            100.0 * saved / serial
        } else {
            0.0
        };
        let copies = self
            .ops
            .iter()
            .filter(|o| o.op.engine() == Engine::Copy)
            .count();
        let kernels = self.ops.len() - copies;
        format!(
            "timeline: {} ops ({} copies, {} compute) on {} streams; \
             makespan {:.3} ms vs serial {:.3} ms (overlap saves {:.3} ms, {:.1}%){}",
            self.ops.len(),
            copies,
            kernels,
            self.num_streams,
            makespan * 1e3,
            serial * 1e3,
            saved * 1e3,
            pct,
            if self.cancelled > 0 {
                format!("; {} ops cancelled", self.cancelled)
            } else {
                String::new()
            }
        )
    }

    /// Export every op as a modeled span on `telemetry`, one trace row
    /// (`tid`) per stream, timestamps in modeled microseconds — the
    /// chrome://tracing exporter then renders transfer/compute overlap
    /// directly. Every op duration is also recorded as a histogram
    /// *observation* under the op's name (`gpu.kernel`, `gpu.h2d`, …), so
    /// pipelined-run latencies land in [`Telemetry::snapshot`] histograms
    /// (and thus `--metrics-out`) instead of only in the trace buffer.
    pub fn emit(&self, telemetry: &Telemetry) {
        if !telemetry.is_enabled() {
            return;
        }
        for o in &self.ops {
            let duration_s = o.end_s - o.start_s;
            telemetry.modeled_span(o.op.name(), o.stream.0, o.start_s * 1e6, duration_s * 1e6);
            telemetry.observe(o.op.name(), duration_s);
        }
    }

    /// Distribution of kernel-op durations — the per-chunk latency set of
    /// a chunked/pipelined run (each kernel launch covers one chunk).
    pub fn kernel_latencies(&self) -> telemetry::Histogram {
        let mut h = telemetry::Histogram::new();
        for o in &self.ops {
            if matches!(o.op, Op::Kernel { .. }) {
                h.observe(o.end_s - o.start_s);
            }
        }
        h
    }

    /// Distribution of per-stream busy windows (last end minus first
    /// start per stream that ran anything) — the per-stream latency set.
    pub fn stream_latencies(&self) -> telemetry::Histogram {
        let mut first = vec![f64::INFINITY; self.num_streams];
        let mut last = vec![f64::NEG_INFINITY; self.num_streams];
        for o in &self.ops {
            let si = o.stream.0;
            if si < self.num_streams {
                first[si] = first[si].min(o.start_s);
                last[si] = last[si].max(o.end_s);
            }
        }
        let mut h = telemetry::Histogram::new();
        for (f, l) in first.iter().zip(last.iter()) {
            if l >= f {
                h.observe(l - f);
            }
        }
        h
    }

    /// Distribution of per-device busy seconds (completion time of each
    /// device that ran at least one op) — the per-device latency set.
    pub fn device_latencies(&self) -> telemetry::Histogram {
        let mut devices: Vec<usize> = self.ops.iter().map(|o| o.device).collect();
        devices.sort_unstable();
        devices.dedup();
        let mut h = telemetry::Histogram::new();
        for d in devices {
            h.observe(self.device_busy_seconds(d));
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> TransferModel {
        TransferModel::pcie2()
    }

    #[test]
    fn single_stream_serializes_in_fifo_order() {
        let mut q = StreamQueue::new(1, link());
        let s = q.stream(0);
        q.enqueue(s, Op::HostToDevice { bytes: 6_000_000 });
        q.enqueue(s, Op::Kernel { seconds: 2e-3 });
        q.enqueue(s, Op::DeviceToHost { bytes: 12_000_000 });
        let t = q.synchronize();
        assert_eq!(t.ops.len(), 3);
        // FIFO: each op starts when the previous one ends.
        assert_eq!(t.ops[0].start_s, 0.0);
        assert_eq!(t.ops[1].start_s, t.ops[0].end_s);
        assert_eq!(t.ops[2].start_s, t.ops[1].end_s);
        // No overlap possible on one stream: makespan == serial sum.
        assert!((t.makespan() - t.serial_seconds()).abs() < 1e-15);
        // h2d = latency + bytes / bandwidth.
        let expect = 10e-6 + 6_000_000.0 / 6e9;
        assert!((t.ops[0].end_s - expect).abs() < 1e-12);
    }

    #[test]
    fn two_streams_overlap_copy_and_compute() {
        // Double buffering: while chunk 0 computes, chunk 1 uploads.
        let mut q = StreamQueue::new(1, link());
        let s0 = q.stream(0);
        let s1 = q.stream(0);
        for &s in &[s0, s1] {
            q.enqueue(s, Op::HostToDevice { bytes: 6_000_000 });
            q.enqueue(s, Op::Kernel { seconds: 2e-3 });
            q.enqueue(s, Op::DeviceToHost { bytes: 6_000_000 });
        }
        let t = q.synchronize();
        assert!(t.makespan() < t.serial_seconds());
        assert!(t.overlap_seconds() > 0.0);
        // s1's upload starts while s0's kernel is still running.
        let s1_h2d = t
            .ops
            .iter()
            .find(|o| o.stream == s1 && o.op.engine() == Engine::Copy)
            .unwrap();
        let s0_kernel = t
            .ops
            .iter()
            .find(|o| o.stream == s0 && matches!(o.op, Op::Kernel { .. }))
            .unwrap();
        assert!(s1_h2d.start_s < s0_kernel.end_s);
    }

    #[test]
    fn one_copy_engine_serializes_transfers() {
        // Two streams, copies only: the single DMA engine forces them to
        // run back to back even though the streams are independent.
        let mut q = StreamQueue::new(1, link());
        let s0 = q.stream(0);
        let s1 = q.stream(0);
        q.enqueue(s0, Op::HostToDevice { bytes: 6_000_000 });
        q.enqueue(s1, Op::HostToDevice { bytes: 6_000_000 });
        let t = q.synchronize();
        assert!((t.makespan() - t.serial_seconds()).abs() < 1e-15);
        assert_eq!(t.ops[1].start_s, t.ops[0].end_s);
    }

    #[test]
    fn distinct_devices_do_not_contend() {
        let mut q = StreamQueue::new(2, link());
        let s0 = q.stream(0);
        let s1 = q.stream(1);
        q.enqueue(s0, Op::Kernel { seconds: 1e-3 });
        q.enqueue(s1, Op::Kernel { seconds: 1e-3 });
        let t = q.synchronize();
        assert_eq!(t.ops[0].start_s, 0.0);
        assert_eq!(t.ops[1].start_s, 0.0);
        assert!((t.makespan() - 1e-3).abs() < 1e-15);
    }

    #[test]
    fn events_order_work_across_streams() {
        let mut q = StreamQueue::new(1, link());
        let s0 = q.stream(0);
        let s1 = q.stream(0);
        q.enqueue(s0, Op::Kernel { seconds: 5e-3 });
        let ev = q.record_event(s0);
        q.wait_event(s1, ev);
        q.enqueue(s1, Op::Kernel { seconds: 1e-3 });
        let t = q.synchronize();
        let dep = t.ops.iter().find(|o| o.stream == s1).unwrap();
        assert!((dep.start_s - 5e-3).abs() < 1e-15, "{dep:?}");
    }

    #[test]
    fn cancel_from_is_scoped_to_one_streams_tail() {
        let mut q = StreamQueue::new(1, link());
        let s0 = q.stream(0);
        let s1 = q.stream(0);
        q.enqueue(s0, Op::Kernel { seconds: 1e-3 });
        let mark = q.mark(s1);
        q.enqueue(s1, Op::HostToDevice { bytes: 1_000_000 });
        q.enqueue(s1, Op::Kernel { seconds: 1e-3 });
        q.cancel_from(mark);
        // Work enqueued after the cancellation runs normally.
        q.enqueue(s1, Op::Stall { seconds: 2.0 });
        let t = q.synchronize();
        assert_eq!(t.cancelled, 2);
        assert_eq!(t.ops.len(), 2, "{:?}", t.ops);
        assert!(t
            .ops
            .iter()
            .all(|o| o.stream == s0 || matches!(o.op, Op::Stall { .. })));
        // s0's op was untouched by s1's teardown.
        assert!(t.ops.iter().any(|o| o.stream == s0));
    }

    #[test]
    fn empty_queue_synchronizes_to_an_empty_timeline() {
        let q = StreamQueue::new(1, link());
        assert!(q.is_empty());
        let t = q.synchronize();
        assert_eq!(t.ops.len(), 0);
        assert_eq!(t.makespan(), 0.0);
        assert_eq!(t.serial_seconds(), 0.0);
        assert!(t.summary().contains("0 ops"));
    }

    #[test]
    fn summary_and_accessors_are_consistent() {
        let mut q = StreamQueue::new(1, link());
        let s = q.stream(0);
        q.enqueue(s, Op::HostToDevice { bytes: 1_000_000 });
        q.enqueue(s, Op::Kernel { seconds: 1e-3 });
        let t = q.synchronize();
        assert!((t.copy_seconds(0) + t.compute_seconds(0) - t.serial_seconds()).abs() < 1e-15);
        assert_eq!(t.device_busy_seconds(0), t.makespan());
        assert_eq!(t.device_busy_seconds(7), 0.0);
        let s = t.summary();
        assert!(s.contains("2 ops"), "{s}");
        assert!(s.contains("1 copies, 1 compute"), "{s}");
    }

    #[test]
    fn emit_exports_one_trace_row_per_stream() {
        let mut q = StreamQueue::new(1, link());
        let s0 = q.stream(0);
        let s1 = q.stream(0);
        q.enqueue(s0, Op::Kernel { seconds: 1e-3 });
        q.enqueue(s1, Op::Kernel { seconds: 1e-3 });
        let t = q.synchronize();
        let tel = Telemetry::enabled();
        t.emit(&tel);
        let snap = tel.snapshot();
        assert_eq!(snap.trace_events, 2);
        let json = tel.chrome_trace_json();
        assert!(json.contains("gpu.kernel"), "{json}");
        t.emit(&Telemetry::disabled()); // no-op, no panic
    }

    #[test]
    fn emit_records_histogram_observations() {
        // Regression: op durations must land in snapshot histograms (the
        // --metrics-out path), not only in the trace buffer.
        let mut q = StreamQueue::new(1, link());
        let s = q.stream(0);
        q.enqueue(s, Op::HostToDevice { bytes: 1_000_000 });
        q.enqueue(s, Op::Kernel { seconds: 1e-3 });
        q.enqueue(s, Op::Kernel { seconds: 2e-3 });
        let t = q.synchronize();
        let tel = Telemetry::enabled();
        t.emit(&tel);
        let snap = tel.snapshot();
        let kernels = snap.histogram("gpu.kernel").unwrap();
        assert_eq!(kernels.count, 2);
        assert!((kernels.sum - 3e-3).abs() < 1e-12);
        assert!(kernels.p50() > 0.0);
        assert!(snap.histogram("gpu.h2d").is_some());
    }

    #[test]
    fn latency_histograms_cover_kernels_streams_devices() {
        let mut q = StreamQueue::new(2, link());
        let s0 = q.stream(0);
        let s1 = q.stream(1);
        q.enqueue(s0, Op::Kernel { seconds: 1e-3 });
        q.enqueue(s0, Op::Kernel { seconds: 3e-3 });
        q.enqueue(s1, Op::Kernel { seconds: 2e-3 });
        let t = q.synchronize();
        let kernels = t.kernel_latencies();
        assert_eq!(kernels.count(), 3);
        assert!((kernels.sum() - 6e-3).abs() < 1e-12);
        let streams = t.stream_latencies();
        assert_eq!(streams.count(), 2);
        assert!((streams.max() - 4e-3).abs() < 1e-12);
        let devices = t.device_latencies();
        assert_eq!(devices.count(), 2);
        // An empty timeline yields empty (not panicking) histograms.
        let empty = Timeline::default();
        assert!(empty.kernel_latencies().is_empty());
        assert!(empty.stream_latencies().is_empty());
        assert!(empty.device_latencies().is_empty());
    }
}
