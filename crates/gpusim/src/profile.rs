//! Structured profiling: a machine-readable snapshot of everything one
//! kernel launch reported.
//!
//! [`LaunchReport`] is the in-process report; [`ProfileSnapshot`] is its
//! export shape — a flat, serializable record combining the device, the
//! grid, the occupancy result, the operation-counter breakdown, the
//! memory-system view (coalescing and traffic), divergence statistics, and
//! the analytic timing components. The bench binaries and the CLI
//! `profile` subcommand serialize it as JSON; [`Telemetry`] custom events
//! carry it through sinks.
//!
//! A snapshot describes one *launch*; the per-op view of a whole batch —
//! when each upload, kernel, and download ran and how much transfer hid
//! behind compute — is the [`crate::stream::Timeline`], emitted as
//! modeled telemetry spans (one chrome://tracing row per stream) by
//! [`crate::stream::Timeline::emit`] and summarized by the CLI's
//! `--pipeline` flag alongside this snapshot.

use crate::device::DeviceSpec;
use crate::kernel::LaunchReport;
use crate::memory::{coalesced_transactions, uncoalesced_transactions};
use serde::{Serialize, Value};
use telemetry::Telemetry;

/// A serializable profile of one simulated kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileSnapshot {
    /// Device the launch was modelled on.
    pub device: String,
    /// Kernel variant ("general" / "unrolled").
    pub variant: String,
    /// Thread blocks in the grid (= tensors).
    pub num_blocks: usize,
    /// Threads per block (= starting vectors).
    pub threads_per_block: usize,
    /// Warps launched in total.
    pub num_warps: usize,

    /// Registers per thread (occupancy input).
    pub registers_per_thread: usize,
    /// Shared memory per block in bytes (occupancy input).
    pub shared_mem_per_block: usize,
    /// Resident blocks per SM.
    pub blocks_per_sm: usize,
    /// Resident warps per SM.
    pub warps_per_sm: usize,
    /// Occupancy fraction in `[0, 1]`.
    pub occupancy: f64,
    /// Resource that bounded occupancy.
    pub occupancy_limiter: String,

    /// Full operation-counter breakdown summed over all threads.
    pub counters: CounterBreakdown,
    /// Useful floating-point operations (FMA = 2).
    pub useful_flops: u64,
    /// SIMD efficiency in `[0, 1]` (1 = no divergence, full warps).
    pub simd_efficiency: f64,
    /// Issue slots lost to divergence: warp-serial minus the
    /// divergence-free per-lane cost, in weighted instruction units.
    pub divergence_overhead_instructions: u64,

    /// Global-memory words moved (loads + stores).
    pub global_words: u64,
    /// 128-byte transactions assuming the kernel's coalesced access
    /// pattern (consecutive threads touch consecutive words).
    pub coalesced_transactions: u64,
    /// Transactions the same traffic would need fully uncoalesced — the
    /// ratio to `coalesced_transactions` is the coalescing win.
    pub uncoalesced_transactions: u64,
    /// Shared-memory accesses (all conflict-free broadcasts / unit
    /// strides in this kernel; bank-conflict replay factor 1).
    pub shared_accesses: u64,

    /// Compute-bound seconds.
    pub compute_seconds: f64,
    /// Memory-bound seconds.
    pub memory_seconds: f64,
    /// Total estimated seconds (max of the two plus launch overhead).
    pub seconds: f64,
    /// Issue efficiency applied by the timing model.
    pub issue_efficiency: f64,
    /// SMs with work.
    pub active_sms: usize,
    /// Achieved GFLOP/s.
    pub gflops: f64,
    /// Device peak single-precision GFLOP/s, for the achieved fraction.
    pub peak_gflops: f64,
}

/// The per-kind operation counts of a launch, in export form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterBreakdown {
    /// Floating-point adds/subtracts.
    pub fadd: u64,
    /// Floating-point multiplies.
    pub fmul: u64,
    /// Fused multiply-adds.
    pub ffma: u64,
    /// Divisions.
    pub fdiv: u64,
    /// Square roots.
    pub fsqrt: u64,
    /// Integer/address operations.
    pub int_ops: u64,
    /// Shared-memory loads.
    pub shared_loads: u64,
    /// Shared-memory stores.
    pub shared_stores: u64,
    /// Global-memory loads.
    pub global_loads: u64,
    /// Global-memory stores.
    pub global_stores: u64,
}

impl ProfileSnapshot {
    /// Build a snapshot from a launch report on `device`.
    pub fn from_report(device: &DeviceSpec, report: &LaunchReport) -> ProfileSnapshot {
        let c = &report.stats.counters;
        let global_words = c.global_words();
        ProfileSnapshot {
            device: device.name.to_owned(),
            variant: report.variant.name().to_owned(),
            num_blocks: report.grid.num_blocks,
            threads_per_block: report.grid.threads_per_block,
            num_warps: report.stats.num_warps,
            registers_per_thread: report.resources.registers_per_thread,
            shared_mem_per_block: report.resources.shared_mem_per_block,
            blocks_per_sm: report.occupancy.blocks_per_sm,
            warps_per_sm: report.occupancy.warps_per_sm,
            occupancy: report.occupancy.fraction,
            occupancy_limiter: report.occupancy.limiter.to_owned(),
            counters: CounterBreakdown {
                fadd: c.fadd,
                fmul: c.fmul,
                ffma: c.ffma,
                fdiv: c.fdiv,
                fsqrt: c.fsqrt,
                int_ops: c.int_ops,
                shared_loads: c.shared_loads,
                shared_stores: c.shared_stores,
                global_loads: c.global_loads,
                global_stores: c.global_stores,
            },
            useful_flops: report.useful_flops,
            simd_efficiency: report.stats.simd_efficiency(report.grid.warp_size),
            divergence_overhead_instructions: report.stats.warp_serial_instructions.saturating_sub(
                report.stats.thread_instructions / (report.grid.warp_size as u64).max(1),
            ),
            global_words,
            coalesced_transactions: coalesced_transactions(global_words as usize) as u64,
            uncoalesced_transactions: uncoalesced_transactions(global_words as usize) as u64,
            shared_accesses: c.shared_accesses(),
            compute_seconds: report.timing.compute_seconds,
            memory_seconds: report.timing.memory_seconds,
            seconds: report.timing.seconds,
            issue_efficiency: report.timing.issue_efficiency,
            active_sms: report.timing.active_sms,
            gflops: report.gflops,
            peak_gflops: device.peak_sp_gflops(),
        }
    }

    /// Fraction of device peak the launch achieved.
    pub fn peak_fraction(&self) -> f64 {
        if self.peak_gflops > 0.0 {
            self.gflops / self.peak_gflops
        } else {
            0.0
        }
    }

    /// Pretty-printed JSON.
    pub fn to_json_pretty(&self) -> String {
        self.to_value().to_json_pretty()
    }

    /// Emit this snapshot as a `gpu.launch` custom telemetry event and
    /// mirror its headline numbers onto gauges.
    pub fn emit(&self, telemetry: &Telemetry) {
        if !telemetry.is_enabled() {
            return;
        }
        telemetry.event("gpu.launch", self.to_value());
        telemetry.gauge("gpu.gflops", self.gflops);
        telemetry.gauge("gpu.occupancy", self.occupancy);
        telemetry.gauge("gpu.simd_efficiency", self.simd_efficiency);
        telemetry.counter("gpu.useful_flops", self.useful_flops);
        telemetry.counter("gpu.launches", 1);
    }
}

impl Serialize for CounterBreakdown {
    fn to_value(&self) -> Value {
        Value::object(vec![
            ("fadd", Value::UInt(self.fadd)),
            ("fmul", Value::UInt(self.fmul)),
            ("ffma", Value::UInt(self.ffma)),
            ("fdiv", Value::UInt(self.fdiv)),
            ("fsqrt", Value::UInt(self.fsqrt)),
            ("int_ops", Value::UInt(self.int_ops)),
            ("shared_loads", Value::UInt(self.shared_loads)),
            ("shared_stores", Value::UInt(self.shared_stores)),
            ("global_loads", Value::UInt(self.global_loads)),
            ("global_stores", Value::UInt(self.global_stores)),
        ])
    }
}

impl Serialize for ProfileSnapshot {
    fn to_value(&self) -> Value {
        Value::object(vec![
            ("device", Value::Str(self.device.clone())),
            ("variant", Value::Str(self.variant.clone())),
            ("num_blocks", Value::UInt(self.num_blocks as u64)),
            (
                "threads_per_block",
                Value::UInt(self.threads_per_block as u64),
            ),
            ("num_warps", Value::UInt(self.num_warps as u64)),
            (
                "registers_per_thread",
                Value::UInt(self.registers_per_thread as u64),
            ),
            (
                "shared_mem_per_block",
                Value::UInt(self.shared_mem_per_block as u64),
            ),
            ("blocks_per_sm", Value::UInt(self.blocks_per_sm as u64)),
            ("warps_per_sm", Value::UInt(self.warps_per_sm as u64)),
            ("occupancy", Value::Float(self.occupancy)),
            (
                "occupancy_limiter",
                Value::Str(self.occupancy_limiter.clone()),
            ),
            ("counters", self.counters.to_value()),
            ("useful_flops", Value::UInt(self.useful_flops)),
            ("simd_efficiency", Value::Float(self.simd_efficiency)),
            (
                "divergence_overhead_instructions",
                Value::UInt(self.divergence_overhead_instructions),
            ),
            ("global_words", Value::UInt(self.global_words)),
            (
                "coalesced_transactions",
                Value::UInt(self.coalesced_transactions),
            ),
            (
                "uncoalesced_transactions",
                Value::UInt(self.uncoalesced_transactions),
            ),
            ("shared_accesses", Value::UInt(self.shared_accesses)),
            ("compute_seconds", Value::Float(self.compute_seconds)),
            ("memory_seconds", Value::Float(self.memory_seconds)),
            ("seconds", Value::Float(self.seconds)),
            ("issue_efficiency", Value::Float(self.issue_efficiency)),
            ("active_sms", Value::UInt(self.active_sms as u64)),
            ("gflops", Value::Float(self.gflops)),
            ("peak_gflops", Value::Float(self.peak_gflops)),
            ("peak_fraction", Value::Float(self.peak_fraction())),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{launch_sshopm, GpuVariant};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sshopm::starts::random_uniform_starts;
    use sshopm::IterationPolicy;
    use symtensor::TensorBatch;

    fn sample_snapshot() -> ProfileSnapshot {
        let mut rng = StdRng::seed_from_u64(21);
        let tensors = TensorBatch::<f32>::random(4, 3, 6, &mut rng).unwrap();
        let starts = random_uniform_starts(3, 32, &mut rng);
        let device = DeviceSpec::tesla_c2050();
        let (_, report) = launch_sshopm(
            &device,
            &tensors,
            &starts,
            IterationPolicy::Fixed(12),
            0.0,
            GpuVariant::General,
        )
        .unwrap();
        ProfileSnapshot::from_report(&device, &report)
    }

    #[test]
    fn snapshot_matches_report_fields() {
        let snap = sample_snapshot();
        assert_eq!(snap.variant, "general");
        assert_eq!(snap.num_blocks, 6);
        assert_eq!(snap.threads_per_block, 32);
        assert!(snap.useful_flops > 0);
        assert!(snap.occupancy > 0.0 && snap.occupancy <= 1.0);
        assert!(snap.seconds > 0.0);
        assert!(snap.peak_fraction() > 0.0 && snap.peak_fraction() < 1.0);
        assert_eq!(
            snap.global_words,
            snap.counters.global_loads + snap.counters.global_stores
        );
        assert!(snap.coalesced_transactions <= snap.uncoalesced_transactions);
    }

    #[test]
    fn snapshot_serializes_to_parseable_json() {
        let snap = sample_snapshot();
        let json = snap.to_json_pretty();
        let value = Value::parse_json(&json).expect("valid JSON");
        assert_eq!(
            value.get("variant").and_then(Value::as_str),
            Some("general")
        );
        assert_eq!(
            value.get("useful_flops").and_then(Value::as_u64),
            Some(snap.useful_flops)
        );
        let counters = value.get("counters").expect("counters object");
        assert_eq!(
            counters.get("ffma").and_then(Value::as_u64),
            Some(snap.counters.ffma)
        );
        assert!(value.get("peak_fraction").and_then(Value::as_f64).is_some());
    }

    #[test]
    fn emit_reaches_telemetry() {
        let snap = sample_snapshot();
        let tel = Telemetry::enabled();
        snap.emit(&tel);
        let agg = tel.snapshot();
        assert_eq!(agg.counter("gpu.launches"), Some(1));
        assert_eq!(agg.counter("gpu.useful_flops"), Some(snap.useful_flops));
        assert_eq!(agg.gauge("gpu.gflops"), Some(snap.gflops));
        assert_eq!(agg.events.len(), 1);
        assert_eq!(agg.events[0].0, "gpu.launch");

        // Disabled handle: emit is a no-op.
        snap.emit(&Telemetry::disabled());
    }
}
