//! Memory-system models: global-memory coalescing and shared-memory bank
//! conflicts.
//!
//! These are first-order models of the two effects that matter for the
//! batched SS-HOPM kernel: (1) the cooperative staging of each tensor from
//! global into shared memory coalesces into 128-byte transactions; (2) all
//! threads of a warp read the *same* shared-memory word of the staged
//! tensor each step, which is a broadcast and costs no conflict on Fermi.

/// Global-memory transaction size in bytes (Fermi L1 cache line).
pub const TRANSACTION_BYTES: usize = 128;

/// Number of shared-memory banks (Fermi).
pub const SHARED_BANKS: usize = 32;

/// Number of 128-byte transactions needed to move `words` consecutive
/// 32-bit words with perfectly coalesced accesses.
pub fn coalesced_transactions(words: usize) -> usize {
    (words * 4).div_ceil(TRANSACTION_BYTES)
}

/// Number of transactions for a fully *uncoalesced* (stride-N or random)
/// access pattern: one transaction per word.
pub fn uncoalesced_transactions(words: usize) -> usize {
    words
}

/// Shared-memory access cost in "conflict-free access" units for one warp
/// where lane `i` reads word index `addrs[i]`.
///
/// Fermi resolves a warp's shared accesses in one pass per distinct bank
/// *degree*: if the maximum number of distinct words mapping to the same
/// bank is `d`, the access is replayed `d` times. Lanes reading the *same*
/// word are broadcast and count once.
pub fn bank_conflict_factor(addrs: &[usize]) -> usize {
    let mut per_bank_words: Vec<Vec<usize>> = vec![Vec::new(); SHARED_BANKS];
    for &a in addrs {
        let bank = a % SHARED_BANKS;
        if !per_bank_words[bank].contains(&a) {
            per_bank_words[bank].push(a);
        }
    }
    per_bank_words
        .iter()
        .map(|w| w.len())
        .max()
        .unwrap_or(0)
        .max(1)
}

/// Time in seconds to move `bytes` at `bandwidth_gbs` GB/s.
pub fn transfer_seconds(bytes: u64, bandwidth_gbs: f64) -> f64 {
    bytes as f64 / (bandwidth_gbs * 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesced_transaction_counts() {
        assert_eq!(coalesced_transactions(0), 0);
        assert_eq!(coalesced_transactions(1), 1);
        assert_eq!(coalesced_transactions(32), 1); // 128 bytes exactly
        assert_eq!(coalesced_transactions(33), 2);
        assert_eq!(coalesced_transactions(64), 2);
    }

    #[test]
    fn uncoalesced_is_one_per_word() {
        assert_eq!(uncoalesced_transactions(17), 17);
    }

    #[test]
    fn broadcast_is_conflict_free() {
        // Whole warp reads the same word: factor 1.
        let addrs = vec![5usize; 32];
        assert_eq!(bank_conflict_factor(&addrs), 1);
    }

    #[test]
    fn unit_stride_is_conflict_free() {
        let addrs: Vec<usize> = (0..32).collect();
        assert_eq!(bank_conflict_factor(&addrs), 1);
    }

    #[test]
    fn stride_two_gives_two_way_conflict() {
        let addrs: Vec<usize> = (0..32).map(|i| 2 * i).collect();
        assert_eq!(bank_conflict_factor(&addrs), 2);
    }

    #[test]
    fn stride_32_gives_full_serialization() {
        let addrs: Vec<usize> = (0..32).map(|i| 32 * i).collect();
        assert_eq!(bank_conflict_factor(&addrs), 32);
    }

    #[test]
    fn empty_warp_costs_one() {
        assert_eq!(bank_conflict_factor(&[]), 1);
    }

    #[test]
    fn transfer_time_scales_linearly() {
        let t1 = transfer_seconds(1_000_000, 100.0);
        let t2 = transfer_seconds(2_000_000, 100.0);
        assert!((t2 - 2.0 * t1).abs() < 1e-15);
        assert!((transfer_seconds(100_000_000_000, 100.0) - 1.0).abs() < 1e-9);
    }
}
