//! The occupancy calculator: how many blocks and warps fit on one SM given
//! a kernel's register and shared-memory footprint.
//!
//! This is the mechanism behind two observations in the paper:
//! Section V-B (a block of 128 threads and ~50 tensors fills the machine
//! with 3–4 blocks per SM) and Section V-E (growing the tensor size grows
//! per-thread registers and per-block shared memory, so occupancy — and
//! with it performance — drops past roughly order 4, dimension 5).

use crate::device::DeviceSpec;

/// Static resource footprint of a kernel launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelResources {
    /// 32-bit registers used by each thread.
    pub registers_per_thread: usize,
    /// Shared memory per block, bytes.
    pub shared_mem_per_block: usize,
    /// Threads per block.
    pub threads_per_block: usize,
}

impl KernelResources {
    /// Resource footprint of the batched SS-HOPM kernel for shape `(m, n)`
    /// with scalars of `elem_size` bytes (4 for `f32`, 8 for `f64`).
    ///
    /// * Registers: the iterate `x` and accumulator `y` (`2n` scalars),
    ///   scalar temporaries (λ, α, norm, ≈ 8), plus — in the *unrolled*
    ///   variant — the compiler keeps monomial products alive (≈ `n` more).
    ///   Each scalar occupies `elem_size / 4` 32-bit registers (register
    ///   pairs for `f64`, as on real Fermi). The *general* variant instead
    ///   carries the index array (`m` 32-bit ints).
    /// * Shared memory: the tensor's packed unique entries (`U` scalars of
    ///   `elem_size` bytes), plus the shared index/coefficient tables
    ///   (always 32-bit integers) in the general variant.
    pub fn sshopm(
        m: usize,
        n: usize,
        threads_per_block: usize,
        elem_size: usize,
        unrolled: bool,
    ) -> Self {
        let u = symtensor::multinomial::num_unique_entries(m, n) as usize;
        // 32-bit register words per scalar: 1 for f32, 2 for f64.
        let words = elem_size.div_ceil(4).max(1);
        let scalar_regs = if unrolled { 2 * n + 8 + n } else { 2 * n + 8 };
        let int_regs = if unrolled { 0 } else { m };
        let registers_per_thread = scalar_regs * words + int_regs;
        let shared_mem_per_block = if unrolled {
            elem_size * u
        } else {
            // values + index reps (m u32 per entry) + coefficients (u32).
            elem_size * u + 4 * m * u + 4 * u
        };
        Self {
            registers_per_thread,
            shared_mem_per_block,
            threads_per_block,
        }
    }
}

/// The result of an occupancy computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Occupancy {
    /// Resident blocks per SM.
    pub blocks_per_sm: usize,
    /// Resident warps per SM.
    pub warps_per_sm: usize,
    /// `warps_per_sm / device.max_warps_per_sm` in `[0, 1]`.
    pub fraction: f64,
    /// Which resource bound the occupancy ("registers", "shared memory",
    /// "thread count", "block slots", or "block too large").
    pub limiter: &'static str,
}

impl Occupancy {
    /// Compute occupancy for a kernel on a device.
    ///
    /// Returns `blocks_per_sm == 0` (limiter "block too large") if a single
    /// block exceeds the SM's resources.
    pub fn compute(device: &DeviceSpec, res: &KernelResources) -> Occupancy {
        let regs_per_block = res.registers_per_thread * res.threads_per_block;
        if res.threads_per_block > device.max_threads_per_block
            || res.registers_per_thread > device.max_registers_per_thread
            || regs_per_block > device.registers_per_sm
            || res.shared_mem_per_block > device.shared_mem_per_sm
        {
            return Occupancy {
                blocks_per_sm: 0,
                warps_per_sm: 0,
                fraction: 0.0,
                limiter: "block too large",
            };
        }
        let by_regs = device.registers_per_sm / regs_per_block.max(1);
        let by_smem = device
            .shared_mem_per_sm
            .checked_div(res.shared_mem_per_block)
            .unwrap_or(usize::MAX);
        let by_threads = device.max_threads_per_sm / res.threads_per_block.max(1);
        let by_slots = device.max_blocks_per_sm;

        let blocks = by_regs.min(by_smem).min(by_threads).min(by_slots);
        let limiter = if blocks == by_regs
            && by_regs <= by_smem
            && by_regs <= by_threads
            && by_regs <= by_slots
        {
            "registers"
        } else if blocks == by_smem && by_smem <= by_threads && by_smem <= by_slots {
            "shared memory"
        } else if blocks == by_threads && by_threads <= by_slots {
            "thread count"
        } else {
            "block slots"
        };

        let warps_per_block = res.threads_per_block.div_ceil(device.warp_size);
        let warps = blocks * warps_per_block;
        Occupancy {
            blocks_per_sm: blocks,
            warps_per_sm: warps,
            fraction: warps as f64 / device.max_warps_per_sm() as f64,
            limiter,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c2050() -> DeviceSpec {
        DeviceSpec::tesla_c2050()
    }

    #[test]
    fn paper_configuration_fills_sms_with_multiple_blocks() {
        // Section V-B: 128 threads/block, small (4,3) tensors -> "three or
        // four thread blocks each" SM at minimum; our model allows more
        // since registers are small, capped by the 8-block slot limit.
        let res = KernelResources::sshopm(4, 3, 128, 4, true);
        let occ = Occupancy::compute(&c2050(), &res);
        assert!(occ.blocks_per_sm >= 3, "{occ:?}");
        assert!(occ.fraction > 0.5, "{occ:?}");
    }

    #[test]
    fn unrolled_uses_less_shared_memory_than_general() {
        let unrolled = KernelResources::sshopm(4, 3, 128, 4, true);
        let general = KernelResources::sshopm(4, 3, 128, 4, false);
        assert!(unrolled.shared_mem_per_block < general.shared_mem_per_block);
    }

    #[test]
    fn occupancy_drops_as_tensor_grows() {
        // Section V-E: "decreased performance for tensor sizes past a
        // threshold of around order 4 and dimension 5".
        let d = c2050();
        let small = Occupancy::compute(&d, &KernelResources::sshopm(4, 3, 128, 4, true));
        let mid = Occupancy::compute(&d, &KernelResources::sshopm(4, 5, 128, 4, true));
        let large = Occupancy::compute(&d, &KernelResources::sshopm(6, 8, 128, 4, true));
        assert!(small.fraction >= mid.fraction);
        assert!(mid.fraction >= large.fraction);
    }

    #[test]
    fn f32_footprint_matches_table_ii_era_model() {
        // Regression: the element-size parameter must not change the f32
        // numbers the paper-facing tests were calibrated against.
        // Unrolled (4,3): 15 unique entries -> 60 B smem, 3n+8 = 17 regs.
        let unrolled = KernelResources::sshopm(4, 3, 128, 4, true);
        assert_eq!(unrolled.shared_mem_per_block, 60);
        assert_eq!(unrolled.registers_per_thread, 17);
        // General (4,3): (4 + 4*4 + 4) * 15 = 360 B, 2n+8+m = 18 regs.
        let general = KernelResources::sshopm(4, 3, 128, 4, false);
        assert_eq!(general.shared_mem_per_block, 360);
        assert_eq!(general.registers_per_thread, 18);
    }

    #[test]
    fn f64_doubles_scalar_footprint_but_not_integer_tables() {
        // The old model hardcoded 4-byte scalars, under-counting f64 shared
        // memory ~2x and over-reporting occupancy.
        let f32_u = KernelResources::sshopm(4, 3, 128, 4, true);
        let f64_u = KernelResources::sshopm(4, 3, 128, 8, true);
        assert_eq!(f64_u.shared_mem_per_block, 2 * f32_u.shared_mem_per_block);
        assert_eq!(f64_u.registers_per_thread, 2 * f32_u.registers_per_thread);
        // General variant: scalar values double, u32 index/coeff tables
        // stay 4-byte, so the total grows by exactly 4*U bytes.
        let f32_g = KernelResources::sshopm(4, 3, 128, 4, false);
        let f64_g = KernelResources::sshopm(4, 3, 128, 8, false);
        assert_eq!(
            f64_g.shared_mem_per_block,
            f32_g.shared_mem_per_block + 4 * 15
        );
        // And occupancy can only get worse in f64, never better.
        let d = c2050();
        for unrolled in [true, false] {
            for (m, n) in [(4usize, 3usize), (4, 5), (6, 8)] {
                let o32 = Occupancy::compute(&d, &KernelResources::sshopm(m, n, 128, 4, unrolled));
                let o64 = Occupancy::compute(&d, &KernelResources::sshopm(m, n, 128, 8, unrolled));
                assert!(
                    o64.fraction <= o32.fraction + 1e-12,
                    "({m},{n}) unrolled={unrolled}: {o64:?} vs {o32:?}"
                );
            }
        }
    }

    #[test]
    fn register_limited_kernel() {
        let d = c2050();
        let res = KernelResources {
            registers_per_thread: 63,
            shared_mem_per_block: 0,
            threads_per_block: 512,
        };
        // 63*512 = 32256 regs per block; 32768/32256 = 1 block.
        let occ = Occupancy::compute(&d, &res);
        assert_eq!(occ.blocks_per_sm, 1);
        assert_eq!(occ.limiter, "registers");
    }

    #[test]
    fn shared_memory_limited_kernel() {
        let d = c2050();
        let res = KernelResources {
            registers_per_thread: 16,
            shared_mem_per_block: 24 * 1024,
            threads_per_block: 64,
        };
        let occ = Occupancy::compute(&d, &res);
        assert_eq!(occ.blocks_per_sm, 2);
        assert_eq!(occ.limiter, "shared memory");
    }

    #[test]
    fn slot_limited_kernel() {
        let d = c2050();
        let res = KernelResources {
            registers_per_thread: 8,
            shared_mem_per_block: 64,
            threads_per_block: 32,
        };
        let occ = Occupancy::compute(&d, &res);
        assert_eq!(occ.blocks_per_sm, 8);
        assert_eq!(occ.limiter, "block slots");
    }

    #[test]
    fn thread_limited_kernel() {
        let d = c2050();
        let res = KernelResources {
            registers_per_thread: 8,
            shared_mem_per_block: 0,
            threads_per_block: 768,
        };
        // 1536/768 = 2 blocks.
        let occ = Occupancy::compute(&d, &res);
        assert_eq!(occ.blocks_per_sm, 2);
        assert_eq!(occ.limiter, "thread count");
        assert_eq!(occ.warps_per_sm, 48);
        assert!((occ.fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn oversized_block_reports_zero_occupancy() {
        let d = c2050();
        let res = KernelResources {
            registers_per_thread: 8,
            shared_mem_per_block: 49 * 1024,
            threads_per_block: 128,
        };
        let occ = Occupancy::compute(&d, &res);
        assert_eq!(occ.blocks_per_sm, 0);
        assert_eq!(occ.limiter, "block too large");
        let res2 = KernelResources {
            registers_per_thread: 100,
            shared_mem_per_block: 0,
            threads_per_block: 128,
        };
        assert_eq!(Occupancy::compute(&d, &res2).blocks_per_sm, 0);
    }
}
