//! # gpusim — a functional + analytic SIMT GPU simulator
//!
//! The paper's evaluation platform is an NVIDIA Tesla C2050 (Fermi) driven
//! by CUDA. Rust cannot target that stack here, so this crate substitutes a
//! simulator with two halves that together preserve the *behaviour* the
//! paper's numbers depend on:
//!
//! 1. **Functional execution** ([`exec`], [`kernel`]): the exact thread
//!    organization of Section V-B — one thread block per tensor, one thread
//!    per starting vector, the tensor staged into block-shared memory, the
//!    iteration vectors in per-thread "registers" — executed faithfully
//!    (blocks in parallel via rayon, warps in lockstep with divergence
//!    tracking) and instrumented with operation counters.
//! 2. **Analytic timing** ([`timing`], [`occupancy`], [`device`]): a
//!    Fermi-class performance model that converts counted warp instructions
//!    and memory transactions into estimated cycles, limited by occupancy
//!    (register file and shared-memory pressure — the effect behind the
//!    paper's Section V-E observation that performance drops past order 4 /
//!    dimension 5).
//! 3. **Asynchronous execution** ([`stream`], [`multi`]): launches are
//!    *enqueued* as `HostToDevice` / `Kernel` / `DeviceToHost` ops on
//!    CUDA-style streams and resolved by a discrete-event scheduler
//!    against each device's engines (one copy engine + one compute engine
//!    per C2050, like real Fermi) into an event [`Timeline`] whose
//!    makespan is the modeled wall-clock — double-buffered chunking
//!    overlaps PCIe transfers with kernels exactly as streams do on
//!    hardware.
//! 4. **Cluster topology** ([`topology`]): an explicit `Cluster` → `Host`
//!    → device tree, each link (NIC and PCIe) with its own
//!    bandwidth/latency model. Sharded launches cut the packed arena into
//!    one contiguous slice per host, charge one modeled NIC transfer per
//!    non-root shard against the Al Daas et al. communication lower
//!    bound, and run each shard on the host's own stream queues.
//!
//! The model is deliberately simple and fully documented; it is calibrated
//! so the *shape* of the paper's results (GPU ≫ CPU, unrolled ≫ general,
//! saturation once the device fills) is reproduced, not the absolute 2011
//! milliseconds.

#![deny(missing_docs)]

pub mod counters;
pub mod device;
pub mod error;
pub mod exec;
pub mod fault;
pub mod kernel;
pub mod memory;
pub mod multi;
pub mod occupancy;
pub mod profile;
pub mod stream;
pub mod timing;
pub mod topology;

pub use counters::OpCounters;
pub use device::DeviceSpec;
pub use error::GpuError;
pub use exec::{GridConfig, LaunchStats};
pub use fault::{
    corrupt_tensor, FaultKind, FaultPlan, FaultSite, InjectedFault, BACKOFF_BASE_SECONDS,
    WATCHDOG_TIMEOUT_SECONDS,
};
pub use kernel::{enqueue_sshopm, launch_sshopm, GpuBatchResult, GpuVariant, LaunchReport};
pub use multi::{problem_traffic_bytes, HostTransfer, MultiGpu, MultiReport, TransferModel};
pub use occupancy::{KernelResources, Occupancy};
pub use profile::{CounterBreakdown, ProfileSnapshot};
pub use stream::{Engine, EventId, Op, OpId, StreamId, StreamQueue, TimedOp, Timeline};
pub use timing::TimingEstimate;
pub use topology::{Cluster, ClusterReport, Host, HostShard};
