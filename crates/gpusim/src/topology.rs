//! Explicit cluster topology: `Cluster` → [`Host`] → device.
//!
//! The rest of the simulator grew up around one implicit host owning N
//! devices over PCIe. This module lifts that assumption into data: a
//! [`Cluster`] is a list of [`Host`]s, each host owns its devices plus
//! *two* link models — the intra-host PCIe link its
//! [`StreamQueue`](crate::stream::StreamQueue) times copies with, and the
//! NIC connecting the host to the root node where the batch arena lives.
//!
//! Sharded execution ([`Cluster::launch`]) cuts the packed tensor arena
//! into one contiguous slice per host (proportional to the host's summed
//! peak throughput), charges one modeled NIC transfer per non-root shard
//! (shard arena + starting vectors down, packed eigenpairs back up), and
//! runs each shard through the host's own [`MultiGpu`] stream scheduling.
//! Because the tensors are independent, this schedule moves every byte at
//! most once — the communication cost is charged against the lower bound
//! of Al Daas, Ballard, Grigori et al., "Minimizing Communication for
//! Parallel Symmetric Tensor Times Same Vector Computation"
//! ([`Cluster::comm_lower_bound_bytes`]), and reports the achieved-vs-
//! bound ratio ([`ClusterReport::comm_ratio`]).

use crate::device::DeviceSpec;
use crate::error::GpuError;
use crate::kernel::{GpuBatchResult, GpuVariant};
use crate::multi::{problem_traffic_bytes, MultiGpu, MultiReport, TransferModel};
use sshopm::IterationPolicy;
use symtensor::multinomial::num_unique_entries;
use symtensor::{Scalar, TensorBatchRef};

/// One machine in a simulated cluster: its devices, the PCIe link they
/// share, and the NIC that connects the host to the root node.
#[derive(Debug, Clone, PartialEq)]
pub struct Host {
    /// The devices installed in this host (may be heterogeneous).
    pub devices: Vec<DeviceSpec>,
    /// Intra-host host↔device link (PCIe); every stream-queue copy on
    /// this host is timed against it.
    pub pcie: TransferModel,
    /// Inter-host link (NIC) to the root node; each shard crosses it
    /// once in each direction.
    pub nic: TransferModel,
}

impl Host {
    /// A host over `devices` with explicit link models.
    ///
    /// # Errors
    /// Returns [`GpuError::EmptyHost`] when the device list is empty — a
    /// host with no devices can never receive a shard.
    pub fn new(
        devices: Vec<DeviceSpec>,
        pcie: TransferModel,
        nic: TransferModel,
    ) -> Result<Self, GpuError> {
        if devices.is_empty() {
            return Err(GpuError::EmptyHost);
        }
        Ok(Self { devices, pcie, nic })
    }

    /// `count` identical devices behind the default links (PCIe 2.0 and a
    /// QDR-InfiniBand-class NIC, the interconnects of the paper's era).
    ///
    /// # Errors
    /// Returns [`GpuError::EmptyHost`] when `count` is zero.
    pub fn homogeneous(device: DeviceSpec, count: usize) -> Result<Self, GpuError> {
        Self::new(
            vec![device; count],
            TransferModel::pcie2(),
            TransferModel::qdr_infiniband(),
        )
    }

    /// Number of devices on this host.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// Summed peak single-precision throughput of the host's devices —
    /// the sharding weight.
    pub fn peak_sp_gflops(&self) -> f64 {
        self.devices.iter().map(DeviceSpec::peak_sp_gflops).sum()
    }
}

/// A simulated cluster: an ordered list of [`Host`]s. Host 0 is the
/// *root* — the batch arena starts resident there, so its shard never
/// crosses a NIC; every other host's shard pays one NIC round trip.
#[derive(Debug, Clone, PartialEq)]
pub struct Cluster {
    hosts: Vec<Host>,
}

impl Cluster {
    /// A cluster over `hosts`.
    ///
    /// # Errors
    /// Returns [`GpuError::EmptyCluster`] when the host list is empty.
    pub fn new(hosts: Vec<Host>) -> Result<Self, GpuError> {
        if hosts.is_empty() {
            return Err(GpuError::EmptyCluster);
        }
        Ok(Self { hosts })
    }

    /// `num_hosts` identical hosts of `devices_per_host` copies of
    /// `device` each, behind the default link models.
    ///
    /// # Errors
    /// Returns [`GpuError::EmptyCluster`] / [`GpuError::EmptyHost`] when
    /// either count is zero.
    pub fn homogeneous(
        device: DeviceSpec,
        num_hosts: usize,
        devices_per_host: usize,
    ) -> Result<Self, GpuError> {
        if num_hosts == 0 {
            return Err(GpuError::EmptyCluster);
        }
        let host = Host::homogeneous(device, devices_per_host)?;
        Self::new(vec![host; num_hosts])
    }

    /// The degenerate one-host cluster the rest of the stack historically
    /// assumed: all `devices` on the root, nothing ever crosses a NIC.
    ///
    /// # Errors
    /// Returns [`GpuError::EmptyHost`] when the device list is empty.
    pub fn single_host(devices: Vec<DeviceSpec>, pcie: TransferModel) -> Result<Self, GpuError> {
        Self::new(vec![Host::new(
            devices,
            pcie,
            TransferModel::qdr_infiniband(),
        )?])
    }

    /// The hosts, in shard order (host 0 is the root).
    pub fn hosts(&self) -> &[Host] {
        &self.hosts
    }

    /// Number of hosts.
    pub fn num_hosts(&self) -> usize {
        self.hosts.len()
    }

    /// Total devices across all hosts.
    pub fn num_devices(&self) -> usize {
        self.hosts.iter().map(Host::num_devices).sum()
    }

    /// All devices flattened host-major: host 0's devices first, then
    /// host 1's, and so on. This is the *global device index* order the
    /// resilient backend schedules over.
    pub fn flat_devices(&self) -> Vec<DeviceSpec> {
        self.hosts
            .iter()
            .flat_map(|h| h.devices.iter().cloned())
            .collect()
    }

    /// The host a global (host-major) device index belongs to. Indices
    /// past the last device clamp to the last host.
    pub fn host_of_device(&self, device_index: usize) -> usize {
        let mut remaining = device_index;
        for (h, host) in self.hosts.iter().enumerate() {
            if remaining < host.num_devices() {
                return h;
            }
            remaining -= host.num_devices();
        }
        self.hosts.len() - 1
    }

    /// Split `total` tensors across hosts proportionally to each host's
    /// summed peak throughput, remainder dealt to the fastest hosts
    /// first — the same policy [`MultiGpu::split`] applies to devices, one
    /// level up.
    pub fn shard(&self, total: usize) -> Vec<usize> {
        let peaks: Vec<f64> = self.hosts.iter().map(Host::peak_sp_gflops).collect();
        let sum: f64 = peaks.iter().sum();
        let mut counts: Vec<usize> = peaks
            .iter()
            .map(|p| ((p / sum) * total as f64).floor() as usize)
            .collect();
        let mut assigned: usize = counts.iter().sum();
        let mut order: Vec<usize> = (0..self.hosts.len()).collect();
        order.sort_by(|&a, &b| peaks[b].total_cmp(&peaks[a]));
        let mut i = 0;
        while assigned < total {
            counts[order[i % order.len()]] += 1;
            assigned += 1;
            i += 1;
        }
        counts
    }

    /// The Al Daas et al. communication lower bound for this problem on
    /// this cluster, in bytes.
    ///
    /// The batched problem is embarrassingly parallel (tensor-independent),
    /// so the bound specializes to the one-touch form: with the arena
    /// resident on the root, any load-balanced schedule must move each
    /// non-root host's share of the arena down at least once, its share of
    /// the packed eigenpairs back at least once, and one copy of the
    /// starting vectors to every non-root host. "Share" is the host's peak-
    /// throughput fraction — the same weights [`shard`](Cluster::shard)
    /// balances compute with. One host ⇒ zero bound.
    pub fn comm_lower_bound_bytes(
        &self,
        num_tensors: usize,
        num_starts: usize,
        m: usize,
        n: usize,
        elem: usize,
    ) -> u64 {
        if self.hosts.len() <= 1 {
            return 0;
        }
        let u = num_unique_entries(m, n);
        let arena = num_tensors as u64 * u * elem as u64;
        let results = (num_tensors * num_starts) as u64 * (n as u64 + 1) * elem as u64;
        let starts_bytes = (num_starts * n) as u64 * elem as u64;
        let total_peak: f64 = self.hosts.iter().map(Host::peak_sp_gflops).sum();
        let nonroot_peak: f64 = total_peak - self.hosts[0].peak_sp_gflops();
        let nonroot_frac = if total_peak > 0.0 {
            nonroot_peak / total_peak
        } else {
            0.0
        };
        (nonroot_frac * (arena + results) as f64).floor() as u64
            + (self.hosts.len() as u64 - 1) * starts_bytes
    }

    /// Launch the batched SS-HOPM problem across the cluster: shard the
    /// arena contiguously over hosts, charge each non-root shard one NIC
    /// round trip, and run each shard synchronously on its host's devices
    /// (one stream per device). Results come back in original tensor
    /// order and are bitwise identical to any single-host launch of the
    /// same batch — sharding changes the clock, never the arithmetic.
    ///
    /// # Errors
    /// Returns a [`GpuError`] for an empty batch or any per-host launch
    /// failure (empty starts, mixed shapes, missing unrolled kernel).
    pub fn launch<'a, S: Scalar>(
        &self,
        batch: impl Into<TensorBatchRef<'a, S>>,
        starts: &[Vec<S>],
        policy: IterationPolicy,
        alpha: f64,
        variant: GpuVariant,
    ) -> Result<(GpuBatchResult<S>, ClusterReport), GpuError> {
        self.launch_sharded(batch.into(), starts, policy, alpha, variant, None, 1)
    }

    /// Like [`launch`](Cluster::launch), but each host runs its shard
    /// through the double-buffered chunked path (`chunk_tensors` per
    /// chunk, `streams_per_device` streams), overlapping PCIe transfers
    /// with kernels exactly as [`MultiGpu::launch_pipelined`] does.
    ///
    /// # Errors
    /// Same contract as [`launch`](Cluster::launch).
    #[allow(clippy::too_many_arguments)]
    pub fn launch_pipelined<'a, S: Scalar>(
        &self,
        batch: impl Into<TensorBatchRef<'a, S>>,
        starts: &[Vec<S>],
        policy: IterationPolicy,
        alpha: f64,
        variant: GpuVariant,
        chunk_tensors: usize,
        streams_per_device: usize,
    ) -> Result<(GpuBatchResult<S>, ClusterReport), GpuError> {
        self.launch_sharded(
            batch.into(),
            starts,
            policy,
            alpha,
            variant,
            Some(chunk_tensors.max(1)),
            streams_per_device.max(1),
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn launch_sharded<S: Scalar>(
        &self,
        batch: TensorBatchRef<'_, S>,
        starts: &[Vec<S>],
        policy: IterationPolicy,
        alpha: f64,
        variant: GpuVariant,
        chunk_tensors: Option<usize>,
        streams_per_device: usize,
    ) -> Result<(GpuBatchResult<S>, ClusterReport), GpuError> {
        if batch.is_empty() {
            return Err(GpuError::EmptyBatch);
        }
        let (m, n) = (batch.order(), batch.dim());
        let elem = std::mem::size_of::<S>();
        let counts = self.shard(batch.len());

        let mut results = Vec::with_capacity(batch.len());
        let mut shards = Vec::new();
        let mut offset = 0usize;
        let mut useful_flops = 0u64;
        let mut nic_bytes = 0u64;
        let mut wall = 0.0_f64;

        for (host_index, (&count, host)) in counts.iter().zip(&self.hosts).enumerate() {
            if count == 0 {
                continue;
            }
            // Contiguous arena slice: the shard is a zero-copy sub-range
            // of the same packed buffer, so it ships over the NIC (and
            // then over PCIe) as one coalesced payload.
            let slice = batch.slice(offset..offset + count);
            offset += count;
            let mg = MultiGpu::for_host(host)?;
            let (res, report) = match chunk_tensors {
                Some(chunk) => mg.launch_pipelined(
                    slice,
                    starts,
                    policy,
                    alpha,
                    variant,
                    chunk,
                    streams_per_device,
                )?,
                None => mg.launch(slice, starts, policy, alpha, variant)?,
            };
            results.extend(res.results);
            useful_flops += report.useful_flops;
            // One modeled NIC transfer each way per non-root shard; the
            // root's shard is already resident.
            let (nic_down_bytes, nic_up_bytes) = if host_index == 0 {
                (0, 0)
            } else {
                problem_traffic_bytes(count, starts.len(), m, n, elem)
            };
            let nic_seconds = if host_index == 0 {
                0.0
            } else {
                host.nic.transfer_seconds(nic_down_bytes) + host.nic.transfer_seconds(nic_up_bytes)
            };
            nic_bytes += nic_down_bytes + nic_up_bytes;
            let seconds = nic_seconds + report.seconds;
            wall = wall.max(seconds);
            shards.push(HostShard {
                host_index,
                num_tensors: count,
                nic_down_bytes,
                nic_up_bytes,
                nic_seconds,
                seconds,
                report,
            });
        }

        let gflops = if wall > 0.0 {
            useful_flops as f64 / wall / 1e9
        } else {
            0.0
        };
        let comm_lower_bound_bytes =
            self.comm_lower_bound_bytes(batch.len(), starts.len(), m, n, elem);
        Ok((
            GpuBatchResult { results },
            ClusterReport {
                shards,
                seconds: wall,
                useful_flops,
                gflops,
                nic_bytes,
                comm_lower_bound_bytes,
            },
        ))
    }
}

/// One host's shard of a cluster launch.
#[derive(Debug, Clone)]
pub struct HostShard {
    /// Index into the cluster's host list.
    pub host_index: usize,
    /// Tensors assigned to this host.
    pub num_tensors: usize,
    /// Bytes shipped root→host over the NIC (0 for the root's shard).
    pub nic_down_bytes: u64,
    /// Bytes shipped host→root over the NIC (0 for the root's shard).
    pub nic_up_bytes: u64,
    /// Modeled NIC time both ways (0 for the root's shard).
    pub nic_seconds: f64,
    /// NIC time plus the host's device-level makespan.
    pub seconds: f64,
    /// The host's own multi-GPU launch report (per-device slices,
    /// stream timeline, makespan).
    pub report: MultiReport,
}

/// Aggregate result of a cluster launch.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// One entry per host that received work.
    pub shards: Vec<HostShard>,
    /// Wall-clock estimate: hosts run concurrently, so the slowest
    /// shard's NIC-plus-makespan chain.
    pub seconds: f64,
    /// Total useful flops across hosts.
    pub useful_flops: u64,
    /// Aggregate achieved GFLOP/s (flops / wall-clock).
    pub gflops: f64,
    /// Total bytes that crossed NICs, both directions.
    pub nic_bytes: u64,
    /// The Al Daas et al. communication lower bound for this problem on
    /// this cluster ([`Cluster::comm_lower_bound_bytes`]).
    pub comm_lower_bound_bytes: u64,
}

impl ClusterReport {
    /// Achieved NIC traffic over the communication lower bound (≥ 1 up to
    /// integer sharding rounding; 1.0 when the bound is zero, i.e. one
    /// host).
    pub fn comm_ratio(&self) -> f64 {
        if self.comm_lower_bound_bytes == 0 {
            1.0
        } else {
            self.nic_bytes as f64 / self.comm_lower_bound_bytes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sshopm::starts::random_uniform_starts;
    use symtensor::TensorBatch;

    fn workload(t: usize, v: usize, seed: u64) -> (TensorBatch<f32>, Vec<Vec<f32>>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let tensors = TensorBatch::random(4, 3, t, &mut rng).unwrap();
        let starts = random_uniform_starts(3, v, &mut rng);
        (tensors, starts)
    }

    #[test]
    fn empty_topologies_are_errors_not_panics() {
        assert_eq!(Cluster::new(vec![]).unwrap_err(), GpuError::EmptyCluster);
        assert_eq!(
            Cluster::homogeneous(DeviceSpec::tesla_c2050(), 0, 2).unwrap_err(),
            GpuError::EmptyCluster
        );
        assert_eq!(
            Cluster::homogeneous(DeviceSpec::tesla_c2050(), 2, 0).unwrap_err(),
            GpuError::EmptyHost
        );
        assert_eq!(
            Host::new(
                vec![],
                TransferModel::pcie2(),
                TransferModel::qdr_infiniband()
            )
            .unwrap_err(),
            GpuError::EmptyHost
        );
    }

    #[test]
    fn flat_devices_and_host_lookup_are_host_major() {
        let cluster = Cluster::new(vec![
            Host::homogeneous(DeviceSpec::tesla_c2050(), 2).unwrap(),
            Host::homogeneous(DeviceSpec::tesla_c1060(), 3).unwrap(),
        ])
        .unwrap();
        assert_eq!(cluster.num_hosts(), 2);
        assert_eq!(cluster.num_devices(), 5);
        let flat = cluster.flat_devices();
        assert_eq!(flat.len(), 5);
        assert_eq!(flat[1].name, DeviceSpec::tesla_c2050().name);
        assert_eq!(flat[2].name, DeviceSpec::tesla_c1060().name);
        assert_eq!(cluster.host_of_device(0), 0);
        assert_eq!(cluster.host_of_device(1), 0);
        assert_eq!(cluster.host_of_device(2), 1);
        assert_eq!(cluster.host_of_device(4), 1);
        assert_eq!(cluster.host_of_device(99), 1);
    }

    #[test]
    fn shard_is_exact_and_favors_faster_hosts() {
        let cluster = Cluster::new(vec![
            Host::homogeneous(DeviceSpec::tesla_c2050(), 2).unwrap(),
            Host::homogeneous(DeviceSpec::tesla_c1060(), 2).unwrap(),
        ])
        .unwrap();
        let counts = cluster.shard(1000);
        assert_eq!(counts.iter().sum::<usize>(), 1000);
        assert!(counts[0] > counts[1], "{counts:?}");
        let even = Cluster::homogeneous(DeviceSpec::tesla_c2050(), 4, 2)
            .unwrap()
            .shard(1024);
        assert_eq!(even, vec![256; 4]);
    }

    #[test]
    fn cluster_results_match_single_host_bitwise() {
        let (tensors, starts) = workload(64, 16, 11);
        let policy = IterationPolicy::Fixed(8);
        let single =
            MultiGpu::homogeneous(DeviceSpec::tesla_c2050(), 2, TransferModel::pcie2()).unwrap();
        let (base, _) = single
            .launch(&tensors, &starts, policy, 0.0, GpuVariant::Unrolled)
            .unwrap();
        let cluster = Cluster::homogeneous(DeviceSpec::tesla_c2050(), 2, 2).unwrap();
        let (sharded, report) = cluster
            .launch(&tensors, &starts, policy, 0.0, GpuVariant::Unrolled)
            .unwrap();
        assert_eq!(sharded.results.len(), base.results.len());
        for (a, b) in sharded
            .results
            .iter()
            .flatten()
            .zip(base.results.iter().flatten())
        {
            assert_eq!(a.lambda.to_bits(), b.lambda.to_bits());
            for (xa, xb) in a.x.iter().zip(&b.x) {
                assert_eq!(xa.to_bits(), xb.to_bits());
            }
        }
        assert_eq!(report.shards.len(), 2);
    }

    #[test]
    fn root_shard_is_nic_free_and_nonroot_shards_pay() {
        let (tensors, starts) = workload(128, 16, 12);
        let cluster = Cluster::homogeneous(DeviceSpec::tesla_c2050(), 2, 1).unwrap();
        let (_, report) = cluster
            .launch(
                &tensors,
                &starts,
                IterationPolicy::Fixed(5),
                0.0,
                GpuVariant::Unrolled,
            )
            .unwrap();
        assert_eq!(report.shards[0].nic_down_bytes, 0);
        assert_eq!(report.shards[0].nic_seconds, 0.0);
        assert!(report.shards[1].nic_down_bytes > 0);
        assert!(report.shards[1].nic_up_bytes > 0);
        assert!(report.shards[1].nic_seconds > 0.0);
        assert_eq!(
            report.nic_bytes,
            report.shards[1].nic_down_bytes + report.shards[1].nic_up_bytes
        );
    }

    #[test]
    fn communication_stays_near_the_lower_bound() {
        let (tensors, starts) = workload(4096, 8, 13);
        for hosts in [1usize, 2, 4, 8] {
            let cluster = Cluster::homogeneous(DeviceSpec::tesla_c2050(), hosts, 2).unwrap();
            let (_, report) = cluster
                .launch(
                    &tensors,
                    &starts,
                    IterationPolicy::Fixed(3),
                    0.0,
                    GpuVariant::Unrolled,
                )
                .unwrap();
            let ratio = report.comm_ratio();
            assert!(
                (0.9..8.0).contains(&ratio),
                "{hosts} hosts: ratio {ratio} (achieved {} vs bound {})",
                report.nic_bytes,
                report.comm_lower_bound_bytes
            );
        }
    }

    #[test]
    fn makespan_decreases_as_hosts_are_added() {
        let (tensors, starts) = workload(2048, 32, 14);
        let policy = IterationPolicy::Fixed(10);
        let mut last = f64::INFINITY;
        for hosts in [1usize, 2, 4] {
            let cluster = Cluster::homogeneous(DeviceSpec::tesla_c2050(), hosts, 2).unwrap();
            let (_, report) = cluster
                .launch(&tensors, &starts, policy, 0.0, GpuVariant::Unrolled)
                .unwrap();
            assert!(
                report.seconds < last,
                "{hosts} hosts: {} not below {last}",
                report.seconds
            );
            last = report.seconds;
        }
    }

    #[test]
    fn one_host_has_zero_bound_and_unit_ratio() {
        let cluster = Cluster::homogeneous(DeviceSpec::tesla_c2050(), 1, 4).unwrap();
        assert_eq!(cluster.comm_lower_bound_bytes(1000, 16, 4, 3, 4), 0);
        let (tensors, starts) = workload(32, 8, 15);
        let (_, report) = cluster
            .launch(
                &tensors,
                &starts,
                IterationPolicy::Fixed(3),
                0.0,
                GpuVariant::Unrolled,
            )
            .unwrap();
        assert_eq!(report.nic_bytes, 0);
        assert_eq!(report.comm_ratio(), 1.0);
    }

    #[test]
    fn pipelined_cluster_results_match_synchronous() {
        let (tensors, starts) = workload(300, 16, 16);
        let policy = IterationPolicy::Fixed(6);
        let cluster = Cluster::homogeneous(DeviceSpec::tesla_c2050(), 2, 2).unwrap();
        let (sync, _) = cluster
            .launch(&tensors, &starts, policy, 0.0, GpuVariant::Unrolled)
            .unwrap();
        let (piped, _) = cluster
            .launch_pipelined(&tensors, &starts, policy, 0.0, GpuVariant::Unrolled, 64, 2)
            .unwrap();
        for (a, b) in piped
            .results
            .iter()
            .flatten()
            .zip(sync.results.iter().flatten())
        {
            assert_eq!(a.lambda.to_bits(), b.lambda.to_bits());
        }
    }

    #[test]
    fn empty_batch_is_an_error() {
        let cluster = Cluster::homogeneous(DeviceSpec::tesla_c2050(), 2, 1).unwrap();
        let none = TensorBatch::<f32>::new(4, 3).unwrap();
        let starts = vec![vec![1.0f32, 0.0, 0.0]];
        let err = cluster
            .launch(
                &none,
                &starts,
                IterationPolicy::Fixed(5),
                0.0,
                GpuVariant::General,
            )
            .unwrap_err();
        assert_eq!(err, GpuError::EmptyBatch);
    }
}
