//! The functional execution engine: a grid of thread blocks executed on CPU
//! threads, with SIMT warp accounting.
//!
//! Blocks are independent (the paper's problem has no inter-block
//! communication), so they run in parallel via rayon. Within a block,
//! threads are grouped into warps of `warp_size`; the engine tracks, per
//! warp, the *maximum* per-thread instruction count — a warp in a real SIMT
//! machine executes until its slowest lane finishes, which is exactly how
//! convergence divergence costs time on the GPU.

use crate::counters::OpCounters;
use rayon::prelude::*;

/// Grid geometry for a launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridConfig {
    /// Number of thread blocks.
    pub num_blocks: usize,
    /// Threads per block.
    pub threads_per_block: usize,
    /// Threads per warp (32 on NVIDIA hardware).
    pub warp_size: usize,
}

impl GridConfig {
    /// Total threads in the grid.
    pub fn total_threads(&self) -> usize {
        self.num_blocks * self.threads_per_block
    }

    /// Warps per block (rounded up — a trailing partial warp still occupies
    /// a full warp slot).
    pub fn warps_per_block(&self) -> usize {
        self.threads_per_block.div_ceil(self.warp_size)
    }

    /// Total warps in the grid.
    pub fn total_warps(&self) -> usize {
        self.num_blocks * self.warps_per_block()
    }
}

/// Result of one thread's execution: its output value plus its accounting.
#[derive(Debug, Clone)]
pub struct ThreadRecord<T> {
    /// The kernel's per-thread output.
    pub output: T,
    /// Operation counts for this thread.
    pub counters: OpCounters,
    /// Issue-slot-weighted instruction count for warp-serial accounting
    /// (expensive ops like division count as several slots).
    pub weighted_instructions: u64,
}

/// Aggregated statistics of a whole launch.
#[derive(Debug, Clone, Default)]
pub struct LaunchStats {
    /// Sum of all threads' counters (plus block-level staging traffic).
    pub counters: OpCounters,
    /// Divergence-aware issue cost: `Σ_warps max_lane(weighted_instructions)`.
    pub warp_serial_instructions: u64,
    /// `Σ_threads weighted_instructions` (the divergence-free lower bound).
    pub thread_instructions: u64,
    /// Number of warps launched.
    pub num_warps: usize,
}

impl LaunchStats {
    /// SIMD efficiency in `[0, 1]`: thread work over warp-serial work
    /// scaled by warp width. 1.0 means no divergence *and* full warps.
    pub fn simd_efficiency(&self, warp_size: usize) -> f64 {
        if self.warp_serial_instructions == 0 {
            return 1.0;
        }
        self.thread_instructions as f64 / (self.warp_serial_instructions as f64 * warp_size as f64)
    }
}

/// Execute a grid. `block_fn(block_idx)` produces the block's per-thread
/// records plus any block-level staging counters (e.g. the cooperative
/// global→shared tensor load). Blocks run in parallel; per-warp serial
/// costs are computed here.
pub fn run_grid<T, F>(config: GridConfig, block_fn: F) -> (Vec<Vec<T>>, LaunchStats)
where
    T: Send,
    F: Fn(usize) -> (Vec<ThreadRecord<T>>, OpCounters) + Sync,
{
    let per_block: Vec<(Vec<T>, LaunchStats)> = (0..config.num_blocks)
        .into_par_iter()
        .map(|b| {
            let (records, staging) = block_fn(b);
            // Internal-contract check only (all in-crate callers size the
            // records from the grid config); debug-only so library builds
            // carry no abort path.
            debug_assert_eq!(
                records.len(),
                config.threads_per_block,
                "block_fn must return one record per thread"
            );
            let mut stats = LaunchStats {
                counters: staging,
                num_warps: config.warps_per_block(),
                ..Default::default()
            };
            let mut outputs = Vec::with_capacity(records.len());
            for warp in records.chunks(config.warp_size) {
                let mut warp_max = 0u64;
                for rec in warp {
                    stats.counters.merge(&rec.counters);
                    stats.thread_instructions += rec.weighted_instructions;
                    warp_max = warp_max.max(rec.weighted_instructions);
                }
                stats.warp_serial_instructions += warp_max;
            }
            for rec in records {
                outputs.push(rec.output);
            }
            (outputs, stats)
        })
        .collect();

    let mut outputs = Vec::with_capacity(config.num_blocks);
    let mut total = LaunchStats::default();
    for (out, stats) in per_block {
        outputs.push(out);
        total.counters.merge(&stats.counters);
        total.warp_serial_instructions += stats.warp_serial_instructions;
        total.thread_instructions += stats.thread_instructions;
        total.num_warps += stats.num_warps;
    }
    (outputs, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(weight: u64) -> ThreadRecord<u64> {
        ThreadRecord {
            output: weight,
            counters: OpCounters {
                fadd: weight,
                ..Default::default()
            },
            weighted_instructions: weight,
        }
    }

    #[test]
    fn geometry_helpers() {
        let g = GridConfig {
            num_blocks: 10,
            threads_per_block: 128,
            warp_size: 32,
        };
        assert_eq!(g.total_threads(), 1280);
        assert_eq!(g.warps_per_block(), 4);
        assert_eq!(g.total_warps(), 40);
        let partial = GridConfig {
            num_blocks: 1,
            threads_per_block: 33,
            warp_size: 32,
        };
        assert_eq!(partial.warps_per_block(), 2);
    }

    #[test]
    fn uniform_threads_have_no_divergence_cost() {
        let g = GridConfig {
            num_blocks: 4,
            threads_per_block: 64,
            warp_size: 32,
        };
        let (outputs, stats) = run_grid(g, |_b| {
            (
                (0..64).map(|_| record(100)).collect(),
                OpCounters::default(),
            )
        });
        assert_eq!(outputs.len(), 4);
        // 8 warps total, each warp-serial cost 100.
        assert_eq!(stats.warp_serial_instructions, 800);
        assert_eq!(stats.thread_instructions, 4 * 64 * 100);
        assert!((stats.simd_efficiency(32) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn divergent_warp_charges_slowest_lane() {
        let g = GridConfig {
            num_blocks: 1,
            threads_per_block: 32,
            warp_size: 32,
        };
        let (_, stats) = run_grid(g, |_b| {
            // One slow lane (1000), the rest fast (10).
            let recs = (0..32)
                .map(|t| record(if t == 0 { 1000 } else { 10 }))
                .collect();
            (recs, OpCounters::default())
        });
        assert_eq!(stats.warp_serial_instructions, 1000);
        assert_eq!(stats.thread_instructions, 1000 + 31 * 10);
        assert!(stats.simd_efficiency(32) < 0.05);
    }

    #[test]
    fn staging_counters_are_accumulated_per_block() {
        let g = GridConfig {
            num_blocks: 3,
            threads_per_block: 32,
            warp_size: 32,
        };
        let (_, stats) = run_grid(g, |_b| {
            let staging = OpCounters {
                global_loads: 15,
                shared_stores: 15,
                ..Default::default()
            };
            ((0..32).map(|_| record(1)).collect(), staging)
        });
        assert_eq!(stats.counters.global_loads, 45);
        assert_eq!(stats.counters.shared_stores, 45);
    }

    #[test]
    fn outputs_preserve_block_and_thread_order() {
        let g = GridConfig {
            num_blocks: 2,
            threads_per_block: 4,
            warp_size: 32,
        };
        let (outputs, _) = run_grid(g, |b| {
            let recs = (0..4)
                .map(|t| ThreadRecord {
                    output: (b, t),
                    counters: OpCounters::default(),
                    weighted_instructions: 1,
                })
                .collect();
            (recs, OpCounters::default())
        });
        assert_eq!(outputs[1][2], (1, 2));
        assert_eq!(outputs[0][3], (0, 3));
    }

    #[test]
    #[should_panic]
    fn wrong_record_count_panics() {
        let g = GridConfig {
            num_blocks: 1,
            threads_per_block: 8,
            warp_size: 32,
        };
        let _ = run_grid(g, |_b| {
            ((0..7).map(|_| record(1)).collect(), OpCounters::default())
        });
    }
}
