//! Differential tests pinning the runtime-generated tape kernels to the
//! two existing truths: numerically to the on-the-fly [`GeneralKernels`]
//! reference on *arbitrary* small shapes (most of which have no generated
//! unrolled kernel), and **bitwise** to [`UnrolledKernels`] on every shape
//! in [`unrolled::GENERATED_SHAPES`] — the tape replays the exact
//! floating-point operation order of the build-time codegen.

use kernelgen::{KernelRegistry, KernelStrategy, TapeKernels};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use symtensor::kernels::GeneralKernels;
use symtensor::{Scalar, SymTensor, TensorKernels};
use unrolled::{UnrolledKernels, GENERATED_SHAPES};

fn max_abs<S: Scalar>(v: &[S]) -> f64 {
    v.iter().map(|e| e.to_f64().abs()).fold(0.0, f64::max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The registry's tape plan must agree with `GeneralKernels` at 1e-12
    /// on randomized small shapes — including shapes *outside*
    /// `GENERATED_SHAPES`, which only the runtime generator covers.
    #[test]
    fn tape_matches_general_on_random_shapes(
        (m, n) in (2usize..=6, 2usize..=5),
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = SymTensor::<f64>::random(m, n, &mut rng);
        let x: Vec<f64> = (0..n).map(|i| 0.45 - 0.13 * i as f64).collect();

        let plan = KernelRegistry::global().plan::<f64>(m, n, KernelStrategy::Tape);
        prop_assert_eq!(plan.effective, KernelStrategy::Tape);

        let want = GeneralKernels.axm(a.view(), &x).unwrap();
        let got = plan.kernels.axm(a.view(), &x).unwrap();
        let scale = 1.0 + want.abs();
        prop_assert!(
            (got - want).abs() < 1e-12 * scale,
            "axm diverged on ({m},{n}): {got} vs {want}"
        );

        let mut want_y = vec![0.0f64; n];
        let mut got_y = vec![0.0f64; n];
        GeneralKernels.axm1(a.view(), &x, &mut want_y).unwrap();
        plan.kernels.axm1(a.view(), &x, &mut got_y).unwrap();
        let scale = 1.0 + max_abs(&want_y);
        for (i, (g, w)) in got_y.iter().zip(&want_y).enumerate() {
            prop_assert!(
                (g - w).abs() < 1e-12 * scale,
                "axm1 diverged on ({m},{n}) component {i}: {g} vs {w}"
            );
        }
    }
}

/// On every build-time-generated shape, tape results are bit-for-bit
/// identical to the unrolled straight-line code, in both precisions.
#[test]
fn tape_is_bitwise_identical_to_unrolled_on_generated_shapes() {
    fn check<S: Scalar>(m: usize, n: usize, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = SymTensor::<S>::random(m, n, &mut rng);
        let x: Vec<S> = (0..n).map(|i| S::from_f64(0.3 - 0.07 * i as f64)).collect();
        let tape = TapeKernels::<S>::generate(m, n).unwrap();
        let unrolled = UnrolledKernels::for_shape(m, n).unwrap();

        let got = tape.axm(a.view(), &x).unwrap();
        let want = unrolled.axm(a.view(), &x).unwrap();
        assert_eq!(
            got.to_f64().to_bits(),
            want.to_f64().to_bits(),
            "axm bits diverged on ({m},{n})"
        );

        let mut got_y = vec![S::ZERO; n];
        let mut want_y = vec![S::ZERO; n];
        tape.axm1(a.view(), &x, &mut got_y).unwrap();
        unrolled.axm1(a.view(), &x, &mut want_y).unwrap();
        for (i, (g, w)) in got_y.iter().zip(&want_y).enumerate() {
            assert_eq!(
                g.to_f64().to_bits(),
                w.to_f64().to_bits(),
                "axm1 bits diverged on ({m},{n}) component {i}"
            );
        }
    }
    for (seed, &(m, n)) in GENERATED_SHAPES.iter().enumerate() {
        check::<f32>(m, n, seed as u64);
        check::<f64>(m, n, 100 + seed as u64);
    }
}
