//! Pins the registry's memoization with an allocation counter: the first
//! request for a shape's tables/panels/tape pays the construction cost,
//! and every later request is an `Arc` clone out of the memo map — zero
//! heap allocations. This is the whole point of routing kernel
//! materialization through [`KernelRegistry`] instead of the old
//! build-a-fresh-box-per-call `resolve`, so a regression here means a
//! hot solve loop went back to re-deriving `PrecomputedTables` and lane
//! panels per chunk.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use kernelgen::{KernelRegistry, KernelStrategy};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// One test function: the counter is process-global, so concurrent tests
/// in this binary would pollute each other's deltas.
#[test]
fn memoized_requests_do_not_allocate() {
    let registry = KernelRegistry::new();

    // Cold: builds tables, panels, a tape, and the plan's kernel objects.
    let tables = registry.tables(4, 3);
    let batched = registry.batched(4, 3);
    let tape = registry.tape::<f64>(5, 4).unwrap();
    let plan = registry.plan::<f64>(4, 3, KernelStrategy::Precomputed);
    assert!(allocs() > 0, "cold construction must have allocated");

    // Warm: every request is a map lookup plus an Arc clone.
    let before = allocs();
    let tables2 = registry.tables(4, 3);
    let batched2 = registry.batched(4, 3);
    let tape2 = registry.tape::<f64>(5, 4).unwrap();
    let plan2 = registry.plan::<f64>(4, 3, KernelStrategy::Precomputed);
    let after = allocs();
    assert_eq!(
        after - before,
        0,
        "memoized table/panel/tape requests must not allocate"
    );

    // The memo really is sharing one object, not rebuilding equal ones.
    assert!(std::sync::Arc::ptr_eq(&tables, &tables2));
    assert!(std::sync::Arc::ptr_eq(&batched, &batched2));
    assert!(std::sync::Arc::ptr_eq(&tape, &tape2));
    assert_eq!(plan.effective, plan2.effective);
}
