//! Robustness tests for the on-disk artifact cache, exercised through
//! whole [`KernelRegistry`] instances the way real runs hit it: a second
//! registry pointed at the same directory must *hit* (and produce
//! byte-identical kernel results), while truncated, bit-flipped, or
//! stale-format-version entries must be detected by the content checks
//! and silently regenerated — a corrupt cache can cost time, never
//! correctness.

use std::path::PathBuf;

use kernelgen::{artifact_path, KernelRegistry, TAPE_FORMAT_VERSION};
use rand::rngs::StdRng;
use rand::SeedableRng;
use symtensor::{SymTensor, TensorKernels};

/// A non-generated shape so the tape is the only kernel that covers it.
const M: usize = 5;
const N: usize = 4;

fn unique_dir(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("tensor-eig-kernelgen-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&p).ok();
    p
}

fn solve_bits(registry: &KernelRegistry) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(7);
    let a = SymTensor::<f64>::random(M, N, &mut rng);
    let x: Vec<f64> = (0..N).map(|i| 0.4 - 0.11 * i as f64).collect();
    let kernels = registry.tape::<f64>(M, N).unwrap();
    let mut y = vec![0.0f64; N];
    kernels.axm1(a.view(), &x, &mut y).unwrap();
    let mut bits: Vec<u64> = y.iter().map(|v| v.to_bits()).collect();
    bits.push(kernels.axm(a.view(), &x).unwrap().to_bits());
    bits
}

#[test]
fn second_registry_hits_disk_and_matches_bitwise() {
    let dir = unique_dir("roundtrip");

    let first = KernelRegistry::with_cache_dir(&dir);
    let cold_bits = solve_bits(&first);
    let s = first.stats();
    assert_eq!(s.disk_hits, 0, "cold run cannot hit");
    assert_eq!(s.disk_misses, 1);
    assert_eq!(s.generated, 1);
    assert!(artifact_path(&dir, M, N, "f64").is_file());

    // A fresh registry simulates a second process: it must load the
    // artifact (100% hit rate, nothing generated) and produce the exact
    // same bits as the cold run.
    let second = KernelRegistry::with_cache_dir(&dir);
    let warm_bits = solve_bits(&second);
    let s = second.stats();
    assert_eq!(s.disk_hits, 1, "warm run must hit the artifact cache");
    assert_eq!(s.disk_misses, 0);
    assert_eq!(s.generated, 0);
    assert_eq!(s.artifact_hit_rate(), Some(1.0));
    assert_eq!(cold_bits, warm_bits, "cached tape changed the results");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_entry_is_regenerated() {
    let dir = unique_dir("truncated");
    let reference = solve_bits(&KernelRegistry::with_cache_dir(&dir));

    let path = artifact_path(&dir, M, N, "f64");
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();

    let registry = KernelRegistry::with_cache_dir(&dir);
    let bits = solve_bits(&registry);
    let s = registry.stats();
    assert_eq!(s.disk_hits, 0, "a truncated entry must not be trusted");
    assert_eq!(s.disk_misses, 1);
    assert_eq!(s.generated, 1);
    assert_eq!(bits, reference);
    // The regenerated artifact is whole again and loads cleanly.
    assert_eq!(std::fs::read(&path).unwrap().len(), bytes.len());
    let again = KernelRegistry::with_cache_dir(&dir);
    solve_bits(&again);
    assert_eq!(again.stats().disk_hits, 1);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bit_flipped_payload_is_detected_by_checksum() {
    let dir = unique_dir("bitflip");
    let reference = solve_bits(&KernelRegistry::with_cache_dir(&dir));

    let path = artifact_path(&dir, M, N, "f64");
    let mut bytes = std::fs::read(&path).unwrap();
    // Flip one bit deep inside the payload (headers stay intact, so only
    // the FNV-1a checksum can catch this).
    let i = bytes.len() - 9;
    bytes[i] ^= 0x10;
    std::fs::write(&path, &bytes).unwrap();

    let registry = KernelRegistry::with_cache_dir(&dir);
    let bits = solve_bits(&registry);
    let s = registry.stats();
    assert_eq!(s.disk_hits, 0, "a bit-flipped entry must not be trusted");
    assert_eq!(s.generated, 1);
    assert_eq!(bits, reference);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stale_format_version_is_ignored() {
    let dir = unique_dir("staleversion");
    let reference = solve_bits(&KernelRegistry::with_cache_dir(&dir));

    // Rewrite the header's version field (bytes 8..12, after the magic) to
    // a future version; everything else — checksum included — stays valid.
    let path = artifact_path(&dir, M, N, "f64");
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[8..12].copy_from_slice(&(TAPE_FORMAT_VERSION + 1).to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();

    let registry = KernelRegistry::with_cache_dir(&dir);
    let bits = solve_bits(&registry);
    let s = registry.stats();
    assert_eq!(s.disk_hits, 0, "a stale-version entry must not be trusted");
    assert_eq!(s.generated, 1);
    assert_eq!(bits, reference);

    std::fs::remove_dir_all(&dir).ok();
}
