//! The kernel tape: the unrolled straight-line kernel structure emitted as
//! data, plus the tight executor that replays it.
//!
//! `unrolled/build.rs` turns each `(m, n)` into straight-line Rust where
//! every term is `[S::from_u64(c) *] a[rank] * x_{i1} * … * x_{ik}` — index
//! representations and multinomial coefficients resolved at generation
//! time, the coefficient multiply folded away when `c == 1`. The tape stores
//! exactly those pre-resolved entry ranks, folded coefficients, and factor
//! index lists as flat arrays; [`TapeKernels`] walks them with the same
//! left-associated multiply chain and the same accumulation order, so on a
//! generated shape the results are **bitwise identical** to
//! [`unrolled::UnrolledKernels`] — while covering any small shape the
//! build script never saw.

use std::sync::Arc;

use symtensor::multinomial::{multinomial0, multinomial1, try_num_unique_entries};
use symtensor::{Error, IndexClassIter, Result, Scalar, SymTensorRef, TensorKernels};

use crate::strategy::KernelError;

/// Upper bound on flat factor-index slots (`U·m` for `axm`, incidence
/// entries times `m-1` for `axm1`) a tape may use. Shapes beyond this are
/// better served by the blocked/general kernels anyway, and the bound keeps
/// generation time and artifact size small.
pub(crate) const TAPE_MAX_SLOTS: u128 = 1 << 22;

/// Whether shape `(m, n)` is eligible for a generated kernel tape.
///
/// Requires order `2..=20` (the exact-`u64` multinomial range, and so the
/// generated terms always carry at least one `x` factor, matching the
/// unrolled code shape), a positive dimension, and a tape that fits within
/// the flat-slot budget.
pub fn tape_supported(m: usize, n: usize) -> bool {
    if !(2..=20).contains(&m) || n == 0 {
        return false;
    }
    let u = match try_num_unique_entries(m, n) {
        Ok(u) => u as u128,
        Err(_) => return false,
    };
    let inc = match try_num_unique_entries(m - 1, n) {
        Ok(c) => c as u128 * n as u128,
        Err(_) => return false,
    };
    u * m as u128 <= TAPE_MAX_SLOTS && inc * (m as u128 - 1) <= TAPE_MAX_SLOTS
}

/// A generated kernel tape for one shape: the scalar-independent data form
/// of the unrolled straight-line kernels.
///
/// All arrays are flat and index-pre-resolved; coefficients are exact
/// `u64` multinomials (converted to the scalar type once, when wrapped in
/// [`TapeKernels`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelTape {
    pub(crate) m: u32,
    pub(crate) n: u32,
    /// `A·xᵐ`: one multinomial coefficient per packed entry (index class),
    /// in lexicographic class order — the accumulation order of the
    /// generated code.
    pub(crate) axm_coeffs: Vec<u64>,
    /// `A·xᵐ`: `m` factor indices per class, concatenated.
    pub(crate) axm_idx: Vec<u32>,
    /// `A·xᵐ⁻¹`: output component `j` per incidence term.
    pub(crate) axm1_out: Vec<u32>,
    /// `A·xᵐ⁻¹`: packed entry rank per incidence term.
    pub(crate) axm1_rank: Vec<u32>,
    /// `A·xᵐ⁻¹`: coefficient `σ = multinomial1(rep, j)` per incidence term.
    pub(crate) axm1_coeffs: Vec<u64>,
    /// `A·xᵐ⁻¹`: `m - 1` factor indices per incidence term (the class with
    /// the first occurrence of `j` removed), concatenated.
    pub(crate) axm1_idx: Vec<u32>,
}

impl KernelTape {
    /// Generate the tape for shape `(m, n)`.
    ///
    /// # Errors
    /// Returns [`KernelError`] if [`tape_supported`] rejects the shape.
    pub fn generate(m: usize, n: usize) -> std::result::Result<Self, KernelError> {
        if !tape_supported(m, n) {
            return Err(KernelError(format!(
                "shape ({m}, {n}) has no tape kernel (order outside 2..=20, or tape too large)"
            )));
        }
        let num_classes = try_num_unique_entries(m, n).map_err(|e| KernelError(e.to_string()))?;
        let mut tape = KernelTape {
            m: m as u32,
            n: n as u32,
            axm_coeffs: Vec::with_capacity(num_classes as usize),
            axm_idx: Vec::with_capacity(num_classes as usize * m),
            axm1_out: Vec::new(),
            axm1_rank: Vec::new(),
            axm1_coeffs: Vec::new(),
            axm1_idx: Vec::new(),
        };
        for (rank, class) in IndexClassIter::new(m, n).enumerate() {
            let rep = class.indices();
            tape.axm_coeffs.push(multinomial0(rep));
            tape.axm_idx.extend(rep.iter().map(|&i| i as u32));

            // Distinct indices in first-occurrence order, exactly like the
            // build script's `rep.clone(); dedup()`.
            let mut distinct = rep.to_vec();
            distinct.dedup();
            for &j in &distinct {
                tape.axm1_out.push(j as u32);
                tape.axm1_rank.push(rank as u32);
                tape.axm1_coeffs.push(multinomial1(rep, j));
                // Reduced monomial: the class with the *first* occurrence of
                // `j` removed, remaining factors in class order.
                let mut removed = false;
                for &i in rep {
                    if !removed && i == j {
                        removed = true;
                    } else {
                        tape.axm1_idx.push(i as u32);
                    }
                }
            }
        }
        Ok(tape)
    }

    /// The shape `(m, n)` this tape was generated for.
    pub fn shape(&self) -> (usize, usize) {
        (self.m as usize, self.n as usize)
    }

    /// Number of packed entries (index classes).
    pub fn num_classes(&self) -> usize {
        self.axm_coeffs.len()
    }

    /// Number of `A·xᵐ⁻¹` incidence terms across all output components.
    pub fn num_axm1_terms(&self) -> usize {
        self.axm1_coeffs.len()
    }

    /// Total table words (32/64-bit slots) the tape occupies — the quantity
    /// the GPU model stages into shared memory.
    pub fn table_words(&self) -> u64 {
        (self.axm_coeffs.len()
            + self.axm_idx.len()
            + self.axm1_out.len()
            + self.axm1_rank.len()
            + self.axm1_coeffs.len()
            + self.axm1_idx.len()) as u64
    }
}

/// A [`TensorKernels`] implementation executing a [`KernelTape`] with the
/// scalar coefficients pre-converted.
#[derive(Debug, Clone)]
pub struct TapeKernels<S> {
    tape: Arc<KernelTape>,
    axm_coeff: Vec<S>,
    axm1_coeff: Vec<S>,
}

impl<S: Scalar> TapeKernels<S> {
    /// Wrap a generated tape, converting its coefficients to `S` once.
    pub fn new(tape: Arc<KernelTape>) -> Self {
        let axm_coeff = tape.axm_coeffs.iter().map(|&c| S::from_u64(c)).collect();
        let axm1_coeff = tape.axm1_coeffs.iter().map(|&c| S::from_u64(c)).collect();
        TapeKernels {
            tape,
            axm_coeff,
            axm1_coeff,
        }
    }

    /// Generate and wrap the tape for `(m, n)` in one step.
    ///
    /// # Errors
    /// Returns [`KernelError`] if the shape has no tape kernel.
    pub fn generate(m: usize, n: usize) -> std::result::Result<Self, KernelError> {
        Ok(Self::new(Arc::new(KernelTape::generate(m, n)?)))
    }

    /// The underlying tape.
    pub fn tape(&self) -> &KernelTape {
        &self.tape
    }

    fn check<'t>(&self, a: &SymTensorRef<'t, S>) -> Result<()> {
        let (m, n) = self.tape.shape();
        if (a.order(), a.dim()) != (m, n) {
            return Err(Error::ShapeMismatch {
                expected: (m, n),
                found: (a.order(), a.dim()),
            });
        }
        Ok(())
    }
}

impl<S: Scalar> TensorKernels<S> for TapeKernels<S> {
    fn axm(&self, a: SymTensorRef<'_, S>, x: &[S]) -> Result<S> {
        self.check(&a)?;
        let (m, n) = self.tape.shape();
        if x.len() != n {
            return Err(Error::VectorLengthMismatch {
                expected: n,
                actual: x.len(),
            });
        }
        let a = a.values();
        let idx = &self.tape.axm_idx;
        // Same term shape and association as the generated code:
        // `acc += [S::from_u64(c) *] a[rank] * x_{i1} * … * x_{im}`.
        let mut acc = S::ZERO;
        let mut off = 0;
        for (rank, &c) in self.tape.axm_coeffs.iter().enumerate() {
            let mut t = if c == 1 {
                a[rank]
            } else {
                self.axm_coeff[rank] * a[rank]
            };
            for &i in &idx[off..off + m] {
                t *= x[i as usize];
            }
            off += m;
            acc += t;
        }
        Ok(acc)
    }

    fn axm1(&self, a: SymTensorRef<'_, S>, x: &[S], y: &mut [S]) -> Result<()> {
        self.check(&a)?;
        let (m, n) = self.tape.shape();
        if x.len() != n {
            return Err(Error::VectorLengthMismatch {
                expected: n,
                actual: x.len(),
            });
        }
        if y.len() != n {
            return Err(Error::VectorLengthMismatch {
                expected: n,
                actual: y.len(),
            });
        }
        // The generated code accumulates into per-output locals initialized
        // to zero and writes them back at the end; accumulating directly
        // into the zeroed output performs the identical addition sequence.
        for e in y.iter_mut() {
            *e = S::ZERO;
        }
        let a = a.values();
        let idx = &self.tape.axm1_idx;
        let width = m - 1;
        let mut off = 0;
        for (e, &c) in self.tape.axm1_coeffs.iter().enumerate() {
            let rank = self.tape.axm1_rank[e] as usize;
            let mut t = if c == 1 {
                a[rank]
            } else {
                self.axm1_coeff[e] * a[rank]
            };
            for &i in &idx[off..off + width] {
                t *= x[i as usize];
            }
            off += width;
            y[self.tape.axm1_out[e] as usize] += t;
        }
        Ok(())
    }

    fn name(&self) -> &'static str {
        "tape"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use symtensor::kernels::GeneralKernels;
    use symtensor::SymTensor;
    use unrolled::{UnrolledKernels, GENERATED_SHAPES};

    fn random_sym(m: usize, n: usize, seed: u64) -> SymTensor<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        SymTensor::random(m, n, &mut rng)
    }

    fn unit_x(n: usize) -> Vec<f64> {
        let mut x: Vec<f64> = (0..n).map(|i| 0.7 - 0.21 * i as f64).collect();
        symtensor::scalar::normalize(&mut x);
        x
    }

    #[test]
    fn supported_shapes_are_sensible() {
        assert!(tape_supported(4, 3));
        assert!(tape_supported(5, 4)); // not in GENERATED_SHAPES
        assert!(tape_supported(2, 2));
        assert!(!tape_supported(1, 3)); // order 1: terms would have no factor
        assert!(!tape_supported(3, 0));
        assert!(!tape_supported(21, 2)); // beyond the exact-u64 range
        assert!(!tape_supported(12, 24)); // tape would blow the slot budget
    }

    #[test]
    fn generate_rejects_unsupported_shape() {
        assert!(KernelTape::generate(1, 3).is_err());
        assert!(KernelTape::generate(25, 25).is_err());
    }

    #[test]
    fn tape_layout_matches_combinatorics() {
        let t = KernelTape::generate(4, 3).unwrap();
        assert_eq!(t.shape(), (4, 3));
        assert_eq!(t.num_classes(), 15); // C(6, 4), the paper's Table I
        assert_eq!(t.axm_idx.len(), 15 * 4);
        // Each of the 3 output sums has num_unique_entries(3, 3) = 10 terms.
        assert_eq!(t.num_axm1_terms(), 30);
        assert_eq!(t.axm1_idx.len(), 30 * 3);
        assert!(t.table_words() > 0);
    }

    #[test]
    fn bitwise_equal_to_unrolled_on_generated_shapes() {
        for (i, &(m, n)) in GENERATED_SHAPES.iter().enumerate() {
            let a = random_sym(m, n, 100 + i as u64);
            let x = unit_x(n);
            let unrolled = UnrolledKernels::for_shape(m, n).unwrap();
            let tape = TapeKernels::<f64>::generate(m, n).unwrap();
            let want = TensorKernels::axm(&unrolled, a.view(), &x).unwrap();
            let got = tape.axm(a.view(), &x).unwrap();
            assert_eq!(got.to_bits(), want.to_bits(), "axm ({m},{n})");
            let mut want_y = vec![0.0; n];
            let mut got_y = vec![0.0; n];
            TensorKernels::axm1(&unrolled, a.view(), &x, &mut want_y).unwrap();
            tape.axm1(a.view(), &x, &mut got_y).unwrap();
            for j in 0..n {
                assert_eq!(
                    got_y[j].to_bits(),
                    want_y[j].to_bits(),
                    "axm1 ({m},{n}) j={j}"
                );
            }
        }
    }

    #[test]
    fn matches_general_on_non_generated_shape() {
        for &(m, n) in &[(5usize, 4usize), (2, 5), (6, 4), (3, 6)] {
            assert!(
                !GENERATED_SHAPES.contains(&(m, n)),
                "({m},{n}) should exercise the runtime generator"
            );
            let a = random_sym(m, n, 7 + m as u64 * 31 + n as u64);
            let x = unit_x(n);
            let tape = TapeKernels::<f64>::generate(m, n).unwrap();
            let want = GeneralKernels.axm(a.view(), &x).unwrap();
            let got = tape.axm(a.view(), &x).unwrap();
            assert!(
                (got - want).abs() <= 1e-12 * (1.0 + want.abs()),
                "axm ({m},{n}): {got} vs {want}"
            );
            let mut want_y = vec![0.0; n];
            let mut got_y = vec![0.0; n];
            GeneralKernels.axm1(a.view(), &x, &mut want_y).unwrap();
            tape.axm1(a.view(), &x, &mut got_y).unwrap();
            for j in 0..n {
                assert!(
                    (got_y[j] - want_y[j]).abs() <= 1e-12 * (1.0 + want_y[j].abs()),
                    "axm1 ({m},{n}) j={j}"
                );
            }
        }
    }

    #[test]
    fn shape_and_length_mismatches_are_typed_errors() {
        let tape = TapeKernels::<f64>::generate(4, 3).unwrap();
        let wrong = random_sym(3, 3, 9);
        let x = [0.5f64, 0.5, 0.5];
        let mut y = [0.0f64; 3];
        assert!(matches!(
            tape.axm(wrong.view(), &x),
            Err(Error::ShapeMismatch { .. })
        ));
        let a = random_sym(4, 3, 10);
        assert!(matches!(
            tape.axm(a.view(), &x[..2]),
            Err(Error::VectorLengthMismatch { .. })
        ));
        assert!(matches!(
            tape.axm1(a.view(), &x, &mut y[..2]),
            Err(Error::VectorLengthMismatch { .. })
        ));
        assert_eq!(tape.name(), "tape");
    }

    #[test]
    fn works_in_f32() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = SymTensor::<f32>::random(5, 4, &mut rng);
        let x = [0.5f32, -0.5, 0.25, 0.25];
        let tape = TapeKernels::<f32>::generate(5, 4).unwrap();
        let want = GeneralKernels.axm(a.view(), &x).unwrap();
        let got = tape.axm(a.view(), &x).unwrap();
        assert!((got - want).abs() < 1e-4 * (1.0 + want.abs()));
    }
}
