//! # kernelgen — runtime kernel generation behind a content-addressed cache
//!
//! The paper's Section V-D resolves index representations and multinomial
//! coefficients at code-generation time and unrolls the `A·xᵐ` / `A·xᵐ⁻¹`
//! loops into straight-line FP code. The `unrolled` crate does exactly that
//! at *build* time, but only for the shapes listed in its `build.rs`
//! ([`unrolled::GENERATED_SHAPES`]). This crate extends the idea to **any
//! small shape at runtime**: the same straight-line structure is emitted as
//! *data* — a flat [`KernelTape`] of pre-resolved entry offsets and folded
//! multinomial coefficients — and executed by a tight loop
//! ([`TapeKernels`]), giving near-unrolled performance without a compiler
//! in the loop.
//!
//! Three layers live here:
//!
//! * [`KernelTape`] / [`TapeKernels`] — the generator and its executor.
//!   The tape replays the *exact* floating-point operation order of the
//!   generated unrolled code, so on a generated shape the results are
//!   bitwise identical to [`unrolled::UnrolledKernels`].
//! * an **artifact cache** — generated tapes are serialized to disk keyed
//!   by a content hash of `(m, n, scalar, tape-format version)`, the way
//!   wasmer caches compiled modules: corrupt, truncated, or
//!   version-mismatched entries are detected (magic, header fields, and an
//!   FNV-1a payload checksum) and silently regenerated, never trusted.
//! * [`KernelRegistry`] — the single place kernel lifetime, caching, and
//!   fallback policy live. Callers ask for a [`KernelPlan`] for
//!   `(m, n, scalar, strategy)` and get back a memoized, shareable kernel
//!   object; repeated `solve_batch` calls on the same shape stop re-deriving
//!   [`symtensor::PrecomputedTables`] and lane tables.
//!
//! ```
//! use kernelgen::{KernelRegistry, KernelStrategy};
//! use symtensor::{SymTensor, TensorKernels};
//!
//! // (5, 4) is not in unrolled::GENERATED_SHAPES — the tape covers it.
//! let registry = KernelRegistry::new();
//! let plan = registry.plan::<f64>(5, 4, KernelStrategy::Tape);
//! assert_eq!(plan.effective, KernelStrategy::Tape);
//!
//! let a = SymTensor::<f64>::from_fn(5, 4, |c| c.rank() as f64);
//! let x = [0.1, 0.2, 0.3, 0.4];
//! assert!(plan.kernels.axm(a.view(), &x).unwrap().is_finite());
//! ```

#![deny(missing_docs)]

mod artifact;
mod registry;
mod strategy;
mod tape;

pub use artifact::{artifact_path, inspect_dir, DiskEntry, TAPE_FORMAT_VERSION};
pub use registry::{CacheStats, KernelPlan, KernelRegistry};
pub use strategy::{KernelError, KernelStrategy};
pub use tape::{tape_supported, KernelTape, TapeKernels};
