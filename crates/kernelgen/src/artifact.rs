//! On-disk artifact cache for generated kernel tapes, content-addressed the
//! way wasmer keys compiled modules: the filename carries an FNV-1a hash of
//! `(m, n, scalar, tape-format version)`, and the file itself carries a
//! magic, the format version, the shape, and an FNV-1a checksum of the
//! payload. A cached entry is **never trusted**: any mismatch — wrong
//! magic, stale version, shape or scalar disagreement, truncation, or a
//! checksum failure from a flipped bit — makes the loader report a miss so
//! the registry regenerates (and rewrites) the entry.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::tape::KernelTape;

/// Version of the serialized tape layout. Bump on any change to
/// `encode`'s byte format; entries written under other versions are
/// ignored and regenerated.
pub const TAPE_FORMAT_VERSION: u32 = 1;

const MAGIC: &[u8; 8] = b"TEIGTAPE";
/// Fixed header: magic(8) + version(4) + scalar(8) + m(4) + n(4) +
/// payload_len(8) + payload_hash(8).
const HEADER_LEN: usize = 44;

/// 64-bit FNV-1a over a byte slice — small, dependency-free, and plenty for
/// corruption detection (this is an integrity check, not a security
/// boundary; the cache directory is trusted input like any local file).
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The content key a cache entry is addressed by.
fn content_key(m: usize, n: usize, scalar: &str) -> u64 {
    fnv1a(format!("tensor-eig-tape/v{TAPE_FORMAT_VERSION}/{m}x{n}/{scalar}").as_bytes())
}

/// Path of the artifact for `(m, n, scalar)` under `dir` at the current
/// format version. Exposed so tests (and the `cache` CLI) can inspect or
/// corrupt specific entries.
pub fn artifact_path(dir: &Path, m: usize, n: usize, scalar: &str) -> PathBuf {
    let key = content_key(m, n, scalar);
    dir.join(format!("{key:016x}-{m}x{n}-{scalar}.tape"))
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u32_slice(out: &mut Vec<u8>, vs: &[u32]) {
    push_u64(out, vs.len() as u64);
    for &v in vs {
        push_u32(out, v);
    }
}

fn push_u64_slice(out: &mut Vec<u8>, vs: &[u64]) {
    push_u64(out, vs.len() as u64);
    for &v in vs {
        push_u64(out, v);
    }
}

/// Serialize a tape to the on-disk artifact format.
pub(crate) fn encode(tape: &KernelTape, scalar: &str) -> Vec<u8> {
    let mut payload = Vec::new();
    push_u32(&mut payload, tape.m);
    push_u32(&mut payload, tape.n);
    push_u64_slice(&mut payload, &tape.axm_coeffs);
    push_u32_slice(&mut payload, &tape.axm_idx);
    push_u32_slice(&mut payload, &tape.axm1_out);
    push_u32_slice(&mut payload, &tape.axm1_rank);
    push_u64_slice(&mut payload, &tape.axm1_coeffs);
    push_u32_slice(&mut payload, &tape.axm1_idx);

    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(MAGIC);
    push_u32(&mut out, TAPE_FORMAT_VERSION);
    let mut tag = [0u8; 8];
    for (d, s) in tag.iter_mut().zip(scalar.bytes()) {
        *d = s;
    }
    out.extend_from_slice(&tag);
    push_u32(&mut out, tape.m);
    push_u32(&mut out, tape.n);
    push_u64(&mut out, payload.len() as u64);
    push_u64(&mut out, fnv1a(&payload));
    out.extend_from_slice(&payload);
    out
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, len: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(len)?;
        let s = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)?.try_into().ok().map(u32::from_le_bytes)
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)?.try_into().ok().map(u64::from_le_bytes)
    }

    fn u32_slice(&mut self, max: usize) -> Option<Vec<u32>> {
        let len = self.u64()? as usize;
        if len > max {
            return None;
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.u32()?);
        }
        Some(out)
    }

    fn u64_slice(&mut self, max: usize) -> Option<Vec<u64>> {
        let len = self.u64()? as usize;
        if len > max {
            return None;
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.u64()?);
        }
        Some(out)
    }
}

/// Decode and fully validate an artifact for `(m, n, scalar)`. Any
/// deviation — magic, version, scalar tag, shape, checksum, truncation, or
/// structurally inconsistent arrays — yields `None` (treated as a miss).
pub(crate) fn decode(bytes: &[u8], m: usize, n: usize, scalar: &str) -> Option<KernelTape> {
    // Tape invariant (also keeps `m - 1` below well-defined even for a
    // forged header routed through `inspect_dir`).
    if m < 2 || n == 0 {
        return None;
    }
    if bytes.len() < HEADER_LEN || &bytes[..8] != MAGIC {
        return None;
    }
    let mut cur = Cursor { bytes, pos: 8 };
    if cur.u32()? != TAPE_FORMAT_VERSION {
        return None;
    }
    let tag = cur.take(8)?;
    let mut want_tag = [0u8; 8];
    for (d, s) in want_tag.iter_mut().zip(scalar.bytes()) {
        *d = s;
    }
    if tag != want_tag {
        return None;
    }
    if (cur.u32()? as usize, cur.u32()? as usize) != (m, n) {
        return None;
    }
    let payload_len = cur.u64()? as usize;
    let payload_hash = cur.u64()?;
    let payload = cur.take(payload_len)?;
    if cur.pos != bytes.len() || fnv1a(payload) != payload_hash {
        return None;
    }

    let max = crate::tape::TAPE_MAX_SLOTS as usize;
    let mut cur = Cursor {
        bytes: payload,
        pos: 0,
    };
    if (cur.u32()? as usize, cur.u32()? as usize) != (m, n) {
        return None;
    }
    let tape = KernelTape {
        m: m as u32,
        n: n as u32,
        axm_coeffs: cur.u64_slice(max)?,
        axm_idx: cur.u32_slice(max)?,
        axm1_out: cur.u32_slice(max)?,
        axm1_rank: cur.u32_slice(max)?,
        axm1_coeffs: cur.u64_slice(max)?,
        axm1_idx: cur.u32_slice(max)?,
    };
    if cur.pos != payload.len() {
        return None;
    }
    // Structural sanity: every pre-resolved offset must be in range, or the
    // executor would read out of bounds.
    let classes = tape.axm_coeffs.len();
    let terms = tape.axm1_coeffs.len();
    let consistent = tape.axm_idx.len() == classes * m
        && tape.axm1_out.len() == terms
        && tape.axm1_rank.len() == terms
        && tape.axm1_idx.len() == terms * (m - 1)
        && tape.axm_idx.iter().all(|&i| (i as usize) < n)
        && tape.axm1_idx.iter().all(|&i| (i as usize) < n)
        && tape.axm1_out.iter().all(|&j| (j as usize) < n)
        && tape.axm1_rank.iter().all(|&r| (r as usize) < classes)
        && tape.axm_coeffs.iter().all(|&c| c >= 1)
        && tape.axm1_coeffs.iter().all(|&c| c >= 1);
    consistent.then_some(tape)
}

/// Load a validated tape from `dir`; `None` on any miss or validation
/// failure.
pub(crate) fn load(dir: &Path, m: usize, n: usize, scalar: &str) -> Option<KernelTape> {
    let bytes = fs::read(artifact_path(dir, m, n, scalar)).ok()?;
    decode(&bytes, m, n, scalar)
}

/// Atomically store a tape under `dir` (write to a temp file, then rename),
/// creating the directory if needed.
pub(crate) fn store(dir: &Path, tape: &KernelTape, scalar: &str) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let (m, n) = tape.shape();
    let path = artifact_path(dir, m, n, scalar);
    let tmp = dir.join(format!(".{m}x{n}-{scalar}.tape.tmp-{}", std::process::id()));
    fs::write(&tmp, encode(tape, scalar))?;
    match fs::rename(&tmp, &path) {
        Ok(()) => Ok(path),
        Err(e) => {
            let _ = fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// One entry of a cache directory listing, as shown by `tensor-eig cache
/// stats`.
#[derive(Debug, Clone)]
pub struct DiskEntry {
    /// File name within the cache directory.
    pub file_name: String,
    /// File size in bytes.
    pub bytes: u64,
    /// Shape recorded in the header, if the header parsed.
    pub shape: Option<(usize, usize)>,
    /// Scalar tag recorded in the header, if the header parsed.
    pub scalar: Option<String>,
    /// Whether the entry decodes and validates end to end.
    pub valid: bool,
}

fn header_info(bytes: &[u8]) -> Option<((usize, usize), String)> {
    if bytes.len() < HEADER_LEN || &bytes[..8] != MAGIC {
        return None;
    }
    let mut cur = Cursor { bytes, pos: 12 };
    let tag = cur.take(8)?;
    let scalar: String = tag
        .iter()
        .take_while(|&&b| b != 0)
        .map(|&b| b as char)
        .collect();
    let m = cur.u32()? as usize;
    let n = cur.u32()? as usize;
    Some(((m, n), scalar))
}

/// List the `.tape` entries under `dir`, validating each one.
///
/// # Errors
/// Propagates directory-read errors; a missing directory yields an empty
/// listing.
pub fn inspect_dir(dir: &Path) -> io::Result<Vec<DiskEntry>> {
    let mut out = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if !name.ends_with(".tape") {
            continue;
        }
        let bytes = fs::read(entry.path()).unwrap_or_default();
        let info = header_info(&bytes);
        let valid = match &info {
            Some(((m, n), scalar)) => decode(&bytes, *m, *n, scalar).is_some(),
            None => false,
        };
        out.push(DiskEntry {
            file_name: name,
            bytes: bytes.len() as u64,
            shape: info.as_ref().map(|(s, _)| *s),
            scalar: info.map(|(_, s)| s),
            valid,
        });
    }
    out.sort_by(|a, b| a.file_name.cmp(&b.file_name));
    Ok(out)
}

/// Remove every `.tape` entry under `dir`; returns how many were removed.
///
/// # Errors
/// Propagates filesystem errors; a missing directory removes nothing.
pub(crate) fn clear_dir(dir: &Path) -> io::Result<usize> {
    let mut removed = 0;
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let entry = entry?;
        if entry.file_name().to_string_lossy().ends_with(".tape") {
            fs::remove_file(entry.path())?;
            removed += 1;
        }
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn encode_decode_round_trips() {
        let tape = KernelTape::generate(4, 3).unwrap();
        let bytes = encode(&tape, "f64");
        let back = decode(&bytes, 4, 3, "f64").unwrap();
        assert_eq!(back, tape);
        // Same content hashes to the same bytes: content-addressed.
        assert_eq!(bytes, encode(&KernelTape::generate(4, 3).unwrap(), "f64"));
    }

    #[test]
    fn decode_rejects_mismatches() {
        let tape = KernelTape::generate(4, 3).unwrap();
        let good = encode(&tape, "f64");
        assert!(decode(&good, 4, 3, "f32").is_none(), "scalar mismatch");
        assert!(decode(&good, 5, 3, "f64").is_none(), "shape mismatch");
        assert!(decode(&good[..10], 4, 3, "f64").is_none(), "truncated");
        assert!(decode(b"", 4, 3, "f64").is_none(), "empty");

        let mut flipped = good.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        assert!(decode(&flipped, 4, 3, "f64").is_none(), "bit flip");

        let mut stale = good.clone();
        stale[8..12].copy_from_slice(&(TAPE_FORMAT_VERSION + 1).to_le_bytes());
        assert!(decode(&stale, 4, 3, "f64").is_none(), "stale version");

        let mut bad_magic = good;
        bad_magic[0] = b'X';
        assert!(decode(&bad_magic, 4, 3, "f64").is_none(), "bad magic");
    }

    #[test]
    fn artifact_path_is_content_keyed() {
        let dir = Path::new("/cache");
        let p64 = artifact_path(dir, 5, 4, "f64");
        let p32 = artifact_path(dir, 5, 4, "f32");
        assert_ne!(p64, p32, "scalar participates in the key");
        assert_ne!(
            artifact_path(dir, 5, 4, "f64"),
            artifact_path(dir, 4, 5, "f64")
        );
        assert!(p64.to_string_lossy().ends_with("-5x4-f64.tape"));
    }
}
