//! Kernel-strategy selection: *how* the tensor contractions are computed,
//! independently of *where* the batch runs.
//!
//! The enum lives here (rather than in `backend`, where it started) because
//! the [`KernelRegistry`](crate::KernelRegistry) is now the single place
//! strategy fallback policy is applied; `backend` re-exports it unchanged.

use std::fmt;

/// Error type for kernel-strategy parsing and tape materialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelError(pub String);

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "kernel error: {}", self.0)
    }
}

impl std::error::Error for KernelError {}

/// Which `A·xᵐ` / `A·xᵐ⁻¹` implementation a backend should use.
///
/// Strategies that are unavailable for a given shape fall back
/// automatically: `Unrolled → Blocked → General` and
/// `Tape → Blocked → General` on the CPU, and `Unrolled → General` /
/// `Tape → General` on the simulated GPU (which has no blocked or
/// precomputed variant). [`KernelRegistry::plan`](crate::KernelRegistry::plan)
/// and `backend::gpu_variant` report the strategy actually chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelStrategy {
    /// On-the-fly index/coefficient computation (works for every shape).
    General,
    /// Const-generic blocked kernels (orders 1–8, any dimension).
    Blocked,
    /// Section V-C precomputed index/coefficient tables.
    Precomputed,
    /// Straight-line generated kernels (build.rs `GENERATED_SHAPES` only).
    Unrolled,
    /// Lane-vectorized kernels over the packed `TensorBatch` arena
    /// ([`symtensor::BatchedKernels`]). Per-tensor calls share the lane
    /// tables; fixed-shift SS-HOPM batches additionally run the lockstep
    /// panel driver that updates [`symtensor::LANE_WIDTH`] tensors per
    /// table walk.
    Batched,
    /// Runtime-generated kernel tape ([`crate::TapeKernels`]): the unrolled
    /// straight-line structure emitted as data for *any* small shape, loaded
    /// through the content-addressed artifact cache.
    Tape,
}

impl KernelStrategy {
    /// All strategies, for sweeps and tests.
    pub const ALL: [KernelStrategy; 6] = [
        KernelStrategy::General,
        KernelStrategy::Blocked,
        KernelStrategy::Precomputed,
        KernelStrategy::Unrolled,
        KernelStrategy::Batched,
        KernelStrategy::Tape,
    ];

    /// Short name for reports and CLI flags.
    pub fn name(&self) -> &'static str {
        match self {
            KernelStrategy::General => "general",
            KernelStrategy::Blocked => "blocked",
            KernelStrategy::Precomputed => "precomputed",
            KernelStrategy::Unrolled => "unrolled",
            KernelStrategy::Batched => "batched",
            KernelStrategy::Tape => "tape",
        }
    }

    /// Parse a CLI token (`general`, `blocked`, `precomputed`, `unrolled`,
    /// `batched`, `tape`).
    pub fn parse(s: &str) -> Result<Self, KernelError> {
        match s {
            "general" => Ok(KernelStrategy::General),
            "blocked" => Ok(KernelStrategy::Blocked),
            "precomputed" => Ok(KernelStrategy::Precomputed),
            "unrolled" => Ok(KernelStrategy::Unrolled),
            "batched" => Ok(KernelStrategy::Batched),
            "tape" => Ok(KernelStrategy::Tape),
            other => Err(KernelError(format!(
                "unknown kernel strategy {other:?}: expected one of general, blocked, \
                 precomputed, unrolled, batched, tape"
            ))),
        }
    }
}

impl fmt::Display for KernelStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for KernelStrategy {
    type Err = KernelError;

    fn from_str(s: &str) -> Result<Self, KernelError> {
        KernelStrategy::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for s in KernelStrategy::ALL {
            assert_eq!(KernelStrategy::parse(s.name()).unwrap(), s);
            assert_eq!(s.to_string(), s.name());
            assert_eq!(s.name().parse::<KernelStrategy>().unwrap(), s);
        }
        assert!(KernelStrategy::parse("fused").is_err());
    }

    #[test]
    fn parse_error_lists_tape() {
        let err = KernelStrategy::parse("nope").unwrap_err();
        assert!(err.0.contains("tape"), "{err}");
    }
}
