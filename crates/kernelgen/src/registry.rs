//! The kernel registry: the single place kernel materialization, caching,
//! and fallback policy live. Backends ask for a [`KernelPlan`] and get a
//! memoized, shareable kernel object instead of a freshly boxed one per
//! `solve_batch` call.

use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use parking_lot::Mutex;
use symtensor::{
    BatchedKernels, BlockedKernels, GeneralKernels, PrecomputedTables, Scalar, TensorKernels,
};
use unrolled::UnrolledKernels;

use crate::artifact;
use crate::strategy::{KernelError, KernelStrategy};
use crate::tape::{tape_supported, KernelTape, TapeKernels};

/// Snapshot of registry activity counters, also usable as a delta between
/// two snapshots (see [`CacheStats::delta_since`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CacheStats {
    /// Memoized kernel objects served from the in-process map.
    pub memo_hits: u64,
    /// Requests that missed the in-process map (and went to disk and/or
    /// the generator).
    pub memo_misses: u64,
    /// Tapes loaded and validated from the on-disk artifact cache.
    pub disk_hits: u64,
    /// Artifact-cache lookups that missed (absent, corrupt, truncated, or
    /// stale-version entries all count here — none are trusted).
    pub disk_misses: u64,
    /// Tapes generated at runtime.
    pub generated: u64,
    /// Wall-clock seconds spent generating (and writing back) tapes.
    pub generate_seconds: f64,
}

impl CacheStats {
    /// Counter-wise difference against an earlier snapshot.
    pub fn delta_since(&self, before: &CacheStats) -> CacheStats {
        CacheStats {
            memo_hits: self.memo_hits.saturating_sub(before.memo_hits),
            memo_misses: self.memo_misses.saturating_sub(before.memo_misses),
            disk_hits: self.disk_hits.saturating_sub(before.disk_hits),
            disk_misses: self.disk_misses.saturating_sub(before.disk_misses),
            generated: self.generated.saturating_sub(before.generated),
            generate_seconds: (self.generate_seconds - before.generate_seconds).max(0.0),
        }
    }

    /// True when every counter is zero (nothing worth reporting).
    pub fn is_empty(&self) -> bool {
        self.memo_hits == 0
            && self.memo_misses == 0
            && self.disk_hits == 0
            && self.disk_misses == 0
            && self.generated == 0
    }

    /// Fraction of artifact-cache lookups that hit, if any were made.
    pub fn artifact_hit_rate(&self) -> Option<f64> {
        let total = self.disk_hits + self.disk_misses;
        (total > 0).then(|| self.disk_hits as f64 / total as f64)
    }
}

#[derive(Default)]
struct Counters {
    memo_hits: AtomicU64,
    memo_misses: AtomicU64,
    disk_hits: AtomicU64,
    disk_misses: AtomicU64,
    generated: AtomicU64,
    generate_nanos: AtomicU64,
}

/// A materialized kernel selection: the shareable kernel object plus the
/// strategy actually in effect after fallback.
#[derive(Clone)]
pub struct KernelPlan<S> {
    /// The kernels; cloning the plan clones an `Arc`, not the tables.
    pub kernels: Arc<dyn TensorKernels<S> + Send + Sync>,
    /// The strategy actually chosen (after shape-based fallback).
    pub effective: KernelStrategy,
}

impl<S> std::fmt::Debug for KernelPlan<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KernelPlan")
            .field("effective", &self.effective)
            .finish_non_exhaustive()
    }
}

/// Type-erased memoized tape kernels, keyed by shape plus scalar type: the
/// stored value is always an `Arc<TapeKernels<S>>` for the `TypeId` of `S`.
type TapeMap = HashMap<(usize, usize, TypeId), Arc<dyn Any + Send + Sync>>;

/// Memoizing kernel registry with an optional on-disk artifact cache for
/// generated tapes.
///
/// Most callers use the process-wide [`KernelRegistry::global`] instance so
/// repeated `solve_batch` calls — and concurrent backends — share tables;
/// tests build private instances to keep counters isolated.
pub struct KernelRegistry {
    cache_dir: Mutex<Option<PathBuf>>,
    tables: Mutex<HashMap<(usize, usize), Arc<PrecomputedTables>>>,
    batched: Mutex<HashMap<(usize, usize), Arc<BatchedKernels>>>,
    tapes: Mutex<TapeMap>,
    counters: Counters,
}

impl Default for KernelRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl KernelRegistry {
    /// An empty registry with no artifact-cache directory (tapes are
    /// generated in memory only).
    pub fn new() -> Self {
        KernelRegistry {
            cache_dir: Mutex::new(None),
            tables: Mutex::new(HashMap::new()),
            batched: Mutex::new(HashMap::new()),
            tapes: Mutex::new(HashMap::new()),
            counters: Counters::default(),
        }
    }

    /// An empty registry persisting generated tapes under `dir`.
    pub fn with_cache_dir(dir: impl Into<PathBuf>) -> Self {
        let r = Self::new();
        r.set_cache_dir(Some(dir.into()));
        r
    }

    /// The process-wide registry shared by every backend.
    pub fn global() -> &'static KernelRegistry {
        static GLOBAL: OnceLock<KernelRegistry> = OnceLock::new();
        GLOBAL.get_or_init(KernelRegistry::new)
    }

    /// Set (or clear) the artifact-cache directory.
    pub fn set_cache_dir(&self, dir: Option<PathBuf>) {
        *self.cache_dir.lock() = dir;
    }

    /// The configured artifact-cache directory, if any.
    pub fn cache_dir(&self) -> Option<PathBuf> {
        self.cache_dir.lock().clone()
    }

    /// Snapshot the activity counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            memo_hits: self.counters.memo_hits.load(Ordering::Relaxed),
            memo_misses: self.counters.memo_misses.load(Ordering::Relaxed),
            disk_hits: self.counters.disk_hits.load(Ordering::Relaxed),
            disk_misses: self.counters.disk_misses.load(Ordering::Relaxed),
            generated: self.counters.generated.load(Ordering::Relaxed),
            generate_seconds: self.counters.generate_nanos.load(Ordering::Relaxed) as f64 / 1e9,
        }
    }

    /// Drop every memoized kernel object (the disk cache is untouched).
    pub fn clear_memory(&self) {
        self.tables.lock().clear();
        self.batched.lock().clear();
        self.tapes.lock().clear();
    }

    /// Remove every artifact under the configured cache directory.
    ///
    /// # Errors
    /// Propagates filesystem errors from the removal.
    pub fn clear_disk(&self) -> io::Result<usize> {
        match self.cache_dir() {
            Some(dir) => Self::clear_disk_at(&dir),
            None => Ok(0),
        }
    }

    /// Remove every artifact under an explicit directory (the `cache clear`
    /// CLI path).
    ///
    /// # Errors
    /// Propagates filesystem errors from the removal.
    pub fn clear_disk_at(dir: &Path) -> io::Result<usize> {
        artifact::clear_dir(dir)
    }

    /// Materialize kernels for `(m, n, S, strategy)`, falling back when the
    /// requested strategy has no implementation for that shape
    /// (`Unrolled → Blocked → General`, `Tape → Blocked → General`).
    /// Memoized kinds (`Precomputed`, `Batched`, `Tape`) return shared
    /// `Arc`s; the zero-sized kinds are constructed inline.
    pub fn plan<S: Scalar>(&self, m: usize, n: usize, strategy: KernelStrategy) -> KernelPlan<S> {
        match strategy {
            KernelStrategy::General => KernelPlan {
                kernels: Arc::new(GeneralKernels),
                effective: KernelStrategy::General,
            },
            KernelStrategy::Blocked => match BlockedKernels::for_shape(m, n) {
                Some(k) => KernelPlan {
                    kernels: Arc::new(k),
                    effective: KernelStrategy::Blocked,
                },
                None => self.plan(m, n, KernelStrategy::General),
            },
            KernelStrategy::Precomputed => KernelPlan {
                kernels: self.tables(m, n),
                effective: KernelStrategy::Precomputed,
            },
            KernelStrategy::Unrolled => match UnrolledKernels::for_shape(m, n) {
                Some(k) => KernelPlan {
                    kernels: Arc::new(k),
                    effective: KernelStrategy::Unrolled,
                },
                None => self.plan(m, n, KernelStrategy::Blocked),
            },
            KernelStrategy::Batched => KernelPlan {
                kernels: self.batched(m, n),
                effective: KernelStrategy::Batched,
            },
            KernelStrategy::Tape => match self.tape::<S>(m, n) {
                Ok(k) => KernelPlan {
                    kernels: k,
                    effective: KernelStrategy::Tape,
                },
                Err(_) => self.plan(m, n, KernelStrategy::Blocked),
            },
        }
    }

    /// Shared precomputed index/coefficient tables for `(m, n)` (Section
    /// V-C), built at most once per registry.
    pub fn tables(&self, m: usize, n: usize) -> Arc<PrecomputedTables> {
        let mut map = self.tables.lock();
        if let Some(t) = map.get(&(m, n)) {
            self.counters.memo_hits.fetch_add(1, Ordering::Relaxed);
            return t.clone();
        }
        self.counters.memo_misses.fetch_add(1, Ordering::Relaxed);
        let t = Arc::new(PrecomputedTables::new(m, n));
        map.insert((m, n), t.clone());
        t
    }

    /// Shared lane-vectorized kernels (and their lane tables) for `(m, n)`,
    /// built at most once per registry.
    pub fn batched(&self, m: usize, n: usize) -> Arc<BatchedKernels> {
        let mut map = self.batched.lock();
        if let Some(k) = map.get(&(m, n)) {
            self.counters.memo_hits.fetch_add(1, Ordering::Relaxed);
            return k.clone();
        }
        self.counters.memo_misses.fetch_add(1, Ordering::Relaxed);
        let k = Arc::new(BatchedKernels::new(m, n));
        map.insert((m, n), k.clone());
        k
    }

    /// Shared tape kernels for `(m, n, S)`: memoized in-process, loaded
    /// from the artifact cache when configured, generated (and written
    /// back) otherwise.
    ///
    /// # Errors
    /// Returns [`KernelError`] if the shape is not [`tape_supported`].
    pub fn tape<S: Scalar>(&self, m: usize, n: usize) -> Result<Arc<TapeKernels<S>>, KernelError> {
        if !tape_supported(m, n) {
            return Err(KernelError(format!(
                "shape ({m}, {n}) has no tape kernel (order outside 2..=20, or tape too large)"
            )));
        }
        let key = (m, n, TypeId::of::<S>());
        if let Some(entry) = self.tapes.lock().get(&key) {
            if let Ok(k) = entry.clone().downcast::<TapeKernels<S>>() {
                self.counters.memo_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(k);
            }
        }
        self.counters.memo_misses.fetch_add(1, Ordering::Relaxed);

        let dir = self.cache_dir();
        let tape = match dir
            .as_deref()
            .and_then(|d| artifact::load(d, m, n, S::NAME))
        {
            Some(t) => {
                self.counters.disk_hits.fetch_add(1, Ordering::Relaxed);
                t
            }
            None => {
                if dir.is_some() {
                    self.counters.disk_misses.fetch_add(1, Ordering::Relaxed);
                }
                let started = Instant::now();
                let t = KernelTape::generate(m, n)?;
                if let Some(d) = dir.as_deref() {
                    // A write failure only costs the next process a
                    // regeneration; the in-memory tape is still good.
                    let _ = artifact::store(d, &t, S::NAME);
                }
                self.counters.generated.fetch_add(1, Ordering::Relaxed);
                self.counters
                    .generate_nanos
                    .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
                t
            }
        };
        let kernels = Arc::new(TapeKernels::<S>::new(Arc::new(tape)));
        self.tapes
            .lock()
            .insert(key, kernels.clone() as Arc<dyn Any + Send + Sync>);
        Ok(kernels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_honors_available_strategies() {
        let r = KernelRegistry::new();
        for strategy in KernelStrategy::ALL {
            let plan = r.plan::<f64>(4, 3, strategy);
            assert_eq!(plan.effective, strategy, "(4,3) supports every strategy");
        }
    }

    #[test]
    fn fallback_chains_are_preserved() {
        let r = KernelRegistry::new();
        // (7, 7) has no generated kernel but is within the blocked range.
        let plan = r.plan::<f64>(7, 7, KernelStrategy::Unrolled);
        assert_eq!(plan.effective, KernelStrategy::Blocked);
        assert_eq!(plan.kernels.name(), "blocked");
        // Order 9 is beyond the blocked range too: all the way to general.
        let plan = r.plan::<f64>(9, 3, KernelStrategy::Unrolled);
        assert_eq!(plan.effective, KernelStrategy::General);
        assert_eq!(plan.kernels.name(), "general");
        // Tape covers (7, 7) directly; an oversized shape falls back.
        let plan = r.plan::<f64>(7, 7, KernelStrategy::Tape);
        assert_eq!(plan.effective, KernelStrategy::Tape);
        let plan = r.plan::<f64>(14, 20, KernelStrategy::Tape);
        assert_ne!(plan.effective, KernelStrategy::Tape);
    }

    #[test]
    fn memoized_kinds_return_the_same_object() {
        let r = KernelRegistry::new();
        let a = r.tables(4, 3);
        let b = r.tables(4, 3);
        assert!(Arc::ptr_eq(&a, &b));
        let a = r.batched(4, 3);
        let b = r.batched(4, 3);
        assert!(Arc::ptr_eq(&a, &b));
        let a = r.tape::<f64>(5, 4).unwrap();
        let b = r.tape::<f64>(5, 4).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let s = r.stats();
        assert_eq!(s.memo_hits, 3);
        assert_eq!(s.memo_misses, 3);
        assert_eq!(s.generated, 1);
        // No cache dir configured: disk counters never move.
        assert_eq!(s.disk_hits + s.disk_misses, 0);
    }

    #[test]
    fn tape_is_keyed_per_scalar() {
        let r = KernelRegistry::new();
        let _ = r.tape::<f64>(5, 4).unwrap();
        let _ = r.tape::<f32>(5, 4).unwrap();
        assert_eq!(r.stats().memo_misses, 2, "f32 and f64 are distinct entries");
    }

    #[test]
    fn clear_memory_forgets_memoized_objects() {
        let r = KernelRegistry::new();
        let a = r.tables(4, 3);
        r.clear_memory();
        let b = r.tables(4, 3);
        assert!(!Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn stats_delta_and_hit_rate() {
        let a = CacheStats {
            memo_hits: 1,
            memo_misses: 2,
            disk_hits: 1,
            disk_misses: 1,
            generated: 1,
            generate_seconds: 0.5,
        };
        let b = CacheStats {
            memo_hits: 4,
            memo_misses: 2,
            disk_hits: 4,
            disk_misses: 1,
            generated: 1,
            generate_seconds: 0.5,
        };
        let d = b.delta_since(&a);
        assert_eq!(d.memo_hits, 3);
        assert_eq!(d.disk_hits, 3);
        assert_eq!(d.artifact_hit_rate(), Some(1.0));
        assert!(!d.is_empty());
        assert!(CacheStats::default().is_empty());
        assert_eq!(CacheStats::default().artifact_hit_rate(), None);
    }

    #[test]
    fn global_is_a_singleton() {
        let a = KernelRegistry::global() as *const _;
        let b = KernelRegistry::global() as *const _;
        assert_eq!(a, b);
    }
}
