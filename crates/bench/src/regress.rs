//! Performance-regression harness: a fixed scenario matrix run through
//! every backend, summarized as schema-versioned JSON and compared
//! against committed baselines under `benchmarks/baselines/`.
//!
//! Every metric carries a tolerance class:
//!
//! * `deterministic` — modeled quantities (simulated-GPU seconds, flop
//!   counts, iteration counts, modeled latency quantiles, fault counts).
//!   These are pure functions of the workload and must reproduce almost
//!   exactly; any drift is a real behavioural change, so the comparison
//!   is two-sided with a tight band.
//! * `measured` — host wall-clock (CPU backends). Noisy and
//!   machine-dependent, so the band is wide and one-sided (only a
//!   slowdown is a regression) — the gate catches catastrophic
//!   regressions without flaking on shared CI hosts.
//!
//! The `regress` binary drives [`run_matrix`] → [`compare`] and writes
//! `BENCH_regress.json`; `--update-baselines` refreshes the committed
//! baseline from the current run instead.

use crate::{bench_metadata, bench_policy, paper, run_on, run_on_solver, Workload};
use backend::{
    ClusterBackend, CpuSequential, GpuSimBackend, KernelStrategy, MultiGpuBackend,
    PipelinedBackend, ResilientBackend, SolveBackend,
};
use gpusim::{DeviceSpec, FaultPlan, TransferModel};
use serde::Value;
use sshopm::{IterationPolicy, Shift, SolverSpec};

/// Schema version stamped into every regress run and baseline file.
pub const REGRESS_SCHEMA_VERSION: u64 = 1;

/// Tolerance band for `deterministic` metrics (two-sided ratio).
pub const DETERMINISTIC_TOLERANCE: f64 = 1.05;

/// Tolerance band for `measured` metrics (one-sided ratio): wall-clock
/// on a shared host can swing an order of magnitude; the gate only
/// catches catastrophic slowdowns.
pub const MEASURED_TOLERANCE: f64 = 25.0;

/// How a metric is compared against its baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricClass {
    /// Pure function of the workload; compared two-sided and tightly.
    Deterministic,
    /// Host wall-clock; compared one-sided with a wide band.
    Measured,
}

impl MetricClass {
    /// The class name used in the JSON documents.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricClass::Deterministic => "deterministic",
            MetricClass::Measured => "measured",
        }
    }

    /// Parse a class name from a JSON document.
    pub fn parse(s: &str) -> Option<MetricClass> {
        match s {
            "deterministic" => Some(MetricClass::Deterministic),
            "measured" => Some(MetricClass::Measured),
            _ => None,
        }
    }
}

/// One scenario's metric set: `(name, value, class)` triples.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// The stable scenario key (also the baseline map key).
    pub key: &'static str,
    /// Metric triples for this scenario.
    pub metrics: Vec<(&'static str, f64, MetricClass)>,
}

/// The stable scenario keys of the matrix, one per backend family: CPU
/// reference, the lane-vectorized lockstep CPU path, the runtime-generated
/// tape kernels, both simulated-GPU kernels, multi-GPU split, stream
/// pipeline, fault-injected resilient execution, and the sharded
/// multi-host cluster.
pub const SCENARIO_KEYS: [&str; 9] = [
    "cpu-seq-general",
    "cpu-seq-batched",
    "cpu-seq-tape",
    "gpusim-c2050-general",
    "gpusim-c2050-unrolled",
    "multigpu-2x-c2050-general",
    "pipelined-1x2-c2050-general",
    "resilient-watchdog-retry",
    "cluster-2x2-c2050-general",
];

fn scenario_backend(key: &str) -> Box<dyn SolveBackend<f32>> {
    let c2050 = DeviceSpec::tesla_c2050();
    match key {
        "cpu-seq-general" => Box::new(CpuSequential::new(KernelStrategy::General)),
        "cpu-seq-batched" => Box::new(CpuSequential::new(KernelStrategy::Batched)),
        "cpu-seq-tape" => Box::new(CpuSequential::new(KernelStrategy::Tape)),
        "gpusim-c2050-general" => Box::new(GpuSimBackend::new(c2050, KernelStrategy::General)),
        "gpusim-c2050-unrolled" => Box::new(GpuSimBackend::new(c2050, KernelStrategy::Unrolled)),
        "multigpu-2x-c2050-general" => Box::new(
            MultiGpuBackend::homogeneous(c2050, 2, TransferModel::pcie2(), KernelStrategy::General)
                .expect("static scenario spec is valid"),
        ),
        "pipelined-1x2-c2050-general" => Box::new(
            PipelinedBackend::homogeneous(
                c2050,
                1,
                TransferModel::pcie2(),
                KernelStrategy::General,
            )
            .expect("static scenario spec is valid")
            .with_streams(2)
            .expect("streams"),
        ),
        "resilient-watchdog-retry" => Box::new(
            ResilientBackend::new(
                vec![DeviceSpec::tesla_c2050(); 2],
                TransferModel::pcie2(),
                KernelStrategy::General,
                FaultPlan::new(7).with_watchdog(1.0),
            )
            .expect("static scenario spec is valid")
            .with_retries(3),
        ),
        "cluster-2x2-c2050-general" => Box::new(
            ClusterBackend::homogeneous(c2050, 2, 2, KernelStrategy::General)
                .expect("static scenario spec is valid")
                .with_streams(2)
                .expect("streams"),
        ),
        other => unreachable!("unknown scenario key {other:?}"),
    }
}

/// Whether the scenario's wall-clock is modeled (simulated GPU time) or
/// measured on the host.
fn seconds_class(key: &str) -> MetricClass {
    if key.starts_with("cpu-") {
        MetricClass::Measured
    } else {
        MetricClass::Deterministic
    }
}

/// Run one scenario of the matrix on `workload` and summarize it.
pub fn run_scenario(key: &'static str, workload: &Workload) -> ScenarioResult {
    let backend = scenario_backend(key);
    let report = run_on(&*backend, workload, bench_policy(), paper::ALPHA);
    let run = report.run_report();
    let secs_class = seconds_class(key);
    let mut metrics: Vec<(&'static str, f64, MetricClass)> = vec![
        ("seconds", report.seconds, secs_class),
        (
            "useful_flops",
            report.useful_flops as f64,
            MetricClass::Deterministic,
        ),
        (
            "total_iterations",
            report.total_iterations as f64,
            MetricClass::Deterministic,
        ),
    ];
    if let Some(chunk) = run.latency("chunk") {
        // Without a stream timeline the chunk histogram is derived from
        // the report's wall-clock, so it inherits the seconds class.
        let class = if report.timeline.is_some() {
            MetricClass::Deterministic
        } else {
            secs_class
        };
        metrics.push(("chunk_latency_p50", chunk.p50(), class));
        metrics.push(("chunk_latency_p99", chunk.p99(), class));
    }
    if !run.faults.is_empty() {
        metrics.push((
            "faults_injected",
            run.faults.injected as f64,
            MetricClass::Deterministic,
        ));
        metrics.push((
            "faults_recovered",
            run.faults.recovered as f64,
            MetricClass::Deterministic,
        ));
    }
    if !run.comm.is_empty() {
        // NIC traffic and its distance from the communication lower
        // bound are modeled quantities: drift means the sharding or the
        // transfer model changed.
        metrics.push((
            "nic_bytes",
            run.comm.nic_bytes as f64,
            MetricClass::Deterministic,
        ));
        metrics.push(("comm_ratio", run.comm.ratio, MetricClass::Deterministic));
    }
    ScenarioResult { key, metrics }
}

fn scenario_to_value(result: &ScenarioResult) -> Value {
    let metrics: Vec<(String, Value)> = result
        .metrics
        .iter()
        .map(|(name, value, class)| {
            (
                (*name).to_owned(),
                Value::object(vec![
                    ("value", Value::Float(*value)),
                    ("class", Value::Str(class.as_str().to_owned())),
                ]),
            )
        })
        .collect();
    Value::object(vec![("metrics", Value::Map(metrics))])
}

/// Run the whole scenario matrix and return the schema-versioned run
/// document written to `BENCH_regress.json`. The `quick` suite (CI
/// perf-smoke) uses a small workload; the full suite a larger one.
pub fn run_matrix(quick: bool, seed: u64) -> Value {
    let (t, v) = if quick { (64, 16) } else { (256, 32) };
    let workload = Workload::random(t, v, paper::M, paper::N, seed);
    let scenarios: Vec<(String, Value)> = SCENARIO_KEYS
        .iter()
        .map(|key| {
            let result = run_scenario(key, &workload);
            (result.key.to_owned(), scenario_to_value(&result))
        })
        .collect();
    Value::object(vec![
        ("schema_version", Value::UInt(REGRESS_SCHEMA_VERSION)),
        (
            "suite",
            Value::Str(if quick { "quick" } else { "full" }.to_owned()),
        ),
        ("seed", Value::UInt(seed)),
        ("num_tensors", Value::UInt(t as u64)),
        ("num_starts", Value::UInt(v as u64)),
        ("metadata", bench_metadata("regress")),
        ("scenarios", Value::Map(scenarios)),
    ])
}

/// The solver specs exercised by the `solvers` scenario document
/// (`BENCH_solvers.json`): the paper's fixed-shift SS-HOPM plus both
/// adaptive alternatives behind `--solver`.
pub const SOLVER_KEYS: [&str; 3] = ["sshopm", "geap", "qrst"];

/// Convergence tolerance for the `solvers` scenario. Looser than the
/// library default so iteration counts stay modest in `f32`.
const SOLVER_SCENARIO_TOL: f64 = 1e-6;

/// Iteration cap for the `solvers` scenario.
const SOLVER_SCENARIO_MAX_ITERS: usize = 200;

/// Run one solver over `workload` on the sequential CPU reference
/// backend under a convergence policy, so the total iteration count —
/// a pure function of the workload and the solver's shift strategy —
/// becomes the scenario's deterministic metric.
pub fn run_solver_scenario(key: &'static str, workload: &Workload) -> ScenarioResult {
    let solver = SolverSpec::parse(key)
        .expect("static solver keys parse")
        .build::<f32>(
            Shift::Fixed(paper::ALPHA),
            IterationPolicy::Converge {
                tol: SOLVER_SCENARIO_TOL,
                max_iters: SOLVER_SCENARIO_MAX_ITERS,
            },
        );
    let backend = CpuSequential::new(KernelStrategy::General);
    let report = run_on_solver(&backend, workload, &*solver);
    let solves = report.results.iter().map(Vec::len).sum::<usize>() as u64;
    let converged = report
        .results
        .iter()
        .flatten()
        .filter(|pair| pair.converged)
        .count() as u64;
    ScenarioResult {
        key,
        metrics: vec![
            (
                "total_iterations",
                report.total_iterations as f64,
                MetricClass::Deterministic,
            ),
            (
                "mean_iterations",
                report.total_iterations as f64 / solves.max(1) as f64,
                MetricClass::Deterministic,
            ),
            ("converged", converged as f64, MetricClass::Deterministic),
            ("seconds", report.seconds, MetricClass::Measured),
        ],
    }
}

/// Run every solver in [`SOLVER_KEYS`] over one shared workload and
/// return the schema-versioned document written to `BENCH_solvers.json`.
/// The shape matches the regress matrix so [`validate_baseline`] and
/// [`compare`] apply unchanged.
pub fn run_solvers(quick: bool, seed: u64) -> Value {
    let (t, v) = if quick { (16, 8) } else { (64, 16) };
    let workload = Workload::random(t, v, paper::M, paper::N, seed);
    let scenarios: Vec<(String, Value)> = SOLVER_KEYS
        .iter()
        .map(|key| {
            let result = run_solver_scenario(key, &workload);
            (result.key.to_owned(), scenario_to_value(&result))
        })
        .collect();
    Value::object(vec![
        ("schema_version", Value::UInt(REGRESS_SCHEMA_VERSION)),
        (
            "suite",
            Value::Str(if quick { "quick" } else { "full" }.to_owned()),
        ),
        ("seed", Value::UInt(seed)),
        ("num_tensors", Value::UInt(t as u64)),
        ("num_starts", Value::UInt(v as u64)),
        ("metadata", bench_metadata("solvers")),
        ("scenarios", Value::Map(scenarios)),
    ])
}

/// Strip host metadata from a run document, leaving the committed
/// baseline shape: schema version, suite, seed, workload size, scenarios.
pub fn baseline_from_run(run: &Value) -> Value {
    let fields = [
        "schema_version",
        "suite",
        "seed",
        "num_tensors",
        "num_starts",
        "scenarios",
    ];
    let kept: Vec<(String, Value)> = fields
        .iter()
        .filter_map(|f| run.get(f).map(|v| ((*f).to_owned(), v.clone())))
        .collect();
    Value::Map(kept)
}

fn metrics_of<'a>(doc: &'a Value, scenario: &str) -> Option<&'a Vec<(String, Value)>> {
    match doc.get("scenarios")?.get(scenario)?.get("metrics")? {
        Value::Map(m) => Some(m),
        _ => None,
    }
}

/// Validate a baseline (or run) document: schema version, suite name,
/// and a non-empty scenario map whose metrics all carry finite values
/// and known tolerance classes. Returns a list of problems (empty when
/// the document is well-formed).
pub fn validate_baseline(doc: &Value) -> Vec<String> {
    let mut problems = Vec::new();
    match doc.get("schema_version").and_then(Value::as_u64) {
        Some(REGRESS_SCHEMA_VERSION) => {}
        Some(v) => problems.push(format!(
            "schema_version {v} != supported {REGRESS_SCHEMA_VERSION}"
        )),
        None => problems.push("missing schema_version".to_owned()),
    }
    match doc.get("suite").and_then(Value::as_str) {
        Some("quick") | Some("full") => {}
        Some(s) => problems.push(format!("unknown suite {s:?}")),
        None => problems.push("missing suite".to_owned()),
    }
    let scenarios = match doc.get("scenarios") {
        Some(Value::Map(m)) if !m.is_empty() => m,
        Some(Value::Map(_)) => {
            problems.push("scenarios map is empty".to_owned());
            return problems;
        }
        _ => {
            problems.push("missing scenarios map".to_owned());
            return problems;
        }
    };
    for (key, _) in scenarios {
        let Some(metrics) = metrics_of(doc, key) else {
            problems.push(format!("scenario {key:?}: missing metrics map"));
            continue;
        };
        if metrics.is_empty() {
            problems.push(format!("scenario {key:?}: empty metrics map"));
        }
        for (name, metric) in metrics {
            match metric.get("value").and_then(Value::as_f64) {
                Some(v) if v.is_finite() => {}
                Some(v) => problems.push(format!("{key}/{name}: non-finite value {v}")),
                None => problems.push(format!("{key}/{name}: missing value")),
            }
            match metric.get("class").and_then(Value::as_str) {
                Some(c) if MetricClass::parse(c).is_some() => {}
                Some(c) => problems.push(format!("{key}/{name}: unknown class {c:?}")),
                None => problems.push(format!("{key}/{name}: missing class")),
            }
        }
    }
    problems
}

/// Compare a current run against a baseline. `tolerance_scale` widens
/// (>1) or tightens (<1) both bands: the effective band is
/// `1 + (band - 1) * tolerance_scale`. Returns the list of regressions
/// (empty means the gate passes).
pub fn compare(current: &Value, baseline: &Value, tolerance_scale: f64) -> Vec<String> {
    let mut regressions = Vec::new();
    let (cur_suite, base_suite) = (
        current.get("suite").and_then(Value::as_str),
        baseline.get("suite").and_then(Value::as_str),
    );
    if cur_suite != base_suite {
        regressions.push(format!(
            "suite mismatch: run is {cur_suite:?}, baseline is {base_suite:?}"
        ));
        return regressions;
    }
    let Some(Value::Map(base_scenarios)) = baseline.get("scenarios") else {
        regressions.push("baseline has no scenarios map".to_owned());
        return regressions;
    };
    for (key, _) in base_scenarios {
        let Some(cur_metrics) = metrics_of(current, key) else {
            regressions.push(format!("scenario {key:?} missing from the current run"));
            continue;
        };
        let Some(base_metrics) = metrics_of(baseline, key) else {
            continue;
        };
        for (name, base_metric) in base_metrics {
            let Some(base_value) = base_metric.get("value").and_then(Value::as_f64) else {
                continue;
            };
            let class = base_metric
                .get("class")
                .and_then(Value::as_str)
                .and_then(MetricClass::parse)
                .unwrap_or(MetricClass::Measured);
            let Some(cur_value) = cur_metrics
                .iter()
                .find(|(n, _)| n == name)
                .and_then(|(_, m)| m.get("value"))
                .and_then(Value::as_f64)
            else {
                regressions.push(format!("{key}/{name}: metric missing from the current run"));
                continue;
            };
            let band = match class {
                MetricClass::Deterministic => DETERMINISTIC_TOLERANCE,
                MetricClass::Measured => MEASURED_TOLERANCE,
            };
            let tol = 1.0 + (band - 1.0) * tolerance_scale;
            let violated = match class {
                // Two-sided: any drift of a modeled quantity is real.
                MetricClass::Deterministic => {
                    if base_value.abs() < 1e-12 && cur_value.abs() < 1e-12 {
                        false
                    } else if base_value.abs() < 1e-12 || cur_value.abs() < 1e-12 {
                        true
                    } else {
                        let ratio = (cur_value / base_value).abs();
                        ratio > tol || ratio < 1.0 / tol
                    }
                }
                // One-sided: only slower-than-baseline is a regression.
                MetricClass::Measured => cur_value > base_value * tol,
            };
            if violated {
                regressions.push(format!(
                    "{key}/{name} ({}): current {cur_value:.6e} vs baseline {base_value:.6e} \
                     exceeds x{tol:.2} tolerance",
                    class.as_str()
                ));
            }
        }
    }
    regressions
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Multiply every deterministic metric value in a run/baseline
    /// document by `factor`, simulating a stale (inflated) baseline.
    fn scale_deterministic(doc: &Value, factor: f64) -> Value {
        fn walk(v: &Value, factor: f64, in_metric: bool) -> Value {
            match v {
                Value::Map(entries) => {
                    let deterministic = in_metric
                        && entries
                            .iter()
                            .any(|(k, val)| k == "class" && val.as_str() == Some("deterministic"));
                    Value::Map(
                        entries
                            .iter()
                            .map(|(k, val)| {
                                if deterministic && k == "value" {
                                    let scaled = val.as_f64().unwrap() * factor;
                                    (k.clone(), Value::Float(scaled))
                                } else {
                                    (k.clone(), walk(val, factor, k == "metrics" || in_metric))
                                }
                            })
                            .collect(),
                    )
                }
                other => other.clone(),
            }
        }
        walk(doc, factor, false)
    }

    #[test]
    fn quick_matrix_validates_and_self_compares_clean() {
        let run = run_matrix(true, 42);
        assert!(
            validate_baseline(&run).is_empty(),
            "{:?}",
            validate_baseline(&run)
        );
        let baseline = baseline_from_run(&run);
        assert!(validate_baseline(&baseline).is_empty());
        let regressions = compare(&run, &baseline, 1.0);
        assert!(regressions.is_empty(), "{regressions:?}");
        // The JSON form round-trips through the committed-file format.
        let parsed = Value::parse_json(&baseline.to_json_pretty()).unwrap();
        assert!(compare(&run, &parsed, 1.0).is_empty());
    }

    #[test]
    fn deterministic_metrics_reproduce_across_runs() {
        let a = run_matrix(true, 7);
        let b = run_matrix(true, 7);
        // Run-to-run, every deterministic metric must compare clean even
        // with a tightened band; only measured wall-clock may move.
        let regressions = compare(&a, &baseline_from_run(&b), 0.1);
        let deterministic: Vec<&String> = regressions
            .iter()
            .filter(|r| r.contains("(deterministic)"))
            .collect();
        assert!(deterministic.is_empty(), "{deterministic:?}");
    }

    #[test]
    fn inflated_baseline_is_detected() {
        let run = run_matrix(true, 42);
        let stale = scale_deterministic(&baseline_from_run(&run), 2.0);
        let regressions = compare(&run, &stale, 1.0);
        assert!(!regressions.is_empty());
        assert!(
            regressions.iter().any(|r| r.contains("(deterministic)")),
            "{regressions:?}"
        );
    }

    #[test]
    fn solver_matrix_validates_and_reproduces() {
        let a = run_solvers(true, 11);
        assert!(
            validate_baseline(&a).is_empty(),
            "{:?}",
            validate_baseline(&a)
        );
        for key in SOLVER_KEYS {
            let metrics = metrics_of(&a, key).expect("solver scenario present");
            let iters = metrics
                .iter()
                .find(|(n, _)| n == "total_iterations")
                .and_then(|(_, m)| m.get("value"))
                .and_then(Value::as_f64)
                .expect("iteration metric present");
            assert!(iters > 0.0, "{key}: no iterations recorded");
        }
        // Iteration counts are pure functions of the workload: rerunning
        // with the same seed must compare clean even with a tight band.
        let b = run_solvers(true, 11);
        let regressions = compare(&a, &baseline_from_run(&b), 0.1);
        let deterministic: Vec<&String> = regressions
            .iter()
            .filter(|r| r.contains("(deterministic)"))
            .collect();
        assert!(deterministic.is_empty(), "{deterministic:?}");
    }

    #[test]
    fn fault_scenario_reports_fault_metrics() {
        let workload = Workload::random(16, 4, paper::M, paper::N, 3);
        let result = run_scenario("resilient-watchdog-retry", &workload);
        let injected = result
            .metrics
            .iter()
            .find(|(n, _, _)| *n == "faults_injected")
            .expect("fault metrics present");
        assert!(injected.1 > 0.0);
    }

    #[test]
    fn validate_rejects_malformed_documents() {
        let missing = Value::object(vec![("suite", Value::Str("quick".into()))]);
        let problems = validate_baseline(&missing);
        assert!(problems.iter().any(|p| p.contains("schema_version")));

        let wrong_version = Value::object(vec![
            ("schema_version", Value::UInt(99)),
            ("suite", Value::Str("quick".into())),
            ("scenarios", Value::Map(vec![])),
        ]);
        let problems = validate_baseline(&wrong_version);
        assert!(problems.iter().any(|p| p.contains("99")));
        assert!(problems.iter().any(|p| p.contains("empty")));
    }

    #[test]
    fn missing_scenario_and_suite_mismatch_are_flagged() {
        let run = run_matrix(true, 42);
        let baseline = baseline_from_run(&run);
        // Drop one scenario from the current run.
        let gutted = Value::Map(match &run {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| {
                    if k == "scenarios" {
                        let Value::Map(scenarios) = v else {
                            unreachable!()
                        };
                        (
                            k.clone(),
                            Value::Map(
                                scenarios
                                    .iter()
                                    .filter(|(key, _)| key != "cpu-seq-general")
                                    .cloned()
                                    .collect(),
                            ),
                        )
                    } else {
                        (k.clone(), v.clone())
                    }
                })
                .collect(),
            _ => unreachable!(),
        });
        let regressions = compare(&gutted, &baseline, 1.0);
        assert!(
            regressions
                .iter()
                .any(|r| r.contains("missing from the current run")),
            "{regressions:?}"
        );

        let full_baseline = {
            let mut entries = match &baseline {
                Value::Map(e) => e.clone(),
                _ => unreachable!(),
            };
            for (k, v) in &mut entries {
                if k == "suite" {
                    *v = Value::Str("full".into());
                }
            }
            Value::Map(entries)
        };
        let regressions = compare(&run, &full_baseline, 1.0);
        assert!(regressions.iter().any(|r| r.contains("suite mismatch")));
    }
}
