//! Benchmark harness: workload builders, flop accounting, wall-clock
//! measurement and table formatting shared by the `table*`/`figure5`
//! reproduction binaries and the Criterion benches.

use backend::{BackendSpec, BatchReport, GpuSimBackend, KernelStrategy, SolveBackend};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sshopm::{IterationPolicy, Shift, Solver, SsHopm};
use telemetry::Telemetry;

use symtensor::{flops, TensorBatch};

pub mod regress;

/// The paper's workload constants (Section V-A/V-C): T = 1024 tensors,
/// U = 15 unique entries (m = 4, n = 3), V = 128 starting vectors.
pub mod paper {
    /// Number of tensors in the test set.
    pub const T: usize = 1024;
    /// Tensor order.
    pub const M: usize = 4;
    /// Tensor dimension.
    pub const N: usize = 3;
    /// Starting vectors per tensor.
    pub const V: usize = 128;
    /// Shift used in the paper's experiments.
    pub const ALPHA: f64 = 0.0;
}

/// The benchmark workload: tensors + shared starting vectors, in `f32`
/// (the precision of the paper's benchmarks).
pub struct Workload {
    /// The tensors, packed contiguously in one arena (all the same shape).
    pub tensors: TensorBatch<f32>,
    /// Starting vectors shared by every tensor.
    pub starts: Vec<Vec<f32>>,
    /// Tensor order.
    pub m: usize,
    /// Tensor dimension.
    pub n: usize,
}

impl Workload {
    /// The paper's workload: 1024 voxel-like tensors from the DW-MRI
    /// phantom (mix of one- and two-fiber voxels, like the Utah set),
    /// 128 random starting vectors.
    pub fn paper_workload(seed: u64) -> Workload {
        let mut rng = StdRng::seed_from_u64(seed);
        let phantom = dwmri::Phantom::generate(
            dwmri::PhantomConfig {
                width: 32,
                height: 32,
                noise: dwmri::NoiseModel::Multiplicative { amplitude: 0.02 },
                ..Default::default()
            },
            &mut rng,
        );
        let tensors = phantom.tensor_batch_f32();
        let starts = sshopm::starts::random_uniform_starts::<f32, _>(paper::N, paper::V, &mut rng);
        Workload {
            tensors,
            starts,
            m: paper::M,
            n: paper::N,
        }
    }

    /// Random tensors of an arbitrary shape (for sweeps beyond (4,3)).
    pub fn random(t: usize, v: usize, m: usize, n: usize, seed: u64) -> Workload {
        let mut rng = StdRng::seed_from_u64(seed);
        let tensors =
            TensorBatch::<f32>::random(m, n, t, &mut rng).expect("bench shapes are valid");
        let starts = sshopm::starts::random_uniform_starts::<f32, _>(n, v, &mut rng);
        Workload {
            tensors,
            starts,
            m,
            n,
        }
    }

    /// A subset of the first `t` tensors (Figure 5 sweeps subsets).
    pub fn subset(&self, t: usize) -> Workload {
        Workload {
            tensors: self.tensors.slice(0..t.min(self.tensors.len())).to_owned(),
            starts: self.starts.clone(),
            m: self.m,
            n: self.n,
        }
    }
}

/// Useful flops for a batch run that performed `total_iterations` SS-HOPM
/// iterations on shape `(m, n)`.
pub fn batch_flops(m: usize, n: usize, total_iterations: u64) -> u64 {
    total_iterations * flops::sshopm_iter_flops(m, n)
}

/// One measured implementation row.
#[derive(Debug, Clone)]
pub struct MeasuredRow {
    /// Row label ("CPU - 1 core", "GPU (model)", ...).
    pub label: String,
    /// Measured or modeled wall time, seconds.
    pub seconds: f64,
    /// Useful flops executed.
    pub useful_flops: u64,
}

impl MeasuredRow {
    /// Achieved GFLOP/s.
    pub fn gflops(&self) -> f64 {
        self.useful_flops as f64 / self.seconds / 1e9
    }
}

/// Run the workload on a CPU backend with the given kernel strategy and
/// thread count; returns the wall time and total iterations.
pub fn run_cpu(
    workload: &Workload,
    strategy: KernelStrategy,
    threads: usize,
    policy: IterationPolicy,
    alpha: f64,
) -> (f64, u64) {
    let backend = BackendSpec::Cpu { threads }
        .build::<f32>(strategy)
        .expect("CPU backend spec is always buildable");
    let report = run_on(&*backend, workload, policy, alpha);
    (report.seconds, report.total_iterations)
}

/// Run the workload through any [`SolveBackend`] and return the full
/// unified report.
pub fn run_on(
    backend: &dyn SolveBackend<f32>,
    workload: &Workload,
    policy: IterationPolicy,
    alpha: f64,
) -> BatchReport<f32> {
    let solver = SsHopm::new(Shift::Fixed(alpha)).with_policy(policy);
    run_on_solver(backend, workload, &solver)
}

/// Run the workload through any backend with an arbitrary [`Solver`] —
/// the solver-generic entry point used by the `solvers` regression
/// scenario (`BENCH_solvers.json`).
pub fn run_on_solver(
    backend: &dyn SolveBackend<f32>,
    workload: &Workload,
    solver: &dyn Solver<f32>,
) -> BatchReport<f32> {
    backend
        .solve_batch(
            &workload.tensors,
            &workload.starts,
            solver,
            &Telemetry::disabled(),
        )
        .expect("benchmark workloads are well-formed")
}

/// The iteration policy used by all Table III / Figure 5 runs: a fixed
/// budget so every implementation does identical arithmetic (the paper
/// likewise benchmarks a fixed workload; convergence behaviour is studied
/// separately in the ablation benches).
pub const BENCH_ITERS: usize = 20;

/// Default iteration policy for benchmarks.
pub fn bench_policy() -> IterationPolicy {
    IterationPolicy::Fixed(BENCH_ITERS)
}

/// Measure all CPU rows (1/4/8 "cores" i.e. threads) for one kernel
/// implementation. On hosts with fewer physical cores than threads the
/// measured times won't scale — the binaries print both measured values
/// and the physical core count so the reader can judge.
pub fn cpu_rows(workload: &Workload, strategy: KernelStrategy, label: &str) -> Vec<MeasuredRow> {
    let mut rows = Vec::new();
    for threads in [1usize, 4, 8] {
        let (secs, iters) = run_cpu(workload, strategy, threads, bench_policy(), paper::ALPHA);
        rows.push(MeasuredRow {
            label: format!(
                "CPU - {threads} core{} ({label})",
                if threads > 1 { "s" } else { "" }
            ),
            seconds: secs,
            useful_flops: batch_flops(workload.m, workload.n, iters),
        });
    }
    rows
}

/// The modeled GPU row for one kernel strategy on the paper's Tesla C2050.
pub fn gpu_row(workload: &Workload, strategy: KernelStrategy) -> (MeasuredRow, BatchReport<f32>) {
    gpu_row_on(workload, strategy, gpusim::DeviceSpec::tesla_c2050())
}

/// The modeled GPU row for one kernel strategy on an arbitrary device.
/// The report's `profiles[0].snapshot` carries the occupancy/timing detail
/// the table binaries print.
pub fn gpu_row_on(
    workload: &Workload,
    strategy: KernelStrategy,
    device: gpusim::DeviceSpec,
) -> (MeasuredRow, BatchReport<f32>) {
    let name = device.name;
    let report = run_on(
        &GpuSimBackend::new(device, strategy),
        workload,
        bench_policy(),
        paper::ALPHA,
    );
    (
        MeasuredRow {
            label: format!("GPU model ({}, {})", report.kernel, name),
            seconds: report.seconds,
            useful_flops: report.useful_flops,
        },
        report,
    )
}

/// Fixed-width table printing.
pub fn print_rows(title: &str, rows: &[MeasuredRow]) {
    println!("{title}");
    println!(
        "{:<28} {:>12} {:>12}",
        "implementation", "time (ms)", "GFLOP/s"
    );
    for r in rows {
        println!(
            "{:<28} {:>12.2} {:>12.2}",
            r.label,
            r.seconds * 1e3,
            r.gflops()
        );
    }
    println!();
}

/// One measured row as a JSON-ready object (label, seconds, flops, GFLOPS).
pub fn row_to_value(row: &MeasuredRow) -> serde::Value {
    serde::Value::object(vec![
        ("label", serde::Value::Str(row.label.clone())),
        ("seconds", serde::Value::Float(row.seconds)),
        ("useful_flops", serde::Value::UInt(row.useful_flops)),
        ("gflops", serde::Value::Float(row.gflops())),
    ])
}

/// A whole row set as a JSON array.
pub fn rows_to_value(rows: &[MeasuredRow]) -> serde::Value {
    serde::Value::Seq(rows.iter().map(row_to_value).collect())
}

/// Host/workload metadata included in every `BENCH_*.json` so results are
/// interpretable offline.
pub fn bench_metadata(bench_name: &str) -> serde::Value {
    let physical = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    serde::Value::object(vec![
        ("bench", serde::Value::Str(bench_name.to_owned())),
        ("logical_cores", serde::Value::UInt(physical as u64)),
        ("bench_iters", serde::Value::UInt(BENCH_ITERS as u64)),
        ("precision", serde::Value::Str("f32".to_owned())),
    ])
}

/// Write `value` to `BENCH_<name>.json` in the current directory and
/// report the path (or the error — benches keep running either way).
pub fn write_bench_json(name: &str, value: &serde::Value) {
    let path = format!("BENCH_{name}.json");
    match std::fs::write(&path, value.to_json_pretty() + "\n") {
        Ok(()) => println!("wrote {path}"),
        Err(err) => eprintln!("could not write {path}: {err}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unrolled::UnrolledKernels;

    #[test]
    fn workload_shapes() {
        let w = Workload::random(16, 8, 4, 3, 1);
        assert_eq!(w.tensors.len(), 16);
        assert_eq!(w.starts.len(), 8);
        let s = w.subset(4);
        assert_eq!(s.tensors.len(), 4);
        assert_eq!(s.starts.len(), 8);
    }

    #[test]
    fn paper_workload_matches_constants() {
        let w = Workload::paper_workload(7);
        assert_eq!(w.tensors.len(), paper::T);
        assert_eq!(w.starts.len(), paper::V);
        assert_eq!(w.tensors.order(), paper::M);
        assert_eq!(w.tensors.dim(), paper::N);
    }

    #[test]
    fn cpu_run_counts_iterations() {
        let w = Workload::random(4, 4, 4, 3, 2);
        let (secs, iters) = run_cpu(&w, KernelStrategy::General, 1, bench_policy(), 0.0);
        assert!(secs > 0.0);
        assert_eq!(iters, 4 * 4 * BENCH_ITERS as u64);
        assert_eq!(
            batch_flops(4, 3, iters),
            iters * flops::sshopm_iter_flops(4, 3)
        );
    }

    #[test]
    fn gpu_row_reports() {
        let w = Workload::random(8, 32, 4, 3, 3);
        let (row, report) = gpu_row(&w, KernelStrategy::Unrolled);
        assert!(row.seconds > 0.0);
        assert!(row.gflops() > 0.0);
        assert_eq!(report.kernel, "unrolled");
        assert_eq!(report.profiles.len(), 1);
        assert_eq!(report.profiles[0].snapshot.num_blocks, 8);
    }

    #[test]
    fn run_on_accepts_any_backend() {
        use backend::CpuSequential;
        let w = Workload::random(3, 5, 4, 3, 4);
        let cpu = run_on(
            &CpuSequential::new(KernelStrategy::General),
            &w,
            bench_policy(),
            0.0,
        );
        let gpu = run_on(
            &GpuSimBackend::new(gpusim::DeviceSpec::tesla_c2050(), KernelStrategy::General),
            &w,
            bench_policy(),
            0.0,
        );
        assert_eq!(cpu.total_iterations, gpu.total_iterations);
        assert_eq!(cpu.num_tensors(), gpu.num_tensors());
    }

    #[test]
    fn unrolled_kernels_available_for_paper_shape() {
        assert!(UnrolledKernels::for_shape(paper::M, paper::N).is_some());
    }

    #[test]
    fn rows_serialize_round_trip() {
        let rows = vec![
            MeasuredRow {
                label: "CPU - 1 core".into(),
                seconds: 0.5,
                useful_flops: 1_000_000_000,
            },
            MeasuredRow {
                label: "GPU model".into(),
                seconds: 0.01,
                useful_flops: 1_000_000_000,
            },
        ];
        let value = rows_to_value(&rows);
        let parsed = serde::Value::parse_json(&value.to_json()).unwrap();
        let seq = parsed.as_seq().unwrap();
        assert_eq!(seq.len(), 2);
        assert_eq!(
            seq[0].get("label").and_then(serde::Value::as_str),
            Some("CPU - 1 core")
        );
        assert_eq!(
            seq[1].get("gflops").and_then(serde::Value::as_f64),
            Some(100.0)
        );
        let meta = bench_metadata("test");
        assert_eq!(
            meta.get("bench").and_then(serde::Value::as_str),
            Some("test")
        );
        assert!(
            meta.get("logical_cores")
                .and_then(serde::Value::as_u64)
                .unwrap()
                >= 1
        );
    }
}
