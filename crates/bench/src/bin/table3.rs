//! Reproduce **Table III** of the paper: flop rates (a), run times (b) and
//! relative performance (c) for eight implementations — CPU with 1/4/8
//! threads and the (simulated) GPU, each in the general and the unrolled
//! kernel variant — on the full 1024-tensor, 128-start workload.
//!
//! CPU rows are *measured* wall-clock (rayon thread pools standing in for
//! the paper's OpenMP); GPU rows come from the gpusim analytic model. The
//! binary also prints the paper's own 2011 numbers next to ours so the
//! shape comparison (who wins, by what factor) is one glance.
//!
//! Run with: `cargo run --release -p bench --bin table3`

use backend::KernelStrategy;
use bench::{
    bench_metadata, cpu_rows, gpu_row, print_rows, rows_to_value, write_bench_json, MeasuredRow,
    Workload,
};
use serde::Value;

fn main() {
    let physical = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    println!(
        "Table III reproduction: T=1024 tensors (m=4, n=3), V=128 starts, {} fixed iterations, f32",
        bench::BENCH_ITERS
    );
    println!("host has {physical} logical core(s); thread counts beyond that cannot speed up\n");

    let workload = Workload::paper_workload(2026);

    // Measured CPU rows.
    let general_rows = cpu_rows(&workload, KernelStrategy::General, "general");
    let unrolled_rows = cpu_rows(&workload, KernelStrategy::Unrolled, "unrolled");

    // Modeled GPU rows.
    let (gpu_general, rep_g) = gpu_row(&workload, KernelStrategy::General);
    let (gpu_unrolled, rep_u) = gpu_row(&workload, KernelStrategy::Unrolled);

    let mut all: Vec<MeasuredRow> = Vec::new();
    all.extend(general_rows.iter().cloned());
    all.push(gpu_general.clone());
    all.extend(unrolled_rows.iter().cloned());
    all.push(gpu_unrolled.clone());
    print_rows("(a)+(b) measured/modeled flop rates and run times:", &all);

    // (a) unrolled speedup column.
    println!("(a) unrolled speedup over general:");
    let pairs = [
        ("CPU - 1 core", &general_rows[0], &unrolled_rows[0], 8.47),
        ("CPU - 4 cores", &general_rows[1], &unrolled_rows[1], 8.23),
        ("CPU - 8 cores", &general_rows[2], &unrolled_rows[2], 5.60),
        ("GPU", &gpu_general, &gpu_unrolled, 18.70),
    ];
    println!("{:<16} {:>10} {:>12}", "platform", "ours", "paper 2011");
    for (label, g, u, paper_val) in &pairs {
        println!(
            "{:<16} {:>9.2}x {:>11.2}x",
            label,
            g.seconds / u.seconds,
            paper_val
        );
    }

    // (c) relative performance normalized to the sequential implementation.
    println!("\n(c) relative performance (normalized to CPU - 1 core):");
    println!(
        "{:<16} {:>10} {:>10} {:>22}",
        "platform", "general", "unrolled", "paper (gen / unr)"
    );
    let paper_rel = [
        ("CPU - 1 core", 1.00, 1.00),
        ("CPU - 4 cores", 3.55, 3.45),
        ("CPU - 8 cores", 7.14, 4.72),
        ("GPU", 70.23, 155.07),
    ];
    let rel = |rows: &[MeasuredRow], gpu: &MeasuredRow, i: usize| -> f64 {
        let base = rows[0].seconds;
        if i < 3 {
            base / rows[i].seconds
        } else {
            base / gpu.seconds
        }
    };
    for (i, (label, pg, pu)) in paper_rel.iter().enumerate() {
        println!(
            "{:<16} {:>9.2}x {:>9.2}x {:>12.2} / {:<8.2}",
            label,
            rel(&general_rows, &gpu_general, i),
            rel(&unrolled_rows, &gpu_unrolled, i),
            pg,
            pu
        );
    }
    if physical < 8 {
        println!(
            "note: with only {physical} core(s), the 4/8-thread rows measure scheduling overhead,\n\
             not parallel scaling — the paper's 4-core row scaled 3.55x on real hardware."
        );
    }

    // GPU model detail.
    println!("\nGPU model detail (Tesla C2050):");
    for rep in [&rep_g, &rep_u] {
        let snap = &rep.profiles[0].snapshot;
        println!(
            "  {:<9} occupancy {:>2} blocks/SM ({:>3.0}%, {}), est {:.2} ms, {:.1} GFLOP/s ({:.0}% of peak)",
            rep.kernel,
            snap.blocks_per_sm,
            snap.occupancy * 100.0,
            snap.occupancy_limiter,
            rep.seconds * 1e3,
            rep.gflops(),
            100.0 * rep.gflops() / gpusim::DeviceSpec::tesla_c2050().peak_sp_gflops()
        );
    }
    println!("  paper: general 17.0 GFLOP/s, unrolled 317.8 GFLOP/s (31% of peak)");

    // Machine-readable export: every row plus the GPU model's full
    // profile (counter breakdown, occupancy, timing components).
    let report = Value::object(vec![
        ("meta", bench_metadata("table3")),
        ("rows", rows_to_value(&all)),
        (
            "gpu_profiles",
            Value::Seq(vec![
                serde::Serialize::to_value(&rep_g.profiles[0].snapshot),
                serde::Serialize::to_value(&rep_u.profiles[0].snapshot),
            ]),
        ),
        (
            "unrolled_speedup",
            Value::object(vec![
                (
                    "cpu_1",
                    Value::Float(general_rows[0].seconds / unrolled_rows[0].seconds),
                ),
                (
                    "cpu_4",
                    Value::Float(general_rows[1].seconds / unrolled_rows[1].seconds),
                ),
                (
                    "cpu_8",
                    Value::Float(general_rows[2].seconds / unrolled_rows[2].seconds),
                ),
                (
                    "gpu",
                    Value::Float(gpu_general.seconds / gpu_unrolled.seconds),
                ),
            ]),
        ),
    ]);
    write_bench_json("table3", &report);

    // Section V-E: "We obtained similar performance (relative to peak) for
    // tensors of order 4 and dimension 3 on two other NVIDIA GPUs."
    println!("\ncross-device check (unrolled kernel, % of each device's peak):");
    for device in [
        gpusim::DeviceSpec::tesla_c1060(),
        gpusim::DeviceSpec::tesla_c2050(),
        gpusim::DeviceSpec::gtx_580(),
    ] {
        let (_, rep) = bench::gpu_row_on(&workload, KernelStrategy::Unrolled, device.clone());
        println!(
            "  {:<26} {:>8.1} GFLOP/s = {:>4.1}% of {:>6.0} peak",
            device.name,
            rep.gflops(),
            100.0 * rep.gflops() / device.peak_sp_gflops(),
            device.peak_sp_gflops()
        );
    }
}
